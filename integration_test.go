package noceval

// Cross-methodology integration tests: each one exercises a relationship
// the paper depends on, across module boundaries (network + openloop +
// closedloop + trace + cmp + core + analytic).

import (
	"bytes"
	"testing"

	"noceval/internal/analytic"
	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/trace"
	"noceval/internal/traffic"
	"noceval/internal/workload"
)

func TestOpenLoopMatchesAnalyticZeroLoad(t *testing.T) {
	p := core.Baseline()
	sim, err := core.OpenLoop(p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	model := analytic.Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	want, err := model.ZeroLoadLatency(traffic.Uniform{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At 1% load queueing is negligible: simulation within 10% of theory.
	if sim.AvgLatency < want*0.9 || sim.AvgLatency > want*1.15 {
		t.Errorf("simulated zero-load %.2f vs analytic %.2f", sim.AvgLatency, want)
	}
}

func TestSimulatedSaturationBelowChannelBound(t *testing.T) {
	model := analytic.Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	bound, _, err := model.ChannelBound(traffic.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Baseline()
	res, err := core.OpenLoop(p, 0.9) // overload: accepted = capacity
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted > bound*1.02 {
		t.Errorf("accepted %.3f exceeds channel bound %.3f", res.Accepted, bound)
	}
	if res.Accepted < bound*0.6 {
		t.Errorf("accepted %.3f implausibly far below channel bound %.3f", res.Accepted, bound)
	}
}

func TestBatchThroughputAtLargeMMatchesCapacity(t *testing.T) {
	p := core.Baseline()
	bat, err := core.Batch(p, core.BatchParams{B: 400, M: 32})
	if err != nil {
		t.Fatal(err)
	}
	over, err := core.OpenLoop(p, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ratio := bat.Throughput / over.Accepted
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("batch m=32 throughput %.3f vs open-loop capacity %.3f (ratio %.2f)",
			bat.Throughput, over.Accepted, ratio)
	}
}

func TestTraceCapturedFromBatchReplaysConsistently(t *testing.T) {
	// Capture a batch-model run, serialize the trace, replay it on the
	// same network: the replay must deliver every packet in a comparable
	// time (it has no request/reply dependencies, so it can only be
	// faster or equal in the aggregate).
	netCfg := network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 8, Delay: 1},
		Seed:    31,
	}
	net := network.New(netCfg)
	rec := trace.NewRecorder(16)
	rec.Attach(net)

	// Drive a miniature batch workload by hand on the recorded network.
	rng := net.RNG()
	type nodeState struct{ sent, done, pf int }
	nodes := make([]nodeState, 16)
	net.OnReceive = func(now int64, pkt *router.Packet) {
		if pkt.Kind == router.KindRequest {
			reply := net.NewPacket(pkt.Dst, pkt.Src, 1, router.KindReply)
			net.Send(reply)
		} else if pkt.Kind == router.KindReply {
			nodes[pkt.Dst].pf--
			nodes[pkt.Dst].done++
		}
	}
	const b, m = 60, 2
	for done := 0; done < 16; {
		done = 0
		for i := range nodes {
			st := &nodes[i]
			if st.sent < b && st.pf < m {
				net.Send(net.NewPacket(i, rng.Intn(16), 1, router.KindRequest))
				st.sent++
				st.pf++
			}
			if st.done >= b {
				done++
			}
		}
		net.Step()
	}
	captured := rec.Trace()
	wantPackets := 16 * b * 2
	if len(captured.Events) != wantPackets {
		t.Fatalf("captured %d events, want %d", len(captured.Events), wantPackets)
	}

	var buf bytes.Buffer
	if err := captured.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Replay(loaded, netCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Packets != wantPackets {
		t.Fatalf("replay delivered %d/%d packets", res.Packets, wantPackets)
	}
	if res.Runtime > net.Now()*2 {
		t.Errorf("replay runtime %d far beyond closed-loop runtime %d", res.Runtime, net.Now())
	}
}

func TestBatchModelPredictsExecDirection(t *testing.T) {
	// Both methodologies must agree that tr=8 is slower than tr=1.
	execNorm, err := core.ExecSweep("canneal", []int64{1, 8}, core.ExecParams{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batchNorm, err := core.BatchSweep([]int64{1, 8}, core.BatchParams{B: 150, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if execNorm[1] <= 1 || batchNorm[1] <= 1 {
		t.Errorf("tr=8 not slower: exec %.3f, batch %.3f", execNorm[1], batchNorm[1])
	}
	// The plain batch model overstates the network's influence (the
	// paper's core observation motivating the enhancements).
	if batchNorm[1] < execNorm[1] {
		t.Errorf("baseline batch (%.2fx) should overstate exec slowdown (%.2fx)",
			batchNorm[1], execNorm[1])
	}
}

func TestEnhancedModelTracksExecBetterThanBaseline(t *testing.T) {
	benches := []string{"blackscholes", "fft"}
	trs := []int64{1, 2, 4, 8}
	execNorm := map[string][]float64{}
	for _, bench := range benches {
		n, err := core.ExecSweep(bench, trs, core.ExecParams{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		execNorm[bench] = n
	}
	ba, err := core.BatchSweep(trs, core.BatchParams{B: 150, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string][]float64{}
	enhanced := map[string][]float64{}
	for _, bench := range benches {
		baseline[bench] = ba
		m, err := core.Characterize(bench, workload.Clock3GHz, 9)
		if err != nil {
			t.Fatal(err)
		}
		en, err := core.BatchSweep(trs, m.BatchParams(150, 1, core.BAInjRe))
		if err != nil {
			t.Fatal(err)
		}
		enhanced[bench] = en
	}
	// Mean absolute error of the predictions, which is the quantity the
	// enhancements actually shrink (correlation is scale-blind).
	mae := func(pred map[string][]float64) float64 {
		sum, n := 0.0, 0
		for _, bench := range benches {
			for i := range trs {
				d := pred[bench][i] - execNorm[bench][i]
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
		return sum / float64(n)
	}
	if mae(enhanced) >= mae(baseline) {
		t.Errorf("enhanced model MAE %.3f not below baseline %.3f", mae(enhanced), mae(baseline))
	}
}

func TestKernelShareGrowsAtLowClock(t *testing.T) {
	share := func(clock workload.Clock) float64 {
		res, err := core.Exec(core.Table2Network(1), core.ExecParams{
			Benchmark: "lu", Clock: clock, Timer: true, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.KernelFlits) / float64(res.TotalFlits)
	}
	slow := share(workload.Clock75MHz)
	fast := share(workload.Clock3GHz)
	if slow <= fast {
		t.Errorf("kernel share at 75MHz (%.3f) not above 3GHz (%.3f)", slow, fast)
	}
}

func TestBarrierAndBatchAgreeOnThroughput(t *testing.T) {
	netCfg := core.Baseline()
	bar, err := core.Barrier(netCfg, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := core.Batch(netCfg, core.BatchParams{B: 300, M: 32})
	if err != nil {
		t.Fatal(err)
	}
	ratio := bar.Throughput / bat.Throughput
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("barrier %.3f vs batch m=32 %.3f (ratio %.2f)", bar.Throughput, bat.Throughput, ratio)
	}
}

func TestReplyModelShiftsBatchTowardMemoryBound(t *testing.T) {
	p := core.Baseline()
	noMem, err := core.Batch(p, core.BatchParams{B: 150, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	withMem, err := core.Batch(p, core.BatchParams{
		B: 150, M: 1,
		Reply: closedloop.ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mean added delay is 50 cycles per transaction; runtime grows by
	// roughly B * 50 per node.
	added := withMem.Runtime - noMem.Runtime
	if added < 150*30 || added > 150*80 {
		t.Errorf("memory model added %d cycles, want ~%d", added, 150*50)
	}
}
