package noceval

import (
	"fmt"
	"reflect"
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/openloop"
)

// These tests are the regression gate for the activity-tracked cycle loop:
// the legacy full-scan path (kept for one release behind FullScan) and the
// default active-set + fast-forward path must produce identical Result
// structs and identical telemetry, cycle for cycle. They pin the refactor's
// central claim — the optimization changes how idle work is skipped, never
// what the simulation computes.

func TestOpenLoopActiveSetDeterminism(t *testing.T) {
	p := core.Baseline()
	p.Shards = core.EnvShards() // CI matrix re-runs the gate at 1, 2, 4 shards
	cfg, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()

	run := func(fullScan bool) (*openloop.Result, *obs.Telemetry) {
		o := obs.NewObserver(obs.Options{Metrics: true, SampleEvery: 250})
		res, err := openloop.Run(openloop.Config{
			Net: cfg, Pattern: pat, Sizes: sizes, Rate: 0.1,
			Warmup: 500, Measure: 2000, DrainLimit: 10000, Seed: 42,
			Obs: o, FullScan: fullScan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, o.Telemetry
	}

	resFull, telFull := run(true)
	resActive, telActive := run(false)

	if !reflect.DeepEqual(resFull, resActive) {
		t.Errorf("open-loop results diverge:\nfullscan:  %+v\nactiveset: %+v", resFull, resActive)
	}
	if !reflect.DeepEqual(telFull, telActive) {
		t.Errorf("open-loop telemetry diverges: fullscan %d router / %d node samples, activeset %d / %d",
			len(telFull.Routers), len(telFull.Nodes), len(telActive.Routers), len(telActive.Nodes))
	}
}

func TestBatchActiveSetDeterminism(t *testing.T) {
	p := core.Baseline()
	p.Shards = core.EnvShards()
	cfg, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}

	// A long reply latency with a tight MSHR limit makes the run mostly
	// idle, so the active-set side exercises the quiescence fast-forward
	// heavily; the kernel timer and timeline buckets add scheduled events
	// the skip must land on exactly.
	run := func(fullScan bool) (*closedloop.BatchResult, *obs.Telemetry) {
		o := obs.NewObserver(obs.Options{Metrics: true, SampleEvery: 250})
		res, err := closedloop.RunBatch(closedloop.BatchConfig{
			Net: cfg, B: 24, M: 2, Seed: 42,
			Reply:          closedloop.FixedReply{Latency: 300},
			Kernel:         &closedloop.KernelConfig{StaticFraction: 0.1, TimerPeriod: 700, TimerBatch: 2},
			SampleInterval: 500,
			CollectMatrix:  true,
			MaxCycles:      2_000_000,
			Obs:            o, FullScan: fullScan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("batch run did not complete")
		}
		return res, o.Telemetry
	}

	resFull, telFull := run(true)
	resActive, telActive := run(false)

	if !reflect.DeepEqual(resFull, resActive) {
		t.Errorf("batch results diverge:\nfullscan:  runtime=%d packets=%d flits=%d avglat=%v timeline=%d\nactiveset: runtime=%d packets=%d flits=%d avglat=%v timeline=%d",
			resFull.Runtime, resFull.TotalPackets, resFull.TotalFlits, resFull.AvgPacketLatency, len(resFull.Timeline),
			resActive.Runtime, resActive.TotalPackets, resActive.TotalFlits, resActive.AvgPacketLatency, len(resActive.Timeline))
	}
	if !reflect.DeepEqual(telFull, telActive) {
		t.Errorf("batch telemetry diverges: fullscan %d router / %d node samples, activeset %d / %d",
			len(telFull.Routers), len(telFull.Nodes), len(telActive.Routers), len(telActive.Nodes))
	}
}

func TestBarrierActiveSetDeterminism(t *testing.T) {
	p := core.Baseline()
	p.Shards = core.EnvShards()
	cfg, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(fullScan bool) *closedloop.BarrierResult {
		res, err := closedloop.RunBarrier(closedloop.BarrierConfig{
			Net: cfg, B: 50, Phases: 3, Seed: 42, FullScan: fullScan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("barrier run did not complete")
		}
		return res
	}
	resFull := run(true)
	resActive := run(false)
	if !reflect.DeepEqual(resFull, resActive) {
		t.Errorf("barrier results diverge:\nfullscan:  %+v\nactiveset: %+v", resFull, resActive)
	}
}

// TestShardedRunModeDeterminism is the run-mode-level gate for the sharded
// cycle loop: every run mode, executed end to end (engine fast-forward,
// telemetry sampling, result assembly), must produce a Result struct and
// telemetry stream identical under any shard count. Shard counts beyond
// the machine's core count are included deliberately — correctness must
// not depend on the gang actually running in parallel.
func TestShardedRunModeDeterminism(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		p := core.Baseline()
		cfg, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		p.Shards = shards
		cfgSh, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}

		t.Run(fmt.Sprintf("openloop/shards=%d", shards), func(t *testing.T) {
			pat, _ := p.BuildPattern()
			sizes, _ := p.BuildSizes()
			run := func(c network.Config) (*openloop.Result, *obs.Telemetry) {
				o := obs.NewObserver(obs.Options{Metrics: true, SampleEvery: 250})
				res, err := openloop.Run(openloop.Config{
					Net: c, Pattern: pat, Sizes: sizes, Rate: 0.15,
					Warmup: 500, Measure: 2000, DrainLimit: 10000, Seed: 42,
					Obs: o,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res, o.Telemetry
			}
			resSeq, telSeq := run(cfg)
			resSh, telSh := run(cfgSh)
			if !reflect.DeepEqual(resSeq, resSh) {
				t.Errorf("open-loop results diverge:\nsequential: %+v\nsharded:    %+v", resSeq, resSh)
			}
			if !reflect.DeepEqual(telSeq, telSh) {
				t.Errorf("open-loop telemetry diverges: sequential %d router samples, sharded %d",
					len(telSeq.Routers), len(telSh.Routers))
			}
		})

		t.Run(fmt.Sprintf("batch/shards=%d", shards), func(t *testing.T) {
			run := func(c network.Config) *closedloop.BatchResult {
				res, err := closedloop.RunBatch(closedloop.BatchConfig{
					Net: c, B: 24, M: 2, Seed: 42,
					Reply:     closedloop.FixedReply{Latency: 300},
					MaxCycles: 2_000_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed {
					t.Fatal("batch run did not complete")
				}
				return res
			}
			resSeq := run(cfg)
			resSh := run(cfgSh)
			if !reflect.DeepEqual(resSeq, resSh) {
				t.Errorf("batch results diverge:\nsequential: runtime=%d packets=%d\nsharded:    runtime=%d packets=%d",
					resSeq.Runtime, resSeq.TotalPackets, resSh.Runtime, resSh.TotalPackets)
			}
		})

		t.Run(fmt.Sprintf("barrier/shards=%d", shards), func(t *testing.T) {
			run := func(c network.Config) *closedloop.BarrierResult {
				res, err := closedloop.RunBarrier(closedloop.BarrierConfig{
					Net: c, B: 50, Phases: 3, Seed: 42,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed {
					t.Fatal("barrier run did not complete")
				}
				return res
			}
			resSeq := run(cfg)
			resSh := run(cfgSh)
			if !reflect.DeepEqual(resSeq, resSh) {
				t.Errorf("barrier results diverge:\nsequential: %+v\nsharded:    %+v", resSeq, resSh)
			}
		})
	}
}
