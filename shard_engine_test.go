package noceval

import (
	"reflect"
	"testing"

	"noceval/internal/core"
	"noceval/internal/engine"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/router"
)

// These tests pin the interaction between the engine's quiescence
// fast-forward and the sharded cycle loop: a skip is legal only when no
// flit exists anywhere, and sharding must not change that judgment. The
// cross-tile outboxes drain within every Step, so per-tile quiescence is
// network quiescence — if an outbox could carry a flit across an engine
// skip, the stepped/skipped split and the delivery results below would
// diverge between the sequential and sharded runs.

// burstDriver injects a burst of cross-tile packets every interval cycles
// and idles in between, giving the fast-forward long provably-empty gaps
// bounded by scheduled events.
type burstDriver struct {
	net      *network.Network
	interval int64
	bursts   int
	sent     int
	arrived  int
}

func (d *burstDriver) Cycle(now int64) {
	if now%d.interval == 0 && d.sent < d.bursts {
		d.sent++
		// Corner to corner: the route crosses every row partition.
		n := d.net.Nodes()
		d.net.Send(d.net.NewPacket(0, n-1, 4, router.KindData))
		d.net.Send(d.net.NewPacket(n-1, 0, 4, router.KindData))
	}
}
func (d *burstDriver) Done(now int64) bool {
	return d.sent >= d.bursts && d.net.Quiescent()
}
func (d *burstDriver) Idle(now int64) bool {
	return d.sent >= d.bursts || now%d.interval != 0
}
func (d *burstDriver) NextEvent(now int64) int64 {
	if d.sent >= d.bursts {
		return engine.NoEvent
	}
	return (now/d.interval + 1) * d.interval
}

// TestEngineFastForwardShardedBursts: the engine must stop skipping the
// moment any tile holds traffic and must land exactly on the driver's
// scheduled bursts — identical end cycle, stepped/skipped split, and
// delivery counts at every shard count, with a substantial amount of
// fast-forwarding actually happening.
func TestEngineFastForwardShardedBursts(t *testing.T) {
	run := func(shards int) (engine.Outcome, int64, int64) {
		p := core.Baseline()
		p.Shards = shards
		cfg, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		net := network.New(cfg)
		defer net.Close()
		d := &burstDriver{net: net, interval: 1000, bursts: 5}
		net.OnReceive = func(now int64, pkt *router.Packet) { d.arrived++ }
		out := engine.RunOutcome(engine.Config{Net: net, Deadline: 100_000}, d)
		_, _, fi, fe := net.Stats()
		if d.arrived != 2*d.bursts {
			t.Fatalf("shards=%d: %d of %d packets arrived", shards, d.arrived, 2*d.bursts)
		}
		if fi != fe {
			t.Fatalf("shards=%d: %d flits injected but %d ejected", shards, fi, fe)
		}
		return out, fi, fe
	}
	seqOut, seqFI, seqFE := run(1)
	if !seqOut.Completed {
		t.Fatal("sequential run did not complete")
	}
	if seqOut.Skipped == 0 {
		t.Fatal("fast-forward never engaged; the test is not exercising skips")
	}
	for _, shards := range []int{2, 4, 8} {
		out, fi, fe := run(shards)
		if !reflect.DeepEqual(seqOut, out) {
			t.Errorf("shards=%d: engine outcome diverges:\nsequential: %+v\nsharded:    %+v", shards, seqOut, out)
		}
		if fi != seqFI || fe != seqFE {
			t.Errorf("shards=%d: stats diverge: injected %d/%d ejected %d/%d", shards, fi, seqFI, fe, seqFE)
		}
	}
}

// nicDriver sends a fixed set of packets at cycle 0 and then idles with no
// scheduled event: only the NIC's retransmission timeouts keep the run
// alive, so a fast-forward that skipped past a NIC deadline would wedge
// the run into the deadline (or the stall watchdog).
type nicDriver struct {
	net  *network.Network
	n    int
	sent bool
	dead int
}

func (d *nicDriver) Cycle(now int64) {
	if d.sent {
		return
	}
	d.sent = true
	for i := 0; i < d.n; i++ {
		d.net.Send(d.net.NewPacket(i, d.net.Nodes()-1-i, 1, router.KindData))
	}
}
func (d *nicDriver) Done(now int64) bool { return d.dead >= d.n }
func (d *nicDriver) Idle(now int64) bool { return d.sent }
func (d *nicDriver) NextEvent(now int64) int64 {
	if d.sent {
		return engine.NoEvent
	}
	return now
}

// TestEngineFastForwardShardedNICTimeouts: with a 100% drop rate every
// packet lives only through NIC timeouts and retries until abandonment.
// The engine's fast-forward must wake exactly at each NIC deadline on the
// sharded network too — same end cycle and stepped/skipped split.
func TestEngineFastForwardShardedNICTimeouts(t *testing.T) {
	run := func(shards int) engine.Outcome {
		p := core.Baseline()
		p.Shards = shards
		p.Fault = &fault.Params{
			DropRate:   1,
			Timeout:    500,
			MaxRetries: 2,
			Seed:       9,
		}
		cfg, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		net := network.New(cfg)
		defer net.Close()
		d := &nicDriver{net: net, n: 3}
		net.OnDeadDrop = func(now int64, pkt *router.Packet) { d.dead++ }
		out := engine.RunOutcome(engine.Config{Net: net, Deadline: 100_000}, d)
		if d.dead != d.n {
			t.Fatalf("shards=%d: %d of %d packets abandoned", shards, d.dead, d.n)
		}
		return out
	}
	seqOut := run(1)
	if !seqOut.Completed {
		t.Fatal("sequential run did not complete")
	}
	if seqOut.Skipped == 0 {
		t.Fatal("fast-forward never engaged across NIC timeouts")
	}
	for _, shards := range []int{2, 4} {
		if out := run(shards); !reflect.DeepEqual(seqOut, out) {
			t.Errorf("shards=%d: engine outcome diverges:\nsequential: %+v\nsharded:    %+v", shards, seqOut, out)
		}
	}
}
