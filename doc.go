// Package noceval is an on-chip network evaluation framework: a Go
// reproduction of "On-Chip Network Evaluation Framework" (Kim, Heo, Lee,
// Huh, Kim — SC 2010).
//
// The library lives under internal/: a cycle-accurate VC-router network
// simulator (internal/router, internal/network) with the Table I parameter
// space (internal/topology, internal/routing, internal/traffic), the
// open-loop and closed-loop measurement methodologies (internal/openloop,
// internal/closedloop), a trace-driven replay engine (internal/trace), an
// execution-driven CMP simulator standing in for Simics/GEMS+Garnet
// (internal/cmp, internal/workload), and the evaluation framework tying
// them together (internal/core).
//
// Executables: cmd/noceval runs single experiments; cmd/figures
// regenerates every table and figure of the paper. Runnable examples live
// under examples/. The root-level benchmarks (bench_test.go) provide one
// testing.B entry per paper table/figure.
package noceval
