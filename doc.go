// Package noceval is an on-chip network evaluation framework: a Go
// reproduction of "On-Chip Network Evaluation Framework" (Kim, Heo, Lee,
// Huh, Kim — SC 2010).
//
// The library lives under internal/: a cycle-accurate VC-router network
// simulator (internal/router, internal/network) with the Table I parameter
// space (internal/topology, internal/routing, internal/traffic), the
// open-loop and closed-loop measurement methodologies (internal/openloop,
// internal/closedloop), a trace-driven replay engine (internal/trace), an
// execution-driven CMP simulator standing in for Simics/GEMS+Garnet
// (internal/cmp, internal/workload), and the evaluation framework tying
// them together (internal/core).
//
// Executables: cmd/noceval runs single experiments; cmd/figures
// regenerates every table and figure of the paper. Runnable examples live
// under examples/. The root-level benchmarks (bench_test.go) provide one
// testing.B entry per paper table/figure.
//
// # Observability
//
// internal/obs is the in-flight observability layer: a metrics registry
// (counters, gauges, histograms), cycle-sampled per-router telemetry with
// CSV/JSON export and congestion heatmaps, a flit-lifecycle tracer with
// Chrome trace-event export, and progress/profiling hooks. It attaches to
// any run through core.Hooks and the -metrics/-trace/-progress flags of
// cmd/noceval. The layer is opt-in and nil-safe: with no observer
// attached the per-cycle hot path pays a nil check and performs zero heap
// allocations (obs_guard_test.go pins this).
package noceval
