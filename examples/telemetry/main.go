// Telemetry: attach the observability layer to a small batch-model sweep.
// Each run collects run-level metrics, cycle-sampled per-router telemetry,
// and the per-node outstanding-request (MSHR-depth) series, and prints a
// progress heartbeat to stderr while it runs. The final run's utilization
// is rendered as a congestion heatmap.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"noceval/internal/core"
	"noceval/internal/obs"
	"noceval/internal/topology"
)

func main() {
	// Table II interconnect: 4x4 mesh, 8 VCs, 4-flit buffers, DOR.
	params := core.Table2Network(1)
	topo, err := topology.ByName(params.Topology)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Batch-model sweep with telemetry attached ==")
	fmt.Printf("%6s %12s %18s %20s\n", "m", "runtime", "mean latency", "peak xbar util")

	var last *obs.Observer
	for _, m := range []int{1, 4, 16} {
		// A fresh observer per run; nil would be the zero-overhead path.
		o := obs.NewObserver(obs.Options{Metrics: true, SampleEvery: 50})
		res, err := core.Batch(params, core.BatchParams{
			B: 400, M: m,
			Hooks: core.Hooks{
				Obs:      o,
				Progress: obs.NewProgress(os.Stderr, 500*time.Millisecond),
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		// Pull the headline numbers back out of the metrics snapshot.
		var meanLat float64
		for _, p := range o.Registry.Snapshot() {
			if p.Name == "batch.packet_latency_cycles" {
				meanLat = p.Value
			}
		}
		peak := 0.0
		for _, u := range o.Telemetry.MeanXbarUtil(topo.N) {
			if u > peak {
				peak = u
			}
		}
		fmt.Printf("%6d %12d %18.2f %20.4f\n", m, res.Runtime, meanLat, peak)
		last = o
	}

	fmt.Println("\n== Congestion heatmap (m=16 run, mean crossbar utilization) ==")
	hm := core.UtilizationHeatmap(last.Telemetry, topo)
	fmt.Print(hm.String())
	fmt.Printf("max %.4f flits/cycle — DOR concentrates through-traffic on the center routers.\n",
		hm.MaxValue())

	// The per-node outstanding-request series shows the closed loop at work:
	// every node holds m requests in flight until its batch drains.
	n := len(last.Telemetry.Nodes)
	if n > 0 {
		s := last.Telemetry.Nodes[n/2]
		fmt.Printf("\nmid-run MSHR sample: cycle %d, node %d, %d outstanding\n",
			s.Cycle, s.Node, s.Outstanding)
	}
}
