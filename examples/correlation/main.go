// Correlation: the paper's headline experiment in miniature. Compare the
// baseline batch model and the enhanced batch model (NAR injection + reply
// latency + kernel traffic) against execution-driven simulation across a
// router-delay sweep, and report the correlation coefficients (§IV-D, §V).
//
//	go run ./examples/correlation
package main

import (
	"fmt"
	"log"

	"noceval/internal/core"
	"noceval/internal/workload"
)

func main() {
	benchmarks := []string{"blackscholes", "lu", "fft"}
	trs := []int64{1, 2, 4, 8}
	clock := workload.Clock3GHz

	// 1. Execution-driven runtimes, normalized to tr=1 per benchmark.
	execNorm := map[string][]float64{}
	for _, b := range benchmarks {
		norm, err := core.ExecSweep(b, trs, core.ExecParams{Clock: clock, Timer: true, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		execNorm[b] = norm
		fmt.Printf("exec %-14s %v\n", b, fmt.Sprintf("%.2f %.2f %.2f %.2f", norm[0], norm[1], norm[2], norm[3]))
	}

	// 2. Baseline batch model: one curve for every benchmark.
	baNorm, err := core.BatchSweep(trs, core.BatchParams{B: 300, M: 1})
	if err != nil {
		log.Fatal(err)
	}
	baseline := map[string][]float64{}
	for _, b := range benchmarks {
		baseline[b] = baNorm
	}

	// 3. Enhanced batch model: per-benchmark parameters measured from
	//    ideal-network characterization runs.
	enhanced := map[string][]float64{}
	for _, b := range benchmarks {
		m, err := core.Characterize(b, clock, 7)
		if err != nil {
			log.Fatal(err)
		}
		norm, err := core.BatchSweep(trs, m.BatchParams(300, 1, core.BAInjReOS))
		if err != nil {
			log.Fatal(err)
		}
		enhanced[b] = norm
		fmt.Printf("batch(%-12s) NAR=%.4f L2miss=%.3f -> %v\n",
			b, m.NAR, m.L2Miss, fmt.Sprintf("%.2f %.2f %.2f %.2f", norm[0], norm[1], norm[2], norm[3]))
	}

	// 4. Correlations.
	cb, err := core.CorrelateExecBatch(benchmarks, trs, execNorm, baseline)
	if err != nil {
		log.Fatal(err)
	}
	ce, err := core.CorrelateExecBatch(benchmarks, trs, execNorm, enhanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncorrelation with execution-driven runtimes:\n")
	fmt.Printf("  baseline batch model  (BA):           %.4f\n", cb.Coefficient)
	fmt.Printf("  enhanced batch model  (BA_inj+re+OS): %.4f\n", ce.Coefficient)
	fmt.Println("\nThe enhanced model tracks per-benchmark sensitivity to the network,")
	fmt.Println("which the baseline model cannot distinguish at all (paper Figs 15/19/22).")
}
