// Designspace: explore a topology x routing design space with the
// closed-loop batch model — the framework's intended use-case of fast
// design-space exploration with system-level insight.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"noceval/internal/core"
)

func main() {
	topologies := []string{"mesh8x8", "torus8x8", "ring64"}
	routings := map[string][]string{
		"mesh8x8":  {"dor", "ma", "romm", "val"},
		"torus8x8": {"dor"},
		"ring64":   {"dor"},
	}

	fmt.Println("Design-space sweep: batch model, b=500, uniform random traffic")
	fmt.Printf("%-10s %-6s %6s %12s %14s\n", "topology", "alg", "m", "runtime", "throughput")
	type key struct{ topo, alg string }
	best := map[int]key{}
	bestT := map[int]int64{}
	for _, topo := range topologies {
		for _, alg := range routings[topo] {
			for _, m := range []int{1, 8} {
				p := core.Baseline()
				p.Topology = topo
				p.Routing = alg
				p.VCs = 4 // enough VC classes for every algorithm
				res, err := core.Batch(p, core.BatchParams{B: 500, M: m})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-10s %-6s %6d %12d %14.4f\n", topo, alg, m, res.Runtime, res.Throughput)
				if t, ok := bestT[m]; !ok || res.Runtime < t {
					bestT[m] = res.Runtime
					best[m] = key{topo, alg}
				}
			}
		}
	}
	for _, m := range []int{1, 8} {
		fmt.Printf("\nbest at m=%d: %s/%s (T=%d)\n", m, best[m].topo, best[m].alg, bestT[m])
	}
	fmt.Println("\nNote how the winner can change with m: latency-bound systems (m=1)")
	fmt.Println("prefer low-diameter paths, throughput-bound systems (m=8) prefer bisection.")
}
