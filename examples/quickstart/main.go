// Quickstart: measure a latency-vs-load curve for an 8x8 mesh with the
// open-loop methodology, then measure the same network with the closed-loop
// batch model — the two lenses the framework compares.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"noceval/internal/core"
)

func main() {
	// Table I baseline: 8x8 mesh, DOR, 2 VCs, 16-flit buffers, tr=1.
	params := core.Baseline()

	fmt.Println("== Open-loop: latency vs offered load ==")
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	results, err := core.OpenLoopSweep(params, rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %14s %10s\n", "offered", "avg latency", "stable")
	for _, r := range results {
		fmt.Printf("%10.2f %14.2f %10v\n", r.Rate, r.AvgLatency, r.Stable)
	}

	fmt.Println("\n== Closed-loop batch model: runtime vs outstanding requests ==")
	fmt.Printf("%6s %12s %22s\n", "m", "runtime", "throughput (flits/cyc/node)")
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		res, err := core.Batch(params, core.BatchParams{B: 500, M: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12d %22.4f\n", m, res.Runtime, res.Throughput)
	}

	fmt.Println("\nThe batch runtime at m=1 tracks zero-load latency; at m=32 it")
	fmt.Println("saturates at the same throughput the open-loop curve saturates at.")
}
