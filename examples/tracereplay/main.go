// Tracereplay: demonstrate the trace-driven methodology (§II) and its
// known limitation. A packet trace is captured from a closed-loop batch run,
// then replayed on networks with different router delays: because replay
// fixes injection times, it loses message causality — the network slowdown
// it predicts understates what the closed-loop system actually experiences.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/trace"
)

func buildNet(tr int64) network.Config {
	p := core.Baseline()
	p.RouterDelay = tr
	cfg, err := p.Build()
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}

func main() {
	// 1. Capture a trace from a closed-loop batch run on the tr=1 network.
	//    The recorder observes every packet the batch protocol injects.
	capCfg := buildNet(1)
	net := network.New(capCfg)
	rec := trace.NewRecorder(capCfg.Topo.N)
	rec.Attach(net)

	// Drive the same request/reply protocol the batch model uses.
	const b, m = 100, 2
	type state struct{ sent, done, pf int }
	nodes := make([]state, capCfg.Topo.N)
	rng := net.RNG()
	net.OnReceive = func(now int64, p *router.Packet) {
		switch p.Kind {
		case router.KindRequest:
			net.Send(net.NewPacket(p.Dst, p.Src, 1, router.KindReply))
		case router.KindReply:
			nodes[p.Dst].pf--
			nodes[p.Dst].done++
		}
	}
	for {
		finished := 0
		for i := range nodes {
			if nodes[i].sent < b && nodes[i].pf < m {
				net.Send(net.NewPacket(i, rng.Intn(len(nodes)), 1, router.KindRequest))
				nodes[i].sent++
				nodes[i].pf++
			}
			if nodes[i].done >= b {
				finished++
			}
		}
		if finished == len(nodes) {
			break
		}
		net.Step()
	}
	tr := rec.Trace()
	fmt.Printf("captured %d packets over %d cycles from a closed-loop run (tr=1)\n",
		len(tr.Events), net.Now())

	// 2. Replay on slower networks, and compare with real closed-loop runs.
	fmt.Printf("\n%6s %18s %18s\n", "tr", "replay runtime", "closed-loop runtime")
	for _, rd := range []int64{1, 2, 4} {
		rep, err := trace.Replay(tr, buildNet(rd), 0)
		if err != nil {
			log.Fatal(err)
		}
		p := core.Baseline()
		p.RouterDelay = rd
		closed, err := closedloop.RunBatch(closedloop.BatchConfig{
			Net: func() network.Config { c, _ := p.Build(); return c }(),
			B:   b, M: m, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %18d %18d\n", rd, rep.Runtime, closed.Runtime)
	}
	fmt.Println("\nThe replayed runtimes barely grow with tr: fixed timestamps cannot")
	fmt.Println("model the injection slowdown that network feedback causes in the")
	fmt.Println("closed-loop system — the paper's §II critique of trace-driven evaluation.")
}
