// Fullsystem: run a benchmark on the execution-driven CMP simulator — the
// repository's Simics/GEMS+Garnet substitute — and watch how the network's
// router delay changes end-to-end runtime, kernel-traffic share, and cache
// behaviour.
//
//	go run ./examples/fullsystem
package main

import (
	"fmt"
	"log"

	"noceval/internal/core"
	"noceval/internal/workload"
)

func main() {
	bench := "lu"
	fmt.Printf("Execution-driven simulation of %s on the Table II CMP\n", bench)
	fmt.Printf("(16 in-order cores, MSI directory over a 4x4 mesh, 75 MHz clock, timer on)\n\n")

	fmt.Printf("%6s %12s %16s %14s %10s\n", "tr", "cycles", "slowdown vs tr=1", "kernel share", "L2 miss")
	var base int64
	for _, tr := range []int64{1, 2, 4, 8} {
		res, err := core.Exec(core.Table2Network(tr), core.ExecParams{
			Benchmark: bench,
			Clock:     workload.Clock75MHz,
			Timer:     true,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%6d %12d %16.2fx %13.1f%% %10.3f\n",
			tr, res.Cycles, float64(res.Cycles)/float64(base),
			100*float64(res.KernelFlits)/float64(res.TotalFlits),
			res.L2MissRate[0])
	}

	fmt.Println("\nCharacterization (the Table III/IV procedure):")
	m, err := core.Characterize(bench, workload.Clock75MHz, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  NAR %.4f (user %.4f, kernel %.4f)\n", m.NAR, m.UserNAR, m.KernelNAR)
	fmt.Printf("  L2 miss rate %.3f, static kernel fraction %.3f\n", m.L2Miss, m.StaticKernelFrac)
	fmt.Printf("  timer: every %d cycles, ~%d extra transactions/node/interrupt\n",
		m.TimerPeriod, m.TimerBatch)
	fmt.Println("\nThese numbers parameterize the enhanced batch model (see examples/correlation).")
}
