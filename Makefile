# Convenience targets for the noceval repository. Everything is plain
# `go` underneath; these just capture the common invocations.

GO ?= go

.PHONY: all build vet test race check bench figures ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything that must stay green.
check: build vet test race

# One testing.B per paper table/figure; each reports its headline metric.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate every paper figure and table into results/.
figures:
	$(GO) run ./cmd/figures -all

# Paper-scale parameters (slow).
figures-full:
	$(GO) run ./cmd/figures -all -full

ablations:
	$(GO) run ./cmd/ablations -out results/ablations.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/designspace
	$(GO) run ./examples/fullsystem
	$(GO) run ./examples/correlation
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/telemetry

clean:
	rm -rf results
