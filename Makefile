# Convenience targets for the noceval repository. Everything is plain
# `go` underneath; these just capture the common invocations.

GO ?= go

.PHONY: all build vet fmt-check lint test race fuzz-smoke golden golden-update check bench bench-compare bench-gate bench-baseline obs-smoke screen-smoke qos-smoke serve-smoke figures ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-formatted (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Staticcheck's correctness checks (the SA family). Skips gracefully when
# the binary is absent so `make check` works on a bare toolchain; CI
# installs it and runs the same invocation.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks 'SA*' ./...; \
	else \
		echo "staticcheck not installed; skipping lint (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage-guided fuzz smoke: 30s per target over the parsers and the
# cache-key canonicalization (go fuzzing allows one -fuzz target per
# invocation, hence the sequence). FUZZTIME=10s make fuzz-smoke for a
# quicker local pass.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/topology -fuzz=FuzzByName -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/expcache -fuzz=FuzzKeyCanonicalization -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/expcache -fuzz=FuzzKeyConfigSensitivity -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -fuzz=FuzzClassSpec -fuzztime=$(FUZZTIME)

# Golden-figure regression gate: regenerate the golden subset and compare
# against the committed CSVs in results/golden (see cmd/figures/golden_test.go).
golden:
	$(GO) test ./cmd/figures -run TestGoldenFigures -count=1 -v

# Rewrite the committed goldens after a deliberate simulator change.
# Review the resulting diff before committing.
golden-update:
	$(GO) run ./cmd/figures -golden -out results/golden

# Metrics-endpoint smoke: start the live exporter against a real cached
# sweep, scrape /metrics, and validate the Prometheus exposition format
# plus the cross-run counters (see internal/obs/export/export_test.go).
obs-smoke:
	$(GO) test ./internal/obs/export -run TestMetricsEndpointSmoke -count=1 -v

# Screening-soundness smoke: regenerate the golden figure subset twice on
# this machine — once unscreened, once with analytic screening — and
# require the outputs to be byte-identical. This is the hard screening
# contract (screening decides whether a point simulates, never what a
# simulation computes); the committed goldens are compared separately,
# with tolerances, by the golden gate.
screen-smoke:
	@rm -rf /tmp/noceval-screen-off /tmp/noceval-screen-on
	$(GO) run ./cmd/figures -golden -out /tmp/noceval-screen-off
	$(GO) run ./cmd/figures -golden -screen -out /tmp/noceval-screen-on
	diff -r /tmp/noceval-screen-off /tmp/noceval-screen-on
	@echo "screen-smoke: screened and unscreened golden figures are byte-identical"

# QoS smoke: the tiny two-class gates — at the low-priority class's
# saturation knee the high-priority p99 must stay below the low-priority
# p99 (priority protection), and the priority-queueing estimator must
# track the simulated per-class curves pre-saturation. QoS is opt-in, so
# the class-free golden figures must stay byte-stable; the golden gate
# re-runs here to enforce that pairing explicitly.
qos-smoke:
	$(GO) test ./cmd/figures -run 'TestQoSPriority' -count=1 -v
	$(GO) test . -run 'TestQoS' -count=1
	$(GO) test ./cmd/figures -run TestGoldenFigures -count=1

# Experiment-service smoke: boot nocd with cache + ledger, drive it with
# nocload (prime, coalescing burst, cached throughput gate at >= 100
# req/s), assert the coalesce and cache-hit counters via /metrics, and
# require a clean SIGTERM drain. MIN_RPS=50 make serve-smoke to loosen
# the gate on a slow machine.
serve-smoke:
	./scripts/serve-smoke.sh

# Tier-1 gate: everything that must stay green. The golden regression
# test runs as part of `test` (cmd/figures); `golden` re-runs it verbosely.
check: build vet fmt-check lint test race obs-smoke screen-smoke qos-smoke serve-smoke

# One testing.B per paper table/figure; each reports its headline metric.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Compare the legacy full-scan cycle loop against the activity-tracked
# engine on the idle-heavy benchmarks, 5 runs each. The engine=fullscan /
# engine=activeset sub-benchmark results are split into two files with a
# common benchmark name so benchstat can pair them; when benchstat is not
# installed the raw per-run numbers are still left in results/.
bench-compare:
	@mkdir -p results
	$(GO) test -run '^$$' -bench 'IdleOpenLoopLowLoad|IdleBatchTail' -benchtime=10x -count=5 . | tee results/bench-engines.txt
	$(GO) run ./cmd/benchjson -in results/bench-engines.txt -out results/bench-engines.json
	@grep 'engine=fullscan' results/bench-engines.txt | sed 's|/engine=fullscan||' > results/bench-fullscan.txt
	@grep 'engine=activeset' results/bench-engines.txt | sed 's|/engine=activeset||' > results/bench-activeset.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat results/bench-fullscan.txt results/bench-activeset.txt; \
	else \
		echo "benchstat not installed: raw runs left in results/bench-fullscan.txt and results/bench-activeset.txt"; \
	fi
	$(GO) test -run '^$$' -bench 'ShardScaling' -benchtime=3x -count=5 . | tee results/bench-shards.txt
	@grep 'shards=1-' results/bench-shards.txt | sed 's|/shards=1||' > results/bench-shards-seq.txt
	@grep 'shards=4-' results/bench-shards.txt | sed 's|/shards=4||' > results/bench-shards-par.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat results/bench-shards-seq.txt results/bench-shards-par.txt; \
	else \
		echo "benchstat not installed: raw runs left in results/bench-shards-seq.txt and results/bench-shards-par.txt"; \
	fi
	$(GO) test -run '^$$' -bench 'SweepScreening' -benchtime=3x -count=5 . | tee results/bench-screen.txt
	@grep 'screen=off' results/bench-screen.txt | sed 's|/screen=off||' > results/bench-screen-off.txt
	@grep 'screen=on' results/bench-screen.txt | sed 's|/screen=on||' > results/bench-screen-on.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat results/bench-screen-off.txt results/bench-screen-on.txt; \
	else \
		echo "benchstat not installed: raw runs left in results/bench-screen-off.txt and results/bench-screen-on.txt"; \
	fi

# Engine-benchmark set fed to the performance gate: the two idle-heavy
# engine comparisons plus the analytic estimator path (it runs before
# every screened sweep, so it must stay cheap). ShardScaling and
# SweepScreening are deliberately NOT gated — their wall time tracks the
# host's parallel capacity, which shared runners do not hold constant
# (observed ~2x window-to-window swings); measure them with bench-compare
# instead.
BENCH_ENGINES = IdleOpenLoopLowLoad|IdleBatchTail|AnalyticCurve
TOLERANCE ?= 0.15

# Performance gate: run the engine benchmarks, archive the JSON, and fail
# if any benchmark's ns/op regressed more than TOLERANCE (a fraction; CI
# passes a looser value because shared runners are noisy). The committed
# baseline tracks whatever machine last ran bench-baseline — compare
# like with like.
bench-gate:
	@mkdir -p results
	$(GO) test -run '^$$' -bench '$(BENCH_ENGINES)' -benchtime=3x -count=3 . | tee results/bench-engines.txt
	$(GO) run ./cmd/benchjson -in results/bench-engines.txt -out results/bench-engines.json \
		-baseline results/bench-baseline.json -tolerance $(TOLERANCE)

# Rewrite the committed performance baseline after a deliberate engine
# change. Review the resulting diff before committing.
bench-baseline:
	@mkdir -p results
	$(GO) test -run '^$$' -bench '$(BENCH_ENGINES)' -benchtime=3x -count=3 . | tee results/bench-engines.txt
	$(GO) run ./cmd/benchjson -in results/bench-engines.txt -out results/bench-baseline.json

# Regenerate every paper figure and table into results/.
figures:
	$(GO) run ./cmd/figures -all

# Paper-scale parameters (slow).
figures-full:
	$(GO) run ./cmd/figures -all -full

ablations:
	$(GO) run ./cmd/ablations -out results/ablations.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/designspace
	$(GO) run ./examples/fullsystem
	$(GO) run ./examples/correlation
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/telemetry

clean:
	rm -rf results
