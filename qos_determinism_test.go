package noceval

// Multi-class determinism matrix: the QoS refactor threads a class
// dimension through injection, arbitration, and accounting, and every
// bit-identity guarantee the single-class stack pins must carry over —
// cross-engine (legacy full scan vs active set) and across shard counts,
// for both 2- and 3-class mixes. A fault-invariant pass runs the
// conservation oracle with classes and a lossy fabric enabled together,
// since retransmission clones must preserve the class stamp.

import (
	"fmt"
	"reflect"
	"testing"

	"noceval/internal/core"
	"noceval/internal/fault"
	"noceval/internal/fault/invariants"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/openloop"
	"noceval/internal/traffic"
)

// qosMatrixParams enumerates the class mixes the matrix runs: a 2-class
// priority/bulk split and a 3-class mix with a non-uniform pattern in the
// middle class (classes may disagree on pattern and size distribution).
func qosMatrixParams() []core.NetworkParams {
	two := core.Baseline()
	two.VCs = 4
	two.Classes = []core.ClassSpec{
		{Name: "hi", Share: 0.3},
		{Name: "lo", Share: 0.7, Sizes: "bimodal"},
	}
	three := core.Baseline()
	three.VCs = 6
	three.Classes = []core.ClassSpec{
		{Name: "ctl", Share: 0.1},
		{Name: "data", Share: 0.4, Pattern: "transpose"},
		{Name: "bulk", Share: 0.5, Sizes: "bimodal"},
	}
	return []core.NetworkParams{two, three}
}

// qosOpenLoop runs one multi-class open-loop measurement on the given
// network config, with the class list resolved from p.
func qosOpenLoop(t *testing.T, p core.NetworkParams, cfg network.Config, fullScan bool) (*openloop.Result, *obs.Telemetry) {
	t.Helper()
	pat, err := p.BuildPattern()
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := p.BuildSizes()
	if err != nil {
		t.Fatal(err)
	}
	classes, err := p.BuildClasses()
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{Metrics: true, SampleEvery: 250})
	res, err := openloop.Run(openloop.Config{
		Net: cfg, Pattern: pat, Sizes: sizes, Classes: classes, Rate: 0.12,
		Warmup: 500, Measure: 2000, DrainLimit: 10000, Seed: 42,
		Obs: o, FullScan: fullScan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, o.Telemetry
}

// TestQoSCrossEngineDeterminism pins the multi-class stack across the two
// cycle engines: per-class injection order, strict-priority allocation,
// and per-class accounting must be identical under the legacy full scan
// and the active-set fast-forward path.
func TestQoSCrossEngineDeterminism(t *testing.T) {
	for _, p := range qosMatrixParams() {
		p.Shards = core.EnvShards()
		t.Run(fmt.Sprintf("classes=%d", len(p.Classes)), func(t *testing.T) {
			cfg, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			resFull, telFull := qosOpenLoop(t, p, cfg, true)
			resActive, telActive := qosOpenLoop(t, p, cfg, false)
			if len(resFull.PerClass) != len(p.Classes) {
				t.Fatalf("expected %d per-class results, got %d", len(p.Classes), len(resFull.PerClass))
			}
			if !reflect.DeepEqual(resFull, resActive) {
				t.Errorf("multi-class results diverge:\nfullscan:  %+v\nactiveset: %+v", resFull, resActive)
			}
			if !reflect.DeepEqual(telFull, telActive) {
				t.Errorf("multi-class telemetry diverges: fullscan %d router samples, activeset %d",
					len(telFull.Routers), len(telActive.Routers))
			}
		})
	}
}

// TestQoSShardedDeterminism pins the multi-class stack across shard
// counts: the sharded gang must produce the same per-class results and
// telemetry as the sequential loop, bit for bit.
func TestQoSShardedDeterminism(t *testing.T) {
	for _, base := range qosMatrixParams() {
		for _, shards := range []int{2, 4} {
			p := base
			p.Shards = 1
			cfgSeq, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			p.Shards = shards
			cfgSh, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			t.Run(fmt.Sprintf("classes=%d/shards=%d", len(p.Classes), shards), func(t *testing.T) {
				resSeq, telSeq := qosOpenLoop(t, p, cfgSeq, false)
				resSh, telSh := qosOpenLoop(t, p, cfgSh, false)
				if !reflect.DeepEqual(resSeq, resSh) {
					t.Errorf("multi-class results diverge:\nsequential: %+v\nsharded:    %+v", resSeq, resSh)
				}
				if !reflect.DeepEqual(telSeq, telSh) {
					t.Errorf("multi-class telemetry diverges: sequential %d router samples, sharded %d",
						len(telSeq.Routers), len(telSh.Routers))
				}
			})
		}
	}
}

// TestQoSFaultInvariants runs the conservation oracle on a lossy fabric
// with QoS classes enabled: drops, corruption retries, and NIC
// retransmission must keep flit/credit conservation intact when the VC
// space is partitioned and arbitration is strict-priority. Both engines
// run, and their results must also agree with each other.
func TestQoSFaultInvariants(t *testing.T) {
	for _, p := range qosMatrixParams() {
		p.Shards = core.EnvShards()
		p.Fault = &fault.Params{
			CorruptRate: 1e-3, DropRate: 1e-3,
			Timeout: 300, MaxRetries: 6, Seed: 17,
		}
		t.Run(fmt.Sprintf("classes=%d", len(p.Classes)), func(t *testing.T) {
			cfg, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			classes, err := p.BuildClasses()
			if err != nil {
				t.Fatal(err)
			}
			run := func(fullScan bool) *openloop.Result {
				res, err := openloop.Run(openloop.Config{
					Net: cfg, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1),
					Classes: classes, Rate: 0.1,
					Warmup: 500, Measure: 1000, DrainLimit: 400_000,
					Seed: 42, FullScan: fullScan,
					Inspect: func(n *network.Network) {
						if err := invariants.Check(n); err != nil {
							t.Errorf("fullscan=%v: %v", fullScan, err)
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			resFull := run(true)
			resActive := run(false)
			if !reflect.DeepEqual(resFull, resActive) {
				t.Errorf("faulted multi-class results diverge:\nfullscan:  %+v\nactiveset: %+v", resFull, resActive)
			}
		})
	}
}
