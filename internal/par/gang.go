package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"noceval/internal/obs"
)

// gangSampleEvery is the Run-call sampling period for per-member busy-time
// measurement: every 64th wave pays four clock reads per member, keeping
// the imbalance statistics cheap enough for the per-cycle path.
const gangSampleEvery = 64

// spinBudget is how many no-progress polls a waiter burns before giving
// the processor back — Gosched in barriers, a channel park in the worker
// dispatch loop. The gang synchronizes several times per simulated cycle
// and the longest expected wait is a whole serial section on member 0
// (cross-tile bookkeeping, engine sampling, injection draws), easily
// 100µs+; both a futex sleep/wake pair and a Gosched storm cost more
// than spinning that out on a core with nothing else to run, so the
// budget is sized to cover serial sections with a wide margin and a
// waiter yields only when the engine genuinely goes idle (quiescence
// fast-forward, end of run). The budget applies only when every member
// can hold a processor simultaneously — an oversubscribed gang (more
// members than GOMAXPROCS) would spin against members that cannot run,
// so it yields immediately.
const spinBudget = 1 << 18

// Gang is a long-lived crew of pinned workers for the sharded cycle loop.
// Where Parallel hands independent tasks to a transient pool, a Gang runs
// the same function concurrently on every member once per Run — one member
// per network tile — with a spin barrier (Barrier) available inside the
// function for intra-cycle phase synchronization. Run is called once per
// simulated cycle, so dispatch stays cheap: the caller executes member 0
// itself and wakes the members-1 resident workers over per-worker
// channels; within the Run the members synchronize through an atomic
// sense-reversing barrier with no further channel traffic.
//
// A panic inside the function aborts the wave: the other members are
// released from whatever barrier they are spinning at, the Gang is marked
// broken (subsequent Runs re-raise), and the first panic surfaces on the
// calling goroutine wrapped in a TaskPanic, exactly like Parallel.
//
// The resident workers reference only the Gang's internal state, never the
// Gang itself, so an abandoned Gang is collectable: a finalizer closes the
// dispatch channels and the workers exit. Explicit Close is still
// preferred — run modes close their network when they finish.
type Gang struct {
	s *gangState
}

type gangState struct {
	n      int
	spin   int // per-wait spin budget: spinBudget, or 0 when oversubscribed
	fn     func(member int)
	wave   atomic.Int64    // dispatch sequence, incremented once per Run
	start  []chan struct{} // per-worker park/wake fallback, index 1..n-1
	parked []atomic.Bool   // worker w is blocked on start[w], index 1..n-1
	bar    barrier         // intra-Run phase barrier (Barrier method)
	end    barrier         // Run-completion barrier

	abort    atomic.Bool
	panicked atomic.Pointer[TaskPanic]
	closed   atomic.Bool
	broken   bool // only the dispatching goroutine reads or writes this

	// Imbalance sampling: every gangSampleEvery-th Run measures each
	// member's busy time; see Stats.
	waves     int64
	published int64 // waves already added to cWaves
	sampling  bool
	busyNS    []int64
	samples   int64
	sumImb    float64

	// Registry instruments (nil-safe when no default registry is set).
	cWaves *obs.Counter
	gImb   *obs.Gauge
}

// NewGang starts a gang of the given size (clamped to >= 1). members-1
// worker goroutines are spawned immediately and live until Close or
// finalization.
func NewGang(members int) *Gang {
	if members < 1 {
		members = 1
	}
	reg := obs.Default()
	s := &gangState{
		n:      members,
		start:  make([]chan struct{}, members),
		parked: make([]atomic.Bool, members),
		busyNS: make([]int64, members),
		cWaves: reg.Counter("shard.waves"),
		gImb:   reg.Gauge("shard.imbalance"),
	}
	if members <= runtime.GOMAXPROCS(0) {
		s.spin = spinBudget
	}
	s.bar.n = int32(members)
	s.bar.spin = s.spin
	s.end.n = int32(members)
	s.end.spin = s.spin
	for w := 1; w < members; w++ {
		s.start[w] = make(chan struct{}, 1)
		go s.worker(w)
	}
	g := &Gang{s: s}
	if members > 1 {
		runtime.SetFinalizer(g, (*Gang).Close)
	}
	return g
}

// Members returns the gang size.
func (g *Gang) Members() int { return g.s.n }

// Run executes fn(0) .. fn(n-1) concurrently, one call per member, and
// returns when all have finished. The caller runs member 0. fn may call
// Barrier to synchronize phases across members.
func (g *Gang) Run(fn func(member int)) {
	s := g.s
	switch {
	case s.broken:
		panic(fmt.Sprintf("par: Run on a gang broken by an earlier panic: %v", s.panicked.Load().Value))
	case s.closed.Load():
		panic("par: Run on a closed gang")
	}
	s.waves++
	s.sampling = s.waves%gangSampleEvery == 0
	s.fn = fn
	s.wave.Add(1)
	// Wake only workers that gave up spinning and parked; a worker still
	// in its dispatch spin observes the wave counter directly. The Dekker
	// ordering with the worker (parked.Store then wave recheck, against
	// wave.Add then parked.Load here) guarantees no wakeup is lost. The
	// send must not block: a worker that observed the new wave during its
	// park attempt leaves without draining its token, so the buffer may
	// still be full — a worker can never be blocked on a non-empty
	// channel, so a full buffer already guarantees the next park wakes.
	for w := 1; w < s.n; w++ {
		if s.parked[w].Load() {
			select {
			case s.start[w] <- struct{}{}:
			default:
			}
		}
	}
	s.runMember(0)
	if s.n > 1 {
		s.end.wait(&s.abort)
	}
	if tp := s.panicked.Load(); tp != nil {
		s.broken = true
		panic(tp)
	}
	if s.sampling {
		s.recordSample()
	}
}

// Barrier blocks until every member of the current Run arrives. It must be
// called the same number of times by every member, only from inside the
// function passed to Run. If another member panicked, Barrier unwinds this
// member instead of deadlocking.
func (g *Gang) Barrier() {
	s := g.s
	if s.n == 1 {
		return
	}
	if !s.bar.wait(&s.abort) {
		panic(gangAbort{})
	}
}

// Stats reports dispatch and load-balance statistics: waves is the number
// of Run calls so far; imbalance is the mean, over sampled waves, of the
// slowest member's busy time divided by the mean busy time (1 = perfectly
// balanced, n = all work on one member; 0 before the first sample).
func (g *Gang) Stats() (waves int64, imbalance float64) {
	s := g.s
	if s.samples > 0 {
		imbalance = s.sumImb / float64(s.samples)
	}
	return s.waves, imbalance
}

// Close shuts the resident workers down and publishes the final wave count
// to the registry. Idempotent; Run after Close panics.
func (g *Gang) Close() {
	s := g.s
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	runtime.SetFinalizer(g, nil)
	for w := 1; w < s.n; w++ {
		close(s.start[w])
	}
	s.cWaves.Add(s.waves - s.published)
}

// runMember executes the current wave's function as member w, capturing a
// panic into the shared abort state. A gangAbort (unwinding out of Barrier
// after another member's panic) is swallowed: the original panic is the
// one to report.
func (s *gangState) runMember(w int) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(gangAbort); ok {
				return
			}
			s.panicked.CompareAndSwap(nil, &TaskPanic{Task: w, Value: v, Stack: debug.Stack()})
			s.abort.Store(true)
		}
	}()
	if s.sampling {
		t0 := time.Now()
		s.fn(w)
		s.busyNS[w] = time.Since(t0).Nanoseconds()
		return
	}
	s.fn(w)
}

// worker is the resident loop of members 1..n-1. The hot path spins on the
// wave counter — Run is called once per simulated cycle, so the next wave
// usually arrives within the spin budget and no scheduler round trip is
// paid. When the budget runs out (the engine is fast-forwarding through
// quiescence, or the run ended), the worker announces itself parked and
// blocks on its wake channel; Run wakes parked workers explicitly and
// Close releases them by closing the channel. Tokens never start a wave —
// only the wave counter does — so a token deposited during the
// park/observe race merely causes one spurious unpark.
func (s *gangState) worker(w int) {
	var seen int64
	for {
		for spins := 0; s.wave.Load() == seen; spins++ {
			if s.closed.Load() {
				return
			}
			if spins < s.spin {
				continue
			}
			s.parked[w].Store(true)
			if s.wave.Load() != seen {
				s.parked[w].Store(false)
				break
			}
			if _, ok := <-s.start[w]; !ok {
				return
			}
			s.parked[w].Store(false)
			spins = 0
		}
		seen++
		s.runMember(w)
		s.end.wait(&s.abort)
	}
}

// recordSample folds one sampled wave's busy times into the imbalance
// aggregate and publishes to the registry. The wave counter is published
// in gangSampleEvery batches (the remainder goes out at Close), mirroring
// the engine's batched counter updates.
func (s *gangState) recordSample() {
	var max, sum int64
	for _, b := range s.busyNS {
		if b > max {
			max = b
		}
		sum += b
	}
	if max <= 0 || sum <= 0 {
		return
	}
	imb := float64(max) * float64(s.n) / float64(sum)
	s.sumImb += imb
	s.samples++
	s.gImb.Set(imb)
	s.cWaves.Add(s.waves - s.published)
	s.published = s.waves
}

// gangAbort is the sentinel panic Barrier raises to unwind a member after
// another member's panic poisoned the wave.
type gangAbort struct{}

// barrier is a centralized sense-reversing spin barrier. Waiters spin on
// the generation counter — with balanced tiles the other members arrive
// within the spin budget, so the common case is a handful of atomic
// operations with no scheduler involvement — and fall back to yielding the
// processor once the budget runs out, so a gang wider than GOMAXPROCS
// still makes progress.
type barrier struct {
	n     int32
	spin  int // per-wait spin budget before falling back to Gosched
	count atomic.Int32
	gen   atomic.Uint32
}

// wait blocks until all n members arrive, returning true. While spinning
// it polls abort: a raised abort releases the waiter immediately with
// false, leaving the barrier poisoned (arrival counts no longer match) —
// callers must not reuse a gang after an aborted wave.
func (b *barrier) wait(abort *atomic.Bool) bool {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return true
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if abort.Load() {
			return false
		}
		if spins >= b.spin {
			runtime.Gosched()
		}
	}
	return true
}
