package par

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"noceval/internal/obs"
)

// Pool is a persistent bounded-queue worker pool: the long-lived sibling
// of the one-shot Parallel. Parallel fits a sweep — a known task count,
// submitted all at once, joined once — while a server accepts work forever
// and must bound how much of it piles up. Submissions beyond the queue
// bound are rejected immediately (TrySubmit returns false) rather than
// blocking the acceptor, so an overloaded experiment service degrades into
// fast 503s instead of unbounded memory growth.
//
// A task panic does not kill its worker: the panic is recovered, wrapped
// in a TaskPanic, and handed to the OnPanic hook (if any); the worker then
// moves on to the next task. Close drains: it stops intake, runs every
// already-queued task, and returns when the last worker is idle — the
// graceful-shutdown half of the service's SIGTERM path.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  bool
	onPanic func(*TaskPanic)

	cDone   *obs.Counter
	cBusyNS *obs.Counter
	gQueue  *obs.Gauge
}

// NewPool starts a pool with the given worker count and queue bound.
// workers <= 0 selects GOMAXPROCS; queue <= 0 means no buffering (a
// submission is accepted only when a worker is free to take it). onPanic,
// when non-nil, receives each recovered task panic; nil drops panics after
// counting them (the pool's instruments still record the event).
func NewPool(workers, queue int, onPanic func(*TaskPanic)) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	// Instruments come from the process-wide registry; with none installed
	// they are nil no-ops, matching Parallel's zero-overhead discipline.
	reg := obs.Default()
	p := &Pool{
		tasks:   make(chan func(), queue),
		onPanic: onPanic,
		cDone:   reg.Counter("pool.tasks_done"),
		cBusyNS: reg.Counter("pool.busy_ns"),
		gQueue:  reg.Gauge("pool.queue_depth"),
	}
	if reg != nil {
		reg.Gauge("pool.workers").Set(float64(workers))
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// TrySubmit offers a task to the pool without blocking. It returns false
// when the pool is closed or the queue is full; the caller owns the
// rejection (the service turns it into HTTP 503).
func (p *Pool) TrySubmit(task func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- task:
		p.gQueue.Set(float64(len(p.tasks)))
		obs.Default().Counter("pool.tasks_submitted").Inc()
		return true
	default:
		obs.Default().Counter("pool.tasks_rejected").Inc()
		return false
	}
}

// Close stops intake, runs every task already queued, and blocks until all
// workers have finished. Safe to call more than once; TrySubmit returns
// false for the rest of the pool's life.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
	p.gQueue.Set(0)
}

// QueueDepth reports the tasks accepted but not yet picked up by a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.gQueue.Set(float64(len(p.tasks)))
		p.run(task)
	}
}

func (p *Pool) run(task func()) {
	defer func() {
		if v := recover(); v != nil {
			obs.Default().Counter("pool.task_panics").Inc()
			if p.onPanic != nil {
				p.onPanic(&TaskPanic{Task: -1, Value: v, Stack: debug.Stack()})
			}
		}
	}()
	if p.cBusyNS == nil {
		task()
		return
	}
	start := time.Now()
	task()
	p.cBusyNS.Add(time.Since(start).Nanoseconds())
	p.cDone.Inc()
}
