// Package par provides the worker pool shared by experiment sweeps. It
// lives below the framework layer so that methodology packages (openloop,
// closedloop) can parallelize their own loops without importing
// internal/core, which imports them.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Parallel runs n independent task closures across worker goroutines and
// returns the first error encountered (remaining tasks are still executed;
// simulations are cheap to finish and results stay index-addressed). Every
// simulator in this repository is deterministic given its seed and shares
// no mutable state across runs, so experiment sweeps parallelize
// perfectly.
//
// workers <= 0 selects GOMAXPROCS.
func Parallel(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := task(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("par: parallel task %d: %w", i, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
