// Package par provides the worker pool shared by experiment sweeps. It
// lives below the framework layer so that methodology packages (openloop,
// closedloop) can parallelize their own loops without importing
// internal/core, which imports them.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"noceval/internal/obs"
)

// Parallel runs n independent task closures across worker goroutines and
// returns the first error encountered (remaining tasks are still executed;
// simulations are cheap to finish and results stay index-addressed). Every
// simulator in this repository is deterministic given its seed and shares
// no mutable state across runs, so experiment sweeps parallelize
// perfectly.
//
// A task panic does not kill the worker pool: the remaining tasks still
// run, and once the pool drains the first panic is re-raised on the
// calling goroutine wrapped in a TaskPanic — so the failure carries the
// task index and surfaces where the sweep was started instead of crashing
// the process from an anonymous worker. A panic takes precedence over any
// task errors.
//
// workers <= 0 selects GOMAXPROCS.
func Parallel(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Pool metrics publish into the process-wide registry when one is
	// installed; with none, every instrument is nil and the pool pays only
	// nil checks (no time.Now calls, no atomics beyond the queue itself).
	reg := obs.Default()
	cTasksDone := reg.Counter("par.tasks_done")
	cBusyNS := reg.Counter("par.busy_ns")
	if reg != nil {
		reg.Counter("par.waves").Inc()
		reg.Counter("par.tasks").Add(int64(n))
		reg.Gauge("par.workers").Set(float64(workers))
	}
	var queued atomic.Int64
	gQueue := reg.Gauge("par.queue_depth")
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstErr   error
		firstPanic *TaskPanic
	)
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				mu.Lock()
				if firstPanic == nil {
					firstPanic = &TaskPanic{Task: i, Value: v, Stack: debug.Stack()}
				}
				mu.Unlock()
			}
		}()
		if err := task(i); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("par: parallel task %d: %w", i, err)
			}
			mu.Unlock()
		}
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				gQueue.Set(float64(queued.Add(-1)))
				if cBusyNS == nil {
					run(i)
					continue
				}
				start := time.Now()
				run(i)
				cBusyNS.Add(time.Since(start).Nanoseconds())
				cTasksDone.Inc()
			}
		}()
	}
	for i := 0; i < n; i++ {
		gQueue.Set(float64(queued.Add(1)))
		next <- i
	}
	close(next)
	wg.Wait()
	gQueue.Set(0)
	if firstPanic != nil {
		panic(firstPanic)
	}
	return firstErr
}

// TaskPanic wraps a panic raised by a task so Parallel can re-raise it on
// the calling goroutine with the task index and the original stack
// attached.
type TaskPanic struct {
	Task  int    // index of the task that panicked
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking task, captured at recover time
}

// Error makes a TaskPanic readable when it escapes to a crash report.
func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: parallel task %d panicked: %v\n%s", p.Task, p.Value, p.Stack)
}
