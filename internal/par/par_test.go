package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelRunsEveryTaskDespiteErrors(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Parallel(50, 4, func(i int) error {
		ran.Add(1)
		if i%10 == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want all 50 (failures must not cancel siblings)", ran.Load())
	}
}

func TestParallelEdgeCases(t *testing.T) {
	if err := Parallel(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero tasks returned %v", err)
	}
	done := make([]atomic.Bool, 7)
	if err := Parallel(7, 100, func(i int) error { done[i].Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d skipped", i)
		}
	}
}
