package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelRunsEveryTaskDespiteErrors(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Parallel(50, 4, func(i int) error {
		ran.Add(1)
		if i%10 == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want all 50 (failures must not cancel siblings)", ran.Load())
	}
}

// TestParallelStopSemantics pins the pool's completion contract across
// failure shapes: errors never cancel sibling tasks (results are
// index-addressed, so a sweep must fill every slot it can), the first
// error by completion order wins, and the error wraps the task index.
func TestParallelStopSemantics(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name    string
		n       int
		workers int
		failAt  func(i int) error
		wantRan int64
		wantErr error
	}{
		{"no failures", 20, 4, func(int) error { return nil }, 20, nil},
		{"single failure mid-sweep", 20, 4, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		}, 20, boom},
		{"every task fails", 10, 3, func(int) error { return boom }, 10, boom},
		{"failure on first task", 15, 1, func(i int) error {
			if i == 0 {
				return boom
			}
			return nil
		}, 15, boom},
		{"failure on last task", 15, 1, func(i int) error {
			if i == 14 {
				return boom
			}
			return nil
		}, 15, boom},
		{"more workers than tasks", 3, 64, func(int) error { return boom }, 3, boom},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ran atomic.Int64
			err := Parallel(tc.n, tc.workers, func(i int) error {
				ran.Add(1)
				return tc.failAt(i)
			})
			if ran.Load() != tc.wantRan {
				t.Errorf("ran %d tasks, want %d (errors must not stop the sweep)", ran.Load(), tc.wantRan)
			}
			if tc.wantErr == nil {
				if err != nil {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error not propagated: %v", err)
			}
			if !strings.Contains(err.Error(), "par: parallel task ") {
				t.Errorf("error %q does not name the failing task", err)
			}
		})
	}
}

// TestParallelSerialFirstErrorWins: with one worker, completion order is
// task order, so the reported error must come from the lowest failing
// index.
func TestParallelSerialFirstErrorWins(t *testing.T) {
	err := Parallel(10, 1, func(i int) error {
		if i >= 4 {
			return fmt.Errorf("task-%d failed", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "par: parallel task 4: task-4 failed") {
		t.Fatalf("want first error (task 4), got %v", err)
	}
}

// TestParallelPanicPropagation pins the recovery contract: a panicking
// task must not abort its siblings, and the panic re-raises on the caller
// as a *TaskPanic carrying the task index, the original value, and the
// task's stack.
func TestParallelPanicPropagation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
		task    func(i int) error
		checkTP func(t *testing.T, tp *TaskPanic)
	}{
		{"single panic", 20, 4, func(i int) error {
			if i == 5 {
				panic("kaboom")
			}
			return nil
		}, func(t *testing.T, tp *TaskPanic) {
			if tp.Task != 5 || tp.Value != "kaboom" {
				t.Errorf("wrong panic captured: task=%d value=%v", tp.Task, tp.Value)
			}
		}},
		{"serial first panic wins", 10, 1, func(i int) error {
			if i >= 3 {
				panic(i)
			}
			return nil
		}, func(t *testing.T, tp *TaskPanic) {
			if tp.Task != 3 || tp.Value != 3 {
				t.Errorf("want first panic (task 3), got task=%d value=%v", tp.Task, tp.Value)
			}
		}},
		{"panic beats error", 10, 1, func(i int) error {
			if i == 2 {
				return errors.New("plain error")
			}
			if i == 6 {
				panic("panics take precedence")
			}
			return nil
		}, func(t *testing.T, tp *TaskPanic) {
			if tp.Value != "panics take precedence" {
				t.Errorf("panic value lost: %v", tp.Value)
			}
		}},
		{"nil-adjacent panic value", 5, 2, func(i int) error {
			if i == 1 {
				panic(errors.New("typed panic"))
			}
			return nil
		}, func(t *testing.T, tp *TaskPanic) {
			if err, ok := tp.Value.(error); !ok || err.Error() != "typed panic" {
				t.Errorf("panic value mangled: %v", tp.Value)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ran atomic.Int64
			defer func() {
				v := recover()
				if v == nil {
					t.Fatal("panic was swallowed")
				}
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("re-raised value is %T, want *TaskPanic", v)
				}
				if ran.Load() != int64(tc.n) {
					t.Errorf("ran %d tasks, want %d (a panic must not cancel siblings)", ran.Load(), tc.n)
				}
				if len(tp.Stack) == 0 {
					t.Error("panic stack not captured")
				}
				if !strings.Contains(tp.Error(), "panicked") {
					t.Errorf("unreadable TaskPanic: %q", tp.Error())
				}
				tc.checkTP(t, tp)
			}()
			Parallel(tc.n, tc.workers, func(i int) error {
				ran.Add(1)
				return tc.task(i)
			})
		})
	}
}

func TestParallelEdgeCases(t *testing.T) {
	if err := Parallel(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero tasks returned %v", err)
	}
	done := make([]atomic.Bool, 7)
	if err := Parallel(7, 100, func(i int) error { done[i].Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d skipped", i)
		}
	}
}
