package par

import (
	"sync/atomic"
	"testing"
)

// TestGangRunsEveryMember checks that each Run executes the function
// exactly once per member, across many waves.
func TestGangRunsEveryMember(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		g := NewGang(n)
		counts := make([]int64, n)
		const waves = 200
		for i := 0; i < waves; i++ {
			g.Run(func(m int) { atomic.AddInt64(&counts[m], 1) })
		}
		for m, c := range counts {
			if c != waves {
				t.Errorf("n=%d: member %d ran %d times, want %d", n, m, c, waves)
			}
		}
		if w, _ := g.Stats(); w != waves {
			t.Errorf("n=%d: Stats waves = %d, want %d", n, w, waves)
		}
		g.Close()
	}
}

// TestGangBarrierPhases drives a two-phase wave shape: every member must
// observe all phase-1 writes before running phase 2, with a serial middle
// section on member 0 — exactly the sharded deliver/apply/compute cycle.
func TestGangBarrierPhases(t *testing.T) {
	const n = 4
	g := NewGang(n)
	defer g.Close()
	phase1 := make([]int, n)
	var serial int
	for wave := 1; wave <= 300; wave++ {
		g.Run(func(m int) {
			phase1[m] = wave
			g.Barrier()
			if m == 0 {
				for i, v := range phase1 {
					if v != wave {
						t.Errorf("wave %d: member 0 saw phase1[%d]=%d", wave, i, v)
					}
				}
				serial = wave * 10
			}
			g.Barrier()
			if serial != wave*10 {
				t.Errorf("wave %d: member %d saw serial=%d before phase 2", wave, m, serial)
			}
		})
		if t.Failed() {
			break
		}
	}
}

// TestGangPanicPropagates: a panic on any member must surface on the
// calling goroutine as a TaskPanic carrying the member index, releasing
// members parked at a barrier instead of deadlocking; the gang is then
// broken and refuses further waves.
func TestGangPanicPropagates(t *testing.T) {
	for _, guilty := range []int{0, 2} {
		g := NewGang(3)
		func() {
			defer func() {
				tp, ok := recover().(*TaskPanic)
				if !ok || tp == nil {
					t.Fatalf("guilty=%d: expected *TaskPanic, got %v", guilty, tp)
				}
				if tp.Task != guilty || tp.Value != "boom" {
					t.Errorf("guilty=%d: TaskPanic = task %d value %v", guilty, tp.Task, tp.Value)
				}
			}()
			g.Run(func(m int) {
				if m == guilty {
					panic("boom")
				}
				g.Barrier() // the guilty member never arrives
			})
			t.Fatalf("guilty=%d: Run returned without panicking", guilty)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("guilty=%d: Run on a broken gang did not panic", guilty)
				}
			}()
			g.Run(func(m int) {})
		}()
	}
}

func TestGangCloseIsIdempotent(t *testing.T) {
	g := NewGang(4)
	g.Run(func(m int) {})
	g.Close()
	g.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Run on a closed gang did not panic")
			}
		}()
		g.Run(func(m int) {})
	}()
}

// TestGangImbalanceSampling forces an unbalanced wave shape and checks the
// sampled imbalance lands above 1 (the balanced floor) and at most n.
func TestGangImbalanceSampling(t *testing.T) {
	const n = 2
	g := NewGang(n)
	defer g.Close()
	for i := 0; i < gangSampleEvery*3; i++ {
		g.Run(func(m int) {
			if m == 0 {
				s := 0
				for k := 0; k < 200_000; k++ {
					s += k
				}
				_ = s
			}
		})
	}
	if _, imb := g.Stats(); imb <= 1 || imb > n {
		t.Errorf("imbalance = %v, want in (1, %d]", imb, n)
	}
}
