package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4, 16, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		ok := p.TrySubmit(func() {
			ran.Add(1)
			wg.Done()
		})
		if !ok {
			// Queue full is a legal outcome under load; retry synchronously
			// until accepted so the count assertion below stays exact.
			wg.Done()
			for !p.TrySubmit(func() { ran.Add(1) }) {
			}
		}
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
	wg.Wait()
}

func TestPoolTrySubmitRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 1, nil)
	// Occupy the single worker and wait until it has dequeued the task,
	// so the queue slot is observably free before the next submit.
	if !p.TrySubmit(func() { close(started); <-gate }) {
		t.Fatal("first submit rejected")
	}
	<-started
	// Fill the single queue slot.
	if !p.TrySubmit(func() { <-gate }) {
		t.Fatal("could not fill the queue slot")
	}
	// Worker busy + queue full: the next offer must bounce, not block.
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted beyond the queue bound")
	}
	close(gate)
	p.Close()
}

func TestPoolCloseDrainsQueuedTasks(t *testing.T) {
	var ran atomic.Int64
	gate := make(chan struct{})
	p := NewPool(1, 8, nil)
	p.TrySubmit(func() { <-gate; ran.Add(1) })
	for i := 0; i < 5; i++ {
		if !p.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("submit %d rejected with queue space free", i)
		}
	}
	close(gate)
	p.Close() // must block until the 6 accepted tasks have all run
	if got := ran.Load(); got != 6 {
		t.Fatalf("Close returned with %d tasks run, want 6", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted after Close")
	}
}

func TestPoolTaskPanicDoesNotKillWorker(t *testing.T) {
	var got *TaskPanic
	var mu sync.Mutex
	p := NewPool(1, 4, func(tp *TaskPanic) {
		mu.Lock()
		got = tp
		mu.Unlock()
	})
	p.TrySubmit(func() { panic("job exploded") })
	ran := make(chan struct{})
	p.TrySubmit(func() { close(ran) })
	<-ran // the single worker survived the panic and ran the next task
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if got == nil || got.Value != "job exploded" {
		t.Fatalf("OnPanic got %+v, want the recovered panic value", got)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 2, nil)
	p.Close()
	p.Close()
}
