// Package fault implements the deterministic, seed-driven fault injector
// used by the resilience evaluation: transient link faults (per-flit
// corruption and head-flit drops at a configurable per-delivery rate), link
// outage windows during which a channel delivers nothing and its credits
// freeze, and hard router kills. The companion NIC type (nic.go) gives
// terminals end-to-end detection and bounded exponential-backoff
// retransmission so workloads can degrade gracefully instead of wedging.
//
// Everything is driven by the injector's private xoshiro stream, so a
// faulted run is a pure function of (config, seed): the same configuration
// replays the same fault sequence under both the activity-tracked and
// full-scan engines. With a nil or all-zero Params the network layer builds
// no injector at all and the simulation is bit-identical to a fault-free
// build — enforced by the zero-alloc guard and the golden-figure gate.
package fault

import (
	"fmt"
	"sort"

	"noceval/internal/obs"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// Outage takes one directed channel down for the half-open cycle window
// [From, Until): the channel delivers no flits and returns no credits while
// down; traffic already inside the channel pipeline is frozen in place and
// resumes when the window closes.
type Outage struct {
	Node  int   `json:",omitempty"` // router whose output channel fails
	Port  int   `json:",omitempty"` // network output port of the channel
	From  int64 `json:",omitempty"`
	Until int64 `json:",omitempty"`
}

// Kill removes a router from the network at cycle At: its buffered and
// in-flight flits are discarded (with credits bounced upstream so flow
// control stays consistent), and from then on it accepts nothing — flits
// delivered into it are dropped and its terminal can neither send nor
// receive.
type Kill struct {
	Node int   `json:",omitempty"`
	At   int64 `json:",omitempty"`
}

// Params configures fault injection and the recovery NIC. The zero value
// (and a nil pointer) means "no faults": the network builds no injector and
// the hot path is untouched. All fields are omitempty so experiment-cache
// keys of fault-free configs remain byte-identical to pre-fault builds.
type Params struct {
	// CorruptRate is the per-link-delivery probability that a flit is
	// corrupted in flight. Corruption is detected by the destination NIC's
	// per-flit checksum when the tail arrives: the packet is discarded
	// there, and recovery (if any) is by source timeout.
	CorruptRate float64 `json:",omitempty"`
	// DropRate is the per-link-delivery probability that a head flit is
	// lost. The whole packet dies: its remaining flits are discarded at
	// their next link crossing with credits bounced to the sender, which
	// keeps wormhole flow control consistent without modeling partial
	// packets downstream.
	DropRate float64 `json:",omitempty"`

	Outages []Outage `json:",omitempty"`
	Kills   []Kill   `json:",omitempty"`

	// Timeout enables the recovery NIC: a source that has not seen its
	// packet accepted at the destination within Timeout cycles retransmits
	// it. 0 disables the NIC entirely — losses are then silent, as in a
	// network without end-to-end protection.
	Timeout int64 `json:",omitempty"`
	// MaxRetries bounds retransmissions per packet; once exhausted the
	// packet is abandoned and reported through the dead-drop callback.
	MaxRetries int `json:",omitempty"`
	// RetryCap is the MSHR-style per-node cap on packets concurrently in
	// retransmission; further timeouts queue until a slot frees. 0 means
	// unlimited.
	RetryCap int `json:",omitempty"`
	// Seed, when nonzero, seeds the injector's private RNG; otherwise it is
	// derived from the network seed.
	Seed uint64 `json:",omitempty"`
}

// Enabled reports whether the configuration injects any fault or arms the
// recovery NIC. A disabled configuration must behave exactly like a nil one.
func (p *Params) Enabled() bool {
	if p == nil {
		return false
	}
	return p.CorruptRate > 0 || p.DropRate > 0 ||
		len(p.Outages) > 0 || len(p.Kills) > 0 || p.Timeout > 0
}

// Validate reports configuration errors against the given topology.
func (p *Params) Validate(t *topology.Topology) error {
	if p == nil {
		return nil
	}
	if p.CorruptRate < 0 || p.CorruptRate > 1 {
		return fmt.Errorf("fault: CorruptRate %g outside [0,1]", p.CorruptRate)
	}
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("fault: DropRate %g outside [0,1]", p.DropRate)
	}
	for i, o := range p.Outages {
		if o.Node < 0 || o.Node >= t.N {
			return fmt.Errorf("fault: outage %d: node %d outside [0,%d)", i, o.Node, t.N)
		}
		if o.Port < 0 || o.Port >= t.Radix {
			return fmt.Errorf("fault: outage %d: port %d is not a network port (radix %d)", i, o.Port, t.Radix)
		}
		if !t.LinkAt(o.Node, o.Port).Connected() {
			return fmt.Errorf("fault: outage %d: node %d port %d is unconnected", i, o.Node, o.Port)
		}
		if o.From < 0 || o.Until <= o.From {
			return fmt.Errorf("fault: outage %d: bad window [%d,%d)", i, o.From, o.Until)
		}
	}
	for i, k := range p.Kills {
		if k.Node < 0 || k.Node >= t.N {
			return fmt.Errorf("fault: kill %d: node %d outside [0,%d)", i, k.Node, t.N)
		}
		if k.At < 0 {
			return fmt.Errorf("fault: kill %d: negative cycle %d", i, k.At)
		}
	}
	if p.Timeout < 0 {
		return fmt.Errorf("fault: negative Timeout %d", p.Timeout)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", p.MaxRetries)
	}
	if p.RetryCap < 0 {
		return fmt.Errorf("fault: negative RetryCap %d", p.RetryCap)
	}
	return nil
}

// Stats aggregates the fault and recovery counters of one run.
type Stats struct {
	CorruptInjected int64 `json:",omitempty"` // flits corrupted on links
	DropInjected    int64 `json:",omitempty"` // head flits dropped on links
	Detected        int64 `json:",omitempty"` // corrupt packets rejected by destination checksum
	DeadFlits       int64 `json:",omitempty"` // flits discarded by faults (drops, outg. wormholes, kills)
	DeadPackets     int64 `json:",omitempty"` // packets that died inside the network
	Duplicates      int64 `json:",omitempty"` // redundant deliveries discarded by receiver dedup
	Tracked         int64 `json:",omitempty"` // packets the NIC watched
	Acked           int64 `json:",omitempty"` // packets the NIC saw accepted
	Retried         int64 `json:",omitempty"` // retransmissions issued
	Abandoned       int64 `json:",omitempty"` // packets given up after MaxRetries
	Outstanding     int   `json:",omitempty"` // NIC entries unresolved at run end
	// DeliveredFraction is the share of workload transactions that
	// completed; filled in by the run mode (1 when nothing was lost).
	DeliveredFraction float64 `json:",omitempty"`
	// P99Inflation is the run mode's p99 latency divided by the fault-free
	// p99 of the same configuration; filled by sweeps that have both.
	P99Inflation float64 `json:",omitempty"`
}

// Injector draws the transient fault decisions and owns the outage/kill
// schedule. It is created only for enabled Params; a nil *Injector is never
// consulted (the network keeps its fault hooks behind one nil check).
type Injector struct {
	p   Params
	rng *sim.RNG

	// bounds holds every cycle at which the static schedule changes state
	// (outage edges, kills), sorted ascending; idx is the first bound not
	// yet reached. ScheduleDue is then a two-compare check per cycle, and
	// evaluating the schedule lazily from time predicates keeps it exact
	// across clock fast-forwards.
	bounds []int64
	idx    int

	corruptInjected int64
	dropInjected    int64

	// mInjections publishes fired injections into the process-wide
	// registry; nil (a pure nil check per fired fault) when none is
	// installed at construction time.
	mInjections *obs.Counter
}

// NewInjector builds the injector for a network with the given node count.
// seed is the already-derived RNG seed (Params.Seed when set, otherwise a
// mix of the network seed).
func NewInjector(p Params, seed uint64) *Injector {
	in := &Injector{p: p, rng: sim.NewRNG(seed)}
	in.mInjections = obs.Default().Counter("fault.injections")
	for _, o := range p.Outages {
		in.bounds = append(in.bounds, o.From, o.Until)
	}
	for _, k := range p.Kills {
		in.bounds = append(in.bounds, k.At)
	}
	sort.Slice(in.bounds, func(i, j int) bool { return in.bounds[i] < in.bounds[j] })
	return in
}

// Params returns the injector's configuration.
func (in *Injector) Params() Params { return in.p }

// ScheduleDue reports whether an outage edge or kill has been reached and
// not yet applied. It is the injector's only per-cycle cost on runs with a
// static schedule but no transient rates.
func (in *Injector) ScheduleDue(now int64) bool {
	return in.idx < len(in.bounds) && now >= in.bounds[in.idx]
}

// AdvanceSchedule marks every boundary up to and including now as applied.
func (in *Injector) AdvanceSchedule(now int64) {
	for in.idx < len(in.bounds) && in.bounds[in.idx] <= now {
		in.idx++
	}
}

// OutageActive reports whether outage o covers cycle now.
func OutageActive(o Outage, now int64) bool { return o.From <= now && now < o.Until }

// DrawDrop draws the head-flit drop decision for one link delivery. It
// consumes randomness only when DropRate is positive, so configurations
// without drops share the corruption stream of drop-free ones.
func (in *Injector) DrawDrop() bool {
	if in.p.DropRate <= 0 {
		return false
	}
	if in.rng.Bernoulli(in.p.DropRate) {
		in.dropInjected++
		in.mInjections.Inc()
		return true
	}
	return false
}

// DrawCorrupt draws the corruption decision for one link delivery.
func (in *Injector) DrawCorrupt() bool {
	if in.p.CorruptRate <= 0 {
		return false
	}
	if in.rng.Bernoulli(in.p.CorruptRate) {
		in.corruptInjected++
		in.mInjections.Inc()
		return true
	}
	return false
}

// Injected returns the transient-fault injection counters.
func (in *Injector) Injected() (corrupt, drop int64) {
	return in.corruptInjected, in.dropInjected
}
