package invariants_test

// The property-based harness of the fault subsystem: randomized fault
// configurations are pushed through every run methodology (open-loop,
// closed-loop batch and barrier, execution-driven CMP) on both stepping
// engines (activity-tracked and full-scan), and the invariant oracle
// checks the final network state of each run. A second set of tests pins
// the determinism contract (same seed + config => identical results on
// both engines) and proves the oracle has teeth: a deliberately broken
// retransmission path must be caught.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/cmp"
	"noceval/internal/core"
	"noceval/internal/fault"
	"noceval/internal/fault/invariants"
	"noceval/internal/network"
	"noceval/internal/openloop"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
	"noceval/internal/traffic"
	"noceval/internal/workload"
)

// trialTopos are the fabrics the randomized trials draw from.
var trialTopos = []string{"mesh4x4", "ring8", "torus4x4"}

// randomFault draws one fault configuration. The recovery NIC is always
// on so lossy runs terminate by retransmission or abandonment instead of
// wedging; rates, schedule events, and retry knobs vary per trial.
func randomFault(rng *sim.RNG, topo *topology.Topology) *fault.Params {
	rates := []float64{0, 1e-3, 5e-3, 2e-2}
	p := &fault.Params{
		CorruptRate: rates[rng.Intn(len(rates))],
		DropRate:    rates[rng.Intn(len(rates))],
		Timeout:     200 + int64(rng.Intn(200)),
		MaxRetries:  []int{0, 2, 6}[rng.Intn(3)],
		RetryCap:    []int{0, 2}[rng.Intn(2)],
		Seed:        rng.Uint64(),
	}
	if rng.Bernoulli(0.5) {
		// A transient outage window on a random connected link.
		for tries := 0; tries < 8; tries++ {
			node, port := rng.Intn(topo.N), rng.Intn(topo.Radix)
			if topo.LinkAt(node, port).Connected() {
				from := int64(100 + rng.Intn(300))
				p.Outages = append(p.Outages, fault.Outage{
					Node: node, Port: port, From: from, Until: from + int64(50+rng.Intn(300)),
				})
				break
			}
		}
	}
	if rng.Bernoulli(0.3) {
		p.Kills = append(p.Kills, fault.Kill{Node: rng.Intn(topo.N), At: int64(200 + rng.Intn(400))})
	}
	return p
}

// trialNet builds the network config of one trial.
func trialNet(t *testing.T, topoName string, seed uint64, fp *fault.Params) network.Config {
	t.Helper()
	topo, err := topology.ByName(topoName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    seed,
		Fault:   fp,
		// The CI determinism matrix re-runs the whole harness at 1, 2 and
		// 4 shards; the oracle and the determinism pins must hold at any
		// shard count.
		Shards: core.EnvShards(),
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("trial config invalid: %v", err)
	}
	return cfg
}

// checkInvariants returns an Inspect hook that runs the oracle and reports
// violations against the trial's label.
func checkInvariants(t *testing.T, label string) func(*network.Network) {
	return func(n *network.Network) {
		t.Helper()
		if err := invariants.Check(n); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
}

// TestPropertyRandomizedConfigs is the harness: N random fault configs,
// each run through open-loop, batch, and barrier on both engines, with the
// oracle inspecting every final state.
func TestPropertyRandomizedConfigs(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := sim.NewRNG(uint64(trial)*0x9e3779b97f4a7c15 + 1)
		topoName := trialTopos[rng.Intn(len(trialTopos))]
		topo, err := topology.ByName(topoName)
		if err != nil {
			t.Fatal(err)
		}
		fp := randomFault(rng, topo)
		seed := rng.Uint64()
		desc, _ := json.Marshal(fp)
		for _, fullScan := range []bool{false, true} {
			label := fmt.Sprintf("trial %d %s fullscan=%v fault=%s", trial, topoName, fullScan, desc)
			netCfg := trialNet(t, topoName, seed, fp)

			if _, err := openloop.Run(openloop.Config{
				Net: netCfg, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1),
				Rate: 0.1, Warmup: 500, Measure: 1000, DrainLimit: 400_000,
				Seed: seed, FullScan: fullScan,
				Inspect: checkInvariants(t, label+" openloop"),
			}); err != nil {
				t.Errorf("%s openloop: %v", label, err)
			}

			if _, err := closedloop.RunBatch(closedloop.BatchConfig{
				Net: netCfg, Pattern: traffic.Uniform{}, B: 30, M: 2,
				MaxCycles: 400_000, Seed: seed, FullScan: fullScan,
				Inspect: checkInvariants(t, label+" batch"),
			}); err != nil {
				t.Errorf("%s batch: %v", label, err)
			}

			if _, err := closedloop.RunBarrier(closedloop.BarrierConfig{
				Net: netCfg, Pattern: traffic.Uniform{}, B: 20, Phases: 2,
				MaxCycles: 400_000, Seed: seed, FullScan: fullScan,
				Inspect: checkInvariants(t, label+" barrier"),
			}); err != nil {
				t.Errorf("%s barrier: %v", label, err)
			}
		}
	}
}

// TestExecModeInvariants runs the execution-driven CMP on a faulted fabric
// (corrupt + drop with generous retransmission, so the memory protocol
// never loses a transaction) and checks the oracle on the final network.
func TestExecModeInvariants(t *testing.T) {
	prof, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	prof.UserInsts = 4000
	prof.SyscallStartInsts /= 4
	prof.SyscallEndInsts /= 4

	cfg := cmp.DefaultConfig()
	cfg.MaxCycles = 20_000_000
	fab := cmp.NetFabric{Network: network.New(network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 8, BufDepth: 4, Delay: 1},
		Seed:    5,
		Fault: &fault.Params{
			CorruptRate: 1e-3, DropRate: 1e-3,
			Timeout: 400, MaxRetries: 20, Seed: 9,
		},
	})}
	sys, err := cmp.NewSystem(cfg, fab, workload.Programs(prof, cfg.Tiles, 99))
	if err != nil {
		t.Fatal(err)
	}
	prof.Warm(sys, cfg.Tiles)
	res := sys.Run()
	if !res.Completed {
		t.Fatalf("faulted exec run did not complete in %d cycles", res.Cycles)
	}
	if err := invariants.Check(fab.Network); err != nil {
		t.Error(err)
	}
	fs := fab.Network.FaultStats()
	if fs == nil || fs.CorruptInjected+fs.DropInjected == 0 {
		t.Error("exec run injected no faults; the trial is vacuous")
	}
}

// TestFaultedRunsDeterministic pins the reproducibility contract: the same
// seed and fault config produce identical results — counters, latencies,
// recovery stats — on the activity-tracked and full-scan engines.
func TestFaultedRunsDeterministic(t *testing.T) {
	fp := &fault.Params{
		CorruptRate: 2e-3, DropRate: 2e-3,
		Outages: []fault.Outage{{Node: 5, Port: 0, From: 200, Until: 500}},
		Kills:   []fault.Kill{{Node: 11, At: 700}},
		Timeout: 250, MaxRetries: 3, RetryCap: 2, Seed: 42,
	}
	runOL := func(fullScan bool) *openloop.Result {
		res, err := openloop.Run(openloop.Config{
			Net: trialNet(t, "mesh4x4", 7, fp), Pattern: traffic.Uniform{},
			Sizes: traffic.FixedSize(1), Rate: 0.12,
			Warmup: 500, Measure: 1500, DrainLimit: 400_000, Seed: 7, FullScan: fullScan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := runOL(false), runOL(true); !reflect.DeepEqual(a, b) {
		t.Errorf("faulted openloop diverges across engines:\nactiveset: %+v\nfullscan:  %+v", a, b)
	}

	runBatch := func(fullScan bool) *closedloop.BatchResult {
		res, err := closedloop.RunBatch(closedloop.BatchConfig{
			Net: trialNet(t, "mesh4x4", 7, fp), Pattern: traffic.Uniform{},
			B: 40, M: 2, MaxCycles: 400_000, Seed: 7, FullScan: fullScan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := runBatch(false), runBatch(true); !reflect.DeepEqual(a, b) {
		t.Errorf("faulted batch diverges across engines:\nactiveset: %+v\nfullscan:  %+v", a, b)
	}

	// And across repeated runs on the same engine.
	if a, b := runOL(false), runOL(false); !reflect.DeepEqual(a, b) {
		t.Error("faulted openloop is not reproducible from its seed")
	}
}

// TestZeroFaultParamsEquivalent pins the compiled-out guarantee's semantic
// half: a nil fault config and a present-but-all-zero one produce
// identical results (the zero one never builds an injector at all).
func TestZeroFaultParamsEquivalent(t *testing.T) {
	run := func(fp *fault.Params) *openloop.Result {
		res, err := openloop.Run(openloop.Config{
			Net: trialNet(t, "mesh4x4", 3, fp), Pattern: traffic.Uniform{},
			Sizes: traffic.FixedSize(1), Rate: 0.15,
			Warmup: 500, Measure: 1000, DrainLimit: 100_000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(nil), run(&fault.Params{}); !reflect.DeepEqual(a, b) {
		t.Errorf("zero-valued fault params change results:\nnil:  %+v\nzero: %+v", a, b)
	}
}

// driveToQuiescence sends traffic into a faulted network and steps until
// both the fabric and the NIC schedule drain (or the cycle cap passes).
func driveToQuiescence(t *testing.T, net *network.Network, packets int) {
	t.Helper()
	n := net.Nodes()
	for i := 0; i < packets; i++ {
		src := i % n
		net.Send(net.NewPacket(src, (src+1+i%(n-1))%n, 1, router.KindData))
	}
	for cycle := 0; cycle < 3_000_000; cycle++ {
		net.Step()
		if net.Quiescent() && net.NextInternalEventAt() < 0 {
			return
		}
	}
	t.Fatal("network did not drain")
}

// TestInvariantHarnessCatchesBrokenNIC is the mutation test: with the
// NIC's timeout path deliberately broken (entries silently vanish instead
// of retrying or abandoning), the oracle must report the NIC conservation
// violation. Every packet crosses a link with DropRate 1, so every
// transaction times out.
func TestInvariantHarnessCatchesBrokenNIC(t *testing.T) {
	fp := &fault.Params{DropRate: 1, Timeout: 100, MaxRetries: 1, Seed: 1}
	net := network.New(trialNet(t, "mesh4x4", 2, fp))
	net.NIC().BreakForTest()
	driveToQuiescence(t, net, 64)
	err := invariants.Check(net)
	if err == nil {
		t.Fatal("oracle passed a network whose NIC silently lost every packet")
	}
	if want := "NIC conservation violated"; !containsStr(err.Error(), want) {
		t.Errorf("oracle failed for the wrong reason: %v (want %q)", err, want)
	}
}

// TestHealthyNICPassesSameScenario is the mutation test's control: the
// identical total-loss scenario with a working NIC abandons every packet
// and satisfies all invariants.
func TestHealthyNICPassesSameScenario(t *testing.T) {
	fp := &fault.Params{DropRate: 1, Timeout: 100, MaxRetries: 1, Seed: 1}
	net := network.New(trialNet(t, "mesh4x4", 2, fp))
	driveToQuiescence(t, net, 64)
	if err := invariants.Check(net); err != nil {
		t.Error(err)
	}
	fs := net.FaultStats()
	if fs.Abandoned == 0 {
		t.Error("control scenario abandoned nothing; the mutation test is vacuous")
	}
	if fs.Tracked != fs.Acked+fs.Abandoned+int64(fs.Outstanding) {
		t.Errorf("NIC ledger unbalanced: %+v", fs)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
