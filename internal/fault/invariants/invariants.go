// Package invariants is the fault subsystem's correctness oracle: a set of
// whole-network conservation checks that must hold at any inter-cycle
// boundary of any run — fault-free or faulted, activity-tracked or
// full-scan. The property-based harness in this package's tests runs
// randomized fault configurations through every run mode and calls Check
// on the final network state; a violation means flits, packets, or credits
// were silently created or destroyed somewhere in the pipeline.
package invariants

import (
	"fmt"
	"strings"

	"noceval/internal/network"
)

// Check runs every invariant against the network's current state and
// returns an error describing all violations (nil when clean).
//
// The invariants:
//
//  1. Flit and packet conservation (network.CheckConservation): everything
//     injected is delivered, dead-dropped, or still inside, and at
//     quiescence every sent packet arrived, died, was discarded, or was a
//     duplicate.
//  2. Per-VC credit conservation (CheckCredits): for every live directed
//     link, the sender's available credits plus credits in flight back to
//     it plus flits occupying the channel and the downstream buffer equal
//     the configured buffer depth.
//  3. NIC no-silent-loss (CheckNIC): every packet the recovery NIC ever
//     tracked is acked, abandoned, or still outstanding — a retransmission
//     path that loses track of a packet cannot balance this.
func Check(n *network.Network) error {
	var errs []string
	if err := n.CheckConservation(); err != nil {
		errs = append(errs, err.Error())
	}
	if err := CheckCredits(n); err != nil {
		errs = append(errs, err.Error())
	}
	if err := CheckNIC(n); err != nil {
		errs = append(errs, err.Error())
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("invariants: %s", strings.Join(errs, "; "))
}

// CheckCredits verifies per-VC credit conservation on every directed
// network link:
//
//	sender.OutCredits + sender.CreditsInFlight + sender.PipeFlits +
//	receiver.InBufLen == BufDepth
//
// Every credit is exactly one of: available at the sender, traveling back
// up the credit pipe, or held by a flit that occupies the channel pipeline
// or the downstream input buffer. Links whose sender was hard-killed are
// skipped — a killed router's credit state is deliberately forfeit (its
// counters are frozen and credits returned to it vanish); links INTO a
// dead router still conserve, because discarded deliveries bounce their
// credit, and are checked.
func CheckCredits(n *network.Network) error {
	cfg := n.Config()
	topo, depth, vcs := cfg.Topo, cfg.Router.BufDepth, cfg.Router.VCs
	for node := 0; node < topo.N; node++ {
		from := n.Router(node)
		if from.Dead() {
			continue
		}
		for port := 0; port < topo.Radix; port++ {
			link := topo.LinkAt(node, port)
			if !link.Connected() {
				continue
			}
			to := n.Router(link.To)
			for vc := 0; vc < vcs; vc++ {
				avail := from.OutCredits(port, vc)
				inFlight := from.CreditsInFlight(port, vc)
				pipe := from.PipeFlitsVC(port, vc)
				buf := 0
				if !to.Dead() { // a killed receiver's buffers were purged with credit bounce
					buf = to.InBufLen(link.ToPort, vc)
				}
				if got := avail + inFlight + pipe + buf; got != depth {
					return fmt.Errorf(
						"credit conservation violated on link %d.%d->%d.%d vc %d: %d avail + %d in-flight + %d in-pipe + %d buffered = %d, want %d",
						node, port, link.To, link.ToPort, vc, avail, inFlight, pipe, buf, got, depth)
				}
			}
		}
	}
	return nil
}

// CheckNIC verifies the recovery NIC's transaction ledger: tracked ==
// acked + abandoned + outstanding. Trivially nil without a NIC.
func CheckNIC(n *network.Network) error {
	fs := n.FaultStats()
	if fs == nil || fs.Tracked == 0 {
		return nil
	}
	if fs.Tracked != fs.Acked+fs.Abandoned+int64(fs.Outstanding) {
		return fmt.Errorf(
			"NIC conservation violated: tracked %d != acked %d + abandoned %d + outstanding %d (a packet was silently lost by the retransmission path)",
			fs.Tracked, fs.Acked, fs.Abandoned, fs.Outstanding)
	}
	return nil
}
