package fault

import (
	"noceval/internal/obs"
	"noceval/internal/router"
)

// NICConfig parameterizes the recovery NIC shared by all terminals.
type NICConfig struct {
	// Timeout is the base retransmission timeout in cycles (> 0).
	Timeout int64
	// MaxRetries bounds retransmissions per transaction; 0 abandons on the
	// first timeout.
	MaxRetries int
	// RetryCap is the per-node cap on transactions concurrently in
	// retransmission (MSHR-style); 0 means unlimited.
	RetryCap int
	// Nodes is the terminal count, for the per-node retry bookkeeping.
	Nodes int
	// Resend retransmits a timed-out transaction: it must inject a fresh
	// clone of prev into the network and return it. The clone carries the
	// same transaction identity, so a late arrival of either incarnation
	// completes the transaction and the other is discarded as a duplicate.
	Resend func(now int64, prev *router.Packet) *router.Packet
	// Abandon reports a transaction given up after MaxRetries; the owner
	// (run mode) uses it to account the loss instead of waiting forever.
	Abandon func(now int64, p *router.Packet)
}

// entry is one outstanding transaction: the latest in-flight incarnation,
// how often it has been retransmitted, and its armed timeout.
type entry struct {
	pkt      *router.Packet
	attempts int
	deadline int64
	// queued marks an entry whose first retransmission is waiting for a
	// RetryCap slot; it holds no armed timeout while queued.
	queued bool
}

// tmo is one armed timeout in the deadline heap. Entries are re-armed by
// pushing a new item and letting the stale one be skipped on pop (lazy
// deletion), keyed by the (txn, deadline) pair.
type tmo struct {
	at  int64
	txn uint64
}

// NIC models end-to-end loss recovery at the terminals: every sent packet
// is tracked until the destination accepts it (per-flit checksums reject
// corrupt packets there); a transaction not accepted within its timeout is
// retransmitted with exponential backoff, bounded by MaxRetries and an
// MSHR-style per-node cap on concurrent retransmissions. One NIC instance
// serves the whole network — state is per transaction, and the per-node cap
// is the only terminal-local resource.
type NIC struct {
	cfg     NICConfig
	entries map[uint64]*entry
	heap    []tmo
	// pending[node] queues transactions waiting for a RetryCap slot, in
	// timeout order; retrying[node] counts transactions currently holding a
	// slot (attempts > 0 and still tracked).
	pending  [][]uint64
	retrying []int

	tracked, acked, retried, abandoned, dup int64

	// Cross-run counters from the process-wide registry; nil when no
	// default registry is installed at construction time.
	mRetransmits *obs.Counter
	mDeadDrops   *obs.Counter

	// broken, set by BreakForTest, makes timeouts silently drop their
	// transaction — the deliberate retransmit bug the invariant harness's
	// mutation test must catch.
	broken bool
}

// NewNIC builds the recovery NIC. cfg.Timeout must be positive and Resend
// non-nil.
func NewNIC(cfg NICConfig) *NIC {
	if cfg.Timeout <= 0 {
		panic("fault: NIC requires a positive Timeout")
	}
	if cfg.Resend == nil {
		panic("fault: NIC requires a Resend callback")
	}
	reg := obs.Default()
	return &NIC{
		cfg:          cfg,
		entries:      make(map[uint64]*entry),
		pending:      make([][]uint64, cfg.Nodes),
		retrying:     make([]int, cfg.Nodes),
		mRetransmits: reg.Counter("fault.retransmits"),
		mDeadDrops:   reg.Counter("fault.dead_drops"),
	}
}

// Track starts watching a freshly sent packet, stamping its transaction
// identity. Retransmitted clones are not re-tracked (Resend inherits the
// identity).
func (c *NIC) Track(now int64, p *router.Packet) {
	p.FaultTxn = p.ID
	c.entries[p.FaultTxn] = &entry{pkt: p, deadline: now + c.cfg.Timeout}
	c.push(tmo{at: now + c.cfg.Timeout, txn: p.FaultTxn})
	c.tracked++
}

// AckOrDup resolves a clean delivery of p at its destination. It reports
// true when this is the transaction's first acceptance; false marks a
// redundant incarnation (the transaction already completed or was
// abandoned), which the receiver must discard.
func (c *NIC) AckOrDup(now int64, p *router.Packet) bool {
	e, ok := c.entries[p.FaultTxn]
	if !ok {
		c.dup++
		return false
	}
	delete(c.entries, p.FaultTxn)
	c.acked++
	if e.attempts > 0 {
		c.retrying[p.Src]--
		c.drainPending(now, p.Src)
	}
	return true
}

// Tick fires every timeout due at cycle now: retransmit, queue for a retry
// slot, or abandon once MaxRetries is exhausted.
func (c *NIC) Tick(now int64) {
	for len(c.heap) > 0 && c.heap[0].at <= now {
		it := c.pop()
		e, ok := c.entries[it.txn]
		if !ok || e.queued || e.deadline != it.at {
			continue // lazily deleted: acked, re-armed, or parked
		}
		if c.broken {
			delete(c.entries, it.txn)
			continue
		}
		if e.attempts >= c.cfg.MaxRetries {
			c.abandon(now, it.txn, e)
			continue
		}
		node := e.pkt.Src
		if e.attempts == 0 && c.cfg.RetryCap > 0 && c.retrying[node] >= c.cfg.RetryCap {
			e.queued = true
			c.pending[node] = append(c.pending[node], it.txn)
			continue
		}
		c.retry(now, it.txn, e)
	}
}

// retry retransmits entry e and re-arms its timeout with exponential
// backoff.
func (c *NIC) retry(now int64, txn uint64, e *entry) {
	node := e.pkt.Src
	if e.attempts == 0 {
		c.retrying[node]++
	}
	e.attempts++
	e.pkt = c.cfg.Resend(now, e.pkt)
	shift := uint(e.attempts)
	if shift > 16 {
		shift = 16
	}
	e.deadline = now + c.cfg.Timeout<<shift
	c.push(tmo{at: e.deadline, txn: txn})
	c.retried++
	c.mRetransmits.Inc()
}

func (c *NIC) abandon(now int64, txn uint64, e *entry) {
	delete(c.entries, txn)
	c.abandoned++
	c.mDeadDrops.Inc()
	node := e.pkt.Src
	if e.attempts > 0 {
		c.retrying[node]--
	}
	if c.cfg.Abandon != nil {
		c.cfg.Abandon(now, e.pkt)
	}
	c.drainPending(now, node)
}

// drainPending promotes queued transactions of node into freed retry slots.
func (c *NIC) drainPending(now int64, node int) {
	for len(c.pending[node]) > 0 &&
		(c.cfg.RetryCap <= 0 || c.retrying[node] < c.cfg.RetryCap) {
		txn := c.pending[node][0]
		c.pending[node] = c.pending[node][1:]
		e, ok := c.entries[txn]
		if !ok || !e.queued {
			continue // resolved while parked
		}
		e.queued = false
		c.retry(now, txn, e)
	}
}

// NextDeadline returns the earliest armed timeout, or -1 when none is
// armed. Queued transactions need no deadline of their own: a slot only
// frees when an armed transaction resolves.
func (c *NIC) NextDeadline() int64 {
	for len(c.heap) > 0 {
		it := c.heap[0]
		e, ok := c.entries[it.txn]
		if !ok || e.queued || e.deadline != it.at {
			c.pop()
			continue
		}
		return it.at
	}
	return -1
}

// Outstanding returns the number of unresolved transactions.
func (c *NIC) Outstanding() int { return len(c.entries) }

// Counters returns the NIC's cumulative statistics.
func (c *NIC) Counters() (tracked, acked, retried, abandoned, dup int64) {
	return c.tracked, c.acked, c.retried, c.abandoned, c.dup
}

// BreakForTest deliberately breaks the retransmit path: timed-out
// transactions are dropped without retry, abandonment, or accounting. The
// invariant harness's mutation test uses it to prove that silent loss is
// caught (Tracked == Acked + Abandoned + Outstanding fails).
func (c *NIC) BreakForTest() { c.broken = true }

// push and pop maintain the deadline min-heap, ordered by (at, txn) so heap
// restructuring is deterministic.
func (c *NIC) push(it tmo) {
	c.heap = append(c.heap, it)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !tmoLess(c.heap[i], c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *NIC) pop() tmo {
	h := c.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && tmoLess(c.heap[l], c.heap[s]) {
			s = l
		}
		if r < n && tmoLess(c.heap[r], c.heap[s]) {
			s = r
		}
		if s == i {
			break
		}
		c.heap[i], c.heap[s] = c.heap[s], c.heap[i]
		i = s
	}
	return top
}

func tmoLess(a, b tmo) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.txn < b.txn
}
