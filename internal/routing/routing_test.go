package routing

import (
	"testing"
	"testing/quick"

	"noceval/internal/sim"
	"noceval/internal/topology"
)

// walk follows an algorithm's first candidate from src to dst, returning
// the hop count; it fails the test on livelock or invalid candidates.
func walk(t *testing.T, topo *topology.Topology, alg Algorithm, rng *sim.RNG, src, dst int) int {
	t.Helper()
	st := NewState(alg.PickIntermediate(topo, rng, src, dst))
	st.ArriveAt(src)
	cur := src
	hops := 0
	var buf []Candidate
	for {
		buf = alg.Candidates(topo, cur, dst, &st, buf[:0])
		if len(buf) == 0 {
			t.Fatalf("%s: no candidates at %d for dst %d", alg.Name(), cur, dst)
		}
		c := buf[0]
		if c.Port == topo.LocalPort() {
			if cur != dst {
				t.Fatalf("%s: ejected at %d, dst %d", alg.Name(), cur, dst)
			}
			return hops
		}
		link := topo.LinkAt(cur, c.Port)
		if !link.Connected() {
			t.Fatalf("%s: candidate uses unconnected port %d at node %d", alg.Name(), c.Port, cur)
		}
		if c.Class != AnyClass {
			if nc := alg.NumClasses(topo); c.Class < 0 || c.Class >= nc {
				t.Fatalf("%s: class %d out of [0,%d)", alg.Name(), c.Class, nc)
			}
		}
		alg.Committed(topo, &st, c.Class)
		st.Traverse(link)
		cur = link.To
		st.ArriveAt(cur)
		hops++
		if hops > 100 {
			t.Fatalf("%s: livelock routing %d -> %d", alg.Name(), src, dst)
		}
	}
}

func TestAllAlgorithmsReachAllPairs(t *testing.T) {
	topos := []*topology.Topology{
		topology.NewMesh(8, 8),
		topology.NewTorus(4, 4),
		topology.NewRing(16),
	}
	rng := sim.NewRNG(1)
	for _, topo := range topos {
		for _, alg := range All() {
			for src := 0; src < topo.N; src += 3 {
				for dst := 0; dst < topo.N; dst += 5 {
					walk(t, topo, alg, rng, src, dst)
				}
			}
		}
	}
}

func TestMinimalAlgorithmsTakeMinimalPaths(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	rng := sim.NewRNG(2)
	for _, alg := range []Algorithm{DOR{}, MinimalAdaptive{}, ROMM{}} {
		err := quick.Check(func(a, b int) bool {
			src, dst := abs(a)%topo.N, abs(b)%topo.N
			return walk(t, topo, alg, rng, src, dst) == topo.Distance(src, dst)
		}, &quick.Config{MaxCount: 200})
		if err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestDORPathIsDimensionOrdered(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	// From (1,1)=9 to (5,4)=37: all +x hops must precede +y hops.
	st := NewState(-1)
	cur := 9
	sawY := false
	var buf []Candidate
	for cur != 37 {
		buf = (DOR{}).Candidates(topo, cur, 37, &st, buf[:0])
		link := topo.LinkAt(cur, buf[0].Port)
		if link.Dim == 1 {
			sawY = true
		} else if sawY {
			t.Fatal("x-hop after y-hop in DOR")
		}
		st.Traverse(link)
		cur = link.To
	}
}

func TestValiantIntermediateDistribution(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	rng := sim.NewRNG(3)
	seen := map[int]int{}
	for i := 0; i < 16000; i++ {
		mid := (Valiant{}).PickIntermediate(topo, rng, 0, 15)
		seen[mid]++
	}
	if len(seen) != 16 {
		t.Fatalf("valiant covered %d/16 intermediates", len(seen))
	}
	for n, c := range seen {
		f := float64(c) / 16000
		if f < 0.04 || f > 0.085 {
			t.Errorf("intermediate %d frequency %.3f, want ~1/16", n, f)
		}
	}
}

func TestROMMIntermediateInMinimalQuadrant(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	rng := sim.NewRNG(4)
	src, dst := topo.NodeAt([]int{1, 2}), topo.NodeAt([]int{5, 6})
	for i := 0; i < 2000; i++ {
		mid := (ROMM{}).PickIntermediate(topo, rng, src, dst)
		x, y := topo.CoordOf(mid, 0), topo.CoordOf(mid, 1)
		if x < 1 || x > 5 || y < 2 || y > 6 {
			t.Fatalf("ROMM intermediate (%d,%d) outside quadrant [1,5]x[2,6]", x, y)
		}
	}
	// ROMM paths stay minimal: src->mid->dst length equals src->dst.
	err := quick.Check(func(a, b int) bool {
		s, d := abs(a)%topo.N, abs(b)%topo.N
		mid := (ROMM{}).PickIntermediate(topo, rng, s, d)
		return topo.Distance(s, mid)+topo.Distance(mid, d) == topo.Distance(s, d)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestNumClasses(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	torus := topology.NewTorus(4, 4)
	cases := []struct {
		alg        Algorithm
		mesh, wrap int
	}{
		{DOR{}, 1, 2},
		{Valiant{}, 2, 4},
		{ROMM{}, 2, 4},
		{MinimalAdaptive{}, 2, 3},
	}
	for _, tc := range cases {
		if got := tc.alg.NumClasses(mesh); got != tc.mesh {
			t.Errorf("%s mesh classes = %d, want %d", tc.alg.Name(), got, tc.mesh)
		}
		if got := tc.alg.NumClasses(torus); got != tc.wrap {
			t.Errorf("%s torus classes = %d, want %d", tc.alg.Name(), got, tc.wrap)
		}
	}
}

func TestDatelineClassSwitch(t *testing.T) {
	topo := topology.NewRing(8)
	// 0 -> 5: minimal is minus direction through the 0->7 wraparound.
	st := NewState(-1)
	st.ArriveAt(0)
	var buf []Candidate
	buf = (DOR{}).Candidates(topo, 0, 5, &st, buf[:0])
	if buf[0].Class != 1 {
		t.Errorf("first hop crosses dateline, class = %d, want 1", buf[0].Class)
	}
	link := topo.LinkAt(0, buf[0].Port)
	if !link.Wrap {
		t.Fatal("expected wraparound link")
	}
	st.Traverse(link)
	// After crossing, subsequent hops stay in the upper class.
	buf = (DOR{}).Candidates(topo, link.To, 5, &st, buf[:0])
	if buf[0].Class != 1 {
		t.Errorf("post-dateline class = %d, want 1", buf[0].Class)
	}
}

func TestNoDatelineClassOnMesh(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	st := NewState(-1)
	var buf []Candidate
	buf = (DOR{}).Candidates(topo, 0, 63, &st, buf[:0])
	if buf[0].Class != 0 {
		t.Errorf("mesh DOR class = %d, want 0", buf[0].Class)
	}
}

func TestValiantPhaseClasses(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alg := Valiant{}
	st := NewState(27) // force a known intermediate
	st.ArriveAt(0)
	var buf []Candidate
	buf = alg.Candidates(topo, 0, 63, &st, buf[:0])
	if buf[0].Class != 0 {
		t.Errorf("phase-0 class = %d, want 0", buf[0].Class)
	}
	st.ArriveAt(27) // reach the intermediate
	if st.Phase != 1 {
		t.Fatal("phase did not advance at intermediate")
	}
	buf = alg.Candidates(topo, 27, 63, &st, buf[:0])
	if buf[0].Class != 1 {
		t.Errorf("phase-1 class = %d, want 1", buf[0].Class)
	}
}

func TestMAEscapeAndAdaptiveCandidates(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	st := NewState(-1)
	var buf []Candidate
	// From (0,0) to (3,3): two productive dims -> 2 adaptive + 1 escape.
	buf = (MinimalAdaptive{}).Candidates(topo, 0, topo.NodeAt([]int{3, 3}), &st, buf[:0])
	if len(buf) != 3 {
		t.Fatalf("MA candidates = %d, want 3", len(buf))
	}
	adaptive, escape := 0, 0
	for _, c := range buf {
		if c.Class == 1 {
			adaptive++
		} else if c.Class == 0 {
			escape++
		}
	}
	if adaptive != 2 || escape != 1 {
		t.Errorf("MA candidate mix adaptive=%d escape=%d", adaptive, escape)
	}
	// Single productive dimension: 1 adaptive + 1 escape.
	buf = (MinimalAdaptive{}).Candidates(topo, 0, 7, &st, buf[:0])
	if len(buf) != 2 {
		t.Errorf("single-dim MA candidates = %d, want 2", len(buf))
	}
}

func TestIntermediateEqualToSourceSkipsPhase(t *testing.T) {
	st := NewState(5)
	st.ArriveAt(5)
	if st.Phase != 1 {
		t.Error("intermediate == source did not complete phase 0")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dor", "val", "ma", "romm"} {
		alg, err := ByName(name)
		if err != nil || alg.Name() != name {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("xy"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
