// Package routing implements the routing algorithms of Table I: dimension-
// ordered routing (DOR), Valiant's randomized algorithm (VAL), ROMM
// (randomized minimal two-phase), and minimal-adaptive routing (MA) using
// Duato's protocol with a DOR escape class.
//
// Deadlock freedom is obtained by partitioning virtual channels into
// ordered classes: rings and tori add a dateline class per dimension
// traversal, and the two-phase algorithms (VAL, ROMM) give each phase its
// own class group. A router with V virtual channels divides them evenly
// among an algorithm's NumClasses classes.
package routing

import (
	"fmt"

	"noceval/internal/sim"
	"noceval/internal/topology"
)

// AnyClass marks a candidate that may use any virtual channel (used for
// ejection, which is an always-available sink).
const AnyClass = -1

// State is the per-packet routing state carried by the head flit. It is
// mutated by ArriveAt when the packet reaches a router and by Traverse when
// it crosses a link.
type State struct {
	// Intermediate is the mid-point node for two-phase algorithms, or -1.
	Intermediate int
	// Phase is 0 while heading to Intermediate, 1 afterwards.
	Phase int
	// CurDim is the dimension currently being traversed, or -1 before the
	// first hop of a phase.
	CurDim int
	// Dateline records whether the packet crossed a wraparound channel in
	// the current dimension (selects the upper dateline VC class).
	Dateline bool
	// OnEscape marks a packet that committed to an escape-class channel
	// under Duato's protocol. Once on the escape network, the packet must
	// stay on it: re-entering adaptive channels creates cyclic extended
	// dependencies between escape channels of different dimensions and can
	// deadlock.
	OnEscape bool
}

// NewState returns the initial routing state for a packet with the given
// intermediate node (-1 for single-phase algorithms).
func NewState(intermediate int) State {
	return State{Intermediate: intermediate, CurDim: -1}
}

// ArriveAt updates the state when the packet's head flit reaches router
// cur: reaching the intermediate node ends phase 0.
func (st *State) ArriveAt(cur int) {
	if st.Phase == 0 && st.Intermediate >= 0 && cur == st.Intermediate {
		st.Phase = 1
		st.CurDim = -1
		st.Dateline = false
	}
}

// Traverse updates the state as the packet's head flit crosses a link.
func (st *State) Traverse(link topology.Link) {
	if link.Dim != st.CurDim {
		st.CurDim = link.Dim
		st.Dateline = false
	}
	if link.Wrap {
		st.Dateline = true
	}
}

// classAfter returns the dateline class the packet will occupy downstream
// after traversing the given link: 0 below the dateline, 1 above.
func (st *State) classAfter(link topology.Link) int {
	dl := st.Dateline
	if link.Dim != st.CurDim {
		dl = false
	}
	if link.Wrap {
		dl = true
	}
	if dl {
		return 1
	}
	return 0
}

// Candidate is one admissible (output port, VC class) pair for a packet.
type Candidate struct {
	Port  int
	Class int
}

// Algorithm computes the admissible next hops of a packet.
type Algorithm interface {
	// Name returns the algorithm's short identifier, e.g. "dor".
	Name() string
	// NumClasses returns how many VC classes the algorithm needs on the
	// given topology. The network must provide at least that many VCs.
	NumClasses(t *topology.Topology) int
	// PickIntermediate selects the intermediate node for a packet from src
	// to dst, or returns -1 when the algorithm is single-phase.
	PickIntermediate(t *topology.Topology, rng *sim.RNG, src, dst int) int
	// Candidates appends the admissible (port, class) pairs for a packet at
	// node cur heading for dst, and returns the extended slice. Reaching
	// the final destination yields the single candidate
	// {t.LocalPort(), AnyClass}.
	Candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate
	// Committed informs the algorithm which VC class the packet was
	// granted for its next hop, so per-packet protocol state can be
	// updated (Duato escape commitment). Called with AnyClass for
	// ejection grants.
	Committed(t *topology.Topology, st *State, class int)
}

// noCommit provides the no-op Committed shared by algorithms without
// per-grant state.
type noCommit struct{}

// Committed implements Algorithm as a no-op.
func (noCommit) Committed(*topology.Topology, *State, int) {}

// goal returns the node the packet is currently routing toward.
func goal(dst int, st *State) int {
	if st.Phase == 0 && st.Intermediate >= 0 {
		return st.Intermediate
	}
	return dst
}

// datelineClasses returns how many dateline classes one DOR phase needs.
func datelineClasses(t *topology.Topology) int {
	if t.Kind == topology.MeshKind {
		return 1
	}
	return 2
}

// dorNext returns the DOR output port from cur toward target, or -1 when
// cur == target. Dimensions are corrected in ascending order.
func dorNext(t *topology.Topology, cur, target int) int {
	for d := 0; d < t.Dims; d++ {
		dir, _ := t.DirTo(d, t.CoordOf(cur, d), t.CoordOf(target, d))
		if dir > 0 {
			return topology.PlusPort(d)
		}
		if dir < 0 {
			return topology.MinusPort(d)
		}
	}
	return -1
}

// DOR is deterministic dimension-ordered routing: correct dimension 0
// fully, then dimension 1, and so on. On a mesh it needs a single VC
// class; rings and tori need a dateline class pair.
type DOR struct{ noCommit }

// Name implements Algorithm.
func (DOR) Name() string { return "dor" }

// NumClasses implements Algorithm.
func (DOR) NumClasses(t *topology.Topology) int { return datelineClasses(t) }

// PickIntermediate implements Algorithm.
func (DOR) PickIntermediate(*topology.Topology, *sim.RNG, int, int) int { return -1 }

// Candidates implements Algorithm.
func (DOR) Candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate {
	g := goal(dst, st)
	if cur == g {
		return append(buf, Candidate{Port: t.LocalPort(), Class: AnyClass})
	}
	port := dorNext(t, cur, g)
	class := 0
	if datelineClasses(t) == 2 {
		class = st.classAfter(t.LinkAt(cur, port))
	}
	return append(buf, Candidate{Port: port, Class: class})
}

// twoPhase provides the shared Candidates logic of VAL and ROMM: DOR within
// each phase, with phase-partitioned VC classes.
type twoPhase struct{}

func (twoPhase) numClasses(t *topology.Topology) int { return 2 * datelineClasses(t) }

func (twoPhase) candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate {
	g := goal(dst, st)
	if cur == g {
		// goal == dst here: phase transitions happen in ArriveAt, so a
		// packet sitting at its intermediate is already in phase 1.
		return append(buf, Candidate{Port: t.LocalPort(), Class: AnyClass})
	}
	port := dorNext(t, cur, g)
	dlc := datelineClasses(t)
	class := st.Phase * dlc
	if dlc == 2 {
		class += st.classAfter(t.LinkAt(cur, port))
	}
	return append(buf, Candidate{Port: port, Class: class})
}

// Valiant routes every packet through a uniformly random intermediate node,
// trading locality for perfect load balance (VAL in the paper).
type Valiant struct {
	twoPhase
	noCommit
}

// Name implements Algorithm.
func (Valiant) Name() string { return "val" }

// NumClasses implements Algorithm.
func (v Valiant) NumClasses(t *topology.Topology) int { return v.numClasses(t) }

// PickIntermediate implements Algorithm.
func (Valiant) PickIntermediate(t *topology.Topology, rng *sim.RNG, _, _ int) int {
	return rng.Intn(t.N)
}

// Candidates implements Algorithm.
func (v Valiant) Candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate {
	return v.candidates(t, cur, dst, st, buf)
}

// ROMM is two-phase randomized minimal routing: the intermediate node is
// drawn uniformly from the minimal quadrant spanned by source and
// destination, so paths stay minimal while gaining diversity.
type ROMM struct {
	twoPhase
	noCommit
}

// Name implements Algorithm.
func (ROMM) Name() string { return "romm" }

// NumClasses implements Algorithm.
func (r ROMM) NumClasses(t *topology.Topology) int { return r.numClasses(t) }

// PickIntermediate implements Algorithm.
func (ROMM) PickIntermediate(t *topology.Topology, rng *sim.RNG, src, dst int) int {
	coord := make([]int, t.Dims)
	for d := 0; d < t.Dims; d++ {
		a := t.CoordOf(src, d)
		dir, hops := t.DirTo(d, a, t.CoordOf(dst, d))
		off := 0
		if hops > 0 {
			off = rng.Intn(hops + 1)
		}
		k := t.K[d]
		coord[d] = ((a+dir*off)%k + k) % k
	}
	return t.NodeAt(coord)
}

// Candidates implements Algorithm.
func (r ROMM) Candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate {
	return r.candidates(t, cur, dst, st, buf)
}

// MinimalAdaptive (MA) may take any productive minimal hop using the
// adaptive VC class and falls back to DOR on a dedicated escape class
// (Duato's protocol), which keeps it deadlock-free while letting packets
// route around congestion. A packet granted an escape channel commits to
// the escape network for the rest of its route ("once on escape, stay on
// escape"): allowing re-entry into adaptive channels creates cyclic
// extended dependencies between the X and Y escape channels and is a
// real, empirically reproducible deadlock.
type MinimalAdaptive struct{}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "ma" }

// NumClasses implements Algorithm.
func (MinimalAdaptive) NumClasses(t *topology.Topology) int {
	return datelineClasses(t) + 1 // escape classes + one adaptive class
}

// PickIntermediate implements Algorithm.
func (MinimalAdaptive) PickIntermediate(*topology.Topology, *sim.RNG, int, int) int { return -1 }

// Committed implements Algorithm: commit to the escape network once an
// escape-class channel is granted.
func (m MinimalAdaptive) Committed(t *topology.Topology, st *State, class int) {
	if class != AnyClass && class < datelineClasses(t) {
		st.OnEscape = true
	}
}

// Candidates implements Algorithm.
func (m MinimalAdaptive) Candidates(t *topology.Topology, cur, dst int, st *State, buf []Candidate) []Candidate {
	g := goal(dst, st)
	if cur == g {
		return append(buf, Candidate{Port: t.LocalPort(), Class: AnyClass})
	}
	dlc := datelineClasses(t)
	if st.OnEscape {
		// Escape committed: DOR on the escape classes only.
		port := dorNext(t, cur, g)
		class := 0
		if dlc == 2 {
			class = st.classAfter(t.LinkAt(cur, port))
		}
		return append(buf, Candidate{Port: port, Class: class})
	}
	adaptiveClass := dlc
	// All productive minimal directions on the adaptive class.
	for d := 0; d < t.Dims; d++ {
		dir, _ := t.DirTo(d, t.CoordOf(cur, d), t.CoordOf(g, d))
		if dir > 0 {
			buf = append(buf, Candidate{Port: topology.PlusPort(d), Class: adaptiveClass})
		} else if dir < 0 {
			buf = append(buf, Candidate{Port: topology.MinusPort(d), Class: adaptiveClass})
		}
	}
	// Escape path: the DOR hop on the escape class.
	port := dorNext(t, cur, g)
	class := 0
	if dlc == 2 {
		class = st.classAfter(t.LinkAt(cur, port))
	}
	return append(buf, Candidate{Port: port, Class: class})
}

// ByName returns the built-in algorithm with the given name.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "dor":
		return DOR{}, nil
	case "val":
		return Valiant{}, nil
	case "romm":
		return ROMM{}, nil
	case "ma":
		return MinimalAdaptive{}, nil
	default:
		return nil, fmt.Errorf("routing: unknown algorithm %q", name)
	}
}

// All returns every built-in algorithm in the order the paper lists them.
func All() []Algorithm {
	return []Algorithm{DOR{}, Valiant{}, MinimalAdaptive{}, ROMM{}}
}
