package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"noceval/internal/obs"
	"noceval/internal/obs/export"
)

// EndpointMetrics is one HTTP endpoint's instrument bundle in the
// process-wide registry: request count, in-flight gauge, and a latency
// histogram. With no registry installed every field is nil and Begin/End
// are pure nil checks — the zero-alloc guard in obs_guard_test.go pins
// that path.
type EndpointMetrics struct {
	Requests *obs.Counter
	InFlight *obs.Gauge
	Latency  *obs.Histogram
}

// NewEndpointMetrics registers the instruments for one endpoint name
// (e.g. "submit" -> http.submit.requests, http.submit.in_flight,
// http.submit.latency_ms). Nil registry hands back nil instruments.
func NewEndpointMetrics(reg *obs.Registry, endpoint string) *EndpointMetrics {
	return &EndpointMetrics{
		Requests: reg.Counter("http." + endpoint + ".requests"),
		InFlight: reg.Gauge("http." + endpoint + ".in_flight"),
		Latency:  reg.Histogram("http."+endpoint+".latency_ms", 0, 10_000, 64),
	}
}

// Begin records a request's arrival. Nil-safe.
func (m *EndpointMetrics) Begin() {
	if m == nil {
		return
	}
	m.Requests.Inc()
	m.InFlight.Add(1)
}

// End records a request's completion given its start time. Nil-safe.
func (m *EndpointMetrics) End(start time.Time) {
	if m == nil {
		return
	}
	m.InFlight.Add(-1)
	m.Latency.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
}

// instrument wraps a handler with one endpoint's metrics.
func instrument(m *EndpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.Begin()
		defer m.End(start)
		h(w, r)
	}
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// SubmitResponse is the POST /jobs payload: the job view plus whether
// this submission coalesced onto an already-in-flight identical spec.
type SubmitResponse struct {
	View
	CoalescedOnto bool `json:"coalescedOnto"`
}

// Handler builds the service's HTTP API:
//
//	POST /jobs               submit a spec -> 202 (new) / 200 (coalesced)
//	GET  /jobs               dashboard: all jobs + scheduler state
//	GET  /jobs/{id}          one job's state and result
//	POST /jobs/{id}/cancel   cancel (idempotent)
//	GET  /jobs/{id}/events   SSE stream of state transitions
//	GET  /metrics            Prometheus text exposition of the registry
//	GET  /metrics.json       registry snapshot as JSON
//	GET  /healthz            liveness ("draining" while shutting down)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", instrument(NewEndpointMetrics(s.reg, "submit"), s.handleSubmit))
	mux.HandleFunc("GET /jobs", instrument(NewEndpointMetrics(s.reg, "jobs_list"), s.handleList))
	mux.HandleFunc("GET /jobs/{id}", instrument(NewEndpointMetrics(s.reg, "job_get"), s.handleGet))
	mux.HandleFunc("POST /jobs/{id}/cancel", instrument(NewEndpointMetrics(s.reg, "job_cancel"), s.handleCancel))
	mux.HandleFunc("GET /jobs/{id}/events", instrument(NewEndpointMetrics(s.reg, "job_events"), s.handleEvents))
	mux.HandleFunc("GET /metrics", instrument(NewEndpointMetrics(s.reg, "metrics"), s.handleMetrics))
	mux.HandleFunc("GET /metrics.json", instrument(NewEndpointMetrics(s.reg, "metrics"), s.handleMetricsJSON))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "service: reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("service: spec exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	view, coalesced, err := s.Submit(body)
	if err != nil {
		status := http.StatusInternalServerError
		if se, ok := err.(*submitError); ok {
			status = se.status
		}
		writeError(w, status, err.Error())
		return
	}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{View: view, CoalescedOnto: coalesced})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "service: unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "service: unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams a job's state transitions as server-sent events,
// one `event: state` per transition, ending after the terminal state (or
// when the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "service: unknown job "+r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "service: streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		view, changed := j.Watch()
		data, err := json.Marshal(view)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		fl.Flush()
		if Terminal(view.State) {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, export.PromText(s.reg))
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	data, err := s.reg.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
