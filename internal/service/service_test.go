package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"noceval/internal/obs"
)

// withObs installs a fresh process-wide registry for one test, so counter
// assertions see only this test's traffic.
func withObs(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	t.Cleanup(func() { obs.SetDefault(nil) })
	return reg
}

// newTestServer builds a Server and serves its API over httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Abort()
	})
	return s, ts
}

// specJSON builds an openloop spec on a mesh4x4 with explicit phase
// lengths: measure controls how long the job simulates, so tests pick
// their own point on the fast/slow axis. Distinct seeds give distinct
// spec hashes.
func specJSON(rate float64, seed uint64, measure int64) string {
	return fmt.Sprintf(`{"kind":"openloop","network":{"Topology":"mesh4x4","VCs":2,"BufDepth":16,"RouterDelay":1,"Routing":"dor","Arb":"rr","Pattern":"uniform","Sizes":"single","Seed":%d},"rate":%g,"warmup":200,"measure":%d,"drainLimit":50000}`,
		seed, rate, measure)
}

// quickSpec finishes in well under a second.
func quickSpec(seed uint64) string { return specJSON(0.1, seed, 2000) }

// slowSpec simulates 20M cycles — far beyond any test's patience, so it
// only ever ends by cancel, timeout, or abort.
func slowSpec(seed uint64) string { return specJSON(0.1, seed, 20_000_000) }

func postSpec(t *testing.T, url, body string) (int, SubmitResponse) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decoding submit response %q: %v", data, err)
	}
	return resp.StatusCode, sr
}

func getView(t *testing.T, url, id string) (int, View) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, url, id string, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, v := getView(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if Terminal(v.State) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, v.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls until the job reaches the given (non-terminal) state.
func waitState(t *testing.T, url, id, state string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, v := getView(t, url, id)
		if v.State == state {
			return
		}
		if Terminal(v.State) {
			t.Fatalf("job %s reached terminal %q while waiting for %q (error: %s)", id, v.State, state, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v, want %q", id, v.State, timeout, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 2})

	code, sr := postSpec(t, ts.URL, quickSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if sr.ID == "" || sr.CoalescedOnto {
		t.Fatalf("submit response = %+v, want fresh job", sr)
	}
	if sr.Kind != "openloop" || sr.SpecHash == "" {
		t.Fatalf("submit response = %+v, want kind/hash populated", sr)
	}

	v := waitTerminal(t, ts.URL, sr.ID, 30*time.Second)
	if v.State != StateDone {
		t.Fatalf("job ended %q (error %q), want done", v.State, v.Error)
	}
	if !strings.HasPrefix(v.Result, "openloop mesh4x4") {
		t.Fatalf("result = %q, want an openloop report", v.Result)
	}
	if v.StartedAt == "" || v.FinishedAt == "" {
		t.Fatalf("terminal view missing timestamps: %+v", v)
	}

	// Dashboard reflects the finished job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var dash Dashboard
	if err := json.NewDecoder(resp.Body).Decode(&dash); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dash.Jobs) != 1 || dash.Counts[StateDone] != 1 || dash.Draining {
		t.Fatalf("dashboard = %+v, want one done job", dash)
	}

	// Unknown job ids are 404s.
	if code, _ := getView(t, ts.URL, "job-999999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
		wantStatus int
	}{
		{"invalid json", "not json", 400},
		{"unknown kind", `{"kind":"warp","rate":0.1}`, 400},
		{"unknown field", `{"kind":"openloop","rate":0.1,"bogus":1}`, 400},
		{"missing rate", `{"kind":"openloop"}`, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("error body = %+v (decode err %v), want an error message", eb, err)
			}
		})
	}
}

func TestCancelRunningJob(t *testing.T) {
	reg := withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	_, sr := postSpec(t, ts.URL, slowSpec(2))
	waitState(t, ts.URL, sr.ID, StateRunning, 10*time.Second)

	resp, err := http.Post(ts.URL+"/jobs/"+sr.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", resp.StatusCode)
	}
	v := waitTerminal(t, ts.URL, sr.ID, 30*time.Second)
	if v.State != StateCanceled {
		t.Fatalf("job ended %q (error %q), want canceled", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "canceled") {
		t.Fatalf("error = %q, want cancellation mentioned", v.Error)
	}
	if got := reg.Counter("service.jobs_canceled").Value(); got != 1 {
		t.Fatalf("jobs_canceled = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 8})
	// Occupy the single worker, then queue a second job behind it.
	_, blocker := postSpec(t, ts.URL, slowSpec(3))
	waitState(t, ts.URL, blocker.ID, StateRunning, 10*time.Second)
	_, queued := postSpec(t, ts.URL, slowSpec(4))
	if _, v := getView(t, ts.URL, queued.ID); v.State != StateQueued {
		t.Fatalf("second job is %q, want queued behind the single worker", v.State)
	}

	// A queued cancel resolves immediately — no worker ever touches it.
	resp, err := http.Post(ts.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, v := getView(t, ts.URL, queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job after cancel = %q, want canceled", v.State)
	}
	// The blocker is unaffected.
	if _, v := getView(t, ts.URL, blocker.ID); v.State != StateRunning {
		t.Fatalf("blocker = %q, want still running", v.State)
	}
}

func TestJobTimeout(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 100 * time.Millisecond})
	_, sr := postSpec(t, ts.URL, slowSpec(5))
	v := waitTerminal(t, ts.URL, sr.ID, 30*time.Second)
	if v.State != StateFailed {
		t.Fatalf("timed-out job ended %q, want failed", v.State)
	}
	if !strings.Contains(v.Error, "timed out after") {
		t.Fatalf("error = %q, want the timeout cause", v.Error)
	}
}

func TestSSEStreamsToTerminalState(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	_, sr := postSpec(t, ts.URL, specJSON(0.1, 6, 100_000))

	resp, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var v View
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		states = append(states, v.State)
	}
	// The stream ends server-side after the terminal event, so Scan
	// returning false means the job finished.
	if len(states) == 0 {
		t.Fatal("no SSE events received")
	}
	if last := states[len(states)-1]; last != StateDone {
		t.Fatalf("final streamed state = %q (saw %v), want done", last, states)
	}
}

func TestDrainFinishesAcceptedAndRejectsNew(t *testing.T) {
	withObs(t)
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 8})
	var ids []string
	for seed := uint64(10); seed < 13; seed++ {
		_, sr := postSpec(t, ts.URL, quickSpec(seed))
		ids = append(ids, sr.ID)
	}
	s.Drain() // blocks until all three jobs finish

	for _, id := range ids {
		if _, v := getView(t, ts.URL, id); v.State != StateDone {
			t.Fatalf("job %s = %q after drain, want done", id, v.State)
		}
	}
	// New submissions bounce with 503 and healthz reports draining.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(quickSpec(99)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hz.StatusCode)
	}
}

func TestQueueFullRejectsWith503(t *testing.T) {
	reg := withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	_, blocker := postSpec(t, ts.URL, slowSpec(20))
	waitState(t, ts.URL, blocker.ID, StateRunning, 10*time.Second)
	if code, _ := postSpec(t, ts.URL, slowSpec(21)); code != http.StatusAccepted {
		t.Fatalf("queue-slot submit = %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(slowSpec(22)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-queue submit = %d, want 503", resp.StatusCode)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if !strings.Contains(eb.Error, "queue full") {
		t.Fatalf("error = %q, want queue full", eb.Error)
	}
	if got := reg.Counter("service.jobs_rejected").Value(); got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}
}

func TestMetricsEndpointExposesServiceCounters(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	_, sr := postSpec(t, ts.URL, quickSpec(30))
	waitTerminal(t, ts.URL, sr.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"service_jobs_submitted 1",
		"service_jobs_done 1",
		"http_submit_requests 1",
		"http_submit_latency_ms_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}
