package service

import (
	"sync"
	"testing"
	"time"
)

// Storm tests hammer the scheduler from many goroutines and rely on the
// race detector (the CI race job runs this package) to catch unlocked
// state. They assert only invariants that hold under any interleaving:
// every accepted job reaches exactly one terminal state, the single-flight
// table empties, and drain leaves nothing running.

func stormSpec(seed uint64) []byte { return []byte(quickSpec(seed)) }

func TestStormSubmitCancel(t *testing.T) {
	withObs(t)
	s := New(Config{Workers: 4, Queue: 16})
	t.Cleanup(s.Abort)

	const submitters, perSubmitter = 8, 12
	idCh := make(chan string, submitters*perSubmitter)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				// Distinct seeds per submission: no coalescing, maximum
				// table churn. Queue-full rejections are legal outcomes.
				v, _, err := s.Submit(stormSpec(uint64(1000 + g*perSubmitter + i)))
				if err == nil {
					idCh <- v.ID
				}
			}
		}(g)
	}

	// Cancellers race the submitters, killing every other job they see.
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			n := 0
			for {
				select {
				case id := <-idCh:
					if n++; n%2 == 0 {
						s.Cancel(id)
					}
				case <-stop:
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Drain()
	close(stop)
	cwg.Wait()

	d := s.Snapshot()
	for _, v := range d.Jobs {
		if !Terminal(v.State) {
			t.Fatalf("job %s is %q after drain, want terminal", v.ID, v.State)
		}
	}
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("single-flight table holds %d entries after drain, want 0", inflight)
	}
	if got := d.Counts[StateDone] + d.Counts[StateCanceled] + d.Counts[StateFailed]; got != len(d.Jobs) {
		t.Fatalf("terminal counts %v do not cover %d jobs", d.Counts, len(d.Jobs))
	}
}

func TestStormCoalescedSubmitWhileCancelling(t *testing.T) {
	withObs(t)
	s := New(Config{Workers: 2, Queue: 16})
	t.Cleanup(s.Abort)

	// Everyone submits the same slow spec while one goroutine repeatedly
	// cancels whatever job currently owns the hash: submissions must
	// either coalesce or start a fresh job, never error, never deadlock.
	spec := []byte(slowSpec(77))
	var wg sync.WaitGroup
	ids := make(chan string, 256)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v, _, err := s.Submit(spec)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- v.ID
			}
		}()
	}
	var cancelled sync.WaitGroup
	cancelled.Add(1)
	go func() {
		defer cancelled.Done()
		for id := range ids {
			s.Cancel(id)
		}
	}()
	wg.Wait()
	close(ids)
	cancelled.Wait()
	s.Abort()

	d := s.Snapshot()
	if len(d.Jobs) == 0 {
		t.Fatal("no jobs recorded")
	}
	for _, v := range d.Jobs {
		if !Terminal(v.State) {
			t.Fatalf("job %s is %q after abort, want terminal", v.ID, v.State)
		}
	}
}

func TestStormDrainRacesSubmitters(t *testing.T) {
	withObs(t)
	s := New(Config{Workers: 2, Queue: 8})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Errors (queue full, draining) are expected once Drain
				// lands; the invariant is no panic and no stuck job.
				s.Submit(stormSpec(uint64(2000 + g*10 + i)))
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	s.Drain()
	wg.Wait()

	for _, v := range s.Snapshot().Jobs {
		if !Terminal(v.State) {
			t.Fatalf("job %s is %q after drain, want terminal", v.ID, v.State)
		}
	}
	if _, _, err := s.Submit(stormSpec(9999)); err == nil {
		t.Fatal("submit after drain succeeded, want rejection")
	}
}
