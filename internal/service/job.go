package service

import (
	"context"
	"sync"
	"time"

	"noceval/internal/core"
)

// Job states. A job is born queued, becomes running when a pool worker
// picks it up, and ends in exactly one of the three terminal states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether a job state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// View is the JSON representation of a job served by the HTTP API. Its
// field set and names are pinned by the golden API-schema tests: changing
// them is an API break and must update the goldens deliberately.
type View struct {
	ID       string `json:"id"`
	SpecHash string `json:"specHash"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	// Coalesced counts the duplicate submissions this job absorbed beyond
	// the first (0 for a job nobody duplicated).
	Coalesced   int64  `json:"coalesced"`
	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	WallMS      int64  `json:"wallMs,omitempty"`
	Result      string `json:"result,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Job is one submitted experiment. All state transitions happen under mu
// and bump the changed channel, so pollers and SSE streams observe every
// transition without polling loops.
type Job struct {
	id   string
	hash string
	spec *core.ExperimentSpec

	// ctx spans the job's whole life; cancel aborts it with a cause
	// whether it is still queued or already inside the engine loop.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	changed   chan struct{} // closed and replaced on every transition
	state     string
	coalesced int64
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    string
	errText   string

	// stopTimer releases the per-job timeout's resources once the run
	// returns (nil when no timeout is configured).
	stopTimer context.CancelFunc
}

func newJob(id, hash string, spec *core.ExperimentSpec) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &Job{
		id:        id,
		hash:      hash,
		spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		changed:   make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
}

// bump wakes every watcher. Callers hold j.mu.
func (j *Job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// View snapshots the job for the API.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() View {
	v := View{
		ID:          j.id,
		SpecHash:    j.hash,
		Kind:        j.spec.Kind,
		State:       j.state,
		Coalesced:   j.coalesced,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Result:      j.result,
		Error:       j.errText,
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		v.WallMS = j.finished.Sub(j.started).Milliseconds()
	}
	return v
}

// Watch returns the current view and a channel that closes on the next
// state transition — the long-poll/SSE primitive.
func (j *Job) Watch() (View, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(), j.changed
}

// coalesce records one absorbed duplicate submission. Callers hold the
// server mutex (which owns the inflight table); the job mutex still
// guards the counter itself.
func (j *Job) coalesce() {
	j.mu.Lock()
	j.coalesced++
	j.bump()
	j.mu.Unlock()
}

// start transitions queued -> running and returns the context the run
// must observe, with the per-job timeout layered on. ok is false when the
// job was canceled while queued (the worker then skips it entirely).
func (j *Job) start(timeout time.Duration) (ctx context.Context, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, false
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx = j.ctx
	if timeout > 0 {
		ctx, j.stopTimer = context.WithTimeoutCause(ctx, timeout,
			&timeoutError{d: timeout})
	}
	j.bump()
	return ctx, true
}

// finish moves the job to a terminal state. A second call is a no-op, so
// a cancel racing the run's own completion settles on whichever got the
// job mutex first.
func (j *Job) finish(state, result, errText string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if Terminal(j.state) {
		return false
	}
	if j.stopTimer != nil {
		j.stopTimer()
		j.stopTimer = nil
	}
	j.state = state
	j.result = result
	j.errText = errText
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished // canceled before a worker picked it up
	}
	j.bump()
	return true
}

// cancelQueued atomically cancels the job if it has not started yet; it
// returns false when the job is already running or terminal (the caller
// then relies on context cancellation to stop the engine).
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	if j.stopTimer != nil {
		j.stopTimer()
		j.stopTimer = nil
	}
	j.state = StateCanceled
	j.errText = "service: job canceled while queued"
	j.finished = time.Now()
	j.started = j.finished
	j.bump()
	return true
}

// timeoutError is the cancellation cause of an expired per-job timeout.
// It is not context.Canceled, so a timed-out job lands in StateFailed
// rather than StateCanceled.
type timeoutError struct{ d time.Duration }

func (e *timeoutError) Error() string {
	return "service: job timed out after " + e.d.String()
}
