package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// Golden tests pin the wire format of every JSON response: field names,
// nesting, omitempty behaviour, and error-body shape. Values that vary
// run to run (timestamps, wall time, hashes, simulation output) are
// redacted to stable placeholders before comparison, so a golden diff
// means the API schema changed — which is exactly what clients care
// about. Job ids are NOT redacted: each subtest gets a fresh server, so
// the per-server sequence is deterministic.

func redact(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			switch k {
			case "submittedAt", "startedAt", "finishedAt":
				if s, ok := val.(string); ok && s != "" {
					x[k] = "<time>"
				}
			case "wallMs":
				x[k] = float64(1)
			case "specHash":
				if s, ok := val.(string); ok && s != "" {
					x[k] = "<hash>"
				}
			case "result":
				if s, ok := val.(string); ok && s != "" {
					x[k] = "<result>"
				}
			default:
				x[k] = redact(val)
			}
		}
		return x
	case []any:
		for i := range x {
			x[i] = redact(x[i])
		}
		return x
	}
	return v
}

// checkGolden redacts, re-marshals deterministically (Go sorts map keys),
// and compares against testdata/<name>.golden.json.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	got, err := json.MarshalIndent(redact(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/service -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response schema drifted from golden\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestGoldenAPISchema(t *testing.T) {
	t.Run("submit_accepted", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		// Saturate the single worker so the submission under test stays
		// "queued" — a deterministic state for the golden.
		_, blocker := postSpec(t, ts.URL, slowSpec(900))
		waitState(t, ts.URL, blocker.ID, StateRunning, 10*time.Second)
		code, body := do(t, http.MethodPost, ts.URL+"/jobs", quickSpec(901))
		if code != http.StatusAccepted {
			t.Fatalf("status = %d, want 202", code)
		}
		checkGolden(t, "submit_accepted", body)
	})

	t.Run("submit_coalesced", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		postSpec(t, ts.URL, slowSpec(902))
		code, body := do(t, http.MethodPost, ts.URL+"/jobs", slowSpec(902))
		if code != http.StatusOK {
			t.Fatalf("status = %d, want 200", code)
		}
		checkGolden(t, "submit_coalesced", body)
	})

	t.Run("submit_invalid_json", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		code, body := do(t, http.MethodPost, ts.URL+"/jobs", "{")
		if code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", code)
		}
		checkGolden(t, "submit_invalid_json", body)
	})

	t.Run("submit_unknown_kind", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		code, body := do(t, http.MethodPost, ts.URL+"/jobs", `{"kind":"warp"}`)
		if code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", code)
		}
		checkGolden(t, "submit_unknown_kind", body)
	})

	t.Run("job_done", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		// 300k measured cycles: slow enough that wallMs is reliably >= 1,
		// so the golden pins the field as present.
		_, sr := postSpec(t, ts.URL, specJSON(0.1, 903, 300_000))
		waitTerminal(t, ts.URL, sr.ID, 60*time.Second)
		code, body := do(t, http.MethodGet, ts.URL+"/jobs/"+sr.ID, "")
		if code != http.StatusOK {
			t.Fatalf("status = %d, want 200", code)
		}
		checkGolden(t, "job_done", body)
	})

	t.Run("job_not_found", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		code, body := do(t, http.MethodGet, ts.URL+"/jobs/job-999999", "")
		if code != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", code)
		}
		checkGolden(t, "job_not_found", body)
	})

	t.Run("cancel_not_found", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		code, body := do(t, http.MethodPost, ts.URL+"/jobs/job-999999/cancel", "")
		if code != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", code)
		}
		checkGolden(t, "cancel_not_found", body)
	})

	t.Run("dashboard", func(t *testing.T) {
		withObs(t)
		_, ts := newTestServer(t, Config{Workers: 1})
		_, sr := postSpec(t, ts.URL, specJSON(0.1, 904, 300_000))
		waitTerminal(t, ts.URL, sr.ID, 60*time.Second)
		code, body := do(t, http.MethodGet, ts.URL+"/jobs", "")
		if code != http.StatusOK {
			t.Fatalf("status = %d, want 200", code)
		}
		checkGolden(t, "dashboard", body)
	})
}
