// Package service is the multi-tenant experiment server behind cmd/nocd:
// clients POST declarative experiment specs (the same JSON
// core.ExperimentSpec that `noceval run -config` consumes) and poll or
// stream the resulting jobs. The server composes the framework's existing
// cross-cutting layers rather than reimplementing them:
//
//   - identical in-flight specs coalesce onto one simulation — a
//     single-flight table keyed by the spec's content hash (the same
//     SHA-256 family the experiment cache and run ledger use), so a burst
//     of duplicate submissions costs one engine run;
//   - repeated specs are served from the content-addressed experiment
//     cache when one is enabled (core.EnableCache), making warm repeats
//     disk-read cheap;
//   - concurrency is bounded by a par.Pool job scheduler with a bounded
//     queue: saturation degrades into fast HTTP 503s, never unbounded
//     memory;
//   - every job runs under a context threaded into the engine's cycle
//     loop, so per-job timeouts and client cancellations stop multi-minute
//     sweeps within ~1k simulated cycles;
//   - the obs registry, run ledger and Prometheus surface observe the
//     whole thing (per-endpoint HTTP metrics, job counters, /metrics).
//
// Graceful shutdown is two-stage: Drain stops intake and lets accepted
// jobs finish (SIGTERM), Abort cancels everything first (second signal).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noceval/internal/core"
	"noceval/internal/obs"
	"noceval/internal/par"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds how many jobs simulate concurrently (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// Queue bounds how many accepted jobs may wait for a worker; further
	// submissions are rejected with 503 (default 64).
	Queue int
	// JobTimeout, when positive, fails any job still running after this
	// long (the context cause names the timeout).
	JobTimeout time.Duration
	// MaxBodyBytes bounds a submission body (default 1 MiB).
	MaxBodyBytes int64
}

// Server owns the job table and scheduler. Create with New, expose with
// Handler, shut down with Drain or Abort.
type Server struct {
	cfg  Config
	reg  *obs.Registry
	pool *par.Pool

	mu       sync.Mutex
	jobs     map[string]*Job // by job id
	order    []*Job          // submission order, for the dashboard
	inflight map[string]*Job // by spec hash; single-flight table

	seq      int64
	draining atomic.Bool

	cSubmitted *obs.Counter
	cCoalesced *obs.Counter
	cRejected  *obs.Counter
	cDone      *obs.Counter
	cFailed    *obs.Counter
	cCanceled  *obs.Counter
}

// New builds a server on the process-wide obs registry (nil registry =
// all instruments disabled, zero overhead).
func New(cfg Config) *Server {
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	reg := obs.Default()
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		cSubmitted: reg.Counter("service.jobs_submitted"),
		cCoalesced: reg.Counter("service.jobs_coalesced"),
		cRejected:  reg.Counter("service.jobs_rejected"),
		cDone:      reg.Counter("service.jobs_done"),
		cFailed:    reg.Counter("service.jobs_failed"),
		cCanceled:  reg.Counter("service.jobs_canceled"),
	}
	s.pool = par.NewPool(cfg.Workers, cfg.Queue, nil)
	return s
}

// submitError carries the HTTP status a failed submission maps to.
type submitError struct {
	status int
	msg    string
}

func (e *submitError) Error() string { return e.msg }

// Submit parses, validates, and schedules one experiment spec. The
// returned bool reports coalescing: true means an identical spec was
// already in flight and the returned view is that existing job. On error
// the *submitError (via errors.As) carries the HTTP status.
func (s *Server) Submit(data []byte) (View, bool, error) {
	spec, err := core.ParseSpec(data)
	if err != nil {
		return View{}, false, &submitError{status: 400, msg: err.Error()}
	}
	if err := spec.Validate(); err != nil {
		return View{}, false, &submitError{status: 400, msg: err.Error()}
	}
	hash, err := spec.Hash()
	if err != nil {
		return View{}, false, &submitError{status: 500, msg: fmt.Sprintf("service: hashing spec: %v", err)}
	}
	if s.draining.Load() {
		return View{}, false, &submitError{status: 503, msg: "service: draining, not accepting jobs"}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.inflight[hash]; j != nil {
		j.coalesce()
		s.cCoalesced.Inc()
		return j.View(), true, nil
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), hash, spec)
	// Insert before scheduling and keep s.mu across TrySubmit (it never
	// blocks): a worker that finishes the job instantly then blocks in
	// release until the tables are consistent, and a refused submission
	// can roll the insertion back before anyone observed it.
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.inflight[hash] = j
	if !s.pool.TrySubmit(func() { s.run(j) }) {
		delete(s.jobs, j.id)
		delete(s.inflight, hash)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.cRejected.Inc()
		return View{}, false, &submitError{status: 503, msg: "service: job queue full"}
	}
	s.cSubmitted.Inc()
	return j.View(), false, nil
}

// run executes one job on a pool worker.
func (s *Server) run(j *Job) {
	defer func() {
		if v := recover(); v != nil {
			s.settle(j, "", fmt.Errorf("service: job panicked: %v", v))
		}
	}()
	ctx, ok := j.start(s.cfg.JobTimeout)
	if !ok {
		// Canceled while queued; cancelQueued already finished it, only
		// the single-flight entry remains to clean up.
		s.release(j)
		return
	}
	out, err := j.spec.RunContext(ctx)
	s.settle(j, out, err)
}

// settle moves a finished run into its terminal state and releases the
// single-flight entry.
func (s *Server) settle(j *Job, out string, err error) {
	switch {
	case err == nil:
		if j.finish(StateDone, out, "") {
			s.cDone.Inc()
		}
	case errors.Is(err, context.Canceled):
		if j.finish(StateCanceled, "", err.Error()) {
			s.cCanceled.Inc()
		}
	default:
		if j.finish(StateFailed, "", err.Error()) {
			s.cFailed.Inc()
		}
	}
	s.release(j)
}

// release removes the job's single-flight entry so later identical specs
// start a fresh job (served from the experiment cache when enabled).
func (s *Server) release(j *Job) {
	s.mu.Lock()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	s.mu.Unlock()
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts a job: a queued job finishes immediately, a running one
// is stopped through its context (the engine loop notices within ~1k
// cycles). Canceling a terminal job is a no-op. ok is false when the id
// is unknown.
func (s *Server) Cancel(id string) (View, bool) {
	j, ok := s.Job(id)
	if !ok {
		return View{}, false
	}
	if j.cancelQueued() {
		s.cCanceled.Inc()
		s.release(j)
	} else {
		j.cancel(context.Canceled)
	}
	return j.View(), true
}

// Dashboard is the GET /jobs payload.
type Dashboard struct {
	Jobs       []View         `json:"jobs"`
	QueueDepth int            `json:"queueDepth"`
	Draining   bool           `json:"draining"`
	Counts     map[string]int `json:"counts"`
}

// Snapshot builds the dashboard view: every job in submission order plus
// scheduler state.
func (s *Server) Snapshot() Dashboard {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	d := Dashboard{
		Jobs:       make([]View, 0, len(jobs)),
		QueueDepth: s.pool.QueueDepth(),
		Draining:   s.draining.Load(),
		Counts:     make(map[string]int),
	}
	for _, j := range jobs {
		v := j.View()
		d.Counts[v.State]++
		d.Jobs = append(d.Jobs, v)
	}
	return d
}

// Drain stops intake (submissions get 503) and blocks until every
// accepted job — queued and running — has reached a terminal state. The
// SIGTERM path.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pool.Close()
}

// Abort cancels every non-terminal job, then drains. The
// second-signal/hard-shutdown path; still bounded only by the engine's
// cancellation latency.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		if j.cancelQueued() {
			s.cCanceled.Inc()
			s.release(j)
		} else {
			j.cancel(context.Canceled)
		}
	}
	s.pool.Close()
}
