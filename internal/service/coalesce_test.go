package service

import (
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"noceval/internal/core"
)

// TestCoalescingSingleFlight is the tentpole proof: 32 concurrent
// submissions of one identical spec must execute exactly one simulation.
// Three independent witnesses confirm it — the run ledger holds a single
// run record, the coalesce counter reads 31, and all 32 submitters land
// on one job id whose result bytes they share.
func TestCoalescingSingleFlight(t *testing.T) {
	reg := withObs(t)
	ledgerPath := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := core.EnableLedger(ledgerPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { core.DisableLedger() })

	_, ts := newTestServer(t, Config{Workers: 4})
	// Long enough (1M measured cycles) that the job is still in flight
	// while all 32 submissions land, short enough to finish in-test.
	spec := specJSON(0.1, 7, 1_000_000)

	const N = 32
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
		codes []int
		ids   = make(map[string]int)
		fresh int
	)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, sr := postSpec(t, ts.URL, spec)
			mu.Lock()
			codes = append(codes, code)
			ids[sr.ID]++
			if !sr.CoalescedOnto {
				fresh++
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if len(ids) != 1 {
		t.Fatalf("submissions landed on %d distinct jobs %v, want 1", len(ids), ids)
	}
	if fresh != 1 {
		t.Fatalf("%d submissions created a job, want exactly 1", fresh)
	}
	var accepted, ok int
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			ok++
		}
	}
	if accepted != 1 || ok != N-1 {
		t.Fatalf("status split = %d accepted / %d coalesced, want 1/%d", accepted, ok, N-1)
	}
	if got := reg.Counter("service.jobs_coalesced").Value(); got != N-1 {
		t.Fatalf("service.jobs_coalesced = %d, want %d", got, N-1)
	}
	if got := reg.Counter("service.jobs_submitted").Value(); got != 1 {
		t.Fatalf("service.jobs_submitted = %d, want 1", got)
	}

	var id string
	for k := range ids {
		id = k
	}
	final := waitTerminal(t, ts.URL, id, 120*time.Second)
	if final.State != StateDone {
		t.Fatalf("coalesced job ended %q (error %q), want done", final.State, final.Error)
	}
	if final.Coalesced != N-1 {
		t.Fatalf("job view coalesced = %d, want %d", final.Coalesced, N-1)
	}

	// All 32 clients read byte-identical results.
	results := make(map[string]bool)
	for i := 0; i < N; i++ {
		_, v := getView(t, ts.URL, id)
		if v.Result == "" {
			t.Fatal("empty result on a done job")
		}
		results[v.Result] = true
	}
	if len(results) != 1 {
		t.Fatalf("clients saw %d distinct result payloads, want 1", len(results))
	}

	// Exactly one simulation ran: one ledger record, one runner start.
	if got := core.LedgerAppends(); got != 1 {
		t.Fatalf("ledger run records = %d, want 1", got)
	}
	if got := reg.Counter("core.runs_started").Value(); got != 1 {
		t.Fatalf("core.runs_started = %d, want 1", got)
	}
}

// TestRepeatServedFromCache covers the second half of dedup: once the
// first job completes (so the single-flight entry is gone), resubmitting
// the identical spec starts a fresh job whose simulation is answered by
// the content-addressed experiment cache — same result bytes, cache hit
// counted, no second engine run.
func TestRepeatServedFromCache(t *testing.T) {
	reg := withObs(t)
	if err := core.EnableCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(core.DisableCache)

	_, ts := newTestServer(t, Config{Workers: 2})
	spec := quickSpec(8)

	_, first := postSpec(t, ts.URL, spec)
	v1 := waitTerminal(t, ts.URL, first.ID, 30*time.Second)
	if v1.State != StateDone {
		t.Fatalf("first job ended %q (error %q)", v1.State, v1.Error)
	}

	code, second := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted || second.CoalescedOnto {
		t.Fatalf("repeat submit = %d coalesced=%v, want a fresh 202 job (first already finished)",
			code, second.CoalescedOnto)
	}
	if second.ID == first.ID {
		t.Fatal("repeat after completion reused the old job id")
	}
	v2 := waitTerminal(t, ts.URL, second.ID, 30*time.Second)
	if v2.State != StateDone {
		t.Fatalf("repeat job ended %q (error %q)", v2.State, v2.Error)
	}
	if v1.Result != v2.Result {
		t.Fatalf("cache-served repeat differs:\nfirst:  %q\nrepeat: %q", v1.Result, v2.Result)
	}
	if hits := reg.Counter("expcache.hits").Value(); hits < 1 {
		t.Fatalf("expcache.hits = %d, want >= 1 (repeat must be cache-served)", hits)
	}
	// Both jobs consulted the runner layer, but only the first stepped an
	// engine: the repeat's engine.runs counter stays where the first left
	// it.
	if runs := reg.Counter("engine.runs").Value(); runs != 1 {
		t.Fatalf("engine.runs = %d, want 1 (cache hit must not simulate)", runs)
	}
}
