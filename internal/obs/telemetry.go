package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// RouterSample is one cycle-sampled observation of one router: utilization
// and occupancy over the window that ended at Cycle.
type RouterSample struct {
	Cycle  int64 `json:"cycle"`
	Router int   `json:"router"`
	// XbarUtil is crossbar utilization: flits forwarded during the window
	// divided by window length (flits/cycle; a P-port router can exceed 1).
	XbarUtil float64 `json:"xbar_util"`
	// LinkUtil is the mean utilization of the router's connected network
	// output links over the window (fraction of link bandwidth in use).
	LinkUtil float64 `json:"link_util"`
	// BufOcc is the number of flits held in input VC buffers at Cycle.
	BufOcc int `json:"buf_occ"`
	// AvgVCOcc and MaxVCOcc summarize per-VC buffer occupancy at Cycle
	// (flits per VC, over every input VC of the router).
	AvgVCOcc float64 `json:"avg_vc_occ"`
	MaxVCOcc int     `json:"max_vc_occ"`
	// Injected and Ejected are terminal flit counts during the window.
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
}

// NodeSample is one cycle-sampled observation of one terminal's protocol
// state — in the batch model, Outstanding is the node's in-flight request
// count pf (the MSHR depth of §IV).
type NodeSample struct {
	Cycle       int64 `json:"cycle"`
	Node        int   `json:"node"`
	Outstanding int   `json:"outstanding"`
}

// Telemetry accumulates the sampled time series of one run.
type Telemetry struct {
	Routers []RouterSample `json:"routers"`
	Nodes   []NodeSample   `json:"nodes,omitempty"`
}

// AddRouter appends one router sample. A nil telemetry is a no-op.
func (t *Telemetry) AddRouter(s RouterSample) {
	if t != nil {
		t.Routers = append(t.Routers, s)
	}
}

// AddNode appends one node sample. A nil telemetry is a no-op.
func (t *Telemetry) AddNode(s NodeSample) {
	if t != nil {
		t.Nodes = append(t.Nodes, s)
	}
}

// routerCSVHeader matches the field order written by RouterCSV.
const routerCSVHeader = "cycle,router,xbar_util,link_util,buf_occ,avg_vc_occ,max_vc_occ,injected,ejected"

// RouterCSV renders the per-router time series (including the VC-occupancy
// columns) as CSV.
func (t *Telemetry) RouterCSV() string {
	var b strings.Builder
	b.WriteString(routerCSVHeader + "\n")
	if t == nil {
		return b.String()
	}
	for _, s := range t.Routers {
		fmt.Fprintf(&b, "%d,%d,%g,%g,%d,%g,%d,%d,%d\n",
			s.Cycle, s.Router, s.XbarUtil, s.LinkUtil, s.BufOcc, s.AvgVCOcc, s.MaxVCOcc, s.Injected, s.Ejected)
	}
	return b.String()
}

// ParseRouterCSV parses RouterCSV output back into samples.
func ParseRouterCSV(data string) ([]RouterSample, error) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) == 0 || lines[0] != routerCSVHeader {
		return nil, fmt.Errorf("obs: router CSV header mismatch")
	}
	var out []RouterSample
	for ln, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 9 {
			return nil, fmt.Errorf("obs: router CSV line %d: want 9 fields, got %d", ln+2, len(f))
		}
		var s RouterSample
		var err error
		if s.Cycle, err = strconv.ParseInt(f[0], 10, 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.Router, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.XbarUtil, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.LinkUtil, err = strconv.ParseFloat(f[3], 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.BufOcc, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.AvgVCOcc, err = strconv.ParseFloat(f[5], 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.MaxVCOcc, err = strconv.Atoi(f[6]); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.Injected, err = strconv.ParseInt(f[7], 10, 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		if s.Ejected, err = strconv.ParseInt(f[8], 10, 64); err != nil {
			return nil, fmt.Errorf("obs: router CSV line %d: %w", ln+2, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// nodeCSVHeader matches the field order written by NodeCSV.
const nodeCSVHeader = "cycle,node,outstanding"

// NodeCSV renders the per-node outstanding-request time series as CSV.
func (t *Telemetry) NodeCSV() string {
	var b strings.Builder
	b.WriteString(nodeCSVHeader + "\n")
	if t == nil {
		return b.String()
	}
	for _, s := range t.Nodes {
		fmt.Fprintf(&b, "%d,%d,%d\n", s.Cycle, s.Node, s.Outstanding)
	}
	return b.String()
}

// ParseNodeCSV parses NodeCSV output back into samples.
func ParseNodeCSV(data string) ([]NodeSample, error) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) == 0 || lines[0] != nodeCSVHeader {
		return nil, fmt.Errorf("obs: node CSV header mismatch")
	}
	var out []NodeSample
	for ln, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 3 {
			return nil, fmt.Errorf("obs: node CSV line %d: want 3 fields, got %d", ln+2, len(f))
		}
		var s NodeSample
		var err error
		if s.Cycle, err = strconv.ParseInt(f[0], 10, 64); err != nil {
			return nil, fmt.Errorf("obs: node CSV line %d: %w", ln+2, err)
		}
		if s.Node, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("obs: node CSV line %d: %w", ln+2, err)
		}
		if s.Outstanding, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("obs: node CSV line %d: %w", ln+2, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// JSON renders the full telemetry as indented JSON.
func (t *Telemetry) JSON() ([]byte, error) {
	if t == nil {
		t = &Telemetry{}
	}
	return json.MarshalIndent(t, "", "  ")
}

// ParseTelemetryJSON parses Telemetry.JSON output.
func ParseTelemetryJSON(data []byte) (*Telemetry, error) {
	var t Telemetry
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("obs: parsing telemetry JSON: %w", err)
	}
	return &t, nil
}

// MeanXbarUtil returns each router's crossbar utilization averaged over
// every sample window: the per-router congestion intensity used for
// heatmaps. The result has n entries; routers never sampled stay 0.
func (t *Telemetry) MeanXbarUtil(n int) []float64 {
	sums := make([]float64, n)
	if t == nil {
		return sums
	}
	counts := make([]int, n)
	for _, s := range t.Routers {
		if s.Router >= 0 && s.Router < n {
			sums[s.Router] += s.XbarUtil
			counts[s.Router]++
		}
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums
}
