package export_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"noceval/internal/core"
	"noceval/internal/obs"
	"noceval/internal/obs/export"
)

// scrape GETs one endpoint off the test server.
func scrape(t *testing.T, addr, path string) (string, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// Prometheus text exposition: a line is either a # TYPE comment or
// "metric_name value".
var (
	promType   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge)$`)
	promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]* [-+0-9.eE]+$`)
)

// TestMetricsEndpointSmoke is the CI smoke job (make obs-smoke): it runs a
// real cached sweep with the exporter live, scrapes /metrics, and
// validates both the Prometheus exposition format and the presence of the
// cross-run counters every instrumented subsystem publishes.
func TestMetricsEndpointSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	srv, err := export.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The registry must be installed before the cache opens so the cache's
	// instruments attach (mirroring the commands' -serve then -cache order).
	if err := core.EnableCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer core.DisableCache()

	p := core.Table2Network(1)
	rates := []float64{0.05, 0.1}
	opts := core.OpenLoopOpts{Warmup: 200, Measure: 300, DrainLimit: 3000}
	if _, err := core.OpenLoopSweepWith(p, rates, opts); err != nil {
		t.Fatal(err)
	}

	body, ctype := scrape(t, srv.Addr(), "/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q, want text/plain", ctype)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if !promType.MatchString(line) && !promSample.MatchString(line) {
			t.Errorf("invalid Prometheus exposition line: %q", line)
		}
	}
	for _, name := range []string{
		"expcache_misses", "expcache_puts", "expcache_bytes_written",
		"engine_cycles_stepped", "engine_runs",
		"par_waves", "par_tasks_done",
		"core_runs_started", "core_runs_finished",
	} {
		if !strings.Contains(body, "\n"+name+" ") && !strings.HasPrefix(body, name+" ") {
			t.Errorf("/metrics missing counter %s:\n%s", name, body)
		}
	}

	// The sweep ran cold against an empty cache: every point is a miss
	// followed by a write.
	if v := reg.Counter("expcache.misses").Value(); v < int64(len(rates)) {
		t.Errorf("expcache.misses = %d, want >= %d", v, len(rates))
	}
	if v := reg.Counter("engine.cycles_stepped").Value(); v == 0 {
		t.Error("engine.cycles_stepped stayed 0 across a sweep")
	}
	if v := reg.Counter("core.runs_finished").Value(); v < int64(len(rates)) {
		t.Errorf("core.runs_finished = %d, want >= %d", v, len(rates))
	}

	// /progress derives sweep state from the same registry.
	progress, _ := scrape(t, srv.Addr(), "/progress")
	var pv struct {
		RunsFinished int64   `json:"runs_finished"`
		RunsInFlight int64   `json:"runs_in_flight"`
		CacheMisses  int64   `json:"cache_misses"`
		Stepped      int64   `json:"cycles_stepped"`
		HitRate      float64 `json:"cache_hit_rate"`
	}
	if err := json.Unmarshal([]byte(progress), &pv); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, progress)
	}
	if pv.RunsFinished < int64(len(rates)) || pv.RunsInFlight != 0 {
		t.Errorf("/progress = %+v, want >= %d finished runs and none in flight", pv, len(rates))
	}
	if pv.Stepped == 0 || pv.CacheMisses == 0 {
		t.Errorf("/progress missing engine/cache activity: %+v", pv)
	}

	// /metrics.json must be the registry snapshot; /vars a flat object;
	// /healthz alive.
	mj, _ := scrape(t, srv.Addr(), "/metrics.json")
	if _, err := obs.ParseMetricsJSON([]byte(mj)); err != nil {
		t.Errorf("/metrics.json does not parse back: %v", err)
	}
	vars, _ := scrape(t, srv.Addr(), "/vars")
	var vm map[string]float64
	if err := json.Unmarshal([]byte(vars), &vm); err != nil {
		t.Fatalf("/vars is not a flat JSON object: %v", err)
	}
	if _, ok := vm["engine.cycles_stepped"]; !ok {
		t.Error("/vars missing engine.cycles_stepped")
	}
	if hz, _ := scrape(t, srv.Addr(), "/healthz"); strings.TrimSpace(hz) != "ok" {
		t.Errorf("/healthz = %q", hz)
	}

	// Warm rerun: every point must now be served by the cache and counted.
	if _, err := core.OpenLoopSweepWith(p, rates, opts); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("expcache.hits").Value(); v < int64(len(rates)) {
		t.Errorf("expcache.hits = %d after warm rerun, want >= %d", v, len(rates))
	}
}

// TestPromName checks the metric-name sanitizer.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine.cycles_stepped": "engine_cycles_stepped",
		"net.flits-injected":    "net_flits_injected",
		"9lives":                "_9lives",
		"ok_name":               "ok_name",
	}
	for in, want := range cases {
		if got := export.PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestNilServer checks the disabled path: a nil server no-ops.
func TestNilServer(t *testing.T) {
	var s *export.Server
	if s.Addr() != "" {
		t.Error("nil Addr() should be empty")
	}
	if err := s.Close(); err != nil {
		t.Error("nil Close() should be nil")
	}
}

// TestServeBadAddr surfaces listen errors instead of panicking.
func TestServeBadAddr(t *testing.T) {
	if _, err := export.Serve("256.256.256.256:99999", obs.NewRegistry()); err == nil {
		t.Fatal("Serve on an invalid address should fail")
	}
}
