// Package export is the live metrics endpoint of the evaluation
// framework: an opt-in HTTP server that renders an obs.Registry — almost
// always the process-wide default registry the cross-run subsystems
// publish into — as Prometheus text format, as expvar-style JSON, and as
// a small progress summary for watching a sweep converge from another
// terminal.
//
// The server is opt-in (`-serve :9500` on cmd/figures, cmd/ablations and
// the cmd/noceval subcommands) and fully inert when disabled: nothing in
// this package runs unless Serve is called, and the instrumented
// subsystems publish through nil instruments (pure nil checks) until a
// default registry is installed. Enabling wires everything: it installs
// the default registry and starts the listener.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (counters, gauges,
//	               histograms as _count/_sum/_min/_max)
//	/metrics.json  the registry snapshot as a JSON array (obs.Registry.JSON)
//	/vars          expvar-style flat JSON object {metric: value}
//	/progress      run/cache/engine progress summary with uptime
//	/healthz       liveness probe
package export

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"noceval/internal/obs"
)

// Server is one live metrics endpoint. A nil *Server is a no-op on every
// method, so callers can hold the result of a disabled flag without
// branching.
type Server struct {
	reg   *obs.Registry
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Enable installs a process-wide default registry (creating one if none
// is installed yet) and serves it on addr. This is the one-call wiring
// used by the commands' -serve flag: after it returns, the experiment
// cache, worker pool, engine and fault subsystems all publish into the
// served registry.
func Enable(addr string) (*Server, error) {
	reg := obs.Default()
	if reg == nil {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	return Serve(addr, reg)
}

// Serve starts an HTTP server for reg on addr (host:port; ":0" picks a
// free port — read it back from Addr). The server runs on its own
// goroutine until Close.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	s := &Server{reg: reg, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address (useful with ":0"), "" for a nil
// server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. A nil server is a no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// PromName sanitizes a registry metric name into a valid Prometheus
// metric name: dots and any other illegal runes become underscores, and a
// leading digit is prefixed.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// PromText renders a registry snapshot in the Prometheus text exposition
// format. Histograms are flattened to _count/_sum/_min/_max gauges (the
// registry keeps means, not quantile sketches).
func PromText(reg *obs.Registry) string {
	var b strings.Builder
	for _, m := range reg.Snapshot() {
		name := PromName(m.Name)
		switch m.Kind {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %g\n", name, name, m.Value)
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, m.Value)
		case "histogram":
			fmt.Fprintf(&b, "# TYPE %s_count counter\n%s_count %d\n", name, name, m.Count)
			fmt.Fprintf(&b, "# TYPE %s_sum gauge\n%s_sum %g\n", name, name, m.Value*float64(m.Count))
			fmt.Fprintf(&b, "# TYPE %s_min gauge\n%s_min %g\n", name, name, m.Min)
			fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %g\n", name, name, m.Max)
		}
	}
	return b.String()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, PromText(s.reg))
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	data, err := s.reg.JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleVars serves the snapshot as an expvar-style flat object; the
// histogram summary fields get dotted suffixes.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	vars := make(map[string]float64)
	for _, m := range s.reg.Snapshot() {
		switch m.Kind {
		case "histogram":
			vars[m.Name+".mean"] = m.Value
			vars[m.Name+".count"] = float64(m.Count)
			vars[m.Name+".min"] = m.Min
			vars[m.Name+".max"] = m.Max
		default:
			vars[m.Name] = m.Value
		}
	}
	vars["uptime_seconds"] = time.Since(s.start).Seconds()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(vars)
}

// progressView is the /progress payload: the subset of the registry that
// answers "how far along is this sweep" plus derived rates.
type progressView struct {
	UptimeSec     float64 `json:"uptime_sec"`
	RunsStarted   int64   `json:"runs_started"`
	RunsFinished  int64   `json:"runs_finished"`
	RunsInFlight  int64   `json:"runs_in_flight"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CyclesStepped int64   `json:"cycles_stepped"`
	CyclesSkipped int64   `json:"cycles_fastforwarded"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	ParWaves      int64   `json:"par_waves"`
	ParTasks      int64   `json:"par_tasks"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	get := func(name string) int64 {
		// Counter is get-or-create, so probing a name that no subsystem
		// has published yet just materializes a zero counter.
		return s.reg.Counter(name).Value()
	}
	v := progressView{
		UptimeSec:     time.Since(s.start).Seconds(),
		RunsStarted:   get("core.runs_started"),
		RunsFinished:  get("core.runs_finished"),
		CacheHits:     get("expcache.hits"),
		CacheMisses:   get("expcache.misses"),
		CyclesStepped: get("engine.cycles_stepped"),
		CyclesSkipped: get("engine.cycles_fastforwarded"),
		ParWaves:      get("par.waves"),
		ParTasks:      get("par.tasks_done"),
	}
	v.RunsInFlight = v.RunsStarted - v.RunsFinished
	if total := v.CacheHits + v.CacheMisses; total > 0 {
		v.CacheHitRate = float64(v.CacheHits) / float64(total)
	}
	if v.UptimeSec > 0 {
		v.CyclesPerSec = float64(v.CyclesStepped) / v.UptimeSec
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
