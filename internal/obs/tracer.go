package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Phase is one stage of a flit's lifecycle through the network.
type Phase uint8

// Lifecycle phases, in pipeline order.
const (
	PhaseInject  Phase = iota // head flit entered the injection buffer
	PhaseRoute                // head flit's route computed at a router
	PhaseVCAlloc              // head flit granted an output VC
	PhaseSwitch               // flit won switch allocation and left the router
	PhaseEject                // tail flit reached the destination terminal
)

// String returns the phase's short name.
func (p Phase) String() string {
	switch p {
	case PhaseInject:
		return "inject"
	case PhaseRoute:
		return "route"
	case PhaseVCAlloc:
		return "vc-alloc"
	case PhaseSwitch:
		return "switch"
	case PhaseEject:
		return "eject"
	default:
		return "?"
	}
}

// Event is one recorded lifecycle point: packet Packet reached Phase at
// router/terminal Node in cycle Cycle.
type Event struct {
	Cycle  int64  `json:"cycle"`
	Packet uint64 `json:"packet"`
	Node   int32  `json:"node"`
	Phase  Phase  `json:"phase"`
}

// Tracer records flit-lifecycle events into a bounded ring buffer: when
// full, the oldest events are overwritten, so a long run keeps its most
// recent window — the part that shows where a hang or congestion collapse
// happened.
type Tracer struct {
	ring    []Event
	next    int
	n       int
	dropped int64
}

// DefaultTraceCap bounds the ring when the caller does not choose a size.
const DefaultTraceCap = 1 << 18

// NewTracer returns a tracer holding at most capacity events (the default
// when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Record appends one lifecycle event, overwriting the oldest when the ring
// is full. A nil tracer is a no-op.
func (t *Tracer) Record(cycle int64, packet uint64, node int, phase Phase) {
	if t == nil {
		return
	}
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.next] = Event{Cycle: cycle, Packet: packet, Node: int32(node), Phase: phase}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders the trace in Chrome trace-event JSON (loadable in
// chrome://tracing or https://ui.perfetto.dev). Each router/terminal
// becomes a track (tid), and each lifecycle stage becomes a complete event
// spanning from the stage's cycle to the packet's next recorded stage
// (timestamps are cycles presented as microseconds). An empty trace still
// yields a valid file.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	evs := t.Events()
	// Order by packet then cycle then phase so each event's duration can
	// extend to the packet's next lifecycle point.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Packet != evs[j].Packet {
			return evs[i].Packet < evs[j].Packet
		}
		if evs[i].Cycle != evs[j].Cycle {
			return evs[i].Cycle < evs[j].Cycle
		}
		return evs[i].Phase < evs[j].Phase
	})
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	seenNode := map[int32]bool{}
	for i, ev := range evs {
		dur := 1.0
		if i+1 < len(evs) && evs[i+1].Packet == ev.Packet && evs[i+1].Cycle > ev.Cycle {
			dur = float64(evs[i+1].Cycle - ev.Cycle)
		}
		if !seenNode[ev.Node] {
			seenNode[ev.Node] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: int(ev.Node),
				Args: map[string]any{"name": fmt.Sprintf("router %d", ev.Node)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("pkt %d %s", ev.Packet, ev.Phase),
			Ph:   "X",
			Ts:   float64(ev.Cycle),
			Dur:  dur,
			Pid:  0,
			Tid:  int(ev.Node),
			Args: map[string]any{"packet": ev.Packet, "phase": ev.Phase.String()},
		})
	}
	return json.MarshalIndent(out, "", " ")
}

// ParseChromeJSON parses a ChromeJSON trace back into lifecycle events
// (metadata records are skipped), for round-trip tests and tooling.
func ParseChromeJSON(data []byte) ([]Event, error) {
	var ct struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			Args struct {
				Packet uint64 `json:"packet"`
				Phase  string `json:"phase"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	phases := map[string]Phase{}
	for p := PhaseInject; p <= PhaseEject; p++ {
		phases[p.String()] = p
	}
	var out []Event
	for _, e := range ct.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		p, ok := phases[e.Args.Phase]
		if !ok {
			return nil, fmt.Errorf("obs: chrome trace has unknown phase %q", e.Args.Phase)
		}
		out = append(out, Event{Cycle: int64(e.Ts), Packet: e.Args.Packet, Node: int32(e.Tid), Phase: p})
	}
	return out, nil
}
