package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument obtained through a nil registry/observer must be
	// usable without panicking and report zero values.
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("z", 0, 10, 4)
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("nil histogram recorded something")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}

	var tr *Tracer
	tr.Record(1, 2, 3, PhaseInject)
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}

	var o *Observer
	if o.ShouldSample(100) {
		t.Error("nil observer wants to sample")
	}
	if o.SampleEvery() != 0 {
		t.Error("nil observer has a period")
	}

	var tele *Telemetry
	tele.AddRouter(RouterSample{})
	tele.AddNode(NodeSample{})
	if got := tele.RouterCSV(); got != routerCSVHeader+"\n" {
		t.Errorf("nil telemetry CSV = %q", got)
	}

	var p *Progress
	p.Tick(1, 2)
	p.Done(3)
}

func TestRegistryMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.flits").Add(42)
	r.Gauge("batch.finished").Set(7.5)
	h := r.Histogram("latency", 0, 100, 10)
	for _, v := range []float64{5, 15, 95, 150, -3} { // incl. under/overflow
		h.Observe(v)
	}
	js, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMetricsJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r.Snapshot()) {
		t.Fatalf("metrics round trip mismatch:\n got %+v\nwant %+v", back, r.Snapshot())
	}
	// Snapshot is sorted by name for stable diffs.
	for i := 1; i < len(back); i++ {
		if back[i-1].Name > back[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", back[i-1].Name, back[i].Name)
		}
	}
	if h.Count() != 5 || h.Mean() != (5+15+95+150-3)/5.0 {
		t.Errorf("histogram count/mean = %d/%g", h.Count(), h.Mean())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset did not clear the histogram")
	}
}

func TestTelemetryCSVRoundTrip(t *testing.T) {
	tele := &Telemetry{}
	tele.AddRouter(RouterSample{Cycle: 100, Router: 3, XbarUtil: 1.25, LinkUtil: 0.5,
		BufOcc: 7, AvgVCOcc: 0.875, MaxVCOcc: 4, Injected: 12, Ejected: 9})
	tele.AddRouter(RouterSample{Cycle: 200, Router: 0, XbarUtil: 0, LinkUtil: 0.0625})
	tele.AddNode(NodeSample{Cycle: 100, Node: 3, Outstanding: 4})
	tele.AddNode(NodeSample{Cycle: 200, Node: 0})

	routers, err := ParseRouterCSV(tele.RouterCSV())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(routers, tele.Routers) {
		t.Fatalf("router CSV round trip mismatch:\n got %+v\nwant %+v", routers, tele.Routers)
	}
	nodes, err := ParseNodeCSV(tele.NodeCSV())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodes, tele.Nodes) {
		t.Fatalf("node CSV round trip mismatch:\n got %+v\nwant %+v", nodes, tele.Nodes)
	}

	js, err := tele.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTelemetryJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Routers, tele.Routers) || !reflect.DeepEqual(back.Nodes, tele.Nodes) {
		t.Fatal("telemetry JSON round trip mismatch")
	}

	if _, err := ParseRouterCSV("bogus\n1,2"); err == nil {
		t.Error("bad router CSV header accepted")
	}
	if _, err := ParseNodeCSV(nodeCSVHeader + "\n1,2"); err == nil {
		t.Error("short node CSV row accepted")
	}
}

func TestTelemetryMeanXbarUtil(t *testing.T) {
	tele := &Telemetry{}
	tele.AddRouter(RouterSample{Cycle: 100, Router: 1, XbarUtil: 1.0})
	tele.AddRouter(RouterSample{Cycle: 200, Router: 1, XbarUtil: 3.0})
	tele.AddRouter(RouterSample{Cycle: 100, Router: 0, XbarUtil: 0.5})
	got := tele.MeanXbarUtil(3)
	want := []float64{0.5, 2.0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MeanXbarUtil = %v, want %v", got, want)
	}
}

func TestTracerRingAndChromeRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(int64(i), uint64(i), i%3, PhaseInject)
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("ring len=%d dropped=%d, want 4/2", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Fatalf("ring did not keep the newest window: %+v", evs)
	}

	// A full lifecycle round-trips through the Chrome trace format.
	tr = NewTracer(0)
	want := []Event{
		{Cycle: 0, Packet: 9, Node: 1, Phase: PhaseInject},
		{Cycle: 0, Packet: 9, Node: 1, Phase: PhaseRoute},
		{Cycle: 1, Packet: 9, Node: 1, Phase: PhaseVCAlloc},
		{Cycle: 2, Packet: 9, Node: 1, Phase: PhaseSwitch},
		{Cycle: 4, Packet: 9, Node: 2, Phase: PhaseEject},
	}
	for _, e := range want {
		tr.Record(e.Cycle, e.Packet, int(e.Node), e.Phase)
	}
	js, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The file must be a valid JSON object with a traceEvents array
	// (what chrome://tracing expects).
	var shape struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &shape); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(shape.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	back, err := ParseChromeJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("chrome round trip mismatch:\n got %+v\nwant %+v", back, want)
	}

	// Empty traces still produce a loadable file.
	js, err = NewTracer(1).ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "traceEvents") {
		t.Fatal("empty trace missing traceEvents")
	}
}

func TestObserverSampling(t *testing.T) {
	if NewObserver(Options{}) != nil {
		t.Fatal("all-off observer should be nil")
	}
	o := NewObserver(Options{Metrics: true, SampleEvery: 10})
	if o.Tracer != nil {
		t.Error("tracer enabled without Trace option")
	}
	if o.ShouldSample(5) {
		t.Error("sampled before the first period")
	}
	if !o.ShouldSample(10) {
		t.Error("did not sample at the period")
	}
	// Idempotent within a cycle: a second caller sees the same answer.
	if !o.ShouldSample(10) {
		t.Error("second caller in the same cycle missed the sample")
	}
	if o.ShouldSample(11) {
		t.Error("sampled off-schedule")
	}
	// Resynchronizes past skipped cycles like sim.Ticker.
	if !o.ShouldSample(45) {
		t.Error("skip lost the sample")
	}
	if o.ShouldSample(49) {
		t.Error("sampled before the resynchronized period")
	}
	if !o.ShouldSample(50) {
		t.Error("did not resynchronize")
	}

	trOnly := NewObserver(Options{Trace: true})
	if trOnly == nil || trOnly.Tracer == nil {
		t.Fatal("trace-only observer missing tracer")
	}
	if trOnly.ShouldSample(100) {
		t.Error("trace-only observer wants telemetry samples")
	}
}

func TestProgressHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond)
	p.checkEvery = 1 // examine the wall clock on every tick for the test
	p.Tick(0, 0)
	time.Sleep(time.Millisecond)
	p.Tick(50_000, 100_000)
	if !strings.Contains(buf.String(), "cycles/s") || !strings.Contains(buf.String(), "ETA") {
		t.Fatalf("heartbeat missing rate/ETA: %q", buf.String())
	}
	p.Done(100_000)
	if !strings.Contains(buf.String(), "finished at cycle 100000") {
		t.Fatalf("missing final summary: %q", buf.String())
	}

	// A run that never printed a heartbeat stays quiet on Done.
	var quiet bytes.Buffer
	q := NewProgress(&quiet, time.Hour)
	q.Tick(1, 10)
	q.Done(10)
	if quiet.Len() != 0 {
		t.Fatalf("quiet run printed: %q", quiet.String())
	}
}
