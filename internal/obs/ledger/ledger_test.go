package ledger

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRoundTrip appends records and reads them back unchanged.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: "openloop", Spec: "abc123", Engine: "activeset", Cached: true, Hit: true,
			WallNS: 1500, Cycles: 120000, CyclesPerSec: 8e10},
		{Kind: "batch", Engine: "activeset", WallNS: 2_000_000, Cycles: 54321,
			Stepped: 40000, Skipped: 14321, SkipRatio: 0.2636,
			Workers: 8, ParWaves: 2, ParTasks: 17,
			FaultInjected: 3, FaultRetried: 2, FaultDead: 1},
		{Kind: "exec", WallNS: 10, Err: "hit the cycle limit"},
		{Kind: "openloop", Engine: "activeset", WallNS: 900, Cycles: 40000,
			ClassNames:      []string{"latency", "bulk"},
			ClassInjected:   []int64{1200, 4800},
			ClassDelivered:  []int64{1300, 5100},
			ClassAvgLatency: []float64{21.5, 48.25}},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Appends(); got != int64(len(want)) {
		t.Fatalf("Appends() = %d, want %d", got, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, dropped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d lines from a clean ledger", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Schema = Schema // Append stamps the schema
		if !reflect.DeepEqual(got[i], w) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], w)
		}
	}
}

// TestNilLedger checks that every method on a nil ledger is a no-op.
func TestNilLedger(t *testing.T) {
	var l *Ledger
	if err := l.Append(Record{Kind: "openloop"}); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if l.Path() != "" || l.Appends() != 0 {
		t.Fatal("nil accessors should return zero values")
	}
}

// TestUnknownFieldsPreserved checks forward compatibility: a record
// written by a newer schema with extra fields round-trips through this
// build with those fields intact.
func TestUnknownFieldsPreserved(t *testing.T) {
	line := `{"schema":9,"kind":"openloop","wall_ns":42,"class_names":["hi","lo"],"future_field":{"x":1},"another":"later"}`
	var r Record
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != 9 || r.Kind != "openloop" || r.WallNS != 42 {
		t.Fatalf("known fields mangled: %+v", r)
	}
	if len(r.ClassNames) != 2 || r.ClassNames[0] != "hi" {
		t.Fatalf("class_names not decoded: %+v", r.ClassNames)
	}
	if len(r.Unknown) != 2 {
		t.Fatalf("Unknown = %v, want future_field and another", r.Unknown)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["future_field"]) != `{"x":1}` {
		t.Errorf("future_field not preserved: %s", out)
	}
	if string(m["another"]) != `"later"` {
		t.Errorf("another not preserved: %s", out)
	}
	// A known field never gets clobbered by a stale Unknown entry.
	r.Unknown["kind"] = json.RawMessage(`"hijacked"`)
	out, err = json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"kind":"openloop"`) {
		t.Errorf("known field lost to Unknown collision: %s", out)
	}
}

// TestTornTailRecovery simulates a crash mid-append: the file ends in a
// partial record, and the next Open must truncate it away so appends land
// on a record boundary.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: "openloop", WallNS: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Crash: half a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"kind":"bat`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: "barrier", WallNS: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recs, dropped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d lines after recovery, want 0", dropped)
	}
	if len(recs) != 2 || recs[0].Kind != "openloop" || recs[1].Kind != "barrier" {
		t.Fatalf("recovered ledger = %+v, want [openloop barrier]", recs)
	}
}

// TestReadDropsCorruptLines checks that a ledger with a mangled interior
// line still yields every decodable record.
func TestReadDropsCorruptLines(t *testing.T) {
	in := `{"schema":1,"kind":"openloop"}
not json at all
{"schema":1,"kind":"batch"}

{"schema":1,"kind":"barrier"}
`
	recs, dropped, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
}

// TestOpenEmptyPath rejects the empty path instead of creating "".
func TestOpenEmptyPath(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
}
