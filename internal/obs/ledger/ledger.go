// Package ledger is the framework's structured run ledger: an append-only
// JSONL file with one record per experiment execution, written by the
// internal/core runners. Where the metrics registry answers "what is the
// evaluation pipeline doing right now", the ledger answers "what ran, how
// fast, and why" across whole sweeps and sessions — which specs were
// served from the experiment cache, how many simulated cycles each run
// cost, how much of the clock the engine fast-forwarded, and what the
// fault layer injected. The `figures -report` summarizer renders a ledger
// into a per-sweep dashboard.
//
// The format is one JSON object per line. Records carry a schema version
// and preserve unknown fields across a decode/encode round trip, so
// ledgers written by newer builds survive being filtered or rewritten by
// older tooling. Appends are crash-safe the way the experiment cache is:
// a torn final line (the process died mid-append) is truncated away on
// the next Open, and readers drop unparsable lines instead of failing.
//
// A nil *Ledger is a no-op on every method, so the runners guard their
// recording sites with a single nil check and pay nothing when the ledger
// is disabled.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"
	"sync"
)

// Schema is the current ledger record schema version, stored in every
// record. Bump it when a field changes meaning (adding fields does not
// require a bump: readers preserve what they do not understand).
//
// Schema 2 added the per-QoS-class arrays (class_names, class_injected,
// class_delivered, class_avg_latency); class-free records omit them all,
// so schema-1 readers see those lines unchanged.
const Schema = 2

// Record is one experiment execution. Zero-valued optional fields are
// omitted from the JSON so a ledger line stays one short, greppable
// object.
type Record struct {
	// Schema is the record schema version (the package Schema constant at
	// write time).
	Schema int `json:"schema"`
	// Time is the wall-clock append time, RFC3339Nano.
	Time string `json:"time,omitempty"`
	// Kind is the run mode: "openloop", "batch", "barrier" or "exec".
	Kind string `json:"kind"`
	// Spec is the content hash of the full experiment configuration — the
	// same SHA-256 the experiment cache addresses results by, so a ledger
	// line joins against cache entries and across sessions.
	Spec string `json:"spec,omitempty"`
	// Engine names the cycle-loop path: "activeset" (default) or
	// "fullscan".
	Engine string `json:"engine,omitempty"`
	// Cached reports whether the experiment cache was consulted; Hit
	// whether the result came from it (Hit implies Cached).
	Cached bool `json:"cached,omitempty"`
	Hit    bool `json:"hit,omitempty"`
	// WallNS is the wall time of the execution in nanoseconds (for a hit,
	// the lookup+decode time).
	WallNS int64 `json:"wall_ns"`
	// Cycles is the simulated length of the run in cycles (0 for cache
	// hits of result types that do not record it).
	Cycles int64 `json:"cycles,omitempty"`
	// Stepped and Skipped split the engine's clock advance into cycles
	// actually stepped and cycles fast-forwarded over; both are zero for
	// cache hits (no engine ran).
	Stepped int64 `json:"stepped,omitempty"`
	Skipped int64 `json:"skipped,omitempty"`
	// CyclesPerSec is Cycles/WallNS rescaled to seconds — the throughput
	// of the evaluation pipeline itself, not of the simulated network.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// SkipRatio is Skipped/(Stepped+Skipped): how much of the clock the
	// fast-forward saved.
	SkipRatio float64 `json:"skip_ratio,omitempty"`
	// Workers is the worker-pool width available to the surrounding sweep
	// (GOMAXPROCS at record time).
	Workers int `json:"workers,omitempty"`
	// ParWaves and ParTasks snapshot the process-wide worker-pool
	// counters (cumulative waves dispatched and tasks completed) at
	// append time, placing the record inside its sweep's parallel
	// schedule.
	ParWaves int64 `json:"par_waves,omitempty"`
	ParTasks int64 `json:"par_tasks,omitempty"`
	// Fault/recovery counters of a faulted run.
	FaultInjected int64 `json:"fault_injected,omitempty"`
	FaultRetried  int64 `json:"fault_retried,omitempty"`
	FaultDead     int64 `json:"fault_dead,omitempty"`
	// Sharded-simulation shape of the run: the tile count and the mean
	// sampled load imbalance across tiles (1 = perfectly balanced).
	// Omitted for sequential runs.
	Shards         int     `json:"shards,omitempty"`
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
	// Screening outcome of an analytically screened sweep (kind "sweep"):
	// how many offered-load points the sweep was asked for, how many were
	// actually simulated, how many speculative deep-saturation runs the
	// analytic model screened out, and how many deferred points had to be
	// refined (simulated after all). Omitted for unscreened runs.
	ScreenConsidered int `json:"screen_considered,omitempty"`
	ScreenSimulated  int `json:"screen_simulated,omitempty"`
	ScreenSkipped    int `json:"screen_skipped,omitempty"`
	ScreenRefined    int `json:"screen_refined,omitempty"`
	// Per-QoS-class outcome of a multi-class run, parallel arrays indexed
	// by class (0 = highest priority): class names, measured packets
	// injected, packets delivered in the measurement window, and average
	// measured latency in cycles. All omitted for class-free runs so their
	// ledger lines stay byte-identical to schema 1.
	ClassNames      []string  `json:"class_names,omitempty"`
	ClassInjected   []int64   `json:"class_injected,omitempty"`
	ClassDelivered  []int64   `json:"class_delivered,omitempty"`
	ClassAvgLatency []float64 `json:"class_avg_latency,omitempty"`
	// Err records a failed execution's error text.
	Err string `json:"err,omitempty"`

	// Unknown preserves fields this build does not know about, keyed by
	// their JSON name, so records written by newer schemas round-trip
	// through older tooling unchanged.
	Unknown map[string]json.RawMessage `json:"-"`
}

// recordAlias strips Record's methods so the custom (un)marshalers can
// reuse the plain struct encoding.
type recordAlias Record

// knownKeys is the set of JSON field names the Record struct declares,
// built once by reflection so the unknown-field split cannot drift from
// the struct definition.
var knownKeys = func() map[string]bool {
	keys := make(map[string]bool)
	t := reflect.TypeOf(Record{})
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name != "" && name != "-" {
			keys[name] = true
		}
	}
	return keys
}()

// MarshalJSON encodes the record, merging preserved unknown fields back
// in. Known fields win on a name collision.
func (r Record) MarshalJSON() ([]byte, error) {
	base, err := json.Marshal(recordAlias(r))
	if err != nil {
		return nil, err
	}
	if len(r.Unknown) == 0 {
		return base, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(base, &m); err != nil {
		return nil, err
	}
	for k, v := range r.Unknown {
		if _, taken := m[k]; !taken {
			m[k] = v
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the record, stashing fields this build does not
// declare into Unknown.
func (r *Record) UnmarshalJSON(data []byte) error {
	var a recordAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*r = Record(a)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for k, v := range m {
		if !knownKeys[k] {
			if r.Unknown == nil {
				r.Unknown = make(map[string]json.RawMessage)
			}
			r.Unknown[k] = v
		}
	}
	return nil
}

// Ledger is an append-only JSONL run log. All methods are safe for
// concurrent use (sweep workers append from their own goroutines), and
// every method on a nil *Ledger is a no-op.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	appends int64
}

// Open opens (creating if needed) the ledger at path for appending. A
// torn final line left by a crash mid-append is truncated away first, so
// the file always ends on a record boundary — mirroring the experiment
// cache's corruption-drop behaviour of recovering by discarding, never by
// failing.
func Open(path string) (*Ledger, error) {
	if path == "" {
		return nil, fmt.Errorf("ledger: empty path")
	}
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return &Ledger{f: f, path: path}, nil
}

// truncateTornTail cuts the file back to its last newline: bytes after it
// are a partial record from an interrupted append.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ledger: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("ledger: recovering torn tail: %w", err)
	}
	return nil
}

// Path returns the ledger's file path, "" for a nil ledger.
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Appends returns the number of records appended through this handle, 0
// for a nil ledger.
func (l *Ledger) Appends() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Append writes one record as a single line. Errors are returned but the
// ledger stays usable: a failed append never corrupts earlier records
// (the line is written in one Write call, and a torn line is recovered on
// the next Open). A nil ledger is a no-op.
func (l *Ledger) Append(r Record) error {
	if l == nil {
		return nil
	}
	r.Schema = Schema
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("ledger: encoding record: %w", err)
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	l.appends++
	return nil
}

// Close closes the underlying file. A nil ledger is a no-op.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Read decodes every record from r, dropping undecodable lines (the
// count of dropped lines is returned alongside) the way the experiment
// cache drops corrupt entries: recovery is by discarding, never by
// failing the whole read.
func Read(r io.Reader) (recs []Record, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, dropped, fmt.Errorf("ledger: %w", err)
	}
	return recs, dropped, nil
}

// ReadFile reads a ledger file from disk. See Read.
func ReadFile(path string) (recs []Record, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	return Read(f)
}
