package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var rateRe = regexp.MustCompile(`([0-9.e+]+) cycles/s`)

// TestProgressFastForwardHeartbeat is the regression test for the
// heartbeat's rate accounting across clock fast-forwards: skipped cycles
// must not inflate the cycles/sec figure, and the line must report the
// fast-forwarded share explicitly.
func TestProgressFastForwardHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond)

	// A plain stepped stretch: the line format stays the legacy one, no
	// fast-forward suffix.
	time.Sleep(2 * time.Millisecond)
	p.Tick(20_000, 0)
	first := buf.String()
	if first == "" {
		t.Fatal("no heartbeat printed")
	}
	if strings.Contains(first, "fast-forwarded") {
		t.Errorf("no-skip heartbeat mentions fast-forward: %q", first)
	}

	// The engine jumps 1M idle cycles, then steps 10k more. The heartbeat
	// rate must count only the 10k stepped cycles.
	buf.Reset()
	p.Skip(1_000_000)
	time.Sleep(2 * time.Millisecond)
	p.Tick(1_030_000, 0)
	line := buf.String()
	if !strings.Contains(line, "+1000000 fast-forwarded") {
		t.Errorf("heartbeat after skip missing fast-forward count: %q", line)
	}
	if !strings.Contains(line, "99% skipped") {
		t.Errorf("heartbeat after skip missing skip share (1000000/1010000): %q", line)
	}
	m := rateRe.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("heartbeat has no cycles/s figure: %q", line)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("unparsable rate %q in %q", m[1], line)
	}
	// 10k stepped cycles over the >= 2ms we slept bounds the true rate at
	// 5e6/s; the pre-fix behaviour (counting the 1.01M clock advance)
	// would report ~100x that.
	if rate > 5e6+1 {
		t.Errorf("rate %.3g cycles/s counts fast-forwarded cycles (stepped only 10k over >=2ms)", rate)
	}
	if p.SkippedTotal() != 1_000_000 {
		t.Errorf("SkippedTotal = %d, want 1000000", p.SkippedTotal())
	}

	// The final summary also separates the split.
	buf.Reset()
	p.Done(1_030_000)
	done := buf.String()
	if !strings.Contains(done, "1000000 fast-forwarded") {
		t.Errorf("Done() summary missing fast-forward count: %q", done)
	}
}

// TestProgressSkipNil checks the nil no-op contract of the new methods.
func TestProgressSkipNil(t *testing.T) {
	var p *Progress
	p.Skip(100)
	if p.SkippedTotal() != 0 {
		t.Fatal("nil SkippedTotal should be 0")
	}
}
