package obs

// Options selects which observability features a run enables.
type Options struct {
	// Metrics enables the registry and cycle-sampled telemetry.
	Metrics bool
	// Trace enables the flit-lifecycle tracer.
	Trace bool
	// SampleEvery is the telemetry sampling period in cycles (default 100
	// when Metrics is set).
	SampleEvery int64
	// TraceCap bounds the trace ring buffer (default DefaultTraceCap).
	TraceCap int
}

// Observer bundles the observability state of one run: the metrics
// registry, the sampled telemetry series, and the flit tracer. Components
// hold an *Observer that is nil when observability is off; every method
// and every instrument obtained through a nil observer is a no-op, so the
// disabled hot path pays one nil check and allocates nothing.
type Observer struct {
	Registry  *Registry
	Telemetry *Telemetry
	Tracer    *Tracer

	sampleEvery int64
	nextSample  int64
	lastFired   int64
}

// NewObserver builds an observer for the selected options. It returns nil
// when every feature is off, which is the disabled fast path.
func NewObserver(opts Options) *Observer {
	if !opts.Metrics && !opts.Trace {
		return nil
	}
	o := &Observer{lastFired: -1}
	if opts.Metrics {
		o.Registry = NewRegistry()
		o.Telemetry = &Telemetry{}
		o.sampleEvery = opts.SampleEvery
		if o.sampleEvery <= 0 {
			o.sampleEvery = 100
		}
		o.nextSample = o.sampleEvery
	}
	if opts.Trace {
		o.Tracer = NewTracer(opts.TraceCap)
	}
	return o
}

// SampleEvery returns the telemetry sampling period, 0 when sampling is
// off.
func (o *Observer) SampleEvery() int64 {
	if o == nil {
		return 0
	}
	return o.sampleEvery
}

// NextSampleAt returns the next cycle at which ShouldSample will fire, or
// -1 when sampling is off. The engine's quiescence fast-forward uses it to
// avoid skipping over a sampling point: telemetry must record the same
// cycles whether or not idle cycles were simulated explicitly.
func (o *Observer) NextSampleAt() int64 {
	if o == nil || o.sampleEvery <= 0 {
		return -1
	}
	return o.nextSample
}

// ShouldSample reports whether cycle now is a sampling point. It is
// idempotent within a cycle — the network and a protocol layer can both
// ask about the same cycle and both see true — and resynchronizes past
// skipped cycles the way sim.Ticker does.
func (o *Observer) ShouldSample(now int64) bool {
	if o == nil || o.sampleEvery <= 0 {
		return false
	}
	if now == o.lastFired {
		return true
	}
	if now < o.nextSample {
		return false
	}
	for o.nextSample <= now {
		o.nextSample += o.sampleEvery
	}
	o.lastFired = now
	return true
}
