// Package obs is the in-flight observability layer of the evaluation
// framework: a lightweight metrics registry (counters, gauges, windowed
// histograms), cycle-sampled per-router telemetry, a flit-lifecycle tracer
// with Chrome trace-event export, and run-progress heartbeats.
//
// Everything in the package is nil-safe: a nil *Observer, *Registry,
// *Counter, *Gauge, *Histogram, *Tracer or *Progress turns every method
// into a no-op, so instrumented code pays only a nil check when
// observability is disabled and the per-cycle hot path stays allocation
// free (guarded by the benchmark in the repository root).
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name string
	v    int64
}

// Inc adds one to the counter. A nil counter is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d to the counter. A nil counter is a no-op.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count, 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float64 metric.
type Gauge struct {
	name string
	v    float64
	set  bool
}

// Set records the gauge's current value. A nil gauge is a no-op.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Value returns the last value set, 0 for a nil or never-set gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bin histogram over [lo, hi) with underflow and
// overflow captured in the edge bins. Reset supports windowed use: callers
// snapshot and clear it once per sample window.
type Histogram struct {
	name     string
	lo, hi   float64
	bins     []int64
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value. A nil histogram is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := int(float64(len(h.bins)) * (v - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// Count returns the number of observations, 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the mean of the observations, 0 when empty or nil.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Reset clears the histogram for the next window. A nil histogram is a
// no-op.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	for i := range h.bins {
		h.bins[i] = 0
	}
}

// Registry holds the metrics of one run. Components create their
// instruments through the registry; a nil registry hands back nil
// instruments, which keeps every recording site a nil check away from
// free.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a named counter. On a nil registry it
// returns nil, which all Counter methods tolerate.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a named gauge, or nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers a histogram with the given bin count over [lo, hi),
// or nil on a nil registry. Degenerate ranges and bin counts are widened
// to something usable rather than rejected.
func (r *Registry) Histogram(name string, lo, hi float64, bins int) *Histogram {
	if r == nil {
		return nil
	}
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{name: name, lo: lo, hi: hi, bins: make([]int64, bins)}
	r.hists = append(r.hists, h)
	return h
}

// MetricPoint is one exported metric value.
type MetricPoint struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge" or "histogram"
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count int64   `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Snapshot returns every metric's current value, sorted by name (stable
// across runs, so exports diff cleanly). Histograms export their mean as
// Value plus count/min/max.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	var out []MetricPoint
	for _, c := range r.counters {
		out = append(out, MetricPoint{Name: c.name, Kind: "counter", Value: float64(c.v)})
	}
	for _, g := range r.gauges {
		out = append(out, MetricPoint{Name: g.name, Kind: "gauge", Value: g.v})
	}
	for _, h := range r.hists {
		out = append(out, MetricPoint{Name: h.name, Kind: "histogram",
			Value: h.Mean(), Count: h.count, Min: h.min, Max: h.max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JSON renders the snapshot as an indented JSON array.
func (r *Registry) JSON() ([]byte, error) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricPoint{}
	}
	return json.MarshalIndent(snap, "", "  ")
}

// ParseMetricsJSON parses the output of Registry.JSON back into metric
// points, for export round-trip tests and downstream tooling.
func ParseMetricsJSON(data []byte) ([]MetricPoint, error) {
	var out []MetricPoint
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("obs: parsing metrics JSON: %w", err)
	}
	return out, nil
}

// CSV renders the snapshot as "name,kind,value,count,min,max" rows.
func (r *Registry) CSV() string {
	var b strings.Builder
	b.WriteString("name,kind,value,count,min,max\n")
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "%s,%s,%g,%d,%g,%g\n", m.Name, m.Kind, m.Value, m.Count, m.Min, m.Max)
	}
	return b.String()
}
