// Package obs is the in-flight observability layer of the evaluation
// framework: a lightweight metrics registry (counters, gauges, windowed
// histograms), cycle-sampled per-router telemetry, a flit-lifecycle tracer
// with Chrome trace-event export, and run-progress heartbeats.
//
// Everything in the package is nil-safe: a nil *Observer, *Registry,
// *Counter, *Gauge, *Histogram, *Tracer or *Progress turns every method
// into a no-op, so instrumented code pays only a nil check when
// observability is disabled and the per-cycle hot path stays allocation
// free (guarded by the benchmark in the repository root).
//
// Registries come in two flavours sharing one type: the per-run registry
// an Observer carries (one simulation's metrics), and the process-wide
// default registry (SetDefault/Default) that cross-run subsystems — the
// experiment cache, the worker pool, the cycle engine, the fault injector
// — publish into, and that the live export endpoint (internal/obs/export)
// serves. Because the default registry is read by an HTTP handler while
// simulations write it from worker goroutines, every instrument is safe
// for concurrent use: counters and gauges are atomics, histograms take a
// small mutex per observation.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric, safe for concurrent
// use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one to the counter. A nil counter is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d to the counter. A nil counter is a no-op.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count, 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric, safe for concurrent use.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the gauge's current value. A nil gauge is a no-op.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by d (negative to decrease), for up/down values
// like in-flight request counts. A nil gauge is a no-op. Concurrent Adds
// are lossless (a CAS loop), but an Add racing a Set may be absorbed by
// the Set's last-value-wins semantics; instruments should pick one style.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last value set, 0 for a nil or never-set gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bin histogram over [lo, hi) with underflow and
// overflow captured in the edge bins. Reset supports windowed use: callers
// snapshot and clear it once per sample window. Observations take a mutex,
// so a histogram shared with the live exporter never tears.
type Histogram struct {
	name   string
	lo, hi float64

	mu       sync.Mutex
	bins     []int64
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value. A nil histogram is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := int(float64(len(h.bins)) * (v - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.mu.Unlock()
}

// Count returns the number of observations, 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of the observations, 0 when empty or nil.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Reset clears the histogram for the next window. A nil histogram is a
// no-op.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.mu.Unlock()
}

// Registry holds a set of named metrics. Components create their
// instruments through the registry; a nil registry hands back nil
// instruments, which keeps every recording site a nil check away from
// free. Instrument creation is get-or-create: asking for a name that
// already exists returns the existing instrument, so long-lived registries
// (the process-wide default) stay bounded however many runs publish into
// them.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	byName   map[string]any
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{} }

// lookup returns the instrument already registered under name, if any.
// Callers hold r.mu.
func (r *Registry) lookup(name string) any {
	if r.byName == nil {
		r.byName = make(map[string]any)
		return nil
	}
	return r.byName[name]
}

// Counter registers and returns a named counter, or the existing one when
// the name is taken. On a nil registry it returns nil, which all Counter
// methods tolerate.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.lookup(name).(*Counter); ok {
		return c
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	r.byName[name] = c
	return c
}

// Gauge registers and returns a named gauge (or the existing one), or nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.lookup(name).(*Gauge); ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	r.byName[name] = g
	return g
}

// Histogram registers a histogram with the given bin count over [lo, hi)
// (or returns the existing histogram of that name), or nil on a nil
// registry. Degenerate ranges and bin counts are widened to something
// usable rather than rejected.
func (r *Registry) Histogram(name string, lo, hi float64, bins int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.lookup(name).(*Histogram); ok {
		return h
	}
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{name: name, lo: lo, hi: hi, bins: make([]int64, bins)}
	r.hists = append(r.hists, h)
	r.byName[name] = h
	return h
}

// MetricPoint is one exported metric value.
type MetricPoint struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge" or "histogram"
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count int64   `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Snapshot returns every metric's current value, sorted by name (stable
// across runs, so exports diff cleanly). Histograms export their mean as
// Value plus count/min/max. Safe to call while instruments are being
// written.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	var out []MetricPoint
	for _, c := range counters {
		out = append(out, MetricPoint{Name: c.name, Kind: "counter", Value: float64(c.Value())})
	}
	for _, g := range gauges {
		out = append(out, MetricPoint{Name: g.name, Kind: "gauge", Value: g.Value()})
	}
	for _, h := range hists {
		h.mu.Lock()
		p := MetricPoint{Name: h.name, Kind: "histogram", Count: h.count, Min: h.min, Max: h.max}
		if h.count > 0 {
			p.Value = h.sum / float64(h.count)
		}
		h.mu.Unlock()
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JSON renders the snapshot as an indented JSON array.
func (r *Registry) JSON() ([]byte, error) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricPoint{}
	}
	return json.MarshalIndent(snap, "", "  ")
}

// ParseMetricsJSON parses the output of Registry.JSON back into metric
// points, for export round-trip tests and downstream tooling.
func ParseMetricsJSON(data []byte) ([]MetricPoint, error) {
	var out []MetricPoint
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("obs: parsing metrics JSON: %w", err)
	}
	return out, nil
}

// CSV renders the snapshot as "name,kind,value,count,min,max" rows.
func (r *Registry) CSV() string {
	var b strings.Builder
	b.WriteString("name,kind,value,count,min,max\n")
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "%s,%s,%g,%d,%g,%g\n", m.Name, m.Kind, m.Value, m.Count, m.Min, m.Max)
	}
	return b.String()
}

// defaultReg is the process-wide registry, nil (disabled) by default.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs the process-wide default registry that cross-run
// subsystems (experiment cache, worker pool, cycle engine, fault layer)
// publish their counters into. Passing nil disables them again; every
// publishing site then holds nil instruments and the hot paths pay only a
// nil check.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the process-wide registry, or nil when cross-run
// metrics are disabled (the default).
func Default() *Registry { return defaultReg.Load() }
