package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress prints a heartbeat line while a long run executes: cycles
// simulated, simulation speed in cycles/sec, and — when the total cycle
// count is known — percent done and an ETA. It rate-limits itself two
// ways: the wall clock is consulted only every checkEvery cycles (so Tick
// is cheap enough for per-cycle call sites), and a line is printed at most
// once per interval.
type Progress struct {
	w          io.Writer
	interval   time.Duration
	checkEvery int64

	start     time.Time
	lastPrint time.Time
	lastCheck int64
	lastCycle int64
	lines     int
}

// NewProgress returns a heartbeat writer that prints to w at most once per
// interval (default 2s when interval <= 0).
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	now := time.Now()
	return &Progress{w: w, interval: interval, checkEvery: 10_000, start: now, lastPrint: now}
}

// Tick reports that the simulation reached the given cycle; total is the
// expected run length in cycles, or <= 0 when unknown. A nil Progress is a
// no-op, and between wall-clock checks Tick costs two compares.
func (p *Progress) Tick(cycle, total int64) {
	if p == nil {
		return
	}
	if cycle-p.lastCheck < p.checkEvery {
		return
	}
	p.lastCheck = cycle
	now := time.Now()
	since := now.Sub(p.lastPrint)
	if since < p.interval {
		return
	}
	rate := float64(cycle-p.lastCycle) / since.Seconds()
	p.lastPrint, p.lastCycle = now, cycle
	p.lines++
	if total > cycle && rate > 0 {
		remaining := time.Duration(float64(total-cycle) / rate * float64(time.Second))
		fmt.Fprintf(p.w, "progress: cycle %d/%d (%.1f%%), %.3g cycles/s, ETA %s\n",
			cycle, total, 100*float64(cycle)/float64(total), rate, remaining.Round(time.Second))
		return
	}
	fmt.Fprintf(p.w, "progress: cycle %d, %.3g cycles/s, elapsed %s\n",
		cycle, rate, now.Sub(p.start).Round(time.Second))
}

// Note prints a one-off annotation line (e.g. "drain aborted at
// DrainLimit"), bypassing the rate limiter: unlike periodic heartbeats, a
// note marks a condition the user should see exactly once. A nil Progress
// is a no-op.
func (p *Progress) Note(cycle int64, format string, args ...any) {
	if p == nil {
		return
	}
	p.lines++
	fmt.Fprintf(p.w, "progress: cycle %d: %s\n", cycle, fmt.Sprintf(format, args...))
}

// Done prints a final summary line when at least one heartbeat was
// printed, so quiet short runs stay quiet. A nil Progress is a no-op.
func (p *Progress) Done(cycle int64) {
	if p == nil || p.lines == 0 {
		return
	}
	elapsed := time.Since(p.start)
	rate := float64(cycle) / elapsed.Seconds()
	fmt.Fprintf(p.w, "progress: finished at cycle %d in %s (%.3g cycles/s)\n",
		cycle, elapsed.Round(time.Millisecond), rate)
}
