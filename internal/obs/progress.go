package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress prints a heartbeat line while a long run executes: cycles
// simulated, simulation speed in cycles/sec, and — when the total cycle
// count is known — percent done and an ETA. It rate-limits itself two
// ways: the wall clock is consulted only every checkEvery cycles (so Tick
// is cheap enough for per-cycle call sites), and a line is printed at most
// once per interval.
//
// Runs that fast-forward over idle stretches (internal/engine) report the
// skipped cycles through Skip, and the heartbeat separates the two: the
// cycles/sec figure counts only cycles that were actually stepped, with
// the fast-forwarded cycles and their share of the clock advance printed
// alongside. Without the split a single long skip would inflate the rate
// by orders of magnitude and wreck the ETA.
type Progress struct {
	w          io.Writer
	interval   time.Duration
	checkEvery int64

	start     time.Time
	lastPrint time.Time
	lastCheck int64
	lastCycle int64
	lines     int

	// skipped counts fast-forwarded cycles since the last printed line;
	// skippedTotal counts them since the start of the run.
	skipped      int64
	skippedTotal int64
}

// NewProgress returns a heartbeat writer that prints to w at most once per
// interval (default 2s when interval <= 0).
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	now := time.Now()
	return &Progress{w: w, interval: interval, checkEvery: 10_000, start: now, lastPrint: now}
}

// Skip reports that the clock jumped d cycles without stepping them (the
// engine's quiescence fast-forward). Skipped cycles are excluded from the
// heartbeat's cycles/sec and reported separately. A nil Progress is a
// no-op.
func (p *Progress) Skip(d int64) {
	if p == nil || d <= 0 {
		return
	}
	p.skipped += d
	p.skippedTotal += d
}

// SkippedTotal returns the number of fast-forwarded cycles reported so
// far, 0 for a nil Progress.
func (p *Progress) SkippedTotal() int64 {
	if p == nil {
		return 0
	}
	return p.skippedTotal
}

// Tick reports that the simulation reached the given cycle; total is the
// expected run length in cycles, or <= 0 when unknown. A nil Progress is a
// no-op, and between wall-clock checks Tick costs two compares.
func (p *Progress) Tick(cycle, total int64) {
	if p == nil {
		return
	}
	if cycle-p.lastCheck < p.checkEvery {
		return
	}
	p.lastCheck = cycle
	now := time.Now()
	since := now.Sub(p.lastPrint)
	if since < p.interval {
		return
	}
	stepped := cycle - p.lastCycle - p.skipped
	if stepped < 0 {
		stepped = 0
	}
	rate := float64(stepped) / since.Seconds()
	// The ETA must use the clock's true advance rate (stepped + skipped):
	// the remaining cycles will fast-forward in the same proportion.
	clockRate := float64(cycle-p.lastCycle) / since.Seconds()
	skipped := p.skipped
	p.lastPrint, p.lastCycle, p.skipped = now, cycle, 0
	p.lines++
	ff := ""
	if skipped > 0 {
		ff = fmt.Sprintf(" (+%d fast-forwarded, %.0f%% skipped)",
			skipped, 100*float64(skipped)/float64(stepped+skipped))
	}
	if total > cycle && clockRate > 0 {
		remaining := time.Duration(float64(total-cycle) / clockRate * float64(time.Second))
		fmt.Fprintf(p.w, "progress: cycle %d/%d (%.1f%%), %.3g cycles/s%s, ETA %s\n",
			cycle, total, 100*float64(cycle)/float64(total), rate, ff, remaining.Round(time.Second))
		return
	}
	fmt.Fprintf(p.w, "progress: cycle %d, %.3g cycles/s%s, elapsed %s\n",
		cycle, rate, ff, now.Sub(p.start).Round(time.Second))
}

// Note prints a one-off annotation line (e.g. "drain aborted at
// DrainLimit"), bypassing the rate limiter: unlike periodic heartbeats, a
// note marks a condition the user should see exactly once. A nil Progress
// is a no-op.
func (p *Progress) Note(cycle int64, format string, args ...any) {
	if p == nil {
		return
	}
	p.lines++
	fmt.Fprintf(p.w, "progress: cycle %d: %s\n", cycle, fmt.Sprintf(format, args...))
}

// Done prints a final summary line when at least one heartbeat was
// printed, so quiet short runs stay quiet. A nil Progress is a no-op.
func (p *Progress) Done(cycle int64) {
	if p == nil || p.lines == 0 {
		return
	}
	elapsed := time.Since(p.start)
	stepped := cycle - p.skippedTotal
	if stepped < 0 {
		stepped = 0
	}
	rate := float64(stepped) / elapsed.Seconds()
	if p.skippedTotal > 0 {
		fmt.Fprintf(p.w, "progress: finished at cycle %d in %s (%.3g cycles/s, %d fast-forwarded)\n",
			cycle, elapsed.Round(time.Millisecond), rate, p.skippedTotal)
		return
	}
	fmt.Fprintf(p.w, "progress: finished at cycle %d in %s (%.3g cycles/s)\n",
		cycle, elapsed.Round(time.Millisecond), rate)
}
