package trace

import (
	"bytes"
	"strings"
	"testing"

	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

func meshCfg(tr int64) network.Config {
	return network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 8, Delay: tr},
		Seed:    9,
	}
}

// capture runs random traffic on a network with a recorder attached.
func capture(t *testing.T, cfg network.Config, packets int) *Trace {
	t.Helper()
	net := network.New(cfg)
	rec := NewRecorder(cfg.Topo.N)
	rec.Attach(net)
	rng := sim.NewRNG(3)
	sent := 0
	for sent < packets {
		for node := 0; node < cfg.Topo.N && sent < packets; node++ {
			if rng.Bernoulli(0.2) {
				net.Send(net.NewPacket(node, rng.Intn(cfg.Topo.N), 1+rng.Intn(4), router.KindData))
				sent++
			}
		}
		net.Step()
	}
	if _, ok := net.RunUntilQuiescent(100000); !ok {
		t.Fatal("capture network did not drain")
	}
	return rec.Trace()
}

func TestRecorderCapturesEverything(t *testing.T) {
	tr := capture(t, meshCfg(1), 500)
	if len(tr.Events) != 500 {
		t.Fatalf("captured %d events, want 500", len(tr.Events))
	}
	last := int64(-1)
	for _, e := range tr.Events {
		if e.Time < last {
			t.Fatal("trace timestamps not monotonic")
		}
		last = e.Time
		if e.Src < 0 || e.Src >= 16 || e.Dst < 0 || e.Dst >= 16 || e.Size < 1 {
			t.Fatalf("bad event %+v", e)
		}
	}
}

func TestRoundTripSerialization(t *testing.T) {
	tr := capture(t, meshCfg(1), 200)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != tr.Nodes || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %d/%d events", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := Read(strings.NewReader("nodes 16\n1 2 3\n")); err == nil {
		t.Error("truncated event accepted")
	}
}

func TestReplayDeliversAllPackets(t *testing.T) {
	tr := capture(t, meshCfg(1), 400)
	res, err := Replay(tr, meshCfg(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("replay did not complete")
	}
	if res.Packets != 400 {
		t.Errorf("replayed %d packets, want 400", res.Packets)
	}
	if res.AvgLatency <= 0 {
		t.Error("no latency measured")
	}
}

func TestReplayOnSlowerNetworkRaisesLatency(t *testing.T) {
	tr := capture(t, meshCfg(1), 400)
	fast, err := Replay(tr, meshCfg(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Replay(tr, meshCfg(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgLatency <= fast.AvgLatency {
		t.Errorf("tr=4 replay latency %.1f not above tr=1 %.1f", slow.AvgLatency, fast.AvgLatency)
	}
	// The known trace-driven limitation: injection times do not adapt, so
	// the run merely stretches rather than restructuring.
	if slow.Runtime <= fast.Runtime {
		t.Errorf("tr=4 replay runtime %d not above tr=1 %d", slow.Runtime, fast.Runtime)
	}
}

func TestReplayValidation(t *testing.T) {
	tr := &Trace{Nodes: 64}
	if _, err := Replay(tr, meshCfg(1), 0); err == nil {
		t.Error("node-count mismatch accepted")
	}
}
