// Package trace implements the trace-driven evaluation methodology of
// §II: a sequence of abstract packet descriptors — timestamp, source,
// destination, size — captured from a closed-loop run and replayed on a
// network-only simulation. As the paper notes, replay is fast but loses
// message causality: injection times are fixed, so network feedback cannot
// reshape the workload.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/stats"
)

// Event is one captured packet.
type Event struct {
	Time int64
	Src  int
	Dst  int
	Size int
	Kind router.Kind
}

// Trace is an ordered packet log.
type Trace struct {
	Nodes  int
	Events []Event
}

// Recorder captures packets injected into a network. Attach it before the
// run and read Trace afterwards.
type Recorder struct {
	trace Trace
}

// NewRecorder returns a recorder for a network with the given node count.
func NewRecorder(nodes int) *Recorder {
	return &Recorder{trace: Trace{Nodes: nodes}}
}

// Attach hooks the recorder into a network's send path, chaining any
// existing hook.
func (r *Recorder) Attach(n *network.Network) {
	prev := n.OnSend
	n.OnSend = func(now int64, p *router.Packet) {
		if prev != nil {
			prev(now, p)
		}
		r.Record(now, p)
	}
}

// Record logs one packet.
func (r *Recorder) Record(now int64, p *router.Packet) {
	r.trace.Events = append(r.trace.Events, Event{
		Time: now, Src: p.Src, Dst: p.Dst, Size: p.Size, Kind: p.Kind,
	})
}

// Trace returns the captured trace.
func (r *Recorder) Trace() *Trace { return &r.trace }

// Write serializes the trace as one text line per event:
// "time src dst size kind".
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", t.Nodes); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d\n", e.Time, e.Src, e.Dst, e.Size, int(e.Kind)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	if _, err := fmt.Fscanf(br, "nodes %d\n", &t.Nodes); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	for {
		var e Event
		var kind int
		_, err := fmt.Fscanf(br, "%d %d %d %d %d\n", &e.Time, &e.Src, &e.Dst, &e.Size, &kind)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: bad event after %d entries: %w", len(t.Events), err)
		}
		e.Kind = router.Kind(kind)
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// ReplayResult summarizes a trace replay.
type ReplayResult struct {
	// Runtime is the cycle the last packet arrived.
	Runtime int64
	// AvgLatency is the mean packet latency relative to the trace
	// timestamps.
	AvgLatency float64
	Packets    int
	Completed  bool
}

// Replay injects the trace into the given network at the recorded
// timestamps and runs until everything drains. If the network is slower
// than the one the trace was captured on, source queues absorb the excess
// (injection times never adapt — the methodology's known limitation).
func Replay(t *Trace, cfg network.Config, maxCycles int64) (*ReplayResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo.N < t.Nodes {
		return nil, fmt.Errorf("trace: network has %d nodes, trace needs %d", cfg.Topo.N, t.Nodes)
	}
	if maxCycles <= 0 {
		maxCycles = 50_000_000
	}
	net := network.New(cfg)
	var latencies []float64
	net.OnReceive = func(now int64, p *router.Packet) {
		latencies = append(latencies, float64(p.Latency()))
	}
	i := 0
	for {
		now := net.Now()
		if now >= maxCycles {
			return &ReplayResult{
				Runtime:    now,
				AvgLatency: stats.Mean(latencies),
				Packets:    len(latencies),
			}, nil
		}
		for i < len(t.Events) && t.Events[i].Time <= now {
			e := t.Events[i]
			p := net.NewPacket(e.Src, e.Dst, e.Size, e.Kind)
			p.CreateTime = e.Time
			net.Send(p)
			i++
		}
		net.Step()
		if i == len(t.Events) && net.Quiescent() {
			break
		}
	}
	return &ReplayResult{
		Runtime:    net.Now(),
		AvgLatency: stats.Mean(latencies),
		Packets:    len(latencies),
		Completed:  true,
	}, nil
}
