package engine

import (
	"context"
	"testing"
)

func TestRunCanceledBeforeFirstCycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := &fakeNet{sampleAt: -1}
	d := &fakeDriver{doneAt: 5}
	o := RunOutcome(Config{Net: net, Ctx: ctx}, d)
	if !o.Canceled || o.Completed {
		t.Fatalf("outcome = %+v, want Canceled, not Completed", o)
	}
	if len(net.stepped) != 0 {
		t.Fatalf("stepped %v after pre-cancelled context, want none", net.stepped)
	}
}

func TestRunCancelMidRunBoundedLatency(t *testing.T) {
	// Cancel from inside Cycle at cycle 10: the engine may finish the
	// current poll window but must return within cancelCheckEvery further
	// cycles, long before the 10x-larger deadline.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := &fakeNet{sampleAt: -1}
	d := &fakeDriver{doneAt: -1}
	base := d.Cycle
	wrapped := &hookDriver{fakeDriver: d, onCycle: func(now int64) {
		base(now)
		if now == 10 {
			cancel()
		}
	}}
	o := RunOutcome(Config{Net: net, Ctx: ctx, Deadline: 10 * cancelCheckEvery}, wrapped)
	if !o.Canceled || o.Completed {
		t.Fatalf("outcome = %+v, want Canceled, not Completed", o)
	}
	if o.End > 10+cancelCheckEvery+1 {
		t.Fatalf("run ended at %d, want within %d cycles of the cancel at 10", o.End, cancelCheckEvery)
	}
}

func TestRunCancelRepolledAtFastForwardBoundary(t *testing.T) {
	// The context is cancelled during a fast-forward jump. The jump can
	// cross an arbitrary stretch of simulated time, so the engine must
	// re-poll at the landing cycle instead of waiting out the remainder of
	// its cancelCheckEvery countdown: no cycle after the jump may step.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := &cancelOnSkipNet{cancel: cancel}
	net.quiescent = true
	net.sampleAt = -1
	d := &fakeDriver{
		doneAt: -1,
		idle:   func(now int64) bool { return now < 5000 },
		next:   func(int64) int64 { return 5000 },
	}
	o := RunOutcome(Config{Net: net, Ctx: ctx, Deadline: 100_000}, d)
	if !o.Canceled {
		t.Fatalf("outcome = %+v, want Canceled", o)
	}
	if o.End != 5000 || len(net.stepped) != 0 {
		t.Fatalf("end = %d, stepped = %v; want the run to stop at the skip target with no stepped cycles",
			o.End, net.stepped)
	}
}

// hookDriver wraps fakeDriver with a Cycle hook (to cancel mid-run).
type hookDriver struct {
	*fakeDriver
	onCycle func(now int64)
}

func (h *hookDriver) Cycle(now int64) { h.onCycle(now) }

// cancelOnSkipNet cancels its context from inside SkipTo, modelling a
// cancellation that lands while the engine is mid-jump.
type cancelOnSkipNet struct {
	fakeNet
	cancel context.CancelFunc
}

func (c *cancelOnSkipNet) SkipTo(cycle int64) {
	c.fakeNet.SkipTo(cycle)
	c.cancel()
}
