package engine

import (
	"reflect"
	"testing"
)

// fakeNet is a scriptable Network + FastForwarder that records every
// stepped cycle and every skip, so tests can assert exactly which cycles
// the engine simulated.
type fakeNet struct {
	now       int64
	quiescent bool
	sampleAt  int64 // next observer sample, -1 when sampling is off

	stepped []int64
	skips   [][2]int64 // {from, to}
}

func (f *fakeNet) Now() int64      { return f.now }
func (f *fakeNet) Quiescent() bool { return f.quiescent }
func (f *fakeNet) Step() {
	f.stepped = append(f.stepped, f.now)
	f.now++
	// Mirror the real observer: a sample point that has been reached
	// advances to the next period (fixed 10 here).
	if f.sampleAt >= 0 && f.now > f.sampleAt {
		f.sampleAt += 10
	}
}
func (f *fakeNet) SkipTo(cycle int64) {
	if !f.quiescent {
		panic("SkipTo on non-quiescent fakeNet")
	}
	f.skips = append(f.skips, [2]int64{f.now, cycle})
	f.now = cycle
}
func (f *fakeNet) NextObsSampleAt() int64 { return f.sampleAt }

// fakeDriver is a scriptable Driver.
type fakeDriver struct {
	doneAt int64 // Done when now >= doneAt (never when negative)
	idle   func(now int64) bool
	next   func(now int64) int64

	cycles []int64
}

func (d *fakeDriver) Cycle(now int64) { d.cycles = append(d.cycles, now) }
func (d *fakeDriver) Done(now int64) bool {
	return d.doneAt >= 0 && now >= d.doneAt
}
func (d *fakeDriver) Idle(now int64) bool {
	if d.idle == nil {
		return false
	}
	return d.idle(now)
}
func (d *fakeDriver) NextEvent(now int64) int64 {
	if d.next == nil {
		return NoEvent
	}
	return d.next(now)
}

func TestRunStopsWhenDone(t *testing.T) {
	net := &fakeNet{sampleAt: -1}
	d := &fakeDriver{doneAt: 5}
	end, completed := Run(Config{Net: net}, d)
	if !completed || end != 5 {
		t.Fatalf("Run = (%d, %v), want (5, true)", end, completed)
	}
	if want := []int64{0, 1, 2, 3, 4}; !reflect.DeepEqual(d.cycles, want) {
		t.Fatalf("cycles = %v, want %v", d.cycles, want)
	}
}

func TestRunDeadlineAborts(t *testing.T) {
	net := &fakeNet{sampleAt: -1}
	d := &fakeDriver{doneAt: -1}
	end, completed := Run(Config{Net: net, Deadline: 7}, d)
	if completed || end != 7 {
		t.Fatalf("Run = (%d, %v), want (7, false)", end, completed)
	}
	if len(d.cycles) != 7 {
		t.Fatalf("ran %d cycles, want 7", len(d.cycles))
	}
}

func TestRunDoneCheckedBeforeDeadline(t *testing.T) {
	// Done and deadline on the same cycle: the run counts as completed,
	// matching the pre-engine loops that tested completion first.
	net := &fakeNet{sampleAt: -1}
	d := &fakeDriver{doneAt: 7}
	end, completed := Run(Config{Net: net, Deadline: 7}, d)
	if !completed || end != 7 {
		t.Fatalf("Run = (%d, %v), want (7, true)", end, completed)
	}
}

func TestRunFastForwardsToNextEvent(t *testing.T) {
	// Driver busy for 3 cycles, then idle until an event at 100, done at
	// 103. The engine must step 0-2, skip 3->100, then step 100-102.
	net := &fakeNet{quiescent: true, sampleAt: -1}
	d := &fakeDriver{
		doneAt: 103,
		idle:   func(now int64) bool { return now >= 3 && now < 100 },
		next:   func(int64) int64 { return 100 },
	}
	end, completed := Run(Config{Net: net}, d)
	if !completed || end != 103 {
		t.Fatalf("Run = (%d, %v), want (103, true)", end, completed)
	}
	if want := []int64{0, 1, 2, 100, 101, 102}; !reflect.DeepEqual(net.stepped, want) {
		t.Fatalf("stepped cycles = %v, want %v", net.stepped, want)
	}
	if want := [][2]int64{{3, 100}}; !reflect.DeepEqual(net.skips, want) {
		t.Fatalf("skips = %v, want %v", net.skips, want)
	}
}

func TestRunNeverSkipsObserverSample(t *testing.T) {
	// Idle from cycle 1 with the next driver event at 35, but telemetry
	// samples every 10 cycles: the engine must land on (and step) every
	// sample point in between rather than jumping straight to 35.
	net := &fakeNet{quiescent: true, sampleAt: 10}
	d := &fakeDriver{
		doneAt: 36,
		idle:   func(now int64) bool { return now >= 1 && now < 35 },
		next:   func(int64) int64 { return 35 },
	}
	_, completed := Run(Config{Net: net}, d)
	if !completed {
		t.Fatal("run did not complete")
	}
	if want := []int64{0, 10, 20, 30, 35}; !reflect.DeepEqual(net.stepped, want) {
		t.Fatalf("stepped cycles = %v, want %v", net.stepped, want)
	}
}

func TestRunFullScanDisablesSkip(t *testing.T) {
	net := &fakeNet{quiescent: true, sampleAt: -1}
	d := &fakeDriver{
		doneAt: 50,
		idle:   func(int64) bool { return true },
		next:   func(int64) int64 { return 50 },
	}
	Run(Config{Net: net, FullScan: true}, d)
	if len(net.skips) != 0 {
		t.Fatalf("FullScan run skipped: %v", net.skips)
	}
	if len(net.stepped) != 50 {
		t.Fatalf("stepped %d cycles, want 50", len(net.stepped))
	}
}

func TestRunIdleWithNoEventRunsToDeadline(t *testing.T) {
	// Nothing scheduled and nothing in flight: the only future milestone
	// is the deadline, so the engine jumps straight there.
	net := &fakeNet{quiescent: true, sampleAt: -1}
	d := &fakeDriver{doneAt: -1, idle: func(int64) bool { return true }}
	end, completed := Run(Config{Net: net, Deadline: 1000}, d)
	if completed || end != 1000 {
		t.Fatalf("Run = (%d, %v), want (1000, false)", end, completed)
	}
	if len(net.stepped) != 0 {
		t.Fatalf("stepped cycles = %v, want none", net.stepped)
	}
}

func TestRunIdleNoEventNoDeadlineSteps(t *testing.T) {
	// Without a deadline there is no cycle to jump to; the engine must
	// keep stepping (the driver's Done is then the only way out).
	net := &fakeNet{quiescent: true, sampleAt: -1}
	d := &fakeDriver{doneAt: 3, idle: func(int64) bool { return true }}
	end, completed := Run(Config{Net: net}, d)
	if !completed || end != 3 {
		t.Fatalf("Run = (%d, %v), want (3, true)", end, completed)
	}
	if len(net.stepped) != 3 {
		t.Fatalf("stepped %d cycles, want 3", len(net.stepped))
	}
}

// plainNet lacks SkipTo/NextObsSampleAt: the engine must fall back to
// stepping every cycle even when the driver is idle.
type plainNet struct{ now int64 }

func (p *plainNet) Now() int64      { return p.now }
func (p *plainNet) Step()           { p.now++ }
func (p *plainNet) Quiescent() bool { return true }

func TestRunNonFastForwardableNetwork(t *testing.T) {
	net := &plainNet{}
	d := &fakeDriver{doneAt: 20, idle: func(int64) bool { return true }}
	end, completed := Run(Config{Net: net}, d)
	if !completed || end != 20 {
		t.Fatalf("Run = (%d, %v), want (20, true)", end, completed)
	}
}
