// Package engine owns the cycle loop shared by every run mode. The paper's
// central claim is that one network model serves open-loop, closed-loop
// (batch and barrier), and execution-driven evaluation; this package makes
// that literal: each methodology implements Driver (per-cycle injection,
// a stop condition, and idle scheduling hints) and Run drives the network,
// so the four previously hand-rolled `for { inject; net.Step() }` loops
// share one engine.
//
// The engine also owns the simulator's biggest idle-time optimization:
// when the driver declares itself idle and the network is quiescent, Run
// fast-forwards the clock to the next scheduled wakeup (a reply-latency
// completion, a batch timer tick, a telemetry sampling point) instead of
// ticking empty cycles. Fast-forward is exact, not approximate: a cycle is
// skipped only when neither the driver (no injections, no RNG draws) nor
// the network (no flits anywhere) nor the observer (no sample due) would
// do anything in it, so results are bit-identical to full stepping — the
// determinism regression tests and the golden-figure gate enforce this.
package engine

import (
	"context"

	"noceval/internal/obs"
)

// NoEvent is returned by Driver.NextEvent when the driver has no scheduled
// future work.
const NoEvent = int64(-1)

// Driver is one run methodology's per-cycle behaviour. Run calls, in
// order and once per simulated cycle: Done (stop check), Cycle (timer
// ticks, reply injection, request generation — everything the run mode
// does before the network computes), then Network.Step. Idle and
// NextEvent exist only to enable fast-forward and are never required for
// correctness: a driver may conservatively return false/NoEvent.
type Driver interface {
	// Cycle performs the driver's work for cycle now, before the network
	// steps: injections, scheduled events, per-cycle bookkeeping.
	Cycle(now int64)
	// Done reports whether the run has completed. It is checked at the top
	// of every iteration, before the deadline.
	Done(now int64) bool
	// Idle reports that Cycle would be a strict no-op — no injections, no
	// RNG draws, no state changes — for every cycle from now until
	// NextEvent(now). Only consulted when the network is quiescent.
	Idle(now int64) bool
	// NextEvent returns the earliest future cycle at which Cycle must run
	// again while idle (scheduled reply, timer tick, timeline bucket
	// boundary), or NoEvent when nothing is scheduled.
	NextEvent(now int64) int64
}

// Network is the engine's view of the simulated fabric. *network.Network
// and the cmp package's Fabric implementations satisfy it.
type Network interface {
	// Now returns the current cycle.
	Now() int64
	// Step advances the fabric one cycle.
	Step()
	// Quiescent reports whether no traffic remains anywhere in the fabric.
	Quiescent() bool
}

// FastForwarder is implemented by fabrics whose clock can jump over
// provably empty cycles. *network.Network implements it; fabrics that do
// not are always stepped cycle by cycle.
type FastForwarder interface {
	// SkipTo advances the clock to the given cycle; the fabric must be
	// quiescent and the target must not lie beyond NextObsSampleAt.
	SkipTo(cycle int64)
	// NextObsSampleAt returns the next telemetry sampling cycle, or -1
	// when sampling is off.
	NextObsSampleAt() int64
}

// InternalScheduler is implemented by fabrics that can schedule their own
// future work even while empty — the recovery NIC's retransmission
// timeouts. The engine folds the next internal event into its fast-forward
// wake-up, and a run is declared stalled only when the driver, the fabric,
// and the internal schedule all have nothing left.
type InternalScheduler interface {
	// NextInternalEventAt returns the next cycle at which the fabric will
	// act on its own, or -1 when nothing is scheduled.
	NextInternalEventAt() int64
}

// Config parameterizes one engine run.
type Config struct {
	// Net is the fabric to drive.
	Net Network
	// Ctx, when non-nil, makes the run cancellable: the loop polls
	// Ctx.Err() at every fast-forward boundary and at least once every
	// cancelCheckEvery stepped cycles, so a cancelled run returns within a
	// bounded number of cycles instead of finishing its schedule. A
	// cancelled run reports Completed == false and Canceled == true; the
	// simulation state is abandoned mid-flight, so its partial results
	// must not be recorded or cached. Nil keeps the legacy uncancellable
	// loop with zero per-cycle overhead beyond a nil check.
	Ctx context.Context
	// Deadline, when positive, aborts the run once Now reaches it (the
	// openloop drain limit, the closed-loop MaxCycles). Run then returns
	// completed == false.
	Deadline int64
	// Progress, when non-nil, receives a heartbeat tick after every
	// stepped cycle (fast-forwarded cycles produce no ticks).
	Progress *obs.Progress
	// Horizon, when non-nil, supplies the expected total cycle count for
	// progress ETAs as a function of the current cycle (the openloop
	// horizon grows when the run enters its drain phase). Nil means
	// unknown.
	Horizon func(now int64) int64
	// FullScan disables fast-forward, pairing with the network's full-scan
	// mode to reproduce the legacy cycle loop exactly. Kept for one
	// release as the determinism regression baseline.
	FullScan bool
	// OnStall, when non-nil, arms the deadlock watchdog: when the engine
	// proves the run can never finish — the driver is not done yet idle
	// with no scheduled event, the network is quiescent, and no internal
	// event (NIC timeout) is pending — OnStall is invoked and Run returns
	// immediately with completed == false, instead of burning cycles to
	// the deadline. When nil the engine keeps stepping (a driver may be
	// idle-with-no-event and still complete on a later Done check).
	OnStall func(now int64)
}

// Outcome summarizes one engine run: where the clock ended, whether the
// driver completed, and how the clock advance split between cycles that
// were actually stepped and cycles the quiescence fast-forward jumped
// over. The split feeds the run ledger's pipeline-throughput and
// skip-ratio columns; it never affects simulation results.
type Outcome struct {
	End       int64
	Completed bool
	// Canceled reports that the run was aborted by Config.Ctx rather than
	// by its own stop condition or deadline. Canceled implies
	// Completed == false, and the run's partial state is unusable.
	Canceled bool
	// Stepped counts cycles executed through Driver.Cycle + Network.Step;
	// Skipped counts cycles the clock jumped without stepping them.
	Stepped int64
	Skipped int64
}

// SkipRatio returns Skipped/(Stepped+Skipped), 0 for an empty run.
func (o Outcome) SkipRatio() float64 {
	if total := o.Stepped + o.Skipped; total > 0 {
		return float64(o.Skipped) / float64(total)
	}
	return 0
}

// metricsFlushEvery batches the engine's per-cycle counting into
// occasional atomic adds on the process-wide registry, so the live
// endpoint sees progress during long runs without an atomic per cycle.
const metricsFlushEvery = 1 << 16

// cancelCheckEvery bounds how many cycles may be stepped between two
// Ctx.Err() polls. Stepping a cycle costs microseconds at most, so 1k
// cycles keeps cancellation latency well under a millisecond while
// amortizing the context poll (a mutex acquisition in cancelCtx) to
// noise. Fast-forward jumps of any length always re-poll at the
// boundary.
const cancelCheckEvery = 1 << 10

// Run drives the network until the driver completes or the deadline
// passes, returning the final cycle and whether the driver completed.
func Run(cfg Config, d Driver) (end int64, completed bool) {
	o := RunOutcome(cfg, d)
	return o.End, o.Completed
}

// RunOutcome is Run with the full engine outcome, including the
// stepped/fast-forwarded cycle split.
func RunOutcome(cfg Config, d Driver) Outcome {
	net := cfg.Net
	ff, canSkip := net.(FastForwarder)
	canSkip = canSkip && !cfg.FullScan
	is, hasInternal := net.(InternalScheduler)
	// Cross-run engine metrics live in the process-wide registry; with no
	// default registry installed these are nil and the loop pays only the
	// local increments. Counter lookup is get-or-create, so every run
	// shares the same instruments.
	reg := obs.Default()
	cStepped := reg.Counter("engine.cycles_stepped")
	cSkipped := reg.Counter("engine.cycles_fastforwarded")
	reg.Counter("engine.runs").Inc()
	var out Outcome
	var unflushed int64
	finish := func(completed bool) Outcome {
		out.End = net.Now()
		out.Completed = completed
		cStepped.Add(unflushed)
		return out
	}
	// untilCancelCheck counts down the stepped cycles to the next context
	// poll; starting at zero makes an already-cancelled context return
	// before the first cycle is stepped.
	var untilCancelCheck int64
	for {
		now := net.Now()
		if cfg.Ctx != nil {
			if untilCancelCheck--; untilCancelCheck < 0 {
				untilCancelCheck = cancelCheckEvery
				if cfg.Ctx.Err() != nil {
					out.Canceled = true
					return finish(false)
				}
			}
		}
		if d.Done(now) {
			return finish(true)
		}
		if cfg.Deadline > 0 && now >= cfg.Deadline {
			return finish(false)
		}
		if d.Idle(now) && net.Quiescent() {
			internal := NoEvent
			if hasInternal {
				internal = is.NextInternalEventAt()
			}
			if cfg.OnStall != nil && d.NextEvent(now) == NoEvent && internal == NoEvent {
				// Provably stuck: the driver is idle forever, the fabric is
				// empty, and nothing is scheduled. Running further cycles
				// (or to the deadline) would change nothing; fail now.
				// Without an OnStall handler the engine keeps its legacy
				// behaviour (run to Done or the deadline), because a driver
				// may be idle-with-no-event yet still complete on a later
				// Done(now) check.
				cfg.OnStall(now)
				return finish(false)
			}
			if canSkip {
				if next := wakeAt(cfg, ff, d, now, internal); next > now {
					ff.SkipTo(next)
					out.Skipped += next - now
					cSkipped.Add(next - now)
					cfg.Progress.Skip(next - now)
					// A jump may have crossed an arbitrary stretch of
					// simulated time; re-poll the context at the boundary.
					untilCancelCheck = 0
					continue
				}
			}
		}
		d.Cycle(now)
		net.Step()
		out.Stepped++
		if unflushed++; unflushed >= metricsFlushEvery {
			cStepped.Add(unflushed)
			unflushed = 0
		}
		if cfg.Progress != nil {
			var h int64
			if cfg.Horizon != nil {
				h = cfg.Horizon(net.Now())
			}
			cfg.Progress.Tick(net.Now(), h)
		}
	}
}

// wakeAt returns the next cycle at which anything can happen while the
// run is idle and quiescent: the driver's next scheduled event, the
// fabric's next internal event (NIC timeout), or the observer's next
// sampling point, clamped to the deadline. It returns a value <= now when
// nothing justifies a skip (an event is due now, or nothing is scheduled
// and there is no deadline to run out).
func wakeAt(cfg Config, ff FastForwarder, d Driver, now, internal int64) int64 {
	next := d.NextEvent(now)
	if internal >= 0 {
		if internal <= now {
			return now // an internal event is due this very cycle
		}
		if next == NoEvent || internal < next {
			next = internal
		}
	}
	if s := ff.NextObsSampleAt(); s >= 0 {
		if s <= now {
			// A sample is due this very cycle (we just fast-forwarded to
			// it): the cycle must be stepped, not skipped over.
			return now
		}
		if next == NoEvent || s < next {
			next = s
		}
	}
	if cfg.Deadline > 0 && (next == NoEvent || next > cfg.Deadline) {
		// Nothing scheduled before the deadline: every remaining cycle is
		// empty, so jump straight to the abort point.
		next = cfg.Deadline
	}
	return next
}
