package engine_test

import (
	"testing"

	"noceval/internal/engine"
)

// fakeNet is a minimal engine.Network: always quiescent, counts steps.
type fakeNet struct {
	now      int64
	internal int64
}

func (f *fakeNet) Now() int64      { return f.now }
func (f *fakeNet) Step()           { f.now++ }
func (f *fakeNet) Quiescent() bool { return true }

func (f *fakeNet) NextInternalEventAt() int64 { return f.internal }

// stuckDriver is never done, always idle, and has nothing scheduled.
type stuckDriver struct{ cycles int }

func (d *stuckDriver) Cycle(int64)           { d.cycles++ }
func (d *stuckDriver) Done(int64) bool       { return false }
func (d *stuckDriver) Idle(int64) bool       { return true }
func (d *stuckDriver) NextEvent(int64) int64 { return engine.NoEvent }

// TestRunDetectsProvableStall: an idle driver over a quiescent fabric with
// no scheduled events can never make progress; Run must invoke OnStall and
// return immediately rather than spinning to the deadline.
func TestRunDetectsProvableStall(t *testing.T) {
	net := &fakeNet{internal: engine.NoEvent}
	d := &stuckDriver{}
	var stalledAt int64 = -1
	end, completed := engine.Run(engine.Config{
		Net:      net,
		Deadline: 1_000_000,
		OnStall:  func(now int64) { stalledAt = now },
	}, d)
	if completed {
		t.Fatal("stuck run reported completed")
	}
	if stalledAt != 0 || end != 0 {
		t.Errorf("stall detected at cycle %d (end %d), want immediately at 0", stalledAt, end)
	}
	if d.cycles != 0 {
		t.Errorf("driver ran %d cycles after the stall was provable", d.cycles)
	}
}

// TestRunHonorsInternalSchedule: a pending fabric-internal event (a NIC
// retransmission timeout) means the run is NOT stuck — the engine must
// fast-forward to it instead of stalling.
func TestRunHonorsInternalSchedule(t *testing.T) {
	net := &fakeNet{internal: 50}
	stalled := false
	// The driver stays idle; once the clock passes the internal event the
	// fabric clears it, and the run stalls then — proving the engine waited.
	d := &stuckDriver{}
	end, completed := engine.Run(engine.Config{
		Net:      net,
		Deadline: 1_000_000,
		OnStall: func(now int64) {
			stalled = true
		},
	}, &clearingDriver{stuckDriver: d, net: net})
	if completed {
		t.Fatal("run reported completed")
	}
	if !stalled {
		t.Fatal("run never stalled after the internal schedule drained")
	}
	if end < 50 {
		t.Errorf("run stalled at cycle %d, before the internal event at 50", end)
	}
}

// clearingDriver clears the fake fabric's internal event once reached, so
// the run stalls right after it fires.
type clearingDriver struct {
	*stuckDriver
	net *fakeNet
}

func (d *clearingDriver) Cycle(now int64) {
	d.stuckDriver.Cycle(now)
	if now >= d.net.internal {
		d.net.internal = engine.NoEvent
	}
}
