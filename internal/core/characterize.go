package core

import (
	"context"
	"fmt"

	"noceval/internal/closedloop"
	"noceval/internal/workload"
)

// BenchmarkModel is the paper's reduction of a benchmark to the handful of
// statistics the enhanced batch model consumes (Tables III and IV): the
// network access rate measured under an ideal network, the L2 miss rate for
// the reply model, and the kernel-traffic parameters of §V.
type BenchmarkModel struct {
	Name  string
	Clock workload.Clock

	// IdealCycles is the runtime under the ideal network; TotalFlits the
	// traffic injected during it (the two ingredients of Table III).
	IdealCycles int64
	TotalFlits  int64

	// NAR is the request injection rate per node per cycle under the ideal
	// network: the enhanced injection model's parameter (§IV-C1), split by
	// class as in Table IV.
	NAR       float64
	UserNAR   float64
	KernelNAR float64

	// L2Miss feeds the probabilistic reply model (§IV-C2).
	L2Miss       float64
	KernelL2Miss float64

	// Kernel model (§V): StaticKernelFrac is the runtime-independent
	// kernel work as a fraction of user work; TimerPeriod and TimerBatch
	// describe the runtime-proportional timer traffic.
	StaticKernelFrac float64
	TimerPeriod      int64
	TimerBatch       int
}

// Characterize measures a benchmark's model parameters by running it twice
// on the ideal network: once without the timer (isolating the runtime-
// independent kernel traffic) and once with it. This mirrors §V:
// "after determining the rate of the periodic timer interrupt from the
// execution-driven simulations".
func Characterize(bench string, clock workload.Clock, seed uint64) (*BenchmarkModel, error) {
	return CharacterizeCtx(nil, bench, clock, seed)
}

// CharacterizeCtx is Characterize with a cancellation context (nil
// behaves like Characterize): both underlying execution-driven runs are
// cancellable.
func CharacterizeCtx(ctx context.Context, bench string, clock workload.Clock, seed uint64) (*BenchmarkModel, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	base := ExecParams{Benchmark: bench, Clock: clock, Ideal: true, Seed: seed}

	noTimer, err := ExecCtx(ctx, NetworkParams{}, base)
	if err != nil {
		return nil, fmt.Errorf("core: characterize %s (no timer): %w", bench, err)
	}
	withTimer := noTimer
	timerPeriod := prof.TimerPeriod(clock)
	if timerPeriod > 0 {
		t := base
		t.Timer = true
		withTimer, err = ExecCtx(ctx, NetworkParams{}, t)
		if err != nil {
			return nil, fmt.Errorf("core: characterize %s (timer): %w", bench, err)
		}
	}

	m := &BenchmarkModel{
		Name:        bench,
		Clock:       clock,
		IdealCycles: withTimer.Cycles,
		TotalFlits:  withTimer.TotalFlits,
		TimerPeriod: timerPeriod,
	}
	n := float64(16) // Table II tile count
	if withTimer.Cycles > 0 {
		cyc := float64(withTimer.Cycles) * n
		m.NAR = float64(withTimer.UserRequests+withTimer.KernelRequests) / cyc
		m.UserNAR = float64(withTimer.UserRequests) / cyc
		m.KernelNAR = float64(withTimer.KernelRequests) / cyc
	}
	m.L2Miss = withTimer.L2MissRate[0]
	m.KernelL2Miss = withTimer.L2MissRate[1]
	if noTimer.UserRequests > 0 {
		m.StaticKernelFrac = float64(noTimer.KernelRequests) / float64(noTimer.UserRequests)
	}
	// Timer-driven kernel requests per interrupt per node.
	extra := withTimer.KernelRequests - noTimer.KernelRequests
	if withTimer.TimerInterrupts > 0 && extra > 0 {
		m.TimerBatch = int(float64(extra)/(float64(withTimer.TimerInterrupts)*n) + 0.5)
		if m.TimerBatch < 1 {
			m.TimerBatch = 1
		}
	}
	return m, nil
}

// Variant enumerates the batch-model refinements of §IV-C and §V.
type Variant int

// Batch-model variants, from the baseline to the fully enhanced model.
const (
	BA        Variant = iota // baseline batch model (MSHR limit only)
	BAInj                    // + NAR injection model
	BARe                     // + reply-latency model
	BAInjRe                  // + both
	BAInjReOS                // + both + kernel-traffic model
)

// String returns the paper's label for the variant.
func (v Variant) String() string {
	switch v {
	case BA:
		return "BA"
	case BAInj:
		return "BA_inj"
	case BARe:
		return "BA_re"
	case BAInjRe:
		return "BA_inj+re"
	case BAInjReOS:
		return "BA_inj+re+OS"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants returns the refinement ladder in presentation order.
func Variants() []Variant { return []Variant{BA, BAInj, BARe, BAInjRe, BAInjReOS} }

// BatchParams builds the closed-loop configuration that models this
// benchmark under the given variant. b is the batch size and m the
// outstanding-request limit; the paper's Table II cores block on loads
// with a small store buffer, which the batch model approximates with a
// small m.
func (bm *BenchmarkModel) BatchParams(b, m int, v Variant) BatchParams {
	bp := BatchParams{B: b, M: m}
	if v == BAInj || v == BAInjRe || v == BAInjReOS {
		bp.NAR = bm.NAR
	}
	if v == BARe || v == BAInjRe || v == BAInjReOS {
		bp.Reply = closedloop.ProbabilisticReply{
			L2Latency:     20,
			MemoryLatency: 300,
			MissRate:      bm.L2Miss,
		}
	}
	if v == BAInjReOS {
		bp.Kernel = &closedloop.KernelConfig{
			StaticFraction: bm.StaticKernelFrac,
			TimerPeriod:    bm.TimerPeriod,
			TimerBatch:     bm.stableTimerBatch(),
			KernelNAR:      bm.KernelNAR,
		}
	}
	return bp
}

// stableTimerBatch caps the per-interrupt kernel work so that at most
// ~40% of each timer period is spent serving it. A real system finishes
// its handler before the next tick by construction; without this cap a
// scaled-down timer period combined with a low kernel injection rate can
// make the batch model accumulate work faster than it drains and never
// terminate.
func (bm *BenchmarkModel) stableTimerBatch() int {
	if bm.TimerPeriod <= 0 || bm.TimerBatch <= 0 {
		return bm.TimerBatch
	}
	kNAR := bm.KernelNAR
	if kNAR <= 0 || kNAR > 1 {
		kNAR = 1
	}
	// Per-transaction service time at m=1: the injection gap plus the
	// reply-model latency plus a nominal network round trip.
	service := 1/kNAR + 20 + bm.KernelL2Miss*300 + 30
	maxBatch := int(0.4 * float64(bm.TimerPeriod) / service)
	if maxBatch < 1 {
		maxBatch = 1
	}
	if bm.TimerBatch > maxBatch {
		return maxBatch
	}
	return bm.TimerBatch
}
