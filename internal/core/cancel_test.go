package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSweepCancelReturnsPromptly cancels a deliberately long sweep (5M
// measured cycles per point, far beyond any test budget) shortly after it
// starts and requires three things the experiment service depends on: the
// sweep returns promptly instead of finishing its schedule, the error
// unwraps to context.Canceled, and the parallel wave workers all exit (no
// goroutine leak).
func TestSweepCancelReturnsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	p := Baseline()
	rates := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	done := make(chan error, 1)
	go func() {
		_, err := OpenLoopSweepWith(p, rates, OpenLoopOpts{
			Warmup:  1000,
			Measure: 5_000_000,
			Ctx:     ctx,
		})
		done <- err
	}()

	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep error = %v, want context.Canceled in its chain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return within 30s")
	}

	// The sweep returned; its wave workers must wind down. Poll because
	// goroutine exit is asynchronous with the channel send.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d: sweep workers leaked", runtime.NumGoroutine(), before+2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpecRunContextCancel exercises the service-facing entry point: a
// cancelled RunContext fails with context.Canceled and a pre-cancelled
// context never starts simulating.
func TestSpecRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := &ExperimentSpec{
		Kind:    "openloop",
		Network: Baseline(),
		Rate:    0.1,
		Warmup:  1000,
		Measure: 5_000_000,
	}
	start := time.Now()
	_, err := spec.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled in its chain", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("pre-cancelled RunContext took %v", d)
	}
}
