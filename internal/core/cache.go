package core

// The experiment cache: every runner in this package is a pure function
// of its parameter structs and seed, so results are memoized on disk and
// reused across figure regenerations, ablation runs, and CI jobs. Lookups
// happen inside the individual runners, which is where Parallel workers
// land — a warm sweep stays parallel (all workers hit), and a cold sweep
// still fans its misses out across cores.

import (
	"sync/atomic"

	"noceval/internal/closedloop"
	"noceval/internal/expcache"
	"noceval/internal/obs"
)

// CacheSchemaVersion salts every experiment-cache key. Bump it whenever a
// change alters simulation results — router timing, RNG streams, traffic
// processes, methodology defaults — so every stale entry becomes
// unreachable at once and sweeps recompute from scratch.
const CacheSchemaVersion = "noceval-core-v1"

// expCache is the process-wide result cache; nil means caching is off.
// It is an atomic pointer because lookups happen concurrently inside
// Parallel workers while tests enable and disable caching around them.
var expCache atomic.Pointer[expcache.Cache]

// EnableCache turns on experiment-result caching for OpenLoop, Batch,
// Barrier, and Exec runs (and therefore for every sweep and grid built on
// them), backed by the given directory.
func EnableCache(dir string) error {
	c, err := expcache.Open(dir, CacheSchemaVersion)
	if err != nil {
		return err
	}
	// Publish cache traffic into the process-wide registry when one is
	// installed (a nil registry detaches the instruments). Commands that
	// serve live metrics install the registry before enabling the cache.
	c.SetMetrics(obs.Default())
	expCache.Store(c)
	return nil
}

// DisableCache turns caching back off. Entries on disk are kept.
func DisableCache() {
	expCache.Store(nil)
}

// CacheStats reports cache traffic since EnableCache; ok is false when
// caching is off.
func CacheStats() (s expcache.Stats, ok bool) {
	c := expCache.Load()
	if c == nil {
		return expcache.Stats{}, false
	}
	return c.Stats(), true
}

// cached memoizes compute under (kind, cfg) when the cache is enabled.
// Results are only stored on success, and a failed store never fails the
// run — the cache can only trade disk for compute, not correctness.
func cached[T any](kind string, cfg any, compute func() (*T, error)) (*T, error) {
	res, _, _, err := cachedInfo(kind, cfg, compute)
	return res, err
}

// cachedInfo is cached with the cache outcome exposed for the run ledger:
// consulted reports whether an enabled cache was actually keyed and
// queried, hit whether it served the result.
func cachedInfo[T any](kind string, cfg any, compute func() (*T, error)) (res *T, consulted, hit bool, err error) {
	c := expCache.Load()
	if c == nil {
		res, err = compute()
		return res, false, false, err
	}
	k, err := c.Key(kind, cfg)
	if err != nil {
		res, err = compute()
		return res, false, false, err
	}
	out := new(T)
	if c.Get(k, out) {
		return out, true, true, nil
	}
	res, err = compute()
	if err == nil {
		c.Put(k, res)
	}
	return res, true, false, err
}

// openLoopKey is the cache identity of one open-loop point: the full
// Table I parameter schema plus the offered load and phase lengths.
// Phases are stored post-default so an explicit 10000 and a zero meaning
// "default 10000" share an entry.
type openLoopKey struct {
	Params  NetworkParams
	Rate    float64
	Warmup  int64
	Measure int64
	Drain   int64
}

// batchKey is the cache identity of one batch-model run. The reply model
// is identified by its Name(), which every model parameterizes with its
// latency constants (e.g. "fixed20", "prob20+0.10*300"); custom models
// must follow that convention to be cache-safe.
type batchKey struct {
	Params NetworkParams
	B, M   int
	NAR    float64
	Reply  string
	Kernel *closedloop.KernelConfig
}

// barrierKey is the cache identity of one barrier-model run.
type barrierKey struct {
	Params NetworkParams
	B      int
	Phases int
}

// execKey is the cache identity of one execution-driven run. ExecParams
// is plain data (benchmark name, clock enum, switches, seed), so it
// embeds directly.
type execKey struct {
	Params NetworkParams
	Exec   ExecParams
}
