package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastParams is a small network that keeps cache tests quick.
func fastParams() NetworkParams {
	return NetworkParams{
		Topology:    "mesh4x4",
		VCs:         2,
		BufDepth:    4,
		RouterDelay: 1,
		Routing:     "dor",
		Arb:         "rr",
		Pattern:     "uniform",
		Sizes:       "single",
		Seed:        1,
	}
}

var fastOpts = OpenLoopOpts{Warmup: 300, Measure: 500, DrainLimit: 5000}

// withCache enables a fresh cache for the test and disables it on cleanup.
func withCache(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "cache")
	if err := EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(DisableCache)
	return dir
}

// asJSON is the byte-level identity used by the guard tests: two results
// are "the same experiment outcome" iff their canonical encodings match.
func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCacheHitMissRoundTrip(t *testing.T) {
	withCache(t)

	cold, err := OpenLoopWith(fastParams(), 0.1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := CacheStats()
	if !ok || s.Misses != 1 || s.Puts != 1 || s.Hits != 0 {
		t.Fatalf("after cold run: stats %+v, want 1 miss / 1 put", s)
	}

	warm, err := OpenLoopWith(fastParams(), 0.1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ = CacheStats(); s.Hits != 1 {
		t.Fatalf("after warm run: stats %+v, want 1 hit", s)
	}
	if asJSON(t, cold) != asJSON(t, warm) {
		t.Error("warm result differs from cold result")
	}

	// A different seed is a different experiment: no false hit.
	p2 := fastParams()
	p2.Seed = 2
	other, err := OpenLoopWith(p2, 0.1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ = CacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("seed change aliased a cache entry: stats %+v", s)
	}
	if asJSON(t, other) == asJSON(t, cold) {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestCacheCorruptedEntryFallsBackToRecompute(t *testing.T) {
	dir := withCache(t)

	first, err := Batch(fastParams(), BatchParams{B: 20, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return err
	})
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("{truncated garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	second, err := Batch(fastParams(), BatchParams{B: 20, M: 2})
	if err != nil {
		t.Fatalf("corrupted cache entry surfaced as error: %v", err)
	}
	if asJSON(t, first) != asJSON(t, second) {
		t.Error("recomputed result differs after corruption")
	}
	if s, _ := CacheStats(); s.Drops == 0 {
		t.Errorf("corrupted entry not dropped: stats %+v", s)
	}

	// And the recomputed value must be re-stored and hittable.
	if _, err := Batch(fastParams(), BatchParams{B: 20, M: 2}); err != nil {
		t.Fatal(err)
	}
	if s, _ := CacheStats(); s.Hits == 0 {
		t.Errorf("recomputed entry not restored: stats %+v", s)
	}
}

// TestCachedMatchesUncached is the determinism contract behind the whole
// cache: for the same seed, a cached replay must be byte-identical to a
// fresh simulation for every cached experiment kind.
func TestCachedMatchesUncached(t *testing.T) {
	p := fastParams()
	DisableCache()
	olBase, err := OpenLoopWith(p, 0.15, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	batchBase, err := Batch(p, BatchParams{B: 30, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	barrierBase, err := Barrier(p, 30, 2)
	if err != nil {
		t.Fatal(err)
	}

	withCache(t)
	for _, pass := range []string{"cold", "warm"} {
		ol, err := OpenLoopWith(p, 0.15, fastOpts)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Batch(p, BatchParams{B: 30, M: 4})
		if err != nil {
			t.Fatal(err)
		}
		bar, err := Barrier(p, 30, 2)
		if err != nil {
			t.Fatal(err)
		}
		if asJSON(t, ol) != asJSON(t, olBase) {
			t.Errorf("%s cached open-loop differs from uncached", pass)
		}
		if asJSON(t, ba) != asJSON(t, batchBase) {
			t.Errorf("%s cached batch differs from uncached", pass)
		}
		if asJSON(t, bar) != asJSON(t, barrierBase) {
			t.Errorf("%s cached barrier differs from uncached", pass)
		}
	}
	s, _ := CacheStats()
	if s.Hits != 3 || s.Puts != 3 {
		t.Errorf("stats %+v, want 3 puts (cold) + 3 hits (warm)", s)
	}
}

// TestCachedSweepMatchesUncached pins the sweep path: per-point caching
// inside the parallel waves must preserve the early-stop prefix exactly.
func TestCachedSweepMatchesUncached(t *testing.T) {
	p := fastParams()
	p.BufDepth = 2
	rates := []float64{0.1, 0.2, 0.95} // 0.95 saturates a q=2 mesh4x4
	DisableCache()
	base, err := OpenLoopSweepWith(p, rates, fastOpts)
	if err != nil {
		t.Fatal(err)
	}

	withCache(t)
	for _, pass := range []string{"cold", "warm"} {
		got, err := OpenLoopSweepWith(p, rates, fastOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("%s sweep returned %d points, uncached %d", pass, len(got), len(base))
		}
		for i := range got {
			if asJSON(t, got[i]) != asJSON(t, base[i]) {
				t.Errorf("%s sweep point %d differs from uncached", pass, i)
			}
		}
	}
	if last := base[len(base)-1]; last.Stable {
		t.Error("expected the sweep to end on an unstable point (fix the test rates)")
	}
}

func TestObservedRunsBypassCache(t *testing.T) {
	withCache(t)
	h := Hooks{Progress: nil, Obs: nil}
	if _, err := OpenLoopObserved(fastParams(), 0.1, h); err != nil {
		t.Fatal(err)
	}
	// Zero hooks route through the cache...
	if s, _ := CacheStats(); s.Puts != 1 {
		t.Fatalf("zero-hook observed run skipped the cache: %+v", s)
	}
}
