// Package core is the on-chip network evaluation framework itself — the
// paper's contribution. It provides one configuration schema covering all
// of Table I, runners for each evaluation methodology (open-loop,
// closed-loop batch and barrier models, trace-driven replay, and the
// execution-driven CMP), the enhanced batch-model parameter derivation of
// §IV-C and §V (NAR, reply latency, kernel traffic measured from
// execution-driven characterization runs), and the cross-methodology
// correlation procedures behind Figs 5, 8, 15, 19 and 22.
package core

import (
	"fmt"
	"os"
	"strconv"

	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

// NetworkParams is the Table I parameter schema in plain values, suitable
// for flag parsing and sweep enumeration.
type NetworkParams struct {
	Topology    string // e.g. "mesh8x8", "torus8x8", "ring64"
	VCs         int
	BufDepth    int   // q
	RouterDelay int64 // tr
	Routing     string
	Arb         string // "rr" or "age"
	Pattern     string // traffic pattern name
	Sizes       string // "single" or "bimodal"
	// SAIterations selects iSLIP-style multi-pass switch allocation
	// (0/1 = classic single pass).
	SAIterations int
	Seed         uint64
	// Fault, when non-nil, enables fault injection and recovery (see
	// internal/fault). The pointer is json-omitted when nil so fault-free
	// configurations keep their pre-existing experiment-cache keys, while
	// every faulted configuration hashes under its own key.
	Fault *fault.Params `json:",omitempty"`
	// Shards steps the network as that many concurrent spatial tiles
	// (network.Config.Shards); 0/1 is the sequential loop. Sharding is
	// bit-identical to sequential by construction, so the runners
	// normalize it out of experiment-cache keys — the same run at any
	// shard count hits the same cache entry. json-omitted to keep
	// pre-existing keys and goldens byte-stable.
	Shards int `json:",omitempty"`
	// Classes, when non-empty, splits the offered traffic into QoS
	// classes (index 0 = highest priority): each class gets its own VC
	// partition in the routers and injects Rate*Share flits/cycle/node
	// with its own pattern and size mix. json-omitted (and normalized to
	// nil in cache keys) so class-free configurations keep their
	// pre-existing experiment-cache keys and golden figures byte-stable.
	Classes []ClassSpec `json:",omitempty"`
	// ClassArb selects the cross-class arbitration policy when Classes is
	// set: "" or "strict" for strict priority, "classrr" for class-blind
	// round-robin over the partitioned VCs.
	ClassArb string `json:",omitempty"`
}

// ClassSpec is the declarative, JSON-serializable form of one QoS traffic
// class. Empty Pattern/Sizes inherit the top-level NetworkParams values.
type ClassSpec struct {
	Name    string  `json:"name"`
	Share   float64 `json:"share"`
	Pattern string  `json:"pattern,omitempty"`
	Sizes   string  `json:"sizes,omitempty"`
}

// cacheNorm returns the parameters as they enter experiment-cache keys:
// Shards is zeroed because sharding is bit-identical to sequential — the
// same experiment at any shard count must hit the same cache entry (and
// a cached result must satisfy a later sharded request). An empty (but
// non-nil) Classes slice is normalized to nil so both spellings of "no
// QoS classes" share the pre-existing class-free cache keys; non-empty
// Classes intentionally hash to new keys, since the VC partition changes
// the simulated behavior.
func (p NetworkParams) cacheNorm() NetworkParams {
	p.Shards = 0
	if len(p.Classes) == 0 {
		p.Classes = nil
	}
	return p
}

// EnvShards reads the NOCEVAL_SHARDS environment variable — how the CI
// determinism matrix (and local runs) push a shard count into every
// network a test builds through the flag defaults or explicit opt-in.
// Returns 0 (sequential) when unset or malformed.
func EnvShards() int {
	v := os.Getenv("NOCEVAL_SHARDS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Baseline returns the bold values of Table I: an 8x8 mesh with 2 VCs,
// 16-flit buffers, 1-cycle routers, DOR, round-robin arbitration,
// single-flit packets, uniform random traffic. The shard count comes
// from NOCEVAL_SHARDS (0 when unset): sharding is bit-identical by
// construction, so the CI determinism matrix can re-run every figure,
// golden, and test built on Baseline with the network split into tiles
// and demand unchanged output.
func Baseline() NetworkParams {
	return NetworkParams{
		Topology:    "mesh8x8",
		VCs:         2,
		BufDepth:    16,
		RouterDelay: 1,
		Routing:     "dor",
		Arb:         "rr",
		Pattern:     "uniform",
		Sizes:       "single",
		Seed:        1,
		Shards:      EnvShards(),
	}
}

// String returns a compact label for figure legends.
func (p NetworkParams) String() string {
	s := fmt.Sprintf("%s/%s tr=%d q=%d v=%d %s", p.Topology, p.Routing, p.RouterDelay, p.BufDepth, p.VCs, p.Pattern)
	if len(p.Classes) > 0 {
		s += fmt.Sprintf(" qos=%d", len(p.Classes))
	}
	if p.Fault.Enabled() {
		s += fmt.Sprintf(" fault(c=%g,d=%g)", p.Fault.CorruptRate, p.Fault.DropRate)
	}
	return s
}

// Build materializes the network configuration.
func (p NetworkParams) Build() (network.Config, error) {
	topo, err := topology.ByName(p.Topology)
	if err != nil {
		return network.Config{}, err
	}
	alg, err := routing.ByName(p.Routing)
	if err != nil {
		return network.Config{}, err
	}
	arb := router.RoundRobin
	switch p.Arb {
	case "", "rr":
	case "age":
		arb = router.AgeBased
	default:
		return network.Config{}, fmt.Errorf("core: unknown arbitration %q", p.Arb)
	}
	classArb := router.StrictPriority
	switch p.ClassArb {
	case "", "strict":
	case "classrr":
		classArb = router.ClassRoundRobin
	default:
		return network.Config{}, fmt.Errorf("core: unknown class arbitration %q", p.ClassArb)
	}
	cfg := network.Config{
		Topo:    topo,
		Routing: alg,
		Router: router.Config{
			VCs:          p.VCs,
			BufDepth:     p.BufDepth,
			Delay:        p.RouterDelay,
			Arb:          arb,
			SAIterations: p.SAIterations,
			Classes:      len(p.Classes),
			ClassArb:     classArb,
		},
		Seed:   p.Seed,
		Fault:  p.Fault,
		Shards: p.Shards,
	}
	if err := cfg.Validate(); err != nil {
		return network.Config{}, err
	}
	return cfg, nil
}

// BuildPattern returns the traffic pattern named in the parameters.
func (p NetworkParams) BuildPattern() (traffic.Pattern, error) {
	name := p.Pattern
	if name == "" {
		name = "uniform"
	}
	return traffic.ByName(name)
}

// BuildSizes returns the packet-size distribution named in the parameters.
func (p NetworkParams) BuildSizes() (traffic.SizeDist, error) {
	return sizesByName(p.Sizes)
}

// sizesByName maps a size-mix name to its distribution.
func sizesByName(name string) (traffic.SizeDist, error) {
	switch name {
	case "", "single":
		return traffic.FixedSize(1), nil
	case "bimodal":
		return traffic.DefaultBimodal(), nil
	default:
		return nil, fmt.Errorf("core: unknown packet size mix %q", name)
	}
}

// BuildClasses materializes the QoS class mix. Classes with empty
// Pattern/Sizes keep nil fields, which the open-loop runner fills from the
// top-level pattern and size distribution.
func (p NetworkParams) BuildClasses() ([]traffic.Class, error) {
	if len(p.Classes) == 0 {
		return nil, nil
	}
	out := make([]traffic.Class, len(p.Classes))
	for i, cs := range p.Classes {
		cl := traffic.Class{Name: cs.Name, Share: cs.Share}
		if cs.Pattern != "" {
			pat, err := traffic.ByName(cs.Pattern)
			if err != nil {
				return nil, fmt.Errorf("core: class %q: %w", cs.Name, err)
			}
			cl.Pattern = pat
		}
		if cs.Sizes != "" {
			sd, err := sizesByName(cs.Sizes)
			if err != nil {
				return nil, fmt.Errorf("core: class %q: %w", cs.Name, err)
			}
			cl.Sizes = sd
		}
		out[i] = cl
	}
	return out, nil
}
