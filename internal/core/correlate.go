package core

import (
	"fmt"

	"noceval/internal/stats"
)

// Pair is one point of a methodology scatter plot: the same configuration
// measured by two methodologies, normalized within its group.
type Pair struct {
	Group string  // e.g. "m=4" or a benchmark name
	Label string  // e.g. "tr=2"
	X, Y  float64 // normalized measurements of the two methodologies
}

// Correlation is the outcome of a cross-methodology comparison.
type Correlation struct {
	Pairs []Pair
	// Coefficient is the Pearson correlation (the paper's metric); CI95 a
	// jackknife 95% half-width around it; Rank the Spearman coefficient
	// (agreement on orderings, robust to magnitude differences).
	Coefficient float64
	CI95        float64
	Rank        float64
}

// correlate computes the correlation statistics over the pairs.
func correlate(pairs []Pair) (Correlation, error) {
	xs := make([]float64, len(pairs))
	ys := make([]float64, len(pairs))
	for i, p := range pairs {
		xs[i], ys[i] = p.X, p.Y
	}
	r, ci, err := stats.JackknifeCorrCI(xs, ys)
	if err != nil {
		return Correlation{Pairs: pairs}, err
	}
	rank, err := stats.Spearman(xs, ys)
	if err != nil {
		rank = 0 // rank degenerate (e.g. constant sample); Pearson stands
	}
	return Correlation{Pairs: pairs, Coefficient: r, CI95: ci, Rank: rank}, nil
}

// NormalizeGroup scales each group's values so its first element is 1
// (the paper normalizes every m-group and every benchmark to the baseline
// parameter value, footnote 2).
func NormalizeGroup(values []float64) ([]float64, error) {
	return stats.Normalize(values, 0)
}

// CorrelateOpenBatch implements the Fig 5 procedure for one parameter
// sweep: for every m in ms and every parameter variant, a batch run yields
// runtime T and achieved throughput θ; an open-loop run at offered load θ
// yields the average latency; both are normalized to the variant at index
// 0 within each m-group, and the Pearson coefficient is computed over all
// points. vary(i) must return the network parameters of variant i; labels
// name the variants. worstCase selects the open-loop worst-case per-node
// latency instead of the average (the Fig 8 topology methodology).
func CorrelateOpenBatch(ms []int, labels []string, vary func(i int) NetworkParams, b int, worstCase bool) (Correlation, error) {
	nm, nl := len(ms), len(labels)
	batchRaw := make([]float64, nm*nl)
	openRaw := make([]float64, nm*nl)
	// Every (m, variant) cell is an independent pair of simulations; run
	// them across all cores.
	err := Parallel(nm*nl, 0, func(idx int) error {
		mi, li := idx/nl, idx%nl
		p := vary(li)
		res, err := Batch(p, BatchParams{B: b, M: ms[mi]})
		if err != nil {
			return fmt.Errorf("core: batch %s m=%d: %w", labels[li], ms[mi], err)
		}
		if !res.Completed {
			return fmt.Errorf("core: batch %s m=%d did not complete", labels[li], ms[mi])
		}
		batchRaw[idx] = float64(res.Runtime)

		ol, err := OpenLoop(p, res.Throughput)
		if err != nil {
			return fmt.Errorf("core: open-loop %s m=%d: %w", labels[li], ms[mi], err)
		}
		if worstCase {
			openRaw[idx] = ol.WorstLatency
		} else {
			openRaw[idx] = ol.AvgLatency
		}
		return nil
	})
	if err != nil {
		return Correlation{}, err
	}

	var pairs []Pair
	for mi, m := range ms {
		bn, err := NormalizeGroup(batchRaw[mi*nl : (mi+1)*nl])
		if err != nil {
			return Correlation{}, err
		}
		on, err := NormalizeGroup(openRaw[mi*nl : (mi+1)*nl])
		if err != nil {
			return Correlation{}, err
		}
		for li := range labels {
			pairs = append(pairs, Pair{
				Group: fmt.Sprintf("m=%d", m),
				Label: labels[li],
				X:     on[li],
				Y:     bn[li],
			})
		}
	}
	return correlate(pairs)
}

// ExecSweep runs one benchmark across router delays on the Table II system
// (in parallel — each delay is an independent simulation) and returns its
// normalized runtimes (normalized to the first delay).
func ExecSweep(bench string, trs []int64, ep ExecParams) ([]float64, error) {
	runtimes := make([]float64, len(trs))
	err := Parallel(len(trs), 0, func(i int) error {
		e := ep
		e.Benchmark = bench
		res, err := Exec(Table2Network(trs[i]), e)
		if err != nil {
			return err
		}
		runtimes[i] = float64(res.Cycles)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return NormalizeGroup(runtimes)
}

// BatchSweep runs the batch model across router delays on the Table II
// network and returns normalized runtimes.
func BatchSweep(trs []int64, bp BatchParams) ([]float64, error) {
	runtimes := make([]float64, len(trs))
	err := Parallel(len(trs), 0, func(i int) error {
		res, err := Batch(Table2Network(trs[i]), bp)
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("core: batch sweep tr=%d did not complete", trs[i])
		}
		runtimes[i] = float64(res.Runtime)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return NormalizeGroup(runtimes)
}

// CorrelateExecBatch compares execution-driven runtimes against a batch-
// model variant across the router-delay sweep (the Figs 15/19/22
// methodology): execNorm[bench] and batchNorm[bench] must hold runtimes
// normalized to the first delay. The coefficient is computed over all
// (benchmark, delay) points.
func CorrelateExecBatch(benchmarks []string, trs []int64, execNorm, batchNorm map[string][]float64) (Correlation, error) {
	var pairs []Pair
	for _, b := range benchmarks {
		en, bn := execNorm[b], batchNorm[b]
		if len(en) != len(trs) || len(bn) != len(trs) {
			return Correlation{}, fmt.Errorf("core: %s has %d exec and %d batch points for %d delays",
				b, len(en), len(bn), len(trs))
		}
		for i, tr := range trs {
			pairs = append(pairs, Pair{
				Group: b,
				Label: fmt.Sprintf("tr=%d", tr),
				X:     en[i],
				Y:     bn[i],
			})
		}
	}
	return correlate(pairs)
}
