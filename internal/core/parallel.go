package core

import (
	"fmt"

	"noceval/internal/par"
)

// Parallel runs n independent experiment closures across worker
// goroutines and returns the first error encountered (remaining tasks are
// still executed; simulations are cheap to finish and results stay
// index-addressed). It is a thin wrapper over par.Parallel, kept here so
// experiment code keeps a single entry point at the framework layer; the
// pool itself lives in internal/par so methodology packages below core
// (e.g. openloop's sweep) can share it.
//
// workers <= 0 selects GOMAXPROCS.
func Parallel(n, workers int, task func(i int) error) error {
	return par.Parallel(n, workers, task)
}

// BatchGrid runs the batch model over the cross product of network
// parameter variants and m values in parallel, returning results indexed
// [variant][m]. It is the workhorse behind the m-sweep figures.
func BatchGrid(variants []NetworkParams, ms []int, bp BatchParams) ([][]*BatchGridCell, error) {
	out := make([][]*BatchGridCell, len(variants))
	for i := range out {
		out[i] = make([]*BatchGridCell, len(ms))
	}
	n := len(variants) * len(ms)
	err := Parallel(n, 0, func(idx int) error {
		vi, mi := idx/len(ms), idx%len(ms)
		p := bp
		p.M = ms[mi]
		res, err := Batch(variants[vi], p)
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("batch %s m=%d did not complete", variants[vi], ms[mi])
		}
		out[vi][mi] = &BatchGridCell{
			Params:     variants[vi],
			M:          ms[mi],
			Runtime:    res.Runtime,
			Throughput: res.Throughput,
			NodeFinish: res.NodeFinish,
		}
		return nil
	})
	return out, err
}

// BatchGridCell is one point of a batch-model parameter grid.
type BatchGridCell struct {
	Params     NetworkParams
	M          int
	Runtime    int64
	Throughput float64
	NodeFinish []int64
}

// OpenLoopGrid runs open-loop sweeps for several network variants in
// parallel, returning results indexed [variant][rate]. Unstable points are
// preserved (not truncated) so callers can decide how to plot them.
func OpenLoopGrid(variants []NetworkParams, rates []float64) ([][]*OpenLoopGridCell, error) {
	out := make([][]*OpenLoopGridCell, len(variants))
	for i := range out {
		out[i] = make([]*OpenLoopGridCell, len(rates))
	}
	n := len(variants) * len(rates)
	err := Parallel(n, 0, func(idx int) error {
		vi, ri := idx/len(rates), idx%len(rates)
		res, err := OpenLoop(variants[vi], rates[ri])
		if err != nil {
			return err
		}
		out[vi][ri] = &OpenLoopGridCell{
			Params:     variants[vi],
			Rate:       rates[ri],
			AvgLatency: res.AvgLatency,
			Worst:      res.WorstLatency,
			Accepted:   res.Accepted,
			Stable:     res.Stable,
		}
		return nil
	})
	return out, err
}

// OpenLoopGridCell is one point of an open-loop parameter grid.
type OpenLoopGridCell struct {
	Params     NetworkParams
	Rate       float64
	AvgLatency float64
	Worst      float64
	Accepted   float64
	Stable     bool
}
