package core

import (
	"strings"
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/workload"
)

func TestBaselineMatchesTableI(t *testing.T) {
	p := Baseline()
	if p.Topology != "mesh8x8" || p.VCs != 2 || p.BufDepth != 16 ||
		p.RouterDelay != 1 || p.Routing != "dor" || p.Arb != "rr" {
		t.Errorf("baseline drifted from Table I: %+v", p)
	}
	cfg, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topo.N != 64 {
		t.Errorf("baseline nodes = %d", cfg.Topo.N)
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	for _, mutate := range []func(*NetworkParams){
		func(p *NetworkParams) { p.Topology = "blob" },
		func(p *NetworkParams) { p.Routing = "zigzag" },
		func(p *NetworkParams) { p.Arb = "coinflip" },
		func(p *NetworkParams) { p.VCs = 0 },
		func(p *NetworkParams) { p.Topology = "torus8x8"; p.Routing = "val"; p.VCs = 2 }, // needs 4 classes
	} {
		p := Baseline()
		mutate(&p)
		if _, err := p.Build(); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
	p := Baseline()
	p.Sizes = "trimodal"
	if _, err := p.BuildSizes(); err == nil {
		t.Error("bad size mix accepted")
	}
	p.Pattern = "nope"
	if _, err := p.BuildPattern(); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestParamsString(t *testing.T) {
	s := Baseline().String()
	for _, want := range []string{"mesh8x8", "dor", "tr=1", "q=16"} {
		if !strings.Contains(s, want) {
			t.Errorf("label %q missing %q", s, want)
		}
	}
}

func TestOpenLoopAndBatchRunners(t *testing.T) {
	p := Baseline()
	ol, err := OpenLoop(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !ol.Stable || ol.AvgLatency < 10 {
		t.Errorf("open-loop runner: %+v", ol)
	}
	ba, err := Batch(p, BatchParams{B: 100, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ba.Completed {
		t.Error("batch runner did not complete")
	}
	bar, err := Barrier(p, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bar.Completed {
		t.Error("barrier runner did not complete")
	}
}

func TestNormalizeGroup(t *testing.T) {
	out, err := NormalizeGroup([]float64{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 4 {
		t.Errorf("normalized = %v", out)
	}
	if _, err := NormalizeGroup([]float64{0, 1}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestCorrelateOpenBatchRouterDelay(t *testing.T) {
	// The paper's central result at small scale: across tr, batch and
	// open-loop measurements correlate almost perfectly for m <= 8.
	labels := []string{"tr=1", "tr=2", "tr=4"}
	vary := func(i int) NetworkParams {
		p := Baseline()
		p.RouterDelay = []int64{1, 2, 4}[i]
		return p
	}
	corr, err := CorrelateOpenBatch([]int{1, 4}, labels, vary, 200, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(corr.Pairs))
	}
	if corr.Coefficient < 0.95 {
		t.Errorf("tr correlation = %.4f, want > 0.95 (paper: 0.9953)", corr.Coefficient)
	}
}

func TestTable2Network(t *testing.T) {
	p := Table2Network(4)
	cfg, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topo.N != 16 || cfg.Router.VCs != 8 || cfg.Router.BufDepth != 4 || cfg.Router.Delay != 4 {
		t.Errorf("Table II network drifted: %+v", cfg.Router)
	}
}

func TestExecRunsOnRealAndIdealNetwork(t *testing.T) {
	real, err := Exec(Table2Network(1), ExecParams{Benchmark: "blackscholes", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Exec(NetworkParams{}, ExecParams{Benchmark: "blackscholes", Ideal: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Cycles >= real.Cycles {
		t.Errorf("ideal %d cycles not faster than real %d", ideal.Cycles, real.Cycles)
	}
	if _, err := Exec(Baseline(), ExecParams{Benchmark: "lu"}); err == nil {
		t.Error("64-node network accepted for a 16-tile CMP")
	}
	if _, err := Exec(Table2Network(1), ExecParams{Benchmark: "quake"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCharacterizeProducesUsableModel(t *testing.T) {
	m, err := Characterize("lu", workload.Clock75MHz, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NAR <= 0 || m.NAR > 0.5 {
		t.Errorf("NAR = %v", m.NAR)
	}
	if m.L2Miss <= 0 || m.L2Miss >= 1 {
		t.Errorf("L2 miss = %v", m.L2Miss)
	}
	if m.StaticKernelFrac <= 0 {
		t.Error("no static kernel traffic measured")
	}
	if m.TimerPeriod <= 0 || m.TimerBatch < 1 {
		t.Errorf("timer model: period %d batch %d", m.TimerPeriod, m.TimerBatch)
	}

	// The derived parameters must produce runnable batch configs for every
	// variant, with the right knobs enabled.
	for _, v := range Variants() {
		bp := m.BatchParams(50, 1, v)
		switch v {
		case BA:
			if bp.NAR != 0 || bp.Reply != nil || bp.Kernel != nil {
				t.Errorf("BA has extras enabled: %+v", bp)
			}
		case BAInjReOS:
			if bp.NAR == 0 || bp.Reply == nil || bp.Kernel == nil {
				t.Errorf("BA_inj+re+OS missing pieces: %+v", bp)
			}
		}
		res, err := Batch(Table2Network(1), bp)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !res.Completed {
			t.Errorf("%s batch did not complete", v)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		BA: "BA", BAInj: "BA_inj", BARe: "BA_re",
		BAInjRe: "BA_inj+re", BAInjReOS: "BA_inj+re+OS",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d -> %q, want %q", v, v.String(), s)
		}
	}
}

func TestExecAndBatchSweepsNormalize(t *testing.T) {
	trs := []int64{1, 4}
	en, err := ExecSweep("fft", trs, ExecParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if en[0] != 1 || en[1] <= 1 {
		t.Errorf("exec sweep = %v: want normalized rising runtimes", en)
	}
	bn, err := BatchSweep(trs, BatchParams{B: 100, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bn[0] != 1 || bn[1] <= 1.5 {
		t.Errorf("batch sweep = %v: m=1 should track zero-load scaling", bn)
	}
}

func TestCorrelateExecBatchValidation(t *testing.T) {
	_, err := CorrelateExecBatch([]string{"x"}, []int64{1, 2},
		map[string][]float64{"x": {1}},
		map[string][]float64{"x": {1, 2}})
	if err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBatchParamsUseMeasuredReplyModel(t *testing.T) {
	m := &BenchmarkModel{Name: "x", NAR: 0.1, L2Miss: 0.25}
	bp := m.BatchParams(100, 2, BARe)
	pr, ok := bp.Reply.(closedloop.ProbabilisticReply)
	if !ok {
		t.Fatalf("reply model is %T", bp.Reply)
	}
	if pr.MissRate != 0.25 || pr.L2Latency != 20 || pr.MemoryLatency != 300 {
		t.Errorf("reply model = %+v", pr)
	}
}
