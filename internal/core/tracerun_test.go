package core

import "testing"

func TestCaptureAndReplay(t *testing.T) {
	capture := Baseline()
	capture.Topology = "mesh4x4"
	slow := capture
	slow.RouterDelay = 4

	res, err := CaptureAndReplay(capture, slow, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replay.Completed {
		t.Fatal("replay did not complete")
	}
	// 16 nodes x 60 transactions x (request + reply).
	if want := 16 * 60 * 2; len(res.Trace.Events) != want {
		t.Errorf("trace has %d events, want %d", len(res.Trace.Events), want)
	}
	if res.Replay.Packets != len(res.Trace.Events) {
		t.Errorf("replayed %d of %d packets", res.Replay.Packets, len(res.Trace.Events))
	}
	// The methodology's known causality loss: the replay on the 4x slower
	// network stretches far less than a true closed-loop run would (which
	// the batch model says is ~2.4x).
	stretch := float64(res.Replay.Runtime) / float64(res.CaptureRuntime)
	if stretch > 1.5 {
		t.Errorf("replay stretched %.2fx; trace-driven replay should hide most of the slowdown", stretch)
	}
	if _, err := CaptureAndReplay(NetworkParams{Topology: "blob"}, slow, 10, 1); err == nil {
		t.Error("bad capture params accepted")
	}
	if _, err := CaptureAndReplay(capture, NetworkParams{Topology: "blob"}, 10, 1); err == nil {
		t.Error("bad replay params accepted")
	}
}
