package core

import (
	"path/filepath"
	"testing"

	"noceval/internal/obs/ledger"
)

// TestLedgerMatchesCacheStats runs the same sweep cold and warm with both
// the ledger and the experiment cache enabled, then cross-checks the two:
// the ledger's per-record cache outcomes must agree with the cache's own
// counters, and the engine split must appear only on computed runs.
func TestLedgerMatchesCacheStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	if err := EnableLedger(path); err != nil {
		t.Fatal(err)
	}
	defer DisableLedger()
	if err := EnableCache(filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()

	p := Table2Network(1)
	rates := []float64{0.05, 0.1}
	opts := OpenLoopOpts{Warmup: 200, Measure: 300, DrainLimit: 3000}
	for pass := 0; pass < 2; pass++ { // cold, then warm
		if _, err := OpenLoopSweepWith(p, rates, opts); err != nil {
			t.Fatal(err)
		}
	}

	stats, ok := CacheStats()
	if !ok {
		t.Fatal("cache stats unavailable with cache enabled")
	}
	if err := DisableLedger(); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := ledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("ledger dropped %d lines", dropped)
	}
	if want := 2 * len(rates); len(recs) != want {
		t.Fatalf("ledger has %d records, want %d (cold + warm sweep)", len(recs), want)
	}

	var hits, misses int64
	specs := map[string]int{}
	for _, r := range recs {
		if r.Kind != "openloop" {
			t.Errorf("record kind = %q, want openloop", r.Kind)
		}
		if !r.Cached {
			t.Errorf("record %+v not marked as cache-consulted", r)
		}
		if r.Spec == "" {
			t.Errorf("record missing spec hash: %+v", r)
		}
		specs[r.Spec]++
		if r.Err != "" {
			t.Errorf("record carries error: %s", r.Err)
		}
		if r.Hit {
			hits++
			if r.Stepped != 0 || r.Skipped != 0 {
				t.Errorf("cache hit has an engine split: %+v", r)
			}
		} else {
			misses++
			if r.Stepped == 0 {
				t.Errorf("computed run has no stepped cycles: %+v", r)
			}
			if r.Cycles == 0 {
				t.Errorf("computed run has no simulated cycles: %+v", r)
			}
		}
	}
	// The acceptance check of the issue: the ledger's hit count must match
	// the cache's own statistics exactly.
	if hits != stats.Hits {
		t.Errorf("ledger hits = %d, cache stats hits = %d", hits, stats.Hits)
	}
	if misses != stats.Misses {
		t.Errorf("ledger misses = %d, cache stats misses = %d", misses, stats.Misses)
	}
	// Cold and warm executions of the same point must share a spec hash —
	// that is what makes ledger lines joinable against cache entries.
	if len(specs) != len(rates) {
		t.Errorf("ledger has %d distinct specs, want %d", len(specs), len(rates))
	}
	for spec, n := range specs {
		if n != 2 {
			t.Errorf("spec %s appears %d times, want 2 (one cold, one warm)", spec, n)
		}
	}
}

// TestLedgerDisabledIsFree checks that with no ledger and no default
// registry installed, beginRun short-circuits to nil.
func TestLedgerDisabledIsFree(t *testing.T) {
	if s := beginRun("openloop"); s != nil {
		t.Fatal("beginRun should return nil with ledger and registry both off")
	}
	// And the nil scope is a no-op end to end.
	var s *runScope
	s.spec(struct{}{})
	s.cache(true, true)
	s.faults(nil)
	s.finish(123, nil)
	if LedgerAppends() != 0 {
		t.Fatal("nil scope appended to a ledger")
	}
}
