package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"noceval/internal/closedloop"
	"noceval/internal/expcache"
	"noceval/internal/workload"
)

// ExperimentSpec is a declarative, JSON-serializable description of one
// experiment, so studies can be captured in version-controlled files and
// rerun exactly (`noceval run -config exp.json`).
type ExperimentSpec struct {
	// Kind selects the methodology: "openloop", "sweep", "batch",
	// "barrier", "exec" or "characterize".
	Kind string `json:"kind"`

	// Network parameters (Table I); zero values take the baseline.
	Network NetworkParams `json:"network"`

	// Open-loop settings.
	Rate  float64   `json:"rate,omitempty"`
	Rates []float64 `json:"rates,omitempty"`
	// Open-loop phase-length overrides in cycles (openloop and sweep
	// kinds); zero keeps the methodology defaults (10k warmup, 10k
	// measure, 100k drain limit). The experiment cache normalizes the zero
	// and explicit-default spellings onto one entry, so adding these to a
	// spec never forks cache keys for default-phase runs.
	Warmup     int64 `json:"warmup,omitempty"`
	Measure    int64 `json:"measure,omitempty"`
	DrainLimit int64 `json:"drainLimit,omitempty"`

	// Closed-loop settings.
	B      int                      `json:"b,omitempty"`
	M      int                      `json:"m,omitempty"`
	NAR    float64                  `json:"nar,omitempty"`
	Phases int                      `json:"phases,omitempty"`
	Reply  *ReplySpec               `json:"reply,omitempty"`
	Kernel *closedloop.KernelConfig `json:"kernel,omitempty"`

	// Execution-driven settings.
	Benchmark string `json:"benchmark,omitempty"`
	Clock     string `json:"clock,omitempty"` // "75mhz" or "3ghz"
	Timer     bool   `json:"timer,omitempty"`
	Ideal     bool   `json:"ideal,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
}

// ReplySpec is the JSON form of a reply-latency model.
type ReplySpec struct {
	Type     string  `json:"type"` // "immediate", "fixed", "probabilistic"
	Latency  int64   `json:"latency,omitempty"`
	L2       int64   `json:"l2,omitempty"`
	Memory   int64   `json:"memory,omitempty"`
	MissRate float64 `json:"missRate,omitempty"`
}

// Build converts the spec to a ReplyModel.
func (r *ReplySpec) Build() (closedloop.ReplyModel, error) {
	if r == nil {
		return nil, nil
	}
	switch r.Type {
	case "", "immediate":
		return closedloop.ImmediateReply{}, nil
	case "fixed":
		return closedloop.FixedReply{Latency: r.Latency}, nil
	case "probabilistic":
		return closedloop.ProbabilisticReply{
			L2Latency:     r.L2,
			MemoryLatency: r.Memory,
			MissRate:      r.MissRate,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown reply model %q", r.Type)
	}
}

// ParseSpec decodes a JSON experiment spec, filling network defaults from
// the Table I baseline.
func ParseSpec(data []byte) (*ExperimentSpec, error) {
	spec := &ExperimentSpec{Network: Baseline()}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("core: bad experiment spec: %w", err)
	}
	if spec.Network.Topology == "" {
		spec.Network = Baseline()
	}
	// Normalize an explicit empty class list to nil: both spell "no QoS
	// classes", and the canonical form must survive a marshal/re-parse
	// round trip (Classes is json-omitted when empty).
	if len(spec.Network.Classes) == 0 {
		spec.Network.Classes = nil
	}
	return spec, nil
}

// clock parses the spec's clock string.
func (s *ExperimentSpec) clock() (workload.Clock, error) {
	switch strings.ToLower(s.Clock) {
	case "", "3ghz":
		return workload.Clock3GHz, nil
	case "75mhz":
		return workload.Clock75MHz, nil
	default:
		return 0, fmt.Errorf("core: unknown clock %q", s.Clock)
	}
}

// Hash returns the spec's content address: the SHA-256 over the
// canonical JSON encoding, salted with the cache schema version — the key
// the experiment service coalesces identical in-flight submissions by and
// stamps job records with. Two specs hash equal iff a ParseSpec round
// trip leaves them identical, so the hash is stable across processes and
// sessions the same way experiment-cache keys are.
func (s *ExperimentSpec) Hash() (string, error) {
	k, err := expcache.KeyFor(CacheSchemaVersion, "spec", s)
	if err != nil {
		return "", err
	}
	return k.Hash(), nil
}

// Validate materializes everything the spec names — kind, network,
// pattern, sizes, QoS classes, reply model, clock, benchmark — without
// running anything, returning exactly the error Run would fail with. The
// experiment service calls it at submission time so a bad spec is a
// synchronous 400 instead of a job that fails minutes later.
func (s *ExperimentSpec) Validate() error {
	switch s.Kind {
	case "openloop":
		if s.Rate <= 0 {
			return fmt.Errorf("core: openloop spec needs a positive rate")
		}
	case "sweep", "batch", "barrier":
	case "exec", "characterize":
		if _, err := s.clock(); err != nil {
			return err
		}
		if _, err := workload.ByName(s.Benchmark); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown experiment kind %q", s.Kind)
	}
	if _, err := s.Network.Build(); err != nil {
		return err
	}
	if _, err := s.Network.BuildPattern(); err != nil {
		return err
	}
	if _, err := s.Network.BuildSizes(); err != nil {
		return err
	}
	if _, err := s.Network.BuildClasses(); err != nil {
		return err
	}
	if _, err := s.Reply.Build(); err != nil {
		return err
	}
	return nil
}

// Run executes the experiment and returns a human-readable report.
func (s *ExperimentSpec) Run() (string, error) {
	return s.RunContext(nil)
}

// RunContext is Run with a cancellation context (nil behaves like Run):
// the context is threaded into the engine's cycle loop, so a cancelled
// experiment — even a multi-point sweep — returns promptly with an error
// wrapping the context's cause, and no partial result is cached.
func (s *ExperimentSpec) RunContext(ctx context.Context) (string, error) {
	var b strings.Builder
	opts := OpenLoopOpts{Warmup: s.Warmup, Measure: s.Measure, DrainLimit: s.DrainLimit, Ctx: ctx}
	switch s.Kind {
	case "openloop":
		if s.Rate <= 0 {
			return "", fmt.Errorf("core: openloop spec needs a positive rate")
		}
		res, err := OpenLoopWith(s.Network, s.Rate, opts)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "openloop %s rate=%.3f\n", s.Network, s.Rate)
		fmt.Fprintf(&b, "avg latency %.2f +/- %.2f, worst %.2f, accepted %.3f, stable %v\n",
			res.AvgLatency, res.LatencyCI95, res.WorstLatency, res.Accepted, res.Stable)
	case "sweep":
		rates := s.Rates
		if len(rates) == 0 {
			for r := 0.05; r <= 0.5; r += 0.05 {
				rates = append(rates, r)
			}
		}
		results, err := OpenLoopSweepWith(s.Network, rates, opts)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "sweep %s\n%10s %12s %8s\n", s.Network, "rate", "latency", "stable")
		for _, r := range results {
			fmt.Fprintf(&b, "%10.3f %12.2f %8v\n", r.Rate, r.AvgLatency, r.Stable)
		}
	case "batch":
		reply, err := s.Reply.Build()
		if err != nil {
			return "", err
		}
		res, err := Batch(s.Network, BatchParams{B: s.B, M: s.M, NAR: s.NAR, Reply: reply, Kernel: s.Kernel, Ctx: ctx})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "batch %s b=%d m=%d\n", s.Network, s.B, s.M)
		fmt.Fprintf(&b, "runtime %d, throughput %.4f, packets %d (kernel %d)\n",
			res.Runtime, res.Throughput, res.TotalPackets, res.KernelPackets)
	case "barrier":
		phases := s.Phases
		if phases == 0 {
			phases = 1
		}
		res, err := BarrierCtx(ctx, s.Network, s.B, phases)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "barrier %s b=%d phases=%d\n", s.Network, s.B, phases)
		fmt.Fprintf(&b, "runtime %d, throughput %.4f\n", res.Runtime, res.Throughput)
	case "exec":
		clock, err := s.clock()
		if err != nil {
			return "", err
		}
		res, err := ExecCtx(ctx, s.Network, ExecParams{
			Benchmark: s.Benchmark, Clock: clock, Timer: s.Timer, Ideal: s.Ideal, Seed: s.Seed,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "exec %s on %s (clock %s, timer %v)\n", s.Benchmark, s.Network, clock, s.Timer)
		fmt.Fprintf(&b, "cycles %d, NAR %.4f (user %.4f kernel %.4f), L2 miss %.3f/%.3f\n",
			res.Cycles, res.NAR, res.UserNAR, res.KernelNAR, res.L2MissRate[0], res.L2MissRate[1])
	case "characterize":
		clock, err := s.clock()
		if err != nil {
			return "", err
		}
		m, err := CharacterizeCtx(ctx, s.Benchmark, clock, s.Seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "characterize %s @ %s\n", m.Name, m.Clock)
		fmt.Fprintf(&b, "NAR %.4f (user %.4f kernel %.4f), L2 miss %.3f, static kernel %.3f, timer %d x %d\n",
			m.NAR, m.UserNAR, m.KernelNAR, m.L2Miss, m.StaticKernelFrac, m.TimerPeriod, m.TimerBatch)
	default:
		return "", fmt.Errorf("core: unknown experiment kind %q", s.Kind)
	}
	return b.String(), nil
}
