package core

import (
	"strings"
	"testing"

	"noceval/internal/closedloop"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"kind":"batch","b":50,"m":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Network.Topology != "mesh8x8" || spec.Network.VCs != 2 {
		t.Errorf("baseline defaults not applied: %+v", spec.Network)
	}
	if spec.B != 50 || spec.M != 2 {
		t.Errorf("fields lost: %+v", spec)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind":"batch","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplySpecBuild(t *testing.T) {
	cases := []struct {
		spec ReplySpec
		want string
	}{
		{ReplySpec{Type: "immediate"}, "immediate"},
		{ReplySpec{Type: "fixed", Latency: 20}, "fixed20"},
		{ReplySpec{Type: "probabilistic", L2: 20, Memory: 300, MissRate: 0.1}, "prob"},
	}
	for _, tc := range cases {
		m, err := tc.spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(m.Name(), tc.want) {
			t.Errorf("built %q, want prefix %q", m.Name(), tc.want)
		}
	}
	if _, err := (&ReplySpec{Type: "quantum"}).Build(); err == nil {
		t.Error("unknown reply type accepted")
	}
	var nilSpec *ReplySpec
	if m, err := nilSpec.Build(); err != nil || m != nil {
		t.Error("nil spec should build nil model")
	}
}

func TestSpecRunBatch(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"kind": "batch",
		"network": {"Topology":"mesh4x4","VCs":2,"BufDepth":8,"RouterDelay":1,"Routing":"dor","Seed":3},
		"b": 50, "m": 2,
		"reply": {"type":"fixed","latency":10}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "runtime") || !strings.Contains(report, "throughput") {
		t.Errorf("report missing metrics: %q", report)
	}
}

func TestSpecRunOpenLoopAndErrors(t *testing.T) {
	spec := &ExperimentSpec{Kind: "openloop", Network: Baseline(), Rate: 0.1}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "avg latency") {
		t.Errorf("report: %q", report)
	}
	if _, err := (&ExperimentSpec{Kind: "openloop", Network: Baseline()}).Run(); err == nil {
		t.Error("zero-rate openloop accepted")
	}
	if _, err := (&ExperimentSpec{Kind: "teleport", Network: Baseline()}).Run(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (&ExperimentSpec{Kind: "exec", Network: Baseline(), Clock: "9ghz"}).Run(); err == nil {
		t.Error("unknown clock accepted")
	}
}

func TestSpecKernelConfigRoundTrip(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"kind":"batch","b":40,"m":1,
		"network": {"Topology":"mesh4x4","VCs":2,"BufDepth":8,"RouterDelay":1,"Routing":"dor","Seed":3},
		"kernel": {"StaticFraction":0.2,"TimerPeriod":500,"TimerBatch":1,"KernelNAR":0.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := closedloop.KernelConfig{StaticFraction: 0.2, TimerPeriod: 500, TimerBatch: 1, KernelNAR: 0.5}
	if *spec.Kernel != want {
		t.Errorf("kernel config = %+v, want %+v", spec.Kernel, want)
	}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "kernel") {
		t.Errorf("report missing kernel packets: %q", report)
	}
}
