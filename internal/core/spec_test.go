package core

import (
	"strings"
	"testing"

	"noceval/internal/closedloop"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"kind":"batch","b":50,"m":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Network.Topology != "mesh8x8" || spec.Network.VCs != 2 {
		t.Errorf("baseline defaults not applied: %+v", spec.Network)
	}
	if spec.B != 50 || spec.M != 2 {
		t.Errorf("fields lost: %+v", spec)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind":"batch","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplySpecBuild(t *testing.T) {
	cases := []struct {
		spec ReplySpec
		want string
	}{
		{ReplySpec{Type: "immediate"}, "immediate"},
		{ReplySpec{Type: "fixed", Latency: 20}, "fixed20"},
		{ReplySpec{Type: "probabilistic", L2: 20, Memory: 300, MissRate: 0.1}, "prob"},
	}
	for _, tc := range cases {
		m, err := tc.spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(m.Name(), tc.want) {
			t.Errorf("built %q, want prefix %q", m.Name(), tc.want)
		}
	}
	if _, err := (&ReplySpec{Type: "quantum"}).Build(); err == nil {
		t.Error("unknown reply type accepted")
	}
	var nilSpec *ReplySpec
	if m, err := nilSpec.Build(); err != nil || m != nil {
		t.Error("nil spec should build nil model")
	}
}

func TestSpecRunBatch(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"kind": "batch",
		"network": {"Topology":"mesh4x4","VCs":2,"BufDepth":8,"RouterDelay":1,"Routing":"dor","Seed":3},
		"b": 50, "m": 2,
		"reply": {"type":"fixed","latency":10}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "runtime") || !strings.Contains(report, "throughput") {
		t.Errorf("report missing metrics: %q", report)
	}
}

func TestSpecRunOpenLoopAndErrors(t *testing.T) {
	spec := &ExperimentSpec{Kind: "openloop", Network: Baseline(), Rate: 0.1}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "avg latency") {
		t.Errorf("report: %q", report)
	}
	if _, err := (&ExperimentSpec{Kind: "openloop", Network: Baseline()}).Run(); err == nil {
		t.Error("zero-rate openloop accepted")
	}
	if _, err := (&ExperimentSpec{Kind: "teleport", Network: Baseline()}).Run(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (&ExperimentSpec{Kind: "exec", Network: Baseline(), Clock: "9ghz"}).Run(); err == nil {
		t.Error("unknown clock accepted")
	}
}

func TestSpecKernelConfigRoundTrip(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"kind":"batch","b":40,"m":1,
		"network": {"Topology":"mesh4x4","VCs":2,"BufDepth":8,"RouterDelay":1,"Routing":"dor","Seed":3},
		"kernel": {"StaticFraction":0.2,"TimerPeriod":500,"TimerBatch":1,"KernelNAR":0.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := closedloop.KernelConfig{StaticFraction: 0.2, TimerPeriod: 500, TimerBatch: 1, KernelNAR: 0.5}
	if *spec.Kernel != want {
		t.Errorf("kernel config = %+v, want %+v", spec.Kernel, want)
	}
	report, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "kernel") {
		t.Errorf("report missing kernel packets: %q", report)
	}
}

// TestSpecErrorMessages pins the exact error text a bad spec produces
// through the ParseSpec -> Validate path — the same two calls the
// experiment service makes at submission time, so these strings are
// precisely what nocd's HTTP 400 bodies surface to clients. A wording
// change here is an API change; update deliberately.
func TestSpecErrorMessages(t *testing.T) {
	// check mirrors service.Submit: parse errors win, then validation.
	check := func(body string) string {
		spec, err := ParseSpec([]byte(body))
		if err != nil {
			return err.Error()
		}
		if err := spec.Validate(); err != nil {
			return err.Error()
		}
		return ""
	}
	cases := []struct {
		name string
		body string
		want string
	}{
		{"truncated json", `{`,
			"core: bad experiment spec: unexpected EOF"},
		{"unknown field", `{"kind":"openloop","rete":0.1}`,
			`core: bad experiment spec: json: unknown field "rete"`},
		{"wrong field type", `{"kind":5}`,
			"core: bad experiment spec: json: cannot unmarshal number into Go struct field ExperimentSpec.kind of type string"},
		{"unknown kind", `{"kind":"warp"}`,
			`core: unknown experiment kind "warp"`},
		{"openloop without rate", `{"kind":"openloop"}`,
			"core: openloop spec needs a positive rate"},
		{"unknown clock", `{"kind":"exec","clock":"9thz"}`,
			`core: unknown clock "9thz"`},
		{"unknown benchmark", `{"kind":"exec","benchmark":"quake"}`,
			`workload: unknown benchmark "quake"`},
		{"unknown topology", `{"kind":"openloop","rate":0.1,"network":{"Topology":"hypercube"}}`,
			`topology: unknown topology "hypercube"`},
		{"unknown pattern", `{"kind":"openloop","rate":0.1,"network":{"Pattern":"blizzard"}}`,
			`traffic: unknown pattern "blizzard"`},
		{"unknown routing", `{"kind":"openloop","rate":0.1,"network":{"Routing":"chaos"}}`,
			`routing: unknown algorithm "chaos"`},
		{"unknown arbitration", `{"kind":"openloop","rate":0.1,"network":{"Arb":"lottery"}}`,
			`core: unknown arbitration "lottery"`},
		{"unknown size mix", `{"kind":"openloop","rate":0.1,"network":{"Sizes":"jumbo"}}`,
			`core: unknown packet size mix "jumbo"`},
		{"unknown reply model", `{"kind":"barrier","reply":{"type":"psychic"}}`,
			`core: unknown reply model "psychic"`},
		{"valid spec has no error", `{"kind":"openloop","rate":0.1}`,
			""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := check(tc.body); got != tc.want {
				t.Errorf("error = %q\n      want %q", got, tc.want)
			}
		})
	}
}
