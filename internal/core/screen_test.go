package core

import (
	"path/filepath"
	"testing"

	"noceval/internal/obs/ledger"
)

// quickPhases keeps the screened-sweep tests fast; the contract under test
// is phase-length independent.
var quickPhases = OpenLoopOpts{Warmup: 500, Measure: 1000, DrainLimit: 8000}

func TestScreenedCoreSweepBitIdentical(t *testing.T) {
	p := Baseline()
	// Bracket the mesh's ~0.4 saturation: the two deep-saturation rates
	// are above any sane analytic cut, so screening has work to do.
	rates := []float64{0.1, 0.2, 0.6, 0.7}
	want, err := OpenLoopSweepWith(p, rates, quickPhases)
	if err != nil {
		t.Fatal(err)
	}

	EnableScreening()
	defer DisableScreening()
	got, err := OpenLoopSweepWith(p, rates, quickPhases)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("screened sweep returned %d results, unscreened %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AvgLatency != want[i].AvgLatency || got[i].Stable != want[i].Stable ||
			got[i].Accepted != want[i].Accepted || got[i].MeasuredPackets != want[i].MeasuredPackets {
			t.Errorf("point %d (rate %.2f) differs under screening", i, rates[i])
		}
	}

	sum := ScreeningSummary()
	if sum.Considered != int64(len(rates)) {
		t.Errorf("considered = %d, want %d", sum.Considered, len(rates))
	}
	if sum.Simulated <= 0 || sum.Simulated > sum.Considered {
		t.Errorf("implausible simulated count %d of %d", sum.Simulated, sum.Considered)
	}
	if sum.Skipped+sum.Simulated < sum.Considered {
		t.Errorf("counters do not cover the sweep: simulated %d + skipped %d < considered %d",
			sum.Simulated, sum.Skipped, sum.Considered)
	}
}

func TestScreenedSweepWritesLedgerRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := EnableLedger(path); err != nil {
		t.Fatal(err)
	}
	EnableScreening()
	defer DisableScreening()
	rates := []float64{0.1, 0.7}
	if _, err := OpenLoopSweepWith(Baseline(), rates, quickPhases); err != nil {
		t.Fatal(err)
	}
	if err := DisableLedger(); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := ledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("%d undecodable ledger lines", dropped)
	}
	var sweep *ledger.Record
	for i := range recs {
		if recs[i].Kind == "sweep" {
			sweep = &recs[i]
		}
	}
	if sweep == nil {
		t.Fatal("no kind=sweep record appended for the screened sweep")
	}
	if sweep.ScreenConsidered != len(rates) {
		t.Errorf("record considered = %d, want %d", sweep.ScreenConsidered, len(rates))
	}
	if sweep.ScreenSimulated <= 0 {
		t.Error("record shows no simulations")
	}
	if sweep.Spec == "" {
		t.Error("sweep record missing spec hash")
	}
}

func TestScreeningOffByDefault(t *testing.T) {
	if ScreeningEnabled() {
		t.Fatal("screening must be off unless explicitly enabled")
	}
	if plan := screenPlan(Baseline()); plan != nil {
		t.Error("screenPlan returned a plan with screening disabled")
	}
}

func TestAnalyticEstimatorFromParams(t *testing.T) {
	est, err := AnalyticEstimator(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	// 8x8 mesh / DOR / uniform: channel bound 0.5, knee below it.
	if est.SatRate < 0.45 || est.SatRate > 0.55 {
		t.Errorf("estimator SatRate = %v, want ~0.5", est.SatRate)
	}
	if k := est.Knee(3); k <= 0 || k >= est.SatRate {
		t.Errorf("knee %v outside (0, %v)", k, est.SatRate)
	}

	bad := Baseline()
	bad.Topology = "hypercube9"
	if _, err := AnalyticEstimator(bad); err == nil {
		t.Error("unknown topology accepted")
	}
}
