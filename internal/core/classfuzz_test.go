package core_test

// Fuzz target for the QoS class-spec surface of the experiment spec. The
// class list rides inside the network parameters, so it inherits the
// parser's canonicalization contract — and adds one of its own: the
// class-free form must normalize to a nil slice, because the cache key
// is derived from the marshalled parameters and `[]` vs absent would
// re-key every pre-QoS cached experiment.

import (
	"encoding/json"
	"reflect"
	"testing"

	"noceval/internal/core"
	"noceval/internal/traffic"
)

func FuzzClassSpec(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"openloop","rate":0.2,"network":{"Classes":[{"name":"hi","share":0.3},{"name":"lo","share":0.7}]}}`,
		`{"network":{"VCs":4,"Classes":[{"name":"a","share":0.5,"pattern":"transpose","sizes":"bimodal"},{"name":"b","share":0.5}]}}`,
		`{"network":{"Classes":[],"ClassArb":"strict"}}`,
		`{"network":{"Classes":[{"name":"","share":-1}]}}`,
		`{"network":{"Classes":[{"name":"x","share":1e309,"pattern":"nosuch","sizes":"nosuch"}]}}`,
		`{"network":{"ClassArb":"classrr","Classes":[{"name":"a","share":0.2},{"name":"b","share":0.3},{"name":"c","share":0.5}]}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := core.ParseSpec(data)
		if err != nil {
			return
		}
		// Class-free specs must carry the canonical nil, never an empty
		// slice: both marshal differently only under reflect.DeepEqual,
		// but the fixed-point check below depends on it, and the cache
		// key depends on the omitempty encoding.
		if spec.Network.Classes != nil && len(spec.Network.Classes) == 0 {
			t.Fatalf("empty class list not normalized to nil: %+v", spec.Network)
		}
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := core.ParseSpec(enc)
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("class spec not canonical:\nfirst:  %+v\nsecond: %+v", spec, again)
		}
		// Resolving the class list must never panic; accepted lists
		// either build or report a clean error (share validation is the
		// runner's job, so a built list may still fail ValidateClasses —
		// that too must be an error, not a panic).
		classes, err := spec.Network.BuildClasses()
		if err == nil && len(classes) > 0 {
			_ = traffic.ValidateClasses(classes)
		}
	})
}
