package core

// Analytic sweep screening: when enabled, OpenLoopSweepWith compiles the
// queueing estimator of internal/analytic for the sweep's parameters and
// uses its predicted saturation knee as the cut for
// openloop.SweepScreenedWith — deep-saturation rates are kept out of the
// speculative parallel waves and only simulated if the sweep genuinely
// reaches them. Screening decides whether a simulation runs, never what it
// computes: results are bit-identical to the unscreened sweep, and cache
// keys are built from the unscreened run configuration alone, so screened
// and unscreened sessions share the same experiment-cache entries.
//
// Off by default; cmd/figures, cmd/ablations and cmd/noceval enable it via
// the -screen flag.

import (
	"fmt"
	"math"
	"sync/atomic"

	"noceval/internal/analytic"
	"noceval/internal/expcache"
	"noceval/internal/obs"
	"noceval/internal/obs/ledger"
	"noceval/internal/openloop"
	"noceval/internal/routing"
	"noceval/internal/topology"
)

var screenOn atomic.Bool

// screenTotals accumulates the process-wide screening outcome across every
// screened sweep since EnableScreening.
var screenTotals struct {
	considered, simulated, skipped, refined atomic.Int64
}

// EnableScreening turns analytic sweep screening on and resets the
// screening counters; DisableScreening turns it off.
func EnableScreening() {
	screenTotals.considered.Store(0)
	screenTotals.simulated.Store(0)
	screenTotals.skipped.Store(0)
	screenTotals.refined.Store(0)
	screenOn.Store(true)
}

// DisableScreening turns analytic sweep screening off.
func DisableScreening() { screenOn.Store(false) }

// ScreeningEnabled reports whether sweep screening is on.
func ScreeningEnabled() bool { return screenOn.Load() }

// ScreenSummary is the cumulative screening outcome since EnableScreening.
type ScreenSummary struct {
	Considered, Simulated, Skipped, Refined int64
}

// ScreeningSummary returns the cumulative screening counters.
func ScreeningSummary() ScreenSummary {
	return ScreenSummary{
		Considered: screenTotals.considered.Load(),
		Simulated:  screenTotals.simulated.Load(),
		Skipped:    screenTotals.skipped.Load(),
		Refined:    screenTotals.refined.Load(),
	}
}

// AnalyticEstimator compiles the contention-aware queueing estimator for
// the given parameters (see internal/analytic). It fails when the model
// cannot describe them — an unknown topology or routing name, or a pattern
// that does not expose destination weights.
func AnalyticEstimator(p NetworkParams) (*analytic.Estimator, error) {
	topo, err := topology.ByName(p.Topology)
	if err != nil {
		return nil, err
	}
	alg, err := routing.ByName(p.Routing)
	if err != nil {
		return nil, err
	}
	pat, err := p.BuildPattern()
	if err != nil {
		return nil, err
	}
	sizes, err := p.BuildSizes()
	if err != nil {
		return nil, err
	}
	m := analytic.Model{Topo: topo, Routing: alg, RouterDelay: p.RouterDelay, Seed: p.Seed}
	return m.NewEstimator(pat, sizes)
}

// AnalyticPriorityEstimator compiles the per-class priority-queueing
// estimator for parameters carrying a QoS class mix (see
// internal/analytic's PriorityEstimator). Classes with empty pattern or
// size names inherit the top-level values, exactly as the simulator does.
func AnalyticPriorityEstimator(p NetworkParams) (*analytic.PriorityEstimator, error) {
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("core: priority estimator needs QoS classes, got none")
	}
	topo, err := topology.ByName(p.Topology)
	if err != nil {
		return nil, err
	}
	alg, err := routing.ByName(p.Routing)
	if err != nil {
		return nil, err
	}
	classes, err := p.BuildClasses()
	if err != nil {
		return nil, err
	}
	for i := range classes {
		if classes[i].Pattern == nil {
			if classes[i].Pattern, err = p.BuildPattern(); err != nil {
				return nil, err
			}
		}
		if classes[i].Sizes == nil {
			if classes[i].Sizes, err = p.BuildSizes(); err != nil {
				return nil, err
			}
		}
	}
	m := analytic.Model{Topo: topo, Routing: alg, RouterDelay: p.RouterDelay, Seed: p.Seed}
	return m.NewPriorityEstimator(classes)
}

// screenCutMargin widens the predicted saturation knee into the sweep cut.
// The queueing knee slightly underestimates the simulator's saturation
// point on well-buffered networks; the margin keeps the first unstable
// rate inside the parallel waves (mispredictions are still correct either
// way — a too-low cut only costs serial refinement).
const screenCutMargin = 1.1

// screenPlan builds the screening plan for one sweep, or nil when
// screening is off or the analytic model cannot describe p (the sweep then
// silently degrades to its unscreened form rather than failing).
func screenPlan(p NetworkParams) *openloop.Screen {
	if !screenOn.Load() {
		return nil
	}
	est, err := AnalyticEstimator(p)
	if err != nil {
		return nil
	}
	knee := est.Knee(3)
	if knee <= 0 || math.IsInf(knee, 1) || math.IsNaN(knee) {
		return nil
	}
	return &openloop.Screen{Cut: knee * screenCutMargin, Stats: &openloop.ScreenStats{}}
}

// recordScreen folds one screened sweep's outcome into the process totals,
// the metrics registry, and (when enabled) the run ledger as one
// kind="sweep" record keyed by the parameter hash.
func recordScreen(p NetworkParams, st *openloop.ScreenStats) {
	screenTotals.considered.Add(int64(st.Considered))
	screenTotals.simulated.Add(int64(st.Simulated))
	screenTotals.skipped.Add(int64(st.Screened))
	screenTotals.refined.Add(int64(st.Refined))
	reg := obs.Default()
	reg.Counter("screen.considered").Add(int64(st.Considered))
	reg.Counter("screen.simulated").Add(int64(st.Simulated))
	reg.Counter("screen.skipped").Add(int64(st.Screened))
	reg.Counter("screen.refined").Add(int64(st.Refined))
	led := runLedger.Load()
	if led == nil {
		return
	}
	rec := ledger.Record{
		Kind:             "sweep",
		Engine:           "activeset",
		ScreenConsidered: st.Considered,
		ScreenSimulated:  st.Simulated,
		ScreenSkipped:    st.Screened,
		ScreenRefined:    st.Refined,
	}
	if k, err := expcache.KeyFor(CacheSchemaVersion, "sweep", p.cacheNorm()); err == nil {
		rec.Spec = k.Hash()
	}
	led.Append(rec)
}
