package core_test

// Fuzz target for the declarative experiment-spec parser. Specs are
// version-controlled JSON files fed to `noceval run -config`; the parser
// must never panic and must be canonicalizing: re-encoding an accepted
// spec and parsing it again yields the identical spec (otherwise a spec
// could drift — and re-key its cached experiments — across a
// marshal/unmarshal cycle).

import (
	"encoding/json"
	"reflect"
	"testing"

	"noceval/internal/core"
)

func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"openloop","rate":0.2}`,
		`{"kind":"batch","b":100,"m":4,"network":{"Topology":"mesh4x4"}}`,
		`{"kind":"sweep","rates":[0.1,0.2]}`,
		`{"kind":"exec","benchmark":"lu","clock":"75mhz","timer":true}`,
		`{"kind":"barrier","phases":2,"reply":{"type":"fixed","latency":20}}`,
		`{"network":{"Fault":{"DropRate":0.001,"Timeout":300}}}`,
		`{`, `[]`, `null`, `{"unknown":1}`, `{"kind":"openloop","rate":1e309}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := core.ParseSpec(data)
		if err != nil {
			return
		}
		if spec.Network.Topology == "" {
			t.Fatalf("accepted spec has no topology (defaults not applied): %+v", spec)
		}
		// Canonicalization: marshal and re-parse must be a fixed point.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := core.ParseSpec(enc)
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("spec not canonical:\nfirst:  %+v\nsecond: %+v", spec, again)
		}
	})
}
