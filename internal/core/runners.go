package core

import (
	"context"
	"fmt"

	"noceval/internal/closedloop"
	"noceval/internal/cmp"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/openloop"
	"noceval/internal/stats"
	"noceval/internal/topology"
	"noceval/internal/workload"
)

// Hooks carries the optional observability attachments of a run.
type Hooks struct {
	Obs      *obs.Observer
	Progress *obs.Progress
}

// OpenLoop runs one open-loop measurement at the given offered load
// (flits/cycle/node) under the Table I parameters.
func OpenLoop(p NetworkParams, rate float64) (*openloop.Result, error) {
	return OpenLoopWith(p, rate, OpenLoopOpts{})
}

// OpenLoopOpts overrides the phase lengths of an open-loop run; zero
// fields keep the openloop defaults (10k warmup, 10k measure, 100k drain
// limit). The golden regression figures use shortened phases so CI can
// re-simulate them on every push.
type OpenLoopOpts struct {
	Warmup, Measure, DrainLimit int64
	// Ctx, when non-nil, makes the run — or every point of a sweep built
	// on these options — cancellable: a cancelled run returns promptly
	// with an error wrapping the context's cause, and nothing is cached.
	// Never part of the experiment-cache key.
	Ctx context.Context
}

// OpenLoopWith is OpenLoop with explicit phase lengths.
func OpenLoopWith(p NetworkParams, rate float64, o OpenLoopOpts) (*openloop.Result, error) {
	cfg, err := openLoopConfig(p, o)
	if err != nil {
		return nil, err
	}
	cfg.Rate = rate
	return openLoopCached(p, cfg)
}

// OpenLoopObserved is OpenLoop with the observability layer attached.
// Observed runs bypass the experiment cache: their value is the metric,
// telemetry, and trace side effects, which a cache hit would skip.
func OpenLoopObserved(p NetworkParams, rate float64, h Hooks) (*openloop.Result, error) {
	if h == (Hooks{}) {
		return OpenLoop(p, rate)
	}
	cfg, err := openLoopConfig(p, OpenLoopOpts{})
	if err != nil {
		return nil, err
	}
	cfg.Rate = rate
	cfg.Obs = h.Obs
	cfg.Progress = h.Progress
	s := beginRun("openloop")
	if s != nil {
		cfg.OnEngine = s.onEngine
		cfg.Inspect = s.shards
	}
	res, err := openloop.Run(cfg)
	if res != nil {
		s.faults(res.Faults)
		s.classes(res.PerClass)
		s.finish(res.EndCycle, err)
	} else {
		s.finish(0, err)
	}
	return res, err
}

// openLoopConfig materializes the openloop configuration of p (without a
// rate, which sweeps fill per point).
func openLoopConfig(p NetworkParams, o OpenLoopOpts) (openloop.Config, error) {
	netCfg, err := p.Build()
	if err != nil {
		return openloop.Config{}, err
	}
	pat, err := p.BuildPattern()
	if err != nil {
		return openloop.Config{}, err
	}
	sizes, err := p.BuildSizes()
	if err != nil {
		return openloop.Config{}, err
	}
	classes, err := p.BuildClasses()
	if err != nil {
		return openloop.Config{}, err
	}
	return openloop.Config{
		Net:        netCfg,
		Pattern:    pat,
		Sizes:      sizes,
		Classes:    classes,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		DrainLimit: o.DrainLimit,
		Seed:       p.Seed,
		Ctx:        o.Ctx,
	}, nil
}

// openLoopCached runs one open-loop point through the experiment cache.
// The key is built from the plain parameter schema (not the materialized
// config) with phase lengths normalized to their effective values.
func openLoopCached(p NetworkParams, cfg openloop.Config) (*openloop.Result, error) {
	key := openLoopKey{
		Params:  p.cacheNorm(),
		Rate:    cfg.Rate,
		Warmup:  defaulted(cfg.Warmup, openloop.DefaultWarmup),
		Measure: defaulted(cfg.Measure, openloop.DefaultMeasure),
		Drain:   defaulted(cfg.DrainLimit, openloop.DefaultDrainLimit),
	}
	s := beginRun("openloop")
	s.spec(key)
	if s != nil {
		cfg.OnEngine = s.onEngine
		cfg.Inspect = s.shards
	}
	res, consulted, hit, err := cachedInfo("openloop", key, func() (*openloop.Result, error) {
		return openloop.Run(cfg)
	})
	s.cache(consulted, hit)
	if res != nil {
		s.faults(res.Faults)
		s.classes(res.PerClass)
		s.finish(res.EndCycle, err)
	} else {
		s.finish(0, err)
	}
	return res, err
}

// defaulted normalizes a zero "use the default" knob to its effective
// value so both spellings share a cache entry.
func defaulted(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}

// UtilizationHeatmap folds the sampled per-router crossbar utilization
// into a heatmap shaped like the topology: one cell per router, laid out
// row-major for 2D grids (meshes and tori) and as a single row otherwise.
func UtilizationHeatmap(t *obs.Telemetry, topo *topology.Topology) *stats.Heatmap {
	util := t.MeanXbarUtil(topo.N)
	rows, cols := 1, topo.N
	if topo.Dims == 2 {
		cols, rows = topo.K[0], topo.K[1]
	}
	m := stats.NewHeatmap(rows, cols)
	for node, u := range util {
		m.Set(node/cols, node%cols, u)
	}
	return m
}

// OpenLoopSweep produces a latency-vs-load curve over the given rates.
func OpenLoopSweep(p NetworkParams, rates []float64) ([]*openloop.Result, error) {
	return OpenLoopSweepWith(p, rates, OpenLoopOpts{})
}

// OpenLoopSweepWith is OpenLoopSweep with explicit phase lengths. Each
// point goes through the experiment cache individually inside the sweep's
// parallel waves, so a warm sweep costs only disk reads while a cold one
// still fans out across cores. With screening enabled (EnableScreening),
// predicted deep-saturation rates are kept out of the waves entirely; the
// reported results are bit-identical either way (see screen.go).
func OpenLoopSweepWith(p NetworkParams, rates []float64, o OpenLoopOpts) ([]*openloop.Result, error) {
	cfg, err := openLoopConfig(p, o)
	if err != nil {
		return nil, err
	}
	runner := func(c openloop.Config) (*openloop.Result, error) {
		return openLoopCached(p, c)
	}
	if scr := screenPlan(p); scr != nil {
		res, err := openloop.SweepScreenedWith(cfg, rates, runner, scr)
		recordScreen(p, scr.Stats)
		return res, err
	}
	return openloop.SweepWith(cfg, rates, runner)
}

// BatchParams are the closed-loop batch-model knobs layered on top of the
// network parameters.
type BatchParams struct {
	B   int // batch size b (default 1000, the paper's steady-state choice)
	M   int // max outstanding requests m
	NAR float64
	// Reply selects the reply-latency model; nil keeps the baseline
	// immediate reply.
	Reply closedloop.ReplyModel
	// Kernel enables the OS-traffic model.
	Kernel *closedloop.KernelConfig
	// Hooks attaches the observability layer.
	Hooks Hooks
	// Ctx, when non-nil, makes the run cancellable (see OpenLoopOpts.Ctx).
	// Never part of the experiment-cache key.
	Ctx context.Context
}

// Batch runs one closed-loop batch-model measurement.
func Batch(p NetworkParams, bp BatchParams) (*closedloop.BatchResult, error) {
	netCfg, err := p.Build()
	if err != nil {
		return nil, err
	}
	pat, err := p.BuildPattern()
	if err != nil {
		return nil, err
	}
	if bp.B == 0 {
		bp.B = 1000
	}
	if bp.M == 0 {
		bp.M = 1
	}
	s := beginRun("batch")
	run := func() (*closedloop.BatchResult, error) {
		cfg := closedloop.BatchConfig{
			Net:      netCfg,
			Pattern:  pat,
			B:        bp.B,
			M:        bp.M,
			NAR:      bp.NAR,
			Reply:    bp.Reply,
			Kernel:   bp.Kernel,
			Seed:     p.Seed,
			Obs:      bp.Hooks.Obs,
			Progress: bp.Hooks.Progress,
			Ctx:      bp.Ctx,
		}
		if s != nil {
			cfg.OnEngine = s.onEngine
			cfg.Inspect = s.shards
		}
		return closedloop.RunBatch(cfg)
	}
	record := func(res *closedloop.BatchResult, err error) (*closedloop.BatchResult, error) {
		if res != nil {
			s.faults(res.Faults)
			s.finish(res.Runtime, err)
		} else {
			s.finish(0, err)
		}
		return res, err
	}
	// Observed runs bypass the cache: their side effects (metrics,
	// telemetry, pf series) are the point.
	if bp.Hooks != (Hooks{}) {
		return record(run())
	}
	reply := ""
	if bp.Reply != nil {
		reply = bp.Reply.Name()
	}
	key := batchKey{Params: p.cacheNorm(), B: bp.B, M: bp.M, NAR: bp.NAR, Reply: reply, Kernel: bp.Kernel}
	s.spec(key)
	res, consulted, hit, err := cachedInfo("batch", key, run)
	s.cache(consulted, hit)
	return record(res, err)
}

// Barrier runs one closed-loop barrier-model measurement.
func Barrier(p NetworkParams, b, phases int) (*closedloop.BarrierResult, error) {
	return BarrierCtx(nil, p, b, phases)
}

// BarrierCtx is Barrier with a cancellation context (nil behaves like
// Barrier). A cancelled run returns promptly with an error wrapping the
// context's cause, and nothing is cached.
func BarrierCtx(ctx context.Context, p NetworkParams, b, phases int) (*closedloop.BarrierResult, error) {
	netCfg, err := p.Build()
	if err != nil {
		return nil, err
	}
	pat, err := p.BuildPattern()
	if err != nil {
		return nil, err
	}
	sizes, err := p.BuildSizes()
	if err != nil {
		return nil, err
	}
	key := barrierKey{Params: p.cacheNorm(), B: b, Phases: phases}
	s := beginRun("barrier")
	s.spec(key)
	res, consulted, hit, err := cachedInfo("barrier", key, func() (*closedloop.BarrierResult, error) {
		cfg := closedloop.BarrierConfig{
			Net:     netCfg,
			Pattern: pat,
			Sizes:   sizes,
			B:       b,
			Phases:  phases,
			Seed:    p.Seed,
			Ctx:     ctx,
		}
		if s != nil {
			cfg.OnEngine = s.onEngine
			cfg.Inspect = s.shards
		}
		return closedloop.RunBarrier(cfg)
	})
	s.cache(consulted, hit)
	if res != nil {
		s.faults(res.Faults)
		s.finish(res.Runtime, err)
	} else {
		s.finish(0, err)
	}
	return res, err
}

// ExecParams configure one execution-driven run.
type ExecParams struct {
	Benchmark string
	Clock     workload.Clock
	// Timer enables the periodic timer-interrupt model.
	Timer bool
	// Ideal runs on the ideal network instead of the configured one
	// (used for NAR characterization, Table III).
	Ideal bool
	// SampleInterval and CollectMatrix pass through to the CMP config.
	SampleInterval int64
	CollectMatrix  bool
	Seed           uint64
}

// Exec runs the execution-driven CMP simulation of one benchmark. The
// network parameters select the interconnect; the paper's Table II setup is
// a 4x4 mesh with 8 VCs and 4-flit buffers.
func Exec(p NetworkParams, ep ExecParams) (*cmp.Result, error) {
	return ExecCtx(nil, p, ep)
}

// ExecCtx is Exec with a cancellation context (nil behaves like Exec). A
// cancelled run returns promptly with an error wrapping the context's
// cause, and nothing is cached. The context never enters the cache key.
func ExecCtx(ctx context.Context, p NetworkParams, ep ExecParams) (*cmp.Result, error) {
	prof, err := workload.ByName(ep.Benchmark)
	if err != nil {
		return nil, err
	}
	// Normalize the effective seed (execProfile falls back to the network
	// seed) so both spellings share a cache entry.
	key := execKey{Params: p.cacheNorm(), Exec: ep}
	if key.Exec.Seed == 0 {
		key.Exec.Seed = p.Seed
	}
	s := beginRun("exec")
	s.spec(key)
	res, consulted, hit, err := cachedInfo("exec", key, func() (*cmp.Result, error) {
		return execProfile(ctx, p, ep, prof)
	})
	s.cache(consulted, hit)
	// The CMP system owns its own engine loop, so exec records carry no
	// stepped/fast-forwarded split.
	if res != nil {
		s.finish(res.Cycles, err)
	} else {
		s.finish(0, err)
	}
	return res, err
}

func execProfile(ctx context.Context, p NetworkParams, ep ExecParams, prof workload.Profile) (*cmp.Result, error) {
	cfg := cmp.DefaultConfig()
	cfg.Ctx = ctx
	cfg.SampleInterval = ep.SampleInterval
	cfg.CollectMatrix = ep.CollectMatrix
	if ep.Timer {
		cfg.TimerPeriod = prof.TimerPeriod(ep.Clock)
		cfg.TimerHandlerInsts = prof.TimerHandlerInsts
	}

	var fab cmp.Fabric
	if ep.Ideal {
		fab = cmp.NewIdealFabric()
	} else {
		netCfg, err := p.Build()
		if err != nil {
			return nil, err
		}
		if netCfg.Topo.N != cfg.Tiles {
			return nil, fmt.Errorf("core: execution-driven runs need a %d-node topology, got %s",
				cfg.Tiles, netCfg.Topo.Name)
		}
		fab = cmp.NetFabric{Network: network.New(netCfg)}
	}
	seed := ep.Seed
	if seed == 0 {
		seed = p.Seed
	}
	sys, err := cmp.NewSystem(cfg, fab, workload.Programs(prof, cfg.Tiles, seed))
	if err != nil {
		return nil, err
	}
	prof.Warm(sys, cfg.Tiles)
	res := sys.Run()
	if res.Canceled {
		return nil, fmt.Errorf("core: execution-driven run of %s canceled at cycle %d: %w",
			prof.Name, res.Cycles, context.Cause(ctx))
	}
	if !res.Completed {
		return res, fmt.Errorf("core: execution-driven run of %s hit the cycle limit", prof.Name)
	}
	return res, nil
}

// Table2Network returns the Table II interconnect parameters: a 4x4 mesh
// with 8 VCs, 4-flit buffers, DOR and the given router delay.
func Table2Network(tr int64) NetworkParams {
	return NetworkParams{
		Topology:    "mesh4x4",
		VCs:         8,
		BufDepth:    4,
		RouterDelay: tr,
		Routing:     "dor",
		Arb:         "rr",
		Pattern:     "uniform",
		Sizes:       "single",
		Seed:        1,
		Shards:      EnvShards(),
	}
}
