package core

import (
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/trace"
)

// TraceResult bundles a capture run with its replay.
type TraceResult struct {
	Trace *trace.Trace
	// CaptureRuntime is the closed-loop runtime on the capture network.
	CaptureRuntime int64
	Replay         *trace.ReplayResult
}

// CaptureAndReplay runs the trace-driven methodology end to end: a closed-
// loop batch workload (B transactions per node, at most M outstanding)
// executes on the capture network while every injected packet is recorded;
// the trace then replays on the replay network. Comparing
// Replay.Runtime against a direct closed-loop run on the replay network
// quantifies the causality the trace lost (§II).
func CaptureAndReplay(capture, replay NetworkParams, b, m int) (*TraceResult, error) {
	capCfg, err := capture.Build()
	if err != nil {
		return nil, err
	}
	pattern, err := capture.BuildPattern()
	if err != nil {
		return nil, err
	}
	net := network.New(capCfg)
	rec := trace.NewRecorder(capCfg.Topo.N)
	rec.Attach(net)

	// Drive the batch request/reply protocol directly on the recorded
	// network.
	type state struct{ sent, done, pf int }
	nodes := make([]state, capCfg.Topo.N)
	rng := sim.NewRNG(capture.Seed ^ 0x6a09e667f3bcc908)
	net.OnReceive = func(now int64, p *router.Packet) {
		switch p.Kind {
		case router.KindRequest:
			net.Send(net.NewPacket(p.Dst, p.Src, 1, router.KindReply))
		case router.KindReply:
			nodes[p.Dst].pf--
			nodes[p.Dst].done++
		}
	}
	for {
		finished := 0
		for i := range nodes {
			if nodes[i].sent < b && nodes[i].pf < m {
				dst := pattern.Dest(rng, i, len(nodes))
				net.Send(net.NewPacket(i, dst, 1, router.KindRequest))
				nodes[i].sent++
				nodes[i].pf++
			}
			if nodes[i].done >= b {
				finished++
			}
		}
		if finished == len(nodes) {
			break
		}
		net.Step()
	}

	repCfg, err := replay.Build()
	if err != nil {
		return nil, err
	}
	rep, err := trace.Replay(rec.Trace(), repCfg, 0)
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Trace:          rec.Trace(),
		CaptureRuntime: net.Now(),
		Replay:         rep,
	}, nil
}
