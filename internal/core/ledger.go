package core

// The run ledger: every runner in this package appends one structured
// record per execution — spec hash, cache outcome, wall time, simulated
// cycles, the engine's stepped/fast-forwarded split, and fault counters —
// when a ledger is enabled. The same scope also maintains the
// core.runs_started/finished counters in the process-wide registry, so the
// live export endpoint can show sweep progress even with the ledger off.

import (
	"runtime"
	"sync/atomic"
	"time"

	"noceval/internal/engine"
	"noceval/internal/expcache"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/obs/ledger"
	"noceval/internal/openloop"
)

// runLedger is the process-wide run ledger; nil means recording is off. It
// is an atomic pointer for the same reason expCache is: runners append
// from Parallel workers while tests enable and disable it around them.
var runLedger atomic.Pointer[ledger.Ledger]

// EnableLedger opens (creating if needed) the append-only run ledger at
// path; every subsequent OpenLoop, Batch, Barrier and Exec run appends one
// record. A torn final line from a crashed process is recovered on open.
func EnableLedger(path string) error {
	l, err := ledger.Open(path)
	if err != nil {
		return err
	}
	if prev := runLedger.Swap(l); prev != nil {
		prev.Close()
	}
	return nil
}

// DisableLedger stops recording and closes the ledger file.
func DisableLedger() error {
	return runLedger.Swap(nil).Close()
}

// LedgerAppends reports the records appended since EnableLedger, 0 when
// the ledger is off.
func LedgerAppends() int64 {
	return runLedger.Load().Appends()
}

// runScope collects one runner execution's telemetry. A nil scope (nothing
// is observing: no ledger, no default registry) is a no-op on every
// method, so the disabled path costs two atomic loads per run.
type runScope struct {
	led   *ledger.Ledger
	reg   *obs.Registry
	start time.Time
	rec   ledger.Record
}

// beginRun opens a scope for one execution of the given run mode, or nil
// when neither a ledger nor a default registry is installed.
func beginRun(kind string) *runScope {
	led := runLedger.Load()
	reg := obs.Default()
	if led == nil && reg == nil {
		return nil
	}
	reg.Counter("core.runs_started").Inc()
	return &runScope{
		led:   led,
		reg:   reg,
		start: time.Now(),
		rec:   ledger.Record{Kind: kind, Engine: "activeset"},
	}
}

// spec stamps the record with the content hash of the run's configuration
// — the same hash the experiment cache addresses results by, so ledger
// lines join against cache entries. Hashing only happens when a ledger
// will actually store the record.
func (s *runScope) spec(key any) {
	if s == nil || s.led == nil {
		return
	}
	if k, err := expcache.KeyFor(CacheSchemaVersion, s.rec.Kind, key); err == nil {
		s.rec.Spec = k.Hash()
	}
}

// cache records whether the experiment cache was consulted and whether it
// served the result.
func (s *runScope) cache(consulted, hit bool) {
	if s == nil {
		return
	}
	s.rec.Cached = consulted
	s.rec.Hit = hit
}

// onEngine is installed as the run config's OnEngine hook; it captures the
// stepped/fast-forwarded split. Never called on a cache hit (no engine
// runs).
func (s *runScope) onEngine(eo engine.Outcome) {
	if s == nil {
		return
	}
	s.rec.Stepped = eo.Stepped
	s.rec.Skipped = eo.Skipped
	s.rec.SkipRatio = eo.SkipRatio()
}

// shards is installed as the run config's Inspect hook; it captures the
// sharded-simulation shape (tile count, mean load imbalance) off the
// network before the run mode releases it. Sequential runs leave the
// fields zero so the record omits them.
func (s *runScope) shards(net *network.Network) {
	if s == nil {
		return
	}
	if k, _, imb := net.ShardStats(); k > 1 {
		s.rec.Shards = k
		s.rec.ShardImbalance = imb
	}
}

// faults copies a faulted run's injection/recovery counters; a nil Stats
// (fault-free run) is a no-op.
func (s *runScope) faults(fs *fault.Stats) {
	if s == nil || fs == nil {
		return
	}
	s.rec.FaultInjected = fs.CorruptInjected + fs.DropInjected
	s.rec.FaultRetried = fs.Retried
	s.rec.FaultDead = fs.Abandoned
}

// classes copies a multi-class run's per-QoS-class outcome into the
// record's parallel arrays; a class-free run (nil PerClass) is a no-op so
// its ledger line stays byte-identical to schema 1.
func (s *runScope) classes(per []openloop.ClassResult) {
	if s == nil || len(per) == 0 {
		return
	}
	s.rec.ClassNames = make([]string, len(per))
	s.rec.ClassInjected = make([]int64, len(per))
	s.rec.ClassDelivered = make([]int64, len(per))
	s.rec.ClassAvgLatency = make([]float64, len(per))
	for i, cr := range per {
		s.rec.ClassNames[i] = cr.Name
		s.rec.ClassInjected[i] = cr.Injected
		s.rec.ClassDelivered[i] = cr.Delivered
		s.rec.ClassAvgLatency[i] = cr.AvgLatency
	}
}

// finish completes the record — wall time, simulated cycles, pipeline
// throughput, worker-pool snapshot — and appends it to the ledger.
func (s *runScope) finish(cycles int64, err error) {
	if s == nil {
		return
	}
	s.reg.Counter("core.runs_finished").Inc()
	if s.led == nil {
		return
	}
	wall := time.Since(s.start)
	s.rec.Time = s.start.UTC().Format(time.RFC3339Nano)
	s.rec.WallNS = wall.Nanoseconds()
	s.rec.Cycles = cycles
	if wall > 0 && cycles > 0 {
		s.rec.CyclesPerSec = float64(cycles) / wall.Seconds()
	}
	s.rec.Workers = runtime.GOMAXPROCS(0)
	if s.reg != nil {
		s.rec.ParWaves = s.reg.Counter("par.waves").Value()
		s.rec.ParTasks = s.reg.Counter("par.tasks_done").Value()
	}
	if err != nil {
		s.rec.Err = err.Error()
	}
	s.led.Append(s.rec)
}
