package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelRunsAllTasks(t *testing.T) {
	var count atomic.Int64
	done := make([]atomic.Bool, 100)
	err := Parallel(100, 8, func(i int) error {
		count.Add(1)
		done[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d tasks", count.Load())
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d skipped", i)
		}
	}
}

func TestParallelReportsFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := Parallel(20, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if err := Parallel(0, 4, func(int) error { return boom }); err != nil {
		t.Errorf("zero tasks returned %v", err)
	}
}

func TestParallelDefaultsWorkers(t *testing.T) {
	if err := Parallel(3, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Parallel(3, 100, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestBatchGridMatchesSerialRuns(t *testing.T) {
	variants := []NetworkParams{Baseline()}
	p2 := Baseline()
	p2.RouterDelay = 2
	variants = append(variants, p2)
	ms := []int{1, 4}

	grid, err := BatchGrid(variants, ms, BatchParams{B: 100})
	if err != nil {
		t.Fatal(err)
	}
	for vi, variant := range variants {
		for mi, m := range ms {
			serial, err := Batch(variant, BatchParams{B: 100, M: m})
			if err != nil {
				t.Fatal(err)
			}
			cell := grid[vi][mi]
			if cell == nil {
				t.Fatalf("missing cell %d/%d", vi, mi)
			}
			if cell.Runtime != serial.Runtime {
				t.Errorf("%s m=%d: grid %d vs serial %d (determinism broken in parallel)",
					variant, m, cell.Runtime, serial.Runtime)
			}
		}
	}
}

func TestOpenLoopGrid(t *testing.T) {
	grid, err := OpenLoopGrid([]NetworkParams{Baseline()}, []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if grid[0][0].AvgLatency >= grid[0][1].AvgLatency {
		t.Errorf("latency did not rise with load: %.2f -> %.2f",
			grid[0][0].AvgLatency, grid[0][1].AvgLatency)
	}
	if !grid[0][0].Stable || !grid[0][1].Stable {
		t.Error("low loads reported unstable")
	}
}

func TestBatchGridPropagatesErrors(t *testing.T) {
	bad := Baseline()
	bad.Routing = "zigzag"
	if _, err := BatchGrid([]NetworkParams{bad}, []int{1}, BatchParams{B: 10}); err == nil {
		t.Error("invalid variant accepted")
	}
}
