package network

import (
	"testing"

	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// delivery records one OnReceive callback for cross-run comparison.
type delivery struct {
	cycle    int64
	src, dst int
	size     int
}

// driveBursty pushes a bursty pseudo-random load through the network for
// the given number of cycles: short bursts separated by idle stretches, so
// the active set repeatedly grows, drains, and empties mid-run. It returns
// the delivery log. check is called after every step.
func driveBursty(t *testing.T, n *Network, cycles int64, seed uint64, check func()) []delivery {
	t.Helper()
	var log []delivery
	n.OnReceive = func(now int64, p *router.Packet) {
		log = append(log, delivery{now, p.Src, p.Dst, p.Size})
	}
	trng := sim.NewRNG(seed)
	for c := int64(0); c < cycles; c++ {
		// ~12-cycle bursts every 64 cycles: mostly idle.
		if c%64 < 12 {
			for node := 0; node < n.Nodes(); node++ {
				if trng.Bernoulli(0.2) {
					dst := trng.Intn(n.Nodes())
					size := 1 + trng.Intn(4)
					n.Send(n.NewPacket(node, dst, size, router.KindData))
				}
			}
		}
		n.Step()
		if check != nil {
			check()
		}
	}
	return log
}

// TestActiveSetMatchesFullScan drives two identically seeded networks —
// one on the legacy full-scan path, one on the activity-tracked path —
// with the same bursty load and requires bit-identical behaviour: every
// delivery at the same cycle, the same aggregate stats, and the same
// network RNG end-state (Valiant routing draws an intermediate per packet,
// so any divergence in draw order shows up immediately).
func TestActiveSetMatchesFullScan(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	mk := func() *Network {
		return New(Config{
			Topo:    topo,
			Routing: routing.Valiant{},
			Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
			Seed:    7,
		})
	}
	full := mk()
	full.SetFullScan(true)
	active := mk()

	logFull := driveBursty(t, full, 4000, 99, nil)
	logActive := driveBursty(t, active, 4000, 99, nil)

	if len(logFull) != len(logActive) {
		t.Fatalf("deliveries: fullscan %d, activeset %d", len(logFull), len(logActive))
	}
	for i := range logFull {
		if logFull[i] != logActive[i] {
			t.Fatalf("delivery %d differs: fullscan %+v, activeset %+v", i, logFull[i], logActive[i])
		}
	}
	fs, fa, ffi, ffe := full.Stats()
	as, aa, afi, afe := active.Stats()
	if fs != as || fa != aa || ffi != afi || ffe != afe {
		t.Fatalf("stats differ: fullscan (%d %d %d %d), activeset (%d %d %d %d)",
			fs, fa, ffi, ffe, as, aa, afi, afe)
	}
	if g, w := active.RNG().Uint64(), full.RNG().Uint64(); g != w {
		t.Fatalf("network RNG diverged: activeset next draw %d, fullscan %d", g, w)
	}
	if err := active.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// activeBit reports whether router id is in its tile's active set.
func (n *Network) activeBit(id int) bool {
	tl := &n.tiles[n.tileOf[id]]
	bit := id - tl.lo
	return tl.active[bit>>6]&(1<<uint(bit&63)) != 0
}

// checkActiveInvariant asserts the invariant the active-set optimization
// rests on, across however many tiles the network has: every non-idle
// router is in its tile's active set, the per-tile counts match the
// bitmaps, and every node with a non-empty source queue has its
// srcPending bit set.
func checkActiveInvariant(t *testing.T, n *Network) {
	t.Helper()
	count := 0
	for i, r := range n.routers {
		bit := n.activeBit(i)
		if bit {
			count++
		}
		if !r.Idle() && !bit {
			t.Fatalf("cycle %d: router %d busy (occ=%d inflight=%d credits pending) but not in active set",
				n.Now(), i, r.Occupancy(), r.InFlight())
		}
	}
	if count != n.ActiveCount() {
		t.Fatalf("cycle %d: ActiveCount = %d, bitmaps have %d", n.Now(), n.ActiveCount(), count)
	}
	for node := range n.srcQ {
		tl := &n.tiles[n.tileOf[node]]
		bit := node - tl.lo
		if n.SourceQueueLen(node) > 0 && tl.srcPending[bit>>6]&(1<<uint(bit&63)) == 0 {
			t.Fatalf("cycle %d: node %d has queued flits but no srcPending bit", n.Now(), node)
		}
	}
}

// TestActiveSetInvariant checks, after every cycle, the invariant the
// active-set optimization rests on: every router with buffered flits,
// pipeline flits, or pending credits is in the active set, and every node
// with a non-empty source queue has its srcPending bit set. A violated
// invariant means a router could make progress while being skipped.
func TestActiveSetInvariant(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	n := New(Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    3,
	})
	driveBursty(t, n, 2000, 5, func() { checkActiveInvariant(t, n) })

	// Drain completely: the set must empty, making Quiescent O(tiles)-true.
	end, drained := n.RunUntilQuiescent(100000)
	if !drained {
		t.Fatalf("network failed to drain by cycle %d", end)
	}
	if n.ActiveCount() != 0 {
		t.Fatalf("drained network has activeCount = %d", n.ActiveCount())
	}
	for ti := range n.tiles {
		for w, word := range n.tiles[ti].active {
			if word != 0 {
				t.Fatalf("drained network has active bits in tile %d word %d: %#x", ti, w, word)
			}
		}
	}
	if !n.Quiescent() {
		t.Fatal("drained network not Quiescent")
	}
}

// TestSkipToAdvancesClock checks the fast-forward entry points: SkipTo on
// a quiescent network jumps the clock, and panics on a busy one.
func TestSkipToAdvancesClock(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n := New(Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    1,
	})
	n.SkipTo(500)
	if n.Now() != 500 {
		t.Fatalf("Now = %d after SkipTo(500)", n.Now())
	}
	n.Send(n.NewPacket(0, 15, 2, router.KindData))
	defer func() {
		if recover() == nil {
			t.Fatal("SkipTo on a non-quiescent network did not panic")
		}
	}()
	n.SkipTo(1000)
}
