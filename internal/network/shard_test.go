package network

import (
	"fmt"
	"testing"

	"noceval/internal/fault"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
)

// compareRuns drives two identically seeded networks with the same bursty
// load and requires bit-identical behaviour: every delivery at the same
// cycle, the same aggregate stats, the same network RNG end-state, and a
// clean conservation check on both.
func compareRuns(t *testing.T, ref, got *Network, cycles int64, seed uint64, check func()) {
	t.Helper()
	logRef := driveBursty(t, ref, cycles, seed, nil)
	logGot := driveBursty(t, got, cycles, seed, check)
	if len(logRef) != len(logGot) {
		t.Fatalf("deliveries: ref %d, got %d", len(logRef), len(logGot))
	}
	for i := range logRef {
		if logRef[i] != logGot[i] {
			t.Fatalf("delivery %d differs: ref %+v, got %+v", i, logRef[i], logGot[i])
		}
	}
	rs, ra, rfi, rfe := ref.Stats()
	gs, ga, gfi, gfe := got.Stats()
	if rs != gs || ra != ga || rfi != gfi || rfe != gfe {
		t.Fatalf("stats differ: ref (%d %d %d %d), got (%d %d %d %d)",
			rs, ra, rfi, rfe, gs, ga, gfi, gfe)
	}
	if g, w := got.RNG().Uint64(), ref.RNG().Uint64(); g != w {
		t.Fatalf("network RNG diverged: got next draw %d, ref %d", g, w)
	}
	if err := got.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := ref.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSequential is the tentpole determinism gate at the
// network layer: for every topology shape and shard count, the sharded
// cycle loop must be bit-identical to the sequential one — same delivery
// log, stats, and RNG end-state (Valiant draws an intermediate per
// packet, so any reordering of packet creation shows up immediately).
func TestShardedMatchesSequential(t *testing.T) {
	shapes := []struct {
		name string
		topo *topology.Topology
	}{
		{"mesh8x8", topology.NewMesh(8, 8)},
		{"torus8x8", topology.NewTorus(8, 8)},
	}
	for _, shape := range shapes {
		for _, shards := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", shape.name, shards), func(t *testing.T) {
				mk := func(s int) *Network {
					return New(Config{
						Topo:    shape.topo,
						Routing: routing.Valiant{},
						Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
						Seed:    7,
						Shards:  s,
					})
				}
				seq := mk(1)
				shd := mk(shards)
				defer shd.Close()
				if got, _, _ := shd.ShardStats(); got < 2 {
					t.Fatalf("ShardStats shards = %d, want >= 2", got)
				}
				compareRuns(t, seq, shd, 3000, 99, nil)
			})
		}
	}
}

// TestShardedActiveSetInvariant holds the per-cycle active-set invariant
// under the sharded loop: after every Step, every non-idle router is in
// its tile's active set and the per-tile counters match the bitmaps.
func TestShardedActiveSetInvariant(t *testing.T) {
	n := New(Config{
		Topo:    topology.NewMesh(8, 8),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    3,
		Shards:  4,
	})
	defer n.Close()
	driveBursty(t, n, 2000, 5, func() { checkActiveInvariant(t, n) })
	end, drained := n.RunUntilQuiescent(100000)
	if !drained {
		t.Fatalf("sharded network failed to drain by cycle %d", end)
	}
	if n.ActiveCount() != 0 {
		t.Fatalf("drained network has activeCount = %d", n.ActiveCount())
	}
}

// TestShardedOutboxesDrainEachCycle: the cross-tile outboxes must be
// empty between Steps — a leftover entry would be a flit or credit the
// barrier schedule lost track of.
func TestShardedOutboxesDrainEachCycle(t *testing.T) {
	n := New(Config{
		Topo:    topology.NewMesh(8, 8),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    11,
		Shards:  4,
	})
	defer n.Close()
	driveBursty(t, n, 1500, 21, func() {
		for ti := range n.tiles {
			tl := &n.tiles[ti]
			if len(tl.ejectOut) != 0 || len(tl.flitOut) != 0 || len(tl.creditOut) != 0 {
				t.Fatalf("cycle %d tile %d: outboxes not drained (eject %d, flit %d, credit %d)",
					n.Now(), ti, len(tl.ejectOut), len(tl.flitOut), len(tl.creditOut))
			}
		}
	})
}

// TestShardedMatchesSequentialUnderFaults extends the determinism gate to
// fault injection: drops, corruption, outages, a router kill, and the
// recovery NIC all draw from shared serial state, so the faulted sharded
// loop (serial deliver, parallel compute) must still be bit-identical.
func TestShardedMatchesSequentialUnderFaults(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mk := func(s int) *Network {
				return New(Config{
					Topo:    topo,
					Routing: routing.DOR{},
					Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
					Seed:    13,
					Shards:  s,
					Fault: &fault.Params{
						DropRate:    0.002,
						CorruptRate: 0.002,
						Timeout:     400,
						MaxRetries:  3,
						Outages: []fault.Outage{
							{Node: 9, Port: 1, From: 200, Until: 500},
						},
						Kills: []fault.Kill{{Node: 54, At: 900}},
					},
				})
			}
			seq := mk(1)
			shd := mk(shards)
			defer shd.Close()
			compareRuns(t, seq, shd, 2500, 77, nil)
		})
	}
}

// TestShardedFullScanForcesSequential: SetFullScan on a sharded network
// must fall back to the reference loop (and stay bit-identical), because
// full scan is the determinism regression's reference side.
func TestShardedFullScanForcesSequential(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	mk := func(s int, full bool) *Network {
		n := New(Config{
			Topo:    topo,
			Routing: routing.Valiant{},
			Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
			Seed:    7,
			Shards:  s,
		})
		n.SetFullScan(full)
		return n
	}
	seq := mk(1, false)
	shdFull := mk(4, true)
	defer shdFull.Close()
	compareRuns(t, seq, shdFull, 2000, 99, nil)
}
