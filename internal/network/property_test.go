package network

import (
	"testing"
	"testing/quick"

	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// TestRandomConfigConservation drives randomly drawn configurations with
// random traffic and checks the global invariants: every packet arrives
// exactly once, flit accounting balances, and the network drains.
func TestRandomConfigConservation(t *testing.T) {
	topos := []func() *topology.Topology{
		func() *topology.Topology { return topology.NewMesh(4, 4) },
		func() *topology.Topology { return topology.NewMesh(8, 8) },
		func() *topology.Topology { return topology.NewTorus(4, 4) },
		func() *topology.Topology { return topology.NewRing(16) },
	}
	algs := routing.All()

	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		topo := topos[rng.Intn(len(topos))]()
		alg := algs[rng.Intn(len(algs))]
		cfg := Config{
			Topo:    topo,
			Routing: alg,
			Router: router.Config{
				VCs:      alg.NumClasses(topo) + rng.Intn(3),
				BufDepth: 1 + rng.Intn(8),
				Delay:    int64(1 + rng.Intn(4)),
				Arb:      router.ArbPolicy(rng.Intn(2)),
			},
			Seed: seed,
		}
		n := New(cfg)
		arrived := map[uint64]int{}
		n.OnReceive = func(now int64, p *router.Packet) { arrived[p.ID]++ }
		sent := map[uint64]bool{}
		load := 0.1 + 0.4*rng.Float64()
		for cycle := 0; cycle < 400; cycle++ {
			for node := 0; node < topo.N; node++ {
				if rng.Bernoulli(load) {
					p := n.NewPacket(node, rng.Intn(topo.N), 1+rng.Intn(4), router.KindData)
					n.Send(p)
					sent[p.ID] = true
				}
			}
			n.Step()
		}
		if _, ok := n.RunUntilQuiescent(500000); !ok {
			t.Logf("seed %d: did not drain (%s on %s)", seed, alg.Name(), topo.Name)
			return false
		}
		if err := n.CheckConservation(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(arrived) != len(sent) {
			t.Logf("seed %d: %d sent, %d arrived", seed, len(sent), len(arrived))
			return false
		}
		for id, count := range arrived {
			if count != 1 || !sent[id] {
				t.Logf("seed %d: packet %d arrived %d times", seed, id, count)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestMAEscapeCommitRegression replays the exact random configuration that
// exposed the minimal-adaptive deadlock: before escape channels were made
// one-way ("once on escape, stay on escape"), packets could leave the
// escape network and re-enter adaptive channels, creating cyclic extended
// dependencies between the X and Y escape channels.
func TestMAEscapeCommitRegression(t *testing.T) {
	const seed = uint64(0x724e33c25c6deb33)
	rng := sim.NewRNG(seed)
	topos := []func() *topology.Topology{
		func() *topology.Topology { return topology.NewMesh(4, 4) },
		func() *topology.Topology { return topology.NewMesh(8, 8) },
		func() *topology.Topology { return topology.NewTorus(4, 4) },
		func() *topology.Topology { return topology.NewRing(16) },
	}
	algs := routing.All()
	topo := topos[rng.Intn(len(topos))]()
	alg := algs[rng.Intn(len(algs))]
	cfg := Config{
		Topo:    topo,
		Routing: alg,
		Router: router.Config{
			VCs:      alg.NumClasses(topo) + rng.Intn(3),
			BufDepth: 1 + rng.Intn(8),
			Delay:    int64(1 + rng.Intn(4)),
			Arb:      router.ArbPolicy(rng.Intn(2)),
		},
		Seed: seed,
	}
	n := New(cfg)
	load := 0.1 + 0.4*rng.Float64()
	sent, arrived := 0, 0
	n.OnReceive = func(now int64, p *router.Packet) { arrived++ }
	for cycle := 0; cycle < 400; cycle++ {
		for node := 0; node < topo.N; node++ {
			if rng.Bernoulli(load) {
				n.Send(n.NewPacket(node, rng.Intn(topo.N), 1+rng.Intn(4), router.KindData))
				sent++
			}
		}
		n.Step()
	}
	if _, ok := n.RunUntilQuiescent(500000); !ok {
		t.Fatalf("regression config deadlocked again (%s on %s)", alg.Name(), topo.Name)
	}
	if arrived != sent {
		t.Errorf("arrived %d, sent %d", arrived, sent)
	}
}

// TestMANoDeadlockUnderSustainedSaturation hammers minimal-adaptive routing
// with minimal VCs and tiny buffers — the regime where the escape channel
// is the only thing standing between the network and deadlock.
func TestMANoDeadlockUnderSustainedSaturation(t *testing.T) {
	for _, mk := range []func() *topology.Topology{
		func() *topology.Topology { return topology.NewMesh(8, 8) },
		func() *topology.Topology { return topology.NewTorus(4, 4) },
	} {
		topo := mk()
		alg := routing.MinimalAdaptive{}
		n := New(Config{
			Topo:    topo,
			Routing: alg,
			Router: router.Config{
				VCs:      alg.NumClasses(topo), // no spare VCs at all
				BufDepth: 1,
				Delay:    1,
			},
			Seed: 99,
		})
		rng := n.RNG()
		sent, arrived := 0, 0
		n.OnReceive = func(now int64, p *router.Packet) { arrived++ }
		for cycle := 0; cycle < 5000; cycle++ {
			for node := 0; node < topo.N; node++ {
				if rng.Bernoulli(0.6) {
					n.Send(n.NewPacket(node, rng.Intn(topo.N), 1+rng.Intn(4), router.KindData))
					sent++
				}
			}
			n.Step()
		}
		if _, ok := n.RunUntilQuiescent(2000000); !ok {
			t.Fatalf("%s: MA deadlocked under saturation", topo.Name)
		}
		if arrived != sent {
			t.Errorf("%s: arrived %d, sent %d", topo.Name, arrived, sent)
		}
		if err := n.CheckConservation(); err != nil {
			t.Error(err)
		}
	}
}

// TestPacketsNeverMisdelivered checks that every packet reaches exactly its
// addressed destination.
func TestPacketsNeverMisdelivered(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	for _, alg := range routing.All() {
		n := New(Config{
			Topo:    topo,
			Routing: alg,
			Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
			Seed:    77,
		})
		want := map[uint64]int{}
		n.OnReceive = func(now int64, p *router.Packet) {
			if want[p.ID] != p.Dst {
				t.Errorf("%s: packet %d delivered to %d, addressed to %d", alg.Name(), p.ID, p.Dst, want[p.ID])
			}
		}
		rng := n.RNG()
		for i := 0; i < 500; i++ {
			p := n.NewPacket(rng.Intn(16), rng.Intn(16), 1+rng.Intn(3), router.KindData)
			want[p.ID] = p.Dst
			n.Send(p)
			n.Step()
		}
		if _, ok := n.RunUntilQuiescent(100000); !ok {
			t.Fatalf("%s: did not drain", alg.Name())
		}
	}
}

// TestFlitOrderWithinPacketPreserved verifies wormhole integrity: a
// packet's flits arrive in sequence with no interleaving gaps at the
// destination (the tail is last, and arrival implies all flits ejected).
func TestFlitOrderWithinPacketPreserved(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n := New(Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 2, Delay: 1},
		Seed:    5,
	})
	// ArriveTime is set only when the tail flit ejects, so at any arrival
	// the global ejected-flit count must cover every arrived packet's full
	// size (flits of concurrent packets interleave, but never run ahead).
	var arrivedFlits int64
	n.OnReceive = func(now int64, p *router.Packet) {
		arrivedFlits += int64(p.Size)
		_, _, _, ejected := n.Stats()
		if ejected < arrivedFlits {
			t.Errorf("packet %d arrived before all its flits ejected (%d < %d)", p.ID, ejected, arrivedFlits)
		}
	}
	rng := n.RNG()
	for i := 0; i < 200; i++ {
		n.Send(n.NewPacket(rng.Intn(16), rng.Intn(16), 4, router.KindData))
		n.Step()
		n.Step()
	}
	if _, ok := n.RunUntilQuiescent(100000); !ok {
		t.Fatal("did not drain")
	}
}

// TestChannelLoadsAccounting checks the utilization report against flit
// totals.
func TestChannelLoadsAccounting(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n := New(Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 8, Delay: 1},
		Seed:    6,
	})
	// One packet per node pair along the top row: 0 -> 3 crosses three
	// +x channels.
	n.Send(n.NewPacket(0, 3, 1, router.KindData))
	if _, ok := n.RunUntilQuiescent(10000); !ok {
		t.Fatal("did not drain")
	}
	loads := n.ChannelLoads()
	carried := int64(0)
	for _, l := range loads {
		carried += l.Flits
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("utilization %v out of range", l.Utilization)
		}
	}
	if carried != 3 {
		t.Errorf("channels carried %d flits, want 3 (three hops)", carried)
	}
	if loads[0].Flits < loads[len(loads)-1].Flits {
		t.Error("channel loads not sorted descending")
	}
	if n.MaxChannelUtilization() != loads[0].Utilization {
		t.Error("MaxChannelUtilization inconsistent")
	}
}

// TestDeterminism: identical seeds must give identical results.
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		topo := topology.NewTorus(4, 4)
		n := New(Config{
			Topo:    topo,
			Routing: routing.ROMM{},
			Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 2},
			Seed:    123,
		})
		var latSum int64
		n.OnReceive = func(now int64, p *router.Packet) { latSum += p.Latency() }
		rng := n.RNG()
		for i := 0; i < 300; i++ {
			for node := 0; node < 16; node++ {
				if rng.Bernoulli(0.3) {
					n.Send(n.NewPacket(node, rng.Intn(16), 1, router.KindData))
				}
			}
			n.Step()
		}
		n.RunUntilQuiescent(100000)
		return latSum, n.Now()
	}
	l1, c1 := run()
	l2, c2 := run()
	if l1 != l2 || c1 != c2 {
		t.Errorf("non-deterministic: (%d, %d) vs (%d, %d)", l1, c1, l2, c2)
	}
}
