package network

import (
	"testing"

	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/stats"
	"noceval/internal/topology"
)

func testConfig(t *topology.Topology, alg routing.Algorithm, vcs, depth int, tr int64) Config {
	return Config{
		Topo:    t,
		Routing: alg,
		Router:  router.Config{VCs: vcs, BufDepth: depth, Delay: tr},
		Seed:    1,
	}
}

// deliverOne sends a single packet and returns it after arrival.
func deliverOne(t *testing.T, n *Network, src, dst, size int) *router.Packet {
	t.Helper()
	var got *router.Packet
	n.OnReceive = func(now int64, p *router.Packet) { got = p }
	p := n.NewPacket(src, dst, size, router.KindData)
	n.Send(p)
	for i := 0; i < 10000 && got == nil; i++ {
		n.Step()
	}
	if got == nil {
		t.Fatalf("packet %d->%d never arrived", src, dst)
	}
	if got != p {
		t.Fatalf("arrived packet is not the sent packet")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSinglePacketLatencyMesh(t *testing.T) {
	// On an idle mesh with tr=1 and 1-cycle links, each hop costs 2 cycles
	// and ejection adds the router pipeline (tr) once more.
	topo := topology.NewMesh(8, 8)
	for _, tc := range []struct {
		src, dst int
		hops     int
	}{
		{0, 1, 1},   // one hop +x
		{0, 7, 7},   // across the top row
		{0, 63, 14}, // corner to corner
		{9, 9, 0},   // self traffic
		{63, 0, 14}, // reverse corner to corner
		{8, 16, 1},  // one hop +y
	} {
		n := New(testConfig(topo, routing.DOR{}, 2, 8, 1))
		p := deliverOne(t, n, tc.src, tc.dst, 1)
		if p.Hops != tc.hops {
			t.Errorf("%d->%d: hops = %d, want %d", tc.src, tc.dst, p.Hops, tc.hops)
		}
		// Latency: inject at cycle 0, SA the same cycle, each hop costs
		// tr+link=2 cycles, and ejection costs the router pipeline tr=1.
		want := int64(tc.hops*2 + 1)
		if p.Latency() != want {
			t.Errorf("%d->%d: latency = %d, want %d", tc.src, tc.dst, p.Latency(), want)
		}
	}
}

func TestRouterDelayScalesZeroLoadLatency(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	lat := map[int64]int64{}
	for _, tr := range []int64{1, 2, 4} {
		n := New(testConfig(topo, routing.DOR{}, 2, 8, tr))
		p := deliverOne(t, n, 0, 63, 1)
		lat[tr] = p.Latency()
	}
	// Hop latency is tr+1, so 14 hops cost 14*(tr+1); ratios ~1.5 and ~2.5.
	r2 := float64(lat[2]) / float64(lat[1])
	r4 := float64(lat[4]) / float64(lat[1])
	if r2 < 1.4 || r2 > 1.6 {
		t.Errorf("tr=2/tr=1 latency ratio = %.3f, want ~1.5", r2)
	}
	if r4 < 2.3 || r4 > 2.7 {
		t.Errorf("tr=4/tr=1 latency ratio = %.3f, want ~2.5", r4)
	}
}

func TestMultiFlitPacket(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n := New(testConfig(topo, routing.DOR{}, 2, 8, 1))
	p := deliverOne(t, n, 0, 15, 4)
	// Serialization adds size-1 cycles to the tail's arrival.
	want := int64(6*2+1) + 3
	if p.Latency() != want {
		t.Errorf("4-flit latency = %d, want %d", p.Latency(), want)
	}
}

func TestTorusWrapAndDateline(t *testing.T) {
	topo := topology.NewTorus(8, 8)
	n := New(testConfig(topo, routing.DOR{}, 2, 8, 1))
	// 0 -> 7 should take the 1-hop wraparound, not 7 hops.
	p := deliverOne(t, n, 0, 7, 1)
	if p.Hops != 1 {
		t.Errorf("torus 0->7 hops = %d, want 1 (wraparound)", p.Hops)
	}
}

func TestRingRouting(t *testing.T) {
	topo := topology.NewRing(8)
	n := New(testConfig(topo, routing.DOR{}, 2, 8, 1))
	p := deliverOne(t, n, 0, 5, 1)
	if p.Hops != 3 {
		t.Errorf("ring 0->5 hops = %d, want 3 (short way)", p.Hops)
	}
}

func TestAllAlgorithmsDeliverAllPairs(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	for _, alg := range routing.All() {
		n := New(Config{
			Topo:    topo,
			Routing: alg,
			Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1},
			Seed:    7,
		})
		arrived := 0
		n.OnReceive = func(now int64, p *router.Packet) { arrived++ }
		want := 0
		for s := 0; s < topo.N; s++ {
			for d := 0; d < topo.N; d++ {
				n.Send(n.NewPacket(s, d, 1, router.KindData))
				want++
			}
		}
		if _, ok := n.RunUntilQuiescent(100000); !ok {
			t.Fatalf("%s: network did not drain", alg.Name())
		}
		if arrived != want {
			t.Errorf("%s: arrived %d packets, want %d", alg.Name(), arrived, want)
		}
		if err := n.CheckConservation(); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestHeavyRandomTrafficConservation(t *testing.T) {
	// Saturate a small torus with every algorithm and check nothing is
	// lost, duplicated, or deadlocked.
	topo := topology.NewTorus(4, 4)
	for _, alg := range routing.All() {
		n := New(Config{
			Topo:    topo,
			Routing: alg,
			Router:  router.Config{VCs: 4, BufDepth: 2, Delay: 2},
			Seed:    11,
		})
		rng := n.RNG()
		arrived := 0
		n.OnReceive = func(now int64, p *router.Packet) { arrived++ }
		sent := 0
		for cycle := 0; cycle < 3000; cycle++ {
			for node := 0; node < topo.N; node++ {
				if rng.Bernoulli(0.4) {
					size := 1
					if rng.Bernoulli(0.5) {
						size = 4
					}
					n.Send(n.NewPacket(node, rng.Intn(topo.N), size, router.KindData))
					sent++
				}
			}
			n.Step()
		}
		if _, ok := n.RunUntilQuiescent(1000000); !ok {
			t.Fatalf("%s: saturated torus did not drain (deadlock?)", alg.Name())
		}
		if arrived != sent {
			t.Errorf("%s: arrived %d packets, want %d", alg.Name(), arrived, sent)
		}
		if err := n.CheckConservation(); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestAgeBasedArbitrationDelivers(t *testing.T) {
	// Exercise the age-ordered VA and SA paths under heavy load with
	// multi-flit packets and verify conservation and completion.
	topo := topology.NewMesh(4, 4)
	n := New(Config{
		Topo:    topo,
		Routing: routing.MinimalAdaptive{},
		Router:  router.Config{VCs: 4, BufDepth: 2, Delay: 1, Arb: router.AgeBased},
		Seed:    21,
	})
	rng := n.RNG()
	arrived, sent := 0, 0
	var maxLatency int64
	n.OnReceive = func(now int64, p *router.Packet) {
		arrived++
		if p.Latency() > maxLatency {
			maxLatency = p.Latency()
		}
	}
	for cycle := 0; cycle < 2000; cycle++ {
		for node := 0; node < topo.N; node++ {
			if rng.Bernoulli(0.5) {
				n.Send(n.NewPacket(node, rng.Intn(topo.N), 1+rng.Intn(4), router.KindData))
				sent++
			}
		}
		n.Step()
	}
	if _, ok := n.RunUntilQuiescent(500000); !ok {
		t.Fatal("age-based network did not drain")
	}
	if arrived != sent {
		t.Errorf("arrived %d, sent %d", arrived, sent)
	}
	if err := n.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestAgeBasedBoundsTailLatency(t *testing.T) {
	// Near saturation, age-based arbitration should not produce a worse
	// p99 than round-robin (it is the fairness mechanism of Table I).
	p99 := func(arb router.ArbPolicy) float64 {
		topo := topology.NewMesh(8, 8)
		n := New(Config{
			Topo:    topo,
			Routing: routing.DOR{},
			Router:  router.Config{VCs: 2, BufDepth: 16, Delay: 1, Arb: arb},
			Seed:    22,
		})
		rng := n.RNG()
		var lats []float64
		n.OnReceive = func(now int64, p *router.Packet) { lats = append(lats, float64(p.Latency())) }
		for cycle := 0; cycle < 6000; cycle++ {
			for node := 0; node < topo.N; node++ {
				if rng.Bernoulli(0.38) {
					n.Send(n.NewPacket(node, rng.Intn(topo.N), 1, router.KindData))
				}
			}
			n.Step()
		}
		n.RunUntilQuiescent(500000)
		s := stats.Summarize(lats)
		return s.P99
	}
	rr := p99(router.RoundRobin)
	age := p99(router.AgeBased)
	if age > rr*1.2 {
		t.Errorf("age-based p99 %.1f much worse than round-robin %.1f", age, rr)
	}
}

func TestMinimalRoutingHopCounts(t *testing.T) {
	// DOR, MA and ROMM must all deliver in exactly the minimal hop count.
	topo := topology.NewMesh(8, 8)
	for _, alg := range []routing.Algorithm{routing.DOR{}, routing.MinimalAdaptive{}, routing.ROMM{}} {
		n := New(Config{
			Topo:    topo,
			Routing: alg,
			Router:  router.Config{VCs: 4, BufDepth: 8, Delay: 1},
			Seed:    3,
		})
		n.OnReceive = func(now int64, p *router.Packet) {
			if want := topo.Distance(p.Src, p.Dst); p.Hops != want {
				t.Errorf("%s: %d->%d took %d hops, want %d", alg.Name(), p.Src, p.Dst, p.Hops, want)
			}
		}
		for s := 0; s < topo.N; s += 5 {
			for d := 0; d < topo.N; d += 3 {
				n.Send(n.NewPacket(s, d, 1, router.KindData))
			}
		}
		if _, ok := n.RunUntilQuiescent(100000); !ok {
			t.Fatal("did not drain")
		}
	}
}
