// Package network assembles cycle-accurate routers into a complete on-chip
// network with one terminal per node, unbounded source queues (the open-loop
// "infinite source queue" model), packet-level send/receive hooks for
// closed-loop protocols, and conservation accounting.
//
// The network advances in whole cycles: each Step first delivers flits and
// credits that finished their pipelines (deliver phase), then lets every
// router compute one RC/VA/SA cycle (compute phase). Terminals inject
// between the two phases, so a flit injected in cycle c can be switched in
// cycle c at the earliest.
package network

import (
	"fmt"
	"math/bits"
	"sort"

	"noceval/internal/obs"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// Config gathers everything needed to build a network.
type Config struct {
	Topo    *topology.Topology
	Routing routing.Algorithm
	Router  router.Config
	Seed    uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("network: nil topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("network: nil routing algorithm")
	}
	return c.Router.Validate(c.Topo, c.Routing)
}

// Receiver observes packets arriving at terminals. Arrival means the tail
// flit reached the destination's ejection port.
type Receiver func(now int64, pkt *router.Packet)

// Network is a complete simulated on-chip network.
type Network struct {
	cfg     Config
	clock   sim.Clock
	rng     *sim.RNG
	routers []*router.Router
	srcQ    []*sim.FIFO[router.Flit]

	// OnReceive, when non-nil, is invoked for every packet that fully
	// arrives at its destination terminal.
	OnReceive Receiver
	// OnSend, when non-nil, observes every packet handed to Send (used by
	// the trace recorder).
	OnSend Receiver

	nextPacketID uint64

	// Activity tracking. active is a bitset over router ids with bit i set
	// exactly when router i is not idle (it holds buffered flits, in-flight
	// pipeline flits, or pending credits) — routers register through their
	// wake callback and are deregistered by Step's compute sweep the cycle
	// they go idle. activeCount mirrors the popcount so Quiescent is O(1).
	// srcPending is the analogous bitset over nodes with a nonempty source
	// queue. Both are iterated in ascending id order, so the active-set
	// paths visit routers and nodes in exactly the order the full scans do.
	active      []uint64
	activeCount int
	srcPending  []uint64
	// fullScan restores the pre-activity-tracking per-cycle full scans of
	// every router and source queue. It exists for one release as the
	// reference path of the determinism regression test; the bitsets are
	// still maintained but not consulted.
	fullScan bool

	// Conservation accounting.
	flitsInjected int64 // flits that entered a router injection buffer
	flitsEjected  int64
	pktsSent      int64 // packets handed to Send
	pktsArrived   int64
	queuedFlits   int64 // flits waiting in source queues

	// Observability state, all nil/empty until AttachObserver: the per-cycle
	// path pays one nil check when disabled.
	obs          *obs.Observer
	tracer       *obs.Tracer
	nodeInjected []int64 // cumulative terminal flit counts, per node
	nodeEjected  []int64
	// prev* hold the cumulative counter values at the previous sample so
	// each sample reports per-window deltas.
	prevXbar      []int64
	prevPort      [][]int64
	prevInjected  []int64
	prevEjected   []int64
	lastSampleAt  int64
	cFlitInjected *obs.Counter
	cFlitEjected  *obs.Counter
	cPktSent      *obs.Counter
	cPktArrived   *obs.Counter
}

// New builds a network. It panics on invalid configuration; use
// Config.Validate to check first when the configuration is user-supplied.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := cfg.Topo
	n := &Network{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		routers: make([]*router.Router, t.N),
		srcQ:    make([]*sim.FIFO[router.Flit], t.N),
	}
	words := (t.N + 63) / 64
	n.active = make([]uint64, words)
	n.srcPending = make([]uint64, words)
	for i := 0; i < t.N; i++ {
		n.routers[i] = router.New(i, t, cfg.Routing, cfg.Router)
		n.srcQ[i] = sim.NewFIFO[router.Flit](16)
		id := i
		n.routers[i].SetWake(func() { n.markActive(id) })
	}
	// Wire upstream references for credit return.
	for i := 0; i < t.N; i++ {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(i, p)
			if link.Connected() {
				n.routers[link.To].SetUpstream(link.ToPort, n.routers[i], p)
			}
		}
	}
	return n
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// SetFullScan switches the per-cycle loops between the activity-tracked
// paths (the default) and the legacy full scans over every router, port,
// and source queue; it also flips the routers to the matching mode, so a
// full-scan network runs the reference nested-loop compute phases rather
// than the state-bitmask ones. Both modes are cycle- and bit-identical;
// full-scan is kept for one release as the reference side of the
// determinism regression test and will be removed.
func (n *Network) SetFullScan(v bool) {
	n.fullScan = v
	for _, r := range n.routers {
		r.SetLegacyScan(v)
	}
}

// markActive inserts router id into the active set. Idempotent: routers
// wake on every flit or credit arrival, which can happen while the router
// is still awaiting its deregistration sweep.
func (n *Network) markActive(id int) {
	w, b := id>>6, uint64(1)<<(uint(id)&63)
	if n.active[w]&b == 0 {
		n.active[w] |= b
		n.activeCount++
	}
}

// AttachObserver wires an observer into the network: aggregate counters
// register into its metrics registry, routers get the flit tracer, and
// Step starts taking per-router telemetry samples on the observer's
// schedule. A nil observer detaches everything (the default).
func (n *Network) AttachObserver(o *obs.Observer) {
	n.obs = o
	if o == nil {
		n.tracer = nil
		for _, r := range n.routers {
			r.SetTracer(nil)
		}
		return
	}
	n.tracer = o.Tracer
	for _, r := range n.routers {
		r.SetTracer(o.Tracer)
	}
	reg := o.Registry
	n.cFlitInjected = reg.Counter("net.flits_injected")
	n.cFlitEjected = reg.Counter("net.flits_ejected")
	n.cPktSent = reg.Counter("net.packets_sent")
	n.cPktArrived = reg.Counter("net.packets_arrived")
	nodes := n.cfg.Topo.N
	n.nodeInjected = make([]int64, nodes)
	n.nodeEjected = make([]int64, nodes)
	n.prevXbar = make([]int64, nodes)
	n.prevInjected = make([]int64, nodes)
	n.prevEjected = make([]int64, nodes)
	n.prevPort = make([][]int64, nodes)
	for i := range n.prevPort {
		n.prevPort[i] = make([]int64, n.cfg.Topo.Radix)
	}
	n.lastSampleAt = n.clock.Now()
}

// Observer returns the attached observer, nil when observability is off.
func (n *Network) Observer() *obs.Observer { return n.obs }

// sample records one telemetry observation per router for the window that
// ended at cycle now.
func (n *Network) sample(now int64) {
	window := now - n.lastSampleAt
	if window <= 0 {
		window = 1
	}
	t := n.cfg.Topo
	tele := n.obs.Telemetry
	for id, r := range n.routers {
		xbar := r.FlitsRouted
		var linkFlits int64
		links := 0
		for p := 0; p < t.Radix; p++ {
			if !t.LinkAt(id, p).Connected() {
				continue
			}
			pf := r.PortFlits(p)
			linkFlits += pf - n.prevPort[id][p]
			n.prevPort[id][p] = pf
			links++
		}
		linkUtil := 0.0
		if links > 0 {
			linkUtil = float64(linkFlits) / float64(window) / float64(links)
		}
		avg, max := r.SampleVCOccupancy()
		tele.AddRouter(obs.RouterSample{
			Cycle:    now,
			Router:   id,
			XbarUtil: float64(xbar-n.prevXbar[id]) / float64(window),
			LinkUtil: linkUtil,
			BufOcc:   r.Occupancy(),
			AvgVCOcc: avg,
			MaxVCOcc: max,
			Injected: n.nodeInjected[id] - n.prevInjected[id],
			Ejected:  n.nodeEjected[id] - n.prevEjected[id],
		})
		n.prevXbar[id] = xbar
		n.prevInjected[id] = n.nodeInjected[id]
		n.prevEjected[id] = n.nodeEjected[id]
	}
	n.lastSampleAt = now
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.clock.Now() }

// RNG returns the network's private random source (used by workloads that
// want a stream tied to the network seed).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Nodes returns the number of terminals.
func (n *Network) Nodes() int { return n.cfg.Topo.N }

// NewPacket allocates a packet from src to dst with the given flit count
// and kind, stamps its creation time, and prepares its routing state
// (including the intermediate node for two-phase algorithms).
func (n *Network) NewPacket(src, dst, size int, kind router.Kind) *router.Packet {
	n.nextPacketID++
	mid := n.cfg.Routing.PickIntermediate(n.cfg.Topo, n.rng, src, dst)
	p := &router.Packet{
		ID:         n.nextPacketID,
		Src:        src,
		Dst:        dst,
		Size:       size,
		Kind:       kind,
		CreateTime: n.clock.Now(),
		InjectTime: -1,
		ArriveTime: -1,
		Route:      routing.NewState(mid),
	}
	p.Route.ArriveAt(src) // an intermediate equal to the source is a no-op phase
	return p
}

// Send queues the packet's flits at its source terminal. The packet will be
// injected into the router as buffer space allows.
func (n *Network) Send(p *router.Packet) {
	if n.OnSend != nil {
		n.OnSend(n.clock.Now(), p)
	}
	for _, f := range router.Flits(p) {
		n.srcQ[p.Src].Push(f)
	}
	n.srcPending[p.Src>>6] |= 1 << (uint(p.Src) & 63)
	n.pktsSent++
	n.queuedFlits += int64(p.Size)
	n.cPktSent.Inc()
}

// SourceQueueLen returns the number of flits waiting at a node's source
// queue (not yet inside the network).
func (n *Network) SourceQueueLen(node int) int { return n.srcQ[node].Len() }

// Step advances the network one cycle.
func (n *Network) Step() {
	now := n.clock.Now()
	n.deliver(now)
	n.inject(now)
	if n.fullScan {
		for _, r := range n.routers {
			r.Step(now)
		}
	} else {
		n.stepActive(now)
	}
	if n.obs != nil && n.obs.ShouldSample(now) {
		n.sample(now)
	}
	n.clock.Tick()
}

// stepActive runs the compute phase over the active set only, in ascending
// router-id order (identical to the full scan's visiting order), and
// deregisters routers that went idle. Routers woken during this sweep by a
// returning credit are not re-stepped this cycle if their bit lies behind
// the cursor or inside the current word snapshot; such credit-only wakeups
// are provably no-op steps (the credit is never ready before the next
// cycle), so the resulting state matches the full scan exactly.
func (n *Network) stepActive(now int64) {
	for w := range n.active {
		word := n.active[w]
		for word != 0 {
			i := bits.TrailingZeros64(word)
			word &= word - 1
			r := n.routers[w<<6+i]
			r.Step(now)
			if r.Idle() {
				n.active[w] &^= 1 << uint(i)
				n.activeCount--
				r.ClearAwake()
			}
		}
	}
}

// deliver moves flits that completed a router/link pipeline into the next
// input buffer, and hands fully arrived packets to the receiver. The
// active-set path visits only routers with pipeline flits, and within a
// router only the ports whose pipelines are nonempty; routers receiving
// flits during the sweep gain buffered occupancy only, which deliver
// skips in both paths, so the visiting order is equivalent.
func (n *Network) deliver(now int64) {
	if n.fullScan {
		t := n.cfg.Topo
		for id, r := range n.routers {
			if r.InFlight() == 0 {
				continue
			}
			for p := 0; p < t.Ports(); p++ {
				if f, ok := r.PopDelivery(now, p); ok {
					n.handleDelivered(now, id, p, f)
				}
			}
		}
		return
	}
	for w := range n.active {
		word := n.active[w]
		for word != 0 {
			id := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.routers[id]
			for m := r.PipeMask(); m != 0; m &= m - 1 {
				p := bits.TrailingZeros64(m)
				if f, ok := r.PopDelivery(now, p); ok {
					n.handleDelivered(now, id, p, f)
				}
			}
		}
	}
}

// handleDelivered routes one flit emerging from router id's output port p:
// ejection to the terminal (with arrival bookkeeping) or link traversal
// into the downstream router's input buffer.
func (n *Network) handleDelivered(now int64, id, p int, f router.Flit) {
	t := n.cfg.Topo
	if p == t.LocalPort() {
		n.flitsEjected++
		if n.obs != nil {
			n.nodeEjected[id]++
			n.cFlitEjected.Inc()
		}
		if f.Tail() {
			f.P.ArriveTime = now
			n.pktsArrived++
			n.cPktArrived.Inc()
			if n.tracer != nil {
				n.tracer.Record(now, f.P.ID, id, obs.PhaseEject)
			}
			if n.OnReceive != nil {
				n.OnReceive(now, f.P)
			}
		}
		return
	}
	link := t.LinkAt(id, p)
	n.routers[link.To].AcceptFlit(link.ToPort, int(f.VC), f)
}

// inject moves flits from source queues into injection buffers while space
// remains. The active-set path visits only nodes with queued flits.
func (n *Network) inject(now int64) {
	if n.fullScan {
		for node := range n.srcQ {
			n.injectNode(now, node)
		}
		return
	}
	for w := range n.srcPending {
		word := n.srcPending[w]
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			n.injectNode(now, node)
		}
	}
}

// injectNode drains node's source queue into its injection buffer while
// space remains, clearing the node's pending bit once the queue empties.
func (n *Network) injectNode(now int64, node int) {
	q := n.srcQ[node]
	r := n.routers[node]
	for q.Len() > 0 && r.CanAcceptInjection() {
		f, _ := q.Pop()
		if f.Head() {
			f.P.InjectTime = now
			if n.tracer != nil {
				n.tracer.Record(now, f.P.ID, node, obs.PhaseInject)
			}
		}
		r.AcceptFlit(n.cfg.Topo.LocalPort(), r.InjectionVC(), f)
		n.flitsInjected++
		n.queuedFlits--
		if n.obs != nil {
			n.nodeInjected[node]++
			n.cFlitInjected.Inc()
		}
	}
	if q.Len() == 0 {
		n.srcPending[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// Quiescent reports whether no flits remain anywhere: source queues,
// input buffers, and pipelines are all empty. With activity tracking it
// is an O(1) counter check; the active set is exact between Steps (every
// Step's compute sweep deregisters routers that went idle that cycle).
func (n *Network) Quiescent() bool {
	if n.queuedFlits != 0 {
		return false
	}
	if !n.fullScan {
		return n.activeCount == 0
	}
	for _, r := range n.routers {
		if !r.Idle() {
			return false
		}
	}
	return true
}

// ActiveCount returns the number of routers currently in the active set —
// an instantaneous load signal for telemetry and for sizing the benefit of
// activity-tracked stepping. Meaningless (always 0) in full-scan mode.
func (n *Network) ActiveCount() int { return n.activeCount }

// SkipTo advances the clock to the given cycle without simulating the
// intervening cycles. The network must be quiescent, and callers (the
// engine's fast-forward) must not skip past an observer sampling point —
// the engine wakes at NextObsSampleAt so sampled telemetry records the
// same cycles either way.
func (n *Network) SkipTo(cycle int64) {
	if !n.Quiescent() {
		panic("network: SkipTo on a non-quiescent network")
	}
	n.clock.AdvanceTo(cycle)
}

// NextObsSampleAt returns the next telemetry sampling cycle, or -1 when
// no observer is attached or sampling is off.
func (n *Network) NextObsSampleAt() int64 { return n.obs.NextSampleAt() }

// Stats returns the network's cumulative conservation counters.
func (n *Network) Stats() (pktsSent, pktsArrived, flitsInjected, flitsEjected int64) {
	return n.pktsSent, n.pktsArrived, n.flitsInjected, n.flitsEjected
}

// CheckConservation returns an error when flit/packet accounting is
// inconsistent with the amount of traffic still in flight; tests call it
// after draining to prove nothing was lost or duplicated.
func (n *Network) CheckConservation() error {
	inside := int64(0)
	for _, r := range n.routers {
		inside += int64(r.Occupancy() + r.InFlight())
	}
	if n.flitsInjected-n.flitsEjected != inside {
		return fmt.Errorf("network: flit conservation violated: injected %d, ejected %d, inside %d",
			n.flitsInjected, n.flitsEjected, inside)
	}
	if n.Quiescent() && n.pktsSent != n.pktsArrived {
		return fmt.Errorf("network: packet conservation violated at quiescence: sent %d, arrived %d",
			n.pktsSent, n.pktsArrived)
	}
	return nil
}

// ChannelLoad describes the traffic carried by one network channel.
type ChannelLoad struct {
	From, Port, To int
	Flits          int64
	// Utilization is flits divided by elapsed cycles: the fraction of the
	// channel's bandwidth in use.
	Utilization float64
}

// ChannelLoads returns the per-channel flit counts and utilizations since
// construction, most-loaded first. It identifies the saturated channel
// that bounds throughput (the paper's footnote: "the saturation throughput
// is determined when one channel in the network is saturated").
func (n *Network) ChannelLoads() []ChannelLoad {
	t := n.cfg.Topo
	cycles := n.clock.Now()
	var out []ChannelLoad
	for id, r := range n.routers {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(id, p)
			if !link.Connected() {
				continue
			}
			cl := ChannelLoad{From: id, Port: p, To: link.To, Flits: r.PortFlits(p)}
			if cycles > 0 {
				cl.Utilization = float64(cl.Flits) / float64(cycles)
			}
			out = append(out, cl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// MaxChannelUtilization returns the utilization of the busiest channel.
func (n *Network) MaxChannelUtilization() float64 {
	loads := n.ChannelLoads()
	if len(loads) == 0 {
		return 0
	}
	return loads[0].Utilization
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse,
// returning the number of cycles stepped and whether it drained.
func (n *Network) RunUntilQuiescent(maxCycles int64) (int64, bool) {
	start := n.clock.Now()
	for !n.Quiescent() {
		if n.clock.Now()-start >= maxCycles {
			return n.clock.Now() - start, false
		}
		n.Step()
	}
	return n.clock.Now() - start, true
}
