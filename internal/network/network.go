// Package network assembles cycle-accurate routers into a complete on-chip
// network with one terminal per node, unbounded source queues (the open-loop
// "infinite source queue" model), packet-level send/receive hooks for
// closed-loop protocols, and conservation accounting.
//
// The network advances in whole cycles: each Step first delivers flits and
// credits that finished their pipelines (deliver phase), then lets every
// router compute one RC/VA/SA cycle (compute phase). Terminals inject
// between the two phases, so a flit injected in cycle c can be switched in
// cycle c at the earliest.
package network

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"noceval/internal/fault"
	"noceval/internal/obs"
	"noceval/internal/par"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// Config gathers everything needed to build a network.
type Config struct {
	Topo    *topology.Topology
	Routing routing.Algorithm
	Router  router.Config
	Seed    uint64
	// Fault, when non-nil and enabled, wires the fault injector and (with a
	// positive Timeout) the recovery NIC into the network. Nil or all-zero
	// leaves the network bit-identical to a fault-free build.
	Fault *fault.Params
	// Shards partitions the network into that many spatial tiles stepped
	// concurrently inside each cycle (clamped to the topology's row count).
	// 0 or 1 keeps the sequential cycle loop; any value is bit-identical to
	// it — sharding is purely a wall-clock optimization. See DESIGN §12.
	Shards int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("network: nil topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("network: nil routing algorithm")
	}
	if c.Shards < 0 {
		return fmt.Errorf("network: Shards must be >= 0, got %d", c.Shards)
	}
	if err := c.Fault.Validate(c.Topo); err != nil {
		return err
	}
	return c.Router.Validate(c.Topo, c.Routing)
}

// Receiver observes packets arriving at terminals. Arrival means the tail
// flit reached the destination's ejection port.
type Receiver func(now int64, pkt *router.Packet)

// Network is a complete simulated on-chip network.
type Network struct {
	cfg     Config
	clock   sim.Clock
	rng     *sim.RNG
	routers []*router.Router
	// classes is the QoS class count (>= 1, from Router.Classes); srcQ
	// holds one source queue per node per class, so a backed-up
	// low-priority queue never blocks high-priority injection. Single-class
	// networks use srcQ[node][0] exactly as the classic single queue.
	classes int
	srcQ    [][]*sim.FIFO[router.Flit]

	// OnReceive, when non-nil, is invoked for every packet that fully
	// arrives at its destination terminal.
	OnReceive Receiver
	// OnSend, when non-nil, observes every packet handed to Send (used by
	// the trace recorder).
	OnSend Receiver
	// OnDeadDrop, when non-nil, is invoked when the recovery NIC abandons a
	// transaction after exhausting its retries — the run mode's signal to
	// account the loss. Without a NIC, losses are silent (the run mode sees
	// nothing, exactly like a real network without end-to-end protection).
	OnDeadDrop Receiver

	// faults and nic are non-nil only when cfg.Fault is enabled; every
	// fault hook on the per-cycle paths hides behind a faults nil check so
	// fault-free runs stay bit-identical and allocation-free.
	faults *fault.Injector
	nic    *fault.NIC

	nextPacketID uint64

	// Activity tracking, kept per spatial tile. Each tile owns a bitset
	// over its contiguous router range with bit b set exactly when router
	// lo+b is not idle (it holds buffered flits, in-flight pipeline flits,
	// or pending credits) — routers register through their wake callback
	// and are deregistered by Step's compute sweep the cycle they go idle.
	// activeCount mirrors the popcount so Quiescent stays O(tiles).
	// srcPending is the analogous bitset over nodes with a nonempty source
	// queue. Both are iterated in ascending id order within a tile and
	// tiles are ascending id ranges, so the active-set paths visit routers
	// and nodes in exactly the order the full scans do. A sequential
	// network is the single tile [0, N); sharded networks (see shard.go)
	// split per-tile so concurrently stepping tiles never share a bitset
	// word.
	tiles  []netTile
	tileOf []int32
	// gang is the resident worker crew stepping tiles concurrently; nil
	// for a sequential (Shards <= 1) network.
	gang *par.Gang
	// fullScan restores the pre-activity-tracking per-cycle full scans of
	// every router and source queue. It exists for one release as the
	// reference path of the determinism regression test; the bitsets are
	// still maintained but not consulted. Full scan also forces the
	// sequential cycle loop, so it doubles as the reference side of the
	// sharded determinism tests.
	fullScan bool

	// Conservation accounting. Every packet object handed to Send ends in
	// exactly one of: arrived, dead (died inside the network), discarded
	// (checksum-rejected at the destination), or dup (redundant incarnation
	// discarded by receiver dedup) — the invariant harness checks the sum.
	// Counters mutated only in serial phases stay global; flit injection
	// and source-queue depth are mutated by the (potentially parallel)
	// inject phase, so they live per tile (see netTile) and are summed on
	// read.
	flitsEjected     int64
	flitsDeadDropped int64 // flits discarded by fault injection
	pktsSent         int64 // packets handed to Send
	pktsArrived      int64
	pktsDead         int64 // packets that died inside the network
	pktsDiscarded    int64 // corrupt packets rejected at the destination
	pktsDup          int64 // duplicate deliveries discarded by the NIC

	// Observability state, all nil/empty until AttachObserver: the per-cycle
	// path pays one nil check when disabled.
	obs          *obs.Observer
	tracer       *obs.Tracer
	nodeInjected []int64 // cumulative terminal flit counts, per node
	nodeEjected  []int64
	// prev* hold the cumulative counter values at the previous sample so
	// each sample reports per-window deltas.
	prevXbar      []int64
	prevPort      [][]int64
	prevInjected  []int64
	prevEjected   []int64
	lastSampleAt  int64
	cFlitInjected *obs.Counter
	cFlitEjected  *obs.Counter
	cPktSent      *obs.Counter
	cPktArrived   *obs.Counter
	// Fault counters, registered only when fault injection is enabled.
	cFaultInjected    *obs.Counter
	cFaultDetected    *obs.Counter
	cFaultRetried     *obs.Counter
	cFaultDeadDropped *obs.Counter
}

// netTile is the per-shard slice of the network's mutable bookkeeping: a
// contiguous router range with its own activity bitsets and the counters
// the inject phase mutates, plus the outboxes the sharded cycle loop
// buffers cross-tile effects in (drained serially at phase boundaries;
// always empty between Steps). Bit b of the bitsets denotes router/node
// lo+b.
type netTile struct {
	lo, hi        int
	active        []uint64
	activeCount   int
	srcPending    []uint64
	queuedFlits   int64 // flits waiting in this tile's source queues
	flitsInjected int64 // flits that entered this tile's injection buffers

	// Deliver-phase outboxes (sharded fault-free path only): terminal
	// ejections and flits bound for another tile's input buffer, applied
	// serially between the deliver and compute phases.
	ejectOut []ejectedFlit
	flitOut  []crossFlit
	// Compute-phase outbox: credits owed to upstream routers in other
	// tiles, applied serially after the compute phase.
	creditOut []crossCredit
}

type ejectedFlit struct {
	id int
	f  router.Flit
}

type crossFlit struct {
	to, toPort int
	f          router.Flit
}

type crossCredit struct {
	up       *router.Router
	port, vc int
}

// New builds a network. It panics on invalid configuration; use
// Config.Validate to check first when the configuration is user-supplied.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := cfg.Topo
	classes := cfg.Router.Classes
	if classes < 1 {
		classes = 1
	}
	n := &Network{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		routers: make([]*router.Router, t.N),
		classes: classes,
		srcQ:    make([][]*sim.FIFO[router.Flit], t.N),
	}
	parts := t.Partition(max(cfg.Shards, 1))
	n.tiles = make([]netTile, len(parts))
	n.tileOf = make([]int32, t.N)
	for ti, part := range parts {
		words := (part.Len() + 63) / 64
		n.tiles[ti] = netTile{
			lo:         part.Lo,
			hi:         part.Hi,
			active:     make([]uint64, words),
			srcPending: make([]uint64, words),
		}
		for id := part.Lo; id < part.Hi; id++ {
			n.tileOf[id] = int32(ti)
		}
	}
	for i := 0; i < t.N; i++ {
		n.routers[i] = router.New(i, t, cfg.Routing, cfg.Router)
		n.srcQ[i] = make([]*sim.FIFO[router.Flit], classes)
		for qc := range n.srcQ[i] {
			n.srcQ[i][qc] = sim.NewFIFO[router.Flit](16)
		}
		id := i
		n.routers[i].SetWake(func() { n.markActive(id) })
	}
	// Wire upstream references for credit return.
	for i := 0; i < t.N; i++ {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(i, p)
			if link.Connected() {
				n.routers[link.To].SetUpstream(link.ToPort, n.routers[i], p)
			}
		}
	}
	if len(n.tiles) > 1 {
		n.wireShards(parts)
	}
	if cfg.Fault.Enabled() {
		fp := *cfg.Fault
		seed := fp.Seed
		if seed == 0 {
			seed = cfg.Seed ^ 0x8f1bbcdc9a3f7d21
		}
		n.faults = fault.NewInjector(fp, seed)
		if fp.Timeout > 0 {
			n.nic = fault.NewNIC(fault.NICConfig{
				Timeout:    fp.Timeout,
				MaxRetries: fp.MaxRetries,
				RetryCap:   fp.RetryCap,
				Nodes:      t.N,
				Resend: func(now int64, prev *router.Packet) *router.Packet {
					p := n.NewPacket(prev.Src, prev.Dst, prev.Size, prev.Kind)
					p.Aux = prev.Aux
					p.Measured = prev.Measured
					p.Class = prev.Class
					// A retransmission continues the original transaction:
					// it keeps the original creation time so end-to-end
					// latency honestly includes the recovery delay.
					p.CreateTime = prev.CreateTime
					p.FaultTxn = prev.FaultTxn
					n.cFaultRetried.Inc()
					n.send(p)
					return p
				},
				Abandon: func(now int64, p *router.Packet) {
					if n.OnDeadDrop != nil {
						n.OnDeadDrop(now, p)
					}
				},
			})
		}
	}
	return n
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// SetFullScan switches the per-cycle loops between the activity-tracked
// paths (the default) and the legacy full scans over every router, port,
// and source queue; it also flips the routers to the matching mode, so a
// full-scan network runs the reference nested-loop compute phases rather
// than the state-bitmask ones. Both modes are cycle- and bit-identical;
// full-scan is kept for one release as the reference side of the
// determinism regression test and will be removed.
func (n *Network) SetFullScan(v bool) {
	n.fullScan = v
	for _, r := range n.routers {
		r.SetLegacyScan(v)
	}
}

// markActive inserts router id into its tile's active set. Idempotent:
// routers wake on every flit or credit arrival, which can happen while the
// router is still awaiting its deregistration sweep. During parallel
// phases only the tile's own worker (or the serial apply sections) reaches
// a tile's bitset, so no locking is needed.
func (n *Network) markActive(id int) {
	t := &n.tiles[n.tileOf[id]]
	bit := id - t.lo
	w, b := bit>>6, uint64(1)<<(uint(bit)&63)
	if t.active[w]&b == 0 {
		t.active[w] |= b
		t.activeCount++
	}
}

// AttachObserver wires an observer into the network: aggregate counters
// register into its metrics registry, routers get the flit tracer, and
// Step starts taking per-router telemetry samples on the observer's
// schedule. A nil observer detaches everything (the default).
func (n *Network) AttachObserver(o *obs.Observer) {
	n.obs = o
	if o == nil {
		n.tracer = nil
		for _, r := range n.routers {
			r.SetTracer(nil)
		}
		return
	}
	n.tracer = o.Tracer
	for _, r := range n.routers {
		r.SetTracer(o.Tracer)
	}
	reg := o.Registry
	n.cFlitInjected = reg.Counter("net.flits_injected")
	n.cFlitEjected = reg.Counter("net.flits_ejected")
	n.cPktSent = reg.Counter("net.packets_sent")
	n.cPktArrived = reg.Counter("net.packets_arrived")
	if n.faults != nil {
		n.cFaultInjected = reg.Counter("fault.injected")
		n.cFaultDetected = reg.Counter("fault.detected")
		n.cFaultRetried = reg.Counter("fault.retried")
		n.cFaultDeadDropped = reg.Counter("fault.dead_dropped")
	}
	nodes := n.cfg.Topo.N
	n.nodeInjected = make([]int64, nodes)
	n.nodeEjected = make([]int64, nodes)
	n.prevXbar = make([]int64, nodes)
	n.prevInjected = make([]int64, nodes)
	n.prevEjected = make([]int64, nodes)
	n.prevPort = make([][]int64, nodes)
	for i := range n.prevPort {
		n.prevPort[i] = make([]int64, n.cfg.Topo.Radix)
	}
	n.lastSampleAt = n.clock.Now()
}

// Observer returns the attached observer, nil when observability is off.
func (n *Network) Observer() *obs.Observer { return n.obs }

// sample records one telemetry observation per router for the window that
// ended at cycle now.
func (n *Network) sample(now int64) {
	window := now - n.lastSampleAt
	if window <= 0 {
		window = 1
	}
	t := n.cfg.Topo
	tele := n.obs.Telemetry
	for id, r := range n.routers {
		xbar := r.FlitsRouted
		var linkFlits int64
		links := 0
		for p := 0; p < t.Radix; p++ {
			if !t.LinkAt(id, p).Connected() {
				continue
			}
			pf := r.PortFlits(p)
			linkFlits += pf - n.prevPort[id][p]
			n.prevPort[id][p] = pf
			links++
		}
		linkUtil := 0.0
		if links > 0 {
			linkUtil = float64(linkFlits) / float64(window) / float64(links)
		}
		avg, max := r.SampleVCOccupancy()
		tele.AddRouter(obs.RouterSample{
			Cycle:    now,
			Router:   id,
			XbarUtil: float64(xbar-n.prevXbar[id]) / float64(window),
			LinkUtil: linkUtil,
			BufOcc:   r.Occupancy(),
			AvgVCOcc: avg,
			MaxVCOcc: max,
			Injected: n.nodeInjected[id] - n.prevInjected[id],
			Ejected:  n.nodeEjected[id] - n.prevEjected[id],
		})
		n.prevXbar[id] = xbar
		n.prevInjected[id] = n.nodeInjected[id]
		n.prevEjected[id] = n.nodeEjected[id]
	}
	n.lastSampleAt = now
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.clock.Now() }

// RNG returns the network's private random source (used by workloads that
// want a stream tied to the network seed).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Nodes returns the number of terminals.
func (n *Network) Nodes() int { return n.cfg.Topo.N }

// NewPacket allocates a packet from src to dst with the given flit count
// and kind, stamps its creation time, and prepares its routing state
// (including the intermediate node for two-phase algorithms).
func (n *Network) NewPacket(src, dst, size int, kind router.Kind) *router.Packet {
	n.nextPacketID++
	mid := n.cfg.Routing.PickIntermediate(n.cfg.Topo, n.rng, src, dst)
	p := &router.Packet{
		ID:         n.nextPacketID,
		Src:        src,
		Dst:        dst,
		Size:       size,
		Kind:       kind,
		CreateTime: n.clock.Now(),
		InjectTime: -1,
		ArriveTime: -1,
		Route:      routing.NewState(mid),
	}
	p.Route.ArriveAt(src) // an intermediate equal to the source is a no-op phase
	return p
}

// Send queues the packet's flits at its source terminal. The packet will be
// injected into the router as buffer space allows. When the recovery NIC is
// armed it starts tracking the packet here; retransmissions re-enter below
// Send so they are not tracked twice.
func (n *Network) Send(p *router.Packet) {
	if n.nic != nil {
		n.nic.Track(n.clock.Now(), p)
	}
	n.send(p)
}

func (n *Network) send(p *router.Packet) {
	if n.OnSend != nil {
		n.OnSend(n.clock.Now(), p)
	}
	n.pktsSent++
	n.cPktSent.Inc()
	if n.faults != nil && n.routers[p.Src].Dead() {
		// The terminal died with its router: the packet is lost before it
		// can queue. The NIC (if any) still tracks it, so the loss is
		// eventually reported through timeout and abandonment.
		n.notePacketDead(p)
		return
	}
	q := n.srcQ[p.Src][n.clampClass(p.Class)]
	for _, f := range router.Flits(p) {
		q.Push(f)
	}
	t := &n.tiles[n.tileOf[p.Src]]
	bit := p.Src - t.lo
	t.srcPending[bit>>6] |= 1 << (uint(bit) & 63)
	t.queuedFlits += int64(p.Size)
}

// clampClass maps a packet class onto the configured class range: classes
// beyond the configured count share the lowest-priority queue, so a
// workload stamping classes onto a single-class network degrades to the
// classic behaviour instead of faulting.
func (n *Network) clampClass(qc int) int {
	if qc < 0 || qc >= n.classes {
		return n.classes - 1
	}
	return qc
}

// Classes returns the network's QoS class count (1 for classic networks).
func (n *Network) Classes() int { return n.classes }

// SourceQueueLen returns the number of flits waiting at a node's source
// queues (not yet inside the network), summed across classes.
func (n *Network) SourceQueueLen(node int) int {
	l := 0
	for _, q := range n.srcQ[node] {
		l += q.Len()
	}
	return l
}

// Step advances the network one cycle. With more than one tile the cycle
// runs on the gang (shard.go); the full-scan reference mode and an
// attached tracer force the sequential loop (trace append order is
// inherently serial), which stays correct with shards because cross-tile
// credit deferral is behaviour-preserving in either loop.
func (n *Network) Step() {
	if n.gang != nil && !n.fullScan && n.tracer == nil {
		n.stepSharded()
		return
	}
	n.stepSequential()
}

// stepSequential is the single-threaded cycle: deliver, inject, compute,
// sample, tick — the reference semantics every other path must match
// bit for bit.
func (n *Network) stepSequential() {
	now := n.clock.Now()
	if n.faults != nil {
		n.faultPreStep(now)
	}
	n.deliver(now)
	n.inject(now)
	if n.fullScan {
		for _, r := range n.routers {
			r.Step(now)
		}
	} else {
		n.stepActive(now)
	}
	if n.gang != nil {
		// Routers of a sharded network defer cross-tile credits even on
		// the sequential loop (the sink is wired at construction); drain
		// them exactly where the sharded loop does.
		n.applyCrossCredits(now)
	}
	if n.obs != nil && n.obs.ShouldSample(now) {
		n.sample(now)
	}
	n.clock.Tick()
}

// stepActive runs the compute phase over the active set only, in ascending
// router-id order (identical to the full scan's visiting order), and
// deregisters routers that went idle. Routers woken during this sweep by a
// returning credit are not re-stepped this cycle if their bit lies behind
// the cursor or inside the current word snapshot; such credit-only wakeups
// are provably no-op steps (the credit is never ready before the next
// cycle), so the resulting state matches the full scan exactly.
func (n *Network) stepActive(now int64) {
	for ti := range n.tiles {
		n.stepTile(now, ti)
	}
}

// stepTile is stepActive restricted to one tile. On the sharded path each
// gang member runs its own tile; tiles share no mutable state here —
// cross-tile credits go through the routers' credit sink into the tile's
// outbox.
func (n *Network) stepTile(now int64, ti int) {
	t := &n.tiles[ti]
	for w := range t.active {
		word := t.active[w]
		for word != 0 {
			i := bits.TrailingZeros64(word)
			word &= word - 1
			r := n.routers[t.lo+w<<6+i]
			r.Step(now)
			if r.Idle() {
				t.active[w] &^= 1 << uint(i)
				t.activeCount--
				r.ClearAwake()
			}
		}
	}
}

// deliver moves flits that completed a router/link pipeline into the next
// input buffer, and hands fully arrived packets to the receiver. The
// active-set path visits only routers with pipeline flits, and within a
// router only the ports whose pipelines are nonempty; routers receiving
// flits during the sweep gain buffered occupancy only, which deliver
// skips in both paths, so the visiting order is equivalent.
func (n *Network) deliver(now int64) {
	if n.fullScan {
		t := n.cfg.Topo
		for id, r := range n.routers {
			if r.InFlight() == 0 {
				continue
			}
			for p := 0; p < t.Ports(); p++ {
				if f, ok := r.PopDelivery(now, p); ok {
					n.handleDelivered(now, id, p, f)
				}
			}
		}
		return
	}
	for ti := range n.tiles {
		n.deliverTile(now, ti)
	}
}

// deliverTile is the active-set deliver phase restricted to one tile,
// delivering directly (serial semantics). The sharded loop uses
// deliverTileBuffered (shard.go) instead, which diverts cross-tile
// effects into outboxes.
func (n *Network) deliverTile(now int64, ti int) {
	t := &n.tiles[ti]
	for w := range t.active {
		word := t.active[w]
		for word != 0 {
			id := t.lo + w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.routers[id]
			for m := r.PipeMask(); m != 0; m &= m - 1 {
				p := bits.TrailingZeros64(m)
				if f, ok := r.PopDelivery(now, p); ok {
					n.handleDelivered(now, id, p, f)
				}
			}
		}
	}
}

// handleDelivered routes one flit emerging from router id's output port p:
// ejection to the terminal (with arrival bookkeeping) or link traversal
// into the downstream router's input buffer.
func (n *Network) handleDelivered(now int64, id, p int, f router.Flit) {
	t := n.cfg.Topo
	if p == t.LocalPort() {
		n.ejectFlit(now, id, f)
		return
	}
	link := t.LinkAt(id, p)
	if n.faults != nil && n.faultOnLinkDelivery(now, id, p, f, link) {
		return
	}
	n.routers[link.To].AcceptFlit(link.ToPort, int(f.VC), f)
}

// ejectFlit performs the terminal-arrival bookkeeping for one flit leaving
// router id's local port. It mutates only global (serial-phase) state, so
// the sharded loop calls it exclusively from the serial apply section, in
// the same ascending-id order the sequential deliver sweep would.
func (n *Network) ejectFlit(now int64, id int, f router.Flit) {
	n.flitsEjected++
	if n.obs != nil {
		n.nodeEjected[id]++
		n.cFlitEjected.Inc()
	}
	if f.Tail() {
		if n.faults != nil && !n.acceptAtDest(now, f.P) {
			return
		}
		f.P.ArriveTime = now
		n.pktsArrived++
		n.cPktArrived.Inc()
		if n.tracer != nil {
			n.tracer.Record(now, f.P.ID, id, obs.PhaseEject)
		}
		if n.OnReceive != nil {
			n.OnReceive(now, f.P)
		}
	}
}

// inject moves flits from source queues into injection buffers while space
// remains. The active-set path visits only nodes with queued flits.
func (n *Network) inject(now int64) {
	if n.fullScan {
		for node := range n.srcQ {
			n.injectNode(now, &n.tiles[n.tileOf[node]], node)
		}
		return
	}
	for ti := range n.tiles {
		n.injectTile(now, ti)
	}
}

// injectTile runs the inject phase over one tile's pending nodes. On the
// sharded path each gang member injects its own tile: a node's router and
// source queue belong to exactly one tile, and the per-node observability
// counters touch disjoint slice elements.
func (n *Network) injectTile(now int64, ti int) {
	t := &n.tiles[ti]
	for w := range t.srcPending {
		word := t.srcPending[w]
		for word != 0 {
			node := t.lo + w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			n.injectNode(now, t, node)
		}
	}
}

// injectNode drains node's source queues into its injection buffers while
// space remains, visiting classes in priority order (class 0 first), and
// clears the node's pending bit once every queue empties. Each class
// injects through its own VC partition, so the drains are independent: a
// full low-priority injection buffer never stalls high-priority flits.
// t must be node's tile.
func (n *Network) injectNode(now int64, t *netTile, node int) {
	r := n.routers[node]
	pending := 0
	for qc := 0; qc < n.classes; qc++ {
		q := n.srcQ[node][qc]
		for q.Len() > 0 && r.CanAcceptInjectionClass(qc) {
			f, _ := q.Pop()
			if f.Head() {
				f.P.InjectTime = now
				if n.tracer != nil {
					n.tracer.Record(now, f.P.ID, node, obs.PhaseInject)
				}
			}
			r.AcceptFlit(n.cfg.Topo.LocalPort(), r.InjectionVCClass(qc), f)
			t.flitsInjected++
			t.queuedFlits--
			if n.obs != nil {
				n.nodeInjected[node]++
				n.cFlitInjected.Inc()
			}
		}
		pending += q.Len()
	}
	if pending == 0 {
		bit := node - t.lo
		t.srcPending[bit>>6] &^= 1 << (uint(bit) & 63)
	}
}

// Quiescent reports whether no flits remain anywhere: source queues,
// input buffers, and pipelines are all empty. With activity tracking it
// is an O(tiles) counter check; the active set is exact between Steps
// (every Step's compute sweep deregisters routers that went idle that
// cycle), and cross-tile outboxes drain within each Step, so quiescence of
// the tiles is quiescence of the network regardless of shard count.
func (n *Network) Quiescent() bool {
	for i := range n.tiles {
		if n.tiles[i].queuedFlits != 0 {
			return false
		}
	}
	if !n.fullScan {
		for i := range n.tiles {
			if n.tiles[i].activeCount != 0 {
				return false
			}
		}
		return true
	}
	for _, r := range n.routers {
		if !r.Idle() {
			return false
		}
	}
	return true
}

// ActiveCount returns the number of routers currently in the active set —
// an instantaneous load signal for telemetry and for sizing the benefit of
// activity-tracked stepping. Meaningless (always 0) in full-scan mode.
func (n *Network) ActiveCount() int {
	c := 0
	for i := range n.tiles {
		c += n.tiles[i].activeCount
	}
	return c
}

// SkipTo advances the clock to the given cycle without simulating the
// intervening cycles. The network must be quiescent, and callers (the
// engine's fast-forward) must not skip past an observer sampling point —
// the engine wakes at NextObsSampleAt so sampled telemetry records the
// same cycles either way.
func (n *Network) SkipTo(cycle int64) {
	if !n.Quiescent() {
		panic("network: SkipTo on a non-quiescent network")
	}
	n.clock.AdvanceTo(cycle)
}

// NextObsSampleAt returns the next telemetry sampling cycle, or -1 when
// no observer is attached or sampling is off.
func (n *Network) NextObsSampleAt() int64 { return n.obs.NextSampleAt() }

// Stats returns the network's cumulative conservation counters.
func (n *Network) Stats() (pktsSent, pktsArrived, flitsInjected, flitsEjected int64) {
	return n.pktsSent, n.pktsArrived, n.flitsInjectedTotal(), n.flitsEjected
}

// flitsInjectedTotal sums the per-tile injection counters.
func (n *Network) flitsInjectedTotal() int64 {
	var s int64
	for i := range n.tiles {
		s += n.tiles[i].flitsInjected
	}
	return s
}

// CheckConservation returns an error when flit/packet accounting is
// inconsistent with the amount of traffic still in flight; tests call it
// after draining to prove nothing was lost or duplicated. Fault injection
// extends both equations: every injected flit is ejected, dead-dropped, or
// still inside, and every sent packet ends arrived, dead, discarded, or
// deduplicated.
func (n *Network) CheckConservation() error {
	inside := int64(0)
	for _, r := range n.routers {
		inside += int64(r.Occupancy() + r.InFlight())
	}
	injected := n.flitsInjectedTotal()
	if injected-n.flitsEjected-n.flitsDeadDropped != inside {
		return fmt.Errorf("network: flit conservation violated: injected %d, ejected %d, dead-dropped %d, inside %d",
			injected, n.flitsEjected, n.flitsDeadDropped, inside)
	}
	if n.Quiescent() {
		if got := n.pktsArrived + n.pktsDead + n.pktsDiscarded + n.pktsDup; n.pktsSent != got {
			return fmt.Errorf("network: packet conservation violated at quiescence: sent %d != arrived %d + dead %d + discarded %d + dup %d",
				n.pktsSent, n.pktsArrived, n.pktsDead, n.pktsDiscarded, n.pktsDup)
		}
	}
	return nil
}

// ChannelLoad describes the traffic carried by one network channel.
type ChannelLoad struct {
	From, Port, To int
	Flits          int64
	// Utilization is flits divided by elapsed cycles: the fraction of the
	// channel's bandwidth in use.
	Utilization float64
}

// ChannelLoads returns the per-channel flit counts and utilizations since
// construction, most-loaded first. It identifies the saturated channel
// that bounds throughput (the paper's footnote: "the saturation throughput
// is determined when one channel in the network is saturated").
func (n *Network) ChannelLoads() []ChannelLoad {
	t := n.cfg.Topo
	cycles := n.clock.Now()
	var out []ChannelLoad
	for id, r := range n.routers {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(id, p)
			if !link.Connected() {
				continue
			}
			cl := ChannelLoad{From: id, Port: p, To: link.To, Flits: r.PortFlits(p)}
			if cycles > 0 {
				cl.Utilization = float64(cl.Flits) / float64(cycles)
			}
			out = append(out, cl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// MaxChannelUtilization returns the utilization of the busiest channel.
func (n *Network) MaxChannelUtilization() float64 {
	loads := n.ChannelLoads()
	if len(loads) == 0 {
		return 0
	}
	return loads[0].Utilization
}

// --- Fault injection ------------------------------------------------------

// faultPreStep applies due outage edges and router kills, then fires the
// NIC's due timeouts, all before the deliver phase so a retransmission
// issued this cycle can inject this cycle like any other send. Called only
// when fault injection is enabled.
func (n *Network) faultPreStep(now int64) {
	if n.faults.ScheduleDue(now) {
		n.applyFaultSchedule(now)
	}
	if n.nic != nil {
		n.nic.Tick(now)
	}
}

// applyFaultSchedule brings the outage and kill state in line with cycle
// now. The schedule is evaluated from time predicates rather than stepped,
// so it stays exact when the engine fast-forwards the clock across
// boundaries: transitions on an idle network have no observable effect, and
// the state seen at the next real cycle is identical either way.
func (n *Network) applyFaultSchedule(now int64) {
	p := n.faults.Params()
	for _, o := range p.Outages {
		r := n.routers[o.Node]
		down := fault.OutageActive(o, now)
		if r.LinkIsDown(o.Port) != down {
			r.SetLinkDown(o.Port, down)
		}
	}
	for _, k := range p.Kills {
		if now >= k.At && !n.routers[k.Node].Dead() {
			n.killRouter(now, k.Node)
		}
	}
	n.faults.AdvanceSchedule(now)
}

// killRouter hard-fails one router: its flits are purged (counted as
// dead-dropped, their packets marked dead) and its terminal's source queue
// is emptied — packets that never injected die without flit accounting.
func (n *Network) killRouter(now int64, node int) {
	r := n.routers[node]
	r.Kill(now, func(f router.Flit) {
		n.flitsDeadDropped++
		n.cFaultDeadDropped.Inc()
		n.notePacketDead(f.P)
	})
	t := &n.tiles[n.tileOf[node]]
	for _, q := range n.srcQ[node] {
		for {
			f, ok := q.Pop()
			if !ok {
				break
			}
			t.queuedFlits--
			n.notePacketDead(f.P)
		}
	}
	bit := node - t.lo
	t.srcPending[bit>>6] &^= 1 << (uint(bit) & 63)
}

// notePacketDead marks a packet lost inside the network, counting it once
// even when several of its flits are discarded separately.
func (n *Network) notePacketDead(p *router.Packet) {
	if p.FaultDead {
		return
	}
	p.FaultDead = true
	n.pktsDead++
}

// faultOnLinkDelivery intercepts one flit emerging from router id's output
// port p toward link.To. It reports true when the flit was consumed by a
// fault (discarded); false lets normal delivery proceed. Discarded flits
// bounce their credit straight back to the sender — the checksum logic at
// the link receiver rejects the flit without buffering it, so the slot it
// would have used is immediately free.
func (n *Network) faultOnLinkDelivery(now int64, id, p int, f router.Flit, link topology.Link) bool {
	if f.P.FaultDead {
		// Trailing flit of a packet that already died: the wormhole drains
		// here, keeping downstream state consistent.
		n.discardFlit(now, id, p, f)
		return true
	}
	if n.routers[link.To].Dead() {
		n.notePacketDead(f.P)
		n.discardFlit(now, id, p, f)
		return true
	}
	if f.Head() && n.faults.DrawDrop() {
		n.cFaultInjected.Inc()
		n.notePacketDead(f.P)
		n.discardFlit(now, id, p, f)
		return true
	}
	if n.faults.DrawCorrupt() {
		n.cFaultInjected.Inc()
		f.P.FaultCorrupt = true
	}
	return false
}

// discardFlit accounts one fault-discarded flit and bounces its credit to
// the sending router.
func (n *Network) discardFlit(now int64, id, p int, f router.Flit) {
	n.flitsDeadDropped++
	n.cFaultDeadDropped.Inc()
	n.routers[id].ReturnCredit(now, p, int(f.VC))
}

// acceptAtDest applies destination-side fault handling to a fully arrived
// packet: checksum rejection of corrupt payloads and NIC deduplication of
// redundant retransmissions. It reports true when the packet is accepted as
// a genuine arrival.
func (n *Network) acceptAtDest(now int64, p *router.Packet) bool {
	if p.FaultDead {
		return false // already accounted when it died
	}
	if p.FaultCorrupt {
		// The per-flit checksums fail: the destination discards the packet.
		// Recovery, if any, is by source timeout — there is no NACK.
		n.pktsDiscarded++
		n.cFaultDetected.Inc()
		return false
	}
	if n.nic != nil && !n.nic.AckOrDup(now, p) {
		n.pktsDup++
		return false
	}
	return true
}

// NextInternalEventAt returns the next cycle at which the network itself
// has scheduled work even while empty — a pending NIC timeout — or -1. The
// engine folds it into its fast-forward wake-up and its stall detection.
func (n *Network) NextInternalEventAt() int64 {
	if n.nic == nil {
		return -1
	}
	return n.nic.NextDeadline()
}

// FaultStats assembles the run's fault and recovery counters, or nil when
// fault injection is disabled. DeliveredFraction and P99Inflation are left
// for the run mode / sweep to fill.
func (n *Network) FaultStats() *fault.Stats {
	if n.faults == nil {
		return nil
	}
	s := &fault.Stats{
		Detected:          n.pktsDiscarded,
		DeadFlits:         n.flitsDeadDropped,
		DeadPackets:       n.pktsDead,
		Duplicates:        n.pktsDup,
		DeliveredFraction: 1,
	}
	s.CorruptInjected, s.DropInjected = n.faults.Injected()
	if n.nic != nil {
		s.Tracked, s.Acked, s.Retried, s.Abandoned, _ = n.nic.Counters()
		s.Outstanding = n.nic.Outstanding()
	}
	return s
}

// NIC exposes the recovery NIC (nil when disabled) for the invariant
// harness and its mutation test.
func (n *Network) NIC() *fault.NIC { return n.nic }

// Router returns router id, for invariant checking and tests.
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// StuckVCReport renders a human-readable dump of every router still holding
// flits, credits, or VC grants — the deadlock watchdog attaches it to
// stall failures so wedged runs are diagnosable from the report alone.
func (n *Network) StuckVCReport() string {
	var b strings.Builder
	const maxLines = 64
	lines := 0
	for id, r := range n.routers {
		stuck := r.StuckVCs()
		// Dead routers are always listed: after a kill purge they hold
		// nothing, but they are usually why everyone else is stuck.
		if len(stuck) == 0 && r.InFlight() == 0 && r.PendingCredits() == 0 && !r.Dead() {
			continue
		}
		if lines >= maxLines {
			fmt.Fprintf(&b, "... (further routers omitted)\n")
			break
		}
		state := ""
		if r.Dead() {
			state = " DEAD"
		}
		fmt.Fprintf(&b, "router %d%s: occ %d inflight %d pendingCredits %d\n",
			id, state, r.Occupancy(), r.InFlight(), r.PendingCredits())
		lines++
		for _, s := range stuck {
			if lines >= maxLines {
				break
			}
			fmt.Fprintf(&b, "  in(port %d, vc %d): %d flits, pkt %d", s.Port, s.VC, s.Buffered, s.PacketID)
			if s.Granted {
				fmt.Fprintf(&b, " -> granted out(port %d, vc %d) credits %d", s.OutPort, s.OutVC, s.OutCredits)
			}
			b.WriteString("\n")
			lines++
		}
	}
	if b.Len() == 0 {
		return "no stuck VCs: network is empty\n"
	}
	return b.String()
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse,
// returning the number of cycles stepped and whether it drained.
func (n *Network) RunUntilQuiescent(maxCycles int64) (int64, bool) {
	start := n.clock.Now()
	for !n.Quiescent() {
		if n.clock.Now()-start >= maxCycles {
			return n.clock.Now() - start, false
		}
		n.Step()
	}
	return n.clock.Now() - start, true
}
