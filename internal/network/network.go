// Package network assembles cycle-accurate routers into a complete on-chip
// network with one terminal per node, unbounded source queues (the open-loop
// "infinite source queue" model), packet-level send/receive hooks for
// closed-loop protocols, and conservation accounting.
//
// The network advances in whole cycles: each Step first delivers flits and
// credits that finished their pipelines (deliver phase), then lets every
// router compute one RC/VA/SA cycle (compute phase). Terminals inject
// between the two phases, so a flit injected in cycle c can be switched in
// cycle c at the earliest.
package network

import (
	"fmt"
	"sort"

	"noceval/internal/obs"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// Config gathers everything needed to build a network.
type Config struct {
	Topo    *topology.Topology
	Routing routing.Algorithm
	Router  router.Config
	Seed    uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("network: nil topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("network: nil routing algorithm")
	}
	return c.Router.Validate(c.Topo, c.Routing)
}

// Receiver observes packets arriving at terminals. Arrival means the tail
// flit reached the destination's ejection port.
type Receiver func(now int64, pkt *router.Packet)

// Network is a complete simulated on-chip network.
type Network struct {
	cfg     Config
	clock   sim.Clock
	rng     *sim.RNG
	routers []*router.Router
	srcQ    []*sim.FIFO[router.Flit]

	// OnReceive, when non-nil, is invoked for every packet that fully
	// arrives at its destination terminal.
	OnReceive Receiver
	// OnSend, when non-nil, observes every packet handed to Send (used by
	// the trace recorder).
	OnSend Receiver

	nextPacketID uint64

	// Conservation accounting.
	flitsInjected int64 // flits that entered a router injection buffer
	flitsEjected  int64
	pktsSent      int64 // packets handed to Send
	pktsArrived   int64
	queuedFlits   int64 // flits waiting in source queues

	// Observability state, all nil/empty until AttachObserver: the per-cycle
	// path pays one nil check when disabled.
	obs          *obs.Observer
	tracer       *obs.Tracer
	nodeInjected []int64 // cumulative terminal flit counts, per node
	nodeEjected  []int64
	// prev* hold the cumulative counter values at the previous sample so
	// each sample reports per-window deltas.
	prevXbar      []int64
	prevPort      [][]int64
	prevInjected  []int64
	prevEjected   []int64
	lastSampleAt  int64
	cFlitInjected *obs.Counter
	cFlitEjected  *obs.Counter
	cPktSent      *obs.Counter
	cPktArrived   *obs.Counter
}

// New builds a network. It panics on invalid configuration; use
// Config.Validate to check first when the configuration is user-supplied.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := cfg.Topo
	n := &Network{
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		routers: make([]*router.Router, t.N),
		srcQ:    make([]*sim.FIFO[router.Flit], t.N),
	}
	for i := 0; i < t.N; i++ {
		n.routers[i] = router.New(i, t, cfg.Routing, cfg.Router)
		n.srcQ[i] = sim.NewFIFO[router.Flit](16)
	}
	// Wire upstream references for credit return.
	for i := 0; i < t.N; i++ {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(i, p)
			if link.Connected() {
				n.routers[link.To].SetUpstream(link.ToPort, n.routers[i], p)
			}
		}
	}
	return n
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// AttachObserver wires an observer into the network: aggregate counters
// register into its metrics registry, routers get the flit tracer, and
// Step starts taking per-router telemetry samples on the observer's
// schedule. A nil observer detaches everything (the default).
func (n *Network) AttachObserver(o *obs.Observer) {
	n.obs = o
	if o == nil {
		n.tracer = nil
		for _, r := range n.routers {
			r.SetTracer(nil)
		}
		return
	}
	n.tracer = o.Tracer
	for _, r := range n.routers {
		r.SetTracer(o.Tracer)
	}
	reg := o.Registry
	n.cFlitInjected = reg.Counter("net.flits_injected")
	n.cFlitEjected = reg.Counter("net.flits_ejected")
	n.cPktSent = reg.Counter("net.packets_sent")
	n.cPktArrived = reg.Counter("net.packets_arrived")
	nodes := n.cfg.Topo.N
	n.nodeInjected = make([]int64, nodes)
	n.nodeEjected = make([]int64, nodes)
	n.prevXbar = make([]int64, nodes)
	n.prevInjected = make([]int64, nodes)
	n.prevEjected = make([]int64, nodes)
	n.prevPort = make([][]int64, nodes)
	for i := range n.prevPort {
		n.prevPort[i] = make([]int64, n.cfg.Topo.Radix)
	}
	n.lastSampleAt = n.clock.Now()
}

// Observer returns the attached observer, nil when observability is off.
func (n *Network) Observer() *obs.Observer { return n.obs }

// sample records one telemetry observation per router for the window that
// ended at cycle now.
func (n *Network) sample(now int64) {
	window := now - n.lastSampleAt
	if window <= 0 {
		window = 1
	}
	t := n.cfg.Topo
	tele := n.obs.Telemetry
	for id, r := range n.routers {
		xbar := r.FlitsRouted
		var linkFlits int64
		links := 0
		for p := 0; p < t.Radix; p++ {
			if !t.LinkAt(id, p).Connected() {
				continue
			}
			pf := r.PortFlits(p)
			linkFlits += pf - n.prevPort[id][p]
			n.prevPort[id][p] = pf
			links++
		}
		linkUtil := 0.0
		if links > 0 {
			linkUtil = float64(linkFlits) / float64(window) / float64(links)
		}
		avg, max := r.SampleVCOccupancy()
		tele.AddRouter(obs.RouterSample{
			Cycle:    now,
			Router:   id,
			XbarUtil: float64(xbar-n.prevXbar[id]) / float64(window),
			LinkUtil: linkUtil,
			BufOcc:   r.Occupancy(),
			AvgVCOcc: avg,
			MaxVCOcc: max,
			Injected: n.nodeInjected[id] - n.prevInjected[id],
			Ejected:  n.nodeEjected[id] - n.prevEjected[id],
		})
		n.prevXbar[id] = xbar
		n.prevInjected[id] = n.nodeInjected[id]
		n.prevEjected[id] = n.nodeEjected[id]
	}
	n.lastSampleAt = now
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.clock.Now() }

// RNG returns the network's private random source (used by workloads that
// want a stream tied to the network seed).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Nodes returns the number of terminals.
func (n *Network) Nodes() int { return n.cfg.Topo.N }

// NewPacket allocates a packet from src to dst with the given flit count
// and kind, stamps its creation time, and prepares its routing state
// (including the intermediate node for two-phase algorithms).
func (n *Network) NewPacket(src, dst, size int, kind router.Kind) *router.Packet {
	n.nextPacketID++
	mid := n.cfg.Routing.PickIntermediate(n.cfg.Topo, n.rng, src, dst)
	p := &router.Packet{
		ID:         n.nextPacketID,
		Src:        src,
		Dst:        dst,
		Size:       size,
		Kind:       kind,
		CreateTime: n.clock.Now(),
		InjectTime: -1,
		ArriveTime: -1,
		Route:      routing.NewState(mid),
	}
	p.Route.ArriveAt(src) // an intermediate equal to the source is a no-op phase
	return p
}

// Send queues the packet's flits at its source terminal. The packet will be
// injected into the router as buffer space allows.
func (n *Network) Send(p *router.Packet) {
	if n.OnSend != nil {
		n.OnSend(n.clock.Now(), p)
	}
	for _, f := range router.Flits(p) {
		n.srcQ[p.Src].Push(f)
	}
	n.pktsSent++
	n.queuedFlits += int64(p.Size)
	n.cPktSent.Inc()
}

// SourceQueueLen returns the number of flits waiting at a node's source
// queue (not yet inside the network).
func (n *Network) SourceQueueLen(node int) int { return n.srcQ[node].Len() }

// Step advances the network one cycle.
func (n *Network) Step() {
	now := n.clock.Now()
	n.deliver(now)
	n.inject(now)
	for _, r := range n.routers {
		r.Step(now)
	}
	if n.obs != nil && n.obs.ShouldSample(now) {
		n.sample(now)
	}
	n.clock.Tick()
}

// deliver moves flits that completed a router/link pipeline into the next
// input buffer, and hands fully arrived packets to the receiver.
func (n *Network) deliver(now int64) {
	t := n.cfg.Topo
	local := t.LocalPort()
	for id, r := range n.routers {
		if r.InFlight() == 0 {
			continue
		}
		for p := 0; p < t.Ports(); p++ {
			f, ok := r.PopDelivery(now, p)
			if !ok {
				continue
			}
			if p == local {
				n.flitsEjected++
				if n.obs != nil {
					n.nodeEjected[id]++
					n.cFlitEjected.Inc()
				}
				if f.Tail() {
					f.P.ArriveTime = now
					n.pktsArrived++
					n.cPktArrived.Inc()
					if n.tracer != nil {
						n.tracer.Record(now, f.P.ID, id, obs.PhaseEject)
					}
					if n.OnReceive != nil {
						n.OnReceive(now, f.P)
					}
				}
				continue
			}
			link := t.LinkAt(id, p)
			n.routers[link.To].AcceptFlit(link.ToPort, int(f.VC), f)
		}
	}
}

// inject moves flits from source queues into injection buffers while space
// remains.
func (n *Network) inject(now int64) {
	for node, q := range n.srcQ {
		r := n.routers[node]
		for q.Len() > 0 && r.CanAcceptInjection() {
			f, _ := q.Pop()
			if f.Head() {
				f.P.InjectTime = now
				if n.tracer != nil {
					n.tracer.Record(now, f.P.ID, node, obs.PhaseInject)
				}
			}
			r.AcceptFlit(n.cfg.Topo.LocalPort(), r.InjectionVC(), f)
			n.flitsInjected++
			n.queuedFlits--
			if n.obs != nil {
				n.nodeInjected[node]++
				n.cFlitInjected.Inc()
			}
		}
	}
}

// Quiescent reports whether no flits remain anywhere: source queues,
// input buffers, and pipelines are all empty.
func (n *Network) Quiescent() bool {
	if n.queuedFlits != 0 {
		return false
	}
	for _, r := range n.routers {
		if !r.Idle() {
			return false
		}
	}
	return true
}

// Stats returns the network's cumulative conservation counters.
func (n *Network) Stats() (pktsSent, pktsArrived, flitsInjected, flitsEjected int64) {
	return n.pktsSent, n.pktsArrived, n.flitsInjected, n.flitsEjected
}

// CheckConservation returns an error when flit/packet accounting is
// inconsistent with the amount of traffic still in flight; tests call it
// after draining to prove nothing was lost or duplicated.
func (n *Network) CheckConservation() error {
	inside := int64(0)
	for _, r := range n.routers {
		inside += int64(r.Occupancy() + r.InFlight())
	}
	if n.flitsInjected-n.flitsEjected != inside {
		return fmt.Errorf("network: flit conservation violated: injected %d, ejected %d, inside %d",
			n.flitsInjected, n.flitsEjected, inside)
	}
	if n.Quiescent() && n.pktsSent != n.pktsArrived {
		return fmt.Errorf("network: packet conservation violated at quiescence: sent %d, arrived %d",
			n.pktsSent, n.pktsArrived)
	}
	return nil
}

// ChannelLoad describes the traffic carried by one network channel.
type ChannelLoad struct {
	From, Port, To int
	Flits          int64
	// Utilization is flits divided by elapsed cycles: the fraction of the
	// channel's bandwidth in use.
	Utilization float64
}

// ChannelLoads returns the per-channel flit counts and utilizations since
// construction, most-loaded first. It identifies the saturated channel
// that bounds throughput (the paper's footnote: "the saturation throughput
// is determined when one channel in the network is saturated").
func (n *Network) ChannelLoads() []ChannelLoad {
	t := n.cfg.Topo
	cycles := n.clock.Now()
	var out []ChannelLoad
	for id, r := range n.routers {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(id, p)
			if !link.Connected() {
				continue
			}
			cl := ChannelLoad{From: id, Port: p, To: link.To, Flits: r.PortFlits(p)}
			if cycles > 0 {
				cl.Utilization = float64(cl.Flits) / float64(cycles)
			}
			out = append(out, cl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// MaxChannelUtilization returns the utilization of the busiest channel.
func (n *Network) MaxChannelUtilization() float64 {
	loads := n.ChannelLoads()
	if len(loads) == 0 {
		return 0
	}
	return loads[0].Utilization
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse,
// returning the number of cycles stepped and whether it drained.
func (n *Network) RunUntilQuiescent(maxCycles int64) (int64, bool) {
	start := n.clock.Now()
	for !n.Quiescent() {
		if n.clock.Now()-start >= maxCycles {
			return n.clock.Now() - start, false
		}
		n.Step()
	}
	return n.clock.Now() - start, true
}
