// Sharded cycle loop: the network is partitioned into contiguous spatial
// tiles (topology.Partition), each owned by one member of a resident
// worker gang, and every cycle is stepped as a fixed phase schedule with
// barriers at the phase boundaries:
//
//	deliver (parallel, cross-tile effects buffered)
//	  barrier
//	apply ejections + cross-tile flits (serial, member 0)
//	  barrier
//	inject + compute (parallel)
//	apply cross-tile credits (serial, caller)
//
// The schedule is sound by conservative lookahead: every cross-tile link
// carries at least one cycle of delay (wireShards asserts it), so a flit
// forwarded by tile A in cycle c cannot influence tile B before cycle
// c+1 — buffering it across the barrier and landing it before the next
// cycle's compute phase reproduces the sequential semantics exactly.
// Credits travel on pipes of delay >= 2 and are provably unusable in the
// cycle they are issued, so they are applied even later (after compute)
// without observable difference; see ejectFlit and DESIGN §12 for the
// ordering arguments that make the serial apply sections bit-identical to
// the sequential sweep.
package network

import (
	"fmt"
	"math/bits"

	"noceval/internal/obs"
	"noceval/internal/par"
	"noceval/internal/router"
	"noceval/internal/topology"
)

// wireShards converts a freshly built multi-tile network to the sharded
// cycle loop: cross-tile input ports are marked so their credit returns
// divert into the forwarding tile's outbox, and the worker gang is
// started. Called from New only when the partition produced >1 tile.
func (n *Network) wireShards(parts []topology.Tile) {
	t := n.cfg.Topo
	if d := t.MinCrossDelay(parts); d < 1 {
		panic(fmt.Sprintf("network: cross-tile link with delay %d; sharding needs >= 1 cycle of lookahead", d))
	}
	for i := 0; i < t.N; i++ {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(i, p)
			if link.Connected() && n.tileOf[link.To] != n.tileOf[i] {
				n.routers[link.To].SetUpstreamCross(link.ToPort)
			}
		}
	}
	for ti := range n.tiles {
		tile := &n.tiles[ti]
		sink := func(up *router.Router, port, vc int) {
			tile.creditOut = append(tile.creditOut, crossCredit{up: up, port: port, vc: vc})
		}
		for id := tile.lo; id < tile.hi; id++ {
			n.routers[id].SetCreditSink(sink)
		}
	}
	n.gang = par.NewGang(len(n.tiles))
	obs.Default().Gauge("shard.count").Set(float64(len(n.tiles)))
}

// stepSharded advances one cycle on the gang. Fault injection draws from
// the shared RNG during the deliver phase, so faulted networks keep the
// pre-step and deliver phases serial (preserving draw order) and
// parallelize only inject+compute; fault-free networks run the full
// buffered schedule.
func (n *Network) stepSharded() {
	now := n.clock.Now()
	if n.faults != nil {
		n.faultPreStep(now)
		n.deliver(now)
		n.gang.Run(func(ti int) {
			n.injectTile(now, ti)
			n.stepTile(now, ti)
		})
	} else {
		n.gang.Run(func(ti int) {
			n.deliverTileBuffered(now, ti)
			n.gang.Barrier()
			if ti == 0 {
				n.applyCrossDeliveries(now)
			}
			n.gang.Barrier()
			n.injectTile(now, ti)
			n.stepTile(now, ti)
		})
	}
	n.applyCrossCredits(now)
	if n.obs != nil && n.obs.ShouldSample(now) {
		n.sample(now)
	}
	n.clock.Tick()
}

// deliverTileBuffered is the parallel deliver phase for one tile: flits
// completing a pipeline are moved directly when the receiver is inside
// the tile, while terminal ejections (which mutate global accounting and
// may invoke OnReceive) and flits bound for another tile are appended to
// the tile's outboxes in ascending-router-id order for the serial apply
// section.
func (n *Network) deliverTileBuffered(now int64, ti int) {
	t := &n.tiles[ti]
	topo := n.cfg.Topo
	local := topo.LocalPort()
	for w := range t.active {
		word := t.active[w]
		for word != 0 {
			id := t.lo + w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.routers[id]
			for m := r.PipeMask(); m != 0; m &= m - 1 {
				p := bits.TrailingZeros64(m)
				f, ok := r.PopDelivery(now, p)
				if !ok {
					continue
				}
				if p == local {
					t.ejectOut = append(t.ejectOut, ejectedFlit{id: id, f: f})
					continue
				}
				link := topo.LinkAt(id, p)
				if n.tileOf[link.To] != int32(ti) {
					t.flitOut = append(t.flitOut, crossFlit{to: link.To, toPort: link.ToPort, f: f})
					continue
				}
				n.routers[link.To].AcceptFlit(link.ToPort, int(f.VC), f)
			}
		}
	}
}

// applyCrossDeliveries drains every tile's deliver-phase outboxes on one
// goroutine. Ejections go first, in tile order: tiles are ascending id
// ranges and each outbox was filled in ascending id order, so OnReceive
// callbacks (and any RNG draws they make through NewPacket) fire in
// exactly the sequential sweep's order. At most one flit pops per
// (router, input port) per cycle, so the cross-tile AcceptFlits touch
// disjoint buffer slots and commute with the ejections.
func (n *Network) applyCrossDeliveries(now int64) {
	for ti := range n.tiles {
		t := &n.tiles[ti]
		for _, e := range t.ejectOut {
			n.ejectFlit(now, e.id, e.f)
		}
		t.ejectOut = t.ejectOut[:0]
	}
	for ti := range n.tiles {
		t := &n.tiles[ti]
		for _, c := range t.flitOut {
			n.routers[c.to].AcceptFlit(c.toPort, int(c.f.VC), c.f)
		}
		t.flitOut = t.flitOut[:0]
	}
}

// applyCrossCredits returns the compute phase's deferred cross-tile
// credits to their upstream routers. A credit issued in cycle now rides a
// pipe of delay >= 2, so it cannot be consumed before cycle now+2 whether
// it is pushed mid-compute (sequential immediate delivery) or here after
// the compute phase — the end-of-cycle router state is identical either
// way (the upstream router ends the cycle awake with the credit pending
// in both schedules).
func (n *Network) applyCrossCredits(now int64) {
	for ti := range n.tiles {
		t := &n.tiles[ti]
		for _, c := range t.creditOut {
			c.up.ReturnCredit(now, c.port, c.vc)
		}
		t.creditOut = t.creditOut[:0]
	}
}

// Close releases the sharded network's resident workers; idempotent, and
// a no-op for a sequential network. Run modes close their network when
// they finish; an unclosed network's workers are reclaimed by the gang's
// finalizer.
func (n *Network) Close() {
	if n.gang != nil {
		n.gang.Close()
	}
}

// ShardStats reports the tile count, the number of sharded cycle waves
// dispatched, and the mean sampled load imbalance (1 = perfectly
// balanced; 0 before the first sample). A sequential network reports
// {1, 0, 0}.
func (n *Network) ShardStats() (shards int, waves int64, imbalance float64) {
	if n.gang == nil {
		return 1, 0, 0
	}
	waves, imbalance = n.gang.Stats()
	return len(n.tiles), waves, imbalance
}
