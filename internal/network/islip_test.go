package network

import (
	"testing"

	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
)

// measureAccepted runs uniform traffic at the given offered packet rate
// and returns accepted flits/cycle/node.
func measureAccepted(t *testing.T, saIters int, rate float64) float64 {
	t.Helper()
	topo := topology.NewMesh(8, 8)
	n := New(Config{
		Topo:    topo,
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 4, BufDepth: 4, Delay: 1, SAIterations: saIters},
		Seed:    55,
	})
	rng := n.RNG()
	var ejected int64
	n.OnReceive = func(now int64, p *router.Packet) { ejected += int64(p.Size) }
	const cycles = 4000
	for c := 0; c < cycles; c++ {
		for node := 0; node < topo.N; node++ {
			if rng.Bernoulli(rate) {
				n.Send(n.NewPacket(node, rng.Intn(topo.N), 1, router.KindData))
			}
		}
		n.Step()
	}
	return float64(ejected) / float64(cycles) / float64(topo.N)
}

func TestISLIPIterationsDoNotHurtThroughput(t *testing.T) {
	// Multi-pass allocation can only add matches: accepted throughput at
	// overload must be >= the single-pass allocator's.
	one := measureAccepted(t, 1, 0.8)
	three := measureAccepted(t, 3, 0.8)
	if three < one*0.98 {
		t.Errorf("3-iteration SA accepted %.4f, below single-pass %.4f", three, one)
	}
	t.Logf("accepted at overload: 1 iter %.4f, 3 iters %.4f", one, three)
}

func TestISLIPConservation(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	n := New(Config{
		Topo:    topo,
		Routing: routing.ROMM{},
		Router:  router.Config{VCs: 4, BufDepth: 2, Delay: 2, SAIterations: 4},
		Seed:    56,
	})
	rng := n.RNG()
	sent, arrived := 0, 0
	n.OnReceive = func(now int64, p *router.Packet) { arrived++ }
	for c := 0; c < 2000; c++ {
		for node := 0; node < topo.N; node++ {
			if rng.Bernoulli(0.5) {
				n.Send(n.NewPacket(node, rng.Intn(topo.N), 1+rng.Intn(4), router.KindData))
				sent++
			}
		}
		n.Step()
	}
	if _, ok := n.RunUntilQuiescent(1000000); !ok {
		t.Fatal("iSLIP network did not drain")
	}
	if arrived != sent {
		t.Errorf("arrived %d, sent %d", arrived, sent)
	}
	if err := n.CheckConservation(); err != nil {
		t.Error(err)
	}
}
