// Package workload generates the synthetic benchmark instruction streams
// the execution-driven CMP simulator runs. Each benchmark from the paper's
// evaluation (SPLASH-2: barnes, fft, lu; PARSEC: blackscholes, canneal) is
// reduced to the statistical profile the paper itself uses to characterize
// it — network access rate, L2 miss rate, kernel-traffic share, timer rate
// (Tables III and IV) — and a generator reproduces memory-access streams
// with those statistics.
//
// Address-space layout (line addresses):
//
//	private region: per-core hot working set, mostly L1-resident
//	shared  region: one global region all cores touch (coherence traffic)
//	stream  region: per-core streaming/cold region sized to force L2 misses
//	kernel  regions: a shared kernel region plus per-core kernel stacks
package workload

import (
	"fmt"

	"noceval/internal/cmp"
	"noceval/internal/sim"
)

// Clock selects the modelled core clock frequency, which sets the timer-
// interrupt interval in cycles (the interrupt rate is fixed in wall-clock
// time, §V).
type Clock int

// Modelled clock frequencies: the Simics Serengeti default and a modern
// high-end core.
const (
	Clock75MHz Clock = iota
	Clock3GHz
)

// String returns the clock's name.
func (c Clock) String() string {
	if c == Clock3GHz {
		return "3GHz"
	}
	return "75MHz"
}

// clockScale is the ratio of cycles per wall-clock interval relative to
// the 75 MHz baseline.
func (c Clock) clockScale() int64 {
	if c == Clock3GHz {
		return 40
	}
	return 1
}

// Profile is the statistical model of one benchmark.
type Profile struct {
	Name string

	// UserInsts is the per-core user instruction budget (a scaled-down run;
	// the paper runs full benchmarks for days, we run the same pipeline at
	// laptop scale).
	UserInsts int64

	// MemFrac is the fraction of user instructions that are memory
	// operations; StoreFrac the store share of those.
	MemFrac   float64
	StoreFrac float64

	// Region mix: fractions of memory operations aimed at the cold
	// streaming region and the shared region; the rest hit the private hot
	// region. Region sizes are in cache lines.
	ColdFrac     float64
	SharedFrac   float64
	PrivateLines int
	SharedLines  int
	StreamLines  int

	// Barriers splits the run into that many +1 barrier-separated phases.
	Barriers int

	// Syscall kernel instructions at thread start and end (runtime-
	// independent kernel traffic: thread creation, joins — §V).
	SyscallStartInsts int64
	SyscallEndInsts   int64

	// Kernel stream characteristics. KernelColdFrac is the share of kernel
	// memory ops aimed at the (warmed) shared kernel region;
	// KernelStreamFrac the share streaming through unwarmed kernel buffers
	// (sets the OS L2 miss rate of Table IV).
	KernelMemFrac     float64
	KernelStoreFrac   float64
	KernelColdFrac    float64
	KernelStreamFrac  float64
	KernelSharedLines int

	// TimerPeriod75 is the cycle interval between timer interrupts at
	// 75 MHz (x40 at 3 GHz); TimerHandlerInsts the handler length.
	TimerPeriod75     int64
	TimerHandlerInsts int64
}

// TimerPeriod returns the interrupt interval in cycles at the given clock.
func (p Profile) TimerPeriod(c Clock) int64 {
	if p.TimerPeriod75 <= 0 {
		return 0
	}
	return p.TimerPeriod75 * c.clockScale()
}

// Region bases in line-address space; regions never overlap.
const (
	privateBase = uint64(1) << 24
	sharedBase  = uint64(1) << 40
	streamBase  = uint64(1) << 41
	kSharedBase = uint64(1) << 42
	kStackBase  = uint64(1) << 43
	kStreamBase = uint64(1) << 44
	coreStride  = uint64(1) << 20 // per-core sub-region spacing
)

// Thread is one core's instruction stream generator; it implements
// cmp.Program.
type Thread struct {
	p     Profile
	core  int
	cores int
	rng   *sim.RNG

	emitted   int64
	phase     int // barrier phases passed
	didStart  bool
	didEnd    bool
	pendingOp bool // alternate compute gap / memory op

	streamPtr  uint64
	kStreamPtr uint64
}

// NewThread builds the generator for one core.
func NewThread(p Profile, core, cores int, seed uint64) *Thread {
	return &Thread{
		p:     p,
		core:  core,
		cores: cores,
		rng:   sim.NewRNG(seed ^ uint64(core)*0x9e3779b97f4a7c15 ^ 0x5851f42d4c957f2d),
	}
}

// lineToAddr converts a line address to a byte address (64-byte lines).
func lineToAddr(line uint64) uint64 { return line << 6 }

// userAddr draws a user memory-op line address per the region mix.
func (t *Thread) userAddr() uint64 {
	r := t.rng.Float64()
	switch {
	case r < t.p.ColdFrac && t.p.StreamLines > 0:
		// Sequential streaming through the per-core cold region.
		t.streamPtr++
		return streamBase + uint64(t.core)*coreStride + t.streamPtr%uint64(t.p.StreamLines)
	case r < t.p.ColdFrac+t.p.SharedFrac && t.p.SharedLines > 0:
		return sharedBase + uint64(t.rng.Intn(t.p.SharedLines))
	default:
		n := t.p.PrivateLines
		if n < 1 {
			n = 1
		}
		return privateBase + uint64(t.core)*coreStride + uint64(t.rng.Intn(n))
	}
}

// NextUser implements cmp.Program.
func (t *Thread) NextUser() cmp.Op {
	if !t.didStart {
		t.didStart = true
		if t.p.SyscallStartInsts > 0 {
			return cmp.Op{Kind: cmp.OpSyscall, N: t.p.SyscallStartInsts}
		}
	}
	if t.emitted >= t.p.UserInsts {
		if !t.didEnd {
			t.didEnd = true
			if t.p.SyscallEndInsts > 0 {
				return cmp.Op{Kind: cmp.OpSyscall, N: t.p.SyscallEndInsts}
			}
		}
		return cmp.Op{Kind: cmp.OpDone}
	}
	// Barrier phase boundaries.
	if t.p.Barriers > 0 {
		phaseLen := t.p.UserInsts / int64(t.p.Barriers+1)
		if phaseLen > 0 && t.emitted >= int64(t.phase+1)*phaseLen && t.phase < t.p.Barriers {
			t.phase++
			return cmp.Op{Kind: cmp.OpBarrier}
		}
	}
	// Alternate compute gaps and memory ops so that MemFrac of
	// instructions are memory operations.
	if !t.pendingOp && t.p.MemFrac > 0 {
		t.pendingOp = true
		gap := int64(1)
		if t.p.MemFrac < 1 {
			gap = int64(t.rng.Geometric(t.p.MemFrac)) - 1 // instructions before the mem op
		}
		if gap > 0 {
			t.emitted += gap
			return cmp.Op{Kind: cmp.OpCompute, N: gap}
		}
	}
	t.pendingOp = false
	t.emitted++
	addr := lineToAddr(t.userAddr())
	if t.rng.Bernoulli(t.p.StoreFrac) {
		return cmp.Op{Kind: cmp.OpStore, Addr: addr}
	}
	return cmp.Op{Kind: cmp.OpLoad, Addr: addr}
}

// kernelAddr draws a kernel memory-op line address.
func (t *Thread) kernelAddr() uint64 {
	r := t.rng.Float64()
	switch {
	case r < t.p.KernelStreamFrac:
		t.kStreamPtr++
		return kStreamBase + uint64(t.core)*coreStride + t.kStreamPtr%coreStride
	case r < t.p.KernelStreamFrac+t.p.KernelColdFrac && t.p.KernelSharedLines > 0:
		return kSharedBase + uint64(t.rng.Intn(t.p.KernelSharedLines))
	default:
		return kStackBase + uint64(t.core)*coreStride + uint64(t.rng.Intn(64))
	}
}

// NextKernel implements cmp.Program.
func (t *Thread) NextKernel() cmp.Op {
	if t.rng.Bernoulli(t.p.KernelMemFrac) {
		addr := lineToAddr(t.kernelAddr())
		if t.rng.Bernoulli(t.p.KernelStoreFrac) {
			return cmp.Op{Kind: cmp.OpStore, Addr: addr}
		}
		return cmp.Op{Kind: cmp.OpLoad, Addr: addr}
	}
	return cmp.Op{Kind: cmp.OpCompute, N: 1}
}

// Programs builds one Thread per core.
func Programs(p Profile, cores int, seed uint64) []cmp.Program {
	out := make([]cmp.Program, cores)
	for i := 0; i < cores; i++ {
		out[i] = NewThread(p, i, cores, seed)
	}
	return out
}

// ByName returns the built-in profile with the given benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// All returns the five benchmark profiles of the paper's evaluation, in the
// order Fig 14 lists them. The numbers are tuned so the measured NAR, L2
// miss rates and kernel-traffic shares reproduce the relative
// characteristics of Tables III and IV at this repository's scaled-down
// run lengths.
func All() []Profile {
	return []Profile{
		// blackscholes: embarrassingly parallel, tiny working set, almost
		// no sharing, lowest L2 miss rate, kernel traffic dominated by
		// thread create/join syscalls.
		{
			Name:      "blackscholes",
			UserInsts: 60000,
			MemFrac:   0.25, StoreFrac: 0.25,
			ColdFrac: 0.0002, SharedFrac: 0.015,
			PrivateLines: 320, SharedLines: 2048, StreamLines: 4096,
			Barriers:          1,
			SyscallStartInsts: 2600, SyscallEndInsts: 2600,
			KernelMemFrac: 0.35, KernelStoreFrac: 0.3, KernelColdFrac: 0.5, KernelStreamFrac: 0.012, KernelSharedLines: 1024,
			TimerPeriod75: 41000, TimerHandlerInsts: 260,
		},
		// lu: blocked dense factorization; moderate sharing with real
		// producer/consumer reuse, significant L2 misses, and the largest
		// timer-traffic share (lowest NAR makes kernel traffic dominant).
		{
			Name:      "lu",
			UserInsts: 60000,
			MemFrac:   0.12, StoreFrac: 0.3,
			ColdFrac: 0.018, SharedFrac: 0.035,
			PrivateLines: 288, SharedLines: 4096, StreamLines: 600000,
			Barriers:          4,
			SyscallStartInsts: 2400, SyscallEndInsts: 2400,
			KernelMemFrac: 0.3, KernelStoreFrac: 0.3, KernelColdFrac: 0.4, KernelStreamFrac: 0.004, KernelSharedLines: 1024,
			TimerPeriod75: 12500, TimerHandlerInsts: 260,
		},
		// canneal: pointer-chasing over a huge graph; high NAR, large L2
		// miss rate from the enormous random working set.
		{
			Name:      "canneal",
			UserInsts: 60000,
			MemFrac:   0.3, StoreFrac: 0.2,
			ColdFrac: 0.028, SharedFrac: 0.07,
			PrivateLines: 288, SharedLines: 60000, StreamLines: 800000,
			Barriers:          0,
			SyscallStartInsts: 2800, SyscallEndInsts: 2800,
			KernelMemFrac: 0.32, KernelStoreFrac: 0.3, KernelColdFrac: 0.45, KernelStreamFrac: 0.022, KernelSharedLines: 1024,
			TimerPeriod75: 26000, TimerHandlerInsts: 260,
		},
		// fft: all-to-all transpose phases streaming through matrices far
		// larger than the L2: the highest L2 miss rate in the suite.
		{
			Name:      "fft",
			UserInsts: 60000,
			MemFrac:   0.22, StoreFrac: 0.35,
			ColdFrac: 0.075, SharedFrac: 0.025,
			PrivateLines: 288, SharedLines: 4096, StreamLines: 1000000,
			Barriers:          3,
			SyscallStartInsts: 1300, SyscallEndInsts: 1300,
			KernelMemFrac: 0.4, KernelStoreFrac: 0.3, KernelColdFrac: 0.6, KernelStreamFrac: 0.016, KernelSharedLines: 2048,
			TimerPeriod75: 18000, TimerHandlerInsts: 260,
		},
		// barnes: octree N-body; the most network traffic per cycle but
		// excellent locality once fetched — near-zero L2 miss rate.
		{
			Name:      "barnes",
			UserInsts: 60000,
			MemFrac:   0.35, StoreFrac: 0.2,
			ColdFrac: 0.001, SharedFrac: 0.045,
			PrivateLines: 288, SharedLines: 6000, StreamLines: 4096,
			Barriers:          2,
			SyscallStartInsts: 3400, SyscallEndInsts: 3400,
			KernelMemFrac: 0.3, KernelStoreFrac: 0.3, KernelColdFrac: 0.4, KernelStreamFrac: 0.013, KernelSharedLines: 1024,
			TimerPeriod75: 67000, TimerHandlerInsts: 260,
		},
	}
}

// WarmSets returns the cache-warming plan for a run of this profile:
// perCore[c] lists the lines to preload into core c's L1 in Modified state
// (its private hot set and kernel stack), and l2 lists the lines to preload
// into the shared L2 (the user and kernel shared regions). This models
// running from a warmed-up checkpoint (§IV-A).
func (p Profile) WarmSets(cores int) (perCore [][]uint64, l2 []uint64) {
	perCore = make([][]uint64, cores)
	for c := 0; c < cores; c++ {
		base := privateBase + uint64(c)*coreStride
		for i := 0; i < p.PrivateLines; i++ {
			perCore[c] = append(perCore[c], base+uint64(i))
		}
		kbase := kStackBase + uint64(c)*coreStride
		for i := uint64(0); i < 64; i++ {
			perCore[c] = append(perCore[c], kbase+i)
		}
	}
	for i := 0; i < p.SharedLines; i++ {
		l2 = append(l2, sharedBase+uint64(i))
	}
	for i := 0; i < p.KernelSharedLines; i++ {
		l2 = append(l2, kSharedBase+uint64(i))
	}
	return perCore, l2
}

// Warm applies the profile's warming plan to a system and resets cache
// statistics so measurements start from the warmed state.
func (p Profile) Warm(sys *cmp.System, cores int) {
	perCore, l2 := p.WarmSets(cores)
	for c, lines := range perCore {
		sys.WarmL1(c, lines, cmp.Modified)
	}
	sys.WarmL2(l2)
	sys.ResetCacheStats()
}

// Names returns the benchmark names in evaluation order.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
