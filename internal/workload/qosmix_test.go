package workload

import (
	"testing"

	"noceval/internal/traffic"
)

// TestQoSMixesValid runs every built-in mix through the traffic-layer
// validator: names unique, shares in (0,1] summing to 1, patterns and
// sizes present.
func TestQoSMixesValid(t *testing.T) {
	names := QoSMixNames()
	if len(names) == 0 {
		t.Fatal("no QoS mix presets")
	}
	for _, name := range names {
		mix, err := QoSMixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := traffic.ValidateClasses(mix); err != nil {
			t.Errorf("%s: invalid mix: %v", name, err)
		}
	}
}

func TestQoSMixUnknown(t *testing.T) {
	if _, err := QoSMixByName("no-such-mix"); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestQoSMixCopy: mutating the returned slice must not corrupt the preset.
func TestQoSMixCopy(t *testing.T) {
	a, _ := QoSMixByName("latency-bulk")
	a[0].Share = 0.99
	b, _ := QoSMixByName("latency-bulk")
	if b[0].Share == 0.99 {
		t.Error("preset mutated through returned slice")
	}
}
