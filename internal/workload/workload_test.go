package workload

import (
	"testing"
	"testing/quick"

	"noceval/internal/cmp"
)

func TestProfilesWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, p := range All() {
		if p.Name == "" || names[p.Name] {
			t.Errorf("bad or duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		if p.UserInsts <= 0 {
			t.Errorf("%s: no instructions", p.Name)
		}
		if p.MemFrac <= 0 || p.MemFrac >= 1 {
			t.Errorf("%s: MemFrac %v out of (0,1)", p.Name, p.MemFrac)
		}
		if p.ColdFrac+p.SharedFrac >= 1 {
			t.Errorf("%s: region fractions exceed 1", p.Name)
		}
		if p.TimerPeriod75 <= 0 {
			t.Errorf("%s: no timer period", p.Name)
		}
	}
	if len(names) != 5 {
		t.Errorf("expected 5 benchmarks, got %d", len(names))
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("lu")
	if err != nil || p.Name != "lu" {
		t.Errorf("ByName(lu) = %v, %v", p.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if got := len(Names()); got != 5 {
		t.Errorf("Names() returned %d entries", got)
	}
}

func TestTimerPeriodScalesWithClock(t *testing.T) {
	p, _ := ByName("blackscholes")
	p75 := p.TimerPeriod(Clock75MHz)
	p3g := p.TimerPeriod(Clock3GHz)
	if p3g != 40*p75 {
		t.Errorf("3GHz period %d != 40 * 75MHz period %d", p3g, p75)
	}
	none := Profile{}
	if none.TimerPeriod(Clock3GHz) != 0 {
		t.Error("zero period not preserved")
	}
}

func TestClockStrings(t *testing.T) {
	if Clock75MHz.String() != "75MHz" || Clock3GHz.String() != "3GHz" {
		t.Error("clock strings broken")
	}
}

func TestThreadEmitsExactInstructionBudget(t *testing.T) {
	p, _ := ByName("fft")
	p.UserInsts = 5000
	th := NewThread(p, 0, 16, 1)
	var insts int64
	syscalls := 0
	barriers := 0
	for i := 0; i < 1_000_000; i++ {
		op := th.NextUser()
		switch op.Kind {
		case cmp.OpDone:
			if insts < p.UserInsts {
				t.Fatalf("done after %d user instructions, budget %d", insts, p.UserInsts)
			}
			if barriers != p.Barriers {
				t.Errorf("emitted %d barriers, want %d", barriers, p.Barriers)
			}
			if syscalls != 2 {
				t.Errorf("emitted %d syscalls, want 2 (start+end)", syscalls)
			}
			// Done must repeat forever.
			if th.NextUser().Kind != cmp.OpDone {
				t.Error("Done not sticky")
			}
			return
		case cmp.OpCompute:
			insts += op.N
		case cmp.OpLoad, cmp.OpStore:
			insts++
		case cmp.OpSyscall:
			syscalls++
		case cmp.OpBarrier:
			barriers++
		}
	}
	t.Fatal("thread never finished")
}

func TestThreadMemFraction(t *testing.T) {
	p, _ := ByName("barnes")
	p.UserInsts = 200000
	p.Barriers = 0
	p.SyscallStartInsts, p.SyscallEndInsts = 0, 0
	th := NewThread(p, 0, 16, 2)
	var mem, total int64
	for {
		op := th.NextUser()
		if op.Kind == cmp.OpDone {
			break
		}
		switch op.Kind {
		case cmp.OpCompute:
			total += op.N
		case cmp.OpLoad, cmp.OpStore:
			total++
			mem++
		}
	}
	frac := float64(mem) / float64(total)
	if frac < p.MemFrac*0.9 || frac > p.MemFrac*1.1 {
		t.Errorf("memory fraction = %.3f, want ~%.3f", frac, p.MemFrac)
	}
}

func TestThreadAddressesStayInRegions(t *testing.T) {
	p, _ := ByName("canneal")
	p.UserInsts = 20000
	err := quick.Check(func(core uint8, seed uint64) bool {
		c := int(core) % 16
		th := NewThread(p, c, 16, seed)
		for i := 0; i < 2000; i++ {
			op := th.NextUser()
			if op.Kind == cmp.OpDone {
				break
			}
			if op.Kind != cmp.OpLoad && op.Kind != cmp.OpStore {
				continue
			}
			line := op.Addr >> 6
			switch {
			case line >= privateBase && line < privateBase+16*coreStride:
				if int((line-privateBase)/coreStride) != c {
					return false // crossed into another core's private region
				}
			case line >= sharedBase && line < sharedBase+uint64(p.SharedLines):
			case line >= streamBase && line < streamBase+16*coreStride:
				if int((line-streamBase)/coreStride) != c {
					return false
				}
			default:
				return false // outside every user region
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestKernelStreamNeverDone(t *testing.T) {
	p, _ := ByName("lu")
	th := NewThread(p, 3, 16, 5)
	memOps := 0
	for i := 0; i < 10000; i++ {
		op := th.NextKernel()
		if op.Kind == cmp.OpDone {
			t.Fatal("kernel stream returned Done")
		}
		if op.Kind == cmp.OpLoad || op.Kind == cmp.OpStore {
			memOps++
			line := op.Addr >> 6
			if line < kSharedBase {
				t.Fatalf("kernel access to user region: %#x", line)
			}
		}
	}
	frac := float64(memOps) / 10000
	if frac < p.KernelMemFrac*0.85 || frac > p.KernelMemFrac*1.15 {
		t.Errorf("kernel mem fraction = %.3f, want ~%.3f", frac, p.KernelMemFrac)
	}
}

func TestWarmSetsCoverRegions(t *testing.T) {
	p, _ := ByName("fft")
	perCore, l2 := p.WarmSets(16)
	if len(perCore) != 16 {
		t.Fatalf("per-core sets = %d", len(perCore))
	}
	if len(perCore[0]) != p.PrivateLines+64 {
		t.Errorf("core 0 warm lines = %d, want %d", len(perCore[0]), p.PrivateLines+64)
	}
	if len(l2) != p.SharedLines+p.KernelSharedLines {
		t.Errorf("l2 warm lines = %d, want %d", len(l2), p.SharedLines+p.KernelSharedLines)
	}
	// Per-core sets must be disjoint.
	seen := map[uint64]bool{}
	for _, lines := range perCore {
		for _, l := range lines {
			if seen[l] {
				t.Fatalf("line %#x warmed for two cores", l)
			}
			seen[l] = true
		}
	}
}

func TestProgramsBuildsDistinctThreads(t *testing.T) {
	p, _ := ByName("blackscholes")
	progs := Programs(p, 16, 9)
	if len(progs) != 16 {
		t.Fatalf("programs = %d", len(progs))
	}
	// Different cores draw different first memory addresses eventually.
	a := progs[0].(*Thread)
	b := progs[1].(*Thread)
	var addrA, addrB uint64
	for addrA == 0 || addrB == 0 {
		if op := a.NextUser(); op.Kind == cmp.OpLoad || op.Kind == cmp.OpStore {
			addrA = op.Addr
		}
		if op := b.NextUser(); op.Kind == cmp.OpLoad || op.Kind == cmp.OpStore {
			addrB = op.Addr
		}
	}
	if addrA == addrB {
		t.Error("two cores produced identical first addresses (seeding broken?)")
	}
}
