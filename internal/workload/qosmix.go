package workload

import (
	"fmt"
	"sort"

	"noceval/internal/traffic"
)

// Named QoS traffic-class mixes: ready-made multi-class workloads for the
// open-loop harness, modeled on the service classes of CMP interconnects —
// short latency-critical control/coherence traffic sharing the network
// with long bulk transfers. Index 0 is the highest priority class.

// qosMixes holds the built-in presets. Shares sum to 1 within each mix
// (traffic.ValidateClasses enforces it at run time; the test re-checks).
var qosMixes = map[string][]traffic.Class{
	// Latency-critical single-flit traffic over bulk bimodal transfers:
	// the canonical two-class QoS demonstration.
	"latency-bulk": {
		{Name: "latency", Share: 0.2, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
		{Name: "bulk", Share: 0.8, Pattern: traffic.Uniform{}, Sizes: traffic.DefaultBimodal()},
	},
	// A three-class mix: scarce control messages, coherence-style data
	// replies, and background bulk traffic.
	"control-data-bulk": {
		{Name: "control", Share: 0.1, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
		{Name: "data", Share: 0.4, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
		{Name: "bulk", Share: 0.5, Pattern: traffic.Uniform{}, Sizes: traffic.DefaultBimodal()},
	},
	// Control traffic protected from an adversarial bulk pattern:
	// transpose concentrates bulk load on few channels, which is exactly
	// where priority protection earns its keep.
	"control-transpose": {
		{Name: "control", Share: 0.25, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
		{Name: "bulk", Share: 0.75, Pattern: traffic.Transpose{}, Sizes: traffic.DefaultBimodal()},
	},
}

// QoSMixByName returns a copy of the named QoS class mix.
func QoSMixByName(name string) ([]traffic.Class, error) {
	mix, ok := qosMixes[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown QoS mix %q (have %v)", name, QoSMixNames())
	}
	return append([]traffic.Class(nil), mix...), nil
}

// QoSMixNames returns the preset names in sorted order.
func QoSMixNames() []string {
	names := make([]string, 0, len(qosMixes))
	for n := range qosMixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
