package analytic

// Contention-aware latency estimation: per-channel M/G/1 waiting times
// composed along the routes of the channel-load analysis. The estimator
// predicts the whole latency–load curve in microseconds, which is what the
// sweep screening in internal/core uses to decide which offered loads are
// worth simulating at all (see DESIGN.md §13).
//
// The model: a channel of load gamma (expected crossings per injected
// packet, from routeAnalysis) carries lambda = gamma*N*theta/E[L] packets
// per cycle when every one of the N nodes offers theta flits/cycle. Each
// crossing occupies the channel for S = tr + L cycles (router pipeline
// plus serialization of the L-flit body), so the utilization is
// rho = lambda*E[S] and the Pollaczek–Khinchine waiting time is
//
//	W = lambda * E[S^2] / (2 * (1 - rho)).
//
// A packet's expected queueing delay is the sum of W over the channels it
// crosses — in expectation, sum_c gamma_c * W_c — plus the same M/G/1 term
// for its source injection queue. Added to the zero-load latency T0 this
// gives the predicted average latency T(theta), diverging as the busiest
// channel's utilization approaches 1.

import (
	"math"
	"sort"

	"noceval/internal/traffic"
)

// meanSquarer is the optional second-moment hook on a packet-size
// distribution; without it the estimator assumes a deterministic length
// (E[L^2] = E[L]^2), which is exact for FixedSize.
type meanSquarer interface {
	MeanSquare() float64
}

// Estimator is a compiled latency–load model for one (topology, routing,
// pattern, size-mix) configuration. Building it costs one route analysis
// (tens of microseconds on an 8x8 mesh); evaluating Latency is a few
// hundred floating-point operations. The zero value is not usable; build
// one with Model.NewEstimator.
type Estimator struct {
	// T0 is the predicted zero-load average latency in cycles
	// (Model.ZeroLoadLatency of the same configuration).
	T0 float64
	// SatRate is the hard throughput bound in flits/cycle/node: the
	// offered load at which the busiest channel reaches unit utilization
	// (Model.ChannelBound's thetaSat). Latency returns +Inf at and above it.
	SatRate float64

	n       int       // nodes
	gamma   []float64 // per-channel expected crossings per injected packet, sorted
	meanLen float64   // E[L], flits
	sMean   float64   // E[S] = tr + E[L], cycles
	sSq     float64   // E[S^2] = tr^2 + 2 tr E[L] + E[L^2], cycles^2
}

// NewEstimator compiles the queueing model for pattern p and packet-size
// mix sizes. It fails when the pattern does not expose destination weights
// (see trafficWeights) or when the pattern generates no network traffic.
func (m Model) NewEstimator(p traffic.Pattern, sizes traffic.SizeDist) (*Estimator, error) {
	loads, avgPathCycles, err := m.routeAnalysis(p)
	if err != nil {
		return nil, err
	}
	meanLen := sizes.Mean()
	meanSq := meanLen * meanLen
	if ms, ok := sizes.(meanSquarer); ok {
		meanSq = ms.MeanSquare()
	}
	tr := float64(m.RouterDelay)
	e := &Estimator{
		T0:      avgPathCycles + tr + meanLen - 1,
		n:       m.Topo.N,
		meanLen: meanLen,
		sMean:   tr + meanLen,
		sSq:     tr*tr + 2*tr*meanLen + meanSq,
	}
	gammaMax := 0.0
	e.gamma = make([]float64, 0, len(loads))
	for _, g := range loads {
		e.gamma = append(e.gamma, g)
		if g > gammaMax {
			gammaMax = g
		}
	}
	// Map iteration order is random; the latency sum must not be. Sorting
	// makes every evaluation bit-reproducible across runs.
	sort.Float64s(e.gamma)
	if gammaMax > 0 {
		e.SatRate = 1 / (gammaMax * float64(e.n))
	}
	return e, nil
}

// wait returns the M/G/1 waiting time in cycles for a channel at
// utilization rho, or +Inf at rho >= 1.
func (e *Estimator) wait(rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	lambda := rho / e.sMean
	return lambda * e.sSq / (2 * (1 - rho))
}

// Latency returns the predicted average packet latency in cycles at
// offered load rate (flits/cycle/node), or +Inf at or beyond SatRate.
func (e *Estimator) Latency(rate float64) float64 {
	if e.SatRate <= 0 || rate >= e.SatRate {
		return math.Inf(1)
	}
	if rate <= 0 {
		return e.T0
	}
	// Source injection queue: a node offering rate flits/cycle into a
	// 1 flit/cycle injection channel.
	t := e.T0 + e.wait(rate)
	for _, g := range e.gamma {
		t += g * e.wait(g*float64(e.n)*rate)
	}
	return t
}

// MaxUtilization returns the busiest channel's predicted utilization at
// the given offered load (1.0 at SatRate).
func (e *Estimator) MaxUtilization(rate float64) float64 {
	if e.SatRate <= 0 {
		return math.Inf(1)
	}
	return rate / e.SatRate
}

// Knee returns the predicted saturation point under the empirical
// definition used by openloop.Saturation: the offered load at which the
// predicted latency crosses latencyCap times the zero-load latency
// (latencyCap <= 1 defaults to 3). The knee always lies below SatRate,
// where latency diverges.
func (e *Estimator) Knee(latencyCap float64) float64 {
	if latencyCap <= 1 {
		latencyCap = 3
	}
	if e.SatRate <= 0 {
		return 0
	}
	limit := latencyCap * e.T0
	lo, hi := 0.0, e.SatRate
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if e.Latency(mid) > limit {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// CurvePoint is one sample of the predicted latency–load curve.
type CurvePoint struct {
	Rate    float64 // offered load, flits/cycle/node
	Latency float64 // predicted average latency, cycles (+Inf past SatRate)
	MaxUtil float64 // busiest channel's utilization
}

// Curve evaluates the predicted latency at each offered load.
func (e *Estimator) Curve(rates []float64) []CurvePoint {
	out := make([]CurvePoint, len(rates))
	for i, r := range rates {
		out[i] = CurvePoint{Rate: r, Latency: e.Latency(r), MaxUtil: e.MaxUtilization(r)}
	}
	return out
}
