package analytic

import (
	"math"
	"testing"

	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func TestAverageHops(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	if got := mustHops(t, mesh, traffic.Uniform{}); math.Abs(got-5.25) > 0.001 {
		t.Errorf("uniform mesh avg hops = %v, want 5.25", got)
	}
	// Bit complement on a mesh: every packet crosses the full diagonal
	// distance on average k hops per dimension... compute a known value:
	// node (x,y) -> (7-x, 7-y); per-dim distance |7-2x| averages 4.
	if got := mustHops(t, mesh, traffic.BitComplement{}); math.Abs(got-8) > 0.001 {
		t.Errorf("bitcomp mesh avg hops = %v, want 8", got)
	}
	torus := topology.NewTorus(8, 8)
	if got := mustHops(t, torus, traffic.Uniform{}); math.Abs(got-4) > 0.001 {
		t.Errorf("uniform torus avg hops = %v, want 4", got)
	}
}

func mustHops(t *testing.T, topo *topology.Topology, p traffic.Pattern) float64 {
	t.Helper()
	got, err := AverageHops(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// mustZeroLoad and mustBound unwrap the error returns for the formula
// tests, which only use patterns that implement traffic.Weighted.
func mustZeroLoad(t *testing.T, m Model, p traffic.Pattern, flits int) float64 {
	t.Helper()
	got, err := m.ZeroLoadLatency(p, flits)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func mustBound(t *testing.T, m Model, p traffic.Pattern) (float64, float64) {
	t.Helper()
	theta, gamma, err := m.ChannelBound(p)
	if err != nil {
		t.Fatal(err)
	}
	return theta, gamma
}

func TestZeroLoadLatencyFormula(t *testing.T) {
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	// Uniform: 5.25 hops * (1+1) + 1 ejection + 0 serialization = 11.5.
	got := mustZeroLoad(t, m, traffic.Uniform{}, 1)
	if math.Abs(got-11.5) > 0.01 {
		t.Errorf("zero-load latency = %v, want 11.5", got)
	}
	// tr=2: 5.25*3 + 2 = 17.75; ratio 1.543 (the paper's ~1.5).
	m.RouterDelay = 2
	got2 := mustZeroLoad(t, m, traffic.Uniform{}, 1)
	if r := got2 / got; math.Abs(r-1.54) > 0.02 {
		t.Errorf("tr=2/tr=1 analytic ratio = %v, want ~1.54", r)
	}
	// 4-flit packets add 3 cycles of serialization.
	if d := mustZeroLoad(t, m, traffic.Uniform{}, 4) - got2; math.Abs(d-3) > 0.001 {
		t.Errorf("serialization delta = %v, want 3", d)
	}
}

func TestChannelBoundMeshUniform(t *testing.T) {
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	theta, gamma := mustBound(t, m, traffic.Uniform{})
	// Classic result: DOR uniform on an even k-ary 2-mesh is bisection
	// limited at 4/k = 0.5 flits/cycle/node.
	if math.Abs(theta-0.5) > 0.02 {
		t.Errorf("mesh uniform channel bound = %v, want 0.5", theta)
	}
	if gamma <= 0 {
		t.Error("no channel load computed")
	}
}

func TestChannelBoundTorusDoublesMesh(t *testing.T) {
	mesh := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	torus := Model{Topo: topology.NewTorus(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	tm, _ := mustBound(t, mesh, traffic.Uniform{})
	tt, _ := mustBound(t, torus, traffic.Uniform{})
	if r := tt / tm; r < 1.7 || r > 2.3 {
		t.Errorf("torus/mesh capacity ratio = %v, want ~2 (doubled bisection)", r)
	}
}

func TestValiantHalvesUniformCapacity(t *testing.T) {
	dor := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	val := Model{Topo: topology.NewMesh(8, 8), Routing: routing.Valiant{}, RouterDelay: 1, Samples: 32, Seed: 1}
	td, _ := mustBound(t, dor, traffic.Uniform{})
	tv, _ := mustBound(t, val, traffic.Uniform{})
	if r := tv / td; r < 0.4 || r > 0.7 {
		t.Errorf("VAL/DOR uniform capacity ratio = %v, want ~0.5", r)
	}
}

func TestValiantBeatsDORonTransposeTorus(t *testing.T) {
	// On a torus, VAL's load balancing wins on adversarial permutations.
	dor := Model{Topo: topology.NewTorus(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	val := Model{Topo: topology.NewTorus(8, 8), Routing: routing.Valiant{}, RouterDelay: 1, Samples: 32, Seed: 2}
	td, _ := mustBound(t, dor, traffic.Tornado{})
	tv, _ := mustBound(t, val, traffic.Tornado{})
	if tv <= td {
		t.Errorf("VAL tornado capacity %v not above DOR %v", tv, td)
	}
}

func TestVALZeroLoadDoublesPathLength(t *testing.T) {
	dor := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	val := Model{Topo: topology.NewMesh(8, 8), Routing: routing.Valiant{}, RouterDelay: 1, Samples: 32, Seed: 3}
	ld := mustZeroLoad(t, dor, traffic.Uniform{}, 1)
	lv := mustZeroLoad(t, val, traffic.Uniform{}, 1)
	if r := lv / ld; r < 1.6 || r > 2.2 {
		t.Errorf("VAL/DOR zero-load ratio = %v, want ~2", r)
	}
}

func TestIdealThroughput(t *testing.T) {
	if got := IdealThroughput(topology.NewMesh(8, 8)); math.Abs(got-0.5) > 0.001 {
		t.Errorf("mesh ideal throughput = %v, want 0.5", got)
	}
	if got := IdealThroughput(topology.NewTorus(8, 8)); math.Abs(got-1.0) > 0.001 {
		t.Errorf("torus ideal throughput = %v, want 1.0", got)
	}
}

func TestPermutationWeights(t *testing.T) {
	w, err := trafficWeights(traffic.Transpose{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for s := range w {
		nonzero := 0
		for _, v := range w[s] {
			if v != 0 {
				if v != 1 {
					t.Fatalf("permutation weight = %v", v)
				}
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("source %d has %d destinations", s, nonzero)
		}
	}
	wu, err := trafficWeights(traffic.UniformNoSelf{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wu[2][2] != 0 {
		t.Error("no-self weights include self")
	}
	if math.Abs(wu[2][0]-1.0/3) > 1e-12 {
		t.Errorf("no-self weight = %v", wu[2][0])
	}
}

// opaquePattern is a stochastic pattern that does not expose destination
// weights: the analytic model must refuse it rather than silently treating
// one sampled destination as a permutation.
type opaquePattern struct{}

func (opaquePattern) Name() string                    { return "opaque" }
func (opaquePattern) Dest(_ *sim.RNG, src, n int) int { return (src + 1) % n }

func TestUnknownStochasticPatternRejected(t *testing.T) {
	if _, err := trafficWeights(opaquePattern{}, 16); err == nil {
		t.Fatal("trafficWeights accepted a pattern without destination weights")
	}
	m := Model{Topo: topology.NewMesh(4, 4), Routing: routing.DOR{}, RouterDelay: 1}
	if _, err := m.ZeroLoadLatency(opaquePattern{}, 1); err == nil {
		t.Error("ZeroLoadLatency accepted an opaque pattern")
	}
	if _, _, err := m.ChannelBound(opaquePattern{}); err == nil {
		t.Error("ChannelBound accepted an opaque pattern")
	}
	if _, err := m.NewEstimator(opaquePattern{}, traffic.FixedSize(1)); err == nil {
		t.Error("NewEstimator accepted an opaque pattern")
	}
}

func TestHotspotWeights(t *testing.T) {
	w, err := trafficWeights(traffic.Hotspot{Hot: 3, Fraction: 0.2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range w[5] {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("hotspot weights sum to %v", sum)
	}
	if math.Abs(w[5][3]-(0.2+0.8/8)) > 1e-12 {
		t.Errorf("hot-node weight = %v, want %v", w[5][3], 0.2+0.8/8)
	}
}
