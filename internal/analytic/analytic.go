// Package analytic provides first-order analytical models of network
// performance in the style of Dally & Towles: zero-load latency from hop
// counts and pipeline delays, and throughput bounds from worst-case channel
// load under a routing algorithm and traffic pattern. The evaluation
// framework uses them as sanity rails around the cycle-accurate simulator —
// the simulated zero-load latency must approach the analytical bound from
// above, and the simulated saturation throughput must stay below the
// channel-load bound.
package analytic

import (
	"fmt"

	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

// Model bundles the network parameters the analytical formulas need.
type Model struct {
	Topo        *topology.Topology
	Routing     routing.Algorithm
	RouterDelay int64
	// Samples controls how many routes are sampled per source/destination
	// pair for randomized algorithms (default 16; deterministic algorithms
	// always use 1).
	Samples int
	Seed    uint64
}

// trafficWeights returns W[s][d]: the probability a packet from s targets
// d. The distribution is obtained structurally from the pattern's
// traffic.Weighted implementation; a pattern that does not implement it
// (e.g. an out-of-tree stochastic pattern) is an error — sampling Dest once
// and treating the result as a permutation would silently mis-model it.
func trafficWeights(p traffic.Pattern, n int) ([][]float64, error) {
	wp, ok := p.(traffic.Weighted)
	if !ok {
		return nil, fmt.Errorf("analytic: pattern %q does not expose destination weights (implement traffic.Weighted)", p.Name())
	}
	w := make([][]float64, n)
	for s := range w {
		row := wp.DestWeights(s, n)
		if len(row) != n {
			return nil, fmt.Errorf("analytic: pattern %q returned %d weights for %d nodes", p.Name(), len(row), n)
		}
		w[s] = row
	}
	return w, nil
}

// AverageHops returns the mean minimal hop count under the pattern.
func AverageHops(t *topology.Topology, p traffic.Pattern) (float64, error) {
	w, err := trafficWeights(p, t.N)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for s := 0; s < t.N; s++ {
		for d := 0; d < t.N; d++ {
			if w[s][d] > 0 {
				sum += w[s][d] * float64(t.Distance(s, d))
			}
		}
	}
	return sum / float64(t.N), nil
}

// ZeroLoadLatency estimates the average packet latency at vanishing load:
// per-hop cost (tr + channel delay) times the average route length, plus
// the final ejection pipeline (tr) and the serialization latency of the
// packet body. Randomized algorithms average over sampled routes.
func (m Model) ZeroLoadLatency(p traffic.Pattern, packetFlits int) (float64, error) {
	_, avgWeighted, err := m.routeAnalysis(p)
	if err != nil {
		return 0, err
	}
	return avgWeighted + float64(m.RouterDelay) + float64(packetFlits-1), nil
}

// ChannelBound estimates the saturation throughput in flits/cycle/node:
// the offered load at which the most-loaded channel reaches unit
// utilization. gammaMax is the expected flits crossing the busiest channel
// per injected flit per node.
func (m Model) ChannelBound(p traffic.Pattern) (thetaSat, gammaMax float64, err error) {
	loads, _, err := m.routeAnalysis(p)
	if err != nil {
		return 0, 0, err
	}
	for _, l := range loads {
		if l > gammaMax {
			gammaMax = l
		}
	}
	if gammaMax == 0 {
		return 0, 0, nil
	}
	// Channel bandwidth is 1 flit/cycle; N nodes inject theta each, and a
	// channel carrying gammaMax*N*theta flits/cycle saturates at 1.
	return 1 / (gammaMax * float64(m.Topo.N)), gammaMax, nil
}

// routeAnalysis walks every weighted source/destination pair under the
// routing algorithm, accumulating per-channel load (expected flits per
// injected flit per node, normalized so a node injecting theta flits/cycle
// puts gamma*N*theta flits/cycle on a channel of load gamma) and the
// weighted average path cost in cycles (hops * (tr + channel delay)).
func (m Model) routeAnalysis(p traffic.Pattern) (channelLoads map[[2]int]float64, avgPathCycles float64, err error) {
	t := m.Topo
	n := t.N
	w, err := trafficWeights(p, n)
	if err != nil {
		return nil, 0, err
	}
	samples := m.Samples
	if samples < 1 {
		samples = 16
	}
	if isDeterministic(m.Routing) {
		samples = 1
	}
	rng := sim.NewRNG(m.Seed ^ 0xfeedfacecafebeef)
	channelLoads = map[[2]int]float64{}
	totalW := 0.0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if w[s][d] == 0 {
				continue
			}
			weight := w[s][d] / float64(samples)
			for k := 0; k < samples; k++ {
				cycles := m.walk(rng, s, d, weight, channelLoads)
				avgPathCycles += weight * cycles
			}
			totalW += w[s][d]
		}
	}
	// Per-node normalization: weights summed over all sources equal N.
	for k := range channelLoads {
		channelLoads[k] /= float64(n)
	}
	avgPathCycles /= totalW
	return channelLoads, avgPathCycles, nil
}

// walk routes one packet, adding weight to every channel crossed, and
// returns the path cost in cycles.
func (m Model) walk(rng *sim.RNG, src, dst int, weight float64, loads map[[2]int]float64) float64 {
	t := m.Topo
	st := routing.NewState(m.Routing.PickIntermediate(t, rng, src, dst))
	st.ArriveAt(src)
	cur := src
	cost := 0.0
	var buf []routing.Candidate
	for hops := 0; ; hops++ {
		if hops > 4*t.N {
			panic(fmt.Sprintf("analytic: runaway route %d->%d with %s", src, dst, m.Routing.Name()))
		}
		buf = m.Routing.Candidates(t, cur, dst, &st, buf[:0])
		c := buf[0]
		if len(buf) > 1 {
			// Adaptive algorithms at zero load: any productive candidate
			// is equally likely; sample uniformly.
			c = buf[rng.Intn(len(buf))]
		}
		if c.Port == t.LocalPort() {
			return cost
		}
		m.Routing.Committed(t, &st, c.Class)
		link := t.LinkAt(cur, c.Port)
		loads[[2]int{cur, c.Port}] += weight
		cost += float64(m.RouterDelay) + float64(link.Delay)
		st.Traverse(link)
		cur = link.To
		st.ArriveAt(cur)
	}
}

// isDeterministic reports whether an algorithm routes every packet
// identically (no randomness in intermediate choice or candidate set).
func isDeterministic(a routing.Algorithm) bool {
	switch a.(type) {
	case routing.DOR:
		return true
	default:
		return false
	}
}

// IdealThroughput returns the bisection bound on uniform-random throughput
// in flits/cycle/node: half the traffic crosses the bisection in each
// direction.
func IdealThroughput(t *topology.Topology) float64 {
	// Under uniform random, N/2 * theta/2 flits per cycle cross each half
	// of the bisection; BisectionChannels counts both directions.
	return float64(t.BisectionChannels()) / (float64(t.N) / 2)
}
