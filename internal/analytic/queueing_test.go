package analytic

import (
	"math"
	"testing"

	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func meshEstimator(t *testing.T) *Estimator {
	t.Helper()
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	e, err := m.NewEstimator(traffic.Uniform{}, traffic.FixedSize(1))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorZeroLoadMatchesModel(t *testing.T) {
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	e := meshEstimator(t)
	want, err := m.ZeroLoadLatency(traffic.Uniform{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.T0-want) > 1e-9 {
		t.Errorf("estimator T0 = %v, model zero-load = %v", e.T0, want)
	}
	if got := e.Latency(0); math.Abs(got-e.T0) > 1e-9 {
		t.Errorf("Latency(0) = %v, want T0 %v", got, e.T0)
	}
}

func TestEstimatorSatRateMatchesChannelBound(t *testing.T) {
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	e := meshEstimator(t)
	bound, _, err := m.ChannelBound(traffic.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.SatRate-bound) > 1e-9 {
		t.Errorf("estimator SatRate = %v, channel bound = %v", e.SatRate, bound)
	}
	if !math.IsInf(e.Latency(e.SatRate), 1) {
		t.Error("latency at SatRate should be +Inf")
	}
	if !math.IsInf(e.Latency(1), 1) {
		t.Error("latency beyond SatRate should be +Inf")
	}
}

func TestEstimatorLatencyMonotone(t *testing.T) {
	e := meshEstimator(t)
	prev := 0.0
	for _, r := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		l := e.Latency(r)
		if l <= prev {
			t.Fatalf("latency not increasing: T(%v) = %v after %v", r, l, prev)
		}
		if math.IsInf(l, 1) {
			t.Fatalf("latency at %v (below SatRate %v) is +Inf", r, e.SatRate)
		}
		prev = l
	}
}

func TestEstimatorKnee(t *testing.T) {
	e := meshEstimator(t)
	knee := e.Knee(3)
	if knee <= 0 || knee >= e.SatRate {
		t.Fatalf("knee %v outside (0, SatRate=%v)", knee, e.SatRate)
	}
	// At the knee the predicted latency equals the cap by construction.
	if l := e.Latency(knee); math.Abs(l-3*e.T0) > 0.05*e.T0 {
		t.Errorf("latency at knee = %v, want ~%v", l, 3*e.T0)
	}
	// A tighter cap saturates earlier.
	if k2 := e.Knee(2); k2 >= knee {
		t.Errorf("knee(cap=2) %v not below knee(cap=3) %v", k2, knee)
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	// Map iteration must not leak into the result: two builds of the same
	// model produce bit-identical curves.
	a, b := meshEstimator(t), meshEstimator(t)
	for _, r := range []float64{0.1, 0.25, 0.4} {
		if a.Latency(r) != b.Latency(r) {
			t.Fatalf("estimator not deterministic at rate %v", r)
		}
	}
}

func TestEstimatorBimodalRaisesWaiting(t *testing.T) {
	// Longer, more variable packets mean strictly more queueing at equal
	// flit load (E[S^2] grows), on top of a higher serialization T0.
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	single, err := m.NewEstimator(traffic.Uniform{}, traffic.FixedSize(1))
	if err != nil {
		t.Fatal(err)
	}
	bimodal, err := m.NewEstimator(traffic.Uniform{}, traffic.DefaultBimodal())
	if err != nil {
		t.Fatal(err)
	}
	r := 0.3
	if (bimodal.Latency(r) - bimodal.T0) <= (single.Latency(r) - single.T0) {
		t.Errorf("bimodal queueing delay %v not above single-flit %v",
			bimodal.Latency(r)-bimodal.T0, single.Latency(r)-single.T0)
	}
}

func TestEstimatorRingSaturatesEarly(t *testing.T) {
	// A 64-node ring under uniform traffic is bisection-starved; the
	// estimator must predict saturation far below the mesh's.
	ring := Model{Topo: topology.NewRing(64), Routing: routing.DOR{}, RouterDelay: 1}
	e, err := ring.NewEstimator(traffic.Uniform{}, traffic.FixedSize(1))
	if err != nil {
		t.Fatal(err)
	}
	mesh := meshEstimator(t)
	if e.SatRate >= mesh.SatRate/2 {
		t.Errorf("ring SatRate %v not well below mesh %v", e.SatRate, mesh.SatRate)
	}
	if k := e.Knee(3); k <= 0 || k >= e.SatRate {
		t.Errorf("ring knee %v outside (0, %v)", k, e.SatRate)
	}
}

func TestEstimatorCurve(t *testing.T) {
	e := meshEstimator(t)
	rates := []float64{0.1, 0.3, 0.9}
	pts := e.Curve(rates)
	if len(pts) != 3 {
		t.Fatalf("curve has %d points", len(pts))
	}
	if pts[0].MaxUtil >= pts[1].MaxUtil {
		t.Error("utilization not increasing along the curve")
	}
	if !math.IsInf(pts[2].Latency, 1) {
		t.Error("curve point beyond SatRate should be +Inf")
	}
}
