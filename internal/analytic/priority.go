package analytic

// Priority-queueing extension of the contention-aware estimator: per-class
// latency–load curves under the strict-priority QoS arbitration of
// internal/router. Each channel is modeled as an M/G/1 priority queue in
// which class c's waiting time sees only the load of classes of the same
// or higher priority (classes j <= c):
//
//	W_c = (sum_{j<=c} lambda_j E[S_j^2]) / (2 (1 - sum_{j<=c} rho_j))
//
// — the Pollaczek–Khinchine numerator and denominator both truncated at
// class c. This captures the defining property of strict priority: a
// high-priority class's latency is independent of lower-priority load, so
// its curve stays flat while low classes saturate. With a single class the
// formula reduces term-for-term to Estimator's wait(), and the test suite
// pins that equivalence.
//
// Per-class routes matter: each class has its own traffic pattern, so the
// per-channel crossing counts gamma are computed per class and aligned on
// a shared channel index before composing waiting times.

import (
	"math"
	"sort"

	"noceval/internal/traffic"
)

// PriorityEstimator is a compiled per-class latency–load model for one
// (topology, routing) configuration and QoS class mix. Build one with
// Model.NewPriorityEstimator; the zero value is not usable.
type PriorityEstimator struct {
	n       int
	classes []classModel
}

// classModel is the compiled per-class data: the class's own zero-load
// latency and service moments, plus its per-channel crossing counts
// aligned on the estimator's shared channel index.
type classModel struct {
	name    string
	share   float64
	t0      float64
	satRate float64
	sMean   float64 // E[S] = tr + E[L], cycles
	sSq     float64 // E[S^2], cycles^2
	gamma   []float64
}

// NewPriorityEstimator compiles the priority-queueing model for the given
// QoS class mix (index 0 = highest priority). Every class needs a non-nil
// Pattern and Sizes — core materializes inherited defaults before calling.
// It fails when a class's pattern does not expose destination weights or
// the mix itself is invalid.
func (m Model) NewPriorityEstimator(classes []traffic.Class) (*PriorityEstimator, error) {
	if err := traffic.ValidateClasses(classes); err != nil {
		return nil, err
	}
	n := m.Topo.N
	tr := float64(m.RouterDelay)

	// Per-class route analyses, then a shared sorted channel index so the
	// cumulative per-channel sums align across classes (and stay
	// bit-reproducible: map iteration order must not leak into results).
	loads := make([]map[[2]int]float64, len(classes))
	keySet := map[[2]int]bool{}
	e := &PriorityEstimator{n: n, classes: make([]classModel, len(classes))}
	for i, cl := range classes {
		chans, avgPathCycles, err := m.routeAnalysis(cl.Pattern)
		if err != nil {
			return nil, err
		}
		loads[i] = chans
		for k := range chans {
			keySet[k] = true
		}
		meanLen := cl.Sizes.Mean()
		meanSq := meanLen * meanLen
		if ms, ok := cl.Sizes.(meanSquarer); ok {
			meanSq = ms.MeanSquare()
		}
		e.classes[i] = classModel{
			name:  cl.Name,
			share: cl.Share,
			t0:    avgPathCycles + tr + meanLen - 1,
			sMean: tr + meanLen,
			sSq:   tr*tr + 2*tr*meanLen + meanSq,
		}
	}
	keys := make([][2]int, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for i := range e.classes {
		g := make([]float64, len(keys))
		for k, key := range keys {
			g[k] = loads[i][key]
		}
		e.classes[i].gamma = g
	}
	// Class c saturates when the busiest channel's cumulative utilization
	// over classes <= c reaches 1: rho_cum(ch) = theta * N * sum_{j<=c}
	// gamma_j(ch) * share_j, linear in the offered load theta.
	for c := range e.classes {
		coefMax := 0.0
		for k := range keys {
			coef := 0.0
			for j := 0; j <= c; j++ {
				coef += e.classes[j].gamma[k] * e.classes[j].share
			}
			if coef > coefMax {
				coefMax = coef
			}
		}
		if coefMax > 0 {
			e.classes[c].satRate = 1 / (coefMax * float64(n))
		}
	}
	return e, nil
}

// NumClasses returns the number of QoS classes in the mix.
func (e *PriorityEstimator) NumClasses() int { return len(e.classes) }

// ClassName returns the name of class c.
func (e *PriorityEstimator) ClassName(c int) string { return e.classes[c].name }

// T0 returns class c's predicted zero-load average latency in cycles.
func (e *PriorityEstimator) T0(c int) float64 { return e.classes[c].t0 }

// SatRate returns the total offered load (flits/cycle/node, summed over
// all classes) at which class c's latency diverges: the point where the
// busiest channel's cumulative same-or-higher-priority utilization reaches
// one. Higher-priority classes have higher (or equal) SatRates — they are
// protected from lower-priority load.
func (e *PriorityEstimator) SatRate(c int) float64 { return e.classes[c].satRate }

// wait returns the truncated P-K waiting time for class c given the
// per-class utilizations rho[j] of one channel: only classes j <= c enter
// the numerator and the denominator. +Inf once the cumulative utilization
// reaches 1.
func (e *PriorityEstimator) wait(c int, rho []float64) float64 {
	num, sigma := 0.0, 0.0
	for j := 0; j <= c; j++ {
		num += rho[j] / e.classes[j].sMean * e.classes[j].sSq
		sigma += rho[j]
	}
	if sigma >= 1 {
		return math.Inf(1)
	}
	return num / (2 * (1 - sigma))
}

// Latency returns class c's predicted average packet latency in cycles
// when the network's total offered load is rate flits/cycle/node (split
// across classes by their shares), or +Inf at or beyond SatRate(c).
func (e *PriorityEstimator) Latency(c int, rate float64) float64 {
	cl := &e.classes[c]
	if cl.satRate <= 0 || rate >= cl.satRate {
		return math.Inf(1)
	}
	if rate <= 0 {
		return cl.t0
	}
	rho := make([]float64, c+1)
	// Source injection queue: every class of the node shares the 1
	// flit/cycle injection channel, served in priority order.
	for j := 0; j <= c; j++ {
		rho[j] = rate * e.classes[j].share
	}
	t := cl.t0 + e.wait(c, rho)
	for k := range cl.gamma {
		if cl.gamma[k] == 0 {
			continue
		}
		for j := 0; j <= c; j++ {
			rho[j] = e.classes[j].gamma[k] * float64(e.n) * rate * e.classes[j].share
		}
		t += cl.gamma[k] * e.wait(c, rho)
	}
	return t
}

// Knee returns class c's predicted saturation point under the empirical
// definition of openloop.Saturation: the total offered load at which the
// class's predicted latency crosses latencyCap times its zero-load latency
// (latencyCap <= 1 defaults to 3).
func (e *PriorityEstimator) Knee(c int, latencyCap float64) float64 {
	if latencyCap <= 1 {
		latencyCap = 3
	}
	cl := &e.classes[c]
	if cl.satRate <= 0 {
		return 0
	}
	limit := latencyCap * cl.t0
	lo, hi := 0.0, cl.satRate
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if e.Latency(c, mid) > limit {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// ClassCurvePoint is one sample of a class's predicted latency–load curve.
type ClassCurvePoint struct {
	Rate    float64 // total offered load, flits/cycle/node
	Latency float64 // predicted class average latency, cycles
}

// Curve evaluates class c's predicted latency at each total offered load.
func (e *PriorityEstimator) Curve(c int, rates []float64) []ClassCurvePoint {
	out := make([]ClassCurvePoint, len(rates))
	for i, r := range rates {
		out[i] = ClassCurvePoint{Rate: r, Latency: e.Latency(c, r)}
	}
	return out
}
