package analytic

import (
	"math"
	"testing"

	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func twoClassEstimator(t *testing.T) *PriorityEstimator {
	t.Helper()
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	e, err := m.NewPriorityEstimator([]traffic.Class{
		{Name: "hi", Share: 0.3, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
		{Name: "lo", Share: 0.7, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPrioritySingleClassMatchesEstimator pins the reduction: a one-class
// priority estimator must reproduce the plain Estimator exactly — same T0,
// same SatRate, same latency at every load.
func TestPrioritySingleClassMatchesEstimator(t *testing.T) {
	m := Model{Topo: topology.NewMesh(8, 8), Routing: routing.DOR{}, RouterDelay: 1}
	base, err := m.NewEstimator(traffic.Uniform{}, traffic.FixedSize(1))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := m.NewPriorityEstimator([]traffic.Class{
		{Name: "only", Share: 1, Pattern: traffic.Uniform{}, Sizes: traffic.FixedSize(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pe.T0(0), base.T0; math.Abs(got-want) > 1e-12 {
		t.Errorf("T0 = %v, Estimator = %v", got, want)
	}
	if got, want := pe.SatRate(0), base.SatRate; math.Abs(got-want) > 1e-12 {
		t.Errorf("SatRate = %v, Estimator = %v", got, want)
	}
	for _, r := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.35} {
		got, want := pe.Latency(0, r), base.Latency(r)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("Latency(0, %g) = %v, Estimator = %v", r, got, want)
		}
	}
}

// TestPriorityProtection checks the defining property of strict priority:
// the high-priority class's latency stays near its zero-load value at loads
// where the low-priority class has already diverged.
func TestPriorityProtection(t *testing.T) {
	e := twoClassEstimator(t)
	if e.NumClasses() != 2 || e.ClassName(0) != "hi" || e.ClassName(1) != "lo" {
		t.Fatalf("class mix not compiled: %d classes", e.NumClasses())
	}
	// The high class sees only 30% of the offered load, so it saturates at
	// satLo/0.3 — strictly later than the low class, which sees all of it.
	if e.SatRate(0) <= e.SatRate(1) {
		t.Errorf("high-priority SatRate %v not above low-priority %v", e.SatRate(0), e.SatRate(1))
	}
	for _, r := range []float64{0.1, 0.2, 0.3} {
		hi, lo := e.Latency(0, r), e.Latency(1, r)
		if hi >= lo {
			t.Errorf("at rate %g: high-priority latency %v not below low-priority %v", r, hi, lo)
		}
	}
	// Just below the low class's divergence the high class is still finite
	// and close to unloaded.
	r := e.SatRate(1) * 0.999
	if lo := e.Latency(1, r); !(lo > 10*e.T0(1)) && !math.IsInf(lo, 1) {
		t.Errorf("low-priority latency %v at %g not diverging", lo, r)
	}
	if hi := e.Latency(0, r); math.IsInf(hi, 1) || hi > 3*e.T0(0) {
		t.Errorf("high-priority latency %v at %g lost its protection (T0 %v)", hi, r, e.T0(0))
	}
}

// TestPriorityKneeOrdering: each class's knee lies below its SatRate, and
// the high-priority knee is beyond the low-priority one.
func TestPriorityKneeOrdering(t *testing.T) {
	e := twoClassEstimator(t)
	k0, k1 := e.Knee(0, 3), e.Knee(1, 3)
	if !(k1 > 0 && k1 < e.SatRate(1)) {
		t.Errorf("low knee %v outside (0, %v)", k1, e.SatRate(1))
	}
	if !(k0 > k1) {
		t.Errorf("high knee %v not beyond low knee %v", k0, k1)
	}
}

// TestPriorityDeterminism: compiling the estimator twice yields identical
// curves (map iteration order must not leak into results).
func TestPriorityDeterminism(t *testing.T) {
	a, b := twoClassEstimator(t), twoClassEstimator(t)
	rates := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for c := 0; c < 2; c++ {
		ca, cb := a.Curve(c, rates), b.Curve(c, rates)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("class %d point %d differs: %+v vs %+v", c, i, ca[i], cb[i])
			}
		}
	}
}
