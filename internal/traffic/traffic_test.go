package traffic

import (
	"testing"
	"testing/quick"

	"noceval/internal/sim"
)

func TestUniformCoversAllDestinations(t *testing.T) {
	rng := sim.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		d := (Uniform{}).Dest(rng, 3, 64)
		if d < 0 || d >= 64 {
			t.Fatalf("destination %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 64 {
		t.Errorf("uniform covered %d/64 destinations", len(seen))
	}
}

func TestUniformNoSelf(t *testing.T) {
	rng := sim.NewRNG(2)
	for src := 0; src < 16; src++ {
		for i := 0; i < 1000; i++ {
			if d := (UniformNoSelf{}).Dest(rng, src, 16); d == src {
				t.Fatalf("self destination from %d", src)
			}
		}
	}
	if d := (UniformNoSelf{}).Dest(rng, 0, 1); d != 0 {
		t.Error("single-node special case broken")
	}
}

func TestUniformNoSelfIsUniform(t *testing.T) {
	rng := sim.NewRNG(3)
	counts := make([]int, 8)
	const iters = 80000
	for i := 0; i < iters; i++ {
		counts[(UniformNoSelf{}).Dest(rng, 3, 8)]++
	}
	if counts[3] != 0 {
		t.Fatal("self hit")
	}
	for d, c := range counts {
		if d == 3 {
			continue
		}
		f := float64(c) / iters
		if f < 0.12 || f > 0.165 {
			t.Errorf("destination %d frequency %.3f, want ~1/7", d, f)
		}
	}
}

func TestTranspose(t *testing.T) {
	// 64 nodes = 8x8: node index yyyxxx, transpose swaps halves.
	p := Transpose{}
	if d := p.Dest(nil, 0, 64); d != 0 {
		t.Errorf("transpose(0) = %d", d)
	}
	// node (x=1, y=0) = 1 -> (x=0, y=1) = 8.
	if d := p.Dest(nil, 1, 64); d != 8 {
		t.Errorf("transpose(1) = %d, want 8", d)
	}
	// Property: transpose is an involution.
	err := quick.Check(func(n int) bool {
		src := abs(n) % 64
		return p.Dest(nil, p.Dest(nil, src, 64), 64) == src
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement{}
	if d := p.Dest(nil, 0, 64); d != 63 {
		t.Errorf("bitcomp(0) = %d", d)
	}
	err := quick.Check(func(n int) bool {
		src := abs(n) % 64
		return p.Dest(nil, p.Dest(nil, src, 64), 64) == src
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBitReversal(t *testing.T) {
	p := BitReversal{}
	// 64 nodes, 6 bits: 0b000001 -> 0b100000.
	if d := p.Dest(nil, 1, 64); d != 32 {
		t.Errorf("bitrev(1) = %d, want 32", d)
	}
	err := quick.Check(func(n int) bool {
		src := abs(n) % 64
		return p.Dest(nil, p.Dest(nil, src, 64), 64) == src
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	p := Shuffle{}
	// 6 bits: 0b100000 -> 0b000001.
	if d := p.Dest(nil, 32, 64); d != 1 {
		t.Errorf("shuffle(32) = %d, want 1", d)
	}
	if d := p.Dest(nil, 3, 64); d != 6 {
		t.Errorf("shuffle(3) = %d, want 6", d)
	}
}

func TestTornadoAndNeighbor(t *testing.T) {
	// 8x8: tornado moves ceil(8/2)-1 = 3 in +x.
	if d := (Tornado{}).Dest(nil, 0, 64); d != 3 {
		t.Errorf("tornado(0) = %d, want 3", d)
	}
	if d := (Tornado{}).Dest(nil, 6, 64); d != 1 {
		t.Errorf("tornado(6) = %d, want 1 (wrap)", d)
	}
	if d := (Neighbor{}).Dest(nil, 7, 64); d != 0 {
		t.Errorf("neighbor(7) = %d, want 0 (wrap)", d)
	}
	if d := (Neighbor{}).Dest(nil, 8, 64); d != 9 {
		t.Errorf("neighbor(8) = %d, want 9", d)
	}
}

func TestPermutationsAreBijective(t *testing.T) {
	for _, p := range []Pattern{Transpose{}, BitComplement{}, BitReversal{}, Shuffle{}, Tornado{}, Neighbor{}} {
		seen := map[int]bool{}
		for src := 0; src < 64; src++ {
			d := p.Dest(nil, src, 64)
			if d < 0 || d >= 64 {
				t.Fatalf("%s: out of range: %d", p.Name(), d)
			}
			if seen[d] {
				t.Fatalf("%s: destination %d repeated", p.Name(), d)
			}
			seen[d] = true
		}
	}
}

func TestPatternRequiresValidNodeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	(BitComplement{}).Dest(nil, 0, 48)
}

func TestPermutationTable(t *testing.T) {
	p := &Permutation{Label: "custom", Table: []int{2, 0, 1}}
	if p.Name() != "custom" || p.Dest(nil, 0, 3) != 2 {
		t.Error("permutation table broken")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "uniform-noself", "transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("name mismatch: %s vs %s", p.Name(), name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestSizeDists(t *testing.T) {
	rng := sim.NewRNG(4)
	if FixedSize(4).Sample(rng) != 4 || FixedSize(4).Mean() != 4 {
		t.Error("fixed size broken")
	}
	b := DefaultBimodal()
	if b.Mean() != 2.5 {
		t.Errorf("bimodal mean = %v", b.Mean())
	}
	short, long := 0, 0
	for i := 0; i < 10000; i++ {
		switch b.Sample(rng) {
		case 1:
			short++
		case 4:
			long++
		default:
			t.Fatal("unexpected size")
		}
	}
	if f := float64(short) / 10000; f < 0.47 || f > 0.53 {
		t.Errorf("short fraction = %.3f", f)
	}
	_ = long
}

func TestBernoulliProcessRate(t *testing.T) {
	rng := sim.NewRNG(5)
	// Offered load 0.5 flits/cycle with mean size 2.5 -> packet rate 0.2.
	proc := Bernoulli{Rate: 0.5, Sizes: DefaultBimodal()}
	injections := 0
	const cycles = 100000
	for i := 0; i < cycles; i++ {
		if proc.ShouldInject(rng) {
			injections++
		}
	}
	if f := float64(injections) / cycles; f < 0.18 || f > 0.22 {
		t.Errorf("packet rate = %.3f, want ~0.2", f)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
