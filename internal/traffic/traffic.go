// Package traffic implements the synthetic spatial traffic patterns and
// packet-length processes of Table I: uniform random, transpose, bit
// complement, and bit reversal destinations, plus several classic extras
// (shuffle, tornado, neighbor) useful for design-space exploration; and
// single-flit or bimodal (1-flit/4-flit) packet sizes.
package traffic

import (
	"fmt"
	"math/bits"

	"noceval/internal/sim"
)

// Pattern maps a source node to a destination node. Implementations must be
// safe for concurrent use when they are stateless; stateful patterns (none
// currently) must document otherwise.
type Pattern interface {
	// Name returns the pattern's short identifier, e.g. "uniform".
	Name() string
	// Dest returns the destination for one packet injected at src in a
	// network of n nodes. rng supplies randomness for stochastic patterns;
	// deterministic permutations ignore it.
	Dest(rng *sim.RNG, src, n int) int
}

// Weighted is the analytic-model view of a pattern: the full destination
// distribution rather than one sampled destination. Every built-in pattern
// implements it; the analytic package type-asserts for it so that unknown
// stochastic patterns are rejected structurally instead of being silently
// mis-modeled as permutations.
type Weighted interface {
	Pattern
	// DestWeights returns w where w[d] is the probability that a packet
	// injected at src in a network of n nodes targets node d. The returned
	// slice has length n and sums to 1; callers must not mutate it beyond
	// their own copy.
	DestWeights(src, n int) []float64
}

// onehot returns a distribution putting all weight on d.
func onehot(d, n int) []float64 {
	w := make([]float64, n)
	w[d] = 1
	return w
}

// Uniform is uniform-random traffic: every node, including the source
// itself, is an equally likely destination (the Dally & Towles convention).
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(rng *sim.RNG, src, n int) int { return rng.Intn(n) }

// DestWeights implements Weighted.
func (Uniform) DestWeights(_, n int) []float64 {
	w := make([]float64, n)
	for d := range w {
		w[d] = 1 / float64(n)
	}
	return w
}

// UniformNoSelf is uniform-random traffic that never picks the source as
// destination; request/reply workloads use it so every transaction crosses
// the network.
type UniformNoSelf struct{}

// Name implements Pattern.
func (UniformNoSelf) Name() string { return "uniform-noself" }

// Dest implements Pattern.
func (UniformNoSelf) Dest(rng *sim.RNG, src, n int) int {
	if n < 2 {
		return src
	}
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// DestWeights implements Weighted.
func (UniformNoSelf) DestWeights(src, n int) []float64 {
	if n < 2 {
		return onehot(src, n)
	}
	w := make([]float64, n)
	for d := range w {
		if d != src {
			w[d] = 1 / float64(n-1)
		}
	}
	return w
}

// Transpose sends from node (x, y) to node (y, x) on a square network:
// with b address bits, the upper and lower halves of the node index are
// swapped. n must be a power of four.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(_ *sim.RNG, src, n int) int {
	b := log2(n)
	half := b / 2
	mask := (1 << half) - 1
	return (src>>half)&mask | (src&mask)<<half
}

// DestWeights implements Weighted.
func (p Transpose) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// BitComplement sends from node a to node ~a (mod n). n must be a power of
// two.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (BitComplement) Dest(_ *sim.RNG, src, n int) int {
	log2(n) // validate the node count
	return ^src & (n - 1)
}

// DestWeights implements Weighted.
func (p BitComplement) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// BitReversal sends from node a to the node whose index has a's bits in
// reverse order. n must be a power of two.
type BitReversal struct{}

// Name implements Pattern.
func (BitReversal) Name() string { return "bitrev" }

// Dest implements Pattern.
func (BitReversal) Dest(_ *sim.RNG, src, n int) int {
	b := log2(n)
	return int(bits.Reverse64(uint64(src)) >> (64 - b))
}

// DestWeights implements Weighted.
func (p BitReversal) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// Shuffle sends from node a to the node obtained by rotating a's bits left
// by one. n must be a power of two.
type Shuffle struct{}

// Name implements Pattern.
func (Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (Shuffle) Dest(_ *sim.RNG, src, n int) int {
	b := log2(n)
	return (src<<1 | src>>(b-1)) & (n - 1)
}

// DestWeights implements Weighted.
func (p Shuffle) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// Tornado sends halfway around each dimension of a kxk square network:
// (x, y) -> (x + ceil(k/2) - 1 mod k, y). It is the classic adversarial
// pattern for rings and tori.
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (Tornado) Dest(_ *sim.RNG, src, n int) int {
	k := isqrt(n)
	x, y := src%k, src/k
	x = (x + (k+1)/2 - 1) % k
	return y*k + x
}

// DestWeights implements Weighted.
func (p Tornado) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// Neighbor sends one hop in the +x direction with wraparound on a kxk
// square network, the best case for any topology.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(_ *sim.RNG, src, n int) int {
	k := isqrt(n)
	x, y := src%k, src/k
	x = (x + 1) % k
	return y*k + x
}

// DestWeights implements Weighted.
func (p Neighbor) DestWeights(src, n int) []float64 { return onehot(p.Dest(nil, src, n), n) }

// Permutation wraps a fixed destination table as a Pattern, used for
// replaying measured communication matrices.
type Permutation struct {
	Label string
	Table []int
}

// Name implements Pattern.
func (p *Permutation) Name() string { return p.Label }

// Dest implements Pattern.
func (p *Permutation) Dest(_ *sim.RNG, src, n int) int { return p.Table[src] }

// DestWeights implements Weighted.
func (p *Permutation) DestWeights(src, n int) []float64 { return onehot(p.Table[src], n) }

// ByName returns the built-in pattern with the given name.
func ByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "uniform-noself":
		return UniformNoSelf{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bitcomp":
		return BitComplement{}, nil
	case "bitrev":
		return BitReversal{}, nil
	case "shuffle":
		return Shuffle{}, nil
	case "tornado":
		return Tornado{}, nil
	case "neighbor":
		return Neighbor{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// log2 returns floor(log2(n)); it panics unless n is a positive power of
// two, since the bit-permutation patterns are only defined there.
func log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("traffic: pattern requires power-of-two node count, got %d", n))
	}
	return bits.TrailingZeros64(uint64(n))
}

// isqrt returns the integer square root of n; it panics unless n is a
// perfect square, since the 2D patterns are only defined on square networks.
func isqrt(n int) int {
	k := 0
	for k*k < n {
		k++
	}
	if k*k != n {
		panic(fmt.Sprintf("traffic: pattern requires square node count, got %d", n))
	}
	return k
}

// SizeDist draws packet lengths in flits.
type SizeDist interface {
	// Name returns the distribution's short identifier.
	Name() string
	// Sample returns one packet length in flits (>= 1).
	Sample(rng *sim.RNG) int
	// Mean returns the expected packet length in flits.
	Mean() float64
}

// FixedSize always returns the same packet length.
type FixedSize int

// Name implements SizeDist.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed%d", int(f)) }

// Sample implements SizeDist.
func (f FixedSize) Sample(_ *sim.RNG) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// MeanSquare returns E[L²] for the queueing estimator's service-time
// variance (see internal/analytic).
func (f FixedSize) MeanSquare() float64 { return float64(f) * float64(f) }

// Bimodal mixes two packet lengths, the paper's "1 flit and 4 flit" mix:
// short control packets and long data packets.
type Bimodal struct {
	Short, Long int
	// PShort is the probability of drawing the short length.
	PShort float64
}

// DefaultBimodal is the paper's packet mix: half 1-flit, half 4-flit.
func DefaultBimodal() Bimodal { return Bimodal{Short: 1, Long: 4, PShort: 0.5} }

// Name implements SizeDist.
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal%d/%d", b.Short, b.Long)
}

// Sample implements SizeDist.
func (b Bimodal) Sample(rng *sim.RNG) int {
	if rng.Bernoulli(b.PShort) {
		return b.Short
	}
	return b.Long
}

// Mean implements SizeDist.
func (b Bimodal) Mean() float64 {
	return b.PShort*float64(b.Short) + (1-b.PShort)*float64(b.Long)
}

// MeanSquare returns E[L²] for the queueing estimator's service-time
// variance (see internal/analytic).
func (b Bimodal) MeanSquare() float64 {
	return b.PShort*float64(b.Short)*float64(b.Short) + (1-b.PShort)*float64(b.Long)*float64(b.Long)
}

// Hotspot sends a fraction of traffic to one hot node and the rest
// uniformly: the classic memory-controller / accelerator contention
// pattern.
type Hotspot struct {
	// Hot is the hotspot node index.
	Hot int
	// Fraction of packets targeting the hotspot (the rest are uniform).
	Fraction float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot%d@%.2f", h.Hot, h.Fraction) }

// Dest implements Pattern.
func (h Hotspot) Dest(rng *sim.RNG, src, n int) int {
	if rng.Bernoulli(h.Fraction) {
		return h.Hot % n
	}
	return rng.Intn(n)
}

// DestWeights implements Weighted.
func (h Hotspot) DestWeights(_, n int) []float64 {
	w := make([]float64, n)
	for d := range w {
		w[d] = (1 - h.Fraction) / float64(n)
	}
	w[h.Hot%n] += h.Fraction
	return w
}

// Class describes one QoS traffic class of a multi-class mix: its own
// spatial pattern, its share of the total offered load, and its own packet
// size distribution. Priority is positional — class 0 of a mix is the
// highest priority.
type Class struct {
	// Name labels the class in results, figures and ledger records.
	Name string
	// Share is the class's fraction of the total offered load, in (0, 1].
	// Shares of a mix sum to 1.
	Share float64
	// Pattern maps sources to destinations for this class's packets.
	Pattern Pattern
	// Sizes draws this class's packet lengths.
	Sizes SizeDist
}

// ValidateClasses checks a class mix: at least one class, positive shares
// summing to 1 (within floating-point slack), non-nil pattern and sizes,
// and unique names.
func ValidateClasses(classes []Class) error {
	if len(classes) == 0 {
		return fmt.Errorf("traffic: class mix is empty")
	}
	seen := make(map[string]bool, len(classes))
	var sum float64
	for i, c := range classes {
		if c.Name == "" {
			return fmt.Errorf("traffic: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("traffic: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Share <= 0 || c.Share > 1 {
			return fmt.Errorf("traffic: class %q share %g outside (0, 1]", c.Name, c.Share)
		}
		if c.Pattern == nil {
			return fmt.Errorf("traffic: class %q has no pattern", c.Name)
		}
		if c.Sizes == nil {
			return fmt.Errorf("traffic: class %q has no size distribution", c.Name)
		}
		sum += c.Share
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("traffic: class shares sum to %g, want 1", sum)
	}
	return nil
}

// Process is the temporal side of open-loop traffic: it decides, cycle by
// cycle and per source, whether a new packet is generated.
type Process interface {
	// Name returns the process's short identifier.
	Name() string
	// OfferedLoad returns the long-run offered load in flits/cycle/node.
	OfferedLoad() float64
	// ShouldInjectAt reports whether the given source generates a packet
	// this cycle.
	ShouldInjectAt(rng *sim.RNG, node int) bool
}

// Bernoulli is the standard open-loop temporal process: each cycle, each
// source starts a new packet with probability rate/meanLen so that the
// offered load in flits/cycle/node equals rate.
type Bernoulli struct {
	// Rate is the offered load in flits per cycle per node.
	Rate float64
	// Sizes draws the packet lengths.
	Sizes SizeDist
}

// Name implements Process.
func (b Bernoulli) Name() string { return "bernoulli" }

// OfferedLoad implements Process.
func (b Bernoulli) OfferedLoad() float64 { return b.Rate }

// ShouldInject reports whether a new packet is generated this cycle.
func (b Bernoulli) ShouldInject(rng *sim.RNG) bool {
	return rng.Bernoulli(b.Rate / b.Sizes.Mean())
}

// ShouldInjectAt implements Process; Bernoulli sources are memoryless and
// identical, so the node index is ignored.
func (b Bernoulli) ShouldInjectAt(rng *sim.RNG, _ int) bool { return b.ShouldInject(rng) }

// OnOff is a two-state Markov-modulated (bursty) injection process in the
// spirit of Turner's burst-traffic model: each source alternates between
// an ON state injecting at PeakRate and a silent OFF state, with
// geometrically distributed sojourn times. The long-run offered load is
// PeakRate * onFraction.
type OnOff struct {
	// PeakRate is the offered load while ON, in flits/cycle/node.
	PeakRate float64
	// MeanOn and MeanOff are the expected state sojourn times in cycles.
	MeanOn, MeanOff float64
	// Sizes draws packet lengths.
	Sizes SizeDist

	state []bool // per-node ON flag; lazily initialized
}

// NewOnOff returns a bursty process for n sources. All sources start OFF
// at independent random phases.
func NewOnOff(n int, peak, meanOn, meanOff float64, sizes SizeDist) *OnOff {
	if meanOn < 1 {
		meanOn = 1
	}
	if meanOff < 1 {
		meanOff = 1
	}
	return &OnOff{
		PeakRate: peak,
		MeanOn:   meanOn,
		MeanOff:  meanOff,
		Sizes:    sizes,
		state:    make([]bool, n),
	}
}

// Name implements Process.
func (o *OnOff) Name() string { return "onoff" }

// OfferedLoad implements Process: the long-run average offered load.
func (o *OnOff) OfferedLoad() float64 {
	return o.PeakRate * o.MeanOn / (o.MeanOn + o.MeanOff)
}

// ShouldInjectAt implements Process. State transitions are evaluated per
// call (one call per node per cycle).
func (o *OnOff) ShouldInjectAt(rng *sim.RNG, node int) bool {
	if o.state[node] {
		if rng.Bernoulli(1 / o.MeanOn) {
			o.state[node] = false
		}
	} else if rng.Bernoulli(1 / o.MeanOff) {
		o.state[node] = true
	}
	if !o.state[node] {
		return false
	}
	return rng.Bernoulli(o.PeakRate / o.Sizes.Mean())
}
