package traffic

import (
	"testing"

	"noceval/internal/sim"
)

func TestHotspotSplitsTraffic(t *testing.T) {
	rng := sim.NewRNG(10)
	h := Hotspot{Hot: 5, Fraction: 0.3}
	hot, total := 0, 50000
	for i := 0; i < total; i++ {
		if h.Dest(rng, 1, 64) == 5 {
			hot++
		}
	}
	// 30% direct plus 1/64 of the uniform remainder.
	want := 0.3 + 0.7/64
	f := float64(hot) / float64(total)
	if f < want-0.02 || f > want+0.02 {
		t.Errorf("hotspot fraction = %.3f, want ~%.3f", f, want)
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestBernoulliImplementsProcess(t *testing.T) {
	var p Process = Bernoulli{Rate: 0.25, Sizes: FixedSize(1)}
	if p.OfferedLoad() != 0.25 {
		t.Errorf("offered load = %v", p.OfferedLoad())
	}
	rng := sim.NewRNG(11)
	hits := 0
	for i := 0; i < 40000; i++ {
		if p.ShouldInjectAt(rng, i%16) {
			hits++
		}
	}
	if f := float64(hits) / 40000; f < 0.23 || f > 0.27 {
		t.Errorf("rate = %.3f", f)
	}
}

func TestOnOffLongRunRate(t *testing.T) {
	const n = 16
	o := NewOnOff(n, 0.8, 50, 150, FixedSize(1))
	if got, want := o.OfferedLoad(), 0.2; got != want {
		t.Fatalf("offered load = %v, want %v", got, want)
	}
	rng := sim.NewRNG(12)
	injections := 0
	const cycles = 200000
	for c := 0; c < cycles; c++ {
		for node := 0; node < n; node++ {
			if o.ShouldInjectAt(rng, node) {
				injections++
			}
		}
	}
	rate := float64(injections) / float64(cycles*n)
	if rate < 0.17 || rate > 0.23 {
		t.Errorf("measured long-run rate = %.3f, want ~0.2", rate)
	}
}

func TestOnOffIsBursty(t *testing.T) {
	// Compare the variance of per-window injection counts against a
	// Bernoulli process of the same average rate: the on/off process must
	// be markedly burstier.
	const windows, winLen = 400, 100
	count := func(p Process) []float64 {
		rng := sim.NewRNG(13)
		out := make([]float64, windows)
		for w := 0; w < windows; w++ {
			c := 0
			for i := 0; i < winLen; i++ {
				if p.ShouldInjectAt(rng, 0) {
					c++
				}
			}
			out[w] = float64(c)
		}
		return out
	}
	onoff := count(NewOnOff(1, 0.8, 60, 180, FixedSize(1)))
	bern := count(Bernoulli{Rate: 0.2, Sizes: FixedSize(1)})
	varOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		v := 0.0
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs))
	}
	if varOf(onoff) < 3*varOf(bern) {
		t.Errorf("on/off window variance %.1f not >> bernoulli %.1f", varOf(onoff), varOf(bern))
	}
}
