// Package openloop implements the classic open-loop measurement methodology
// of Dally & Towles (§II-A of the paper): traffic parameters — spatial
// distribution, temporal process, packet sizes — are independent of network
// state thanks to infinite source queues, and network performance is
// characterized by the average packet latency at a swept offered load.
//
// The harness uses the standard three-phase procedure: a warmup phase to
// reach steady state, a measurement phase whose packets are tagged, and a
// drain phase (with traffic still offered, to hold the network in steady
// state) that runs until every tagged packet has arrived. An offered load
// beyond saturation is detected by the drain failing to complete or by the
// source queues growing without bound.
package openloop

import (
	"context"
	"fmt"
	"runtime"

	"noceval/internal/engine"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/par"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/stats"
	"noceval/internal/traffic"
)

// Config describes one open-loop run.
type Config struct {
	Net     network.Config
	Pattern traffic.Pattern
	Sizes   traffic.SizeDist
	// Ctx, when non-nil, makes the run cancellable: the engine polls it at
	// fast-forward boundaries and every ~1k stepped cycles, and a
	// cancelled run returns a nil result with an error wrapping the
	// context's cause. Never part of the experiment-cache key.
	Ctx context.Context
	// Rate is the offered load in flits/cycle/node.
	Rate float64
	// Proc, when non-nil, replaces the default Bernoulli injection process
	// (e.g. traffic.OnOff for bursty sources). Rate is ignored when set.
	Proc traffic.Process
	// Classes, when non-empty, splits the offered load into QoS traffic
	// classes: each class injects Bernoulli traffic at Rate*Share with its
	// own pattern and size distribution (nil fields inherit the top-level
	// Pattern/Sizes), and its packets carry the class index so the router
	// maps them onto the class's VC partition. Mutually exclusive with
	// Proc. Net.Router.Classes should match len(Classes) for the VC
	// partition to take effect.
	Classes []traffic.Class
	// Warmup and Measure are the phase lengths in cycles; DrainLimit bounds
	// the drain phase. Zero values select defaults (10k/10k/100k).
	Warmup     int64
	Measure    int64
	DrainLimit int64
	Seed       uint64

	// Obs, when non-nil, attaches the observability layer to the run's
	// network: metrics, per-router telemetry and flit tracing.
	Obs *obs.Observer
	// Progress, when non-nil, prints run heartbeats.
	Progress *obs.Progress

	// FullScan runs the legacy per-cycle full scans over every router and
	// source queue instead of the activity-tracked engine paths. The two
	// are bit-identical (the determinism regression test proves it);
	// FullScan exists for one release as that test's reference side and
	// will then be removed.
	FullScan bool

	// Inspect, when non-nil, receives the run's network after the engine
	// finishes and before Run returns — the invariant harness hooks here to
	// check conservation on the final state.
	Inspect func(*network.Network)

	// OnEngine, when non-nil, receives the engine outcome (stepped vs
	// fast-forwarded cycle split) after the run finishes. The run ledger
	// hooks here; the outcome never feeds back into results.
	OnEngine func(engine.Outcome)
}

// Default phase lengths applied when the corresponding Config fields are
// zero. Exported so callers that key results by their effective
// configuration (internal/core's experiment cache) can normalize.
const (
	DefaultWarmup     = 10000
	DefaultMeasure    = 10000
	DefaultDrainLimit = 100000
)

func (c *Config) fillDefaults() {
	if c.Warmup == 0 {
		c.Warmup = DefaultWarmup
	}
	if c.Measure == 0 {
		c.Measure = DefaultMeasure
	}
	if c.DrainLimit == 0 {
		c.DrainLimit = DefaultDrainLimit
	}
	if c.Sizes == nil {
		c.Sizes = traffic.FixedSize(1)
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
}

// Result summarizes one open-loop run.
type Result struct {
	Rate float64 // offered load, flits/cycle/node
	// Stable is false when the drain phase did not complete: the offered
	// load is beyond saturation and latencies diverge.
	Stable bool

	AvgLatency    float64 // mean packet latency (cycles), incl. source queueing
	LatencyCI95   float64 // 95% confidence half-width of AvgLatency (batch means)
	WorstLatency  float64 // max over nodes of the per-source average latency
	AvgNetLatency float64 // mean latency excluding source queueing
	AvgHops       float64
	P95, P99      float64

	// PerNodeAvg is the average latency of measured packets by source node
	// (the distribution plotted in Fig 11a/b).
	PerNodeAvg []float64

	// Accepted is the measured throughput in flits/cycle/node during the
	// measurement phase.
	Accepted float64

	MeasuredPackets int
	// PerClass carries per-traffic-class results when the run was driven
	// by Config.Classes, in class order (index 0 = highest priority); nil
	// for classic single-class runs so their JSON stays byte-identical.
	PerClass []ClassResult `json:",omitempty"`
	// EndCycle is the simulated cycle at which the run finished (warmup +
	// measurement + drain). It is identical across engine paths — the
	// fast-forward is exact — and gives the run ledger its cycle count.
	EndCycle int64 `json:",omitempty"`
	// LostPackets counts measured packets abandoned by the recovery NIC
	// after exhausting retries (always 0 without fault injection).
	LostPackets int `json:",omitempty"`
	// Faults carries the fault/recovery counters of a faulted run, nil
	// otherwise. DeliveredFraction is the measured-packet delivery rate.
	Faults *fault.Stats `json:",omitempty"`
}

// ClassResult summarizes one traffic class of a multi-class run. All
// latency statistics cover measured packets of the class only; Accepted is
// the class's delivered throughput during the measurement phase.
type ClassResult struct {
	Name  string
	Share float64
	Rate  float64 // offered load of this class, flits/cycle/node

	AvgLatency float64
	P95, P99   float64

	Accepted float64 // measured throughput, flits/cycle/node

	Injected        int64 // measured packets injected
	Delivered       int64 // packets delivered during the measurement phase
	MeasuredPackets int
}

// driver implements engine.Driver for the open-loop methodology: every
// cycle each terminal consults its injection process, so the offered
// traffic is independent of network state — including during the drain
// phase, which keeps offering (unmeasured) traffic to hold the network in
// steady state. Because sources draw from the RNG every cycle, an open-
// loop run has no skippable cycles; its engine win is the network's
// activity-tracked stepping.
type driver struct {
	cfg  *Config
	net  *network.Network
	rng  *sim.RNG
	proc traffic.Process
	n    int

	measureFrom, drainFrom int64
	outstanding            *int

	// bernProb, when non-negative, is the memoryless per-cycle injection
	// probability of a plain Bernoulli process, hoisted out of the
	// per-node loop: Cycle makes n draws every cycle of the run, so the
	// interface dispatch and rate/mean division are worth precomputing.
	// The RNG draw sequence is identical to calling the process.
	bernProb float64

	// classProb, when non-nil, switches the driver to multi-class
	// injection: per cycle each terminal makes one Bernoulli draw per
	// class in priority order, so the per-class offered loads are
	// independent of each other and of network state.
	classProb     []float64
	classes       []traffic.Class
	classInjected []int64
}

// Cycle implements engine.Driver: one injection opportunity per terminal.
func (d *driver) Cycle(now int64) {
	measured := now >= d.measureFrom && now < d.drainFrom
	if d.classProb != nil {
		for node := 0; node < d.n; node++ {
			for qc := range d.classProb {
				if d.rng.Bernoulli(d.classProb[qc]) {
					d.emitClass(node, qc, measured)
				}
			}
		}
		return
	}
	if d.bernProb >= 0 {
		for node := 0; node < d.n; node++ {
			if d.rng.Bernoulli(d.bernProb) {
				d.emit(node, measured)
			}
		}
		return
	}
	for node := 0; node < d.n; node++ {
		if d.proc.ShouldInjectAt(d.rng, node) {
			d.emit(node, measured)
		}
	}
}

// emit generates one packet at node, drawing its size and destination in
// the methodology's fixed order.
func (d *driver) emit(node int, measured bool) {
	size := d.cfg.Sizes.Sample(d.rng)
	dst := d.cfg.Pattern.Dest(d.rng, node, d.n)
	p := d.net.NewPacket(node, dst, size, router.KindData)
	if measured {
		p.Measured = true
		*d.outstanding++
	}
	d.net.Send(p)
}

// emitClass generates one packet of QoS class qc at node, drawing from the
// class's own size and spatial distributions in the same fixed order as
// emit.
func (d *driver) emitClass(node, qc int, measured bool) {
	cl := &d.classes[qc]
	size := cl.Sizes.Sample(d.rng)
	dst := cl.Pattern.Dest(d.rng, node, d.n)
	p := d.net.NewPacket(node, dst, size, router.KindData)
	p.Class = qc
	if measured {
		p.Measured = true
		*d.outstanding++
		d.classInjected[qc]++
	}
	d.net.Send(p)
}

// Done implements engine.Driver: the run ends once the measurement phase
// is over and every tagged packet has arrived.
func (d *driver) Done(now int64) bool {
	return now >= d.drainFrom && *d.outstanding == 0
}

// Idle implements engine.Driver; open-loop sources offer traffic every
// cycle, so the run never fast-forwards.
func (d *driver) Idle(int64) bool { return false }

// NextEvent implements engine.Driver.
func (d *driver) NextEvent(int64) int64 { return engine.NoEvent }

// Run executes one open-loop simulation.
func Run(cfg Config) (*Result, error) {
	cfg.fillDefaults()
	var proc traffic.Process
	switch {
	case len(cfg.Classes) > 0:
		if cfg.Proc != nil {
			return nil, fmt.Errorf("openloop: Classes and Proc are mutually exclusive")
		}
		if cfg.Rate <= 0 {
			return nil, fmt.Errorf("openloop: offered load must be positive, got %g", cfg.Rate)
		}
		// Copy before filling per-class defaults so the caller's slice is
		// never mutated.
		cfg.Classes = append([]traffic.Class(nil), cfg.Classes...)
		for i := range cfg.Classes {
			if cfg.Classes[i].Pattern == nil {
				cfg.Classes[i].Pattern = cfg.Pattern
			}
			if cfg.Classes[i].Sizes == nil {
				cfg.Classes[i].Sizes = cfg.Sizes
			}
		}
		if err := traffic.ValidateClasses(cfg.Classes); err != nil {
			return nil, err
		}
	case cfg.Proc != nil:
		proc = cfg.Proc
		cfg.Rate = proc.OfferedLoad()
	default:
		if cfg.Rate <= 0 {
			return nil, fmt.Errorf("openloop: offered load must be positive, got %g", cfg.Rate)
		}
		proc = traffic.Bernoulli{Rate: cfg.Rate, Sizes: cfg.Sizes}
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	net := network.New(cfg.Net)
	n := net.Nodes()
	rng := sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)

	net.AttachObserver(cfg.Obs)
	var latencyHist *obs.Histogram
	var measuredCtr *obs.Counter
	var classHists []*obs.Histogram
	if cfg.Obs != nil {
		latencyHist = cfg.Obs.Registry.Histogram("openloop.packet_latency_cycles", 0, 1024, 64)
		measuredCtr = cfg.Obs.Registry.Counter("openloop.measured_packets")
		if len(cfg.Classes) > 0 {
			classHists = make([]*obs.Histogram, len(cfg.Classes))
			for i, cl := range cfg.Classes {
				classHists[i] = cfg.Obs.Registry.Histogram(
					"openloop.class."+cl.Name+".latency_cycles", 0, 1024, 64)
			}
		}
	}

	var (
		latencies    []float64
		netLatencies []float64
		hops         []float64
		perNodeSum   = make([]float64, n)
		perNodeCnt   = make([]int, n)
		outstanding  int
		ejectedFlits int64
		lostPackets  int

		// Per-class accounting, allocated only for multi-class runs so the
		// classic path's receive callback stays unchanged.
		classLat   [][]float64
		classEject []int64
		classDeliv []int64
	)
	if C := len(cfg.Classes); C > 0 {
		classLat = make([][]float64, C)
		classEject = make([]int64, C)
		classDeliv = make([]int64, C)
	}
	// The three-phase schedule in absolute cycles: warmup [0, measureFrom),
	// measurement [measureFrom, drainFrom), drain [drainFrom, ...). Packets
	// are tagged by injection cycle and counted by arrival cycle, exactly
	// as the phase flags of the old hand-rolled loop did.
	measureFrom := cfg.Warmup
	drainFrom := cfg.Warmup + cfg.Measure
	net.OnReceive = func(now int64, p *router.Packet) {
		inWindow := now >= measureFrom && now < drainFrom
		if inWindow {
			ejectedFlits += int64(p.Size)
		}
		if classEject != nil {
			qc := p.Class
			if qc < 0 || qc >= len(classEject) {
				qc = len(classEject) - 1
			}
			if inWindow {
				classEject[qc] += int64(p.Size)
				classDeliv[qc]++
			}
			if p.Measured {
				classLat[qc] = append(classLat[qc], float64(p.Latency()))
				if classHists != nil {
					classHists[qc].Observe(float64(p.Latency()))
				}
			}
		}
		if !p.Measured {
			return
		}
		l := float64(p.Latency())
		latencyHist.Observe(l)
		measuredCtr.Inc()
		latencies = append(latencies, l)
		netLatencies = append(netLatencies, float64(p.NetworkLatency()))
		hops = append(hops, float64(p.Hops))
		perNodeSum[p.Src] += l
		perNodeCnt[p.Src]++
		outstanding--
	}
	// A tagged packet the NIC gives up on will never arrive; account it so
	// the drain phase can still complete and the loss shows in the result.
	net.OnDeadDrop = func(now int64, p *router.Packet) {
		if p.Measured {
			outstanding--
			lostPackets++
		}
	}

	net.SetFullScan(cfg.FullScan)
	d := &driver{
		cfg: &cfg, net: net, rng: rng, proc: proc, n: n,
		measureFrom: measureFrom, drainFrom: drainFrom,
		outstanding: &outstanding,
		bernProb:    -1,
	}
	if len(cfg.Classes) > 0 {
		d.classes = cfg.Classes
		d.classProb = make([]float64, len(cfg.Classes))
		for i, cl := range cfg.Classes {
			d.classProb[i] = cfg.Rate * cl.Share / cl.Sizes.Mean()
		}
		d.classInjected = make([]int64, len(cfg.Classes))
	} else if b, ok := proc.(traffic.Bernoulli); ok {
		d.bernProb = b.Rate / b.Sizes.Mean()
	}
	eo := engine.RunOutcome(engine.Config{
		Net:      net,
		Ctx:      cfg.Ctx,
		Deadline: drainFrom + cfg.DrainLimit,
		Progress: cfg.Progress,
		// During warmup and measurement the run length is known exactly;
		// in the drain phase only the abort bound is, so ETAs report the
		// worst case instead of a horizon the run has already passed.
		Horizon: func(now int64) int64 {
			if now <= drainFrom {
				return drainFrom
			}
			return drainFrom + cfg.DrainLimit
		},
		FullScan: cfg.FullScan,
	}, d)
	stable := eo.Completed
	if cfg.OnEngine != nil {
		cfg.OnEngine(eo)
	}
	if eo.Canceled {
		// The run was abandoned mid-flight: no phase completed, so there is
		// no partial result worth reporting (or caching).
		net.Close()
		return nil, fmt.Errorf("openloop: run canceled at cycle %d: %w", eo.End, context.Cause(cfg.Ctx))
	}
	if !stable {
		cfg.Progress.Note(net.Now(), "drain aborted at DrainLimit (%d cycles) with %d tagged packets outstanding",
			cfg.DrainLimit, outstanding)
	}
	measureCycles := cfg.Measure

	res := &Result{
		Rate:            cfg.Rate,
		Stable:          stable,
		MeasuredPackets: len(latencies),
		EndCycle:        net.Now(),
		PerNodeAvg:      make([]float64, n),
	}
	if len(latencies) > 0 {
		sum := stats.Summarize(latencies)
		res.AvgLatency = sum.Mean
		res.LatencyCI95 = stats.BatchMeansCI95(latencies, 10)
		res.P95, res.P99 = sum.P95, sum.P99
		res.AvgNetLatency = stats.Mean(netLatencies)
		res.AvgHops = stats.Mean(hops)
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		if perNodeCnt[i] > 0 {
			res.PerNodeAvg[i] = perNodeSum[i] / float64(perNodeCnt[i])
		}
		if res.PerNodeAvg[i] > worst {
			worst = res.PerNodeAvg[i]
		}
	}
	res.WorstLatency = worst
	if measureCycles > 0 {
		res.Accepted = float64(ejectedFlits) / float64(measureCycles) / float64(n)
	}
	if C := len(cfg.Classes); C > 0 {
		res.PerClass = make([]ClassResult, C)
		sums := stats.SummarizeClasses(classLat)
		for i, cl := range cfg.Classes {
			cr := ClassResult{
				Name: cl.Name, Share: cl.Share, Rate: cfg.Rate * cl.Share,
				Injected: d.classInjected[i], Delivered: classDeliv[i],
				MeasuredPackets: sums[i].N,
				AvgLatency:      sums[i].Mean, P95: sums[i].P95, P99: sums[i].P99,
			}
			if measureCycles > 0 {
				cr.Accepted = float64(classEject[i]) / float64(measureCycles) / float64(n)
			}
			res.PerClass[i] = cr
		}
	}
	// Beyond saturation the network cannot accept the offered load: source
	// queues grow without bound even if the tagged packets eventually get
	// through. Treat a >10% shortfall between accepted and offered
	// throughput as instability.
	if res.Accepted < 0.9*cfg.Rate {
		res.Stable = false
	}
	res.LostPackets = lostPackets
	if fs := net.FaultStats(); fs != nil {
		if total := len(latencies) + lostPackets; total > 0 {
			fs.DeliveredFraction = float64(len(latencies)) / float64(total)
		}
		res.Faults = fs
	}
	if cfg.Inspect != nil {
		cfg.Inspect(net)
	}
	net.Close()
	cfg.Progress.Done(net.Now())
	return res, nil
}

// Sweep runs the load sweep producing a latency-vs-offered-load curve
// (Fig 1, Fig 3, Fig 6a, Fig 9). It stops early once a load is unstable,
// since every higher load saturates too. Rates are in flits/cycle/node.
//
// Stable-region rates are simulated in waves of GOMAXPROCS parallel runs;
// the serial early-stop contract is preserved exactly: the returned slice
// is the ordered prefix of rates up to and including the first unstable
// point, and every result is identical to what a serial loop would have
// produced (each run is deterministic given its seed).
func Sweep(cfg Config, rates []float64) ([]*Result, error) {
	return SweepWith(cfg, rates, Run)
}

// SweepWith is Sweep with a pluggable runner for the individual rates,
// letting callers layer caching or instrumentation over the per-point
// simulation (internal/core routes its experiment cache through here).
func SweepWith(cfg Config, rates []float64, run func(Config) (*Result, error)) ([]*Result, error) {
	var out []*Result
	wave := runtime.GOMAXPROCS(0)
	if wave < 1 {
		wave = 1
	}
	for lo := 0; lo < len(rates); lo += wave {
		hi := min(lo+wave, len(rates))
		results := make([]*Result, hi-lo)
		waveErr := par.Parallel(hi-lo, 0, func(i int) error {
			c := cfg
			c.Rate = rates[lo+i]
			res, err := run(c)
			results[i] = res
			return err
		})
		// Append in rate order up to the first failed or unstable point.
		// A failure (or instability) at rate i makes any result at a
		// higher rate unreported, exactly as the serial loop never would
		// have run it.
		for _, res := range results {
			if res == nil {
				return out, waveErr
			}
			out = append(out, res)
			if !res.Stable {
				return out, nil
			}
		}
		if waveErr != nil {
			return out, waveErr
		}
	}
	return out, nil
}

// ZeroLoad measures the zero-load latency T0: the average latency at a
// vanishing offered load where queueing is negligible.
func ZeroLoad(cfg Config) (float64, error) {
	return ZeroLoadWith(cfg, Run)
}

// ZeroLoadWith is ZeroLoad with a pluggable runner (see SweepWith).
func ZeroLoadWith(cfg Config, run func(Config) (*Result, error)) (float64, error) {
	c := cfg
	c.Rate = 0.005
	c.fillDefaults()
	c.Warmup = 2000
	c.Measure = 20000
	res, err := run(c)
	if err != nil {
		return 0, err
	}
	return res.AvgLatency, nil
}

// Saturation estimates the saturation throughput by bisection over the
// offered load in [lo, hi]: the largest stable load whose average latency
// stays below latencyCap times the zero-load latency. The paper defines
// saturation as the load where latency approaches infinity; a finite
// multiple (conventionally 3x) makes the measurement robust.
func Saturation(cfg Config, lo, hi, latencyCap float64) (float64, error) {
	return SaturationWith(cfg, lo, hi, latencyCap, Run)
}

// SaturationWith is Saturation with a pluggable runner (see SweepWith).
func SaturationWith(cfg Config, lo, hi, latencyCap float64, run func(Config) (*Result, error)) (float64, error) {
	stableAt, err := stableProbe(cfg, latencyCap, run)
	if err != nil {
		return 0, err
	}
	return bisectSaturation(stableAt, lo, hi)
}

// stableProbe measures the zero-load latency and returns the bisection
// predicate: is the given offered load stable with average latency below
// latencyCap times T0?
func stableProbe(cfg Config, latencyCap float64, run func(Config) (*Result, error)) (func(float64) (bool, error), error) {
	if latencyCap <= 1 {
		latencyCap = 3
	}
	t0, err := ZeroLoadWith(cfg, run)
	if err != nil {
		return nil, err
	}
	limit := latencyCap * t0
	return func(rate float64) (bool, error) {
		c := cfg
		c.Rate = rate
		res, err := run(c)
		if err != nil {
			return false, err
		}
		return res.Stable && res.AvgLatency <= limit, nil
	}, nil
}

// bisectSaturation runs the standard bisection over [lo, hi]: it returns
// the largest probed stable load. Degenerate brackets behave as the loop
// bound implies: lo == hi (or a bracket already narrower than the 0.005
// resolution) probes nothing and returns lo; an all-stable bracket
// converges to hi, an all-unstable one stays at lo.
func bisectSaturation(stableAt func(float64) (bool, error), lo, hi float64) (float64, error) {
	for i := 0; i < 12 && hi-lo > 0.005; i++ {
		mid := (lo + hi) / 2
		ok, err := stableAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
