package openloop

import (
	"testing"

	"noceval/internal/traffic"
)

func TestBurstyProcessRaisesLatencyAtEqualLoad(t *testing.T) {
	// An on/off source set with the same long-run offered load as a
	// Bernoulli process must see higher average latency: bursts queue.
	base := quick(Config{Net: meshConfig(1, 16), Rate: 0.2, Seed: 31})
	smooth, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bursty := base
	bursty.Proc = traffic.NewOnOff(64, 0.8, 60, 180, traffic.FixedSize(1)) // 0.2 average
	b, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rate != 0.2 {
		t.Errorf("bursty offered load recorded as %v", b.Rate)
	}
	if b.AvgLatency <= smooth.AvgLatency {
		t.Errorf("bursty latency %.2f not above smooth %.2f", b.AvgLatency, smooth.AvgLatency)
	}
}

func TestHotspotSaturatesEarly(t *testing.T) {
	// Concentrating 25% of traffic on one node caps throughput at about
	// 4x the ejection bandwidth of that node: far below uniform capacity.
	cfg := quick(Config{Net: meshConfig(1, 16), Rate: 0.3, Seed: 32})
	cfg.Pattern = traffic.Hotspot{Hot: 27, Fraction: 0.25}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// theta_max ~ 1 / (0.25 * 64) per node ~= 0.0625 plus the uniform
	// share; 0.3 offered must be unstable.
	if res.Stable {
		t.Errorf("hotspot at 0.3 offered reported stable (accepted %.3f)", res.Accepted)
	}
	low := quick(Config{Net: meshConfig(1, 16), Rate: 0.03, Seed: 32})
	low.Pattern = traffic.Hotspot{Hot: 27, Fraction: 0.25}
	lres, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	if !lres.Stable {
		t.Error("hotspot at 0.03 offered should be stable")
	}
}

func TestLatencyCIShrinksWithMeasurement(t *testing.T) {
	short := Config{Net: meshConfig(1, 16), Rate: 0.2, Seed: 33, Warmup: 1000, Measure: 1500, DrainLimit: 20000}
	long := short
	long.Measure = 12000
	s, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if s.LatencyCI95 <= 0 || l.LatencyCI95 <= 0 {
		t.Fatalf("CIs not positive: %v, %v", s.LatencyCI95, l.LatencyCI95)
	}
	if l.LatencyCI95 >= s.LatencyCI95 {
		t.Errorf("CI did not shrink with longer measurement: %.3f -> %.3f", s.LatencyCI95, l.LatencyCI95)
	}
}
