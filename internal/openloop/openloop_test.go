package openloop

import (
	"errors"
	"testing"

	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func meshConfig(tr int64, q int) network.Config {
	return network.Config{
		Topo:    topology.NewMesh(8, 8),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: q, Delay: tr},
		Seed:    42,
	}
}

func quick(cfg Config) Config {
	cfg.Warmup = 2000
	cfg.Measure = 4000
	cfg.DrainLimit = 30000
	return cfg
}

func TestLowLoadLatencyNearZeroLoad(t *testing.T) {
	res, err := Run(quick(Config{Net: meshConfig(1, 16), Rate: 0.02, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("low load should be stable")
	}
	// 8x8 mesh uniform: avg hops ~5.25, hop cost 2, ejection 1 -> ~11.5
	// cycles plus small queueing.
	if res.AvgLatency < 10 || res.AvgLatency > 16 {
		t.Errorf("zero-load latency = %.2f, want ~11-13", res.AvgLatency)
	}
	if res.AvgHops < 4.8 || res.AvgHops > 5.8 {
		t.Errorf("avg hops = %.2f, want ~5.25", res.AvgHops)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	var prev float64
	for i, rate := range []float64{0.05, 0.2, 0.35} {
		res, err := Run(quick(Config{Net: meshConfig(1, 16), Rate: rate, Seed: 2}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stable {
			t.Fatalf("rate %.2f unexpectedly unstable", rate)
		}
		if i > 0 && res.AvgLatency <= prev {
			t.Errorf("latency did not rise: %.2f -> %.2f at rate %.2f", prev, res.AvgLatency, rate)
		}
		prev = res.AvgLatency
	}
}

func TestOverloadIsUnstable(t *testing.T) {
	// An 8x8 mesh under uniform random saturates near 0.4 flits/cycle/node;
	// offering 0.8 must be detected as unstable.
	res, err := Run(quick(Config{Net: meshConfig(1, 16), Rate: 0.8, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Errorf("rate 0.8 reported stable; accepted = %.3f", res.Accepted)
	}
	if res.Accepted > 0.55 {
		t.Errorf("accepted rate %.3f exceeds plausible mesh capacity", res.Accepted)
	}
}

func TestRouterDelayRaisesZeroLoadNotThroughput(t *testing.T) {
	// Fig 3a: tr scales zero-load latency ~1.5x for tr=2 but saturation
	// stays put.
	z1, err := ZeroLoad(Config{Net: meshConfig(1, 16), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	z2, err := ZeroLoad(Config{Net: meshConfig(2, 16), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := z2 / z1
	if ratio < 1.35 || ratio > 1.65 {
		t.Errorf("tr=2/tr=1 zero-load ratio = %.3f, want ~1.5", ratio)
	}
}

func TestSmallBuffersCutThroughput(t *testing.T) {
	// Fig 3b: q=4 saturates noticeably below q=16 at equal zero-load.
	cfgBig := quick(Config{Net: meshConfig(1, 16), Rate: 0.38, Seed: 5})
	cfgSmall := quick(Config{Net: meshConfig(1, 4), Rate: 0.38, Seed: 5})
	big, err := Run(cfgBig)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	if big.Stable && small.Stable && small.AvgLatency < big.AvgLatency {
		t.Errorf("q=4 latency (%.1f) below q=16 (%.1f) near saturation", small.AvgLatency, big.AvgLatency)
	}
	if !big.Stable {
		t.Errorf("q=16 should still be stable at 0.38 (accepted %.3f)", big.Accepted)
	}
}

func TestSweepStopsAfterUnstable(t *testing.T) {
	cfg := quick(Config{Net: meshConfig(1, 16), Seed: 6})
	results, err := Sweep(cfg, []float64{0.1, 0.9, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sweep returned %d results, want 2 (stop at first unstable)", len(results))
	}
	if results[1].Stable {
		t.Error("second sweep point should be unstable")
	}
}

func TestSweepWithEarlyStopAndErrors(t *testing.T) {
	cfg := Config{Seed: 1}
	// The runner fakes instability above rate 0.25: even when a wave
	// speculatively simulates higher rates, they must not be reported.
	out, err := SweepWith(cfg, []float64{0.1, 0.2, 0.3, 0.4, 0.5}, func(c Config) (*Result, error) {
		return &Result{Rate: c.Rate, Stable: c.Rate < 0.25}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3 (prefix through first unstable)", len(out))
	}
	for i, want := range []float64{0.1, 0.2, 0.3} {
		if out[i].Rate != want {
			t.Errorf("result %d has rate %.2f, want %.2f", i, out[i].Rate, want)
		}
	}
	if out[0].Stable != true || out[2].Stable != false {
		t.Error("stability flags lost in parallel sweep")
	}

	boom := errors.New("boom")
	out, err = SweepWith(cfg, []float64{0.1, 0.2, 0.3}, func(c Config) (*Result, error) {
		if c.Rate > 0.15 {
			return nil, boom
		}
		return &Result{Rate: c.Rate, Stable: true}, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if len(out) != 1 {
		t.Errorf("got %d results before the failed rate, want 1", len(out))
	}
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	// The parallel sweep must be a pure reordering of work: every reported
	// point bit-identical to an isolated serial run of the same rate.
	cfg := quick(Config{Net: meshConfig(1, 16), Seed: 9})
	rates := []float64{0.05, 0.15, 0.25}
	sweep, err := Sweep(cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(rates) {
		t.Fatalf("sweep truncated to %d points", len(sweep))
	}
	for i, rate := range rates {
		c := cfg
		c.Rate = rate
		solo, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if sweep[i].AvgLatency != solo.AvgLatency || sweep[i].MeasuredPackets != solo.MeasuredPackets {
			t.Errorf("rate %.2f: sweep (%.6f, %d) != serial (%.6f, %d)",
				rate, sweep[i].AvgLatency, sweep[i].MeasuredPackets, solo.AvgLatency, solo.MeasuredPackets)
		}
	}
}

func TestTransposeWorstCaseVsAverage(t *testing.T) {
	// Under transpose, diagonal nodes talk to themselves (tiny latency)
	// while corner pairs cross the whole network: worst-case per-node
	// latency must far exceed the average.
	cfg := quick(Config{
		Net:     meshConfig(1, 16),
		Pattern: traffic.Transpose{},
		Rate:    0.05,
		Seed:    7,
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLatency < 1.5*res.AvgLatency {
		t.Errorf("transpose worst %.1f vs avg %.1f: want worst >= 1.5x avg", res.WorstLatency, res.AvgLatency)
	}
}

func TestSaturationEstimateMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation bisection is slow")
	}
	cfg := Config{Net: meshConfig(1, 16), Seed: 8, Warmup: 2000, Measure: 3000, DrainLimit: 20000}
	sat, err := Saturation(cfg, 0.05, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	// DOR uniform on an 8x8 mesh: theoretical bound 0.5; expect ~0.35-0.50
	// with 2 VCs and q=16.
	if sat < 0.3 || sat > 0.55 {
		t.Errorf("saturation = %.3f, want ~0.35-0.50", sat)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(Config{Net: meshConfig(1, 16)}); err == nil {
		t.Error("zero rate should be rejected")
	}
	bad := meshConfig(1, 16)
	bad.Router.VCs = 0
	if _, err := Run(Config{Net: bad, Rate: 0.1}); err == nil {
		t.Error("invalid router config should be rejected")
	}
}
