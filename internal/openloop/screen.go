package openloop

// Analytic sweep screening. A sweep's parallel waves speculate beyond the
// saturation point: when the first unstable rate lands mid-wave, every
// higher rate in that wave has already been launched, and each of those
// runs burns a full DrainLimit of deeply saturated cycles before being
// discarded — by far the most expensive points of the sweep. Screening
// uses an analytic prediction of the saturation point (internal/analytic's
// queueing estimator, wired up by internal/core) to keep those rates out
// of the waves in the first place.
//
// Soundness: every result a sweep *reports* — the stable prefix and the
// first unstable point — is always a genuine simulation; screening only
// decides whether a rate is worth launching speculatively. A deferred rate
// that the sweep actually reaches (every lower rate was stable) is
// simulated on demand, exactly as the serial loop would have ("refined"),
// so a mispredicted cut costs time, never correctness. The returned slice
// is therefore bit-identical to SweepWith's for every input.

import (
	"runtime"

	"noceval/internal/par"
)

// Screen is an analytic screening plan for one sweep.
type Screen struct {
	// Cut is the offered load (flits/cycle/node) above which the analytic
	// model predicts deep saturation. Rates above Cut are not launched in
	// parallel waves; they are simulated only if the sweep reaches them.
	// A zero or negative Cut disables screening.
	Cut float64
	// Stats, when non-nil, accumulates the screening outcome.
	Stats *ScreenStats
}

// ScreenStats counts how a screened sweep's rates were handled.
type ScreenStats struct {
	// Considered is the total number of rates the sweep was asked for.
	Considered int
	// Simulated counts rates actually run (launched or refined).
	Simulated int
	// Screened counts rates a plain SweepWith would have launched
	// speculatively but screening avoided simulating entirely.
	Screened int
	// Refined counts deferred rates the sweep reached and had to simulate
	// after all — the analytic cut was below the true saturation point.
	Refined int
}

// add accumulates o into s.
func (s *ScreenStats) add(o ScreenStats) {
	s.Considered += o.Considered
	s.Simulated += o.Simulated
	s.Screened += o.Screened
	s.Refined += o.Refined
}

// SweepScreenedWith is SweepWith with analytic screening: rates above
// scr.Cut are excluded from the parallel waves and simulated only when the
// sweep genuinely reaches them. The returned results are bit-identical to
// SweepWith's (see the package comment on soundness); only the set of
// discarded speculative runs changes. A nil scr (or non-positive Cut)
// degrades to plain SweepWith.
func SweepScreenedWith(cfg Config, rates []float64, run func(Config) (*Result, error), scr *Screen) ([]*Result, error) {
	if scr == nil || scr.Cut <= 0 {
		return SweepWith(cfg, rates, run)
	}
	deferred := make([]bool, len(rates))
	for i, r := range rates {
		deferred[i] = r > scr.Cut
	}
	wave := runtime.GOMAXPROCS(0)
	if wave < 1 {
		wave = 1
	}

	var st ScreenStats
	st.Considered = len(rates)
	lastHi := 0 // upper bound (exclusive) of the last wave entered
	defer func() {
		// Screened = deferred rates inside the waves the sweep entered
		// (those a plain SweepWith would have launched) minus the ones
		// refinement simulated anyway. Rates beyond lastHi are not counted:
		// neither variant would have touched them.
		for i := 0; i < lastHi; i++ {
			if deferred[i] {
				st.Screened++
			}
		}
		st.Screened -= st.Refined
		if scr.Stats != nil {
			scr.Stats.add(st)
		}
	}()

	var out []*Result
	for lo := 0; lo < len(rates); lo += wave {
		hi := min(lo+wave, len(rates))
		lastHi = hi
		results := make([]*Result, hi-lo)
		launched := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if !deferred[i] {
				launched = append(launched, i)
			}
		}
		waveErr := par.Parallel(len(launched), 0, func(k int) error {
			i := launched[k]
			c := cfg
			c.Rate = rates[i]
			res, err := run(c)
			results[i-lo] = res
			return err
		})
		st.Simulated += len(launched)
		// Walk the wave in rate order, exactly like SweepWith: append up to
		// the first failed or unstable point. A deferred rate reached here
		// means every lower rate was stable — the serial loop would have
		// simulated it, so refine it on demand.
		for i := lo; i < hi; i++ {
			res := results[i-lo]
			if res == nil && deferred[i] {
				c := cfg
				c.Rate = rates[i]
				r, err := run(c)
				st.Simulated++
				st.Refined++
				if err != nil {
					return out, err
				}
				res = r
			}
			if res == nil {
				// A launched run in this wave failed; like SweepWith, report
				// the prefix before it.
				return out, waveErr
			}
			out = append(out, res)
			if !res.Stable {
				return out, nil
			}
		}
		if waveErr != nil {
			return out, waveErr
		}
	}
	return out, nil
}

// SaturationScreenedWith is SaturationWith with an analytic prediction of
// the saturation point: the bisection bracket is narrowed to a band around
// predicted before probing, skipping the far-below-saturation probes a
// full-width bisection spends most of its runs on. Both band edges are
// verified by simulation; an edge that contradicts the prediction falls
// back to the corresponding side of the caller's original bracket, so a
// mispredicted band costs extra probes, never a wrong answer beyond the
// bisection's own resolution. The probes themselves are never reported to
// callers, which is why skipping them — unlike sweep points — is sound at
// any band width. A non-positive predicted value degrades to SaturationWith.
func SaturationScreenedWith(cfg Config, lo, hi, latencyCap, predicted float64, run func(Config) (*Result, error)) (float64, error) {
	// The band half-width (±15%) trades the two edge-verification probes
	// against the bisection probes they replace; the edge verification
	// below makes the exact width a performance knob only.
	aLo := max(lo, 0.85*predicted)
	aHi := min(hi, 1.15*predicted)
	if predicted <= 0 || aLo >= aHi {
		return SaturationWith(cfg, lo, hi, latencyCap, run)
	}
	stableAt, err := stableProbe(cfg, latencyCap, run)
	if err != nil {
		return 0, err
	}
	okLo, err := stableAt(aLo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		// Saturation lies below the band: resume on the caller's lower side.
		return bisectSaturation(stableAt, lo, aLo)
	}
	okHi, err := stableAt(aHi)
	if err != nil {
		return 0, err
	}
	if okHi {
		// Saturation lies above the band: resume on the caller's upper side.
		return bisectSaturation(stableAt, aHi, hi)
	}
	return bisectSaturation(stableAt, aLo, aHi)
}
