package openloop

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

// fakeRunner records every simulated rate and fakes instability at or
// above the given threshold.
type fakeRunner struct {
	mu       sync.Mutex
	rates    []float64
	unstable float64
	failAt   float64 // rate that returns an error (0 = never)
	err      error
}

func (f *fakeRunner) run(c Config) (*Result, error) {
	f.mu.Lock()
	f.rates = append(f.rates, c.Rate)
	f.mu.Unlock()
	if f.failAt > 0 && c.Rate == f.failAt {
		return nil, f.err
	}
	return &Result{Rate: c.Rate, Stable: c.Rate < f.unstable, AvgLatency: 10 + 100*c.Rate}, nil
}

func (f *fakeRunner) simulated() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]float64(nil), f.rates...)
	sort.Float64s(out)
	return out
}

// sameResults compares two sweeps point by point (the screening contract:
// bit-identical output).
func sameResults(t *testing.T, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("screened sweep returned %d results, unscreened %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Rate != want[i].Rate || got[i].Stable != want[i].Stable ||
			got[i].AvgLatency != want[i].AvgLatency {
			t.Errorf("point %d differs: screened %+v, unscreened %+v", i, *got[i], *want[i])
		}
	}
}

func TestScreenedSweepMatchesUnscreened(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	plain := &fakeRunner{unstable: 0.25}
	want, err := SweepWith(Config{}, rates, plain.run)
	if err != nil {
		t.Fatal(err)
	}

	screened := &fakeRunner{unstable: 0.25}
	st := &ScreenStats{}
	got, err := SweepScreenedWith(Config{}, rates, screened.run, &Screen{Cut: 0.25, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)

	// The first unstable rate (0.3) is above the cut, so it must have been
	// refined — simulated on demand to preserve the serial contract.
	if st.Refined < 1 {
		t.Errorf("refined = %d, want >= 1 (first unstable rate is above the cut)", st.Refined)
	}
	// Deep-saturation rates past the first unstable point must never be
	// simulated, whatever the wave width.
	for _, r := range screened.simulated() {
		if r > 0.3 {
			t.Errorf("screened sweep simulated deep-saturation rate %v", r)
		}
	}
	if st.Considered != len(rates) {
		t.Errorf("considered = %d, want %d", st.Considered, len(rates))
	}
	if st.Simulated != len(screened.simulated()) {
		t.Errorf("stats report %d simulations, runner saw %d", st.Simulated, len(screened.simulated()))
	}
}

func TestScreenedSweepRefinesMispredictedCut(t *testing.T) {
	// A cut far below the true saturation point defers rates the sweep
	// genuinely needs; every one of them must be refined and the output
	// must still match the unscreened sweep exactly.
	rates := []float64{0.1, 0.2, 0.3, 0.4}
	plain := &fakeRunner{unstable: 0.35}
	want, err := SweepWith(Config{}, rates, plain.run)
	if err != nil {
		t.Fatal(err)
	}

	screened := &fakeRunner{unstable: 0.35}
	st := &ScreenStats{}
	got, err := SweepScreenedWith(Config{}, rates, screened.run, &Screen{Cut: 0.05, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
	if st.Refined != len(want) {
		t.Errorf("refined = %d, want %d (every reported rate was deferred)", st.Refined, len(want))
	}
	if st.Screened < 0 {
		t.Errorf("screened count went negative: %d", st.Screened)
	}
}

func TestScreenedSweepAllStable(t *testing.T) {
	// No instability anywhere: every rate is reported, so deferred rates
	// are all refined and nothing may be skipped.
	rates := []float64{0.1, 0.2, 0.3, 0.4}
	screened := &fakeRunner{unstable: 1}
	st := &ScreenStats{}
	got, err := SweepScreenedWith(Config{}, rates, screened.run, &Screen{Cut: 0.25, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rates) {
		t.Fatalf("got %d results, want %d", len(got), len(rates))
	}
	if st.Screened != 0 {
		t.Errorf("screened = %d, want 0 (every rate was reported)", st.Screened)
	}
	if st.Simulated != len(rates) {
		t.Errorf("simulated = %d, want %d", st.Simulated, len(rates))
	}
}

func TestScreenedSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	// Error on a launched (below-cut) rate: the prefix before it is
	// reported, like SweepWith.
	f := &fakeRunner{unstable: 1, failAt: 0.2, err: boom}
	out, err := SweepScreenedWith(Config{}, []float64{0.1, 0.2, 0.3}, f.run, &Screen{Cut: 0.9})
	if !errors.Is(err, boom) {
		t.Errorf("launched-rate error not propagated: %v", err)
	}
	if len(out) != 1 {
		t.Errorf("got %d results before the failed rate, want 1", len(out))
	}

	// Error on a refined (deferred) rate propagates the same way.
	f = &fakeRunner{unstable: 1, failAt: 0.3, err: boom}
	out, err = SweepScreenedWith(Config{}, []float64{0.1, 0.2, 0.3}, f.run, &Screen{Cut: 0.25})
	if !errors.Is(err, boom) {
		t.Errorf("refined-rate error not propagated: %v", err)
	}
	if len(out) != 2 {
		t.Errorf("got %d results before the failed refinement, want 2", len(out))
	}
}

func TestScreenedSweepNilScreenDegrades(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3}
	a := &fakeRunner{unstable: 0.25}
	want, _ := SweepWith(Config{}, rates, a.run)
	b := &fakeRunner{unstable: 0.25}
	got, err := SweepScreenedWith(Config{}, rates, b.run, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

func TestScreenedSweepBitIdenticalRealSim(t *testing.T) {
	// End-to-end soundness on the real simulator: a screened sweep over a
	// bracket spanning saturation returns results bit-identical to the
	// unscreened sweep, with the deep-saturation tail skipped.
	cfg := Config{Net: meshConfig(1, 16), Seed: 11, Warmup: 500, Measure: 1000, DrainLimit: 8000}
	rates := []float64{0.1, 0.2, 0.7, 0.8, 0.9}
	want, err := SweepWith(cfg, rates, Run)
	if err != nil {
		t.Fatal(err)
	}
	st := &ScreenStats{}
	got, err := SweepScreenedWith(cfg, rates, Run, &Screen{Cut: 0.45, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("screened sweep returned %d results, unscreened %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AvgLatency != want[i].AvgLatency ||
			got[i].MeasuredPackets != want[i].MeasuredPackets ||
			got[i].Stable != want[i].Stable ||
			got[i].Accepted != want[i].Accepted {
			t.Errorf("point %d (rate %.2f) differs: screened (%.6f, %d) vs unscreened (%.6f, %d)",
				i, rates[i], got[i].AvgLatency, got[i].MeasuredPackets, want[i].AvgLatency, want[i].MeasuredPackets)
		}
	}
	// The sweep stops at the first unstable rate (0.7, the first above the
	// mesh's ~0.4 saturation), so 0.8 and 0.9 must have been screened out.
	if want[len(want)-1].Stable {
		t.Fatal("expected the sweep to end on an unstable point")
	}
	if st.Screened < 1 {
		t.Errorf("screened = %d, want >= 1 (deep-saturation rates avoided)", st.Screened)
	}
}

// stepRunner drives the saturation bisection with a synthetic stability
// threshold: stable strictly below sat. The zero-load probe (rate 0.005)
// reports latency 10, giving a 3x cap of 30 that the probe latencies stay
// below so stability alone decides the bisection.
type stepRunner struct {
	sat   float64
	calls int
}

func (s *stepRunner) run(c Config) (*Result, error) {
	s.calls++
	return &Result{Rate: c.Rate, Stable: c.Rate < s.sat, AvgLatency: 10}, nil
}

func TestSaturationWithAllStable(t *testing.T) {
	r := &stepRunner{sat: 2}
	got, err := SaturationWith(Config{}, 0.1, 0.6, 3, r.run)
	if err != nil {
		t.Fatal(err)
	}
	// Every probe is stable: the bisection converges onto the upper edge.
	if got < 0.59 || got > 0.6 {
		t.Errorf("all-stable bisection = %v, want ~hi (0.6)", got)
	}
}

func TestSaturationWithAllUnstable(t *testing.T) {
	r := &stepRunner{sat: 0.01}
	got, err := SaturationWith(Config{}, 0.1, 0.6, 3, r.run)
	if err != nil {
		t.Fatal(err)
	}
	// No probe is stable: lo is never advanced.
	if got != 0.1 {
		t.Errorf("all-unstable bisection = %v, want lo (0.1)", got)
	}
}

func TestSaturationWithSingleRate(t *testing.T) {
	r := &stepRunner{sat: 2}
	got, err := SaturationWith(Config{}, 0.3, 0.3, 3, r.run)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.3 {
		t.Errorf("degenerate bracket = %v, want 0.3", got)
	}
	// Only the zero-load probe ran; the empty bracket needs no bisection.
	if r.calls != 1 {
		t.Errorf("degenerate bracket made %d runs, want 1 (zero-load only)", r.calls)
	}
}

func TestSaturationWithConverges(t *testing.T) {
	r := &stepRunner{sat: 0.37}
	got, err := SaturationWith(Config{}, 0.05, 0.7, 3, r.run)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.37-0.01 || got >= 0.37 {
		t.Errorf("bisection = %v, want just below 0.37", got)
	}
}

func TestSaturationScreenedFindsSameAnswer(t *testing.T) {
	r := &stepRunner{sat: 0.37}
	plainGot, err := SaturationWith(Config{}, 0.05, 0.7, 3, r.run)
	if err != nil {
		t.Fatal(err)
	}
	plainCalls := r.calls

	for _, tc := range []struct {
		name      string
		predicted float64
	}{
		{"accurate", 0.38},
		{"far-high", 0.65},
		{"far-low", 0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &stepRunner{sat: 0.37}
			got, err := SaturationScreenedWith(Config{}, 0.05, 0.7, 3, tc.predicted, s.run)
			if err != nil {
				t.Fatal(err)
			}
			// Both searches must land within the bisection's own resolution
			// of the true threshold; a mispredicted band may cost probes but
			// never the answer.
			if diff := got - plainGot; diff < -0.02 || diff > 0.02 {
				t.Errorf("screened (predicted %v) = %v, unscreened = %v", tc.predicted, got, plainGot)
			}
			if tc.name == "accurate" && s.calls >= plainCalls {
				t.Errorf("accurate prediction made %d probes, unscreened %d — screening saved nothing", s.calls, plainCalls)
			}
		})
	}
}

func TestSaturationScreenedDegrades(t *testing.T) {
	a := &stepRunner{sat: 0.37}
	want, err := SaturationWith(Config{}, 0.05, 0.7, 3, a.run)
	if err != nil {
		t.Fatal(err)
	}
	b := &stepRunner{sat: 0.37}
	got, err := SaturationScreenedWith(Config{}, 0.05, 0.7, 3, 0, b.run)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || b.calls != a.calls {
		t.Errorf("predicted=0 did not degrade to SaturationWith: got %v (%d calls), want %v (%d calls)",
			got, b.calls, want, a.calls)
	}
}
