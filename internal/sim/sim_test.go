package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	err := quick.Check(func(n int) bool {
		n = n%1000 + 1
		if n < 1 {
			n = -n + 1
		}
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(7)
	const n, iters = 10, 100000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / iters
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %.3f, want ~0.1", i, frac)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / 100000; mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdgesAndRate(t *testing.T) {
	r := NewRNG(2)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / 100000; f < 0.28 || f > 0.32 {
		t.Errorf("Bernoulli(0.3) rate = %.3f", f)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(3)
	const p = 0.25
	sum := 0.0
	for i := 0; i < 100000; i++ {
		g := r.Geometric(p)
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += float64(g)
	}
	if mean := sum / 100000; math.Abs(mean-1/p) > 0.15 {
		t.Errorf("Geometric(%.2f) mean = %.3f, want %.1f", p, mean, 1/p)
	}
	if r.Geometric(1) != 1 {
		t.Error("Geometric(1) != 1")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		sum += r.Exp(20)
	}
	if mean := sum / 100000; math.Abs(mean-20) > 0.5 {
		t.Errorf("Exp(20) mean = %.2f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(4)
	err := quick.Check(func(seed uint64) bool {
		p := NewRNG(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	_ = r
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(9)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collided %d/1000 times", same)
	}
}

func TestFIFOOrdering(t *testing.T) {
	q := NewFIFO[int](2)
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestFIFOInterleavedPushPop(t *testing.T) {
	q := NewFIFO[int](4)
	next, expect := 0, 0
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if r.Bernoulli(0.6) {
			q.Push(next)
			next++
		} else if v, ok := q.Pop(); ok {
			if v != expect {
				t.Fatalf("expected %d got %d", expect, v)
			}
			expect++
		}
	}
}

func TestBoundedFIFO(t *testing.T) {
	q := NewBoundedFIFO[int](3)
	for i := 0; i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(99) {
		t.Error("push beyond capacity accepted")
	}
	if !q.Full() {
		t.Error("Full() false at capacity")
	}
	v, _ := q.Pop()
	if v != 0 {
		t.Errorf("pop = %d, want 0", v)
	}
	if !q.Push(3) {
		t.Error("push after pop rejected")
	}
}

func TestFIFOPeekAtClear(t *testing.T) {
	q := NewFIFO[string](4)
	q.Push("a")
	q.Push("b")
	if v, _ := q.Peek(); v != "a" {
		t.Errorf("peek = %q", v)
	}
	if q.At(1) != "b" {
		t.Errorf("At(1) = %q", q.At(1))
	}
	q.Clear()
	if q.Len() != 0 {
		t.Error("clear did not empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	q.At(0)
}

func TestDelayLineTiming(t *testing.T) {
	d := NewDelayLine[int](3)
	d.Push(10, 1)
	for now := int64(10); now < 13; now++ {
		if _, ok := d.PopReady(now); ok {
			t.Fatalf("item ready early at %d", now)
		}
	}
	v, ok := d.PopReady(13)
	if !ok || v != 1 {
		t.Fatalf("item not ready at 13: %v %v", v, ok)
	}
}

func TestDelayLineFIFOOrder(t *testing.T) {
	d := NewDelayLine[int](2)
	d.Push(0, 1)
	d.Push(1, 2)
	if v, ok := d.PopReady(5); !ok || v != 1 {
		t.Fatalf("first pop = %v ok=%v", v, ok)
	}
	if v, ok := d.PopReady(5); !ok || v != 2 {
		t.Fatalf("second pop = %v ok=%v", v, ok)
	}
}

func TestTicker(t *testing.T) {
	tk := NewTicker(10, 10)
	fires := 0
	for now := int64(0); now <= 100; now++ {
		if tk.Fire(now) {
			fires++
		}
	}
	if fires != 10 {
		t.Errorf("fired %d times in 100 cycles at period 10, want 10", fires)
	}
	if NewTicker(0, 0).Fire(5) {
		t.Error("zero-period ticker fired")
	}
	// Missed periods coalesce into one fire and resynchronize.
	tk = NewTicker(10, 10)
	if !tk.Fire(55) {
		t.Error("missed-period fire lost")
	}
	if tk.Fire(59) {
		t.Error("fired again before next period")
	}
	if !tk.Fire(60) {
		t.Error("did not fire at resynchronized period")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("clock not zero")
	}
	if c.Tick() != 1 || c.Now() != 1 {
		t.Error("tick broken")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("reset broken")
	}
}
