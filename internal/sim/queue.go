package sim

// FIFO is a generic ring-buffer queue. It grows on demand when constructed
// unbounded, or rejects pushes past a fixed capacity when bounded. It is the
// building block for router VC buffers (bounded) and source queues
// (unbounded).
type FIFO[T any] struct {
	buf     []T
	head    int
	n       int
	bounded bool
}

// NewFIFO returns an unbounded FIFO with the given initial capacity hint.
func NewFIFO[T any](hint int) *FIFO[T] {
	if hint < 4 {
		hint = 4
	}
	return &FIFO[T]{buf: make([]T, hint)}
}

// NewBoundedFIFO returns a FIFO that holds at most cap items.
func NewBoundedFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &FIFO[T]{buf: make([]T, capacity), bounded: true}
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return q.n }

// Cap returns the capacity for a bounded FIFO, or the current backing size
// for an unbounded one.
func (q *FIFO[T]) Cap() int { return len(q.buf) }

// Full reports whether a bounded FIFO cannot accept another item.
func (q *FIFO[T]) Full() bool { return q.bounded && q.n == len(q.buf) }

// Push appends an item, reporting whether it was accepted. Unbounded FIFOs
// always accept and grow as needed.
func (q *FIFO[T]) Push(v T) bool {
	if q.n == len(q.buf) {
		if q.bounded {
			return false
		}
		q.grow()
	}
	// head < len and n <= len, so a compare-and-subtract wraps the index
	// without the integer divide a % would cost on this hot path.
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.n++
	return true
}

func (q *FIFO[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes and returns the oldest item. ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return v, true
}

// Peek returns the oldest item without removing it. ok is false when empty.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// At returns the i-th oldest item (0 = front). It panics when out of range.
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: FIFO index out of range")
	}
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// Clear empties the queue, releasing references so the GC can reclaim
// queued values.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.n = 0, 0
}

// DelayLine models a fixed-latency pipeline (a link or a router's internal
// stages): items pushed at cycle c become visible exactly c+delay cycles
// later. A zero delay makes items visible the same cycle they are pushed.
type DelayLine[T any] struct {
	delay int64
	q     *FIFO[delayed[T]]
	// headAt caches the delivery time of the head item (meaningless while
	// empty), so polling a not-yet-ready line is a comparison rather than
	// a queue peek. PopReady runs once per port per cycle on the
	// simulator's hottest loop.
	headAt int64
}

type delayed[T any] struct {
	at int64
	v  T
}

// NewDelayLine returns a delay line with the given latency in cycles.
// Negative delays are treated as zero.
func NewDelayLine[T any](delay int64) *DelayLine[T] {
	if delay < 0 {
		delay = 0
	}
	return &DelayLine[T]{delay: delay, q: NewFIFO[delayed[T]](8)}
}

// Delay returns the line's latency in cycles.
func (d *DelayLine[T]) Delay() int64 { return d.delay }

// Len returns the number of items in flight.
func (d *DelayLine[T]) Len() int { return d.q.Len() }

// Push inserts an item at cycle now; it becomes ready at now+delay.
func (d *DelayLine[T]) Push(now int64, v T) {
	if d.q.Len() == 0 {
		d.headAt = now + d.delay
	}
	d.q.Push(delayed[T]{at: now + d.delay, v: v})
}

// PopReady removes and returns the next item whose delivery time has been
// reached at cycle now. ok is false when nothing is ready.
func (d *DelayLine[T]) PopReady(now int64) (v T, ok bool) {
	if d.q.Len() == 0 || d.headAt > now {
		var zero T
		return zero, false
	}
	head, _ := d.q.Pop()
	if next, ok := d.q.Peek(); ok {
		d.headAt = next.at
	}
	return head.v, true
}

// NextReadyAt returns the cycle at which the head item becomes deliverable,
// or -1 when the line is empty.
func (d *DelayLine[T]) NextReadyAt() int64 {
	if d.q.Len() == 0 {
		return -1
	}
	return d.headAt
}

// ForEach visits every in-flight item oldest-first without removing any.
// It is meant for inspection (invariant checking, stuck-state dumps), not
// the per-cycle path.
func (d *DelayLine[T]) ForEach(fn func(v T)) {
	for i := 0; i < d.q.Len(); i++ {
		fn(d.q.At(i).v)
	}
}

// Drain removes every in-flight item, ready or not, invoking fn on each in
// delivery order. Fault injection uses it to purge the pipelines of a
// killed router.
func (d *DelayLine[T]) Drain(fn func(v T)) {
	for {
		it, ok := d.q.Pop()
		if !ok {
			return
		}
		fn(it.v)
	}
}
