package sim

// Clock is the global cycle counter of a simulation. Components read it to
// timestamp flits and schedule future actions; only the top-level driver
// advances it.
type Clock struct {
	now int64
}

// Now returns the current cycle.
func (c *Clock) Now() int64 { return c.now }

// Tick advances the clock by one cycle and returns the new time.
func (c *Clock) Tick() int64 {
	c.now++
	return c.now
}

// Reset rewinds the clock to cycle zero.
func (c *Clock) Reset() { c.now = 0 }

// AdvanceTo jumps the clock forward to cycle t. It is a no-op when t is
// not in the future; callers (the engine's quiescence fast-forward) are
// responsible for only skipping cycles in which nothing can happen.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Ticker fires at a fixed period, optionally with an initial phase offset.
// It is used for periodic activity such as timer-interrupt injection in the
// kernel-traffic model.
type Ticker struct {
	period int64
	next   int64
}

// NewTicker returns a ticker that first fires at cycle offset and then every
// period cycles. A period <= 0 yields a ticker that never fires.
func NewTicker(period, offset int64) *Ticker {
	return &Ticker{period: period, next: offset}
}

// Fire reports whether the ticker fires at the given cycle, advancing its
// internal schedule when it does. Calling Fire with a cycle beyond several
// missed periods fires once and resynchronizes to the next multiple.
func (t *Ticker) Fire(now int64) bool {
	if t.period <= 0 {
		return false
	}
	if now < t.next {
		return false
	}
	for t.next <= now {
		t.next += t.period
	}
	return true
}

// Period returns the ticker period in cycles.
func (t *Ticker) Period() int64 { return t.period }

// Next returns the next cycle at which Fire will report true, or -1 for a
// ticker that never fires. It lets idle drivers schedule a wakeup at the
// next tick instead of polling Fire every cycle.
func (t *Ticker) Next() int64 {
	if t.period <= 0 {
		return -1
	}
	return t.next
}
