// Package sim provides the low-level simulation substrate shared by every
// simulator in this repository: a deterministic pseudo-random number
// generator suitable for reproducible parallel experiments, a cycle clock,
// and small scheduling helpers.
//
// All simulators here are cycle-driven rather than event-driven: network
// routers are synchronous pipelines, so advancing every component one cycle
// at a time is both simpler and faster than a global event queue.
package sim

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
//
// The zero value is NOT usable; construct with NewRNG. Each experiment
// derives its own RNG from a seed so that sweeps are reproducible and
// independent runs can execute concurrently without sharing state
// (math/rand's global source would serialize goroutines on a lock).
type RNG struct {
	s [4]uint64
}

// splitMix64 advances the given state and returns the next SplitMix64
// output. It is used only to seed xoshiro from a single word.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given value. Distinct seeds
// yield statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 of any seed provides one,
	// but guard against the astronomically unlikely all-zero case anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometrically distributed integer >= 1 with success
// probability p in (0, 1]: the number of Bernoulli(p) trials up to and
// including the first success. It panics if p <= 0.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	if p >= 1 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new RNG whose stream is independent of r's.
// It is used to hand child components their own generators.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}
