package sim

import "testing"

// TestTickerMultiPeriodSkipResync pins the documented Fire behavior for
// the multi-period-skip case: a call far beyond several missed periods
// fires exactly once and resynchronizes the schedule to the next multiple
// of the period, including when the call lands exactly on a multiple.
func TestTickerMultiPeriodSkipResync(t *testing.T) {
	tk := NewTicker(10, 10)
	// Jump over four whole periods (10, 20, 30, 40 all missed) to 47.
	if !tk.Fire(47) {
		t.Fatal("skipping several periods lost the fire")
	}
	// The skipped periods must not be replayed.
	for now := int64(48); now < 50; now++ {
		if tk.Fire(now) {
			t.Fatalf("replayed a missed period at cycle %d", now)
		}
	}
	// The schedule resynchronized to the next multiple, 50.
	if !tk.Fire(50) {
		t.Fatal("did not resynchronize to the next period multiple")
	}

	// Landing exactly on a multiple after a skip: next fire is the
	// following multiple, not the same cycle twice.
	tk = NewTicker(10, 10)
	if !tk.Fire(70) {
		t.Fatal("skip landing on a multiple lost the fire")
	}
	if tk.Fire(70) {
		t.Fatal("fired twice for the same cycle")
	}
	for now := int64(71); now < 80; now++ {
		if tk.Fire(now) {
			t.Fatalf("fired early at cycle %d", now)
		}
	}
	if !tk.Fire(80) {
		t.Fatal("did not fire at the period after an on-multiple skip")
	}

	// Repeated long skips: exactly one fire per skip, regardless of how
	// many periods each skip crosses.
	tk = NewTicker(7, 7)
	fires := 0
	for _, now := range []int64{30, 31, 100, 101, 1000} {
		if tk.Fire(now) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("repeated multi-period skips fired %d times, want 3", fires)
	}
}
