package stats

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Series is a named sequence of (X, Y) points: one curve on a paper figure.
type Series struct {
	Name   string
	Xs, Ys []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// YAt returns the Y value for the first point whose X equals x.
// ok is false when no such point exists.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	for i, xv := range s.Xs {
		if xv == x {
			return s.Ys[i], true
		}
	}
	return 0, false
}

// Figure is a collection of series plus axis labels: everything needed to
// regenerate one paper figure as text/CSV output.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Notes  []string
}

// NewFigure returns an empty figure with the given labels.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a new named series and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Note records a free-form annotation (e.g. a measured correlation
// coefficient) emitted with the figure.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// CSV renders the figure as a wide CSV table: the union of every series' X
// values in ascending order, one column per series, blanks where a series
// has no point at that X.
func (f *Figure) CSV() string {
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.Xs {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%.6g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%.6g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Text renders the figure as an aligned human-readable table followed by
// any notes.
func (f *Figure) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "#   x-axis: %s, y-axis: %s\n", f.XLabel, f.YLabel)
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.Xs {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(&b, "%14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%14.5g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, " %14.5g", y)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	return b.String()
}

// seriesGlyphs assigns one plot glyph per series, in order.
const seriesGlyphs = "*o+x#@%&=~"

// Chart renders the figure as an ASCII scatter/line chart of the given
// plot-area size (sensible minimums are enforced), with axis ranges and a
// glyph legend. Points from different series that land on the same cell
// show the later series' glyph.
func (f *Figure) Chart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	// Gather ranges.
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	if first {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = bytes.Repeat([]byte{' '}, width)
	}
	for si, s := range f.Series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.Xs {
			cx := int((s.Xs[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Ys[i] - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-cy][cx] = g
		}
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", ymax, strings.Repeat("-", width))
	for r, row := range grid {
		label := strings.Repeat(" ", 10)
		if r == height-1 {
			label = fmt.Sprintf("%10.4g", ymin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

// Table is a simple string grid with a header row, used for the paper's
// parameter and characteristics tables (Tables I-IV).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values including the header.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
