package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.Median, 3) {
		t.Errorf("bad summary: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Errorf("std = %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Error("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 {
		t.Errorf("single-sample summary: %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	for _, tc := range []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	} {
		if got := Quantile(xs, tc.q); !almost(got, tc.want) {
			t.Errorf("Quantile(%.3f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("empty quantile did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Errorf("perfect correlation = %v, err %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |r| <= 1 for any sample with variance.
	err := quick.Check(func(seed int64) bool {
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 100
		}
		for i := range xs {
			xs[i], ys[i] = next(), next()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // zero-variance draw
		}
		return r >= -1.0000001 && r <= 1.0000001
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil || !almost(slope, 2) || !almost(intercept, 1) {
		t.Errorf("fit = %v, %v, err %v", slope, intercept, err)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 0)
	if err != nil || !almost(out[0], 1) || !almost(out[1], 2) || !almost(out[2], 3) {
		t.Errorf("normalize = %v, err %v", out, err)
	}
	if _, err := Normalize([]float64{0, 1}, 0); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Error("mean/min/max broken")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-sample helpers not zero")
	}
}

func TestHistogramConservation(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	// Out-of-range samples clamp but are still counted.
	h.AddAll([]float64{-5, 0, 2.5, 5, 9.99, 10, 100})
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 7 {
		t.Errorf("bin sum = %d", sum)
	}
	fr := h.Fractions()
	var fsum float64
	for _, f := range fr {
		fsum += f
	}
	if !almost(fsum, 1) {
		t.Errorf("fractions sum to %v", fsum)
	}
	if h.BinWidth() != 2 {
		t.Errorf("bin width = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("bin center = %v", h.BinCenter(0))
	}
	if !strings.Contains(h.String(), "%") {
		t.Error("histogram rendering empty")
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram accepted")
				}
			}()
			fn()
		}()
	}
}

func TestHeatmap(t *testing.T) {
	m := NewHeatmap(2, 3)
	m.Set(0, 0, 4)
	m.Addf(1, 2, 2)
	m.Addf(1, 2, 2)
	if m.At(1, 2) != 4 || m.MaxValue() != 4 {
		t.Error("heatmap accessors broken")
	}
	n := m.Normalized()
	if n.At(0, 0) != 1 || n.At(1, 2) != 1 || n.At(0, 1) != 0 {
		t.Error("normalization broken")
	}
	if !strings.Contains(m.CSV(), "4") {
		t.Error("CSV missing data")
	}
	if len(strings.Split(strings.TrimSpace(m.String()), "\n")) != 2 {
		t.Error("ASCII render has wrong row count")
	}
	zero := NewHeatmap(2, 2).Normalized()
	if zero.MaxValue() != 0 {
		t.Error("all-zero normalization changed values")
	}
}

func TestSeriesAndFigure(t *testing.T) {
	f := NewFigure("test", "x", "y")
	a := f.AddSeries("a")
	a.Add(1, 10)
	a.Add(2, 20)
	b := f.AddSeries("b")
	b.Add(2, 200)
	f.Note("coefficient = %.2f", 0.5)

	if v, ok := a.YAt(2); !ok || v != 20 {
		t.Error("YAt broken")
	}
	if _, ok := a.YAt(99); ok {
		t.Error("YAt found missing point")
	}

	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1,10,\n") {
		t.Errorf("csv missing blank for absent point:\n%s", csv)
	}
	text := f.Text()
	if !strings.Contains(text, "coefficient = 0.50") {
		t.Error("note missing from text")
	}
	if !strings.Contains(text, "-") {
		t.Error("missing-point marker absent")
	}
}

func TestCSVEscape(t *testing.T) {
	f := NewFigure("t", "x", "y")
	s := f.AddSeries(`weird,"name"`)
	s.Add(1, 1)
	csv := f.CSV()
	if !strings.Contains(csv, `"weird,""name"""`) {
		t.Errorf("escaping broken: %q", csv)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("params", "name", "value")
	tb.AddRow("only-one-cell")
	tb.AddRow("a", "b")
	text := tb.Text()
	if !strings.Contains(text, "params") || !strings.Contains(text, "only-one-cell") {
		t.Errorf("table text: %q", text)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("table csv: %q", csv)
	}
	if !strings.Contains(csv, "only-one-cell,\n") {
		t.Error("short row not padded")
	}
}
