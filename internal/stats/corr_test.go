package stats

import (
	"math"
	"testing"
)

func TestSpearmanMonotonic(t *testing.T) {
	// Perfect monotone but nonlinear relation: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rs, err := Spearman(xs, ys)
	if err != nil || math.Abs(rs-1) > 1e-12 {
		t.Errorf("spearman = %v, err %v", rs, err)
	}
	rp, _ := Pearson(xs, ys)
	if rp >= 1 {
		t.Errorf("pearson = %v, expected < 1 for cubic", rp)
	}
	// Reversed order: -1.
	rev := []float64{125, 64, 27, 8, 1}
	rs, _ = Spearman(xs, rev)
	if math.Abs(rs+1) > 1e-12 {
		t.Errorf("reversed spearman = %v", rs)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	rs, err := Spearman(xs, ys)
	if err != nil || math.Abs(rs-1) > 1e-12 {
		t.Errorf("tied spearman = %v, err %v", rs, err)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 20})
	want := []float64{4, 1, 2.5, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestJackknifeCI(t *testing.T) {
	// Near-perfect linear data: tight CI around r ~= 1.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{1.01, 2.02, 2.97, 4.05, 4.96, 6.03, 7.01, 7.9}
	r, ci, err := JackknifeCorrCI(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.999 {
		t.Errorf("r = %v", r)
	}
	if ci <= 0 || ci > 0.01 {
		t.Errorf("ci = %v, want small positive", ci)
	}
	// Noisy data: wider CI.
	noisy := []float64{2, 1, 4, 3, 6, 5, 8, 7}
	_, ciN, err := JackknifeCorrCI(xs, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if ciN <= ci {
		t.Errorf("noisy CI %v not wider than clean %v", ciN, ci)
	}
}

func TestBatchMeansCI(t *testing.T) {
	// Constant sample: zero CI.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 5
	}
	if ci := BatchMeansCI95(xs, 10); ci != 0 {
		t.Errorf("constant sample CI = %v", ci)
	}
	// Too-small sample: zero (cannot form batches).
	if ci := BatchMeansCI95([]float64{1, 2, 3}, 10); ci != 0 {
		t.Errorf("tiny sample CI = %v", ci)
	}
	// Alternating sample: small positive CI shrinking with length.
	mk := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i%7) * 3
		}
		return out
	}
	short := BatchMeansCI95(mk(200), 10)
	long := BatchMeansCI95(mk(20000), 10)
	if short <= 0 || long <= 0 {
		t.Fatalf("CIs not positive: %v %v", short, long)
	}
	if long >= short {
		t.Errorf("CI did not shrink with sample size: %v -> %v", short, long)
	}
}
