package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside
// the range are clamped into the first/last bin so that total counts are
// conserved (the paper's Fig 11 histograms count 100% of nodes).
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with the given number of bins over
// [lo, hi). It panics when bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram with bins < 1")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(bins)))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Fractions returns each bin's share of the total, or all zeros when empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// String renders the histogram as an ASCII bar chart, one bin per line,
// scaled so the fullest bin spans 40 characters.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := int64(1)
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	fr := h.Fractions()
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(40*c/maxC))
		fmt.Fprintf(&b, "%10.2f..%-10.2f %6.1f%% %s\n",
			h.Lo+float64(i)*h.BinWidth(), h.Lo+float64(i+1)*h.BinWidth(), 100*fr[i], bar)
	}
	return b.String()
}

// Heatmap is a dense 2D grid of float64 values used for per-node runtime
// maps (Fig 7) and source/destination traffic matrices (Fig 13).
type Heatmap struct {
	Rows, Cols int
	Cells      []float64
}

// NewHeatmap returns a rows x cols heatmap of zeros. It panics on
// non-positive dimensions.
func NewHeatmap(rows, cols int) *Heatmap {
	if rows < 1 || cols < 1 {
		panic("stats: NewHeatmap with non-positive dimensions")
	}
	return &Heatmap{Rows: rows, Cols: cols, Cells: make([]float64, rows*cols)}
}

// At returns the value at (r, c).
func (m *Heatmap) At(r, c int) float64 { return m.Cells[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Heatmap) Set(r, c int, v float64) { m.Cells[r*m.Cols+c] = v }

// Addf adds v to the cell at (r, c).
func (m *Heatmap) Addf(r, c int, v float64) { m.Cells[r*m.Cols+c] += v }

// MaxValue returns the largest cell value, or 0 for an all-zero map.
func (m *Heatmap) MaxValue() float64 { return Max(m.Cells) }

// Normalized returns a copy of the heatmap scaled so its maximum is 1.
// An all-zero map is returned unchanged.
func (m *Heatmap) Normalized() *Heatmap {
	out := NewHeatmap(m.Rows, m.Cols)
	mx := m.MaxValue()
	if mx == 0 {
		return out
	}
	for i, v := range m.Cells {
		out.Cells[i] = v / mx
	}
	return out
}

// shades orders glyphs from light to dark for ASCII heatmap rendering.
var shades = []byte{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// String renders the heatmap in ASCII, darker glyphs for larger values.
func (m *Heatmap) String() string {
	var b strings.Builder
	mx := m.MaxValue()
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			v := 0.0
			if mx > 0 {
				v = m.At(r, c) / mx
			}
			i := int(v * float64(len(shades)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(shades) {
				i = len(shades) - 1
			}
			b.WriteByte(shades[i])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the heatmap as comma-separated rows with 6 significant
// digits, suitable for plotting tools.
func (m *Heatmap) CSV() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
