// Package stats provides the statistical machinery of the evaluation
// framework: summary statistics, Pearson correlation (the paper's headline
// metric for comparing methodologies), histograms, per-node heatmaps, and
// small formatting helpers used by the figure harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// SummarizeClasses computes one Summary per traffic class from per-class
// sample slices (index = class number). Empty classes get zero Summaries,
// so callers can index the result without guarding against classes that
// produced no measured packets.
func SummarizeClasses(byClass [][]float64) []Summary {
	out := make([]Summary, len(byClass))
	for i, xs := range byClass {
		out[i] = Summarize(xs)
	}
	return out
}

// Quantile returns the q-quantile (q in [0,1]) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns an error when the lengths differ,
// fewer than two pairs are given, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson sample length mismatch: %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 pairs, got %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient of the paired
// samples: the Pearson correlation of their ranks. It is robust to
// monotonic nonlinearity, which makes it a useful complement to Pearson in
// methodology comparisons (two simulators can agree on rankings while
// disagreeing on magnitudes). Ties receive average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman sample length mismatch: %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) of the sample.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// JackknifeCorrCI returns the Pearson coefficient together with a jackknife
// estimate of its 95% confidence half-width: the coefficient is recomputed
// leaving out each pair in turn and the spread of the leave-one-out values
// bounds the estimate's stability. Methodology studies report correlations
// from small samples, where a point estimate alone overstates certainty.
func JackknifeCorrCI(xs, ys []float64) (r, halfWidth float64, err error) {
	r, err = Pearson(xs, ys)
	if err != nil {
		return 0, 0, err
	}
	n := len(xs)
	if n < 3 {
		return r, 0, nil
	}
	loo := make([]float64, 0, n)
	bx := make([]float64, 0, n-1)
	by := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		bx, by = bx[:0], by[:0]
		for j := 0; j < n; j++ {
			if j != i {
				bx = append(bx, xs[j])
				by = append(by, ys[j])
			}
		}
		ri, err := Pearson(bx, by)
		if err != nil {
			continue // a leave-one-out subsample lost all variance
		}
		loo = append(loo, ri)
	}
	if len(loo) < 2 {
		return r, 0, nil
	}
	m := Mean(loo)
	variance := 0.0
	for _, v := range loo {
		variance += (v - m) * (v - m)
	}
	k := float64(len(loo))
	variance *= (k - 1) / k // jackknife variance scaling
	return r, 1.96 * math.Sqrt(variance), nil
}

// LinearFit returns slope and intercept of the least-squares line y = a*x+b.
// It returns an error under the same conditions as Pearson.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: LinearFit sample length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs at least 2 pairs, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit undefined for zero-variance x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept, nil
}

// tQuantile975 holds two-sided 95% Student-t critical values for small
// degrees of freedom; beyond the table the normal value 1.96 applies.
var tQuantile975 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// BatchMeansCI95 estimates the 95% confidence half-width of the mean of a
// correlated sample (e.g. steady-state packet latencies) using the method
// of batch means: the sequence is split into `batches` contiguous batches
// whose means are treated as independent observations. It returns 0 when
// the sample is too small to form at least two batches of two.
func BatchMeansCI95(xs []float64, batches int) float64 {
	if batches < 2 {
		batches = 10
	}
	per := len(xs) / batches
	if per < 2 {
		return 0
	}
	means := make([]float64, batches)
	for i := 0; i < batches; i++ {
		means[i] = Mean(xs[i*per : (i+1)*per])
	}
	s := Summarize(means)
	df := batches - 1
	t := 1.96
	if df < len(tQuantile975) {
		t = tQuantile975[df]
	}
	return t * s.Std / math.Sqrt(float64(batches))
}

// Normalize returns xs scaled so the element at baseline index is 1.0.
// It panics when the index is out of range and returns an error when the
// baseline element is zero.
func Normalize(xs []float64, baseline int) ([]float64, error) {
	base := xs[baseline]
	if base == 0 {
		return nil, fmt.Errorf("stats: Normalize baseline element is zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}
