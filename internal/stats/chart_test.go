package stats

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	f := NewFigure("test chart", "load", "latency")
	a := f.AddSeries("alpha")
	for i := 0; i < 10; i++ {
		a.Add(float64(i), float64(i*i))
	}
	b := f.AddSeries("beta")
	b.Add(0, 81)
	b.Add(9, 0)
	out := f.Chart(40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing series glyphs:\n%s", out)
	}
	if !strings.Contains(out, "* = alpha") || !strings.Contains(out, "o = beta") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: load, y: latency") {
		t.Errorf("chart missing axis labels:\n%s", out)
	}
	// Axis extremes present.
	if !strings.Contains(out, "81") || !strings.Contains(out, "9") {
		t.Errorf("chart missing ranges:\n%s", out)
	}
}

func TestChartEdgeCases(t *testing.T) {
	empty := NewFigure("empty", "x", "y")
	if out := empty.Chart(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
	single := NewFigure("single", "x", "y")
	single.AddSeries("s").Add(5, 5)
	out := single.Chart(1, 1) // minimums enforced
	if !strings.Contains(out, "*") {
		t.Errorf("single-point chart missing glyph:\n%s", out)
	}
	flat := NewFigure("flat", "x", "y")
	s := flat.AddSeries("s")
	s.Add(1, 3)
	s.Add(2, 3) // zero y-range
	if out := flat.Chart(30, 8); !strings.Contains(out, "*") {
		t.Errorf("flat chart missing glyphs:\n%s", out)
	}
}
