// Package closedloop implements the paper's closed-loop synthetic workload
// models: the batch model with intra-node dependency (§II-B1) — every node
// completes a batch of b request/reply transactions with at most m
// outstanding (the MSHR model) — and the barrier model with inter-node
// dependency (§II-B2).
//
// It also implements the paper's extensions (§IV-C, §V): the network access
// rate (NAR) injection model, the fixed and probabilistic reply-latency
// models for the memory hierarchy, and the kernel-traffic model that adds
// runtime-independent syscall traffic statically and runtime-proportional
// timer-interrupt traffic dynamically.
package closedloop

import (
	"fmt"

	"noceval/internal/sim"
)

// ReplyModel decides how long a destination waits before injecting the
// reply to a request, modelling L2/memory access latency (§IV-C2).
type ReplyModel interface {
	// Name returns a short identifier for reports.
	Name() string
	// Delay returns the cycles between request arrival and reply injection.
	Delay(rng *sim.RNG) int64
}

// ImmediateReply is the baseline batch model: replies are injected the
// cycle the request arrives.
type ImmediateReply struct{}

// Name implements ReplyModel.
func (ImmediateReply) Name() string { return "immediate" }

// Delay implements ReplyModel.
func (ImmediateReply) Delay(*sim.RNG) int64 { return 0 }

// FixedReply adds a constant latency to every reply, modelling a uniform
// remote L2 access (the paper's "fixed latency model", Fig 17a/b).
type FixedReply struct {
	Latency int64
}

// Name implements ReplyModel.
func (f FixedReply) Name() string { return fmt.Sprintf("fixed%d", f.Latency) }

// Delay implements ReplyModel.
func (f FixedReply) Delay(*sim.RNG) int64 { return f.Latency }

// ProbabilisticReply models a cache hierarchy: every access pays the L2
// latency, and with probability MissRate it additionally pays the memory
// latency (the paper's Fig 17c uses 20 + 0.1*300).
type ProbabilisticReply struct {
	L2Latency     int64
	MemoryLatency int64
	MissRate      float64
}

// Name implements ReplyModel.
func (p ProbabilisticReply) Name() string {
	return fmt.Sprintf("prob%d+%.2f*%d", p.L2Latency, p.MissRate, p.MemoryLatency)
}

// Delay implements ReplyModel.
func (p ProbabilisticReply) Delay(rng *sim.RNG) int64 {
	d := p.L2Latency
	if rng.Bernoulli(p.MissRate) {
		d += p.MemoryLatency
	}
	return d
}

// Mean returns the expected reply latency of the model.
func (p ProbabilisticReply) Mean() float64 {
	return float64(p.L2Latency) + p.MissRate*float64(p.MemoryLatency)
}
