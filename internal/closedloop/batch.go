package closedloop

import (
	"container/heap"
	"context"
	"fmt"
	"strings"

	"noceval/internal/engine"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/stats"
	"noceval/internal/traffic"
)

// KernelConfig models operating-system traffic (§V). Syscall/trap traffic is
// independent of runtime and is added to every node's batch statically;
// timer-interrupt traffic is proportional to runtime and is added while a
// node is still working, once per timer period.
type KernelConfig struct {
	// StaticFraction adds ceil(StaticFraction*B) kernel transactions to
	// each node's batch before the run starts (thread creation, syscalls).
	StaticFraction float64
	// TimerPeriod is the cycle interval between timer interrupts
	// (1/Rtimer); zero or negative disables the timer.
	TimerPeriod int64
	// TimerBatch is the number of kernel transactions each interrupt adds
	// to every still-running node.
	TimerBatch int
	// KernelNAR throttles kernel request injection; zero means "use the
	// same NAR as user traffic".
	KernelNAR float64
}

// BatchConfig describes one batch-model run.
type BatchConfig struct {
	Net     network.Config
	Pattern traffic.Pattern
	// Ctx, when non-nil, makes the run cancellable (see openloop.Config.Ctx):
	// a cancelled run returns a nil result with an error wrapping the
	// context's cause.
	Ctx context.Context

	// B is the batch size b: remote operations each node must complete.
	B int
	// M is the maximum outstanding requests per node (the MSHR limit m).
	M int

	// ReqSize and ReplySize are packet lengths in flits (default 1 and 1,
	// matching the paper's throughput definition θ = b*2/T).
	ReqSize, ReplySize int

	// NAR is the network access rate of the enhanced injection model
	// (§IV-C1): the probability per cycle that a node with pf < m actually
	// injects. Values <= 0 or >= 1 reproduce the baseline model.
	NAR float64

	// Reply models the latency before a reply is injected (§IV-C2).
	// Nil means ImmediateReply.
	Reply ReplyModel

	// Kernel, when non-nil, enables the OS-traffic model (§V).
	Kernel *KernelConfig

	// ReqClass and ReplyClass stamp the QoS traffic class on request and
	// reply packets (see router.Config.Classes) — e.g. prioritized replies
	// on a class-partitioned network. Zeros keep the classic single-class
	// behavior.
	ReqClass, ReplyClass int

	// MaxCycles aborts a run that fails to complete (default 50M).
	MaxCycles int64
	Seed      uint64

	// SampleInterval, when positive, records the injection-rate timeline
	// in buckets of this many cycles (Fig 21).
	SampleInterval int64
	// CollectMatrix, when true, accumulates the source/destination flit
	// matrix (Fig 13).
	CollectMatrix bool

	// Obs, when non-nil, attaches the observability layer: network metrics
	// and telemetry, plus a per-node outstanding-request (MSHR depth, the
	// paper's pf) time series on the observer's sampling schedule.
	Obs *obs.Observer
	// Progress, when non-nil, prints run heartbeats.
	Progress *obs.Progress

	// FullScan runs the legacy per-cycle full scans and disables the
	// engine's quiescence fast-forward. Bit-identical to the default
	// activity-tracked path (the determinism regression test proves it);
	// kept for one release as that test's reference side.
	FullScan bool

	// Inspect, when non-nil, receives the run's network after the engine
	// finishes and before RunBatch returns — the invariant harness hooks
	// here to check conservation on the final state.
	Inspect func(*network.Network)

	// OnEngine, when non-nil, receives the engine outcome (stepped vs
	// fast-forwarded cycle split) after the run finishes. The run ledger
	// hooks here; the outcome never feeds back into results.
	OnEngine func(engine.Outcome)
}

func (c *BatchConfig) fillDefaults() {
	if c.ReqSize == 0 {
		c.ReqSize = 1
	}
	if c.ReplySize == 0 {
		c.ReplySize = 1
	}
	if c.Reply == nil {
		c.Reply = ImmediateReply{}
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
}

// TimelineSample is one bucket of the injection-rate timeline.
type TimelineSample struct {
	Cycle      int64   // bucket start
	UserRate   float64 // user flits/cycle summed over all nodes
	KernelRate float64 // kernel flits/cycle summed over all nodes
}

// BatchResult summarizes one batch-model run.
type BatchResult struct {
	// Runtime is T: the cycle at which the last node finished its batch.
	Runtime int64
	// Completed is false when MaxCycles elapsed first or the run stalled.
	Completed bool
	// Stalled is true when the deadlock watchdog proved the run could never
	// finish: unfinished nodes, an empty network, and nothing scheduled —
	// transactions were silently lost (fault injection without a recovery
	// NIC) or wedged on a dead resource. StallDump carries the diagnostic.
	Stalled   bool   `json:",omitempty"`
	StallDump string `json:",omitempty"`
	// FailedTransactions counts transactions closed by NIC abandonment
	// rather than a reply (always 0 without fault injection).
	FailedTransactions int64 `json:",omitempty"`
	// Faults carries the fault/recovery counters of a faulted run, nil
	// otherwise.
	Faults *fault.Stats `json:",omitempty"`

	// NodeFinish is the per-node completion time (Fig 7).
	NodeFinish []int64

	// Throughput is the achieved throughput θ in flits/cycle/node computed
	// from the runtime over all injected flits.
	Throughput float64
	// ReqThroughput is the paper's θ = (b*2)/T definition (transactions,
	// counting request+reply, per cycle per node).
	ReqThroughput float64

	TotalPackets  int64
	KernelPackets int64
	TotalFlits    int64
	KernelFlits   int64

	AvgPacketLatency float64

	Timeline []TimelineSample
	Matrix   *stats.Heatmap
}

// replyEvent is a scheduled reply injection.
type replyEvent struct {
	ready  int64
	from   int // responder (request destination)
	to     int // requester
	size   int
	kernel bool
}

// replyHeap is a min-heap of replyEvents ordered by ready time.
type replyHeap []replyEvent

func (h replyHeap) Len() int           { return len(h) }
func (h replyHeap) Less(i, j int) bool { return h[i].ready < h[j].ready }
func (h replyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *replyHeap) Push(x any)        { *h = append(*h, x.(replyEvent)) }
func (h *replyHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// nodeState tracks one terminal's progress through its batch.
type nodeState struct {
	target       int // transactions to complete (grows with timer traffic)
	kernelTarget int // how many of target are kernel transactions
	sentUser     int
	sentKernel   int
	done         int
	pf           int // requests in flight (outstanding, the paper's pf)
	finish       int64
	finished     bool
}

// batchDriver implements engine.Driver for the batch model. Each cycle it
// fires the kernel timer, injects ready replies, and lets every eligible
// node (unfinished, below the MSHR limit, with work remaining) attempt one
// request. When no node is eligible — every node is blocked on in-flight
// requests or scheduled replies — the driver is idle and the engine can
// fast-forward to the next reply ready time, timer tick, timeline bucket
// boundary, or telemetry sample.
type batchDriver struct {
	cfg   *BatchConfig
	net   *network.Network
	rng   *sim.RNG
	n     int
	nodes []nodeState

	timer   *sim.Ticker
	replies *replyHeap
	res     *BatchResult

	userNAR, kernelNAR float64

	finished   int // nodes whose batch is complete
	latencySum float64
	latencyCnt int64

	bucketUser, bucketKernel int64
	bucketStart              int64

	finishedGauge *obs.Gauge
	kernelCtr     *obs.Counter
}

// countInjection accrues the per-class packet/flit accounting for one
// injected packet.
func (d *batchDriver) countInjection(p *router.Packet) {
	d.res.TotalPackets++
	d.res.TotalFlits += int64(p.Size)
	if p.Aux&auxKernel != 0 {
		d.res.KernelPackets++
		d.res.KernelFlits += int64(p.Size)
		d.bucketKernel += int64(p.Size)
		d.kernelCtr.Inc()
	} else {
		d.bucketUser += int64(p.Size)
	}
	if d.res.Matrix != nil {
		d.res.Matrix.Addf(p.Src, p.Dst, float64(p.Size))
	}
}

// sendRequest injects one request from node toward a pattern-drawn
// destination.
func (d *batchDriver) sendRequest(node int, kernel bool) {
	dst := d.cfg.Pattern.Dest(d.rng, node, d.n)
	p := d.net.NewPacket(node, dst, d.cfg.ReqSize, router.KindRequest)
	p.Class = d.cfg.ReqClass
	if kernel {
		p.Aux = auxKernel
	}
	d.net.Send(p)
	d.countInjection(p)
	d.nodes[node].pf++
}

// Cycle implements engine.Driver: timer interrupts, ready replies, request
// generation, and the periodic telemetry/timeline samples, in exactly the
// order of the original hand-rolled loop.
func (d *batchDriver) Cycle(now int64) {
	cfg := d.cfg
	// Timer interrupts add kernel work to unfinished nodes.
	if d.timer != nil && d.timer.Fire(now) {
		for i := range d.nodes {
			if !d.nodes[i].finished {
				d.nodes[i].target += cfg.Kernel.TimerBatch
				d.nodes[i].kernelTarget += cfg.Kernel.TimerBatch
			}
		}
	}
	// Inject ready replies.
	for d.replies.Len() > 0 && (*d.replies)[0].ready <= now {
		ev := heap.Pop(d.replies).(replyEvent)
		p := d.net.NewPacket(ev.from, ev.to, ev.size, router.KindReply)
		p.Class = d.cfg.ReplyClass
		if ev.kernel {
			p.Aux = auxKernel
		}
		d.net.Send(p)
		d.countInjection(p)
	}
	// Generate requests: kernel work preempts user work, at most one
	// new request per node per cycle, subject to the MSHR limit and
	// the injection-model throttle.
	for i := range d.nodes {
		st := &d.nodes[i]
		if st.finished || st.pf >= cfg.M {
			continue
		}
		kernelRemaining := st.kernelTarget - st.sentKernel
		userRemaining := (st.target - st.kernelTarget) - st.sentUser
		switch {
		case kernelRemaining > 0:
			if d.rng.Bernoulli(d.kernelNAR) {
				d.sendRequest(i, true)
				st.sentKernel++
			}
		case userRemaining > 0:
			if d.rng.Bernoulli(d.userNAR) {
				d.sendRequest(i, false)
				st.sentUser++
			}
		}
	}
	// Telemetry: per-node outstanding-request depth (the MSHR series),
	// on the same schedule as the network's router samples.
	if cfg.Obs != nil && cfg.Obs.ShouldSample(now) {
		for i := range d.nodes {
			cfg.Obs.Telemetry.AddNode(obs.NodeSample{Cycle: now, Node: i, Outstanding: d.nodes[i].pf})
		}
		d.finishedGauge.Set(float64(d.finished))
	}
	// Timeline bucketing.
	if cfg.SampleInterval > 0 && now-d.bucketStart >= cfg.SampleInterval {
		d.res.Timeline = append(d.res.Timeline, TimelineSample{
			Cycle:      d.bucketStart,
			UserRate:   float64(d.bucketUser) / float64(now-d.bucketStart),
			KernelRate: float64(d.bucketKernel) / float64(now-d.bucketStart),
		})
		d.bucketUser, d.bucketKernel = 0, 0
		d.bucketStart = now
	}
}

// Done implements engine.Driver: every node has completed its batch.
func (d *batchDriver) Done(int64) bool { return d.finished == d.n }

// Idle implements engine.Driver: no node can attempt a request this cycle,
// so Cycle draws nothing from the RNG and injects nothing until the next
// scheduled event. This is exactly the eligibility condition of the
// request-generation loop.
func (d *batchDriver) Idle(int64) bool {
	for i := range d.nodes {
		st := &d.nodes[i]
		if st.finished || st.pf >= d.cfg.M {
			continue
		}
		if st.kernelTarget > st.sentKernel || (st.target-st.kernelTarget) > st.sentUser {
			return false
		}
	}
	return true
}

// NextEvent implements engine.Driver: the earliest of the next scheduled
// reply, the next kernel timer tick, and the next timeline bucket
// boundary.
func (d *batchDriver) NextEvent(int64) int64 {
	next := engine.NoEvent
	if d.replies.Len() > 0 {
		next = (*d.replies)[0].ready
	}
	if d.timer != nil {
		if t := d.timer.Next(); t >= 0 && (next == engine.NoEvent || t < next) {
			next = t
		}
	}
	if d.cfg.SampleInterval > 0 {
		if b := d.bucketStart + d.cfg.SampleInterval; next == engine.NoEvent || b < next {
			next = b
		}
	}
	return next
}

// auxKernel marks kernel-class transactions in Packet.Aux.
const auxKernel = 1

// RunBatch executes one batch-model simulation.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	cfg.fillDefaults()
	if cfg.B < 1 {
		return nil, fmt.Errorf("closedloop: batch size B must be >= 1, got %d", cfg.B)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("closedloop: outstanding limit M must be >= 1, got %d", cfg.M)
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}

	net := network.New(cfg.Net)
	n := net.Nodes()
	rng := sim.NewRNG(cfg.Seed ^ 0xb5297a4d3f84d5b5)
	replyRNG := rng.Split()

	net.AttachObserver(cfg.Obs)
	var latencyHist *obs.Histogram
	var finishedGauge *obs.Gauge
	var kernelCtr *obs.Counter
	if cfg.Obs != nil {
		latencyHist = cfg.Obs.Registry.Histogram("batch.packet_latency_cycles", 0, 1024, 64)
		finishedGauge = cfg.Obs.Registry.Gauge("batch.finished_nodes")
		kernelCtr = cfg.Obs.Registry.Counter("batch.kernel_packets")
	}

	nodes := make([]nodeState, n)
	staticKernel := 0
	if cfg.Kernel != nil && cfg.Kernel.StaticFraction > 0 {
		staticKernel = int(cfg.Kernel.StaticFraction*float64(cfg.B) + 0.999999)
	}
	for i := range nodes {
		nodes[i].target = cfg.B + staticKernel
		nodes[i].kernelTarget = staticKernel
	}

	var timer *sim.Ticker
	if cfg.Kernel != nil && cfg.Kernel.TimerPeriod > 0 && cfg.Kernel.TimerBatch > 0 {
		timer = sim.NewTicker(cfg.Kernel.TimerPeriod, cfg.Kernel.TimerPeriod)
	}

	res := &BatchResult{NodeFinish: make([]int64, n)}
	if cfg.CollectMatrix {
		res.Matrix = stats.NewHeatmap(n, n)
	}

	userNAR := cfg.NAR
	if userNAR <= 0 || userNAR > 1 {
		userNAR = 1
	}
	kernelNAR := userNAR
	if cfg.Kernel != nil && cfg.Kernel.KernelNAR > 0 {
		kernelNAR = cfg.Kernel.KernelNAR
	}

	d := &batchDriver{
		cfg:           &cfg,
		net:           net,
		rng:           rng,
		n:             n,
		nodes:         nodes,
		timer:         timer,
		replies:       &replyHeap{},
		res:           res,
		userNAR:       userNAR,
		kernelNAR:     kernelNAR,
		finishedGauge: finishedGauge,
		kernelCtr:     kernelCtr,
	}

	net.OnReceive = func(now int64, p *router.Packet) {
		d.latencySum += float64(p.Latency())
		d.latencyCnt++
		latencyHist.Observe(float64(p.Latency()))
		switch p.Kind {
		case router.KindRequest:
			// Schedule the reply after the memory-model delay.
			heap.Push(d.replies, replyEvent{
				ready:  now + cfg.Reply.Delay(replyRNG),
				from:   p.Dst,
				to:     p.Src,
				size:   cfg.ReplySize,
				kernel: p.Aux&auxKernel != 0,
			})
		case router.KindReply:
			st := &d.nodes[p.Dst]
			st.pf--
			st.done++
			if !st.finished && st.done >= st.target {
				st.finished = true
				st.finish = now
				d.finished++
			}
		}
	}
	// A transaction whose request or reply the NIC abandons will never see
	// its reply: close it as failed so the requester's MSHR slot frees and
	// the batch can still complete (gracefully degraded).
	net.OnDeadDrop = func(now int64, p *router.Packet) {
		var st *nodeState
		switch p.Kind {
		case router.KindRequest:
			st = &d.nodes[p.Src]
		case router.KindReply:
			st = &d.nodes[p.Dst]
		default:
			return
		}
		st.pf--
		st.done++
		res.FailedTransactions++
		if !st.finished && st.done >= st.target {
			st.finished = true
			st.finish = now
			d.finished++
		}
	}

	net.SetFullScan(cfg.FullScan)
	eo := engine.RunOutcome(engine.Config{
		Net:      net,
		Ctx:      cfg.Ctx,
		Deadline: cfg.MaxCycles,
		Progress: cfg.Progress,
		FullScan: cfg.FullScan,
		OnStall: func(now int64) {
			res.Stalled = true
			res.StallDump = d.stallDump(now)
		},
	}, d)
	res.Completed = eo.Completed
	if cfg.OnEngine != nil {
		cfg.OnEngine(eo)
	}
	if eo.Canceled {
		net.Close()
		return nil, fmt.Errorf("closedloop: batch run canceled at cycle %d: %w", eo.End, context.Cause(cfg.Ctx))
	}
	cfg.Progress.Done(net.Now())

	if cfg.SampleInterval > 0 && net.Now() > d.bucketStart {
		res.Timeline = append(res.Timeline, TimelineSample{
			Cycle:      d.bucketStart,
			UserRate:   float64(d.bucketUser) / float64(net.Now()-d.bucketStart),
			KernelRate: float64(d.bucketKernel) / float64(net.Now()-d.bucketStart),
		})
	}

	for i := range nodes {
		res.NodeFinish[i] = nodes[i].finish
		if !nodes[i].finished {
			res.NodeFinish[i] = net.Now()
		}
		if res.NodeFinish[i] > res.Runtime {
			res.Runtime = res.NodeFinish[i]
		}
	}
	if res.Runtime > 0 {
		res.Throughput = float64(res.TotalFlits) / float64(res.Runtime) / float64(n)
		res.ReqThroughput = float64(2*cfg.B) / float64(res.Runtime)
	}
	if d.latencyCnt > 0 {
		res.AvgPacketLatency = d.latencySum / float64(d.latencyCnt)
	}
	if fs := net.FaultStats(); fs != nil {
		// Denominator is the full workload, not just completed
		// transactions: a stalled run that delivered half its batch must
		// not report fraction 1.0.
		var done int64
		for i := range nodes {
			done += int64(nodes[i].done)
		}
		if total := int64(n) * int64(cfg.B); total > 0 {
			fs.DeliveredFraction = float64(done-res.FailedTransactions) / float64(total)
		}
		res.Faults = fs
	}
	if cfg.Inspect != nil {
		cfg.Inspect(net)
	}
	net.Close()
	return res, nil
}

// stallDump renders the deadlock watchdog's diagnostic: which nodes are
// stuck (and on what), plus the network's stuck-VC report.
func (d *batchDriver) stallDump(now int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch run stalled at cycle %d: %d/%d nodes finished\n", now, d.finished, d.n)
	lines := 0
	for i := range d.nodes {
		st := &d.nodes[i]
		if st.finished {
			continue
		}
		if lines >= 32 {
			b.WriteString("... (further nodes omitted)\n")
			break
		}
		fmt.Fprintf(&b, "node %d: done %d/%d, outstanding pf %d, sent user %d kernel %d\n",
			i, st.done, st.target, st.pf, st.sentUser, st.sentKernel)
		lines++
	}
	b.WriteString(d.net.StuckVCReport())
	return b.String()
}
