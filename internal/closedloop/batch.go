package closedloop

import (
	"container/heap"
	"fmt"

	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/stats"
	"noceval/internal/traffic"
)

// KernelConfig models operating-system traffic (§V). Syscall/trap traffic is
// independent of runtime and is added to every node's batch statically;
// timer-interrupt traffic is proportional to runtime and is added while a
// node is still working, once per timer period.
type KernelConfig struct {
	// StaticFraction adds ceil(StaticFraction*B) kernel transactions to
	// each node's batch before the run starts (thread creation, syscalls).
	StaticFraction float64
	// TimerPeriod is the cycle interval between timer interrupts
	// (1/Rtimer); zero or negative disables the timer.
	TimerPeriod int64
	// TimerBatch is the number of kernel transactions each interrupt adds
	// to every still-running node.
	TimerBatch int
	// KernelNAR throttles kernel request injection; zero means "use the
	// same NAR as user traffic".
	KernelNAR float64
}

// BatchConfig describes one batch-model run.
type BatchConfig struct {
	Net     network.Config
	Pattern traffic.Pattern

	// B is the batch size b: remote operations each node must complete.
	B int
	// M is the maximum outstanding requests per node (the MSHR limit m).
	M int

	// ReqSize and ReplySize are packet lengths in flits (default 1 and 1,
	// matching the paper's throughput definition θ = b*2/T).
	ReqSize, ReplySize int

	// NAR is the network access rate of the enhanced injection model
	// (§IV-C1): the probability per cycle that a node with pf < m actually
	// injects. Values <= 0 or >= 1 reproduce the baseline model.
	NAR float64

	// Reply models the latency before a reply is injected (§IV-C2).
	// Nil means ImmediateReply.
	Reply ReplyModel

	// Kernel, when non-nil, enables the OS-traffic model (§V).
	Kernel *KernelConfig

	// MaxCycles aborts a run that fails to complete (default 50M).
	MaxCycles int64
	Seed      uint64

	// SampleInterval, when positive, records the injection-rate timeline
	// in buckets of this many cycles (Fig 21).
	SampleInterval int64
	// CollectMatrix, when true, accumulates the source/destination flit
	// matrix (Fig 13).
	CollectMatrix bool

	// Obs, when non-nil, attaches the observability layer: network metrics
	// and telemetry, plus a per-node outstanding-request (MSHR depth, the
	// paper's pf) time series on the observer's sampling schedule.
	Obs *obs.Observer
	// Progress, when non-nil, prints run heartbeats.
	Progress *obs.Progress
}

func (c *BatchConfig) fillDefaults() {
	if c.ReqSize == 0 {
		c.ReqSize = 1
	}
	if c.ReplySize == 0 {
		c.ReplySize = 1
	}
	if c.Reply == nil {
		c.Reply = ImmediateReply{}
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
}

// TimelineSample is one bucket of the injection-rate timeline.
type TimelineSample struct {
	Cycle      int64   // bucket start
	UserRate   float64 // user flits/cycle summed over all nodes
	KernelRate float64 // kernel flits/cycle summed over all nodes
}

// BatchResult summarizes one batch-model run.
type BatchResult struct {
	// Runtime is T: the cycle at which the last node finished its batch.
	Runtime int64
	// Completed is false when MaxCycles elapsed first.
	Completed bool

	// NodeFinish is the per-node completion time (Fig 7).
	NodeFinish []int64

	// Throughput is the achieved throughput θ in flits/cycle/node computed
	// from the runtime over all injected flits.
	Throughput float64
	// ReqThroughput is the paper's θ = (b*2)/T definition (transactions,
	// counting request+reply, per cycle per node).
	ReqThroughput float64

	TotalPackets  int64
	KernelPackets int64
	TotalFlits    int64
	KernelFlits   int64

	AvgPacketLatency float64

	Timeline []TimelineSample
	Matrix   *stats.Heatmap
}

// replyEvent is a scheduled reply injection.
type replyEvent struct {
	ready  int64
	from   int // responder (request destination)
	to     int // requester
	size   int
	kernel bool
}

// replyHeap is a min-heap of replyEvents ordered by ready time.
type replyHeap []replyEvent

func (h replyHeap) Len() int           { return len(h) }
func (h replyHeap) Less(i, j int) bool { return h[i].ready < h[j].ready }
func (h replyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *replyHeap) Push(x any)        { *h = append(*h, x.(replyEvent)) }
func (h *replyHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// nodeState tracks one terminal's progress through its batch.
type nodeState struct {
	target       int // transactions to complete (grows with timer traffic)
	kernelTarget int // how many of target are kernel transactions
	sentUser     int
	sentKernel   int
	done         int
	pf           int // requests in flight (outstanding, the paper's pf)
	finish       int64
	finished     bool
}

// auxKernel marks kernel-class transactions in Packet.Aux.
const auxKernel = 1

// RunBatch executes one batch-model simulation.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	cfg.fillDefaults()
	if cfg.B < 1 {
		return nil, fmt.Errorf("closedloop: batch size B must be >= 1, got %d", cfg.B)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("closedloop: outstanding limit M must be >= 1, got %d", cfg.M)
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}

	net := network.New(cfg.Net)
	n := net.Nodes()
	rng := sim.NewRNG(cfg.Seed ^ 0xb5297a4d3f84d5b5)
	replyRNG := rng.Split()

	net.AttachObserver(cfg.Obs)
	var latencyHist *obs.Histogram
	var finishedGauge *obs.Gauge
	var kernelCtr *obs.Counter
	if cfg.Obs != nil {
		latencyHist = cfg.Obs.Registry.Histogram("batch.packet_latency_cycles", 0, 1024, 64)
		finishedGauge = cfg.Obs.Registry.Gauge("batch.finished_nodes")
		kernelCtr = cfg.Obs.Registry.Counter("batch.kernel_packets")
	}

	nodes := make([]nodeState, n)
	staticKernel := 0
	if cfg.Kernel != nil && cfg.Kernel.StaticFraction > 0 {
		staticKernel = int(cfg.Kernel.StaticFraction*float64(cfg.B) + 0.999999)
	}
	for i := range nodes {
		nodes[i].target = cfg.B + staticKernel
		nodes[i].kernelTarget = staticKernel
	}

	var timer *sim.Ticker
	if cfg.Kernel != nil && cfg.Kernel.TimerPeriod > 0 && cfg.Kernel.TimerBatch > 0 {
		timer = sim.NewTicker(cfg.Kernel.TimerPeriod, cfg.Kernel.TimerPeriod)
	}

	res := &BatchResult{NodeFinish: make([]int64, n)}
	if cfg.CollectMatrix {
		res.Matrix = stats.NewHeatmap(n, n)
	}

	replies := &replyHeap{}
	var latencySum float64
	var latencyCnt int64
	var bucketUser, bucketKernel int64
	bucketStart := int64(0)

	countInjection := func(p *router.Packet) {
		res.TotalPackets++
		res.TotalFlits += int64(p.Size)
		if p.Aux&auxKernel != 0 {
			res.KernelPackets++
			res.KernelFlits += int64(p.Size)
			bucketKernel += int64(p.Size)
			kernelCtr.Inc()
		} else {
			bucketUser += int64(p.Size)
		}
		if res.Matrix != nil {
			res.Matrix.Addf(p.Src, p.Dst, float64(p.Size))
		}
	}

	net.OnReceive = func(now int64, p *router.Packet) {
		latencySum += float64(p.Latency())
		latencyCnt++
		latencyHist.Observe(float64(p.Latency()))
		switch p.Kind {
		case router.KindRequest:
			// Schedule the reply after the memory-model delay.
			heap.Push(replies, replyEvent{
				ready:  now + cfg.Reply.Delay(replyRNG),
				from:   p.Dst,
				to:     p.Src,
				size:   cfg.ReplySize,
				kernel: p.Aux&auxKernel != 0,
			})
		case router.KindReply:
			st := &nodes[p.Dst]
			st.pf--
			st.done++
			if !st.finished && st.done >= st.target {
				st.finished = true
				st.finish = now
			}
		}
	}

	finishedNodes := func() int {
		c := 0
		for i := range nodes {
			if nodes[i].finished {
				c++
			}
		}
		return c
	}

	userNAR := cfg.NAR
	if userNAR <= 0 || userNAR > 1 {
		userNAR = 1
	}
	kernelNAR := userNAR
	if cfg.Kernel != nil && cfg.Kernel.KernelNAR > 0 {
		kernelNAR = cfg.Kernel.KernelNAR
	}

	sendRequest := func(node int, kernel bool) {
		dst := cfg.Pattern.Dest(rng, node, n)
		p := net.NewPacket(node, dst, cfg.ReqSize, router.KindRequest)
		if kernel {
			p.Aux = auxKernel
		}
		net.Send(p)
		countInjection(p)
		nodes[node].pf++
	}

	for {
		now := net.Now()
		if now >= cfg.MaxCycles {
			break
		}
		// Timer interrupts add kernel work to unfinished nodes.
		if timer != nil && timer.Fire(now) {
			for i := range nodes {
				if !nodes[i].finished {
					nodes[i].target += cfg.Kernel.TimerBatch
					nodes[i].kernelTarget += cfg.Kernel.TimerBatch
				}
			}
		}
		// Inject ready replies.
		for replies.Len() > 0 && (*replies)[0].ready <= now {
			ev := heap.Pop(replies).(replyEvent)
			p := net.NewPacket(ev.from, ev.to, ev.size, router.KindReply)
			if ev.kernel {
				p.Aux = auxKernel
			}
			net.Send(p)
			countInjection(p)
		}
		// Generate requests: kernel work preempts user work, at most one
		// new request per node per cycle, subject to the MSHR limit and
		// the injection-model throttle.
		for i := range nodes {
			st := &nodes[i]
			if st.finished || st.pf >= cfg.M {
				continue
			}
			kernelRemaining := st.kernelTarget - st.sentKernel
			userRemaining := (st.target - st.kernelTarget) - st.sentUser
			switch {
			case kernelRemaining > 0:
				if rng.Bernoulli(kernelNAR) {
					sendRequest(i, true)
					st.sentKernel++
				}
			case userRemaining > 0:
				if rng.Bernoulli(userNAR) {
					sendRequest(i, false)
					st.sentUser++
				}
			}
		}
		// Telemetry: per-node outstanding-request depth (the MSHR series),
		// on the same schedule as the network's router samples.
		if cfg.Obs != nil && cfg.Obs.ShouldSample(now) {
			for i := range nodes {
				cfg.Obs.Telemetry.AddNode(obs.NodeSample{Cycle: now, Node: i, Outstanding: nodes[i].pf})
			}
			finishedGauge.Set(float64(finishedNodes()))
		}
		// Timeline bucketing.
		if cfg.SampleInterval > 0 && now-bucketStart >= cfg.SampleInterval {
			res.Timeline = append(res.Timeline, TimelineSample{
				Cycle:      bucketStart,
				UserRate:   float64(bucketUser) / float64(now-bucketStart),
				KernelRate: float64(bucketKernel) / float64(now-bucketStart),
			})
			bucketUser, bucketKernel = 0, 0
			bucketStart = now
		}

		net.Step()
		cfg.Progress.Tick(net.Now(), 0)

		if finishedNodes() == n {
			res.Completed = true
			break
		}
	}
	cfg.Progress.Done(net.Now())

	if cfg.SampleInterval > 0 && net.Now() > bucketStart {
		res.Timeline = append(res.Timeline, TimelineSample{
			Cycle:      bucketStart,
			UserRate:   float64(bucketUser) / float64(net.Now()-bucketStart),
			KernelRate: float64(bucketKernel) / float64(net.Now()-bucketStart),
		})
	}

	for i := range nodes {
		res.NodeFinish[i] = nodes[i].finish
		if !nodes[i].finished {
			res.NodeFinish[i] = net.Now()
		}
		if res.NodeFinish[i] > res.Runtime {
			res.Runtime = res.NodeFinish[i]
		}
	}
	if res.Runtime > 0 {
		res.Throughput = float64(res.TotalFlits) / float64(res.Runtime) / float64(n)
		res.ReqThroughput = float64(2*cfg.B) / float64(res.Runtime)
	}
	if latencyCnt > 0 {
		res.AvgPacketLatency = latencySum / float64(latencyCnt)
	}
	return res, nil
}
