package closedloop_test

// Deadlock-watchdog regression: a forced router outage (hard kill, no
// recovery NIC) silently destroys in-flight transactions, so the batch can
// never finish. The watchdog must prove this the moment the network goes
// permanently idle — failing fast with a dump of the stuck nodes — instead
// of burning cycles to MaxCycles.

import (
	"strings"
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func killedNet(t *testing.T, fp *fault.Params) network.Config {
	t.Helper()
	cfg := network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 4, Delay: 1},
		Seed:    11,
		Fault:   fp,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestWatchdogReportsStallAfterKill(t *testing.T) {
	res, err := closedloop.RunBatch(closedloop.BatchConfig{
		Net:       killedNet(t, &fault.Params{Kills: []fault.Kill{{Node: 5, At: 100}}}),
		Pattern:   traffic.Uniform{},
		B:         50,
		M:         2,
		MaxCycles: 10_000_000,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("batch with a killed router and no recovery completed; the kill was a no-op")
	}
	if !res.Stalled {
		t.Fatalf("watchdog did not flag the stall (runtime %d of max 10M: the run burned to the deadline instead)", res.Runtime)
	}
	if res.Runtime >= 10_000_000 {
		t.Errorf("watchdog fired only at the deadline (cycle %d), not when the run wedged", res.Runtime)
	}
	for _, want := range []string{"stalled", "node", "DEAD"} {
		if !strings.Contains(res.StallDump, want) {
			t.Errorf("stall dump missing %q:\n%s", want, res.StallDump)
		}
	}
}

// TestKilledRouterRecoversWithNIC is the counterpart: the same kill with
// the recovery NIC on finishes the batch (degraded), because transactions
// into the dead router are abandoned after their retries and closed as
// failed.
func TestKilledRouterRecoversWithNIC(t *testing.T) {
	res, err := closedloop.RunBatch(closedloop.BatchConfig{
		Net: killedNet(t, &fault.Params{
			Kills:   []fault.Kill{{Node: 5, At: 100}},
			Timeout: 200, MaxRetries: 2,
		}),
		Pattern:   traffic.Uniform{},
		B:         50,
		M:         2,
		MaxCycles: 10_000_000,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("batch with recovery NIC did not complete (stalled=%v):\n%s", res.Stalled, res.StallDump)
	}
	if res.FailedTransactions == 0 {
		t.Error("no failed transactions despite a killed router; the scenario is vacuous")
	}
	if res.Faults == nil || res.Faults.DeliveredFraction >= 1 {
		t.Errorf("delivered fraction not degraded: %+v", res.Faults)
	}
}
