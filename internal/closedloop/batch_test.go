package closedloop

import (
	"testing"

	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/traffic"
)

func meshConfig(tr int64, q int) network.Config {
	return network.Config{
		Topo:    topology.NewMesh(8, 8),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: q, Delay: tr},
		Seed:    42,
	}
}

func smallMeshConfig() network.Config {
	return network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 2, BufDepth: 8, Delay: 1},
		Seed:    42,
	}
}

func TestBatchCompletesAndCounts(t *testing.T) {
	res, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 50, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("batch did not complete")
	}
	// 16 nodes x 50 transactions x (request + reply) packets.
	if want := int64(16 * 50 * 2); res.TotalPackets != want {
		t.Errorf("total packets = %d, want %d", res.TotalPackets, want)
	}
	if res.KernelPackets != 0 {
		t.Errorf("kernel packets = %d, want 0 without kernel model", res.KernelPackets)
	}
	if res.Runtime <= 0 {
		t.Error("runtime not positive")
	}
	for i, f := range res.NodeFinish {
		if f <= 0 || f > res.Runtime {
			t.Errorf("node %d finish %d outside (0, %d]", i, f, res.Runtime)
		}
	}
}

func TestHigherMLowersRuntime(t *testing.T) {
	// Fig 2/Fig 4: more outstanding requests overlap latency and cut
	// runtime, saturating at the network's throughput limit.
	var prev int64
	for i, m := range []int{1, 4, 16} {
		res, err := RunBatch(BatchConfig{Net: meshConfig(1, 16), B: 200, M: m, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("m=%d did not complete", m)
		}
		if i > 0 && res.Runtime >= prev {
			t.Errorf("runtime did not drop: m=%d gave %d, previous %d", m, res.Runtime, prev)
		}
		prev = res.Runtime
	}
}

func TestRouterDelayScalesRuntimeAtLowM(t *testing.T) {
	// §III-B: at m=1 runtime follows zero-load latency, so tr=2 costs
	// ~1.5x and tr=4 ~2.5x.
	runtimes := map[int64]int64{}
	for _, tr := range []int64{1, 2, 4} {
		res, err := RunBatch(BatchConfig{Net: meshConfig(tr, 16), B: 300, M: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		runtimes[tr] = res.Runtime
	}
	r2 := float64(runtimes[2]) / float64(runtimes[1])
	r4 := float64(runtimes[4]) / float64(runtimes[1])
	if r2 < 1.3 || r2 > 1.7 {
		t.Errorf("tr=2 runtime ratio = %.3f, want ~1.5", r2)
	}
	if r4 < 2.2 || r4 > 2.8 {
		t.Errorf("tr=4 runtime ratio = %.3f, want ~2.5", r4)
	}
}

func TestRouterDelayIrrelevantAtHighM(t *testing.T) {
	// §III-B: at high m the run is throughput-bound and tr barely matters.
	r1, err := RunBatch(BatchConfig{Net: meshConfig(1, 16), B: 500, M: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunBatch(BatchConfig{Net: meshConfig(4, 16), B: 500, M: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r4.Runtime) / float64(r1.Runtime)
	if ratio > 1.3 {
		t.Errorf("tr=4/tr=1 runtime ratio at m=32 = %.3f, want near 1", ratio)
	}
}

func TestNARThrottlesThroughput(t *testing.T) {
	// Fig 16: a low network access rate caps the injection rate and hides
	// network differences.
	full, err := RunBatch(BatchConfig{Net: meshConfig(1, 16), B: 200, M: 4, NAR: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunBatch(BatchConfig{Net: meshConfig(1, 16), B: 200, M: 4, NAR: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Runtime < 2*full.Runtime {
		t.Errorf("NAR=0.05 runtime %d not much larger than NAR=1 runtime %d", slow.Runtime, full.Runtime)
	}
	if slow.Throughput >= full.Throughput {
		t.Errorf("NAR=0.05 throughput %.3f not below NAR=1 %.3f", slow.Throughput, full.Throughput)
	}
}

func TestReplyLatencyDominatesRouterDelay(t *testing.T) {
	// Fig 17: with a 300-cycle memory in the loop, doubling tr hardly
	// changes runtime.
	base := BatchConfig{Net: meshConfig(1, 16), B: 100, M: 1, Reply: FixedReply{Latency: 300}, Seed: 6}
	slow := BatchConfig{Net: meshConfig(4, 16), B: 100, M: 1, Reply: FixedReply{Latency: 300}, Seed: 6}
	rb, err := RunBatch(base)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunBatch(slow)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rs.Runtime) / float64(rb.Runtime)
	if ratio > 1.25 {
		t.Errorf("tr=4/tr=1 ratio with 300-cycle memory = %.3f, want close to 1", ratio)
	}
}

func TestProbabilisticReplyMeanMatches(t *testing.T) {
	p := ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.1}
	if got, want := p.Mean(), 50.0; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Same mean latency, but the long-tail model (Fig 17c vs 17b) yields a
	// different runtime distribution; both must simply complete here.
	res, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 100, M: 2, Reply: p, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("probabilistic reply run did not complete")
	}
}

func TestKernelModelAddsTraffic(t *testing.T) {
	res, err := RunBatch(BatchConfig{
		Net: smallMeshConfig(),
		B:   100, M: 2,
		Kernel: &KernelConfig{StaticFraction: 0.5, TimerPeriod: 200, TimerBatch: 2, KernelNAR: 0.3},
		Seed:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("kernel run did not complete")
	}
	if res.KernelPackets == 0 {
		t.Error("kernel model produced no kernel packets")
	}
	// Static fraction alone guarantees >= 50 kernel transactions per node.
	if res.KernelPackets < int64(16*50*2) {
		t.Errorf("kernel packets = %d, want >= %d from static fraction", res.KernelPackets, 16*50*2)
	}
	base, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 100, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= base.Runtime {
		t.Errorf("kernel traffic did not extend runtime: %d vs base %d", res.Runtime, base.Runtime)
	}
}

func TestTimerTrafficScalesWithRuntime(t *testing.T) {
	// Slowing the cores (low NAR) lengthens the run, so a fixed timer
	// period must contribute proportionally more kernel packets (§V).
	mk := func(nar float64) *BatchResult {
		res, err := RunBatch(BatchConfig{
			Net: smallMeshConfig(),
			B:   100, M: 1, NAR: nar,
			Kernel: &KernelConfig{TimerPeriod: 300, TimerBatch: 1},
			Seed:   9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := mk(1)
	slow := mk(0.1)
	if slow.Runtime <= fast.Runtime {
		t.Fatal("NAR=0.1 should run longer")
	}
	fastFrac := float64(fast.KernelFlits) / float64(fast.TotalFlits)
	slowFrac := float64(slow.KernelFlits) / float64(slow.TotalFlits)
	if slowFrac <= fastFrac {
		t.Errorf("kernel share did not grow with runtime: fast %.3f, slow %.3f", fastFrac, slowFrac)
	}
}

func TestTimelineAndMatrixCollection(t *testing.T) {
	res, err := RunBatch(BatchConfig{
		Net: smallMeshConfig(),
		B:   100, M: 2,
		SampleInterval: 100,
		CollectMatrix:  true,
		Pattern:        traffic.UniformNoSelf{},
		Seed:           10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 2 {
		t.Errorf("timeline has %d samples, want >= 2", len(res.Timeline))
	}
	if res.Matrix == nil {
		t.Fatal("matrix not collected")
	}
	var sum float64
	for _, v := range res.Matrix.Cells {
		sum += v
	}
	if int64(sum) != res.TotalFlits {
		t.Errorf("matrix sums to %v flits, want %d", sum, res.TotalFlits)
	}
	for i := 0; i < 16; i++ {
		if res.Matrix.At(i, i) != 0 {
			t.Errorf("self traffic in matrix at node %d with no-self pattern", i)
		}
	}
}

func TestBarrierModelMeasuresThroughput(t *testing.T) {
	res, err := RunBarrier(BarrierConfig{Net: meshConfig(1, 16), B: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("barrier run did not complete")
	}
	// The barrier model drives the network to saturation: throughput should
	// approach the mesh's ~0.42 flits/cycle/node uniform-random capacity.
	if res.Throughput < 0.3 || res.Throughput > 0.55 {
		t.Errorf("barrier throughput = %.3f, want ~0.35-0.50", res.Throughput)
	}
}

func TestBarrierPhases(t *testing.T) {
	res, err := RunBarrier(BarrierConfig{Net: smallMeshConfig(), B: 100, Phases: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseRuntime) != 3 {
		t.Fatalf("got %d phase runtimes, want 3", len(res.PhaseRuntime))
	}
	var sum int64
	for _, p := range res.PhaseRuntime {
		if p <= 0 {
			t.Error("non-positive phase runtime")
		}
		sum += p
	}
	if sum != res.Runtime {
		t.Errorf("phase runtimes sum to %d, total %d", sum, res.Runtime)
	}
}

func TestBatchValidation(t *testing.T) {
	if _, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 0, M: 1}); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 1, M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := RunBarrier(BarrierConfig{Net: smallMeshConfig(), B: 0}); err == nil {
		t.Error("barrier B=0 accepted")
	}
}

func TestThroughputDefinitionsAgree(t *testing.T) {
	// With 1-flit requests and replies, total flits = 2*B*N, so the two
	// throughput definitions coincide.
	res, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 200, M: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Throughput - res.ReqThroughput
	if diff < -1e-9 || diff > 1e-9 {
		t.Errorf("throughput %.6f != req throughput %.6f", res.Throughput, res.ReqThroughput)
	}
}
