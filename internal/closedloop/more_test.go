package closedloop

import (
	"testing"
	"testing/quick"

	"noceval/internal/sim"
)

func TestNAROneEqualsBaseline(t *testing.T) {
	base, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 100, M: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 100, M: 2, NAR: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if base.Runtime != one.Runtime || base.TotalPackets != one.TotalPackets {
		t.Errorf("NAR=1 differs from baseline: %d vs %d cycles", one.Runtime, base.Runtime)
	}
}

func TestBatchDeterminism(t *testing.T) {
	run := func() *BatchResult {
		res, err := RunBatch(BatchConfig{
			Net: smallMeshConfig(), B: 150, M: 4, NAR: 0.5,
			Reply: ProbabilisticReply{L2Latency: 10, MemoryLatency: 100, MissRate: 0.2},
			Seed:  99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || a.TotalFlits != b.TotalFlits {
		t.Errorf("non-deterministic batch: %d/%d vs %d/%d", a.Runtime, a.TotalFlits, b.Runtime, b.TotalFlits)
	}
	for i := range a.NodeFinish {
		if a.NodeFinish[i] != b.NodeFinish[i] {
			t.Fatalf("node %d finish differs", i)
		}
	}
}

func TestBatchSeedsProduceDifferentRuns(t *testing.T) {
	a, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 150, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 150, M: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime == b.Runtime {
		t.Log("warning: different seeds produced identical runtime (possible but unlikely)")
	}
}

func TestMultiFlitRequestsAndReplies(t *testing.T) {
	res, err := RunBatch(BatchConfig{
		Net: smallMeshConfig(), B: 50, M: 2,
		ReqSize: 1, ReplySize: 5, // read requests with data replies
		Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	want := int64(16 * 50 * (1 + 5))
	if res.TotalFlits != want {
		t.Errorf("total flits = %d, want %d", res.TotalFlits, want)
	}
}

func TestNodeFinishBoundedByRuntime(t *testing.T) {
	err := quick.Check(func(seed uint64, mRaw uint8) bool {
		m := int(mRaw)%8 + 1
		res, err := RunBatch(BatchConfig{Net: smallMeshConfig(), B: 60, M: m, Seed: seed})
		if err != nil || !res.Completed {
			return false
		}
		max := int64(0)
		for _, f := range res.NodeFinish {
			if f <= 0 || f > res.Runtime {
				return false
			}
			if f > max {
				max = f
			}
		}
		return max == res.Runtime
	}, &quick.Config{MaxCount: 8})
	if err != nil {
		t.Error(err)
	}
}

func TestStaticKernelFractionRounding(t *testing.T) {
	// StaticFraction 0.101 with B=100 must add ceil(10.1) = 11 kernel
	// transactions per node.
	res, err := RunBatch(BatchConfig{
		Net: smallMeshConfig(), B: 100, M: 2,
		Kernel: &KernelConfig{StaticFraction: 0.101},
		Seed:   23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(16 * 11 * 2); res.KernelPackets != want {
		t.Errorf("kernel packets = %d, want %d (ceil rounding)", res.KernelPackets, want)
	}
}

func TestReplyModelsSampleSanely(t *testing.T) {
	rng := sim.NewRNG(7)
	if (ImmediateReply{}).Delay(rng) != 0 {
		t.Error("immediate reply delayed")
	}
	if (FixedReply{Latency: 42}).Delay(rng) != 42 {
		t.Error("fixed reply wrong")
	}
	p := ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.25}
	sum := 0.0
	for i := 0; i < 20000; i++ {
		d := p.Delay(rng)
		if d != 20 && d != 320 {
			t.Fatalf("unexpected delay %d", d)
		}
		sum += float64(d)
	}
	mean := sum / 20000
	if mean < 90 || mean > 100 {
		t.Errorf("probabilistic mean = %.1f, want ~95", mean)
	}
}

func TestReplyModelNames(t *testing.T) {
	if (ImmediateReply{}).Name() != "immediate" {
		t.Error("immediate name")
	}
	if (FixedReply{Latency: 20}).Name() != "fixed20" {
		t.Error("fixed name")
	}
	if (ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.1}).Name() == "" {
		t.Error("probabilistic name empty")
	}
}

func TestTimelineRatesAreConsistent(t *testing.T) {
	res, err := RunBatch(BatchConfig{
		Net: smallMeshConfig(), B: 200, M: 4,
		SampleInterval: 50,
		Seed:           24,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Integrating the timeline recovers the total flit count (single-flit
	// requests and replies, no kernel traffic).
	var integrated float64
	prev := int64(0)
	for i, s := range res.Timeline {
		span := int64(50)
		if i == len(res.Timeline)-1 {
			span = res.Runtime - s.Cycle
		}
		if s.Cycle < prev {
			t.Fatal("timeline not monotonic")
		}
		prev = s.Cycle
		integrated += (s.UserRate + s.KernelRate) * float64(span)
	}
	ratio := integrated / float64(res.TotalFlits)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("timeline integrates to %.2fx the flit total", ratio)
	}
}
