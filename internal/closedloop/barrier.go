package closedloop

import (
	"context"
	"fmt"

	"noceval/internal/engine"
	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/traffic"
)

// BarrierConfig describes a closed-loop run with inter-node dependency
// (§II-B2): each node injects b packets as fast as the network accepts
// them, and a phase completes only when every injected packet has arrived —
// a global barrier. This is the barrier/burst-synchronized model of the
// prior work the paper cites, and it essentially measures network
// throughput.
type BarrierConfig struct {
	Net     network.Config
	Pattern traffic.Pattern
	Sizes   traffic.SizeDist
	// Ctx, when non-nil, makes the run cancellable (see openloop.Config.Ctx).
	Ctx context.Context

	// B is the number of packets each node sends per phase.
	B int
	// Phases is the number of barrier-separated phases (default 1).
	Phases int
	// Class stamps the QoS traffic class on every injected packet (see
	// router.Config.Classes); zero keeps the classic single-class run.
	Class int

	MaxCycles int64
	Seed      uint64

	// FullScan runs the legacy per-cycle full scans (see BatchConfig).
	FullScan bool

	// Inspect, when non-nil, receives the run's network after the engine
	// finishes (see BatchConfig.Inspect).
	Inspect func(*network.Network)

	// OnEngine, when non-nil, receives the engine outcome after the run
	// (see BatchConfig.OnEngine).
	OnEngine func(engine.Outcome)
}

// BarrierResult summarizes a barrier-model run.
type BarrierResult struct {
	// Runtime is the total cycles to complete all phases.
	Runtime int64
	// PhaseRuntime is the duration of each phase.
	PhaseRuntime []int64
	// Throughput is flits/cycle/node over the whole run.
	Throughput float64
	Completed  bool
	// FailedPackets counts packets the recovery NIC gave up on; each is
	// counted toward the barrier so a lossy phase can still complete.
	FailedPackets int64 `json:",omitempty"`
	// Faults carries the fault/recovery counters of a faulted run.
	Faults *fault.Stats `json:",omitempty"`
}

// RunBarrier executes a barrier-model simulation.
func RunBarrier(cfg BarrierConfig) (*BarrierResult, error) {
	if cfg.B < 1 {
		return nil, fmt.Errorf("closedloop: barrier batch size B must be >= 1, got %d", cfg.B)
	}
	if cfg.Phases == 0 {
		cfg.Phases = 1
	}
	if cfg.Sizes == nil {
		cfg.Sizes = traffic.FixedSize(1)
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.Uniform{}
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50_000_000
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}

	net := network.New(cfg.Net)
	n := net.Nodes()
	rng := sim.NewRNG(cfg.Seed ^ 0x1d8e4e27c47d124f)

	res := &BarrierResult{}
	d := &barrierDriver{cfg: &cfg, net: net, rng: rng, n: n, res: res, sent: make([]int, n)}
	net.OnReceive = func(now int64, p *router.Packet) { d.arrived++ }
	// An abandoned packet will never arrive: count it toward the barrier so
	// the phase completes (degraded) instead of spinning to MaxCycles.
	net.OnDeadDrop = func(now int64, p *router.Packet) {
		d.arrived++
		res.FailedPackets++
	}

	net.SetFullScan(cfg.FullScan)
	eo := engine.RunOutcome(engine.Config{
		Net:      net,
		Ctx:      cfg.Ctx,
		Deadline: cfg.MaxCycles,
		FullScan: cfg.FullScan,
	}, d)
	completed := eo.Completed
	if cfg.OnEngine != nil {
		cfg.OnEngine(eo)
	}
	if eo.Canceled {
		net.Close()
		return nil, fmt.Errorf("closedloop: barrier run canceled at cycle %d: %w", eo.End, context.Cause(cfg.Ctx))
	}
	res.Runtime = net.Now()
	if fs := net.FaultStats(); fs != nil {
		if d.injectedTotal > 0 {
			fs.DeliveredFraction = float64(d.injectedTotal-res.FailedPackets) / float64(d.injectedTotal)
		}
		res.Faults = fs
	}
	if cfg.Inspect != nil {
		cfg.Inspect(net)
	}
	net.Close()
	if !completed {
		return res, nil // Completed stays false
	}
	res.Completed = true
	if res.Runtime > 0 {
		res.Throughput = float64(d.totalFlits) / float64(res.Runtime) / float64(n)
	}
	return res, nil
}

// barrierDriver implements engine.Driver for the barrier model. Done doubles
// as the phase state machine: a phase is complete when every injected packet
// has arrived and the network has drained, at which point the driver records
// the phase runtime and resets for the next one.
type barrierDriver struct {
	cfg *BarrierConfig
	net *network.Network
	rng *sim.RNG
	n   int
	res *BarrierResult

	phase         int
	phaseStart    int64
	sent          []int
	arrived       int
	injected      int
	injectedTotal int64
	totalFlits    int64
}

// Cycle implements engine.Driver: each node offers one packet per cycle
// until its quota is met; the source queue and network backpressure pace
// actual injection, so the phase time measures sustainable throughput.
func (d *barrierDriver) Cycle(now int64) {
	cfg := d.cfg
	for node := 0; node < d.n; node++ {
		if d.sent[node] < cfg.B && d.net.SourceQueueLen(node) < 2*cfg.Sizes.Sample(d.rng) {
			size := cfg.Sizes.Sample(d.rng)
			dst := cfg.Pattern.Dest(d.rng, node, d.n)
			p := d.net.NewPacket(node, dst, size, router.KindData)
			p.Class = cfg.Class
			d.net.Send(p)
			d.totalFlits += int64(size)
			d.sent[node]++
			d.injected++
			d.injectedTotal++
		}
	}
}

// Done implements engine.Driver and advances the phase state machine.
func (d *barrierDriver) Done(now int64) bool {
	if d.injected == d.n*d.cfg.B && d.arrived == d.injected && d.net.Quiescent() {
		d.res.PhaseRuntime = append(d.res.PhaseRuntime, now-d.phaseStart)
		d.phase++
		d.phaseStart = now
		for i := range d.sent {
			d.sent[i] = 0
		}
		d.arrived, d.injected = 0, 0
		if d.phase == d.cfg.Phases {
			return true
		}
	}
	return false
}

// Idle implements engine.Driver. Barrier phases are never idle: injection
// is backpressure-paced, and the moment the last flit drains the phase is
// done, so there is no empty stretch to fast-forward over.
func (d *barrierDriver) Idle(int64) bool { return false }

// NextEvent implements engine.Driver.
func (d *barrierDriver) NextEvent(int64) int64 { return engine.NoEvent }
