package closedloop

import (
	"fmt"

	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/sim"
	"noceval/internal/traffic"
)

// BarrierConfig describes a closed-loop run with inter-node dependency
// (§II-B2): each node injects b packets as fast as the network accepts
// them, and a phase completes only when every injected packet has arrived —
// a global barrier. This is the barrier/burst-synchronized model of the
// prior work the paper cites, and it essentially measures network
// throughput.
type BarrierConfig struct {
	Net     network.Config
	Pattern traffic.Pattern
	Sizes   traffic.SizeDist

	// B is the number of packets each node sends per phase.
	B int
	// Phases is the number of barrier-separated phases (default 1).
	Phases int

	MaxCycles int64
	Seed      uint64
}

// BarrierResult summarizes a barrier-model run.
type BarrierResult struct {
	// Runtime is the total cycles to complete all phases.
	Runtime int64
	// PhaseRuntime is the duration of each phase.
	PhaseRuntime []int64
	// Throughput is flits/cycle/node over the whole run.
	Throughput float64
	Completed  bool
}

// RunBarrier executes a barrier-model simulation.
func RunBarrier(cfg BarrierConfig) (*BarrierResult, error) {
	if cfg.B < 1 {
		return nil, fmt.Errorf("closedloop: barrier batch size B must be >= 1, got %d", cfg.B)
	}
	if cfg.Phases == 0 {
		cfg.Phases = 1
	}
	if cfg.Sizes == nil {
		cfg.Sizes = traffic.FixedSize(1)
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.Uniform{}
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50_000_000
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}

	net := network.New(cfg.Net)
	n := net.Nodes()
	rng := sim.NewRNG(cfg.Seed ^ 0x1d8e4e27c47d124f)

	var totalFlits int64
	arrived := 0
	net.OnReceive = func(now int64, p *router.Packet) { arrived++ }

	res := &BarrierResult{}
	for phase := 0; phase < cfg.Phases; phase++ {
		phaseStart := net.Now()
		sent := make([]int, n)
		arrived = 0
		injected := 0
		for {
			if net.Now() >= cfg.MaxCycles {
				res.Runtime = net.Now()
				return res, nil // Completed stays false
			}
			// Each node offers one packet per cycle until its quota is
			// met; the source queue and network backpressure pace actual
			// injection, so the phase time measures sustainable throughput.
			for node := 0; node < n; node++ {
				if sent[node] < cfg.B && net.SourceQueueLen(node) < 2*cfg.Sizes.Sample(rng) {
					size := cfg.Sizes.Sample(rng)
					dst := cfg.Pattern.Dest(rng, node, n)
					net.Send(net.NewPacket(node, dst, size, router.KindData))
					totalFlits += int64(size)
					sent[node]++
					injected++
				}
			}
			net.Step()
			if injected == n*cfg.B && arrived == injected && net.Quiescent() {
				break
			}
		}
		res.PhaseRuntime = append(res.PhaseRuntime, net.Now()-phaseStart)
	}
	res.Completed = true
	res.Runtime = net.Now()
	if res.Runtime > 0 {
		res.Throughput = float64(totalFlits) / float64(res.Runtime) / float64(n)
	}
	return res, nil
}
