package topology

import "testing"

// checkCover fails unless the tiles are non-empty, contiguous, ascending,
// and cover [0, N) exactly — i.e. every router lands in exactly one tile.
func checkCover(t *testing.T, topo *Topology, tiles []Tile) {
	t.Helper()
	if len(tiles) == 0 {
		t.Fatal("no tiles")
	}
	next := 0
	for i, tl := range tiles {
		if tl.Len() <= 0 {
			t.Fatalf("tile %d is empty: %+v", i, tl)
		}
		if tl.Lo != next {
			t.Fatalf("tile %d starts at %d, want %d (gap or overlap)", i, tl.Lo, next)
		}
		next = tl.Hi
	}
	if next != topo.N {
		t.Fatalf("tiles end at %d, want N=%d", next, topo.N)
	}
}

func TestPartitionCoversEveryRouterOnce(t *testing.T) {
	topos := []*Topology{
		NewMesh(8, 8), NewMesh(16, 16), NewTorus(8, 8), NewRing(64), NewMesh(4, 4),
	}
	for _, topo := range topos {
		for _, shards := range []int{1, 2, 3, 4, 7, 8} {
			tiles := topo.Partition(shards)
			checkCover(t, topo, tiles)
			if len(tiles) > shards {
				t.Errorf("%s shards=%d: got %d tiles", topo.Name, shards, len(tiles))
			}
		}
	}
}

func TestPartitionSnapsToRows(t *testing.T) {
	topo := NewMesh(8, 8)
	for _, shards := range []int{2, 3, 4, 8} {
		for i, tl := range topo.Partition(shards) {
			if tl.Lo%topo.K[0] != 0 || tl.Hi%topo.K[0] != 0 {
				t.Errorf("mesh8x8 shards=%d tile %d = %+v does not align to rows of %d",
					shards, i, tl, topo.K[0])
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	topo := NewMesh(16, 16)
	tiles := topo.Partition(4)
	if len(tiles) != 4 {
		t.Fatalf("got %d tiles, want 4", len(tiles))
	}
	for i, tl := range tiles {
		if tl.Len() != topo.N/4 {
			t.Errorf("tile %d holds %d routers, want %d", i, tl.Len(), topo.N/4)
		}
	}
}

// Cross-tile links must all carry delay >= 1 for the conservative-lookahead
// barrier to be sound. Mesh channels are 1 cycle, torus channels 2.
func TestPartitionCrossDelay(t *testing.T) {
	cases := []struct {
		topo *Topology
		want int64
	}{
		{NewMesh(8, 8), 1},
		{NewTorus(8, 8), 2},
		{NewRing(16), 1},
	}
	for _, c := range cases {
		tiles := c.topo.Partition(4)
		if got := c.topo.MinCrossDelay(tiles); got != c.want {
			t.Errorf("%s: MinCrossDelay = %d, want %d", c.topo.Name, got, c.want)
		}
		if got := c.topo.MinCrossDelay(c.topo.Partition(1)); got != 0 {
			t.Errorf("%s: single tile should have no cross links, got min delay %d", c.topo.Name, got)
		}
	}
}

// Degenerate shapes: a 1xN-style ring splits at arbitrary boundaries, and
// asking for more shards than rows (or routers) clamps instead of
// producing empty tiles.
func TestPartitionDegenerate(t *testing.T) {
	ring := NewRing(5)
	tiles := ring.Partition(8)
	checkCover(t, ring, tiles)
	if len(tiles) != 5 {
		t.Errorf("ring5 with 8 shards: got %d tiles, want 5 (one per router)", len(tiles))
	}

	mesh := NewMesh(4, 2) // 2 rows of 4: at most 2 row-aligned tiles
	tiles = mesh.Partition(8)
	checkCover(t, mesh, tiles)
	if len(tiles) != 2 {
		t.Errorf("mesh4x2 with 8 shards: got %d tiles, want 2", len(tiles))
	}

	if got := len(mesh.Partition(0)); got != 1 {
		t.Errorf("shards=0: got %d tiles, want 1", got)
	}
	one := mesh.Partition(1)
	if len(one) != 1 || one[0] != (Tile{Lo: 0, Hi: mesh.N}) {
		t.Errorf("shards=1: got %+v, want one full-range tile", one)
	}
}
