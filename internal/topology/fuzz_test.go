package topology_test

// Fuzz target for the topology name parser. ByName consumes untrusted
// strings (CLI flags, JSON experiment specs) and its output feeds both
// the simulator and the experiment-cache keys, so it must never panic,
// never build an over-sized graph, and always produce a structurally
// sound, reciprocal link table.

import (
	"testing"

	"noceval/internal/topology"
)

func FuzzByName(f *testing.F) {
	for _, seed := range []string{
		"mesh8x8", "torus8x8", "ring64", "mesh4x4", "mesh16x16",
		"mesh1x1", "mesh0x0", "mesh-2x4", "mesh08x8", "mesh2x2junk",
		"ring1", "ring99999999", "torus3x", "mesh", "hypercube4", "",
		"mesh999999x999999", "ring-5", "mesh2x2\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		topo, err := topology.ByName(name)
		if err != nil {
			return
		}
		// Structural soundness of anything the parser accepts.
		if topo.N < 1 || topo.N > topology.MaxNodes {
			t.Fatalf("%q: node count %d out of range", name, topo.N)
		}
		n := 1
		for _, k := range topo.K {
			if k < 2 {
				t.Fatalf("%q: dimension size %d < 2 accepted", name, k)
			}
			n *= k
		}
		if n != topo.N || topo.Dims != len(topo.K) || topo.Radix != 2*topo.Dims {
			t.Fatalf("%q: inconsistent shape N=%d K=%v Dims=%d Radix=%d", name, topo.N, topo.K, topo.Dims, topo.Radix)
		}
		// Every connected link must be in range and reciprocal: the
		// destination's output port at our input port leads straight back.
		for node := 0; node < topo.N; node++ {
			for port := 0; port < topo.Radix; port++ {
				l := topo.LinkAt(node, port)
				if !l.Connected() {
					continue
				}
				if l.To < 0 || l.To >= topo.N || l.ToPort < 0 || l.ToPort >= topo.Radix {
					t.Fatalf("%q: link %d.%d out of range: %+v", name, node, port, l)
				}
				back := topo.LinkAt(l.To, l.ToPort)
				if back.To != node || back.ToPort != port {
					t.Fatalf("%q: link %d.%d not reciprocal: %+v / %+v", name, node, port, l, back)
				}
			}
		}
	})
}
