package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh(8, 8)
	if m.N != 64 || m.Radix != 4 || m.Dims != 2 {
		t.Fatalf("mesh geometry: %+v", m)
	}
	if m.LocalPort() != 4 || m.Ports() != 5 {
		t.Error("port numbering broken")
	}
	// Corner node 0 has exactly two connected ports (+x, +y).
	connected := 0
	for p := 0; p < m.Radix; p++ {
		if m.LinkAt(0, p).Connected() {
			connected++
		}
	}
	if connected != 2 {
		t.Errorf("corner has %d connected ports, want 2", connected)
	}
	// Center node has four.
	center := m.NodeAt([]int{4, 4})
	connected = 0
	for p := 0; p < m.Radix; p++ {
		if m.LinkAt(center, p).Connected() {
			connected++
		}
	}
	if connected != 4 {
		t.Errorf("center has %d connected ports, want 4", connected)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	for _, topo := range []*Topology{NewMesh(8, 8), NewTorus(4, 4), NewRing(16), NewMesh(16, 16)} {
		for n := 0; n < topo.N; n++ {
			if got := topo.NodeAt(topo.Coord(n)); got != n {
				t.Fatalf("%s: NodeAt(Coord(%d)) = %d", topo.Name, n, got)
			}
			for d := 0; d < topo.Dims; d++ {
				if topo.CoordOf(n, d) != topo.Coord(n)[d] {
					t.Fatalf("%s: CoordOf(%d, %d) mismatch", topo.Name, n, d)
				}
			}
		}
	}
}

func TestLinkReciprocity(t *testing.T) {
	// Property: following a link and its ToPort back returns to the start.
	for _, topo := range []*Topology{NewMesh(8, 8), NewTorus(8, 8), NewRing(64)} {
		for n := 0; n < topo.N; n++ {
			for p := 0; p < topo.Radix; p++ {
				l := topo.LinkAt(n, p)
				if !l.Connected() {
					continue
				}
				// The reverse link leaves the neighbor on the opposite
				// direction port of the same dimension.
				back := topo.LinkAt(l.To, p^1)
				if back.To != n {
					t.Fatalf("%s: link %d.%d -> %d not reciprocated (%d)", topo.Name, n, p, l.To, back.To)
				}
				if back.ToPort != p {
					t.Fatalf("%s: reverse ToPort = %d, want %d", topo.Name, back.ToPort, p)
				}
			}
		}
	}
}

func TestMeshDistance(t *testing.T) {
	m := NewMesh(8, 8)
	if d := m.Distance(0, 63); d != 14 {
		t.Errorf("corner distance = %d, want 14", d)
	}
	if d := m.Distance(0, 0); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if m.Diameter() != 14 {
		t.Errorf("diameter = %d", m.Diameter())
	}
}

func TestTorusDistanceUsesWraparound(t *testing.T) {
	to := NewTorus(8, 8)
	if d := to.Distance(0, 7); d != 1 {
		t.Errorf("wrap distance = %d, want 1", d)
	}
	if to.Diameter() != 8 {
		t.Errorf("torus diameter = %d, want 8", to.Diameter())
	}
	r := NewRing(64)
	if d := r.Distance(0, 63); d != 1 {
		t.Errorf("ring wrap distance = %d", d)
	}
	if r.Diameter() != 32 {
		t.Errorf("ring diameter = %d, want 32", r.Diameter())
	}
}

func TestDistanceSymmetry(t *testing.T) {
	for _, topo := range []*Topology{NewMesh(8, 8), NewTorus(8, 8), NewRing(32)} {
		err := quick.Check(func(a, b int) bool {
			a, b = abs(a)%topo.N, abs(b)%topo.N
			return topo.Distance(a, b) == topo.Distance(b, a)
		}, &quick.Config{MaxCount: 200})
		if err != nil {
			t.Errorf("%s: %v", topo.Name, err)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAverageDistance(t *testing.T) {
	// k-ary 2-mesh uniform (self included): 2 * (k^2-1)/(3k) per dimension pair.
	m := NewMesh(8, 8)
	want := 2.0 * 63.0 / 24.0 // 5.25
	if got := m.AverageDistance(); got < want-0.001 || got > want+0.001 {
		t.Errorf("mesh avg distance = %v, want %v", got, want)
	}
	// Torus: 2 * k/4 = 4 for k=8.
	to := NewTorus(8, 8)
	if got := to.AverageDistance(); got < 3.9 || got > 4.1 {
		t.Errorf("torus avg distance = %v, want ~4", got)
	}
}

func TestWrapLinksMarked(t *testing.T) {
	to := NewTorus(4, 4)
	wraps := 0
	for n := 0; n < to.N; n++ {
		for p := 0; p < to.Radix; p++ {
			if to.LinkAt(n, p).Wrap {
				wraps++
			}
		}
	}
	// 4 rows x 2 directions + 4 cols x 2 directions = 16 wraparound links.
	if wraps != 16 {
		t.Errorf("wrap links = %d, want 16", wraps)
	}
	m := NewMesh(4, 4)
	for n := 0; n < m.N; n++ {
		for p := 0; p < m.Radix; p++ {
			if m.LinkAt(n, p).Wrap {
				t.Fatal("mesh has a wrap link")
			}
		}
	}
}

func TestTorusLinkDelay(t *testing.T) {
	to := NewTorus(8, 8)
	if d := to.LinkAt(0, PlusPort(0)).Delay; d != 2 {
		t.Errorf("folded torus link delay = %d, want 2", d)
	}
	m := NewMesh(8, 8)
	if d := m.LinkAt(0, PlusPort(0)).Delay; d != 1 {
		t.Errorf("mesh link delay = %d, want 1", d)
	}
}

func TestDirTo(t *testing.T) {
	m := NewMesh(8, 8)
	if dir, hops := m.DirTo(0, 2, 5); dir != 1 || hops != 3 {
		t.Errorf("mesh DirTo(2,5) = %d,%d", dir, hops)
	}
	if dir, hops := m.DirTo(0, 5, 2); dir != -1 || hops != 3 {
		t.Errorf("mesh DirTo(5,2) = %d,%d", dir, hops)
	}
	to := NewTorus(8, 8)
	if dir, hops := to.DirTo(0, 0, 6); dir != -1 || hops != 2 {
		t.Errorf("torus DirTo(0,6) = %d,%d, want wrap -1,2", dir, hops)
	}
	// Tie (distance 4 both ways) resolves to plus deterministically.
	if dir, hops := to.DirTo(0, 0, 4); dir != 1 || hops != 4 {
		t.Errorf("torus tie DirTo(0,4) = %d,%d, want +1,4", dir, hops)
	}
}

func TestBisection(t *testing.T) {
	if b := NewMesh(8, 8).BisectionChannels(); b != 16 {
		t.Errorf("mesh bisection = %d, want 16", b)
	}
	if b := NewTorus(8, 8).BisectionChannels(); b != 32 {
		t.Errorf("torus bisection = %d, want 32", b)
	}
}

func TestByName(t *testing.T) {
	for name, wantN := range map[string]int{
		"mesh8x8":   64,
		"mesh16x16": 256,
		"torus4x4":  16,
		"ring64":    64,
	} {
		topo, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if topo.N != wantN {
			t.Errorf("%s: N = %d, want %d", name, topo.N, wantN)
		}
	}
	for _, bad := range []string{"hypercube8", "mesh8", "ringX", ""} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestPortHelpers(t *testing.T) {
	if PlusPort(1) != 2 || MinusPort(1) != 3 || PortDim(3) != 1 {
		t.Error("port helpers broken")
	}
}
