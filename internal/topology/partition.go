package topology

// Spatial partitioning for the sharded cycle loop. A partition splits the
// router id space into contiguous tiles that the network steps on separate
// workers; the conservative-lookahead argument (DESIGN §12) needs every
// link crossing a tile boundary to carry at least one cycle of delay, so
// that a cycle's parallel phases never observe same-cycle writes from a
// neighbouring tile.

// Tile is a contiguous range of router ids [Lo, Hi) assigned to one
// simulation shard. Contiguity matters twice: per-tile bitsets index
// routers by id-Lo, and visiting tiles in ascending order reproduces the
// global ascending router order of the sequential cycle loop exactly.
type Tile struct {
	Lo, Hi int
}

// Len returns the number of routers in the tile.
func (t Tile) Len() int { return t.Hi - t.Lo }

// Contains reports whether router id falls inside the tile.
func (t Tile) Contains(id int) bool { return id >= t.Lo && id < t.Hi }

// Partition splits the topology's routers into at most shards contiguous
// tiles of near-equal size. For grids of two or more dimensions the
// boundaries snap to whole rows (multiples of K[0], the stride-1
// dimension), so only the links of the boundary rows cross tiles; 1D
// topologies split anywhere. Fewer tiles come back when the topology has
// too few rows to populate shards of at least one row each — every
// returned tile is non-empty and their union covers [0, N) exactly.
// shards < 1 is treated as 1.
func (t *Topology) Partition(shards int) []Tile {
	if shards < 1 {
		shards = 1
	}
	row := 1
	if t.Dims >= 2 {
		row = t.K[0]
	}
	units := t.N / row // whole rows; N is divisible by K[0] for grids
	if shards > units {
		shards = units
	}
	tiles := make([]Tile, 0, shards)
	lo := 0
	for i := 1; i <= shards; i++ {
		hi := units * i / shards * row
		if i == shards {
			hi = t.N
		}
		if hi > lo {
			tiles = append(tiles, Tile{Lo: lo, Hi: hi})
			lo = hi
		}
	}
	return tiles
}

// MinCrossDelay returns the smallest delay of any connected link whose
// endpoints lie in different tiles, or 0 when no link crosses a tile
// boundary (a single tile, or disconnected tiles). The sharded network
// asserts the result is >= 1 before stepping tiles concurrently: a
// zero-delay cross link would let one tile's compute phase feed another
// tile within the same cycle, which the barrier scheme cannot order.
func (t *Topology) MinCrossDelay(tiles []Tile) int64 {
	tileOf := make([]int, t.N)
	for ti, tl := range tiles {
		for id := tl.Lo; id < tl.Hi; id++ {
			tileOf[id] = ti
		}
	}
	var min int64
	for id := 0; id < t.N; id++ {
		for p := 0; p < t.Radix; p++ {
			link := t.LinkAt(id, p)
			if !link.Connected() || tileOf[link.To] == tileOf[id] {
				continue
			}
			if min == 0 || link.Delay < min {
				min = link.Delay
			}
		}
	}
	return min
}
