// Package topology builds the network graphs evaluated in the paper:
// k-ary 2-cube meshes (8x8, 16x16, 4x4), folded tori, and rings, all members
// of the k-ary n-cube family.
//
// Port convention: a router in an n-dimensional network has 2n network
// ports; port 2d is the "plus" direction of dimension d and port 2d+1 the
// "minus" direction. Meshes leave edge ports unconnected. Injection and
// ejection use one extra local port with index Radix (see LocalPort).
package topology

import (
	"fmt"
	"strings"
)

// Kind identifies the topology family.
type Kind int

// Topology families evaluated in the paper.
const (
	MeshKind Kind = iota
	TorusKind
	RingKind
)

// String returns the lower-case family name.
func (k Kind) String() string {
	switch k {
	case MeshKind:
		return "mesh"
	case TorusKind:
		return "torus"
	case RingKind:
		return "ring"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Link is one unidirectional channel leaving a router port.
type Link struct {
	To     int   // destination node, or -1 when the port is unconnected
	ToPort int   // input port index at the destination node
	Delay  int64 // channel traversal latency in cycles
	Dim    int   // dimension this channel travels in
	Wrap   bool  // true for wraparound (dateline-crossing) channels
}

// Connected reports whether the link leads anywhere.
func (l Link) Connected() bool { return l.To >= 0 }

// Topology is an immutable network graph.
type Topology struct {
	Kind  Kind
	Name  string
	N     int   // number of nodes (= routers; one terminal per router)
	Dims  int   // number of dimensions
	K     []int // nodes per dimension, len == Dims
	Radix int   // network ports per router (2*Dims)

	links [][]Link // links[node][port]
	// coords caches every node's per-dimension coordinate (row-major,
	// node*Dims+dim): routing consults coordinates for each head flit at
	// each hop, and the divide chain in the direct computation is
	// measurable there.
	coords []int32
}

// LocalPort returns the index of the injection/ejection port, one past the
// last network port.
func (t *Topology) LocalPort() int { return t.Radix }

// Ports returns the total number of router ports including the local port.
func (t *Topology) Ports() int { return t.Radix + 1 }

// LinkAt returns the link leaving the given node and network port.
func (t *Topology) LinkAt(node, port int) Link { return t.links[node][port] }

// PlusPort returns the output port for the plus direction of dimension d.
func PlusPort(d int) int { return 2 * d }

// MinusPort returns the output port for the minus direction of dimension d.
func MinusPort(d int) int { return 2*d + 1 }

// PortDim returns the dimension a network port belongs to.
func PortDim(port int) int { return port / 2 }

// Coord returns the per-dimension coordinates of a node.
func (t *Topology) Coord(node int) []int {
	c := make([]int, t.Dims)
	for d := 0; d < t.Dims; d++ {
		c[d] = node % t.K[d]
		node /= t.K[d]
	}
	return c
}

// CoordOf returns the coordinate of node in one dimension without
// allocating.
func (t *Topology) CoordOf(node, dim int) int {
	if t.coords != nil {
		return int(t.coords[node*t.Dims+dim])
	}
	for d := 0; d < dim; d++ {
		node /= t.K[d]
	}
	return node % t.K[dim]
}

// NodeAt returns the node index for the given coordinates.
func (t *Topology) NodeAt(coord []int) int {
	node, stride := 0, 1
	for d := 0; d < t.Dims; d++ {
		node += coord[d] * stride
		stride *= t.K[d]
	}
	return node
}

// wrap reports whether this topology has wraparound channels.
func (t *Topology) wrapped() bool { return t.Kind != MeshKind }

// DirTo returns the hop direction and count from coordinate a to b in
// dimension dim: dir is +1, -1 or 0, hops is the number of channel
// traversals in that direction. On a wrapped topology the shorter way
// around is chosen; exact ties (distance k/2 both ways) split by source
// parity — deterministic for reproducibility, yet balanced across the two
// directions so tied pairs do not all pile onto the plus channels.
func (t *Topology) DirTo(dim, a, b int) (dir, hops int) {
	if a == b {
		return 0, 0
	}
	k := t.K[dim]
	if !t.wrapped() {
		if b > a {
			return +1, b - a
		}
		return -1, a - b
	}
	plus := (b - a + k) % k
	minus := (a - b + k) % k
	switch {
	case plus < minus:
		return +1, plus
	case minus < plus:
		return -1, minus
	case a%2 == 0:
		return +1, plus
	default:
		return -1, minus
	}
}

// Distance returns the minimal hop count between two nodes.
func (t *Topology) Distance(a, b int) int {
	total := 0
	for d := 0; d < t.Dims; d++ {
		_, h := t.DirTo(d, t.CoordOf(a, d), t.CoordOf(b, d))
		total += h
	}
	return total
}

// AverageDistance returns the mean minimal hop count over all ordered node
// pairs, including self pairs (distance 0), matching the uniform-random
// traffic model used throughout the paper.
func (t *Topology) AverageDistance() float64 {
	sum := 0
	for a := 0; a < t.N; a++ {
		for b := 0; b < t.N; b++ {
			sum += t.Distance(a, b)
		}
	}
	return float64(sum) / float64(t.N*t.N)
}

// Diameter returns the maximum minimal hop count over all node pairs.
func (t *Topology) Diameter() int {
	max := 0
	for a := 0; a < t.N; a++ {
		for b := 0; b < t.N; b++ {
			if d := t.Distance(a, b); d > max {
				max = d
			}
		}
	}
	return max
}

// BisectionChannels returns the number of unidirectional channels crossing
// the bisection of dimension 0.
func (t *Topology) BisectionChannels() int {
	k := t.K[0]
	other := t.N / k
	if t.wrapped() {
		return 4 * other // two cut positions, two directions each
	}
	return 2 * other // one cut, two directions
}

// String describes the topology, e.g. "8x8 mesh".
func (t *Topology) String() string { return t.Name }

// newKAryNCube builds a k-ary n-cube. wrap selects torus-style wraparound
// channels; wrapDelay is the channel latency of every link (folded tori use
// 2-cycle channels per the paper, meshes 1-cycle).
func newKAryNCube(kind Kind, name string, k []int, wrap bool, delay int64) *Topology {
	n := 1
	for _, kd := range k {
		if kd < 2 {
			panic(fmt.Sprintf("topology: dimension size %d < 2", kd))
		}
		n *= kd
	}
	t := &Topology{
		Kind:  kind,
		Name:  name,
		N:     n,
		Dims:  len(k),
		K:     append([]int(nil), k...),
		Radix: 2 * len(k),
	}
	t.links = make([][]Link, n)
	t.coords = make([]int32, n*t.Dims)
	for node := 0; node < n; node++ {
		for d, c := range t.Coord(node) {
			t.coords[node*t.Dims+d] = int32(c)
		}
	}
	for node := 0; node < n; node++ {
		t.links[node] = make([]Link, t.Radix)
		coord := t.Coord(node)
		for d := 0; d < t.Dims; d++ {
			kd := t.K[d]
			// Plus direction.
			plus := Link{To: -1, Dim: d, Delay: delay}
			if coord[d]+1 < kd {
				nc := append([]int(nil), coord...)
				nc[d]++
				plus = Link{To: t.NodeAt(nc), ToPort: MinusPort(d), Dim: d, Delay: delay}
			} else if wrap {
				nc := append([]int(nil), coord...)
				nc[d] = 0
				plus = Link{To: t.NodeAt(nc), ToPort: MinusPort(d), Dim: d, Delay: delay, Wrap: true}
			}
			t.links[node][PlusPort(d)] = plus
			// Minus direction.
			minus := Link{To: -1, Dim: d, Delay: delay}
			if coord[d] > 0 {
				nc := append([]int(nil), coord...)
				nc[d]--
				minus = Link{To: t.NodeAt(nc), ToPort: PlusPort(d), Dim: d, Delay: delay}
			} else if wrap {
				nc := append([]int(nil), coord...)
				nc[d] = kd - 1
				minus = Link{To: t.NodeAt(nc), ToPort: PlusPort(d), Dim: d, Delay: delay, Wrap: true}
			}
			t.links[node][MinusPort(d)] = minus
		}
	}
	return t
}

// NewMesh returns a kx x ky 2D mesh with 1-cycle channels.
func NewMesh(kx, ky int) *Topology {
	return newKAryNCube(MeshKind, fmt.Sprintf("%dx%d mesh", kx, ky), []int{kx, ky}, false, 1)
}

// NewTorus returns a kx x ky folded 2D torus. Folding doubles the physical
// channel length, so every channel has 2-cycle latency (the paper's source
// of the torus's higher zero-load latency).
func NewTorus(kx, ky int) *Topology {
	return newKAryNCube(TorusKind, fmt.Sprintf("%dx%d torus", kx, ky), []int{kx, ky}, true, 2)
}

// NewRing returns an n-node bidirectional ring (an n-ary 1-cube) with
// 1-cycle channels.
func NewRing(n int) *Topology {
	return newKAryNCube(RingKind, fmt.Sprintf("%d-node ring", n), []int{n}, true, 1)
}

// MaxNodes bounds the size of topologies ByName will construct, so an
// untrusted spec string (a config file, a fuzzer) cannot demand a
// multi-gigabyte link table.
const MaxNodes = 1 << 16

// checkDims validates parsed dimension sizes: every dimension must hold
// at least 2 nodes (a 1-wide dimension has no channels and the
// constructors reject it) and the node count must stay within MaxNodes.
func checkDims(name string, ks ...int) error {
	n := 1
	for _, k := range ks {
		if k < 2 {
			return fmt.Errorf("topology: %q: dimension size %d < 2", name, k)
		}
		if n > MaxNodes/k {
			return fmt.Errorf("topology: %q exceeds %d nodes", name, MaxNodes)
		}
		n *= k
	}
	return nil
}

// ByName constructs a topology from a name like "mesh8x8", "torus8x8" or
// "ring64". Only canonical spellings are accepted: the parsed values must
// reproduce the input exactly, which rejects trailing junk, signs, and
// non-canonical digits ("mesh08x8") that would otherwise alias a valid
// name — names feed cache keys, so two spellings of one topology must not
// hash apart, nor two topologies collide on one spelling.
func ByName(name string) (*Topology, error) {
	switch {
	case strings.HasPrefix(name, "mesh"):
		var kx, ky int
		if _, err := fmt.Sscanf(name, "mesh%dx%d", &kx, &ky); err != nil || name != fmt.Sprintf("mesh%dx%d", kx, ky) {
			return nil, fmt.Errorf("topology: bad mesh spec %q", name)
		}
		if err := checkDims(name, kx, ky); err != nil {
			return nil, err
		}
		return NewMesh(kx, ky), nil
	case strings.HasPrefix(name, "torus"):
		var kx, ky int
		if _, err := fmt.Sscanf(name, "torus%dx%d", &kx, &ky); err != nil || name != fmt.Sprintf("torus%dx%d", kx, ky) {
			return nil, fmt.Errorf("topology: bad torus spec %q", name)
		}
		if err := checkDims(name, kx, ky); err != nil {
			return nil, err
		}
		return NewTorus(kx, ky), nil
	case strings.HasPrefix(name, "ring"):
		var n int
		if _, err := fmt.Sscanf(name, "ring%d", &n); err != nil || name != fmt.Sprintf("ring%d", n) {
			return nil, fmt.Errorf("topology: bad ring spec %q", name)
		}
		if err := checkDims(name, n); err != nil {
			return nil, err
		}
		return NewRing(n), nil
	default:
		return nil, fmt.Errorf("topology: unknown topology %q", name)
	}
}
