package cmp_test

import (
	"testing"

	"noceval/internal/cmp"
	"noceval/internal/workload"
)

// mlpConfig returns a Table II config with the given load MLP and
// dependency fraction.
func mlpConfig(mlp int, dep float64) cmp.Config {
	cfg := cmp.DefaultConfig()
	cfg.MaxLoadMLP = mlp
	cfg.LoadDepFrac = dep
	return cfg
}

func TestMLPDefaultMatchesBlockingLoads(t *testing.T) {
	// MaxLoadMLP=1 with LoadDepFrac=1 must behave exactly like the
	// original blocking-load core: same cycle counts.
	p := shortProfile("canneal")
	a := runSystem(t, p, cmp.NewIdealFabric(), cmp.DefaultConfig())
	b := runSystem(t, p, cmp.NewIdealFabric(), mlpConfig(1, 1))
	if a.Cycles != b.Cycles {
		t.Errorf("default config (%d cycles) differs from explicit blocking config (%d)", a.Cycles, b.Cycles)
	}
}

func TestHigherMLPSpeedsUpMemoryBoundRuns(t *testing.T) {
	// fft streams through memory: overlapping its load misses must cut
	// runtime substantially, like raising m in the batch model (§II-B1).
	p := shortProfile("fft")
	blocking := runSystem(t, p, table2Net(1, 40), mlpConfig(1, 1))
	mlp4 := runSystem(t, p, table2Net(1, 40), mlpConfig(4, 0.3))
	if mlp4.Cycles >= blocking.Cycles {
		t.Errorf("MLP=4 (%d cycles) not faster than blocking (%d)", mlp4.Cycles, blocking.Cycles)
	}
}

func TestMLPRaisesNetworkPressure(t *testing.T) {
	// Overlapped misses raise the injection rate (NAR), which is exactly
	// why the paper's m parameter changes which network wins.
	p := shortProfile("canneal")
	blocking := runSystem(t, p, cmp.NewIdealFabric(), mlpConfig(1, 1))
	mlp8 := runSystem(t, p, cmp.NewIdealFabric(), mlpConfig(8, 0.2))
	if mlp8.NAR <= blocking.NAR {
		t.Errorf("MLP=8 NAR %.4f not above blocking NAR %.4f", mlp8.NAR, blocking.NAR)
	}
}

func TestMLPRunsCompleteOnRealNetwork(t *testing.T) {
	for _, mlp := range []int{2, 8} {
		for _, dep := range []float64{0.1, 0.5} {
			p := shortProfile("lu")
			cfg := mlpConfig(mlp, dep)
			cfg.TimerPeriod = p.TimerPeriod(workload.Clock75MHz)
			cfg.TimerHandlerInsts = p.TimerHandlerInsts
			res := runSystem(t, p, table2Net(2, 41), cfg)
			if res.TotalFlits == 0 {
				t.Errorf("mlp=%d dep=%.1f: no traffic", mlp, dep)
			}
		}
	}
}

func TestMLPDeterminism(t *testing.T) {
	p := shortProfile("barnes")
	a := runSystem(t, p, table2Net(1, 42), mlpConfig(4, 0.3))
	b := runSystem(t, p, table2Net(1, 42), mlpConfig(4, 0.3))
	if a.Cycles != b.Cycles || a.TotalFlits != b.TotalFlits {
		t.Errorf("non-deterministic MLP run: %d/%d vs %d/%d",
			a.Cycles, a.TotalFlits, b.Cycles, b.TotalFlits)
	}
}
