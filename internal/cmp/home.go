package cmp

import "container/heap"

// dirState is the directory's view of a line.
type dirState uint8

const (
	dInvalid dirState = iota
	dShared
	dModified
)

// dirEntry is the full-map directory state of one line plus its transient
// transaction state. The directory serializes transactions per line: while
// busy, newly arriving requests are deferred.
type dirEntry struct {
	state   dirState
	sharers uint64 // bitmask, tiles <= 64
	owner   int

	busy      bool
	reqType   MsgType
	requester int
	reqKernel bool

	acksLeft  int
	dataReady bool
	// needOwner is set while waiting for the previous owner's response to
	// an Inv/Downgrade.
	needOwner bool

	// staleWBFrom drops one in-flight Writeback from the given node: set
	// when a node re-requests a line whose M copy it just evicted.
	staleWBFrom int

	deferred []deferredMsg
}

type deferredMsg struct {
	msg Msg
	src int
}

// homeEvent is a scheduled L2/memory access completion.
type homeEvent struct {
	at   int64
	tile int
	line uint64
}

type homeEventHeap []homeEvent

func (h homeEventHeap) Len() int           { return len(h) }
func (h homeEventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h homeEventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *homeEventHeap) Push(x any)        { *h = append(*h, x.(homeEvent)) }
func (h *homeEventHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// DebugL2Miss, when non-nil, observes every L2-missing line address
// (debugging hook; nil in production).
var DebugL2Miss func(line uint64)

// home is one tile's shared-L2 bank with its directory slice.
type home struct {
	sys  *System
	tile int
	l2   *Cache
	dir  map[uint64]*dirEntry

	// L2 access statistics, split user/kernel by transaction class.
	l2Access [2]int64
	l2Miss   [2]int64
}

func newHome(sys *System, tile int, l2 *Cache) *home {
	return &home{sys: sys, tile: tile, l2: l2, dir: map[uint64]*dirEntry{}}
}

func (h *home) entry(line uint64) *dirEntry {
	e := h.dir[line]
	if e == nil {
		e = &dirEntry{owner: -1, staleWBFrom: -1}
		h.dir[line] = e
	}
	return e
}

// handle processes one protocol message arriving at this home tile.
func (h *home) handle(m Msg, src int) {
	e := h.entry(m.Line)
	switch m.Type {
	case MsgGetS, MsgGetM:
		if e.busy {
			e.deferred = append(e.deferred, deferredMsg{msg: m, src: src})
			return
		}
		h.start(e, m, src)
	case MsgInvAck:
		if !e.busy {
			return // late ack from a silently evicted sharer; ignore
		}
		if e.needOwner && src == e.owner {
			// The owner lost the line (eviction or grant race) and has no
			// data: fall back to L2/memory for the data.
			e.needOwner = false
			h.fetchData(e, m.Line)
			h.tryComplete(e, m.Line)
			return
		}
		if e.acksLeft > 0 {
			e.acksLeft--
		}
		h.tryComplete(e, m.Line)
	case MsgWBData:
		// Data response from the previous owner to an Inv/Downgrade.
		if e.busy && e.needOwner && src == e.owner {
			e.needOwner = false
			e.dataReady = true
			h.l2.Insert(m.Line, Shared)
			h.tryComplete(e, m.Line)
			return
		}
		// Unsolicited data (e.g. race remnant): absorb like a writeback.
		h.writeback(e, m.Line, src)
	case MsgWriteback:
		if e.staleWBFrom == src {
			e.staleWBFrom = -1
			return
		}
		if e.busy && e.needOwner && src == e.owner {
			// The eviction raced with our Inv/Downgrade; use its data.
			e.needOwner = false
			e.dataReady = true
			h.l2.Insert(m.Line, Shared)
			h.tryComplete(e, m.Line)
			return
		}
		h.writeback(e, m.Line, src)
	}
}

// writeback retires an owner's spontaneous M eviction.
func (h *home) writeback(e *dirEntry, line uint64, src int) {
	if e.state == dModified && e.owner == src {
		e.state = dInvalid
		e.owner = -1
		e.sharers = 0
		h.l2.Insert(line, Shared)
	}
}

// start begins serving a GetS/GetM transaction.
func (h *home) start(e *dirEntry, m Msg, src int) {
	e.busy = true
	e.reqType = m.Type
	e.requester = m.Node
	e.reqKernel = m.Kernel
	e.acksLeft = 0
	e.dataReady = false
	e.needOwner = false

	if e.state == dModified && e.owner == e.requester {
		// The owner evicted the line and is re-requesting before its
		// writeback arrived; expect and drop that writeback.
		e.staleWBFrom = e.requester
		e.state = dInvalid
		e.owner = -1
	}

	switch {
	case e.state == dModified:
		e.needOwner = true
		if m.Type == MsgGetS {
			h.sys.send(h.tile, e.owner, Msg{Type: MsgDowngrade, Line: m.Line, Node: e.requester, Kernel: m.Kernel})
		} else {
			h.sys.send(h.tile, e.owner, Msg{Type: MsgInv, Line: m.Line, Node: e.requester, Kernel: m.Kernel})
		}
	case e.state == dShared && m.Type == MsgGetM:
		for t := 0; t < h.sys.tiles; t++ {
			if t == e.requester || e.sharers&(1<<uint(t)) == 0 {
				continue
			}
			e.acksLeft++
			h.sys.send(h.tile, t, Msg{Type: MsgInv, Line: m.Line, Node: e.requester, Kernel: m.Kernel})
		}
		h.fetchData(e, m.Line)
	default:
		h.fetchData(e, m.Line)
	}
	h.tryComplete(e, m.Line)
}

// fetchData schedules the L2 (or L2+memory) access that produces the data.
func (h *home) fetchData(e *dirEntry, line uint64) {
	cls := 0
	if e.reqKernel {
		cls = 1
	}
	h.l2Access[cls]++
	lat := h.sys.cfg.L2Latency
	if h.l2.Lookup(line) == Invalid {
		if DebugL2Miss != nil {
			DebugL2Miss(line)
		}
		h.l2Miss[cls]++
		lat += h.sys.cfg.MemLatency
		h.l2.Insert(line, Shared)
	}
	heap.Push(&h.sys.events, homeEvent{at: h.sys.fabric.Now() + lat, tile: h.tile, line: line})
}

// dataArrived is called when a scheduled L2/memory access completes.
func (h *home) dataArrived(line uint64) {
	e := h.dir[line]
	if e == nil || !e.busy {
		return
	}
	e.dataReady = true
	h.tryComplete(e, line)
}

// tryComplete finishes the transaction once all acks and the data are in,
// then starts the next deferred request, if any.
func (h *home) tryComplete(e *dirEntry, line uint64) {
	if !e.busy || e.needOwner || e.acksLeft > 0 || !e.dataReady {
		return
	}
	grant := Msg{Type: MsgData, Line: line, Node: e.requester, Kernel: e.reqKernel}
	if e.reqType == MsgGetM {
		grant.GrantM = true
		e.state = dModified
		e.owner = e.requester
		e.sharers = 1 << uint(e.requester)
	} else {
		if e.state == dModified {
			// Previous owner was downgraded to Shared.
			e.sharers = 1 << uint(e.owner)
			e.owner = -1
		}
		e.state = dShared
		e.sharers |= 1 << uint(e.requester)
	}
	h.sys.send(h.tile, e.requester, grant)
	e.busy = false
	if len(e.deferred) > 0 {
		next := e.deferred[0]
		e.deferred = e.deferred[1:]
		h.start(e, next.msg, next.src)
	}
}
