package cmp

import (
	"container/heap"
	"context"
	"fmt"

	"noceval/internal/engine"
	"noceval/internal/router"
	"noceval/internal/stats"
)

// Config describes a CMP system (defaults follow Table II).
type Config struct {
	Tiles int

	// Ctx, when non-nil, makes the run cancellable: the engine polls it at
	// fast-forward boundaries and every ~1k stepped cycles, and a
	// cancelled run returns with Result.Canceled set (and Completed
	// false).
	Ctx context.Context

	L1Size, L1Ways int
	L2SizePerTile  int
	L2Ways         int
	LineBytes      int

	L1Latency  int64
	L2Latency  int64
	MemLatency int64

	StoreBufferSize int

	// MaxLoadMLP bounds the memory-level parallelism of loads: how many
	// load misses may be outstanding per core. The default 1 models the
	// paper's in-order SPARC cores with blocking loads; larger values
	// model MSHR-equipped cores (§II-B1), the execution-side analog of
	// the batch model's m parameter.
	MaxLoadMLP int
	// LoadDepFrac is the probability that execution depends on an
	// outstanding load and must stall on use. 1 (the default via zero
	// value handling) makes every load blocking regardless of MaxLoadMLP.
	LoadDepFrac float64

	// TimerPeriod is the cycle interval between timer interrupts; zero
	// disables them. TimerHandlerInsts is the kernel handler length.
	TimerPeriod       int64
	TimerHandlerInsts int64

	MaxCycles int64

	// SampleInterval, when positive, records the injection-rate timeline
	// (Fig 21); CollectMatrix accumulates the traffic matrix (Fig 13b).
	SampleInterval int64
	CollectMatrix  bool
}

// DefaultConfig returns the Table II configuration: 16 tiles, 32KB 4-way
// L1s, 512KB L2 bank per tile, 64B lines, 2/10/300-cycle latencies.
func DefaultConfig() Config {
	return Config{
		Tiles:           16,
		L1Size:          32 * 1024,
		L1Ways:          4,
		L2SizePerTile:   512 * 1024,
		L2Ways:          8,
		LineBytes:       64,
		L1Latency:       2,
		L2Latency:       10,
		MemLatency:      300,
		StoreBufferSize: 8,
		MaxCycles:       200_000_000,
	}
}

// TimelineSample is one bucket of the injection-rate timeline, in flits
// per cycle summed over all tiles, split user/kernel.
type TimelineSample struct {
	Cycle      int64
	UserRate   float64
	KernelRate float64
}

// Result summarizes one execution-driven run.
type Result struct {
	Cycles    int64
	Completed bool
	// Canceled reports that Config.Ctx aborted the run mid-flight; the
	// partial statistics below must not be interpreted or cached.
	Canceled bool `json:",omitempty"`

	UserInsts   int64
	KernelInsts int64

	TotalPackets  int64
	KernelPackets int64
	TotalFlits    int64
	KernelFlits   int64

	// Request packets (GetS/GetM) split user/kernel: the transaction rate
	// the enhanced batch model's NAR parameter mirrors.
	UserRequests   int64
	KernelRequests int64

	// NAR is flits/cycle/node over the whole run; meaningful as the
	// paper's network access rate when run on the ideal fabric (Table III).
	NAR       float64
	UserNAR   float64
	KernelNAR float64

	// L1 and L2 miss rates split by access class (Table III/IV).
	L1MissRate      [2]float64 // [user, kernel]
	L2MissRate      [2]float64
	TimerInterrupts int64
	BarrierEpisodes int64

	Timeline []TimelineSample
	// Matrix is the full source/destination flit matrix (Fig 13b: actual
	// injected traffic); AppMatrix counts only user request messages — the
	// application's explicit communication pattern (Fig 13a).
	Matrix    *stats.Heatmap
	AppMatrix *stats.Heatmap
}

// System is one execution-driven CMP simulation instance.
type System struct {
	cfg    Config
	fabric Fabric
	tiles  int

	tileArr []*tile
	homes   []*home
	events  homeEventHeap

	// Barrier state.
	barrierWaiting uint64
	barrierCount   int

	// Accounting.
	totalPackets, kernelPackets int64
	totalFlits, kernelFlits     int64
	userReqs, kernelReqs        int64
	bucketUser, bucketKernel    int64
	bucketStart                 int64
	timeline                    []TimelineSample
	matrix                      *stats.Heatmap
	appMatrix                   *stats.Heatmap
	timerInterrupts             int64
	barrierEpisodes             int64
}

// NewSystem builds a CMP over the given fabric with one program per tile.
func NewSystem(cfg Config, fabric Fabric, programs []Program) (*System, error) {
	if cfg.Tiles < 2 || cfg.Tiles > 64 {
		return nil, fmt.Errorf("cmp: tile count %d outside [2, 64]", cfg.Tiles)
	}
	if len(programs) != cfg.Tiles {
		return nil, fmt.Errorf("cmp: %d programs for %d tiles", len(programs), cfg.Tiles)
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 200_000_000
	}
	if cfg.StoreBufferSize < 1 {
		cfg.StoreBufferSize = 1
	}
	if cfg.MaxLoadMLP < 1 {
		cfg.MaxLoadMLP = 1
	}
	if cfg.LoadDepFrac <= 0 || cfg.LoadDepFrac > 1 {
		cfg.LoadDepFrac = 1
	}
	s := &System{cfg: cfg, fabric: fabric, tiles: cfg.Tiles}
	for i := 0; i < cfg.Tiles; i++ {
		l1 := NewCache(cfg.L1Size, cfg.L1Ways, cfg.LineBytes)
		l2 := NewCache(cfg.L2SizePerTile, cfg.L2Ways, cfg.LineBytes)
		s.tileArr = append(s.tileArr, newTile(s, i, l1, programs[i]))
		s.homes = append(s.homes, newHome(s, i, l2))
	}
	if cfg.CollectMatrix {
		s.matrix = stats.NewHeatmap(cfg.Tiles, cfg.Tiles)
		s.appMatrix = stats.NewHeatmap(cfg.Tiles, cfg.Tiles)
	}
	fabric.SetOnReceive(s.receive)
	return s, nil
}

// homeOf returns the home tile of a line address (static interleaving).
func (s *System) homeOf(lineAddr uint64) int { return int(lineAddr % uint64(s.tiles)) }

// send encodes and injects a protocol message.
func (s *System) send(src, dst int, m Msg) {
	size := m.Type.size()
	p := s.fabric.NewPacket(src, dst, size, m.Type.kind())
	p.Aux = m.encode()
	s.fabric.Send(p)

	s.totalPackets++
	s.totalFlits += int64(size)
	if m.Type == MsgGetS || m.Type == MsgGetM {
		if m.Kernel {
			s.kernelReqs++
		} else {
			s.userReqs++
		}
	}
	if m.Kernel {
		s.kernelPackets++
		s.kernelFlits += int64(size)
		s.bucketKernel += int64(size)
	} else {
		s.bucketUser += int64(size)
	}
	if s.matrix != nil {
		s.matrix.Addf(src, dst, float64(size))
		if !m.Kernel && (m.Type == MsgGetS || m.Type == MsgGetM) {
			s.appMatrix.Addf(src, dst, float64(size))
		}
	}
}

// receive dispatches an arrived packet to the right controller.
func (s *System) receive(now int64, p *router.Packet) {
	m := decodeMsg(p.Aux)
	switch m.Type {
	case MsgGetS, MsgGetM, MsgInvAck, MsgWBData, MsgWriteback:
		s.homes[p.Dst].handle(m, p.Src)
	default:
		s.tileArr[p.Dst].handle(m, p.Src)
	}
}

// enterBarrier records a core reaching the barrier; the last arrival
// releases everyone.
func (s *System) enterBarrier(id int) {
	s.barrierWaiting |= 1 << uint(id)
	s.barrierCount++
	if s.barrierCount == s.tiles {
		s.barrierEpisodes++
		s.barrierWaiting = 0
		s.barrierCount = 0
		for _, t := range s.tileArr {
			if t.state == coreAtBarrier {
				t.state = coreRunning
				t.fetch()
			}
		}
	}
}

// done reports whether every core finished and all memory activity drained.
func (s *System) done() bool {
	for _, t := range s.tileArr {
		if t.state != coreDone || !t.drained() {
			return false
		}
	}
	return s.fabric.Quiescent() && len(s.events) == 0
}

// Run executes the system to completion (or MaxCycles) and returns the
// result summary. System itself implements engine.Driver: the cores are
// the injection process, and the run ends when every core retires its
// program and the memory system drains.
func (s *System) Run() *Result {
	eo := engine.RunOutcome(engine.Config{
		Net:      s.fabric,
		Ctx:      s.cfg.Ctx,
		Deadline: s.cfg.MaxCycles,
	}, s)
	res := s.result(eo.Completed)
	res.Canceled = eo.Canceled
	return res
}

// Cycle implements engine.Driver: timer interrupts, completed home
// accesses, one step of every core, and the timeline bucket flush.
func (s *System) Cycle(now int64) {
	cfg := s.cfg
	// Timer interrupts: every period, every still-running core traps.
	if cfg.TimerPeriod > 0 && cfg.TimerHandlerInsts > 0 && now > 0 && now%cfg.TimerPeriod == 0 {
		s.timerInterrupts++
		for _, t := range s.tileArr {
			if t.state != coreDone {
				t.kernelPending += cfg.TimerHandlerInsts
			}
		}
	}
	// Completed home accesses.
	for len(s.events) > 0 && s.events[0].at <= now {
		ev := heap.Pop(&s.events).(homeEvent)
		s.homes[ev.tile].dataArrived(ev.line)
	}
	for _, t := range s.tileArr {
		t.step()
	}
	// Timeline bucketing.
	if cfg.SampleInterval > 0 && now-s.bucketStart >= cfg.SampleInterval {
		s.flushBucket(now)
	}
}

// Done implements engine.Driver. The now > 0 guard keeps the first cycle
// unconditional, matching the pre-engine loop that only checked completion
// after stepping.
func (s *System) Done(now int64) bool { return now > 0 && s.done() }

// Idle implements engine.Driver. Execution-driven cores always have work
// in flight until the run completes (a stalled core is waiting on memory
// traffic, which keeps the fabric non-quiescent), so the system never
// declares an idle stretch.
func (s *System) Idle(int64) bool { return false }

// NextEvent implements engine.Driver.
func (s *System) NextEvent(int64) int64 { return engine.NoEvent }

func (s *System) flushBucket(now int64) {
	span := now - s.bucketStart
	if span <= 0 {
		return
	}
	s.timeline = append(s.timeline, TimelineSample{
		Cycle:      s.bucketStart,
		UserRate:   float64(s.bucketUser) / float64(span),
		KernelRate: float64(s.bucketKernel) / float64(span),
	})
	s.bucketUser, s.bucketKernel = 0, 0
	s.bucketStart = now
}

func (s *System) result(completed bool) *Result {
	now := s.fabric.Now()
	if s.cfg.SampleInterval > 0 {
		s.flushBucket(now)
	}
	r := &Result{
		Cycles:          now,
		Completed:       completed,
		TotalPackets:    s.totalPackets,
		KernelPackets:   s.kernelPackets,
		TotalFlits:      s.totalFlits,
		KernelFlits:     s.kernelFlits,
		UserRequests:    s.userReqs,
		KernelRequests:  s.kernelReqs,
		TimerInterrupts: s.timerInterrupts,
		BarrierEpisodes: s.barrierEpisodes,
		Timeline:        s.timeline,
		Matrix:          s.matrix,
		AppMatrix:       s.appMatrix,
	}
	var l1a, l1m, l2a, l2m [2]int64
	for i, t := range s.tileArr {
		r.UserInsts += t.userInsts
		r.KernelInsts += t.kernelInsts
		for c := 0; c < 2; c++ {
			l1a[c] += t.l1Access[c]
			l1m[c] += t.l1Miss[c]
			l2a[c] += s.homes[i].l2Access[c]
			l2m[c] += s.homes[i].l2Miss[c]
		}
	}
	for c := 0; c < 2; c++ {
		if l1a[c] > 0 {
			r.L1MissRate[c] = float64(l1m[c]) / float64(l1a[c])
		}
		if l2a[c] > 0 {
			r.L2MissRate[c] = float64(l2m[c]) / float64(l2a[c])
		}
	}
	if now > 0 {
		n := float64(s.tiles) * float64(now)
		r.NAR = float64(s.totalFlits) / n
		r.UserNAR = float64(s.totalFlits-s.kernelFlits) / n
		r.KernelNAR = float64(s.kernelFlits) / n
	}
	return r
}
