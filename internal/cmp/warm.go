package cmp

// Cache warming models the paper's methodology of running benchmarks from
// warmed-up checkpoints (§IV-A): without it, scaled-down runs are dominated
// by compulsory misses that the paper's multi-billion-instruction runs
// amortize away.

// WarmL1 pre-populates one core's L1 with the given lines in the given
// state (Shared for read-shared data, Modified for private writable data),
// mirroring them into the home L2 banks and directories so coherence state
// is consistent. Lines beyond the L1's capacity simply evict earlier ones;
// Modified victims of warming do not emit writeback traffic.
func (s *System) WarmL1(core int, lines []uint64, st LineState) {
	t := s.tileArr[core]
	for _, l := range lines {
		t.l1.Insert(l, st)
		h := s.homes[s.homeOf(l)]
		h.l2.Insert(l, Shared)
		e := h.entry(l)
		if st == Modified {
			e.state = dModified
			e.owner = core
			e.sharers = 1 << uint(core)
		} else if e.state != dModified {
			e.state = dShared
			e.sharers |= 1 << uint(core)
		}
	}
}

// WarmL2 pre-populates the distributed L2 with the given lines (data only,
// no L1 copies).
func (s *System) WarmL2(lines []uint64) {
	for _, l := range lines {
		s.homes[s.homeOf(l)].l2.Insert(l, Shared)
	}
}

// ResetCacheStats clears every cache's hit/miss counters, so statistics
// exclude the warming phase.
func (s *System) ResetCacheStats() {
	for i := range s.tileArr {
		s.tileArr[i].l1.ResetStats()
		s.homes[i].l2.ResetStats()
	}
}
