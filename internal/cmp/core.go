package cmp

import "noceval/internal/sim"

// OpKind enumerates dynamic instruction classes produced by workload
// generators.
type OpKind uint8

// Instruction classes.
const (
	OpCompute OpKind = iota // N cycles of non-memory work
	OpLoad                  // load from Addr (blocking on miss)
	OpStore                 // store to Addr (buffered)
	OpBarrier               // global barrier across all cores
	OpSyscall               // trap into the kernel for N kernel instructions
	OpDone                  // end of the stream (repeats forever)
)

// Op is one element of a core's dynamic instruction stream.
type Op struct {
	Kind OpKind
	N    int64  // compute cycles or syscall kernel instructions
	Addr uint64 // byte address for loads/stores
}

// Program supplies a core's instruction streams. NextUser returns OpDone
// forever once the user thread finishes; NextKernel must never return
// OpDone (kernel handlers are drawn from it on demand).
type Program interface {
	NextUser() Op
	NextKernel() Op
}

// coreState is the core's micro state.
type coreState uint8

const (
	coreRunning      coreState = iota
	coreBlockedLoad            // stalled on a specific line's data
	coreBlockedStore           // store buffer full
	coreBlockedMLP             // load-miss budget exhausted, waiting for any return
	coreAtBarrier
	coreDone
)

// pendingTxn is an outstanding L1 miss transaction (an MSHR entry).
type pendingTxn struct {
	line    uint64
	isStore bool
	kernel  bool
	// dropped is set when an Inv/Downgrade raced ahead of our grant: the
	// data is used for the blocked op but the line is not installed.
	dropped bool
}

// tile is one CMP tile: core, private L1D, store buffer and the L1-side
// coherence controller. The shared-L2 bank of the tile lives in home.
type tile struct {
	sys *System
	id  int
	l1  *Cache
	prg Program

	state     coreState
	countdown int64
	curOp     Op
	opKernel  bool // current op came from the kernel stream

	// kernelPending counts kernel instructions that preempt the user
	// stream (timer handlers, syscalls).
	kernelPending int64

	// loadTxns holds outstanding load-miss transactions keyed by line
	// (bounded by Config.MaxLoadMLP); storeTxns holds the store buffer's
	// outstanding GetM transactions keyed by line.
	loadTxns  map[uint64]*pendingTxn
	storeTxns map[uint64]*pendingTxn
	storeBuf  []uint64 // lines with buffered stores, FIFO

	// When state is coreBlockedLoad, the core waits for blockedLine;
	// blockedOnStore records that the awaited transaction is a store's
	// GetM (the load retries after it lands).
	blockedLine    uint64
	blockedOnStore bool

	// rng drives the stall-on-use sampling of Config.LoadDepFrac.
	rng *sim.RNG

	userInsts   int64
	kernelInsts int64
	doneUser    bool

	// L1 statistics split user/kernel.
	l1Access [2]int64
	l1Miss   [2]int64
}

func newTile(sys *System, id int, l1 *Cache, prg Program) *tile {
	return &tile{
		sys:       sys,
		id:        id,
		l1:        l1,
		prg:       prg,
		loadTxns:  map[uint64]*pendingTxn{},
		storeTxns: map[uint64]*pendingTxn{},
		rng:       sim.NewRNG(0x9e3779b97f4a7c15 ^ uint64(id+1)*0xbf58476d1ce4e5b9),
	}
}

func (t *tile) cls() int {
	if t.opKernel {
		return 1
	}
	return 0
}

// fetch pulls the next op, letting pending kernel work preempt the user
// stream.
func (t *tile) fetch() {
	if t.kernelPending > 0 {
		op := t.prg.NextKernel()
		t.opKernel = true
		cost := int64(1)
		if op.Kind == OpCompute && op.N > 1 {
			cost = op.N
		}
		if cost > t.kernelPending {
			cost = t.kernelPending
			if op.Kind == OpCompute {
				op.N = cost
			}
		}
		t.kernelPending -= cost
		t.kernelInsts += cost
		t.begin(op)
		return
	}
	op := t.prg.NextUser()
	t.opKernel = false
	switch op.Kind {
	case OpDone:
		t.doneUser = true
		t.state = coreDone
		return
	case OpCompute:
		t.userInsts += op.N
	case OpSyscall:
		t.userInsts++
	default:
		t.userInsts++
	}
	t.begin(op)
}

// begin starts executing an op.
func (t *tile) begin(op Op) {
	t.curOp = op
	switch op.Kind {
	case OpCompute:
		t.countdown = op.N
		if t.countdown < 1 {
			t.countdown = 1
		}
	case OpLoad, OpStore:
		t.countdown = t.sys.cfg.L1Latency
	case OpBarrier:
		t.state = coreAtBarrier
		t.sys.enterBarrier(t.id)
	case OpSyscall:
		t.kernelPending += op.N
		t.countdown = 1 // trap overhead
	}
}

// step advances the core one cycle.
func (t *tile) step() {
	switch t.state {
	case coreDone, coreAtBarrier, coreBlockedLoad, coreBlockedMLP:
		return
	case coreBlockedStore:
		if len(t.storeBuf) < t.sys.cfg.StoreBufferSize {
			t.state = coreRunning
			t.bufferStore(t.l1.LineAddr(t.curOp.Addr))
			t.fetch()
		}
		return
	}
	if t.countdown > 0 {
		t.countdown--
		if t.countdown > 0 {
			return
		}
		// Op finished its fixed latency; resolve memory ops.
		switch t.curOp.Kind {
		case OpLoad:
			if !t.resolveLoad() {
				return // blocked
			}
		case OpStore:
			if !t.resolveStore() {
				return // blocked on full store buffer
			}
		}
	}
	t.fetch()
}

// mustStall samples the stall-on-use model: does the instruction stream
// depend on this load's value right away?
func (t *tile) mustStall() bool {
	return t.rng.Bernoulli(t.sys.cfg.LoadDepFrac)
}

// blockOn stalls the core until the given line's transaction completes.
func (t *tile) blockOn(lineAddr uint64, store bool) {
	t.state = coreBlockedLoad
	t.blockedLine = lineAddr
	t.blockedOnStore = store
}

// resolveLoad completes a load after L1 access latency, returning false
// when the core must block.
func (t *tile) resolveLoad() bool {
	lineAddr := t.l1.LineAddr(t.curOp.Addr)
	c := t.cls()
	t.l1Access[c]++
	// A store transaction in flight for this line will install M; wait for
	// it rather than issuing a redundant GetS.
	if t.storeTxns[lineAddr] != nil {
		t.l1Miss[c]++
		t.blockOn(lineAddr, true)
		return false
	}
	if t.l1.Lookup(lineAddr) != Invalid {
		return true
	}
	t.l1Miss[c]++
	// Hit-under-miss: the line is already being fetched by an earlier
	// load; stall only if this instruction depends on it.
	if t.loadTxns[lineAddr] != nil {
		if t.mustStall() {
			t.blockOn(lineAddr, false)
			return false
		}
		return true
	}
	// New load miss: stall at issue when the MLP budget is exhausted.
	if len(t.loadTxns) >= t.sys.cfg.MaxLoadMLP {
		t.state = coreBlockedMLP
		return false
	}
	t.loadTxns[lineAddr] = &pendingTxn{line: lineAddr, kernel: t.opKernel}
	t.sys.send(t.id, t.sys.homeOf(lineAddr), Msg{Type: MsgGetS, Line: lineAddr, Node: t.id, Kernel: t.opKernel})
	if t.mustStall() {
		t.blockOn(lineAddr, false)
		return false
	}
	return true // run ahead under the miss
}

// resolveStore completes a store after L1 access latency, returning false
// when the store buffer is full.
func (t *tile) resolveStore() bool {
	lineAddr := t.l1.LineAddr(t.curOp.Addr)
	c := t.cls()
	t.l1Access[c]++
	if t.l1.Lookup(lineAddr) == Modified {
		return true // write hit
	}
	t.l1Miss[c]++
	if len(t.storeBuf) >= t.sys.cfg.StoreBufferSize {
		t.state = coreBlockedStore
		return false
	}
	t.bufferStore(lineAddr)
	return true
}

// bufferStore enqueues a store and issues its GetM if none is in flight.
func (t *tile) bufferStore(lineAddr uint64) {
	t.storeBuf = append(t.storeBuf, lineAddr)
	if t.storeTxns[lineAddr] == nil {
		txn := &pendingTxn{line: lineAddr, isStore: true, kernel: t.opKernel}
		t.storeTxns[lineAddr] = txn
		t.sys.send(t.id, t.sys.homeOf(lineAddr), Msg{Type: MsgGetM, Line: lineAddr, Node: t.id, Kernel: t.opKernel})
	}
}

// drained reports whether the tile has no outstanding memory activity.
func (t *tile) drained() bool {
	return len(t.loadTxns) == 0 && len(t.storeBuf) == 0 && len(t.storeTxns) == 0
}

// handle processes a protocol message delivered to this tile's L1.
func (t *tile) handle(m Msg, src int) {
	switch m.Type {
	case MsgData:
		t.handleData(m)
	case MsgInv:
		t.handleProbe(m, true)
	case MsgDowngrade:
		t.handleProbe(m, false)
	}
}

// handleData completes an outstanding transaction.
func (t *tile) handleData(m Msg) {
	if m.GrantM {
		txn := t.storeTxns[m.Line]
		if txn != nil {
			delete(t.storeTxns, m.Line)
			// Retire every buffered store to this line.
			kept := t.storeBuf[:0]
			for _, l := range t.storeBuf {
				if l != m.Line {
					kept = append(kept, l)
				}
			}
			t.storeBuf = kept
			if !txn.dropped {
				t.install(m.Line, Modified)
			}
			// A load stalled on this store's line retries now; if the
			// line was dropped by a racing Inv it simply re-misses.
			if t.state == coreBlockedLoad && t.blockedOnStore && t.blockedLine == m.Line {
				t.state = coreRunning
				t.begin(t.curOp) // redo the L1 access
			}
			if t.state == coreBlockedStore {
				t.state = coreRunning
				t.bufferStore(t.l1.LineAddr(t.curOp.Addr))
				t.fetch()
			}
			return
		}
	}
	if txn := t.loadTxns[m.Line]; txn != nil && !txn.isStore {
		// When a racing invalidation arrived first (dropped), we already
		// acked without data; the load still completes with the granted
		// data but the line is not installed.
		if !txn.dropped {
			st := Shared
			if m.GrantM {
				st = Modified
			}
			t.install(m.Line, st)
		}
		delete(t.loadTxns, m.Line)
		switch {
		case t.state == coreBlockedLoad && !t.blockedOnStore && t.blockedLine == m.Line:
			// The stalled-on load's value arrived: the op is complete.
			t.state = coreRunning
			t.fetch()
		case t.state == coreBlockedMLP:
			// A miss slot freed up: retry the load that hit the budget.
			t.state = coreRunning
			t.begin(t.curOp)
		}
	}
}

// handleProbe services an Inv (inv=true) or Downgrade from the home.
func (t *tile) handleProbe(m Msg, inv bool) {
	homeTile := t.sys.homeOf(m.Line)
	st := t.l1.Probe(m.Line)
	// Mark racing transactions so the incoming grant is not installed.
	if txn := t.storeTxns[m.Line]; txn != nil {
		txn.dropped = true
	}
	if txn := t.loadTxns[m.Line]; txn != nil {
		txn.dropped = true
	}
	switch st {
	case Modified:
		t.l1.SetState(m.Line, Invalid)
		t.sys.send(t.id, homeTile, Msg{Type: MsgWBData, Line: m.Line, Node: t.id, Kernel: m.Kernel})
	case Shared:
		if inv {
			t.l1.SetState(m.Line, Invalid)
		}
		t.sys.send(t.id, homeTile, Msg{Type: MsgInvAck, Line: m.Line, Node: t.id, Kernel: m.Kernel})
	default:
		t.sys.send(t.id, homeTile, Msg{Type: MsgInvAck, Line: m.Line, Node: t.id, Kernel: m.Kernel})
	}
}

// install places a line into the L1, writing back a displaced M line.
func (t *tile) install(lineAddr uint64, st LineState) {
	v := t.l1.Insert(lineAddr, st)
	if v.State == Modified {
		t.sys.send(t.id, t.sys.homeOf(v.LineAddr), Msg{Type: MsgWriteback, Line: v.LineAddr, Node: t.id, Kernel: t.opKernel})
	}
}
