package cmp

import (
	"noceval/internal/network"
	"noceval/internal/router"
)

// MsgType enumerates the coherence protocol messages.
type MsgType uint8

// Protocol message types of the MSI directory protocol.
const (
	MsgGetS      MsgType = iota // L1 -> home: read miss
	MsgGetM                     // L1 -> home: write miss/upgrade
	MsgData                     // home -> L1: grant with data (Shared or Modified per AuxGrantM)
	MsgInv                      // home -> L1: invalidate (on another's GetM)
	MsgDowngrade                // home -> owner: M -> S (on another's GetS)
	MsgInvAck                   // L1 -> home: invalidation ack, no data
	MsgWBData                   // L1 -> home: data response to Inv/Downgrade of an M line
	MsgWriteback                // L1 -> home: spontaneous eviction of an M line
)

// String returns the message type's short name.
func (m MsgType) String() string {
	switch m {
	case MsgGetS:
		return "GetS"
	case MsgGetM:
		return "GetM"
	case MsgData:
		return "Data"
	case MsgInv:
		return "Inv"
	case MsgDowngrade:
		return "Dng"
	case MsgInvAck:
		return "InvAck"
	case MsgWBData:
		return "WBData"
	case MsgWriteback:
		return "WB"
	default:
		return "?"
	}
}

// Msg is one decoded protocol message.
type Msg struct {
	Type   MsgType
	Line   uint64 // line address
	Node   int    // transaction requester (context for Inv/Data at the L1)
	Kernel bool   // transaction attributed to kernel activity
	GrantM bool   // for MsgData: grants Modified instead of Shared
}

// Packet Aux encoding:
//
//	bits 63..16  line address
//	bits 15..8   requester node
//	bit  7       kernel
//	bit  6       grantM
//	bits 3..0    message type
const (
	auxLineShift = 16
	auxNodeShift = 8
	auxKernelBit = 1 << 7
	auxGrantMBit = 1 << 6
	auxTypeMask  = 0x0f
	auxNodeMask  = 0xff
)

// encode packs the message into a packet Aux word.
func (m Msg) encode() uint64 {
	a := m.Line<<auxLineShift | uint64(m.Node&auxNodeMask)<<auxNodeShift | uint64(m.Type)&auxTypeMask
	if m.Kernel {
		a |= auxKernelBit
	}
	if m.GrantM {
		a |= auxGrantMBit
	}
	return a
}

// decodeMsg unpacks a packet's Aux word.
func decodeMsg(aux uint64) Msg {
	return Msg{
		Type:   MsgType(aux & auxTypeMask),
		Line:   aux >> auxLineShift,
		Node:   int(aux >> auxNodeShift & auxNodeMask),
		Kernel: aux&auxKernelBit != 0,
		GrantM: aux&auxGrantMBit != 0,
	}
}

// kind maps a message type to the packet kind used for accounting.
func (m MsgType) kind() router.Kind {
	switch m {
	case MsgGetS, MsgGetM:
		return router.KindRequest
	case MsgData:
		return router.KindReply
	default:
		return router.KindCoherence
	}
}

// Packet sizes in flits: control messages fit one flit; a 64-byte line on
// 16-byte links (Table II) needs four payload flits plus a head flit.
const (
	CtrlFlits = 1
	DataFlits = 5
)

// size returns the message's packet length in flits.
func (m MsgType) size() int {
	switch m {
	case MsgData, MsgWBData, MsgWriteback:
		return DataFlits
	default:
		return CtrlFlits
	}
}

// Fabric is the interconnect abstraction the CMP runs on: the real
// cycle-accurate network, or the ideal network used to measure each
// benchmark's network access rate (Table III defines NAR as the injection
// rate under an ideal — fully connected, single-cycle — network).
type Fabric interface {
	NewPacket(src, dst, size int, kind router.Kind) *router.Packet
	Send(p *router.Packet)
	Step()
	Now() int64
	Quiescent() bool
	SetOnReceive(fn network.Receiver)
}

// NetFabric adapts network.Network to the Fabric interface.
type NetFabric struct{ *network.Network }

// SetOnReceive implements Fabric.
func (f NetFabric) SetOnReceive(fn network.Receiver) { f.Network.OnReceive = fn }

// IdealFabric is the paper's ideal network: fully connected, infinite
// bandwidth, single-cycle latency. Packets sent in cycle c are delivered in
// cycle c+1.
type IdealFabric struct {
	now       int64
	nextID    uint64
	onReceive network.Receiver
	pending   []*router.Packet // sent this cycle, delivered next Step
}

// NewIdealFabric returns an empty ideal fabric.
func NewIdealFabric() *IdealFabric { return &IdealFabric{} }

// NewPacket implements Fabric.
func (f *IdealFabric) NewPacket(src, dst, size int, kind router.Kind) *router.Packet {
	f.nextID++
	return &router.Packet{
		ID: f.nextID, Src: src, Dst: dst, Size: size, Kind: kind,
		CreateTime: f.now, InjectTime: f.now, ArriveTime: -1,
	}
}

// Send implements Fabric.
func (f *IdealFabric) Send(p *router.Packet) { f.pending = append(f.pending, p) }

// Step implements Fabric: a packet sent in cycle c is delivered in cycle
// c+1. Packets sent from within delivery callbacks wait for the next Step.
func (f *IdealFabric) Step() {
	deliver := f.pending
	f.pending = nil
	f.now++
	for _, p := range deliver {
		p.ArriveTime = f.now
		p.Hops = 1
		if f.onReceive != nil {
			f.onReceive(f.now, p)
		}
	}
}

// Now implements Fabric.
func (f *IdealFabric) Now() int64 { return f.now }

// Quiescent implements Fabric.
func (f *IdealFabric) Quiescent() bool { return len(f.pending) == 0 }

// SetOnReceive implements Fabric.
func (f *IdealFabric) SetOnReceive(fn network.Receiver) { f.onReceive = fn }
