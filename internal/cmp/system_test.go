package cmp_test

import (
	"testing"

	"noceval/internal/cmp"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
	"noceval/internal/workload"
)

// table2Net builds the Table II network: 4x4 mesh, DOR, 8 VCs, 4 buf/VC.
func table2Net(tr int64, seed uint64) cmp.Fabric {
	return cmp.NetFabric{Network: network.New(network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 8, BufDepth: 4, Delay: tr},
		Seed:    seed,
	})}
}

func shortProfile(name string) workload.Profile {
	p, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	p.UserInsts = 8000
	p.SyscallStartInsts /= 4
	p.SyscallEndInsts /= 4
	return p
}

func runSystem(t *testing.T, p workload.Profile, fab cmp.Fabric, cfg cmp.Config) *cmp.Result {
	t.Helper()
	sys, err := cmp.NewSystem(cfg, fab, workload.Programs(p, cfg.Tiles, 99))
	if err != nil {
		t.Fatal(err)
	}
	p.Warm(sys, cfg.Tiles)
	res := sys.Run()
	if !res.Completed {
		t.Fatalf("%s did not complete in %d cycles", p.Name, res.Cycles)
	}
	return res
}

func TestAllBenchmarksCompleteOnRealNetwork(t *testing.T) {
	for _, name := range workload.Names() {
		p := shortProfile(name)
		cfg := cmp.DefaultConfig()
		cfg.MaxCycles = 20_000_000
		res := runSystem(t, p, table2Net(1, 5), cfg)
		if res.UserInsts < int64(cfg.Tiles)*p.UserInsts {
			t.Errorf("%s: user insts %d below budget %d", name, res.UserInsts, int64(cfg.Tiles)*p.UserInsts)
		}
		if res.TotalFlits == 0 {
			t.Errorf("%s: no network traffic", name)
		}
		if res.NAR <= 0 || res.NAR > 1 {
			t.Errorf("%s: NAR = %.4f out of range", name, res.NAR)
		}
	}
}

func TestIdealFabricFasterThanRealNetwork(t *testing.T) {
	p := shortProfile("canneal")
	cfg := cmp.DefaultConfig()
	real := runSystem(t, p, table2Net(1, 6), cfg)
	ideal := runSystem(t, p, cmp.NewIdealFabric(), cfg)
	if ideal.Cycles >= real.Cycles {
		t.Errorf("ideal network (%d cycles) not faster than real (%d)", ideal.Cycles, real.Cycles)
	}
}

func TestRouterDelaySlowsExecution(t *testing.T) {
	p := shortProfile("fft")
	cfg := cmp.DefaultConfig()
	r1 := runSystem(t, p, table2Net(1, 7), cfg)
	r8 := runSystem(t, p, table2Net(8, 7), cfg)
	if r8.Cycles <= r1.Cycles {
		t.Errorf("tr=8 (%d cycles) not slower than tr=1 (%d)", r8.Cycles, r1.Cycles)
	}
}

func TestKernelTrafficAppears(t *testing.T) {
	p := shortProfile("lu")
	cfg := cmp.DefaultConfig()
	cfg.TimerPeriod = p.TimerPeriod(workload.Clock75MHz)
	cfg.TimerHandlerInsts = p.TimerHandlerInsts
	res := runSystem(t, p, table2Net(1, 8), cfg)
	if res.KernelFlits == 0 {
		t.Fatal("no kernel traffic despite syscalls and timer")
	}
	frac := float64(res.KernelFlits) / float64(res.TotalFlits)
	if frac <= 0 || frac >= 1 {
		t.Errorf("kernel traffic fraction = %.3f out of (0,1)", frac)
	}
}

func TestClockFrequencyChangesInterruptCount(t *testing.T) {
	p := shortProfile("lu") // shortest timer period in the suite
	p.UserInsts = 30000
	mk := func(c workload.Clock) *cmp.Result {
		cfg := cmp.DefaultConfig()
		cfg.TimerPeriod = p.TimerPeriod(c)
		cfg.TimerHandlerInsts = p.TimerHandlerInsts
		return runSystem(t, p, table2Net(1, 9), cfg)
	}
	slow := mk(workload.Clock75MHz)
	fast := mk(workload.Clock3GHz)
	if slow.TimerInterrupts <= fast.TimerInterrupts {
		t.Errorf("75MHz interrupts (%d) not above 3GHz (%d)", slow.TimerInterrupts, fast.TimerInterrupts)
	}
}

func TestBarriersSynchronize(t *testing.T) {
	p := shortProfile("fft") // 3 barriers
	cfg := cmp.DefaultConfig()
	res := runSystem(t, p, table2Net(1, 10), cfg)
	if res.BarrierEpisodes != int64(p.Barriers) {
		t.Errorf("barrier episodes = %d, want %d", res.BarrierEpisodes, p.Barriers)
	}
}

func TestMissRateOrdering(t *testing.T) {
	// fft must show a much higher user L2 miss rate than blackscholes
	// (Table III: 0.629 vs 0.006); barnes the highest NAR.
	cfg := cmp.DefaultConfig()
	res := map[string]*cmp.Result{}
	for _, name := range []string{"blackscholes", "fft", "barnes"} {
		res[name] = runSystem(t, shortProfile(name), cmp.NewIdealFabric(), cfg)
	}
	if res["fft"].L2MissRate[0] < 3*res["blackscholes"].L2MissRate[0] {
		t.Errorf("fft L2 miss %.3f not >> blackscholes %.3f",
			res["fft"].L2MissRate[0], res["blackscholes"].L2MissRate[0])
	}
	// Kernel syscall traffic dominates very short runs, so compare the
	// user-attributed injection rate (Table IV orders barnes highest).
	if res["barnes"].UserNAR <= res["blackscholes"].UserNAR {
		t.Errorf("barnes user NAR %.4f not above blackscholes %.4f",
			res["barnes"].UserNAR, res["blackscholes"].UserNAR)
	}
}

func TestMatrixAndTimelineCollection(t *testing.T) {
	p := shortProfile("lu")
	cfg := cmp.DefaultConfig()
	cfg.CollectMatrix = true
	cfg.SampleInterval = 2000
	res := runSystem(t, p, table2Net(1, 11), cfg)
	if res.Matrix == nil {
		t.Fatal("no matrix")
	}
	var sum float64
	for _, v := range res.Matrix.Cells {
		sum += v
	}
	if int64(sum) != res.TotalFlits {
		t.Errorf("matrix total %v != flits %d", sum, res.TotalFlits)
	}
	if len(res.Timeline) < 3 {
		t.Errorf("timeline has %d buckets, want >= 3", len(res.Timeline))
	}
}

func TestCacheBasics(t *testing.T) {
	c := cmp.NewCache(1024, 2, 64) // 16 lines, 8 sets, 2 ways
	if c.Lookup(5) != cmp.Invalid {
		t.Fatal("empty cache hit")
	}
	c.Insert(5, cmp.Shared)
	if c.Lookup(5) != cmp.Shared {
		t.Fatal("inserted line missing")
	}
	// Fill the set of line 5 (same set every 8 lines) and force eviction.
	c.Insert(13, cmp.Modified)
	c.Lookup(13) // make 13 more recent than 5
	v := c.Insert(21, cmp.Shared)
	if v.State == cmp.Invalid {
		t.Fatal("expected an eviction")
	}
	if v.LineAddr != 5 {
		t.Errorf("evicted line %d, want LRU line 5", v.LineAddr)
	}
	c.SetState(13, cmp.Shared)
	if c.Probe(13) != cmp.Shared {
		t.Error("SetState did not apply")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { cmp.NewCache(0, 4, 64) },
		func() { cmp.NewCache(1024, 3, 64) },  // 16 lines not divisible by 3
		func() { cmp.NewCache(64*48, 4, 64) }, // 12 sets not a power of two
		func() { cmp.NewCache(1024, 4, 48) },  // line size not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry not rejected")
				}
			}()
			fn()
		}()
	}
}
