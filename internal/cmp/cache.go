// Package cmp implements the execution-driven chip-multiprocessor
// simulator the framework is validated against (§IV-A): in-order cores
// with blocking loads and a store buffer, private write-back L1 data
// caches kept coherent by an MSI directory at the distributed shared L2
// (one bank per tile, static address interleaving), a 300-cycle DRAM
// model, and network interfaces that turn every coherence action into
// flits on the cycle-accurate network.
//
// This package is the repository's stand-in for Simics/GEMS+Garnet: it is
// not a full-system simulator, but it exercises the same closed loop —
// real cache misses become request/reply/invalidation packets whose
// latency stalls in-order cores — which is exactly the property the
// paper's validation experiments depend on.
package cmp

import "fmt"

// LineState is the MSI state of a cache line in an L1.
type LineState uint8

// MSI states.
const (
	Invalid LineState = iota
	Shared
	Modified
)

// String returns the state's single-letter name.
func (s LineState) String() string {
	switch s {
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// line is one cache line's metadata. Data values are not modelled: the
// synthetic workloads never read values, and coherence traffic depends only
// on states.
type line struct {
	tag   uint64
	state LineState
	lru   uint64 // larger is more recent
}

// Cache is a set-associative cache with true-LRU replacement, tracking
// line states but not data.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	lines    []line // sets*ways, set-major
	tick     uint64

	Hits   int64
	Misses int64
}

// NewCache builds a cache of the given total size with the given
// associativity and line size (both byte counts); sizes must divide evenly
// and the set count must be a power of two.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cmp: non-positive cache geometry")
	}
	nLines := sizeBytes / lineBytes
	if nLines%ways != 0 {
		panic(fmt.Sprintf("cmp: %d lines not divisible by %d ways", nLines, ways))
	}
	sets := nLines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cmp: set count %d not a power of two", sets))
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	if 1<<lb != lineBytes {
		panic(fmt.Sprintf("cmp: line size %d not a power of two", lineBytes))
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		lines:    make([]line, sets*ways),
	}
}

// LineAddr converts a byte address to a line address (cache-line number).
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// setOf maps a line address to a set with XOR-folded (hashed) indexing, as
// real shared caches do: without it, workload regions whose bases are
// multiples of the set count alias into a handful of sets and conflict-miss
// pathologically.
func (c *Cache) setOf(lineAddr uint64) int {
	h := lineAddr ^ lineAddr>>10 ^ lineAddr>>20 ^ lineAddr>>30 ^ lineAddr>>40
	return int(h) & (c.sets - 1)
}

// Lookup returns the state of the line containing addr (a line address),
// updating LRU and hit/miss counters. Invalid means miss.
func (c *Cache) Lookup(lineAddr uint64) LineState {
	set := c.setOf(lineAddr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == lineAddr {
			c.tick++
			l.lru = c.tick
			c.Hits++
			return l.state
		}
	}
	c.Misses++
	return Invalid
}

// Probe returns the state without touching LRU or counters (used by
// coherence message handlers).
func (c *Cache) Probe(lineAddr uint64) LineState {
	set := c.setOf(lineAddr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == lineAddr {
			return l.state
		}
	}
	return Invalid
}

// SetState changes the state of a resident line; setting Invalid evicts
// it. It is a no-op when the line is absent.
func (c *Cache) SetState(lineAddr uint64, s LineState) {
	set := c.setOf(lineAddr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == lineAddr {
			l.state = s
			return
		}
	}
}

// Victim describes a line displaced by Insert.
type Victim struct {
	LineAddr uint64
	State    LineState // Invalid when no eviction happened
}

// Insert installs lineAddr with the given state, returning the displaced
// victim (State Invalid if a free or same-tag way was used).
func (c *Cache) Insert(lineAddr uint64, s LineState) Victim {
	set := c.setOf(lineAddr)
	base := set * c.ways
	// Reuse the line if already resident.
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == lineAddr {
			c.tick++
			l.state, l.lru = s, c.tick
			return Victim{}
		}
	}
	// Free way?
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.state == Invalid {
			c.tick++
			*l = line{tag: lineAddr, state: s, lru: c.tick}
			return Victim{}
		}
	}
	// Evict LRU.
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.lines[base+w].lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	v := Victim{LineAddr: c.lines[victim].tag, State: c.lines[victim].state}
	c.tick++
	c.lines[victim] = line{tag: lineAddr, state: s, lru: c.tick}
	return v
}

// MissRate returns misses/(hits+misses), or 0 before any access.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// ResetStats clears the hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }
