package cmp

import (
	"container/heap"
	"testing"

	"noceval/internal/network"
	"noceval/internal/router"
)

// stubFabric records sent packets for manual, test-controlled delivery.
type stubFabric struct {
	now    int64
	nextID uint64
	sent   []*router.Packet
	recv   network.Receiver
}

func (f *stubFabric) NewPacket(src, dst, size int, kind router.Kind) *router.Packet {
	f.nextID++
	return &router.Packet{ID: f.nextID, Src: src, Dst: dst, Size: size, Kind: kind, CreateTime: f.now}
}
func (f *stubFabric) Send(p *router.Packet)            { f.sent = append(f.sent, p) }
func (f *stubFabric) Step()                            { f.now++ }
func (f *stubFabric) Now() int64                       { return f.now }
func (f *stubFabric) Quiescent() bool                  { return len(f.sent) == 0 }
func (f *stubFabric) SetOnReceive(fn network.Receiver) { f.recv = fn }

// take removes and returns all packets sent so far.
func (f *stubFabric) take() []*router.Packet {
	out := f.sent
	f.sent = nil
	return out
}

// deliver hands one packet to the system.
func (f *stubFabric) deliver(p *router.Packet) { f.recv(f.now, p) }

// idlePrograms build OpDone-only programs.
type idleProgram struct{}

func (idleProgram) NextUser() Op   { return Op{Kind: OpDone} }
func (idleProgram) NextKernel() Op { return Op{Kind: OpCompute, N: 1} }

func protoSystem(t *testing.T) (*System, *stubFabric) {
	t.Helper()
	fab := &stubFabric{}
	cfg := DefaultConfig()
	cfg.Tiles = 4
	progs := make([]Program, 4)
	for i := range progs {
		progs[i] = idleProgram{}
	}
	sys, err := NewSystem(cfg, fab, progs)
	if err != nil {
		t.Fatal(err)
	}
	return sys, fab
}

// find returns the first sent packet whose decoded type matches.
func find(t *testing.T, pkts []*router.Packet, mt MsgType) *router.Packet {
	t.Helper()
	for _, p := range pkts {
		if decodeMsg(p.Aux).Type == mt {
			return p
		}
	}
	t.Fatalf("no %s among %d packets", mt, len(pkts))
	return nil
}

// drainEvents completes all scheduled home accesses immediately.
func drainEvents(s *System) {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(homeEvent)
		s.homes[ev.tile].dataArrived(ev.line)
	}
}

// line 8 homes at tile 0 in a 4-tile system.
const testLine = uint64(8)

func TestGetSOnUncachedLine(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 2}, 2)
	// Data comes from memory (cold): an event is scheduled, no grant yet.
	if len(fab.take()) != 0 {
		t.Fatal("grant sent before data ready")
	}
	drainEvents(sys)
	grant := find(t, fab.take(), MsgData)
	m := decodeMsg(grant.Aux)
	if grant.Dst != 2 || m.GrantM || grant.Size != DataFlits {
		t.Errorf("bad grant: dst=%d grantM=%v size=%d", grant.Dst, m.GrantM, grant.Size)
	}
	e := h.entry(testLine)
	if e.state != dShared || e.sharers != 1<<2 || e.busy {
		t.Errorf("dir state after GetS: %+v", e)
	}
}

func TestGetSToModifiedLineDowngradesOwner(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	e := h.entry(testLine)
	e.state, e.owner, e.sharers = dModified, 1, 1<<1
	sys.tileArr[1].l1.Insert(testLine, Modified)

	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 3}, 3)
	dng := find(t, fab.take(), MsgDowngrade)
	if dng.Dst != 1 {
		t.Fatalf("downgrade sent to %d, want owner 1", dng.Dst)
	}
	// Owner's L1 responds with WBData and keeps... the conservative
	// implementation invalidates; either way home must complete.
	sys.tileArr[1].handle(decodeMsg(dng.Aux), 0)
	wb := find(t, fab.take(), MsgWBData)
	h.handle(decodeMsg(wb.Aux), wb.Src)
	grant := find(t, fab.take(), MsgData)
	if grant.Dst != 3 || decodeMsg(grant.Aux).GrantM {
		t.Errorf("bad GetS grant after downgrade: %+v", decodeMsg(grant.Aux))
	}
	if e.state != dShared || e.sharers&(1<<3) == 0 {
		t.Errorf("dir not shared with requester: %+v", e)
	}
}

func TestGetMInvalidatesSharers(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	h.l2.Insert(testLine, Shared) // data present
	e := h.entry(testLine)
	e.state = dShared
	e.sharers = 1<<1 | 1<<2 | 1<<3

	h.handle(Msg{Type: MsgGetM, Line: testLine, Node: 3}, 3)
	drainEvents(sys) // data ready
	pkts := fab.take()
	invs := 0
	for _, p := range pkts {
		if decodeMsg(p.Aux).Type == MsgInv {
			invs++
			if p.Dst == 3 {
				t.Error("requester invalidated")
			}
		}
	}
	if invs != 2 {
		t.Fatalf("sent %d invalidations, want 2", invs)
	}
	if !e.busy {
		t.Fatal("transaction completed before acks")
	}
	// Acks from the two sharers complete the transaction.
	h.handle(Msg{Type: MsgInvAck, Line: testLine, Node: 3}, 1)
	h.handle(Msg{Type: MsgInvAck, Line: testLine, Node: 3}, 2)
	grant := find(t, fab.take(), MsgData)
	if !decodeMsg(grant.Aux).GrantM || grant.Dst != 3 {
		t.Errorf("bad GetM grant: %+v", decodeMsg(grant.Aux))
	}
	if e.state != dModified || e.owner != 3 {
		t.Errorf("dir not modified by requester: %+v", e)
	}
}

func TestWritebackRetiresOwnership(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	e := h.entry(testLine)
	e.state, e.owner = dModified, 2
	h.handle(Msg{Type: MsgWriteback, Line: testLine, Node: 2}, 2)
	if e.state != dInvalid || e.owner != -1 {
		t.Errorf("writeback did not retire ownership: %+v", e)
	}
	if h.l2.Probe(testLine) == Invalid {
		t.Error("writeback data not installed in L2")
	}
	// A later GetS hits the L2.
	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 1}, 1)
	drainEvents(sys)
	find(t, fab.take(), MsgData)
	if h.l2Miss[0] != 0 {
		t.Errorf("GetS after writeback missed L2 (%d misses)", h.l2Miss[0])
	}
}

func TestStaleWritebackDropped(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	e := h.entry(testLine)
	e.state, e.owner = dModified, 2
	// Owner evicted (writeback in flight) and immediately re-requests.
	h.handle(Msg{Type: MsgGetM, Line: testLine, Node: 2}, 2)
	drainEvents(sys)
	grant := find(t, fab.take(), MsgData)
	if !decodeMsg(grant.Aux).GrantM {
		t.Fatal("re-request not granted M")
	}
	if e.state != dModified || e.owner != 2 {
		t.Fatalf("dir after re-grant: %+v", e)
	}
	// The in-flight writeback now arrives and must NOT clobber the fresh
	// ownership.
	h.handle(Msg{Type: MsgWriteback, Line: testLine, Node: 2}, 2)
	if e.state != dModified || e.owner != 2 {
		t.Errorf("stale writeback clobbered ownership: %+v", e)
	}
	_ = sys
}

func TestDeferredRequestsServedInOrder(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 1}, 1)
	// Two more requests arrive while the first is fetching from memory.
	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 2}, 2)
	h.handle(Msg{Type: MsgGetM, Line: testLine, Node: 3}, 3)
	e := h.entry(testLine)
	if len(e.deferred) != 2 {
		t.Fatalf("deferred = %d, want 2", len(e.deferred))
	}
	drainEvents(sys) // completes 1, starts 2 (hits L2 now), then 3
	drainEvents(sys)
	pkts := fab.take()
	var grants []*router.Packet
	for _, p := range pkts {
		if decodeMsg(p.Aux).Type == MsgData {
			grants = append(grants, p)
		}
	}
	if len(grants) < 2 {
		t.Fatalf("grants = %d, want >= 2", len(grants))
	}
	if grants[0].Dst != 1 || grants[1].Dst != 2 {
		t.Errorf("grant order = %d, %d; want 1, 2", grants[0].Dst, grants[1].Dst)
	}
}

func TestEvictedOwnerAckTriggersL2Fallback(t *testing.T) {
	sys, fab := protoSystem(t)
	h := sys.homes[0]
	h.l2.Insert(testLine, Shared)
	e := h.entry(testLine)
	e.state, e.owner = dModified, 1

	h.handle(Msg{Type: MsgGetS, Line: testLine, Node: 2}, 2)
	find(t, fab.take(), MsgDowngrade)
	// Owner already evicted the line: replies InvAck without data.
	h.handle(Msg{Type: MsgInvAck, Line: testLine, Node: 2}, 1)
	if len(sys.events) == 0 {
		t.Fatal("no L2 fallback scheduled")
	}
	drainEvents(sys)
	find(t, fab.take(), MsgData)
}

func TestTileProbeResponses(t *testing.T) {
	sys, fab := protoSystem(t)
	tile := sys.tileArr[2]

	// Modified line: Inv yields WBData and invalidates.
	tile.l1.Insert(testLine, Modified)
	tile.handle(Msg{Type: MsgInv, Line: testLine, Node: 3}, 0)
	if find(t, fab.take(), MsgWBData).Dst != 0 {
		t.Error("WBData not sent to home")
	}
	if tile.l1.Probe(testLine) != Invalid {
		t.Error("M line not invalidated")
	}

	// Shared line: Inv yields InvAck.
	tile.l1.Insert(testLine, Shared)
	tile.handle(Msg{Type: MsgInv, Line: testLine, Node: 3}, 0)
	find(t, fab.take(), MsgInvAck)
	if tile.l1.Probe(testLine) != Invalid {
		t.Error("S line not invalidated")
	}

	// Absent line: still acks (silent eviction already happened).
	tile.handle(Msg{Type: MsgInv, Line: testLine, Node: 3}, 0)
	find(t, fab.take(), MsgInvAck)

	// Downgrade on a Shared line keeps the S copy.
	tile.l1.Insert(testLine, Shared)
	tile.handle(Msg{Type: MsgDowngrade, Line: testLine, Node: 3}, 0)
	find(t, fab.take(), MsgInvAck)
	if tile.l1.Probe(testLine) != Shared {
		t.Error("downgrade of S line dropped it")
	}
}

func TestRacingInvalidationDropsGrant(t *testing.T) {
	sys, fab := protoSystem(t)
	tile := sys.tileArr[2]
	// Pending load transaction for the line, core stalled on its value.
	txn := &pendingTxn{line: testLine}
	tile.loadTxns[testLine] = txn
	tile.state = coreBlockedLoad
	tile.blockedLine = testLine
	tile.curOp = Op{Kind: OpLoad, Addr: testLine << 6}

	// Inv overtakes the grant.
	tile.handle(Msg{Type: MsgInv, Line: testLine, Node: 3}, 0)
	find(t, fab.take(), MsgInvAck)
	if !txn.dropped {
		t.Fatal("pending transaction not marked dropped")
	}
	// The grant arrives: the load completes but the line is not installed.
	tile.handle(Msg{Type: MsgData, Line: testLine, Node: 2, GrantM: true}, 0)
	if tile.l1.Probe(testLine) != Invalid {
		t.Error("dropped grant was installed")
	}
	if len(tile.loadTxns) != 0 {
		t.Error("load transaction not retired")
	}
	if tile.state == coreBlockedLoad {
		t.Error("core still blocked")
	}
}

func TestMsgEncodingRoundTrip(t *testing.T) {
	for _, m := range []Msg{
		{Type: MsgGetS, Line: 0x123456789a, Node: 15},
		{Type: MsgData, Line: 7, Node: 3, GrantM: true},
		{Type: MsgInv, Line: 1 << 40, Node: 63, Kernel: true},
		{Type: MsgWriteback, Line: 0, Node: 0},
	} {
		got := decodeMsg(m.encode())
		if got != m {
			t.Errorf("round trip: %+v -> %+v", m, got)
		}
	}
}

func TestMsgSizesAndKinds(t *testing.T) {
	if MsgGetS.size() != CtrlFlits || MsgData.size() != DataFlits || MsgWriteback.size() != DataFlits {
		t.Error("message sizes wrong")
	}
	if MsgGetS.kind() != router.KindRequest || MsgData.kind() != router.KindReply || MsgInv.kind() != router.KindCoherence {
		t.Error("message kinds wrong")
	}
}
