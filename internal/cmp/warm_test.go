package cmp

import "testing"

func TestWarmL1SetsCoherentState(t *testing.T) {
	sys, _ := protoSystem(t)
	lines := []uint64{4, 8, 12} // home tile 0 in a 4-tile system
	sys.WarmL1(2, lines, Modified)
	for _, l := range lines {
		if sys.tileArr[2].l1.Probe(l) != Modified {
			t.Errorf("line %d not Modified in L1", l)
		}
		h := sys.homes[sys.homeOf(l)]
		e := h.entry(l)
		if e.state != dModified || e.owner != 2 {
			t.Errorf("line %d directory not consistent: %+v", l, e)
		}
		if h.l2.Probe(l) == Invalid {
			t.Errorf("line %d missing from L2", l)
		}
	}
}

func TestWarmL1SharedAccumulatesSharers(t *testing.T) {
	sys, _ := protoSystem(t)
	sys.WarmL1(1, []uint64{16}, Shared)
	sys.WarmL1(3, []uint64{16}, Shared)
	e := sys.homes[0].entry(16)
	if e.state != dShared || e.sharers != (1<<1|1<<3) {
		t.Errorf("shared warm state: %+v", e)
	}
}

func TestWarmL2DataOnly(t *testing.T) {
	sys, _ := protoSystem(t)
	sys.WarmL2([]uint64{20, 24})
	for _, l := range []uint64{20, 24} {
		if sys.homes[0].l2.Probe(l) == Invalid {
			t.Errorf("line %d not in L2", l)
		}
		if e, ok := sys.homes[0].dir[l]; ok && (e.state != dInvalid || e.sharers != 0) {
			t.Errorf("warm L2 created directory sharers: %+v", e)
		}
		for _, tile := range sys.tileArr {
			if tile.l1.Probe(l) != Invalid {
				t.Error("warm L2 leaked into an L1")
			}
		}
	}
}

func TestResetCacheStats(t *testing.T) {
	sys, _ := protoSystem(t)
	sys.tileArr[0].l1.Lookup(99) // a miss
	sys.homes[0].l2.Lookup(99)
	sys.ResetCacheStats()
	if sys.tileArr[0].l1.Misses != 0 || sys.homes[0].l2.Misses != 0 {
		t.Error("stats not reset")
	}
}
