package router

import (
	"fmt"
	"math/bits"

	"noceval/internal/obs"
	"noceval/internal/routing"
	"noceval/internal/sim"
	"noceval/internal/topology"
)

// ArbPolicy selects how conflicting requests are ordered in the VC and
// switch allocators (Table I: round robin, age-based).
type ArbPolicy int

// Arbitration policies.
const (
	RoundRobin ArbPolicy = iota
	AgeBased
)

// String returns the policy's short name.
func (p ArbPolicy) String() string {
	if p == AgeBased {
		return "age"
	}
	return "rr"
}

// ClassArbPolicy selects how QoS traffic classes compete in the VC and
// switch allocators when Config.Classes > 1.
type ClassArbPolicy int

// Class arbitration policies.
const (
	// StrictPriority serves class 0 requests before class 1, and so on;
	// within a class the configured ArbPolicy breaks ties. This is the
	// QoS mode: high-priority traffic preempts allocator bandwidth.
	StrictPriority ClassArbPolicy = iota
	// ClassRoundRobin keeps the classic class-blind allocators: classes
	// still get disjoint VC partitions, but compete on equal terms.
	ClassRoundRobin
)

// String returns the policy's short name.
func (p ClassArbPolicy) String() string {
	if p == ClassRoundRobin {
		return "classrr"
	}
	return "strict"
}

// ejectionCredits is the effectively infinite credit count of ejection
// output VCs: terminals are ideal sinks, so ejection is limited only by
// the one-flit-per-cycle switch bandwidth.
const ejectionCredits = 1 << 30

// Config carries the router microarchitecture parameters of Table I.
type Config struct {
	VCs      int       // virtual channels per port
	BufDepth int       // flit buffer depth per VC (q)
	Delay    int64     // router pipeline latency in cycles (tr)
	Arb      ArbPolicy // allocator arbitration policy
	// SAIterations is the number of separable switch-allocation passes
	// per cycle (iSLIP-style): after the first input/output matching,
	// further iterations match the ports left unpaired, improving crossbar
	// utilization near saturation. 0 or 1 selects the classic single pass.
	SAIterations int
	// Classes is the number of QoS traffic classes the VC space is
	// partitioned across. 0 or 1 selects the classic single-class router:
	// every code path is then exactly the pre-QoS implementation. With
	// C > 1, class c owns the VC slice [c*VCs/C, (c+1)*VCs/C) on every
	// port, and the routing algorithm's deadlock classes subdivide each
	// slice the same way they used to subdivide the whole VC space.
	Classes int
	// ClassArb selects strict-priority (default) or class-blind
	// round-robin arbitration between classes; ignored when Classes <= 1.
	ClassArb ClassArbPolicy
}

// Validate reports configuration errors, including too few VCs for the
// routing algorithm's class requirements.
func (c Config) Validate(t *topology.Topology, alg routing.Algorithm) error {
	if c.VCs < 1 {
		return fmt.Errorf("router: VCs must be >= 1, got %d", c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("router: BufDepth must be >= 1, got %d", c.BufDepth)
	}
	if c.Delay < 1 {
		return fmt.Errorf("router: Delay must be >= 1, got %d", c.Delay)
	}
	if need := alg.NumClasses(t); c.VCs < need {
		return fmt.Errorf("router: algorithm %s needs %d VC classes on %s but only %d VCs configured",
			alg.Name(), need, t.Name, c.VCs)
	}
	if c.Classes < 0 {
		return fmt.Errorf("router: Classes must be >= 0, got %d", c.Classes)
	}
	if c.Classes > 1 {
		// Every QoS class's VC slice must still fit the routing
		// algorithm's deadlock classes, or packets of that class could
		// find no legal output VC and wedge.
		need := alg.NumClasses(t)
		for qc := 0; qc < c.Classes; qc++ {
			lo := qc * c.VCs / c.Classes
			hi := (qc + 1) * c.VCs / c.Classes
			if w := hi - lo; w < need {
				return fmt.Errorf("router: QoS class %d gets %d of %d VCs, but algorithm %s needs %d per class on %s (short %d)",
					qc, w, c.VCs, alg.Name(), need, t.Name, need-w)
			}
		}
	}
	return nil
}

// inVC is one input virtual channel: a bounded flit FIFO plus the
// allocation state of the packet currently at its front.
type inVC struct {
	buf      *sim.FIFO[Flit]
	routed   bool
	cands    []routing.Candidate
	granted  bool
	outPort  int
	outVC    int
	outClass int // routing class of the granted output VC
}

// reset clears the front packet's allocation after its tail departs.
func (v *inVC) reset() {
	v.routed, v.granted = false, false
	v.cands = v.cands[:0]
}

// outVC is the book-keeping for one downstream virtual channel: ownership
// (set at VC allocation, cleared when the owner's tail flit departs) and
// the credit count mirroring free downstream buffer slots.
type outVC struct {
	owned   bool
	credits int
}

// upstreamRef identifies who to send credits to when a flit leaves one of
// our input buffers.
type upstreamRef struct {
	r    *Router // nil for the injection port (the terminal is co-located)
	port int     // upstream output port feeding our input port
	// cross marks an upstream router living in a different shard tile:
	// credits to it are handed to the network's credit sink instead of
	// applied in place, so concurrently stepping tiles never write each
	// other's state (see Network.Step's sharded path).
	cross bool
}

// Router is one cycle-accurate virtual-channel router.
type Router struct {
	ID    int
	topo  *topology.Topology
	alg   routing.Algorithm
	cfg   Config
	ports int
	// numClasses caches alg.NumClasses(topo); classRange sits on the
	// per-candidate routing path and must not pay an interface call.
	numClasses int
	// qos is the number of QoS traffic classes (>= 1); strict is true
	// when qos > 1 under StrictPriority, enabling the priority branches
	// in the allocators. Single-class routers keep qos == 1 and strict
	// false, so every hot path is the classic implementation.
	qos    int
	strict bool
	// vcQoS maps a VC index to its QoS class. An input VC only ever holds
	// packets of its own class — injection enters the class's partition,
	// VC allocation grants only within the packet's partition, and a
	// delivered flit lands at whatever VC its upstream allocator chose
	// inside that partition — so allocators can read a front packet's
	// class from this table without peeking at the buffer.
	vcQoS []int8
	// qosMasks[c] has bit p*VCs+v set for every (port, VC) pair whose VC
	// belongs to class c, for the bitmask allocator paths.
	qosMasks []uint64

	in  [][]*inVC
	out [][]outVC

	// pipes[p] models the router pipeline plus the outgoing link of output
	// port p: SA winners land here and emerge tr+linkDelay cycles later
	// (tr only, for the ejection port).
	pipes []*sim.DelayLine[Flit]
	// creditPipes[p] carries credits returning from the downstream router
	// attached to output port p (nil for ejection).
	creditPipes []*sim.DelayLine[int]

	up []upstreamRef

	// occupancy counts flits held in input buffers; inFlight counts flits
	// inside pipes. A router with both zero and no pending credits can be
	// skipped entirely.
	occupancy      int
	inFlight       int
	pendingCredits int

	// wake, when non-nil, is invoked whenever the router transitions from
	// idle to non-idle (a flit or a credit arrives at an idle router). The
	// network uses it to maintain the active-router set so Step and deliver
	// touch only routers with work. It must be idempotent.
	wake func()
	// awake mirrors the router's membership in the network's active set:
	// raised when wake fires, lowered by ClearAwake when the network
	// deregisters the router. It turns the per-arrival idle-transition
	// check into a single flag test.
	awake bool

	// dead marks a hard-killed router: its state has been purged and it
	// accepts neither flits nor credits. linkDown has bit p set while output
	// port p's channel is in an outage window: the port delivers no flits
	// and drains no credits. Both stay zero outside fault-injection runs, so
	// the fault checks on the hot paths never divert.
	dead     bool
	linkDown uint64

	// maskHot is true when ports*VCs fits in 64 bits, enabling the input-VC
	// state bitmasks below. The compute phases then iterate only VCs that
	// can make progress, in the same ascending/rotated order as the full
	// scans, so the fast path is bit-identical to the fallback. Bit p*VCs+v
	// denotes input VC (p, v).
	maskHot bool
	// legacyScan, set via SetLegacyScan, restores the pre-mask nested-loop
	// compute phases. The network's full-scan mode enables it so the legacy
	// path keeps the reference implementation's cost model and exercises
	// the original scan order as a determinism oracle for the mask paths.
	legacyScan bool
	occMask    uint64 // input VC holds at least one flit
	reqMask    uint64 // front packet routed but not yet granted an output VC
	gntMask    uint64 // front packet holds an output VC grant
	// gntPorts folds gntMask per input port: bit p is set while any VC of
	// input port p holds a grant. Switch allocation's stage 1 nominates
	// only from these ports.
	gntPorts uint64
	// creditMask has bit p set while output port p's credit pipe is
	// non-empty, so drainCredits touches only ports with credits in
	// flight. Indexed by port, not by VC, so it needs only ports <= 64.
	creditMask uint64
	// pipeMask has bit p set while output port p's pipeline holds at least
	// one flit, so the deliver phase visits only ports with in-flight work.
	// Router radix is bounded well below 64 for every supported topology.
	pipeMask uint64

	// Arbitration state.
	vaPtr    int
	saInPtr  []int
	saOutPtr []int

	// Per-cycle scratch, reused to avoid allocation.
	saInWin    []int // per input port: winning VC index or -1
	saInMatch  []bool
	saOutMatch []bool
	vaScratch  []int

	// Stats.
	FlitsRouted int64
	// portFlits counts flits forwarded through each output port, for
	// channel-utilization analysis.
	portFlits []int64

	// tracer, when non-nil, records head-flit lifecycle events
	// (route/VC-alloc/switch); nil keeps the hot path untouched.
	tracer *obs.Tracer

	// creditSink, when non-nil, receives credits destined for cross-tile
	// upstream routers (see upstreamRef.cross) instead of their being
	// applied in place; the sharded network drains the sink serially after
	// the parallel compute phase. Deferral is behaviour-preserving: a
	// credit pushed at cycle c is never ready before c+2 (link delay >= 1
	// plus the processing cycle), so applying it before or after the
	// upstream's own compute step yields the identical end-of-cycle state.
	creditSink func(up *Router, port, vc int)
}

// New constructs the router for node id of the given topology. Callers must
// have validated cfg. Upstream references are wired afterwards by the
// network via SetUpstream.
func New(id int, t *topology.Topology, alg routing.Algorithm, cfg Config) *Router {
	ports := t.Ports()
	r := &Router{
		ID:          id,
		topo:        t,
		alg:         alg,
		cfg:         cfg,
		ports:       ports,
		in:          make([][]*inVC, ports),
		out:         make([][]outVC, ports),
		pipes:       make([]*sim.DelayLine[Flit], ports),
		creditPipes: make([]*sim.DelayLine[int], ports),
		up:          make([]upstreamRef, ports),
		saInPtr:     make([]int, ports),
		saOutPtr:    make([]int, ports),
		saInWin:     make([]int, ports),
		saInMatch:   make([]bool, ports),
		saOutMatch:  make([]bool, ports),
		portFlits:   make([]int64, ports),
	}
	r.maskHot = ports*cfg.VCs <= 64
	r.numClasses = alg.NumClasses(t)
	r.qos = cfg.Classes
	if r.qos < 1 {
		r.qos = 1
	}
	r.strict = r.qos > 1 && cfg.ClassArb == StrictPriority
	r.vcQoS = make([]int8, cfg.VCs)
	r.qosMasks = make([]uint64, r.qos)
	for qc := 0; qc < r.qos; qc++ {
		lo, hi := r.qosRange(qc)
		for v := lo; v < hi; v++ {
			r.vcQoS[v] = int8(qc)
			for p := 0; p < ports; p++ {
				r.qosMasks[qc] |= 1 << uint(p*cfg.VCs+v)
			}
		}
	}
	local := t.LocalPort()
	for p := 0; p < ports; p++ {
		r.in[p] = make([]*inVC, cfg.VCs)
		r.out[p] = make([]outVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			r.in[p][v] = &inVC{buf: sim.NewBoundedFIFO[Flit](cfg.BufDepth)}
		}
		switch {
		case p == local:
			for v := range r.out[p] {
				r.out[p][v].credits = ejectionCredits
			}
			r.pipes[p] = sim.NewDelayLine[Flit](cfg.Delay)
		default:
			link := t.LinkAt(id, p)
			if link.Connected() {
				for v := range r.out[p] {
					r.out[p][v].credits = cfg.BufDepth
				}
				r.pipes[p] = sim.NewDelayLine[Flit](cfg.Delay + link.Delay)
				// Credits pay the reverse link plus one credit-processing
				// cycle at the receiving router.
				r.creditPipes[p] = sim.NewDelayLine[int](link.Delay + 1)
			}
		}
	}
	return r
}

// SetUpstream records that our input port is fed by the given upstream
// router's output port, so credits can be returned.
func (r *Router) SetUpstream(inPort int, up *Router, upPort int) {
	r.up[inPort] = upstreamRef{r: up, port: upPort}
}

// SetUpstreamCross marks input port inPort's upstream router as belonging
// to a different shard tile, routing its credits through the credit sink.
// Wiring-time only.
func (r *Router) SetUpstreamCross(inPort int) { r.up[inPort].cross = true }

// SetCreditSink installs the deferred-credit hook for cross-tile upstream
// references. Nil (the default) applies every credit in place. Wiring-time
// only.
func (r *Router) SetCreditSink(f func(up *Router, port, vc int)) { r.creditSink = f }

// SetTracer attaches a flit-lifecycle tracer (nil detaches it).
func (r *Router) SetTracer(t *obs.Tracer) { r.tracer = t }

// ClearAwake is called by the network when it removes the router from the
// active set; the next flit or credit arrival fires the wake callback
// again. Callers must only clear an Idle router, or arrivals would
// re-register a router that is already registered — harmless (markActive
// is idempotent) but wasted work.
func (r *Router) ClearAwake() { r.awake = false }

// SetWake registers the idle-to-active notification callback (nil, the
// default, disables notification; direct router tests need no network).
func (r *Router) SetWake(f func()) { r.wake = f }

// SampleVCOccupancy returns the average and maximum buffer occupancy in
// flits across every input VC. It walks all buffers, so it is meant for
// sampling-time use, not the per-cycle path.
func (r *Router) SampleVCOccupancy() (avg float64, max int) {
	vcs := 0
	for p := 0; p < r.ports; p++ {
		for v := 0; v < r.cfg.VCs; v++ {
			n := r.in[p][v].buf.Len()
			if n > max {
				max = n
			}
			vcs++
		}
	}
	if vcs > 0 {
		avg = float64(r.occupancy) / float64(vcs)
	}
	return avg, max
}

// qosRange maps a QoS class to its slice [lo, hi) of the VC space. With a
// single class this is the whole space.
func (r *Router) qosRange(qc int) (lo, hi int) {
	lo = qc * r.cfg.VCs / r.qos
	hi = (qc + 1) * r.cfg.VCs / r.qos
	return lo, hi
}

// classRange maps a routing VC class to its VC index range [lo, hi) within
// QoS class qc's partition. With one QoS class the partition is the whole
// VC space and the formula reduces to the classic routing-class split.
func (r *Router) classRange(qc, class int) (lo, hi int) {
	qlo, qhi := r.qosRange(qc)
	if class == routing.AnyClass {
		return qlo, qhi
	}
	w := qhi - qlo
	c := r.numClasses
	lo = qlo + class*w/c
	hi = qlo + (class+1)*w/c
	return lo, hi
}

// AcceptFlit places a delivered flit into the input buffer (port, vc). It
// panics if the buffer is full: credit-based flow control guarantees space,
// so overflow indicates a simulator bug.
func (r *Router) AcceptFlit(port, vc int, f Flit) {
	if f.Head() {
		f.P.Route.ArriveAt(r.ID)
	}
	if !r.awake && r.wake != nil {
		r.awake = true
		r.wake()
	}
	if !r.in[port][vc].buf.Push(f) {
		panic(fmt.Sprintf("router %d: input buffer overflow at port %d vc %d", r.ID, port, vc))
	}
	r.occupancy++
	r.occMask |= 1 << uint(port*r.cfg.VCs+vc)
}

// CanAcceptInjection reports whether the injection buffer (local port,
// VC 0) has space for another flit.
func (r *Router) CanAcceptInjection() bool {
	return !r.in[r.topo.LocalPort()][0].buf.Full()
}

// InjectionVC returns the VC index injected flits enter: a single FIFO
// source-queue model per the open-loop methodology.
func (r *Router) InjectionVC() int { return 0 }

// CanAcceptInjectionClass reports whether QoS class qc's injection buffer
// has space for another flit. Each class injects through the first VC of
// its own partition, so a backed-up low-priority class never blocks
// high-priority injection. With one class this is CanAcceptInjection.
func (r *Router) CanAcceptInjectionClass(qc int) bool {
	lo, _ := r.qosRange(qc)
	return !r.in[r.topo.LocalPort()][lo].buf.Full()
}

// InjectionVCClass returns the VC index class qc's injected flits enter:
// the first VC of the class's partition (VC 0 for a single class).
func (r *Router) InjectionVCClass(qc int) int {
	lo, _ := r.qosRange(qc)
	return lo
}

// SetLegacyScan toggles the reference nested-loop compute paths. With v
// true the router ignores its state bitmasks and scans every port and VC
// exactly the way the pre-optimization implementation did; the masks are
// still maintained, so the mode can be flipped between runs. The
// network's full-scan mode uses this to keep the legacy path an honest
// baseline and the determinism tests a reference-vs-optimized oracle.
func (r *Router) SetLegacyScan(v bool) {
	r.legacyScan = v
	r.maskHot = !v && r.ports*r.cfg.VCs <= 64
}

// receiveCredit schedules a credit return for output VC (port, vc); it
// becomes usable after the link delay.
func (r *Router) receiveCredit(now int64, port, vc int) {
	if r.dead {
		// Credits sent to a killed router vanish with it; accepting them
		// would leave it permanently non-idle.
		return
	}
	if !r.awake && r.wake != nil {
		r.awake = true
		r.wake()
	}
	r.creditPipes[port].Push(now, vc)
	r.pendingCredits++
	r.creditMask |= 1 << uint(port)
}

// PopDelivery removes the flit, if any, emerging from output port p's
// pipeline at cycle now.
func (r *Router) PopDelivery(now int64, p int) (Flit, bool) {
	if r.pipes[p] == nil || r.linkDown&(1<<uint(p)) != 0 {
		return Flit{}, false
	}
	f, ok := r.pipes[p].PopReady(now)
	if ok {
		r.inFlight--
		if r.pipes[p].Len() == 0 {
			r.pipeMask &^= 1 << uint(p)
		}
	}
	return f, ok
}

// PipeMask returns the bitmask of output ports whose pipelines currently
// hold in-flight flits; the deliver phase iterates only these ports.
func (r *Router) PipeMask() uint64 { return r.pipeMask }

// PortFlits returns the number of flits forwarded through output port p
// since construction.
func (r *Router) PortFlits(p int) int64 { return r.portFlits[p] }

// Idle reports whether the router holds no flits and no pending credits.
func (r *Router) Idle() bool {
	return r.occupancy == 0 && r.inFlight == 0 && r.pendingCredits == 0
}

// Occupancy returns the number of flits buffered in input VCs.
func (r *Router) Occupancy() int { return r.occupancy }

// InFlight returns the number of flits inside the router/link pipelines.
func (r *Router) InFlight() int { return r.inFlight }

// Step performs one compute cycle: credit intake, route computation, VC
// allocation and switch allocation. Flit movement between routers is
// handled by the network's deliver phase.
func (r *Router) Step(now int64) {
	if r.Idle() {
		return
	}
	r.drainCredits(now)
	if r.occupancy == 0 {
		return
	}
	r.routeCompute(now)
	r.vcAllocate(now)
	r.switchAllocate(now)
}

func (r *Router) drainCredits(now int64) {
	if r.pendingCredits == 0 {
		return
	}
	if !r.maskHot {
		for p := 0; p < r.ports; p++ {
			cp := r.creditPipes[p]
			if cp == nil || r.linkDown&(1<<uint(p)) != 0 {
				continue
			}
			for {
				vc, ok := cp.PopReady(now)
				if !ok {
					break
				}
				r.out[p][vc].credits++
				r.pendingCredits--
			}
			if cp.Len() == 0 {
				r.creditMask &^= 1 << uint(p)
			}
		}
		return
	}
	for m := r.creditMask &^ r.linkDown; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		cp := r.creditPipes[p]
		for {
			vc, ok := cp.PopReady(now)
			if !ok {
				break
			}
			r.out[p][vc].credits++
			r.pendingCredits--
		}
		if cp.Len() == 0 {
			r.creditMask &^= 1 << uint(p)
		}
	}
}

// routeCompute fills in candidates for every input VC whose front flit is
// an unrouted head. Only non-empty VCs can hold one, so the mask path
// visits exactly the occupied VCs, in the same ascending (port, vc) order
// as the full scan.
func (r *Router) routeCompute(now int64) {
	if r.maskHot {
		for m := r.occMask; m != 0; m &= m - 1 {
			flat := bits.TrailingZeros64(m)
			r.routeVC(now, flat/r.cfg.VCs, flat%r.cfg.VCs)
		}
		return
	}
	for p := 0; p < r.ports; p++ {
		for v := 0; v < r.cfg.VCs; v++ {
			r.routeVC(now, p, v)
		}
	}
}

// routeVC routes the front packet of input VC (p, v) if it is an unrouted
// head flit.
func (r *Router) routeVC(now int64, p, v int) {
	ivc := r.in[p][v]
	if ivc.routed {
		return
	}
	f, ok := ivc.buf.Peek()
	if !ok || !f.Head() {
		return
	}
	ivc.cands = r.alg.Candidates(r.topo, r.ID, f.P.Dst, &f.P.Route, ivc.cands[:0])
	if len(ivc.cands) == 0 {
		panic(fmt.Sprintf("router %d: no route for packet %d (dst %d)", r.ID, f.P.ID, f.P.Dst))
	}
	ivc.routed = true
	r.reqMask |= 1 << uint(p*r.cfg.VCs+v)
	if r.tracer != nil {
		r.tracer.Record(now, f.P.ID, r.ID, obs.PhaseRoute)
	}
}

// vcAllocate grants free output VCs to routed-but-ungranted input VCs.
// Requests are served in round-robin or age order; each request picks the
// free VC with the most credits among its candidates, which doubles as the
// congestion-sensitive output selection of adaptive routing.
func (r *Router) vcAllocate(now int64) {
	total := r.ports * r.cfg.VCs
	if r.maskHot && r.cfg.Arb != AgeBased {
		// Round robin over the request mask: bits >= vaPtr in ascending
		// order, then the wrap-around below it — exactly the (vaPtr+i)%total
		// visiting order of the full scan, touching only actual requests.
		// Under strict priority the rotation runs class by class; classes
		// own disjoint VC partitions, so this changes the service order,
		// never which output VCs are reachable.
		if r.reqMask != 0 {
			below := uint64(1)<<uint(r.vaPtr) - 1
			if r.strict {
				for qc := 0; qc < r.qos; qc++ {
					cm := r.reqMask & r.qosMasks[qc]
					for m := cm &^ below; m != 0; m &= m - 1 {
						r.vaTryGrant(now, bits.TrailingZeros64(m))
					}
					for m := cm & below; m != 0; m &= m - 1 {
						r.vaTryGrant(now, bits.TrailingZeros64(m))
					}
				}
			} else {
				for m := r.reqMask &^ below; m != 0; m &= m - 1 {
					r.vaTryGrant(now, bits.TrailingZeros64(m))
				}
				for m := r.reqMask & below; m != 0; m &= m - 1 {
					r.vaTryGrant(now, bits.TrailingZeros64(m))
				}
			}
		}
		r.vaPtr++
		if r.vaPtr >= total {
			r.vaPtr = 0
		}
		return
	}
	order := r.vaOrder()
	for _, flat := range order {
		r.vaTryGrant(now, flat)
	}
	r.vaPtr = (r.vaPtr + 1) % total
}

// vaTryGrant gives input VC flat the free candidate output VC with the
// most credits, if it is requesting and one is available.
func (r *Router) vaTryGrant(now int64, flat int) {
	p, v := flat/r.cfg.VCs, flat%r.cfg.VCs
	ivc := r.in[p][v]
	if !ivc.routed || ivc.granted {
		return
	}
	// The packet's QoS class is static per input VC (see vcQoS); its
	// output-VC candidates come from the matching partition downstream.
	qc := int(r.vcQoS[v])
	bestPort, bestVC, bestClass, bestCred := -1, -1, routing.AnyClass, -1
	for _, c := range ivc.cands {
		lo, hi := r.classRange(qc, c.Class)
		for ov := lo; ov < hi; ov++ {
			o := &r.out[c.Port][ov]
			if o.owned {
				continue
			}
			if o.credits > bestCred {
				bestPort, bestVC, bestClass, bestCred = c.Port, ov, c.Class, o.credits
			}
		}
	}
	if bestPort >= 0 {
		ivc.granted = true
		ivc.outPort, ivc.outVC, ivc.outClass = bestPort, bestVC, bestClass
		r.out[bestPort][bestVC].owned = true
		r.reqMask &^= 1 << uint(flat)
		r.gntMask |= 1 << uint(flat)
		r.gntPorts |= 1 << uint(p)
		if r.tracer != nil {
			if f, ok := ivc.buf.Peek(); ok {
				r.tracer.Record(now, f.P.ID, r.ID, obs.PhaseVCAlloc)
			}
		}
	}
}

// vaOrder returns the order in which VC allocation requests are served.
// The returned slice is scratch storage reused across cycles.
func (r *Router) vaOrder() []int {
	total := r.ports * r.cfg.VCs
	order := r.vaScratch[:0]
	defer func() { r.vaScratch = order[:0] }()
	if r.cfg.Arb == AgeBased {
		// Oldest front packet first (insertion sort; total is small).
		// Under strict priority the key is (class, age): all class-0
		// requests precede class 1, age ordering within each class.
		type req struct {
			flat int
			qc   int8
			age  int64
		}
		reqs := make([]req, 0, total)
		for p := 0; p < r.ports; p++ {
			for v := 0; v < r.cfg.VCs; v++ {
				ivc := r.in[p][v]
				if !ivc.routed || ivc.granted {
					continue
				}
				f, ok := ivc.buf.Peek()
				if !ok {
					continue
				}
				q := req{flat: p*r.cfg.VCs + v, age: f.P.CreateTime}
				if r.strict {
					q.qc = r.vcQoS[v]
				}
				reqs = append(reqs, q)
			}
		}
		for i := 1; i < len(reqs); i++ {
			for j := i; j > 0 && (reqs[j].qc < reqs[j-1].qc ||
				(reqs[j].qc == reqs[j-1].qc && reqs[j].age < reqs[j-1].age)); j-- {
				reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
			}
		}
		for _, q := range reqs {
			order = append(order, q.flat)
		}
		return order
	}
	if r.strict {
		// Class-major rotation: class 0's requests in (vaPtr+i)%total
		// order, then class 1's, and so on.
		for qc := int8(0); int(qc) < r.qos; qc++ {
			for i := 0; i < total; i++ {
				flat := (r.vaPtr + i) % total
				if r.vcQoS[flat%r.cfg.VCs] == qc {
					order = append(order, flat)
				}
			}
		}
		return order
	}
	for i := 0; i < total; i++ {
		order = append(order, (r.vaPtr+i)%total)
	}
	return order
}

// switchAllocate performs the two-stage separable switch allocation and
// forwards the winning flits into the output pipelines. With SAIterations
// > 1, unmatched ports get further matching passes (iSLIP).
func (r *Router) switchAllocate(now int64) {
	if r.maskHot && r.gntMask == 0 {
		// No input VC holds an output grant, so no port can nominate: the
		// full allocation would match nothing and change no state.
		return
	}
	iters := r.cfg.SAIterations
	if iters < 1 {
		iters = 1
	}
	if r.maskHot {
		r.switchAllocateMask(now, iters)
		return
	}
	for p := 0; p < r.ports; p++ {
		r.saInMatch[p] = false
		r.saOutMatch[p] = false
	}
	for it := 0; it < iters; it++ {
		// Stage 1: each unmatched input port nominates one ready VC.
		for p := 0; p < r.ports; p++ {
			if r.saInMatch[p] {
				r.saInWin[p] = -1
				continue
			}
			r.saInWin[p] = r.pickInputVC(p)
		}
		// Stage 2: each unmatched output port picks one requesting input,
		// visiting every port in ascending order as the reference
		// implementation did.
		progress := false
		for outP := 0; outP < r.ports; outP++ {
			if r.saOutMatch[outP] {
				continue
			}
			win := r.pickInputPort(outP)
			if win < 0 {
				continue
			}
			r.forward(now, win, r.saInWin[win])
			r.saInMatch[win] = true
			r.saOutMatch[outP] = true
			progress = true
		}
		if !progress {
			break
		}
	}
}

// switchAllocateMask is the bitmask fast path of switchAllocate. It tracks
// matched inputs/outputs and current nominations in port masks instead of
// the per-cycle scratch arrays, so stage 1 touches only ports holding a VC
// grant (gntPorts) and stage 2 only the outputs those nominations target.
// Both stages visit ports in the same order as the reference scans minus
// ports that could not match, so matching — and therefore every forward —
// is bit-identical to the legacy path.
func (r *Router) switchAllocateMask(now int64, iters int) {
	var inMatched, outMatched uint64
	for it := 0; it < iters; it++ {
		// Stage 1: each unmatched input port with a granted VC nominates
		// one ready VC. nom records which saInWin entries are live this
		// iteration; entries of non-nominating ports are stale and must
		// never be read.
		var targets, nom uint64
		for m := r.gntPorts &^ inMatched; m != 0; m &= m - 1 {
			p := bits.TrailingZeros64(m)
			v := r.pickInputVC(p)
			if v >= 0 {
				r.saInWin[p] = v
				nom |= 1 << uint(p)
				targets |= 1 << uint(r.in[p][v].outPort)
			}
		}
		// Stage 2: each unmatched targeted output picks one nominating
		// input, in ascending output-port order.
		progress := false
		for t := targets &^ outMatched; t != 0; t &= t - 1 {
			outP := bits.TrailingZeros64(t)
			win := r.pickInputPortMask(outP, nom)
			if win < 0 {
				continue
			}
			r.forward(now, win, r.saInWin[win])
			inMatched |= 1 << uint(win)
			nom &^= 1 << uint(win)
			outMatched |= 1 << uint(outP)
			progress = true
		}
		if !progress {
			break
		}
	}
}

// pickInputVC returns the index of the VC at input port p that wins the
// port's crossbar input this cycle, or -1. Under strict priority the
// lowest-class ready VC wins; the configured policy (rotation order or
// age) breaks ties within the winning class.
func (r *Router) pickInputVC(p int) int {
	v := r.cfg.VCs
	if r.maskHot && r.gntMask>>uint(p*v)&(uint64(1)<<uint(v)-1) == 0 {
		return -1 // no VC of this port holds a grant, so none is ready
	}
	best := -1
	bestClass := int8(127)
	var bestAge int64
	for i := 0; i < v; i++ {
		cand := r.saInPtr[p] + i
		if cand >= v {
			cand -= v
		}
		ivc := r.in[p][cand]
		if !ivc.granted {
			continue
		}
		f, ok := ivc.buf.Peek()
		if !ok {
			continue
		}
		if r.out[ivc.outPort][ivc.outVC].credits <= 0 {
			continue
		}
		if r.strict {
			qc := r.vcQoS[cand]
			switch {
			case r.cfg.Arb == AgeBased:
				if best < 0 || qc < bestClass || (qc == bestClass && f.P.CreateTime < bestAge) {
					best, bestClass, bestAge = cand, qc, f.P.CreateTime
				}
			case qc < bestClass:
				// First ready VC of the lowest class in rotation order.
				best, bestClass = cand, qc
				if qc == 0 {
					return best
				}
			}
			continue
		}
		if r.cfg.Arb == AgeBased {
			if best < 0 || f.P.CreateTime < bestAge {
				best, bestAge = cand, f.P.CreateTime
			}
		} else {
			return cand // first in round-robin order wins
		}
	}
	return best
}

// pickInputPort returns the input port whose nominated flit wins output
// port outP this cycle, or -1.
// pickInputPortMask is pickInputPort for the mask fast path: nom marks the
// input ports whose saInWin entry is a live nomination from the current
// stage 1; all other entries are stale and skipped. The round-robin visit
// order is unchanged.
func (r *Router) pickInputPortMask(outP int, nom uint64) int {
	best := -1
	bestClass := int8(127)
	var bestAge int64
	for i := 0; i < r.ports; i++ {
		cand := r.saOutPtr[outP] + i
		if cand >= r.ports {
			cand -= r.ports
		}
		if nom&(1<<uint(cand)) == 0 {
			continue
		}
		ivc := r.in[cand][r.saInWin[cand]]
		if ivc.outPort != outP {
			continue
		}
		if r.strict {
			qc := r.vcQoS[r.saInWin[cand]]
			switch {
			case r.cfg.Arb == AgeBased:
				f, _ := ivc.buf.Peek()
				if best < 0 || qc < bestClass || (qc == bestClass && f.P.CreateTime < bestAge) {
					best, bestClass, bestAge = cand, qc, f.P.CreateTime
				}
			case qc < bestClass:
				best, bestClass = cand, qc
				if qc == 0 {
					return best
				}
			}
			continue
		}
		if r.cfg.Arb == AgeBased {
			f, _ := ivc.buf.Peek()
			if best < 0 || f.P.CreateTime < bestAge {
				best, bestAge = cand, f.P.CreateTime
			}
		} else {
			return cand
		}
	}
	return best
}

func (r *Router) pickInputPort(outP int) int {
	best := -1
	bestClass := int8(127)
	var bestAge int64
	for i := 0; i < r.ports; i++ {
		cand := r.saOutPtr[outP] + i
		if cand >= r.ports {
			cand -= r.ports
		}
		v := r.saInWin[cand]
		if v < 0 {
			continue
		}
		ivc := r.in[cand][v]
		if ivc.outPort != outP {
			continue
		}
		if r.strict {
			qc := r.vcQoS[v]
			switch {
			case r.cfg.Arb == AgeBased:
				f, _ := ivc.buf.Peek()
				if best < 0 || qc < bestClass || (qc == bestClass && f.P.CreateTime < bestAge) {
					best, bestClass, bestAge = cand, qc, f.P.CreateTime
				}
			case qc < bestClass:
				best, bestClass = cand, qc
				if qc == 0 {
					return best
				}
			}
			continue
		}
		if r.cfg.Arb == AgeBased {
			f, _ := ivc.buf.Peek()
			if best < 0 || f.P.CreateTime < bestAge {
				best, bestAge = cand, f.P.CreateTime
			}
		} else {
			best = cand
			break
		}
	}
	return best
}

// forward moves the winning flit from input (p, v) into its output
// pipeline, maintaining credits, ownership and routing state.
func (r *Router) forward(now int64, p, v int) {
	ivc := r.in[p][v]
	f, _ := ivc.buf.Pop()
	r.occupancy--
	if ivc.buf.Len() == 0 {
		r.occMask &^= 1 << uint(p*r.cfg.VCs+v)
	}
	r.FlitsRouted++
	outP, outV := ivc.outPort, ivc.outVC

	local := r.topo.LocalPort()
	if outP != local {
		r.out[outP][outV].credits--
		if f.Head() {
			r.alg.Committed(r.topo, &f.P.Route, ivc.outClass)
			f.P.Route.Traverse(r.topo.LinkAt(r.ID, outP))
			f.P.Hops++
		}
	}
	f.VC = int32(outV)
	r.pipes[outP].Push(now, f)
	r.inFlight++
	r.pipeMask |= 1 << uint(outP)
	r.portFlits[outP]++
	if r.tracer != nil && f.Head() {
		r.tracer.Record(now, f.P.ID, r.ID, obs.PhaseSwitch)
	}

	// Return a credit for the buffer slot we just freed. Cross-tile
	// credits are deferred through the sink so parallel tile steps never
	// touch another tile's router; each input port forwards at most one
	// flit per cycle, so deferral cannot reorder credits within a pipe.
	if up := r.up[p]; up.r != nil {
		if up.cross && r.creditSink != nil {
			r.creditSink(up.r, up.port, v)
		} else {
			up.r.receiveCredit(now, up.port, v)
		}
	}

	if f.Tail() {
		r.out[outP][outV].owned = false
		ivc.reset()
		r.gntMask &^= 1 << uint(p*r.cfg.VCs+v)
		if r.gntMask>>uint(p*r.cfg.VCs)&(uint64(1)<<uint(r.cfg.VCs)-1) == 0 {
			r.gntPorts &^= 1 << uint(p)
		}
	}
	// Advance round-robin pointers past the winners.
	if v+1 == r.cfg.VCs {
		r.saInPtr[p] = 0
	} else {
		r.saInPtr[p] = v + 1
	}
	if p+1 == r.ports {
		r.saOutPtr[outP] = 0
	} else {
		r.saOutPtr[outP] = p + 1
	}
	// The winner consumed this input port's nomination.
	r.saInWin[p] = -1
}

// --- Fault-injection support ----------------------------------------------
//
// The methods below exist for internal/fault and its invariant harness.
// None of them is called on fault-free runs, and the two flags they set
// (dead, linkDown) cost the hot paths only the always-false checks wired in
// above.

// Dead reports whether the router has been hard-killed.
func (r *Router) Dead() bool { return r.dead }

// LinkIsDown reports whether output port p is inside an outage window.
func (r *Router) LinkIsDown(p int) bool { return r.linkDown&(1<<uint(p)) != 0 }

// SetLinkDown opens or closes an outage window on output port p: a down
// port delivers no flits and drains no returning credits, freezing the
// channel's contents in place. Flow control stays intact — forwarding into
// the down channel stops once its credits exhaust, and everything frozen
// resumes when the window closes.
func (r *Router) SetLinkDown(p int, down bool) {
	if down {
		r.linkDown |= 1 << uint(p)
	} else {
		r.linkDown &^= 1 << uint(p)
	}
}

// Kill hard-fails the router at cycle now: every buffered flit, in-flight
// pipeline flit and queued credit is purged, with onFlit invoked for each
// discarded flit so the network can account the loss. Credits for purged
// input-buffer flits are bounced upstream (the buffer slots are gone with
// the router, but the upstream's credit counters must stay conserved for
// the surviving fabric). A dead router accepts neither flits nor credits;
// deliveries into it are discarded by the network.
func (r *Router) Kill(now int64, onFlit func(f Flit)) {
	if r.dead {
		return
	}
	r.dead = true
	for p := 0; p < r.ports; p++ {
		for v := 0; v < r.cfg.VCs; v++ {
			ivc := r.in[p][v]
			for {
				f, ok := ivc.buf.Pop()
				if !ok {
					break
				}
				onFlit(f)
				if up := r.up[p]; up.r != nil {
					up.r.receiveCredit(now, up.port, v)
				}
			}
			ivc.reset()
		}
		if pp := r.pipes[p]; pp != nil {
			pp.Drain(func(f Flit) { onFlit(f) })
		}
		if cp := r.creditPipes[p]; cp != nil {
			cp.Drain(func(int) {})
		}
		for v := range r.out[p] {
			r.out[p][v].owned = false
		}
	}
	r.occupancy, r.inFlight, r.pendingCredits = 0, 0, 0
	r.occMask, r.reqMask, r.gntMask, r.gntPorts = 0, 0, 0, 0
	r.creditMask, r.pipeMask = 0, 0
}

// ReturnCredit bounces a credit for output VC (port, vc) back to this
// router, as if the discarded flit had been accepted downstream and
// instantly forwarded. The fault layer uses it when a delivery is discarded
// (drop, dead packet, dead destination) so sender-side credits never leak.
func (r *Router) ReturnCredit(now int64, port, vc int) { r.receiveCredit(now, port, vc) }

// OutCredits returns the credit count of output VC (p, vc); invariant
// checking compares it against the downstream buffer state.
func (r *Router) OutCredits(p, vc int) int { return r.out[p][vc].credits }

// OutOwned reports whether output VC (p, vc) is currently allocated to an
// in-flight packet.
func (r *Router) OutOwned(p, vc int) bool { return r.out[p][vc].owned }

// InBufLen returns the number of flits buffered in input VC (p, vc).
func (r *Router) InBufLen(p, vc int) int { return r.in[p][vc].buf.Len() }

// PipeFlitsVC counts the flits in output port p's pipeline traveling on
// VC vc.
func (r *Router) PipeFlitsVC(p, vc int) int {
	if r.pipes[p] == nil {
		return 0
	}
	n := 0
	r.pipes[p].ForEach(func(f Flit) {
		if int(f.VC) == vc {
			n++
		}
	})
	return n
}

// CreditsInFlight counts the credits for VC vc queued in output port p's
// credit pipe.
func (r *Router) CreditsInFlight(p, vc int) int {
	if r.creditPipes[p] == nil {
		return 0
	}
	n := 0
	r.creditPipes[p].ForEach(func(v int) {
		if v == vc {
			n++
		}
	})
	return n
}

// PendingCredits returns the number of credits queued in this router's
// credit pipes (for stuck-state dumps).
func (r *Router) PendingCredits() int { return r.pendingCredits }

// StuckVCs summarizes every input VC holding flits or an unreleased grant,
// for the deadlock watchdog's dump. Each entry reports the VC, its buffer
// depth, and the granted output if any.
func (r *Router) StuckVCs() []StuckVC {
	var out []StuckVC
	for p := 0; p < r.ports; p++ {
		for v := 0; v < r.cfg.VCs; v++ {
			ivc := r.in[p][v]
			if ivc.buf.Len() == 0 && !ivc.granted {
				continue
			}
			s := StuckVC{Port: p, VC: v, Buffered: ivc.buf.Len(), Granted: ivc.granted}
			if ivc.granted {
				s.OutPort, s.OutVC = ivc.outPort, ivc.outVC
				s.OutCredits = r.out[ivc.outPort][ivc.outVC].credits
			}
			if f, ok := ivc.buf.Peek(); ok {
				s.PacketID = f.P.ID
			}
			out = append(out, s)
		}
	}
	return out
}

// StuckVC describes one input VC that still holds state (see StuckVCs).
type StuckVC struct {
	Port, VC       int
	Buffered       int
	Granted        bool
	OutPort, OutVC int
	OutCredits     int
	PacketID       uint64
}
