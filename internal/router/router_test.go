package router

import (
	"strings"
	"testing"

	"noceval/internal/routing"
	"noceval/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	good := Config{VCs: 4, BufDepth: 4, Delay: 1}
	if err := good.Validate(topo, routing.Valiant{}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []Config{
		{VCs: 0, BufDepth: 4, Delay: 1},
		{VCs: 2, BufDepth: 0, Delay: 1},
		{VCs: 2, BufDepth: 4, Delay: 0},
		{VCs: 2, BufDepth: 4, Delay: 1}, // VAL on torus needs 4 classes
	}
	for i, c := range cases {
		if err := c.Validate(topo, routing.Valiant{}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// 2 VCs is fine for DOR on a mesh.
	mesh := topology.NewMesh(4, 4)
	if err := (Config{VCs: 1, BufDepth: 1, Delay: 1}).Validate(mesh, routing.DOR{}); err != nil {
		t.Errorf("minimal mesh config rejected: %v", err)
	}
}

// TestConfigValidateClasses drives the class→VC partition check: every QoS
// class's VC slice must hold at least the routing algorithm's deadlock
// class count, and the error has to name the class and the shortfall.
func TestConfigValidateClasses(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	torus := topology.NewTorus(4, 4)
	cases := []struct {
		name    string
		cfg     Config
		topo    *topology.Topology
		alg     routing.Algorithm
		ok      bool
		errWant []string // substrings the error must contain
	}{
		{name: "single class unaffected", cfg: Config{VCs: 2, BufDepth: 4, Delay: 1}, topo: mesh, alg: routing.DOR{}, ok: true},
		{name: "two classes on DOR mesh", cfg: Config{VCs: 2, BufDepth: 4, Delay: 1, Classes: 2}, topo: mesh, alg: routing.DOR{}, ok: true},
		{name: "two classes need 4 VCs under VAL", cfg: Config{VCs: 4, BufDepth: 4, Delay: 1, Classes: 2}, topo: torus, alg: routing.Valiant{}, ok: false,
			errWant: []string{"class 0", "short 2"}},
		{name: "two classes x VAL torus fit in 8 VCs", cfg: Config{VCs: 8, BufDepth: 4, Delay: 1, Classes: 2}, topo: torus, alg: routing.Valiant{}, ok: true},
		{name: "three classes over 4 VCs starve class 0", cfg: Config{VCs: 4, BufDepth: 4, Delay: 1, Classes: 3}, topo: mesh, alg: routing.DOR{}, ok: true},
		{name: "more classes than VCs", cfg: Config{VCs: 2, BufDepth: 4, Delay: 1, Classes: 3}, topo: mesh, alg: routing.DOR{}, ok: false,
			errWant: []string{"class 0", "0 of 2 VCs", "short 1"}},
		{name: "negative classes", cfg: Config{VCs: 2, BufDepth: 4, Delay: 1, Classes: -1}, topo: mesh, alg: routing.DOR{}, ok: false},
	}
	for _, c := range cases {
		err := c.cfg.Validate(c.topo, c.alg)
		if c.ok && err != nil {
			t.Errorf("%s: valid config rejected: %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: invalid config accepted", c.name)
				continue
			}
			for _, want := range c.errWant {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("%s: error %q missing %q", c.name, err, want)
				}
			}
		}
	}
}

// TestQoSRange checks the class→VC partition and the routing-class split
// nested inside it.
func TestQoSRange(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	// Valiant on torus needs 4 routing classes; 2 QoS classes over 8 VCs
	// give each class 4 VCs, one per routing class.
	r := New(0, topo, routing.Valiant{}, Config{VCs: 8, BufDepth: 2, Delay: 1, Classes: 2})
	if lo, hi := r.qosRange(0); lo != 0 || hi != 4 {
		t.Errorf("QoS class 0 range [%d,%d), want [0,4)", lo, hi)
	}
	if lo, hi := r.qosRange(1); lo != 4 || hi != 8 {
		t.Errorf("QoS class 1 range [%d,%d), want [4,8)", lo, hi)
	}
	// Routing classes subdivide each QoS slice.
	if lo, hi := r.classRange(1, 0); lo != 4 || hi != 5 {
		t.Errorf("QoS 1 routing 0 = [%d,%d), want [4,5)", lo, hi)
	}
	if lo, hi := r.classRange(1, routing.AnyClass); lo != 4 || hi != 8 {
		t.Errorf("QoS 1 any-class = [%d,%d), want [4,8)", lo, hi)
	}
	// The static VC→class table mirrors the partition.
	for v := 0; v < 8; v++ {
		want := int8(0)
		if v >= 4 {
			want = 1
		}
		if r.vcQoS[v] != want {
			t.Errorf("vcQoS[%d] = %d, want %d", v, r.vcQoS[v], want)
		}
	}
	// Per-class injection uses the first VC of each slice.
	if r.InjectionVCClass(0) != 0 || r.InjectionVCClass(1) != 4 {
		t.Errorf("injection VCs = %d, %d; want 0, 4", r.InjectionVCClass(0), r.InjectionVCClass(1))
	}
}

// TestStrictPrioritySwitch drives two single-flit packets of different
// classes through one router so they contend for the same output port, and
// checks the high-priority one wins the crossbar.
func TestStrictPrioritySwitch(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	local := topo.LocalPort()
	r := New(0, topo, routing.DOR{}, Config{VCs: 2, BufDepth: 2, Delay: 1, Classes: 2})
	mk := func(id uint64, class int) Flit {
		p := &Packet{ID: id, Src: 0, Dst: 3, Size: 1, Class: class, CreateTime: 0}
		p.Route = routing.NewState(-1)
		return Flits(p)[0]
	}
	// Low priority arrives first in its own injection VC, then high.
	r.AcceptFlit(local, r.InjectionVCClass(1), mk(1, 1))
	r.AcceptFlit(local, r.InjectionVCClass(0), mk(2, 0))
	r.Step(0)
	// Both route to the same output port (east toward node 3); exactly one
	// wins switch allocation per cycle, and strict priority says class 0.
	// The output pipeline carries tr + linkDelay = 2 cycles.
	var won []uint64
	for p := 0; p < r.ports; p++ {
		f, ok := r.PopDelivery(2, p)
		if ok {
			won = append(won, f.P.ID)
		}
	}
	if len(won) != 1 || won[0] != 2 {
		t.Fatalf("first switch winner = %v, want the class-0 packet (ID 2)", won)
	}
}

func TestClassRange(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(0, topo, routing.Valiant{}, Config{VCs: 4, BufDepth: 2, Delay: 1})
	// Valiant on mesh: 2 classes over 4 VCs -> [0,2) and [2,4).
	if lo, hi := r.classRange(0, 0); lo != 0 || hi != 2 {
		t.Errorf("class 0 range [%d,%d)", lo, hi)
	}
	if lo, hi := r.classRange(0, 1); lo != 2 || hi != 4 {
		t.Errorf("class 1 range [%d,%d)", lo, hi)
	}
	if lo, hi := r.classRange(0, routing.AnyClass); lo != 0 || hi != 4 {
		t.Errorf("any-class range [%d,%d)", lo, hi)
	}
}

func TestClassRangeUneven(t *testing.T) {
	// MA on a torus needs 3 classes; with 4 VCs the split is 1/1/2.
	topo := topology.NewTorus(4, 4)
	r := New(0, topo, routing.MinimalAdaptive{}, Config{VCs: 4, BufDepth: 2, Delay: 1})
	sizes := []int{}
	covered := 0
	for cls := 0; cls < 3; cls++ {
		lo, hi := r.classRange(0, cls)
		if hi <= lo {
			t.Fatalf("class %d empty: [%d,%d)", cls, lo, hi)
		}
		if lo != covered {
			t.Fatalf("class %d starts at %d, want %d (no gaps/overlap)", cls, lo, covered)
		}
		covered = hi
		sizes = append(sizes, hi-lo)
	}
	if covered != 4 {
		t.Fatalf("classes cover %d VCs, want 4", covered)
	}
	_ = sizes
}

func TestFlits(t *testing.T) {
	p := &Packet{ID: 1, Size: 3}
	fs := Flits(p)
	if len(fs) != 3 {
		t.Fatalf("flit count = %d", len(fs))
	}
	if !fs[0].Head() || fs[0].Tail() {
		t.Error("first flit head/tail flags wrong")
	}
	if fs[1].Head() || fs[1].Tail() {
		t.Error("middle flit flags wrong")
	}
	if fs[2].Head() || !fs[2].Tail() {
		t.Error("last flit flags wrong")
	}
	single := Flits(&Packet{ID: 2, Size: 1})
	if !single[0].Head() || !single[0].Tail() {
		t.Error("single-flit packet flags wrong")
	}
}

func TestPacketLatencies(t *testing.T) {
	p := &Packet{CreateTime: 10, InjectTime: 15, ArriveTime: 40}
	if p.Latency() != 30 || p.NetworkLatency() != 25 {
		t.Errorf("latencies = %d, %d", p.Latency(), p.NetworkLatency())
	}
}

func TestKindAndArbStrings(t *testing.T) {
	if KindRequest.String() != "req" || KindReply.String() != "reply" || KindData.String() != "data" {
		t.Error("kind strings broken")
	}
	if RoundRobin.String() != "rr" || AgeBased.String() != "age" {
		t.Error("arb strings broken")
	}
}

func TestIdleRouterSkipsWork(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(5, topo, routing.DOR{}, Config{VCs: 2, BufDepth: 4, Delay: 1})
	if !r.Idle() {
		t.Fatal("fresh router not idle")
	}
	r.Step(0)
	if r.FlitsRouted != 0 {
		t.Error("idle router routed flits")
	}
	p := &Packet{ID: 1, Src: 5, Dst: 6, Size: 1}
	p.Route = routing.NewState(-1)
	r.AcceptFlit(topo.LocalPort(), 0, Flit{P: p})
	if r.Idle() {
		t.Fatal("router with buffered flit reports idle")
	}
	r.Step(0)
	if r.FlitsRouted != 1 {
		t.Errorf("flit not forwarded: routed=%d", r.FlitsRouted)
	}
}

func TestInjectionBackpressure(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(0, topo, routing.DOR{}, Config{VCs: 2, BufDepth: 2, Delay: 1})
	p := &Packet{ID: 1, Src: 0, Dst: 15, Size: 4}
	p.Route = routing.NewState(-1)
	fs := Flits(p)
	if !r.CanAcceptInjection() {
		t.Fatal("fresh injection buffer full")
	}
	r.AcceptFlit(topo.LocalPort(), 0, fs[0])
	r.AcceptFlit(topo.LocalPort(), 0, fs[1])
	if r.CanAcceptInjection() {
		t.Error("injection buffer of depth 2 not full after 2 flits")
	}
}
