package router

import (
	"testing"

	"noceval/internal/routing"
	"noceval/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	good := Config{VCs: 4, BufDepth: 4, Delay: 1}
	if err := good.Validate(topo, routing.Valiant{}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []Config{
		{VCs: 0, BufDepth: 4, Delay: 1},
		{VCs: 2, BufDepth: 0, Delay: 1},
		{VCs: 2, BufDepth: 4, Delay: 0},
		{VCs: 2, BufDepth: 4, Delay: 1}, // VAL on torus needs 4 classes
	}
	for i, c := range cases {
		if err := c.Validate(topo, routing.Valiant{}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// 2 VCs is fine for DOR on a mesh.
	mesh := topology.NewMesh(4, 4)
	if err := (Config{VCs: 1, BufDepth: 1, Delay: 1}).Validate(mesh, routing.DOR{}); err != nil {
		t.Errorf("minimal mesh config rejected: %v", err)
	}
}

func TestClassRange(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(0, topo, routing.Valiant{}, Config{VCs: 4, BufDepth: 2, Delay: 1})
	// Valiant on mesh: 2 classes over 4 VCs -> [0,2) and [2,4).
	if lo, hi := r.classRange(0); lo != 0 || hi != 2 {
		t.Errorf("class 0 range [%d,%d)", lo, hi)
	}
	if lo, hi := r.classRange(1); lo != 2 || hi != 4 {
		t.Errorf("class 1 range [%d,%d)", lo, hi)
	}
	if lo, hi := r.classRange(routing.AnyClass); lo != 0 || hi != 4 {
		t.Errorf("any-class range [%d,%d)", lo, hi)
	}
}

func TestClassRangeUneven(t *testing.T) {
	// MA on a torus needs 3 classes; with 4 VCs the split is 1/1/2.
	topo := topology.NewTorus(4, 4)
	r := New(0, topo, routing.MinimalAdaptive{}, Config{VCs: 4, BufDepth: 2, Delay: 1})
	sizes := []int{}
	covered := 0
	for cls := 0; cls < 3; cls++ {
		lo, hi := r.classRange(cls)
		if hi <= lo {
			t.Fatalf("class %d empty: [%d,%d)", cls, lo, hi)
		}
		if lo != covered {
			t.Fatalf("class %d starts at %d, want %d (no gaps/overlap)", cls, lo, covered)
		}
		covered = hi
		sizes = append(sizes, hi-lo)
	}
	if covered != 4 {
		t.Fatalf("classes cover %d VCs, want 4", covered)
	}
	_ = sizes
}

func TestFlits(t *testing.T) {
	p := &Packet{ID: 1, Size: 3}
	fs := Flits(p)
	if len(fs) != 3 {
		t.Fatalf("flit count = %d", len(fs))
	}
	if !fs[0].Head() || fs[0].Tail() {
		t.Error("first flit head/tail flags wrong")
	}
	if fs[1].Head() || fs[1].Tail() {
		t.Error("middle flit flags wrong")
	}
	if fs[2].Head() || !fs[2].Tail() {
		t.Error("last flit flags wrong")
	}
	single := Flits(&Packet{ID: 2, Size: 1})
	if !single[0].Head() || !single[0].Tail() {
		t.Error("single-flit packet flags wrong")
	}
}

func TestPacketLatencies(t *testing.T) {
	p := &Packet{CreateTime: 10, InjectTime: 15, ArriveTime: 40}
	if p.Latency() != 30 || p.NetworkLatency() != 25 {
		t.Errorf("latencies = %d, %d", p.Latency(), p.NetworkLatency())
	}
}

func TestKindAndArbStrings(t *testing.T) {
	if KindRequest.String() != "req" || KindReply.String() != "reply" || KindData.String() != "data" {
		t.Error("kind strings broken")
	}
	if RoundRobin.String() != "rr" || AgeBased.String() != "age" {
		t.Error("arb strings broken")
	}
}

func TestIdleRouterSkipsWork(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(5, topo, routing.DOR{}, Config{VCs: 2, BufDepth: 4, Delay: 1})
	if !r.Idle() {
		t.Fatal("fresh router not idle")
	}
	r.Step(0)
	if r.FlitsRouted != 0 {
		t.Error("idle router routed flits")
	}
	p := &Packet{ID: 1, Src: 5, Dst: 6, Size: 1}
	p.Route = routing.NewState(-1)
	r.AcceptFlit(topo.LocalPort(), 0, Flit{P: p})
	if r.Idle() {
		t.Fatal("router with buffered flit reports idle")
	}
	r.Step(0)
	if r.FlitsRouted != 1 {
		t.Errorf("flit not forwarded: routed=%d", r.FlitsRouted)
	}
}

func TestInjectionBackpressure(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := New(0, topo, routing.DOR{}, Config{VCs: 2, BufDepth: 2, Delay: 1})
	p := &Packet{ID: 1, Src: 0, Dst: 15, Size: 4}
	p.Route = routing.NewState(-1)
	fs := Flits(p)
	if !r.CanAcceptInjection() {
		t.Fatal("fresh injection buffer full")
	}
	r.AcceptFlit(topo.LocalPort(), 0, fs[0])
	r.AcceptFlit(topo.LocalPort(), 0, fs[1])
	if r.CanAcceptInjection() {
		t.Error("injection buffer of depth 2 not full after 2 flits")
	}
}
