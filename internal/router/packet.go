// Package router implements the cycle-accurate virtual-channel router
// microarchitecture used by every simulation in this repository: per-input
// VC buffers of configurable depth q, route computation, VC allocation and
// switch allocation performed each cycle, a configurable pipeline latency
// tr, credit-based flow control, and round-robin or age-based arbitration.
//
// The timing contract is the one §III-B of the paper relies on: a flit that
// wins switch allocation in cycle c becomes visible at the downstream input
// buffer in cycle c + tr + linkDelay, so a hop costs tr + linkDelay at zero
// load and raising tr from 1 to 2 to 4 scales zero-load latency by 1.5x and
// 2.5x on 1-cycle links.
package router

import "noceval/internal/routing"

// Kind tags a packet with its protocol role. The network layer does not
// interpret it; closed-loop models and the CMP simulator use it to drive
// request/reply state machines.
type Kind uint8

// Packet kinds used by the closed-loop models and the CMP substrate.
const (
	KindData      Kind = iota // plain synthetic traffic
	KindRequest               // remote read/write request
	KindReply                 // reply carrying data
	KindCoherence             // invalidation/ack (CMP substrate)
	KindKernel                // kernel-activity traffic (OS model)
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRequest:
		return "req"
	case KindReply:
		return "reply"
	case KindCoherence:
		return "coh"
	case KindKernel:
		return "kernel"
	default:
		return "?"
	}
}

// Packet is one network transaction. Flits of the packet share a single
// Packet instance; the head flit's arrival at each router updates Route.
type Packet struct {
	ID   uint64
	Src  int
	Dst  int
	Size int // length in flits
	Kind Kind
	// Aux carries protocol-specific context (e.g. the transaction ID a
	// reply answers, or a cache-line address in the CMP substrate).
	Aux uint64

	// CreateTime is the cycle the packet entered its source queue;
	// InjectTime the cycle its head flit entered the injection buffer;
	// ArriveTime the cycle its tail flit reached the destination terminal.
	CreateTime int64
	InjectTime int64
	ArriveTime int64

	// Measured marks packets generated during an open-loop measurement
	// phase; only these contribute to latency statistics.
	Measured bool

	// Class is the packet's QoS traffic class, 0-based with 0 the highest
	// priority. Single-class configurations leave it 0. The router maps
	// each class onto its own slice of the VC space (see Config.Classes)
	// and, under strict-priority arbitration, always serves lower class
	// numbers first.
	Class int

	// FaultTxn is the end-to-end transaction identity assigned by the
	// recovery NIC (0 when untracked). Retransmitted clones share the
	// original's FaultTxn so the receiver can acknowledge whichever
	// incarnation arrives first and discard the rest.
	FaultTxn uint64
	// FaultCorrupt marks a packet whose payload was corrupted on a link; the
	// destination NIC's checksum rejects it at ejection.
	FaultCorrupt bool
	// FaultDead marks a packet that died inside the network (head flit
	// dropped, flits purged by a router kill, or destination router dead);
	// its remaining flits are discarded at their next delivery.
	FaultDead bool

	Route routing.State
	Hops  int
}

// Latency returns the packet's total latency including source queueing,
// the standard open-loop metric.
func (p *Packet) Latency() int64 { return p.ArriveTime - p.CreateTime }

// NetworkLatency returns the latency excluding source queueing.
func (p *Packet) NetworkLatency() int64 { return p.ArriveTime - p.InjectTime }

// Flit is one flow-control unit of a packet. Flits are small values passed
// through buffers and pipelines by copy.
type Flit struct {
	P   *Packet
	Seq int32 // position within the packet, 0-based
	VC  int32 // VC assigned for the hop currently being traversed
}

// Head reports whether this is the packet's first flit.
func (f Flit) Head() bool { return f.Seq == 0 }

// Tail reports whether this is the packet's last flit.
func (f Flit) Tail() bool { return int(f.Seq) == f.P.Size-1 }

// Flits expands a packet into its flit sequence.
func Flits(p *Packet) []Flit {
	fs := make([]Flit, p.Size)
	for i := range fs {
		fs[i] = Flit{P: p, Seq: int32(i)}
	}
	return fs
}
