package expcache_test

// Fuzz targets for the experiment cache's content addressing. The cache
// key is the contract the whole framework's memoization rests on: it must
// be deterministic, collision-free across (salt, kind) boundaries (the
// length-prefix encoding), and a Put must round-trip through Get under
// arbitrary configuration payloads.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"noceval/internal/expcache"
)

// fuzzCfg is a marshal-stable stand-in for the runner key structs.
type fuzzCfg struct {
	A string
	B int64
	C float64
	D []string `json:",omitempty"`
}

func FuzzKeyCanonicalization(f *testing.F) {
	f.Add("noceval-core-v1", "openloop", "noceval-core-v1", "batch", int64(16), 0.25, "mesh8x8")
	f.Add("a", "bc", "ab", "c", int64(0), 0.0, "")
	f.Add("", "", "", "", int64(-1), -0.5, "x")
	f.Fuzz(func(t *testing.T, salt1, kind1, salt2, kind2 string, b int64, c float64, s string) {
		dir := t.TempDir()
		// Non-UTF-8 salts and filesystem-hostile kinds are rejected up
		// front (they could not verify against their own stored entries);
		// rejection is a valid outcome, silent self-inconsistency is not.
		c1, err := expcache.Open(dir+"/c1", salt1)
		if err != nil {
			return
		}
		c2, err := expcache.Open(dir+"/c2", salt2)
		if err != nil {
			return
		}
		cfg := fuzzCfg{A: s, B: b, C: c}

		k1, err := c1.Key(kind1, cfg)
		if err != nil {
			return
		}
		// Determinism: the same (salt, kind, config) always hashes the same.
		if again, _ := c1.Key(kind1, cfg); again.Hash() != k1.Hash() {
			t.Fatalf("key not deterministic: %s vs %s", k1.Hash(), again.Hash())
		}

		// Boundary safety: distinct (salt, kind) pairs must hash apart even
		// when their concatenations collide (e.g. "a"+"bc" vs "ab"+"c").
		k2, err := c2.Key(kind2, cfg)
		if err != nil {
			return
		}
		same := salt1 == salt2 && kind1 == kind2
		if same != (k1.Hash() == k2.Hash()) {
			t.Fatalf("salt/kind (%q,%q) vs (%q,%q): same-pair=%v but same-hash=%v",
				salt1, kind1, salt2, kind2, same, k1.Hash() == k2.Hash())
		}

		// Round trip: a stored result comes back verbatim under its key.
		want := fuzzCfg{A: s + "!", B: b + 1, C: c}
		if err := c1.Put(k1, want); err != nil {
			t.Fatal(err)
		}
		var got fuzzCfg
		if !c1.Get(k1, &got) {
			t.Fatal("Get missed immediately after Put")
		}
		// The cache stores JSON, so the contract is JSON fidelity: normalize
		// want through one encode/decode cycle (which replaces invalid UTF-8
		// with U+FFFD, as storage does) and the retrieved value must match.
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var norm fuzzCfg
		if err := json.Unmarshal(wantJSON, &norm); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, norm) {
			t.Fatalf("round trip mutated the result: got %+v want %+v", got, norm)
		}
	})
}

// FuzzKeyConfigSensitivity: two configs hash equal exactly when their JSON
// encodings are equal (JSON is the canonical form — e.g. invalid UTF-8
// normalizes to U+FFFD before hashing, so raw-byte inequality alone must
// not be expected to split hashes).
func FuzzKeyConfigSensitivity(f *testing.F) {
	f.Add("x", "y", int64(1), int64(2))
	f.Fuzz(func(t *testing.T, a1, a2 string, b1, b2 int64) {
		c, err := expcache.Open(t.TempDir(), "salt")
		if err != nil {
			t.Fatal(err)
		}
		cfg1, cfg2 := fuzzCfg{A: a1, B: b1}, fuzzCfg{A: a2, B: b2}
		k1, err1 := c.Key("k", cfg1)
		k2, err2 := c.Key("k", cfg2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		j1, _ := json.Marshal(cfg1)
		j2, _ := json.Marshal(cfg2)
		same := bytes.Equal(j1, j2)
		if same != (k1.Hash() == k2.Hash()) {
			t.Fatalf("configs %s vs %s: same-json=%v but same-hash=%v",
				j1, j2, same, k1.Hash() == k2.Hash())
		}
	})
}
