package expcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentSameKeyPutGetStress hammers ONE key from many writers and
// readers at once — the exact shape of a coalescing miss in the experiment
// service, where several jobs of the same spec can finish near-simultaneously
// and all Put the identical result. The atomic temp-file+rename contract
// promises that readers never observe a torn entry: every Get either misses
// or returns the complete, correct result, and no entry is ever judged
// corrupt (drops stays 0).
func TestConcurrentSameKeyPutGetStress(t *testing.T) {
	c := open(t, "v1")
	cfg := fakeConfig{Topology: "mesh4x4", Rate: 0.35, Seed: 42}
	k, err := c.Key("openloop", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fakeResult{Latency: 17.5, Samples: []float64{1, 2, 3, 4, 5, 6, 7, 8}, Stable: true}

	const writers, readers, rounds = 6, 6, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				if err := c.Put(k, &want); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	hits := make([]int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				var got fakeResult
				if !c.Get(k, &got) {
					continue
				}
				hits[r]++
				if got.Latency != want.Latency || !got.Stable || len(got.Samples) != len(want.Samples) {
					t.Errorf("torn read: %+v", got)
					return
				}
				for j := range got.Samples {
					if got.Samples[j] != want.Samples[j] {
						t.Errorf("torn read at sample %d: %+v", j, got)
						return
					}
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()

	st := c.Stats()
	if st.Drops != 0 {
		t.Errorf("%d entries dropped as corrupt under same-key stress, want 0 (%s)", st.Drops, st)
	}
	if st.Puts != writers*rounds {
		t.Errorf("puts = %d, want %d", st.Puts, writers*rounds)
	}
	var got fakeResult
	if !c.Get(k, &got) || got.Latency != want.Latency {
		t.Errorf("final Get after stress missed or mismatched: %+v", got)
	}
}

// TestDropSparesFreshEntry pins the drop re-read guard: a reader that
// decided stale bytes were corrupt must not delete the valid entry a
// concurrent writer renamed into place between the read and the drop.
func TestDropSparesFreshEntry(t *testing.T) {
	c := open(t, "v1")
	cfg := fakeConfig{Topology: "torus4x4", Rate: 0.2, Seed: 9}
	k, err := c.Key("openloop", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The reader saw garbage...
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	bad := []byte("{ truncated")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// ...but before it could drop the file, a writer replaced it.
	want := fakeResult{Latency: 3.5}
	if err := c.Put(k, &want); err != nil {
		t.Fatal(err)
	}
	c.drop(p, bad)

	var got fakeResult
	if !c.Get(k, &got) {
		t.Fatal("drop deleted the freshly written entry")
	}
	if got.Latency != want.Latency {
		t.Fatalf("entry after drop = %+v, want %+v", got, want)
	}
	// The drop is still accounted for in the stats even when the file is
	// spared: the caller did observe a corrupt read.
	if st := c.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}
