// Package expcache is a content-addressed, on-disk cache for experiment
// results. Every simulation in this repository is a pure function of its
// configuration and seed, so a result can be reused whenever the exact
// configuration reappears — across figure regenerations, ablation runs,
// and CI jobs.
//
// Entries are keyed by a SHA-256 over a canonical JSON encoding of the
// configuration, prefixed by an experiment kind and a schema-version salt.
// encoding/json emits struct fields in declaration order and sorts map
// keys, so the encoding — and therefore the key — is stable across
// processes. Bumping the salt changes every hash at once, which is how the
// framework invalidates the whole cache when simulator semantics change in
// a way that alters results.
//
// The cache is safe for concurrent use by the worker goroutines of an
// experiment sweep: writes land in a temp file and are renamed into place,
// and a corrupted, truncated, or mismatched entry is treated as a miss
// (and deleted) rather than an error, so the worst failure mode is
// recomputation.
package expcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"noceval/internal/obs"
)

// Cache is one on-disk result store. All methods are safe for concurrent
// use.
type Cache struct {
	dir  string
	salt string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	drops  atomic.Int64

	// Cross-run metrics, nil until SetMetrics: obs instruments are nil-safe,
	// so the uninstrumented cache pays only nil checks.
	mHits         *obs.Counter
	mMisses       *obs.Counter
	mPuts         *obs.Counter
	mDrops        *obs.Counter
	mBytesRead    *obs.Counter
	mBytesWritten *obs.Counter
}

// SetMetrics publishes the cache's traffic counters into reg under the
// expcache.* names (hits, misses, puts, corruption_drops, bytes_read,
// bytes_written). A nil registry detaches the instruments. Call before
// sharing the cache across goroutines; the local Stats counters are
// unaffected.
func (c *Cache) SetMetrics(reg *obs.Registry) {
	c.mHits = reg.Counter("expcache.hits")
	c.mMisses = reg.Counter("expcache.misses")
	c.mPuts = reg.Counter("expcache.puts")
	c.mDrops = reg.Counter("expcache.corruption_drops")
	c.mBytesRead = reg.Counter("expcache.bytes_read")
	c.mBytesWritten = reg.Counter("expcache.bytes_written")
}

// Open returns a cache rooted at dir (created if missing), salted with the
// given schema version.
func Open(dir, salt string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("expcache: empty cache directory")
	}
	// The salt is stored inside each entry and compared on Get; JSON
	// storage replaces invalid UTF-8 with U+FFFD, so a non-UTF-8 salt
	// would never verify against its own entries.
	if !utf8.ValidString(salt) {
		return nil, fmt.Errorf("expcache: salt is not valid UTF-8")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expcache: %w", err)
	}
	return &Cache{dir: dir, salt: salt}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Key identifies one experiment: a hash over (salt, kind, canonical
// config). The canonical encoding is kept alongside the hash so Get can
// verify an entry against the full configuration, not just the digest.
type Key struct {
	kind string
	hash string
	desc []byte
}

// Hash returns the hex digest addressing the entry.
func (k Key) Hash() string { return k.hash }

// Key derives the content address of (kind, cfg). cfg must be
// JSON-marshalable with deterministic field order (plain structs, no
// unordered custom marshalers).
func (c *Cache) Key(kind string, cfg any) (Key, error) {
	return KeyFor(c.salt, kind, cfg)
}

// KeyFor derives a content address without a cache: the run ledger uses it
// to stamp records with the same spec hash the cache would use, whether or
// not caching is enabled.
func KeyFor(salt, kind string, cfg any) (Key, error) {
	// The kind names an on-disk directory and is verified against the
	// stored entry on Get, so it must survive both the filesystem and a
	// JSON round trip unchanged.
	if kind == "" || kind == "." || kind == ".." ||
		strings.ContainsAny(kind, `/\`) || !utf8.ValidString(kind) ||
		strings.ContainsFunc(kind, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		return Key{}, fmt.Errorf("expcache: invalid experiment kind %q", kind)
	}
	desc, err := json.Marshal(cfg)
	if err != nil {
		return Key{}, fmt.Errorf("expcache: encoding %s config: %w", kind, err)
	}
	h := sha256.New()
	// Length-prefix the variable parts so (salt="a", kind="bc") cannot
	// collide with (salt="ab", kind="c").
	fmt.Fprintf(h, "%d:%s%d:%s", len(salt), salt, len(kind), kind)
	h.Write(desc)
	return Key{kind: kind, hash: hex.EncodeToString(h.Sum(nil)), desc: desc}, nil
}

// entry is the on-disk envelope. Salt, kind, and config are stored in
// full so a hit can be verified exactly (and so entries are
// self-describing for debugging with plain cat/jq).
type entry struct {
	Salt   string          `json:"salt"`
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
	Result json.RawMessage `json:"result"`
}

// path shards entries by kind and the first byte of the hash to keep
// directories small on big sweeps.
func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.kind, k.hash[:2], k.hash+".json")
}

// Get loads the entry for k into out (a pointer to the result type) and
// reports whether it was found. Unreadable or mismatched entries are
// removed and reported as a miss.
func (c *Cache) Get(k Key, out any) bool {
	p := c.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		c.mMisses.Inc()
		return false
	}
	c.mBytesRead.Add(int64(len(data)))
	var e entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Salt != c.salt || e.Kind != k.kind || !bytes.Equal(e.Config, k.desc) {
		c.drop(p, data)
		return false
	}
	if err := json.Unmarshal(e.Result, out); err != nil {
		c.drop(p, data)
		return false
	}
	c.hits.Add(1)
	c.mHits.Inc()
	return true
}

// drop removes a corrupted or stale entry and counts it as a miss. bad is
// the content the caller judged corrupt: the file is re-read and only
// removed while it still holds those exact bytes, so a reader racing a
// Put cannot delete the fresh entry the writer just renamed into place.
// (A rename landing between the re-read and the Remove can still lose an
// entry — the cost is one recomputation, never a wrong result.)
func (c *Cache) drop(p string, bad []byte) {
	if cur, err := os.ReadFile(p); err == nil && bytes.Equal(cur, bad) {
		os.Remove(p)
	}
	c.drops.Add(1)
	c.misses.Add(1)
	c.mDrops.Inc()
	c.mMisses.Inc()
}

// Put stores result under k. The write is atomic (temp file + rename), so
// concurrent writers of the same key are safe: both produce identical
// content, and readers only ever see a complete file.
func (c *Cache) Put(k Key, result any) error {
	res, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("expcache: encoding %s result: %w", k.kind, err)
	}
	data, err := json.Marshal(entry{Salt: c.salt, Kind: k.kind, Config: k.desc, Result: res})
	if err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	c.puts.Add(1)
	c.mPuts.Inc()
	c.mBytesWritten.Add(int64(len(data)))
	return nil
}

// Stats summarizes cache traffic since Open.
type Stats struct {
	Hits   int64
	Misses int64
	Puts   int64
	// Drops counts corrupted or mismatched entries deleted on read (each
	// also counts as a miss).
	Drops int64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Drops:  c.drops.Load(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d writes, %d dropped entries", s.Hits, s.Misses, s.Puts, s.Drops)
}
