package expcache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type fakeConfig struct {
	Topology string
	Rate     float64
	Seed     uint64
}

type fakeResult struct {
	Latency float64
	Samples []float64
	Stable  bool
}

func open(t *testing.T, salt string) *Cache {
	t.Helper()
	c, err := Open(filepath.Join(t.TempDir(), "cache"), salt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := open(t, "v1")
	cfg := fakeConfig{Topology: "mesh8x8", Rate: 0.2, Seed: 1}
	k, err := c.Key("openloop", cfg)
	if err != nil {
		t.Fatal(err)
	}

	var got fakeResult
	if c.Get(k, &got) {
		t.Fatal("hit on empty cache")
	}
	want := fakeResult{Latency: 12.25, Samples: []float64{1, 2, 3}, Stable: true}
	if err := c.Put(k, &want); err != nil {
		t.Fatal(err)
	}
	if !c.Get(k, &got) {
		t.Fatal("miss after put")
	}
	if got.Latency != want.Latency || !got.Stable || len(got.Samples) != 3 || got.Samples[2] != 3 {
		t.Errorf("round trip mangled result: %+v", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Drops != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", s)
	}
}

func TestKeyIsStableAndSensitive(t *testing.T) {
	c := open(t, "v1")
	cfg := fakeConfig{Topology: "mesh8x8", Rate: 0.2, Seed: 1}
	k1, _ := c.Key("openloop", cfg)
	k2, _ := c.Key("openloop", cfg)
	if k1.Hash() != k2.Hash() {
		t.Error("identical configs hashed differently")
	}
	cfg.Seed = 2
	k3, _ := c.Key("openloop", cfg)
	if k3.Hash() == k1.Hash() {
		t.Error("seed change did not change the key")
	}
	k4, _ := c.Key("batch", fakeConfig{Topology: "mesh8x8", Rate: 0.2, Seed: 1})
	if k4.Hash() == k1.Hash() {
		t.Error("kind change did not change the key")
	}
}

func TestSchemaSaltInvalidates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c1, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fakeConfig{Topology: "torus8x8", Rate: 0.3, Seed: 7}
	k1, _ := c1.Key("openloop", cfg)
	if err := c1.Put(k1, &fakeResult{Latency: 9}); err != nil {
		t.Fatal(err)
	}

	// A bumped schema version must not see v1 entries...
	c2, err := Open(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := c2.Key("openloop", cfg)
	if k2.Hash() == k1.Hash() {
		t.Fatal("salt did not change the key")
	}
	var got fakeResult
	if c2.Get(k2, &got) {
		t.Error("v2 cache returned a v1 entry")
	}

	// ...while reopening at v1 still hits.
	c3, err := Open(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	k3, _ := c3.Key("openloop", cfg)
	if !c3.Get(k3, &got) || got.Latency != 9 {
		t.Error("v1 entry lost after reopening")
	}
}

// entryFiles returns every entry path under the cache root.
func entryFiles(t *testing.T, c *Cache) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(c.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestCorruptedEntryIsDroppedNotFatal(t *testing.T) {
	c := open(t, "v1")
	cfg := fakeConfig{Topology: "ring64", Rate: 0.1, Seed: 3}
	k, _ := c.Key("openloop", cfg)
	if err := c.Put(k, &fakeResult{Latency: 30}); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, c)
	if len(files) != 1 {
		t.Fatalf("got %d entry files, want 1", len(files))
	}
	for _, corrupt := range []string{"", "not json at all", `{"salt":"v1","kind":"openloop"`} {
		if err := os.WriteFile(files[0], []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		var got fakeResult
		if c.Get(k, &got) {
			t.Fatalf("corrupted entry %q reported as hit", corrupt)
		}
		if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
			t.Errorf("corrupted entry %q not removed", corrupt)
		}
		// The slot must be reusable after the drop.
		if err := c.Put(k, &fakeResult{Latency: 30}); err != nil {
			t.Fatal(err)
		}
		if !c.Get(k, &got) || got.Latency != 30 {
			t.Error("recomputed entry not stored after drop")
		}
	}
	if s := c.Stats(); s.Drops != 3 {
		t.Errorf("drops = %d, want 3", s.Drops)
	}
}

func TestMismatchedConfigSameFileIsDropped(t *testing.T) {
	// Paranoia path: a file whose envelope doesn't match the key's full
	// config (as if a hash collision or manual tampering occurred) must be
	// treated as a miss, not returned as someone else's result.
	c := open(t, "v1")
	k, _ := c.Key("openloop", fakeConfig{Topology: "mesh8x8", Rate: 0.2, Seed: 1})
	if err := c.Put(k, &fakeResult{Latency: 5}); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, c)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "mesh8x8", "mesh9x9", 1)
	if err := os.WriteFile(files[0], []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var got fakeResult
	if c.Get(k, &got) {
		t.Error("tampered config returned as hit")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := open(t, "v1")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cfg := fakeConfig{Topology: "mesh8x8", Rate: float64(i % 10), Seed: uint64(i % 7)}
				k, err := c.Key("batch", cfg)
				if err != nil {
					t.Error(err)
					return
				}
				var got fakeResult
				if c.Get(k, &got) {
					if got.Latency != cfg.Rate*2 {
						t.Errorf("wrong result for %+v: %+v", cfg, got)
					}
					continue
				}
				if err := c.Put(k, &fakeResult{Latency: cfg.Rate * 2}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", "v1"); err == nil {
		t.Error("empty dir accepted")
	}
}
