// Command ablations checks the paper's side claims that have no dedicated
// figure, plus the design choices DESIGN.md calls out:
//
//  1. §III-A: a 256-node (16x16 mesh) network "shows a similar trend" to
//     the 8x8 results — router-delay scaling and open/batch agreement.
//  2. §III-B: "simulations using different packet sizes (such as a mixture
//     of short and long packets) did not impact the comparisons".
//  3. Table I lists age-based arbitration: compare it with round-robin.
//  4. §II-B2: the barrier model "essentially measures the throughput of
//     the network" — its throughput should match the open-loop saturation
//     and the batch model at large m.
//  5. VC count (2 vs 4) at fixed total buffering.
//  6. The analytical sanity rails: simulated zero-load latency and
//     saturation vs the first-order models.
//  7. The MSHR analogy of §II-B1: sweeping the execution-driven cores'
//     memory-level parallelism mirrors the batch model's m sweep.
//
// Results are printed as aligned text; run with -out to also write a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noceval/internal/analytic"
	"noceval/internal/cmp"
	"noceval/internal/core"
	"noceval/internal/network"
	"noceval/internal/obs/export"
	"noceval/internal/openloop"
	"noceval/internal/routing"
	"noceval/internal/stats"
	"noceval/internal/topology"
	"noceval/internal/traffic"
	"noceval/internal/workload"
)

func main() {
	out := flag.String("out", "", "also write the report to this file")
	cache := flag.Bool("cache", false, "reuse experiment results from the on-disk cache; cold points are computed and stored")
	cacheDir := flag.String("cache-dir", ".expcache", "experiment cache directory (with -cache)")
	ledgerPath := flag.String("ledger", "", "append one JSONL record per experiment run to this file")
	serve := flag.String("serve", "", "serve live metrics on this address (e.g. :9500) while running")
	screen := flag.Bool("screen", false, "analytically screen sweeps and saturation searches (output is bit-identical)")
	flag.Parse()

	// -serve installs the registry the other subsystems publish into, so it
	// runs before the cache opens.
	if *serve != "" {
		srv, err := export.Enable(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving live metrics on http://%s/metrics\n", srv.Addr())
	}
	if *ledgerPath != "" {
		if err := core.EnableLedger(*ledgerPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer core.DisableLedger()
	}
	if *cache {
		if err := core.EnableCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *screen {
		core.EnableScreening()
	}

	var b strings.Builder
	run := func(name string, fn func(w *strings.Builder) error) {
		fmt.Fprintf(&b, "\n== %s ==\n", name)
		if err := fn(&b); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("A1: 16x16 mesh shows the same router-delay trend", ablation16x16)
	run("A2: bimodal packet sizes do not change the comparison", ablationBimodal)
	run("A3: age-based vs round-robin arbitration", ablationArbitration)
	run("A4: barrier model measures network throughput", ablationBarrier)
	run("A5: virtual-channel count at fixed total buffering", ablationVCs)
	run("A6: simulation vs analytical bounds", ablationAnalytic)
	run("A7: execution-driven MLP mirrors the batch model's m", ablationMLP)
	run("A8: iSLIP multi-pass switch allocation", ablationISLIP)

	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if s, ok := core.CacheStats(); ok {
		fmt.Printf("\nexperiment cache: %s\n", s)
	}
	if *screen {
		s := core.ScreeningSummary()
		fmt.Printf("screening: simulated %d of %d sweep points (skipped %d, refined %d)\n",
			s.Simulated, s.Considered, s.Skipped, s.Refined)
	}
	if *ledgerPath != "" {
		fmt.Printf("run ledger: %d records appended to %s\n", core.LedgerAppends(), *ledgerPath)
	}
}

// ablation16x16 repeats the Fig 4a router-delay experiment on 256 nodes.
func ablation16x16(w *strings.Builder) error {
	fmt.Fprintf(w, "%10s %14s %14s\n", "tr", "8x8 T ratio", "16x16 T ratio")
	base := map[string]int64{}
	for _, tr := range []int64{1, 2, 4} {
		var ratios []float64
		for _, topo := range []string{"mesh8x8", "mesh16x16"} {
			p := core.Baseline()
			p.Topology = topo
			p.RouterDelay = tr
			res, err := core.Batch(p, core.BatchParams{B: 200, M: 1})
			if err != nil {
				return err
			}
			if tr == 1 {
				base[topo] = res.Runtime
			}
			ratios = append(ratios, float64(res.Runtime)/float64(base[topo]))
		}
		fmt.Fprintf(w, "%10d %14.3f %14.3f\n", tr, ratios[0], ratios[1])
	}
	fmt.Fprintln(w, "expectation: both columns scale ~1 / ~1.5 / ~2.5 (zero-load dominated at m=1)")
	return nil
}

// ablationBimodal repeats the router-delay comparison with the bimodal
// packet mix.
func ablationBimodal(w *strings.Builder) error {
	fmt.Fprintf(w, "%10s %16s %16s\n", "tr", "1-flit latency", "bimodal latency")
	type row struct{ single, bimodal float64 }
	rows := map[int64]*row{}
	for _, sizes := range []string{"single", "bimodal"} {
		for _, tr := range []int64{1, 2, 4} {
			p := core.Baseline()
			p.RouterDelay = tr
			p.Sizes = sizes
			res, err := core.OpenLoop(p, 0.1)
			if err != nil {
				return err
			}
			if rows[tr] == nil {
				rows[tr] = &row{}
			}
			if sizes == "single" {
				rows[tr].single = res.AvgLatency
			} else {
				rows[tr].bimodal = res.AvgLatency
			}
		}
	}
	var s1, sb []float64
	for _, tr := range []int64{1, 2, 4} {
		fmt.Fprintf(w, "%10d %16.2f %16.2f\n", tr, rows[tr].single, rows[tr].bimodal)
		s1 = append(s1, rows[tr].single)
		sb = append(sb, rows[tr].bimodal)
	}
	n1, _ := stats.Normalize(s1, 0)
	nb, _ := stats.Normalize(sb, 0)
	fmt.Fprintf(w, "normalized scaling: single %.3f/%.3f/%.3f, bimodal %.3f/%.3f/%.3f\n",
		n1[0], n1[1], n1[2], nb[0], nb[1], nb[2])
	fmt.Fprintln(w, "expectation: same relative scaling (the paper: packet sizes did not impact comparisons)")
	return nil
}

// ablationArbitration compares round-robin and age-based arbitration near
// saturation, where allocation fairness matters most.
func ablationArbitration(w *strings.Builder) error {
	fmt.Fprintf(w, "%8s %14s %14s %14s\n", "arb", "avg latency", "p99 latency", "worst node")
	for _, arb := range []string{"rr", "age"} {
		p := core.Baseline()
		p.Arb = arb
		res, err := core.OpenLoop(p, 0.38)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8s %14.2f %14.2f %14.2f\n", arb, res.AvgLatency, res.P99, res.WorstLatency)
	}
	fmt.Fprintln(w, "expectation: age-based tightens the tail (p99, worst node) near saturation")
	return nil
}

// ablationBarrier compares the barrier model's throughput with the batch
// model at large m and the open-loop accepted rate beyond saturation.
func ablationBarrier(w *strings.Builder) error {
	p := core.Baseline()
	bar, err := core.Barrier(p, 500, 1)
	if err != nil {
		return err
	}
	bat, err := core.Batch(p, core.BatchParams{B: 500, M: 32})
	if err != nil {
		return err
	}
	ol, err := core.OpenLoop(p, 0.8) // far beyond saturation: accepted = capacity
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "barrier model throughput:     %.4f flits/cycle/node\n", bar.Throughput)
	fmt.Fprintf(w, "batch model (m=32) throughput: %.4f\n", bat.Throughput)
	fmt.Fprintf(w, "open-loop accepted @ overload: %.4f\n", ol.Accepted)
	fmt.Fprintln(w, "expectation: all three agree — inter-node dependency measures throughput (SII-B2)")
	return nil
}

// ablationVCs holds total buffering constant (VCs x depth = 32 flits) and
// varies the VC count.
func ablationVCs(w *strings.Builder) error {
	fmt.Fprintf(w, "%6s %6s %14s %12s\n", "VCs", "q", "avg latency", "stable@0.40")
	for _, tc := range []struct{ vcs, q int }{{2, 16}, {4, 8}} {
		p := core.Baseline()
		p.VCs = tc.vcs
		p.BufDepth = tc.q
		res, err := core.OpenLoop(p, 0.40)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %6d %14.2f %12v\n", tc.vcs, tc.q, res.AvgLatency, res.Stable)
	}
	fmt.Fprintln(w, "expectation: more VCs reduce head-of-line blocking at equal storage")
	return nil
}

// ablationMLP sweeps the execution-driven cores' memory-level parallelism
// and compares the runtime scaling against the batch model's m sweep: the
// MSHR analogy of §II-B1 in both directions.
func ablationMLP(w *strings.Builder) error {
	prof, err := workload.ByName("fft")
	if err != nil {
		return err
	}
	mlps := []int{1, 2, 4, 8}
	execT := make([]float64, len(mlps))
	for i, mlp := range mlps {
		cfg := cmp.DefaultConfig()
		cfg.MaxLoadMLP = mlp
		cfg.LoadDepFrac = 0.3
		if mlp == 1 {
			cfg.LoadDepFrac = 1
		}
		netCfg, err := core.Table2Network(1).Build()
		if err != nil {
			return err
		}
		sys, err := cmp.NewSystem(cfg, cmp.NetFabric{Network: network.New(netCfg)},
			workload.Programs(prof, cfg.Tiles, 7))
		if err != nil {
			return err
		}
		prof.Warm(sys, cfg.Tiles)
		res := sys.Run()
		if !res.Completed {
			return fmt.Errorf("mlp=%d did not complete", mlp)
		}
		execT[i] = float64(res.Cycles)
	}
	batchT := make([]float64, len(mlps))
	for i, m := range mlps {
		res, err := core.Batch(core.Table2Network(1), core.BatchParams{B: 300, M: m})
		if err != nil {
			return err
		}
		batchT[i] = float64(res.Runtime)
	}
	en, _ := stats.Normalize(execT, 0)
	bn, _ := stats.Normalize(batchT, 0)
	fmt.Fprintf(w, "%8s %18s %18s\n", "m / MLP", "exec runtime", "batch runtime")
	for i, m := range mlps {
		fmt.Fprintf(w, "%8d %18.3f %18.3f\n", m, en[i], bn[i])
	}
	fmt.Fprintln(w, "expectation: both fall with more outstanding requests, batch more steeply")
	fmt.Fprintln(w, "(the batch model has no compute between requests to hide latency behind)")
	return nil
}

// ablationISLIP measures whether extra switch-allocation passes buy
// throughput on the baseline mesh (they matter most with many VCs per
// port competing for distinct outputs).
func ablationISLIP(w *strings.Builder) error {
	fmt.Fprintf(w, "%8s %14s %14s\n", "SA iters", "avg latency", "accepted@0.42")
	for _, it := range []int{1, 2, 4} {
		p := core.Baseline()
		p.VCs = 4
		p.BufDepth = 8
		p.SAIterations = it
		res, err := core.OpenLoop(p, 0.42)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %14.2f %14.4f\n", it, res.AvgLatency, res.Accepted)
	}
	fmt.Fprintln(w, "expectation: extra passes never hurt; gains are small when the")
	fmt.Fprintln(w, "mesh is channel-limited rather than allocator-limited")
	return nil
}

// ablationAnalytic checks the simulator against the first-order models.
func ablationAnalytic(w *strings.Builder) error {
	topo := topology.NewMesh(8, 8)
	model := analytic.Model{Topo: topo, Routing: routing.DOR{}, RouterDelay: 1}
	t0, err := model.ZeroLoadLatency(traffic.Uniform{}, 1)
	if err != nil {
		return err
	}
	thetaA, gamma, err := model.ChannelBound(traffic.Uniform{})
	if err != nil {
		return err
	}

	p := core.Baseline()
	simT0, err := core.OpenLoop(p, 0.01)
	if err != nil {
		return err
	}
	cfg, err := p.Build()
	if err != nil {
		return err
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()
	satCfg := openloop.Config{
		Net: cfg, Pattern: pat, Sizes: sizes,
		Warmup: 2000, Measure: 3000, DrainLimit: 20000, Seed: 1,
	}
	var simSat float64
	if core.ScreeningEnabled() {
		// Seed the bisection with the queueing knee: the search verifies a
		// narrow band around the prediction first and only widens on a
		// contradiction, so an accurate knee saves most of the probes.
		est, estErr := core.AnalyticEstimator(p)
		if estErr != nil {
			return estErr
		}
		simSat, err = openloop.SaturationScreenedWith(satCfg, 0.1, 0.6, 3, est.Knee(3), openloop.Run)
	} else {
		simSat, err = openloop.Saturation(satCfg, 0.1, 0.6, 3)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "zero-load latency: analytic %.2f, simulated %.2f (sim >= analytic)\n", t0, simT0.AvgLatency)
	fmt.Fprintf(w, "saturation: channel bound %.3f (gamma_max %.3f), simulated %.3f, ideal bisection %.3f\n",
		thetaA, gamma, simSat, analytic.IdealThroughput(topo))
	fmt.Fprintln(w, "expectation: analytic T0 <= simulated T0; simulated saturation in [0.6, 1.0] x channel bound")
	return nil
}
