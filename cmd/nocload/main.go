// Command nocload is the experiment service's load generator: it replays
// a mix of experiment specs against a running nocd at a target request
// rate and reports achieved throughput and submit latency.
//
//	nocload -addr http://localhost:9640 -spec a.json -spec b.json \
//	        -rps 200 -duration 5s [-wait] [-min-rps 100]
//
// Specs are POSTed round-robin from the mix, so repeating one spec in the
// mix (or passing a single spec) exercises the server's single-flight
// coalescing and experiment cache. -wait blocks until every submitted job
// reaches a terminal state. -min-rps turns the report into a gate: the
// exit status is 1 when the achieved request rate falls below it (the CI
// smoke benchmark).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// specList collects repeated -spec flags.
type specList []string

func (s *specList) String() string { return fmt.Sprint([]string(*s)) }
func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// submitResult mirrors the fields of the service's SubmitResponse that
// the report cares about.
type submitResult struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	CoalescedOnto bool   `json:"coalescedOnto"`
	Error         string `json:"error"`
}

func main() {
	addr := flag.String("addr", "http://localhost:9640", "nocd base URL")
	var specs specList
	flag.Var(&specs, "spec", "experiment spec file to replay (repeatable; round-robin mix)")
	rps := flag.Float64("rps", 50, "target request rate")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	wait := flag.Bool("wait", false, "after the run, wait for every submitted job to finish")
	minRPS := flag.Float64("min-rps", 0, "exit 1 when the achieved request rate falls below this")
	flag.Parse()

	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "nocload: at least one -spec is required")
		os.Exit(2)
	}
	bodies := make([][]byte, len(specs))
	for i, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocload:", err)
			os.Exit(2)
		}
		bodies[i] = data
	}
	if *rps <= 0 {
		fmt.Fprintln(os.Stderr, "nocload: -rps must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		accepted  int // 202: new job
		coalesced int // 200: absorbed by an in-flight twin
		failures  int
		jobIDs    = make(map[string]bool)
		wg        sync.WaitGroup
	)
	record := func(lat time.Duration, res *submitResult, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failures++
			return
		}
		latencies = append(latencies, lat)
		if res.CoalescedOnto {
			coalesced++
		} else {
			accepted++
		}
		if res.ID != "" {
			jobIDs[res.ID] = true
		}
	}

	interval := time.Duration(float64(time.Second) / *rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	start := time.Now()
	deadline := start.Add(*duration)
	sent := 0
	for now := start; now.Before(deadline); now = <-tick(ticker) {
		body := bodies[sent%len(bodies)]
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			res, err := submit(client, *addr, body)
			record(time.Since(t0), res, err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	achieved := float64(len(latencies)) / elapsed.Seconds()
	fmt.Printf("nocload: %d requests in %.2fs — %.1f req/s achieved (target %.1f)\n",
		sent, elapsed.Seconds(), achieved, *rps)
	fmt.Printf("nocload: %d new jobs, %d coalesced, %d failed; %d distinct job ids\n",
		accepted, coalesced, failures, len(jobIDs))
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		fmt.Printf("nocload: submit latency p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
			ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99)), ms(latencies[len(latencies)-1]))
	}

	if *wait {
		if err := waitJobs(client, *addr, jobIDs); err != nil {
			fmt.Fprintln(os.Stderr, "nocload:", err)
			os.Exit(1)
		}
		fmt.Printf("nocload: all %d jobs reached a terminal state\n", len(jobIDs))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "nocload: %d submissions failed\n", failures)
		os.Exit(1)
	}
	if *minRPS > 0 && achieved < *minRPS {
		fmt.Fprintf(os.Stderr, "nocload: achieved %.1f req/s < required %.1f\n", achieved, *minRPS)
		os.Exit(1)
	}
}

// tick adapts the ticker channel so the send loop reads wall time from it.
func tick(t *time.Ticker) <-chan time.Time { return t.C }

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func submit(client *http.Client, addr string, body []byte) (*submitResult, error) {
	resp, err := client.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var res submitResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("decoding response (%d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("submit: %d: %s", resp.StatusCode, res.Error)
	}
	return &res, nil
}

// waitJobs polls each job until it reaches a terminal state.
func waitJobs(client *http.Client, addr string, ids map[string]bool) error {
	for id := range ids {
		for {
			resp, err := client.Get(addr + "/jobs/" + id)
			if err != nil {
				return err
			}
			var v struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return err
			}
			switch v.State {
			case "done", "failed", "canceled":
				goto next
			}
			time.Sleep(50 * time.Millisecond)
		}
	next:
	}
	return nil
}
