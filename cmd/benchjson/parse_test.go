package main

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: noceval
cpu: Some CPU @ 2.00GHz
BenchmarkIdleOpenLoopLowLoad/engine=fullscan-8         	      10	  40000000 ns/op	        12.50 sim-Mcycles/s	 1048576 B/op	    2048 allocs/op
BenchmarkIdleOpenLoopLowLoad/engine=fullscan-8         	      10	  60000000 ns/op	        12.70 sim-Mcycles/s	 1048576 B/op	    2050 allocs/op
BenchmarkIdleOpenLoopLowLoad/engine=activeset-8        	      10	   5000000 ns/op	       100.0 sim-Mcycles/s	  524288 B/op	    1024 allocs/op
BenchmarkStepObsDisabled-8                             	 1000000	      1050 ns/op
PASS
ok  	noceval	12.345s
`

func TestParse(t *testing.T) {
	results, skipped, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v from consistent output", skipped)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(results), results)
	}

	full := results[0]
	if full.Name != "BenchmarkIdleOpenLoopLowLoad/engine=fullscan" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped, subtest kept)", full.Name)
	}
	if full.Runs != 2 {
		t.Errorf("runs = %d, want 2 (repeated -count lines aggregate)", full.Runs)
	}
	if full.NsPerOp != 50000000 {
		t.Errorf("ns/op = %g, want the mean 5e7", full.NsPerOp)
	}
	if full.MinNsPerOp != 40000000 {
		t.Errorf("min ns/op = %g, want the fastest run 4e7", full.MinNsPerOp)
	}
	if full.AllocsPerOp != 2049 {
		t.Errorf("allocs/op = %g, want 2049", full.AllocsPerOp)
	}
	if got := full.Metrics["sim-Mcycles/s"]; math.Abs(got-12.6) > 1e-9 {
		t.Errorf("custom metric = %g, want 12.6", got)
	}

	active := results[1]
	if active.Name != "BenchmarkIdleOpenLoopLowLoad/engine=activeset" || active.Runs != 1 {
		t.Errorf("second benchmark = %+v", active)
	}

	// A plain line without -benchmem omits the memory fields.
	plain := results[2]
	if plain.Name != "BenchmarkStepObsDisabled" || plain.NsPerOp != 1050 {
		t.Errorf("plain benchmark = %+v", plain)
	}
	if plain.BytesPerOp != 0 || plain.AllocsPerOp != 0 || plain.Metrics != nil {
		t.Errorf("plain benchmark should have no memory/custom fields: %+v", plain)
	}
}

func TestParseEmpty(t *testing.T) {
	results, skipped, err := Parse(strings.NewReader("PASS\nok noceval 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || len(skipped) != 0 {
		t.Fatalf("parsed %d benchmarks (skipped %v) from empty output", len(results), skipped)
	}
}

// TestParseMixedUnits: runs of one benchmark that disagree on the unit
// set must be skipped entirely rather than averaged — a missing value
// would silently dilute every mean — while consistent benchmarks in the
// same stream still parse.
func TestParseMixedUnits(t *testing.T) {
	cases := []struct {
		name        string
		input       string
		wantNames   []string
		wantSkipped []string
	}{
		{
			name: "benchmem run concatenated with plain run",
			input: "BenchmarkMixed-8 10 100 ns/op 64 B/op 2 allocs/op\n" +
				"BenchmarkMixed-8 10 300 ns/op\n" +
				"BenchmarkClean-8 10 50 ns/op\n" +
				"BenchmarkClean-8 10 70 ns/op\n",
			wantNames:   []string{"BenchmarkClean"},
			wantSkipped: []string{"BenchmarkMixed"},
		},
		{
			name: "custom metric present in only some runs",
			input: "BenchmarkMetric-8 10 100 ns/op 12.5 sim-Mcycles/s\n" +
				"BenchmarkMetric-8 10 200 ns/op\n",
			wantNames:   nil,
			wantSkipped: []string{"BenchmarkMetric"},
		},
		{
			name: "same units in every run",
			input: "BenchmarkOK-8 10 100 ns/op 64 B/op 2 allocs/op\n" +
				"BenchmarkOK-8 10 200 ns/op 64 B/op 2 allocs/op\n",
			wantNames:   []string{"BenchmarkOK"},
			wantSkipped: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			results, skipped, err := Parse(strings.NewReader(c.input))
			if err != nil {
				t.Fatal(err)
			}
			var names []string
			for _, r := range results {
				names = append(names, r.Name)
			}
			if !reflect.DeepEqual(names, c.wantNames) {
				t.Errorf("parsed %v, want %v", names, c.wantNames)
			}
			if !reflect.DeepEqual(skipped, c.wantSkipped) {
				t.Errorf("skipped %v, want %v", skipped, c.wantSkipped)
			}
		})
	}
	// The clean benchmark's mean must come from its own runs only.
	results, _, err := Parse(strings.NewReader(cases[0].input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].NsPerOp != 60 {
		t.Errorf("clean benchmark mean = %+v, want ns/op 60", results)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/rate=0.5-16": "BenchmarkFoo/rate=0.5",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
