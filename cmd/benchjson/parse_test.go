package main

import (
	"math"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: noceval
cpu: Some CPU @ 2.00GHz
BenchmarkIdleOpenLoopLowLoad/engine=fullscan-8         	      10	  40000000 ns/op	        12.50 sim-Mcycles/s	 1048576 B/op	    2048 allocs/op
BenchmarkIdleOpenLoopLowLoad/engine=fullscan-8         	      10	  60000000 ns/op	        12.70 sim-Mcycles/s	 1048576 B/op	    2050 allocs/op
BenchmarkIdleOpenLoopLowLoad/engine=activeset-8        	      10	   5000000 ns/op	       100.0 sim-Mcycles/s	  524288 B/op	    1024 allocs/op
BenchmarkStepObsDisabled-8                             	 1000000	      1050 ns/op
PASS
ok  	noceval	12.345s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(results), results)
	}

	full := results[0]
	if full.Name != "BenchmarkIdleOpenLoopLowLoad/engine=fullscan" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped, subtest kept)", full.Name)
	}
	if full.Runs != 2 {
		t.Errorf("runs = %d, want 2 (repeated -count lines aggregate)", full.Runs)
	}
	if full.NsPerOp != 50000000 {
		t.Errorf("ns/op = %g, want the mean 5e7", full.NsPerOp)
	}
	if full.AllocsPerOp != 2049 {
		t.Errorf("allocs/op = %g, want 2049", full.AllocsPerOp)
	}
	if got := full.Metrics["sim-Mcycles/s"]; math.Abs(got-12.6) > 1e-9 {
		t.Errorf("custom metric = %g, want 12.6", got)
	}

	active := results[1]
	if active.Name != "BenchmarkIdleOpenLoopLowLoad/engine=activeset" || active.Runs != 1 {
		t.Errorf("second benchmark = %+v", active)
	}

	// A plain line without -benchmem omits the memory fields.
	plain := results[2]
	if plain.Name != "BenchmarkStepObsDisabled" || plain.NsPerOp != 1050 {
		t.Errorf("plain benchmark = %+v", plain)
	}
	if plain.BytesPerOp != 0 || plain.AllocsPerOp != 0 || plain.Metrics != nil {
		t.Errorf("plain benchmark should have no memory/custom fields: %+v", plain)
	}
}

func TestParseEmpty(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok noceval 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d benchmarks from empty output", len(results))
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/rate=0.5-16": "BenchmarkFoo/rate=0.5",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
