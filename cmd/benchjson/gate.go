package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Regression is one benchmark's current-vs-baseline comparison.
type Regression struct {
	Name     string
	Base     float64 // baseline ns/op (min across runs when recorded)
	Current  float64 // current ns/op (min across runs when recorded)
	Delta    float64 // (Current-Base)/Base
	Exceeded bool    // Delta above the tolerance
}

// gateNs is the statistic the gate compares: the fastest run when the
// input recorded one, else the mean (baselines written before min
// tracking). Min-of-N is deliberate — scheduler and co-tenant
// interference only ever adds time, so on a shared host the min tracks
// the code while the mean tracks the neighbours.
func gateNs(r Result) float64 {
	if r.MinNsPerOp > 0 {
		return r.MinNsPerOp
	}
	return r.NsPerOp
}

// gate compares current results against a committed baseline: every
// benchmark present in both is checked for an ns/op regression beyond
// tol (a fraction, e.g. 0.15 = +15%), comparing min-of-runs (see
// gateNs). Benchmarks that exist only on one side are reported but
// never fail the gate — adding or retiring a benchmark must not
// require a baseline update in the same commit. Returns the
// per-benchmark comparisons (sorted worst-first) and the names present
// in only one input.
func gate(current, baseline []Result, tol float64) (regs []Regression, onlyBase, onlyCur []string) {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	seen := make(map[string]bool, len(baseline))
	for _, b := range baseline {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			onlyBase = append(onlyBase, b.Name)
			continue
		}
		bns, cns := gateNs(b), gateNs(c)
		if bns <= 0 {
			continue
		}
		delta := (cns - bns) / bns
		regs = append(regs, Regression{
			Name:     b.Name,
			Base:     bns,
			Current:  cns,
			Delta:    delta,
			Exceeded: delta > tol,
		})
	}
	for _, r := range current {
		if !seen[r.Name] {
			onlyCur = append(onlyCur, r.Name)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Delta > regs[j].Delta })
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return regs, onlyBase, onlyCur
}

// runGate loads the baseline, compares, prints the report to stderr, and
// reports whether any benchmark regressed beyond the tolerance.
func runGate(current []Result, baselinePath string, tol float64) (failed bool, err error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var baseline []Result
	if err := json.Unmarshal(data, &baseline); err != nil {
		return false, fmt.Errorf("benchjson: baseline %s: %w", baselinePath, err)
	}
	regs, onlyBase, onlyCur := gate(current, baseline, tol)
	for _, r := range regs {
		status := "ok  "
		if r.Exceeded {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%s %-60s %12.0f -> %12.0f ns/op  %+6.1f%% (tolerance %+.0f%%)\n",
			status, r.Name, r.Base, r.Current, r.Delta*100, tol*100)
	}
	for _, name := range onlyBase {
		fmt.Fprintf(os.Stderr, "note: %s is in the baseline but was not run\n", name)
	}
	for _, name := range onlyCur {
		fmt.Fprintf(os.Stderr, "note: %s has no baseline entry (new benchmark?)\n", name)
	}
	return failed, nil
}
