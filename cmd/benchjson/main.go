// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived next to figures and
// diffed across commits without scraping text. Repeated runs of the same
// benchmark (-count=N) are aggregated into one entry with their mean;
// runs that disagree on the reported unit set are skipped with a warning
// instead of averaged wrong.
//
// With -baseline it additionally acts as the CI performance gate:
// current results are compared against a committed baseline JSON and the
// process exits nonzero when any benchmark's ns/op regressed more than
// -tolerance (default 15%).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out results/bench.json
//	benchjson -in results/bench-engines.txt -out results/bench-engines.json
//	benchjson -in bench.txt -baseline results/bench-baseline.json -tolerance 0.15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "benchmark text output to parse (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate ns/op regressions against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression before the gate fails")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	results, skipped, err := Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range skipped {
		fmt.Fprintf(os.Stderr, "warning: %s skipped: its runs report different unit sets and cannot be averaged\n", name)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if *baseline == "" {
			os.Stdout.Write(data)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
	}
	if *baseline != "" {
		failed, err := runGate(results, *baseline, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "benchjson: performance gate failed")
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: performance gate passed")
	}
}
