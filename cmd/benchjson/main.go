// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived next to figures and
// diffed across commits without scraping text. Repeated runs of the same
// benchmark (-count=N) are aggregated into one entry with their mean.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out results/bench.json
//	benchjson -in results/bench-engines.txt -out results/bench-engines.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "benchmark text output to parse (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
}
