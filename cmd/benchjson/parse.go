package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark, aggregated over its repeated runs (-count=N):
// every per-op value is the mean across runs.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, sub-
	// benchmark path included (e.g. "BenchmarkIdleBatchTail/engine=activeset").
	Name string `json:"name"`
	// Runs is the number of result lines aggregated into this entry.
	Runs int `json:"runs"`
	// Iterations is the mean b.N across runs.
	Iterations float64 `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MinNsPerOp is the fastest run. The performance gate compares mins,
	// not means: interference from a shared host only ever adds time, so
	// min-of-N approximates the machine's true cost where the mean tracks
	// whatever the co-tenants were doing during the window.
	MinNsPerOp float64 `json:"min_ns_per_op,omitempty"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric units (e.g. "sim-cycles/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// accum sums one benchmark's runs before averaging.
type accum struct {
	runs                     int
	iters, ns, bytes, allocs float64
	nsMin                    float64
	hasBytes, hasAllocs      bool
	metrics                  map[string]float64
	// units is the unit signature of the first run; mixed flips when a
	// later run reports a different unit set, which would make the summed
	// means silently wrong (a value missing from some runs still divides
	// by the total run count). Mixed benchmarks are dropped and reported.
	units string
	mixed bool
}

// Parse reads `go test -bench` output and returns one aggregated Result
// per benchmark name, in first-seen order, plus the names of benchmarks
// that were skipped because their repeated runs disagreed on the set of
// reported units (e.g. a -benchmem run concatenated with a plain one) —
// averaging across different unit sets would misreport every mean.
// Non-benchmark lines (headers, PASS/ok trailers, benchstat noise) are
// skipped.
func Parse(r io.Reader) ([]Result, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	acc := map[string]*accum{}
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := stripProcs(fields[0])
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		units := unitSignature(fields)
		a := acc[name]
		if a == nil {
			a = &accum{metrics: map[string]float64{}, units: units}
			acc[name] = a
			order = append(order, name)
		} else if a.units != units {
			a.mixed = true
			continue
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.ns += v
				if a.nsMin == 0 || v < a.nsMin {
					a.nsMin = v
				}
			case "B/op":
				a.bytes += v
				a.hasBytes = true
			case "allocs/op":
				a.allocs += v
				a.hasAllocs = true
			default:
				a.metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("benchjson: %w", err)
	}
	results := make([]Result, 0, len(order))
	var skipped []string
	for _, name := range order {
		a := acc[name]
		if a.mixed {
			skipped = append(skipped, name)
			continue
		}
		n := float64(a.runs)
		res := Result{
			Name:       name,
			Runs:       a.runs,
			Iterations: a.iters / n,
			NsPerOp:    a.ns / n,
			MinNsPerOp: a.nsMin,
		}
		if a.hasBytes {
			res.BytesPerOp = a.bytes / n
		}
		if a.hasAllocs {
			res.AllocsPerOp = a.allocs / n
		}
		if len(a.metrics) > 0 {
			res.Metrics = make(map[string]float64, len(a.metrics))
			for unit, sum := range a.metrics {
				res.Metrics[unit] = sum / n
			}
		}
		results = append(results, res)
	}
	return results, skipped, nil
}

// unitSignature renders the ordered unit list of one result line
// ("ns/op,B/op,allocs/op"). go test emits units in a fixed order per
// benchmark, so run-to-run consistency reduces to string equality.
func unitSignature(fields []string) string {
	var b strings.Builder
	for i := 3; i < len(fields); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(fields[i])
	}
	return b.String()
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo"). Sub-benchmark
// slashes are kept.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
