package main

import (
	"reflect"
	"testing"
)

func TestGate(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkRetired", NsPerOp: 500},
	}
	current := []Result{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within a 15% tolerance
		{Name: "BenchmarkB", NsPerOp: 2500}, // +25%: regression
		{Name: "BenchmarkNew", NsPerOp: 42},
	}
	regs, onlyBase, onlyCur := gate(current, baseline, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d comparisons, want 2: %+v", len(regs), regs)
	}
	// Sorted worst-first: B's +25% leads.
	if regs[0].Name != "BenchmarkB" || !regs[0].Exceeded {
		t.Errorf("worst regression = %+v, want BenchmarkB exceeded", regs[0])
	}
	if regs[1].Name != "BenchmarkA" || regs[1].Exceeded {
		t.Errorf("BenchmarkA = %+v, want within tolerance", regs[1])
	}
	if !reflect.DeepEqual(onlyBase, []string{"BenchmarkRetired"}) {
		t.Errorf("onlyBase = %v", onlyBase)
	}
	if !reflect.DeepEqual(onlyCur, []string{"BenchmarkNew"}) {
		t.Errorf("onlyCur = %v", onlyCur)
	}
}

// TestGateComparesMinOfRuns: when min ns/op was recorded the gate must
// compare mins, not means — a noisy-mean run whose best iteration still
// matches the baseline is not a regression — and fall back to the mean
// against baselines written before min tracking.
func TestGateComparesMinOfRuns(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkNoisy", NsPerOp: 1200, MinNsPerOp: 1000},
		{Name: "BenchmarkLegacy", NsPerOp: 1000}, // pre-min baseline entry
	}
	current := []Result{
		// Mean +150% (co-tenant noise) but the best run only +5%: pass.
		{Name: "BenchmarkNoisy", NsPerOp: 3000, MinNsPerOp: 1050},
		// Legacy comparison uses the means: +25% fails at 15%.
		{Name: "BenchmarkLegacy", NsPerOp: 1250, MinNsPerOp: 1250},
	}
	regs, _, _ := gate(current, baseline, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d comparisons, want 2: %+v", len(regs), regs)
	}
	byName := map[string]Regression{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkNoisy"]; r.Exceeded || r.Base != 1000 || r.Current != 1050 {
		t.Errorf("BenchmarkNoisy = %+v, want min-vs-min 1000->1050 within tolerance", r)
	}
	if r := byName["BenchmarkLegacy"]; !r.Exceeded || r.Base != 1000 {
		t.Errorf("BenchmarkLegacy = %+v, want mean fallback 1000->1250 exceeded", r)
	}
}

func TestGateImprovementAndExactMatch(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkFast", NsPerOp: 1000},
		{Name: "BenchmarkSame", NsPerOp: 300},
		{Name: "BenchmarkZero", NsPerOp: 0}, // degenerate baseline: never compared
	}
	current := []Result{
		{Name: "BenchmarkFast", NsPerOp: 500}, // 2x improvement
		{Name: "BenchmarkSame", NsPerOp: 300},
		{Name: "BenchmarkZero", NsPerOp: 100},
	}
	regs, _, _ := gate(current, baseline, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d comparisons, want 2 (zero baseline skipped): %+v", len(regs), regs)
	}
	for _, r := range regs {
		if r.Exceeded {
			t.Errorf("%s flagged as regression: %+v", r.Name, r)
		}
	}
}
