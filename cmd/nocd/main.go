// Command nocd is the long-running experiment service: a multi-tenant
// HTTP server that accepts declarative experiment specs (the same JSON
// `noceval run -config` consumes), schedules them on a bounded worker
// pool, coalesces identical in-flight submissions onto one simulation,
// and serves results, live job state (polling and SSE), and Prometheus
// metrics.
//
//	nocd -addr :9640 -workers 4 -queue 64 -job-timeout 2m \
//	     -cache -cache-dir .expcache -ledger runs.jsonl
//
// Endpoints (see internal/service):
//
//	POST /jobs               submit a spec; identical in-flight specs
//	                         coalesce onto one job
//	GET  /jobs               dashboard of all jobs + scheduler state
//	GET  /jobs/{id}          job state and result
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/events   SSE stream of state transitions
//	GET  /metrics            Prometheus text format
//	GET  /metrics.json       metrics snapshot as JSON
//	GET  /healthz            liveness (503 while draining)
//
// Shutdown is two-stage: the first SIGTERM/SIGINT drains (stop intake,
// finish accepted jobs), a second signal aborts in-flight jobs through
// their contexts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"noceval/internal/core"
	"noceval/internal/obs"
	"noceval/internal/service"
)

func main() {
	addr := flag.String("addr", ":9640", "listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue; submissions beyond it get 503")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock timeout (0 = none)")
	cache := flag.Bool("cache", false, "serve repeated specs from the on-disk experiment cache")
	cacheDir := flag.String("cache-dir", ".expcache", "experiment cache directory (with -cache)")
	ledgerPath := flag.String("ledger", "", "append one JSONL record per experiment run to this file")
	screen := flag.Bool("screen", false, "analytically screen sweep jobs (output is bit-identical)")
	flag.Parse()

	// The service serves /metrics itself, so the registry is always on:
	// job counters, per-endpoint HTTP metrics, engine and cache traffic
	// all publish into it.
	if obs.Default() == nil {
		obs.SetDefault(obs.NewRegistry())
	}
	if *ledgerPath != "" {
		if err := core.EnableLedger(*ledgerPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer core.DisableLedger()
	}
	if *cache {
		if err := core.EnableCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *screen {
		core.EnableScreening()
	}

	svc := service.New(service.Config{
		Workers:    *workers,
		Queue:      *queue,
		JobTimeout: *jobTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	fmt.Printf("nocd listening on http://%s\n", ln.Addr())
	go httpSrv.Serve(ln)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "nocd: draining — accepted jobs will finish (signal again to abort)")
	drained := make(chan struct{})
	go func() {
		svc.Drain()
		close(drained)
	}()
	select {
	case <-drained:
	case <-sig:
		fmt.Fprintln(os.Stderr, "nocd: aborting in-flight jobs")
		svc.Abort()
		<-drained
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "nocd: shut down cleanly")
}
