package main

// Analytic-model figures: the correlation between the contention-aware
// queueing estimator of internal/analytic and full simulation, in the
// style of the paper's Fig 5 model-vs-model scatter. Each point is one
// (configuration, offered load) pair plotted at (analytic latency,
// simulated latency); a perfect model puts every point on y = x. The
// offered loads are deterministic fractions of each configuration's
// predicted saturation knee, so the sweep stays in the pre-saturation
// region where the M/G/1 waiting-time model is meaningful.
//
// The same point set backs the accuracy regression test in
// analytic_corr_test.go: the figure is the artifact, the test is the gate.

import (
	"fmt"
	"math"

	"noceval/internal/core"
	"noceval/internal/stats"
)

func init() {
	register("analytic-corr", analyticCorr)
}

// corrConfig names one network configuration the correlation covers.
type corrConfig struct {
	name string
	p    core.NetworkParams
}

// corrConfigs spans the topologies and routing algorithms the estimator
// models: minimal and randomized routing on the mesh and torus, plus the
// ring where the long average route saturates an order of magnitude
// earlier.
func corrConfigs() []corrConfig {
	mk := func(topo, routing string, vcs int) corrConfig {
		p := core.Baseline()
		p.Topology = topo
		p.Routing = routing
		if vcs > 0 {
			p.VCs = vcs
		}
		return corrConfig{name: topo + "/" + routing, p: p}
	}
	return []corrConfig{
		mk("mesh8x8", "dor", 0),
		mk("torus8x8", "dor", 0),
		mk("ring64", "dor", 0),
		mk("mesh8x8", "val", 4),
		mk("torus8x8", "val", 4),
	}
}

// corrFractions places the sample loads along each configuration's own
// latency curve: from near zero-load to just under the predicted knee.
var corrFractions = []float64{0.25, 0.5, 0.75, 0.9}

// corrPoint pairs the analytic prediction with the simulated measurement
// at one offered load of one configuration.
type corrPoint struct {
	config    string
	rate      float64
	predicted float64
	simulated float64
}

// relErr is the point's relative error against the simulation.
func (p corrPoint) relErr() float64 {
	return math.Abs(p.predicted-p.simulated) / p.simulated
}

// corrPoints simulates each configuration at the given fractions of its
// predicted saturation knee and pairs the results with the estimator's
// latency predictions. Unstable points (the prediction overshot the real
// saturation) are dropped: the comparison is defined pre-saturation only.
func corrPoints(configs []corrConfig, fractions []float64, opts core.OpenLoopOpts) ([]corrPoint, error) {
	var out []corrPoint
	for _, c := range configs {
		est, err := core.AnalyticEstimator(c.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		knee := est.Knee(3)
		if knee <= 0 || math.IsInf(knee, 1) {
			return nil, fmt.Errorf("%s: estimator found no saturation knee", c.name)
		}
		rates := make([]float64, len(fractions))
		for i, f := range fractions {
			rates[i] = f * knee
		}
		results, err := core.OpenLoopSweepWith(c.p, rates, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		for i, r := range results {
			if !r.Stable {
				break
			}
			out = append(out, corrPoint{
				config:    c.name,
				rate:      rates[i],
				predicted: est.Latency(rates[i]),
				simulated: r.AvgLatency,
			})
		}
	}
	return out, nil
}

// meanRelErr is the mean relative error of the point set.
func meanRelErr(pts []corrPoint) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, p := range pts {
		sum += p.relErr()
	}
	return sum / float64(len(pts))
}

// analyticCorr renders the correlation scatter and the per-configuration
// accuracy notes.
func analyticCorr(c *ctx) error {
	opts := core.OpenLoopOpts{Warmup: 2000, Measure: 3000, DrainLimit: 20000}
	if c.full {
		opts = core.OpenLoopOpts{} // paper-scale phases
	}
	configs := corrConfigs()
	pts, err := corrPoints(configs, corrFractions, opts)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		return fmt.Errorf("analytic-corr: no stable pre-saturation points")
	}

	f := stats.NewFigure("Analytic queueing estimator vs simulation (pre-saturation)",
		"analytic latency (cycles)", "simulated latency (cycles)")

	lo, hi := math.Inf(1), math.Inf(-1)
	byConfig := map[string][]corrPoint{}
	for _, p := range pts {
		byConfig[p.config] = append(byConfig[p.config], p)
		lo = min(lo, min(p.predicted, p.simulated))
		hi = max(hi, max(p.predicted, p.simulated))
	}
	ident := f.AddSeries("y = x")
	ident.Add(lo, lo)
	ident.Add(hi, hi)
	for _, cfg := range configs {
		group := byConfig[cfg.name]
		if len(group) == 0 {
			continue
		}
		s := f.AddSeries(cfg.name)
		for _, p := range group {
			s.Add(p.predicted, p.simulated)
		}
		f.Note("%s: %d points, mean relative error %.1f%%", cfg.name, len(group), 100*meanRelErr(group))
	}
	f.Note("overall: %d points, mean relative error %.1f%%", len(pts), 100*meanRelErr(pts))
	f.Note("loads are {%.2g..%.2g} x each config's predicted knee; unstable points dropped", corrFractions[0], corrFractions[len(corrFractions)-1])
	return c.writeFigure("analytic_corr", f)
}
