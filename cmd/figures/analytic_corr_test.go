package main

import (
	"testing"

	"noceval/internal/core"
)

// TestAnalyticCorrelationAccuracy is the accuracy gate behind the
// analytic-corr figure: the queueing estimator must track simulation in
// the comfortably pre-saturation region (loads up to 0.75 of the
// predicted knee) on the minimal-routing mesh and torus. The bound is
// deliberately loose — the estimator is a screening model, not a
// replacement simulator — but tight enough to catch a broken waiting-time
// term or a mis-scaled channel load, which show up as order-of-magnitude
// errors.
func TestAnalyticCorrelationAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates six open-loop points")
	}
	configs := []corrConfig{}
	for _, c := range corrConfigs() {
		if c.name == "mesh8x8/dor" || c.name == "torus8x8/dor" {
			configs = append(configs, c)
		}
	}
	if len(configs) != 2 {
		t.Fatalf("expected mesh and torus configs, got %d", len(configs))
	}
	pts, err := corrPoints(configs, []float64{0.25, 0.5, 0.7},
		core.OpenLoopOpts{Warmup: 1000, Measure: 2000, DrainLimit: 16000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("only %d stable pre-saturation points, want >= 5", len(pts))
	}
	// Loads stop at 0.7 of the knee: closer in, the simulated curve is far
	// steeper than the M/G/1 one and the comparison degenerates into
	// measuring that steepness (the figure keeps those points; the gate
	// does not). Measured 0.127 here with these phases; 0.25 is ~2x
	// headroom for seed and phase-length sensitivity.
	const bound = 0.25
	mre := meanRelErr(pts)
	t.Logf("pre-saturation mean relative error %.3f over %d points (bound %.2f)", mre, len(pts), bound)
	if mre > bound {
		t.Errorf("pre-saturation mean relative error %.3f exceeds %.2f", mre, bound)
		for _, p := range pts {
			t.Logf("%s rate %.3f: analytic %.2f simulated %.2f (err %.1f%%)",
				p.config, p.rate, p.predicted, p.simulated, 100*p.relErr())
		}
	}
}
