package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastCtx returns a ctx writing into a fresh temp dir.
func fastCtx(t *testing.T) *ctx {
	t.Helper()
	return &ctx{out: t.TempDir()}
}

func read(t *testing.T, dir, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGeneratorRegistryComplete(t *testing.T) {
	// Every figure 1-22 and table 1-4 must be registered.
	for i := 1; i <= 22; i++ {
		id := "fig" + pad2(i)
		if generators[id] == nil {
			t.Errorf("missing generator %s", id)
		}
	}
	for i := 1; i <= 4; i++ {
		id := "table" + string(rune('0'+i))
		if generators[id] == nil {
			t.Errorf("missing generator %s", id)
		}
	}
}

func pad2(i int) string {
	if i < 10 {
		return "0" + string(rune('0'+i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestTableGenerators(t *testing.T) {
	c := fastCtx(t)
	if err := table1(c); err != nil {
		t.Fatal(err)
	}
	out := read(t, c.out, "table1.txt")
	for _, want := range []string{"topology", "8x8 2D mesh", "DOR", "round robin"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	if err := table2(c); err != nil {
		t.Fatal(err)
	}
	out = read(t, c.out, "table2.txt")
	if !strings.Contains(out, "300-cycle DRAM") {
		t.Errorf("table2 missing DRAM row: %s", out)
	}
	csv := read(t, c.out, "table1.csv")
	if !strings.HasPrefix(csv, "parameter,values,baseline") {
		t.Errorf("table1 csv header: %q", csv)
	}
}

func TestFig12Generator(t *testing.T) {
	c := fastCtx(t)
	if err := fig12(c); err != nil {
		t.Fatal(err)
	}
	out := read(t, c.out, "fig12.txt")
	for _, want := range []string{"S", "D", "I", "DOR", "VAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 missing %q", want)
		}
	}
	// 14-hop minimal route: exactly 13 intermediate '*' marks per panel
	// (source and destination replace two endpoints of the walk).
	if strings.Count(out, "*") < 20 {
		t.Errorf("fig12 route marks missing:\n%s", out)
	}
}

func TestScaleHelper(t *testing.T) {
	c := &ctx{}
	if c.scale(10, 100) != 10 || c.scale64(10, 100) != 10 {
		t.Error("quick scale broken")
	}
	c.full = true
	if c.scale(10, 100) != 100 || c.scale64(10, 100) != 100 {
		t.Error("full scale broken")
	}
}

func TestHeatmapGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a batch simulation")
	}
	c := fastCtx(t)
	if err := heatmapFig(c); err != nil {
		t.Fatal(err)
	}
	out := read(t, c.out, "heatmap.txt")
	if !strings.Contains(out, "crossbar utilization") || !strings.Contains(out, "mesh4x4") {
		t.Errorf("heatmap header missing:\n%s", out)
	}
	csv := read(t, c.out, "heatmap.csv")
	// A 4x4 mesh renders as four CSV rows of four cells.
	if rows := strings.Count(strings.TrimSpace(csv), "\n") + 1; rows != 4 {
		t.Errorf("heatmap csv has %d rows, want 4:\n%s", rows, csv)
	}
}

func TestFig07Generator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two batch simulations")
	}
	c := fastCtx(t)
	if err := fig07(c); err != nil {
		t.Fatal(err)
	}
	out := read(t, c.out, "fig07.txt")
	if !strings.Contains(out, "mesh8x8") || !strings.Contains(out, "torus8x8") {
		t.Errorf("fig07 missing topologies")
	}
	if !strings.Contains(out, "CSV") {
		t.Errorf("fig07 missing CSV block")
	}
}
