// Command figures regenerates every table and figure of the paper's
// evaluation. Each figure is written under -out as both a human-readable
// text table and a CSV, ready for plotting.
//
// Usage:
//
//	figures -all                # everything (minutes)
//	figures -fig 5              # one figure
//	figures -table 3            # one table
//	figures -full               # paper-scale parameters (much slower)
//	figures -all -cache -serve :9500 -ledger runs.jsonl
//	                            # live metrics + one record per run
//	figures -report runs.jsonl  # summarize a run ledger and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"noceval/internal/core"
	"noceval/internal/obs/export"
	"noceval/internal/stats"
)

// ctx carries shared settings into figure generators.
type ctx struct {
	out  string
	full bool
}

// scale selects between the quick default and the paper-scale value.
func (c *ctx) scale(quick, full int) int {
	if c.full {
		return full
	}
	return quick
}

func (c *ctx) scale64(quick, full int64) int64 {
	if c.full {
		return full
	}
	return quick
}

// writeFile writes content under the output directory.
func (c *ctx) writeFile(name, content string) error {
	path := filepath.Join(c.out, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// writeFigure emits a figure as text (table plus ASCII chart) and CSV.
func (c *ctx) writeFigure(base string, f *stats.Figure) error {
	if err := c.writeFile(base+".txt", f.Text()+"\n"+f.Chart(60, 18)); err != nil {
		return err
	}
	return c.writeFile(base+".csv", f.CSV())
}

// writeTable emits a table as text and CSV.
func (c *ctx) writeTable(base string, t *stats.Table) error {
	if err := c.writeFile(base+".txt", t.Text()); err != nil {
		return err
	}
	return c.writeFile(base+".csv", t.CSV())
}

// generators maps figure/table ids to their producers.
var generators = map[string]func(*ctx) error{}

func register(id string, fn func(*ctx) error) { generators[id] = fn }

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (1-22)")
		table    = flag.Int("table", 0, "table number to regenerate (1-4)")
		id       = flag.String("id", "", "generator id to regenerate (for ids outside the fig/table numbering, e.g. heatmap)")
		all      = flag.Bool("all", false, "regenerate every figure and table")
		golden   = flag.Bool("golden", false, "regenerate the golden regression subset (use -out results/golden)")
		out      = flag.String("out", "results", "output directory")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		cache    = flag.Bool("cache", false, "reuse experiment results from the on-disk cache; cold points are computed and stored")
		cacheDir = flag.String("cache-dir", ".expcache", "experiment cache directory (with -cache)")
		ledger   = flag.String("ledger", "", "append one JSONL record per experiment run to this file")
		serve    = flag.String("serve", "", "serve live metrics on this address (e.g. :9500) while generating")
		report   = flag.String("report", "", "summarize a run ledger file into a dashboard table and exit")
		screen   = flag.Bool("screen", false, "analytically screen sweeps: skip predicted deep-saturation simulations (output is bit-identical)")
	)
	flag.Parse()

	if *report != "" {
		if err := writeReport(os.Stdout, *report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Order matters: -serve installs the process-wide registry that the
	// cache, pool, engine and fault subsystems publish into, so it must be
	// live before the cache opens.
	if *serve != "" {
		srv, err := export.Enable(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving live metrics on http://%s/metrics\n", srv.Addr())
	}
	if *ledger != "" {
		if err := core.EnableLedger(*ledger); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer core.DisableLedger()
	}
	if *cache {
		if err := core.EnableCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *screen {
		core.EnableScreening()
	}
	c := &ctx{out: *out, full: *full}

	var ids []string
	switch {
	case *all:
		// The golden subset is excluded: it regenerates scaled-down copies
		// of curves -all already produces, and its output belongs under
		// results/golden (see -golden / make golden-update).
		for id := range generators {
			if !strings.HasPrefix(id, "golden") {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
	case *golden:
		for id := range generators {
			if strings.HasPrefix(id, "golden") {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
	case *fig > 0:
		ids = []string{fmt.Sprintf("fig%02d", *fig)}
	case *table > 0:
		ids = []string{fmt.Sprintf("table%d", *table)}
	case *id != "":
		ids = []string{*id}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig N, -table N, -id NAME, or -all; available:")
		for id := range generators {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintln(os.Stderr, "  ", id)
		}
		os.Exit(2)
	}

	for _, id := range ids {
		gen, ok := generators[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure/table %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("generating %s...\n", id)
		if err := gen(c); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("  %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if s, ok := core.CacheStats(); ok {
		fmt.Printf("experiment cache: %s\n", s)
	}
	if *screen {
		s := core.ScreeningSummary()
		fmt.Printf("screening: simulated %d of %d sweep points (skipped %d, refined %d)\n",
			s.Simulated, s.Considered, s.Skipped, s.Refined)
	}
	if *ledger != "" {
		fmt.Printf("run ledger: %d records appended to %s\n", core.LedgerAppends(), *ledger)
	}
}
