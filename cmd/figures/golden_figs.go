package main

// Golden regression figures: scaled-down regenerations of the paper's
// router-parameter curves (Figs 3a/3b/4a), the topology comparison
// (Fig 6a), and the open-loop/batch correlation procedure of Fig 5,
// sized so CI can re-simulate them on every push (~30s of single-core
// simulation; each point also flows through the experiment cache when
// -cache is set).
//
// `figures -golden -out results/golden` (make golden-update) rewrites the
// committed goldens. The TestGoldenFigures harness in golden_test.go
// regenerates the same subset into a scratch directory and compares the
// CSVs against results/golden with per-metric tolerances — any change to
// router timing, allocation, routing, traffic, or methodology code that
// moves the reproduced numbers fails tier-1 until the goldens are
// deliberately regenerated.

import (
	"fmt"

	"noceval/internal/core"
	"noceval/internal/openloop"
	"noceval/internal/stats"
)

// Golden scale: short open-loop phases and a small batch keep a full
// regeneration within CI budgets while still exercising warmup,
// measurement, drain, and saturation detection.
var goldenPhases = core.OpenLoopOpts{Warmup: 2000, Measure: 3000, DrainLimit: 20000}

var (
	goldenRates = []float64{0.1, 0.2, 0.3}
	goldenTrs   = []int64{1, 2, 4}
	goldenQs    = []int{4, 16}
	goldenMs    = []int{1, 4, 16}
)

const goldenB = 100

func init() {
	register("golden_fig03a", goldenFig03a)
	register("golden_fig03b", goldenFig03b)
	register("golden_fig04a", goldenFig04a)
	register("golden_fig06a", goldenFig06a)
	register("golden_corr", goldenCorr)
}

// goldenIDs returns the golden generator ids in deterministic order.
func goldenIDs() []string {
	return []string{"golden_fig03a", "golden_fig03b", "golden_fig04a", "golden_fig06a", "golden_corr"}
}

// goldenSweepFigure renders one open-loop figure over the golden rates
// for a set of parameter variants.
func goldenSweepFigure(title string, labels []string, vary func(i int) core.NetworkParams) (*stats.Figure, error) {
	f := stats.NewFigure(title, "offered load (flits/cycle/node)", "average latency (cycles)")
	sweeps := make([][]*openloop.Result, len(labels))
	if err := core.Parallel(len(labels), 0, func(i int) error {
		res, err := core.OpenLoopSweepWith(vary(i), goldenRates, goldenPhases)
		sweeps[i] = res
		return err
	}); err != nil {
		return nil, err
	}
	for i, label := range labels {
		s := f.AddSeries(label)
		for _, r := range sweeps[i] {
			if !r.Stable {
				break
			}
			s.Add(r.Rate, r.AvgLatency)
		}
	}
	return f, nil
}

// goldenFig03a is the Fig 3a router-delay curve at golden scale.
func goldenFig03a(c *ctx) error {
	f, err := goldenSweepFigure("Golden Fig 3a: open-loop latency vs load across router delays",
		[]string{"tr=1", "tr=2", "tr=4"}, func(i int) core.NetworkParams {
			p := core.Baseline()
			p.RouterDelay = goldenTrs[i]
			return p
		})
	if err != nil {
		return err
	}
	return c.writeFigure("golden_fig03a", f)
}

// goldenFig03b is the Fig 3b buffer-depth curve at golden scale.
func goldenFig03b(c *ctx) error {
	f, err := goldenSweepFigure("Golden Fig 3b: open-loop latency vs load across buffer depths",
		[]string{"q=4", "q=16"}, func(i int) core.NetworkParams {
			p := core.Baseline()
			p.BufDepth = goldenQs[i]
			return p
		})
	if err != nil {
		return err
	}
	return c.writeFigure("golden_fig03b", f)
}

// goldenFig04a is the Fig 4a batch-model router-delay grid at golden
// scale: normalized runtime and achieved throughput per m.
func goldenFig04a(c *ctx) error {
	var variants []core.NetworkParams
	for _, tr := range goldenTrs {
		p := core.Baseline()
		p.RouterDelay = tr
		variants = append(variants, p)
	}
	grid, err := core.BatchGrid(variants, goldenMs, core.BatchParams{B: goldenB})
	if err != nil {
		return err
	}
	f := stats.NewFigure("Golden Fig 4a: batch-model runtime and throughput across router delays",
		"max outstanding requests (m)", "normalized runtime / achieved throughput")
	baseT := float64(grid[0][0].Runtime) // tr=1, m=1
	for vi, tr := range goldenTrs {
		st := f.AddSeries(fmt.Sprintf("tr=%d (T)", tr))
		sth := f.AddSeries(fmt.Sprintf("tr=%d (theta)", tr))
		for mi, m := range goldenMs {
			st.Add(float64(m), float64(grid[vi][mi].Runtime)/baseT)
			sth.Add(float64(m), grid[vi][mi].Throughput)
		}
	}
	return c.writeFigure("golden_fig04a", f)
}

// goldenFig06a is the Fig 6a topology comparison at golden scale.
func goldenFig06a(c *ctx) error {
	topos := []string{"mesh8x8", "torus8x8", "ring64"}
	f, err := goldenSweepFigure("Golden Fig 6a: open-loop latency vs load across topologies",
		[]string{"mesh", "torus", "ring"}, func(i int) core.NetworkParams {
			p := core.Baseline()
			p.Topology = topos[i]
			return p
		})
	if err != nil {
		return err
	}
	return c.writeFigure("golden_fig06a", f)
}

// goldenCorrSweep runs the Fig 5 correlation procedure at golden scale
// for one parameter sweep: batch runtime vs open-loop latency at the
// batch's achieved load, normalized within each m-group.
func goldenCorrSweep(vary func(i int) core.NetworkParams, nVariants int) (pearson, rank float64, n int, err error) {
	ms := []int{1, 4}
	batchRaw := make([]float64, len(ms)*nVariants)
	openRaw := make([]float64, len(ms)*nVariants)
	err = core.Parallel(len(ms)*nVariants, 0, func(idx int) error {
		mi, vi := idx/nVariants, idx%nVariants
		p := vary(vi)
		res, err := core.Batch(p, core.BatchParams{B: goldenB, M: ms[mi]})
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("golden batch m=%d variant %d did not complete", ms[mi], vi)
		}
		batchRaw[idx] = float64(res.Runtime)
		ol, err := core.OpenLoopWith(p, res.Throughput, goldenPhases)
		if err != nil {
			return err
		}
		openRaw[idx] = ol.AvgLatency
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	var xs, ys []float64
	for mi := range ms {
		bn, err := core.NormalizeGroup(batchRaw[mi*nVariants : (mi+1)*nVariants])
		if err != nil {
			return 0, 0, 0, err
		}
		on, err := core.NormalizeGroup(openRaw[mi*nVariants : (mi+1)*nVariants])
		if err != nil {
			return 0, 0, 0, err
		}
		xs = append(xs, on...)
		ys = append(ys, bn...)
	}
	pearson, err = stats.Pearson(xs, ys)
	if err != nil {
		return 0, 0, 0, err
	}
	rank, err = stats.Spearman(xs, ys)
	if err != nil {
		return 0, 0, 0, err
	}
	return pearson, rank, len(xs), nil
}

// goldenCorr emits the open-loop/batch correlation table over the
// router-delay and buffer-depth sweeps.
func goldenCorr(c *ctx) error {
	t := stats.NewTable("Golden: open-loop vs batch correlation (Fig 5 procedure, golden scale)",
		"sweep", "points", "pearson", "spearman")
	trP, trR, trN, err := goldenCorrSweep(func(i int) core.NetworkParams {
		p := core.Baseline()
		p.RouterDelay = goldenTrs[i]
		return p
	}, len(goldenTrs))
	if err != nil {
		return err
	}
	t.AddRow("router delay", fmt.Sprint(trN), fmt.Sprintf("%.4f", trP), fmt.Sprintf("%.4f", trR))

	qs := []int{2, 4, 8, 16}
	qP, qR, qN, err := goldenCorrSweep(func(i int) core.NetworkParams {
		p := core.Baseline()
		p.BufDepth = qs[i]
		return p
	}, len(qs))
	if err != nil {
		return err
	}
	t.AddRow("buffer depth", fmt.Sprint(qN), fmt.Sprintf("%.4f", qP), fmt.Sprintf("%.4f", qR))
	return c.writeTable("golden_corr", t)
}
