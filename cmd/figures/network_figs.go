package main

// Network-only figures: the open-loop and batch-model experiments of
// §II-B and §III (Figs 1-12).

import (
	"fmt"
	"strings"

	"noceval/internal/core"
	"noceval/internal/openloop"
	"noceval/internal/stats"
)

// sweepRates is the offered-load axis used by the open-loop figures.
func sweepRates(hi float64) []float64 {
	var out []float64
	for r := 0.02; r <= hi; r += 0.02 {
		out = append(out, r)
	}
	return out
}

var batchMs = []int{1, 2, 4, 8, 16, 32}

func init() {
	register("fig01", fig01)
	register("fig02", fig02)
	register("fig03", fig03)
	register("fig04", fig04)
	register("fig05", fig05)
	register("fig06", fig06)
	register("fig07", fig07)
	register("fig08", fig08)
	register("fig09", fig09)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig12", fig12)
}

// fig01 reproduces the canonical latency vs offered traffic curve.
func fig01(c *ctx) error {
	p := core.Baseline()
	f := stats.NewFigure("Fig 1: latency vs offered traffic (8x8 mesh, DOR, uniform)",
		"offered load (flits/cycle/node)", "average latency (cycles)")
	s := f.AddSeries("avg latency")
	results, err := core.OpenLoopSweep(p, sweepRates(0.5))
	if err != nil {
		return err
	}
	var zeroLoad, sat float64
	if len(results) > 0 {
		zeroLoad = results[0].AvgLatency
	}
	for _, r := range results {
		if !r.Stable {
			break
		}
		s.Add(r.Rate, r.AvgLatency)
		// Saturation: the conventional knee where latency exceeds 3x T0.
		if r.AvgLatency <= 3*zeroLoad {
			sat = r.Rate
		}
	}
	f.Note("zero-load latency T0 ~= %.1f cycles", zeroLoad)
	f.Note("saturation throughput theta ~= %.2f flits/cycle/node", sat)
	return c.writeFigure("fig01", f)
}

// fig02 plots runtime normalized to batch size as b grows, per m.
func fig02(c *ctx) error {
	f := stats.NewFigure("Fig 2: runtime normalized to batch size in batch model",
		"batch size (b)", "normalized runtime (T/b)")
	bs := []int{1, 10, 100, 1000, 10000}
	if c.full {
		bs = append(bs, 100000)
	}
	vals := make([][]float64, len(batchMs))
	for i := range vals {
		vals[i] = make([]float64, len(bs))
	}
	err := core.Parallel(len(batchMs)*len(bs), 0, func(idx int) error {
		mi, bi := idx/len(bs), idx%len(bs)
		res, err := core.Batch(core.Baseline(), core.BatchParams{B: bs[bi], M: batchMs[mi]})
		if err != nil {
			return err
		}
		vals[mi][bi] = float64(res.Runtime) / float64(bs[bi])
		return nil
	})
	if err != nil {
		return err
	}
	for mi, m := range batchMs {
		s := f.AddSeries(fmt.Sprintf("m=%d", m))
		for bi, b := range bs {
			s.Add(float64(b), vals[mi][bi])
		}
	}
	f.Note("normalized runtime saturates as b grows; higher m overlaps more requests")
	return c.writeFigure("fig02", f)
}

// fig03 shows open-loop impact of router delay (a) and buffer depth (b).
func fig03(c *ctx) error {
	fa := stats.NewFigure("Fig 3a: impact of router delay in open-loop",
		"offered load (flits/cycle/node)", "average latency (cycles)")
	trs := []int64{1, 2, 4}
	sweeps := make([][]*openloop.Result, len(trs))
	if err := core.Parallel(len(trs), 0, func(i int) error {
		p := core.Baseline()
		p.RouterDelay = trs[i]
		res, err := core.OpenLoopSweep(p, sweepRates(0.5))
		sweeps[i] = res
		return err
	}); err != nil {
		return err
	}
	for i, tr := range trs {
		s := fa.AddSeries(fmt.Sprintf("tr=%d", tr))
		for _, r := range sweeps[i] {
			if !r.Stable {
				break
			}
			s.Add(r.Rate, r.AvgLatency)
		}
	}
	if err := c.writeFigure("fig03a", fa); err != nil {
		return err
	}

	fb := stats.NewFigure("Fig 3b: impact of VC buffer depth in open-loop",
		"offered load (flits/cycle/node)", "average latency (cycles)")
	qs := []int{4, 8, 16, 32}
	qSweeps := make([][]*openloop.Result, len(qs))
	if err := core.Parallel(len(qs), 0, func(i int) error {
		p := core.Baseline()
		p.BufDepth = qs[i]
		res, err := core.OpenLoopSweep(p, sweepRates(0.5))
		qSweeps[i] = res
		return err
	}); err != nil {
		return err
	}
	for i, q := range qs {
		s := fb.AddSeries(fmt.Sprintf("q=%d", q))
		for _, r := range qSweeps[i] {
			if !r.Stable {
				break
			}
			s.Add(r.Rate, r.AvgLatency)
		}
	}
	return c.writeFigure("fig03b", fb)
}

// fig04 shows the same two parameters in the batch model across m.
func fig04(c *ctx) error {
	b := c.scale(300, 1000)

	fa := stats.NewFigure("Fig 4a: impact of router delay in batch model",
		"max outstanding requests (m)", "normalized runtime / achieved throughput")
	var trVariants []core.NetworkParams
	for _, tr := range []int64{1, 2, 4} {
		p := core.Baseline()
		p.RouterDelay = tr
		trVariants = append(trVariants, p)
	}
	grid, err := core.BatchGrid(trVariants, batchMs, core.BatchParams{B: b})
	if err != nil {
		return err
	}
	baseT := float64(grid[0][0].Runtime) // tr=1, m=1 baseline
	for vi, tr := range []int64{1, 2, 4} {
		st := fa.AddSeries(fmt.Sprintf("tr=%d (T)", tr))
		sth := fa.AddSeries(fmt.Sprintf("tr=%d (theta)", tr))
		for mi, m := range batchMs {
			st.Add(float64(m), float64(grid[vi][mi].Runtime)/baseT)
			sth.Add(float64(m), grid[vi][mi].Throughput)
		}
	}
	if err := c.writeFigure("fig04a", fa); err != nil {
		return err
	}

	fb := stats.NewFigure("Fig 4b: impact of buffer depth in batch model",
		"max outstanding requests (m)", "normalized runtime / achieved throughput")
	qVals4 := []int{4, 8, 16, 32}
	var qVariants []core.NetworkParams
	for _, q := range qVals4 {
		p := core.Baseline()
		p.BufDepth = q
		qVariants = append(qVariants, p)
	}
	qGrid, err := core.BatchGrid(qVariants, batchMs, core.BatchParams{B: b})
	if err != nil {
		return err
	}
	baseT = float64(qGrid[3][0].Runtime) // q=32, m=1 per the paper
	for vi, q := range qVals4 {
		st := fb.AddSeries(fmt.Sprintf("q=%d (T)", q))
		sth := fb.AddSeries(fmt.Sprintf("q=%d (theta)", q))
		for mi, m := range batchMs {
			st.Add(float64(m), float64(qGrid[vi][mi].Runtime))
			sth.Add(float64(m), qGrid[vi][mi].Throughput)
		}
	}
	// Normalize runtimes to q=32, m=1 per the paper.
	for _, s := range fb.Series {
		if strings.Contains(s.Name, "(T)") && baseT > 0 {
			for i := range s.Ys {
				s.Ys[i] /= baseT
			}
		}
	}
	return c.writeFigure("fig04b", fb)
}

// fig05 correlates open-loop and batch measurements for tr and q sweeps.
func fig05(c *ctx) error {
	b := c.scale(300, 1000)
	write := func(name, param string, labels []string, vary func(int) core.NetworkParams) error {
		corr, err := core.CorrelateOpenBatch(batchMs, labels, vary, b, false)
		if err != nil {
			return err
		}
		f := stats.NewFigure(
			fmt.Sprintf("Fig 5%s: open-loop vs batch correlation (%s sweep)", name, param),
			"open-loop normalized avg latency", "batch model normalized runtime")
		byGroup := map[string]*stats.Series{}
		for _, pt := range corr.Pairs {
			s := byGroup[pt.Group]
			if s == nil {
				s = f.AddSeries(pt.Group)
				byGroup[pt.Group] = s
			}
			s.Add(pt.X, pt.Y)
		}
		f.Note("correlation coefficient (all m) = %.4f +/- %.4f (rank %.4f)", corr.Coefficient, corr.CI95, corr.Rank)
		// The paper notes poor correlation near saturation (m=16, 32).
		lowM := []int{1, 2, 4, 8}
		corrLow, err := core.CorrelateOpenBatch(lowM, labels, vary, b, false)
		if err != nil {
			return err
		}
		f.Note("correlation coefficient (m<=8) = %.4f +/- %.4f (paper: 0.9953 for tr, 0.9935 for q)", corrLow.Coefficient, corrLow.CI95)
		return c.writeFigure("fig05"+name, f)
	}
	trLabels := []string{"tr=1", "tr=2", "tr=4"}
	if err := write("a", "router delay", trLabels, func(i int) core.NetworkParams {
		p := core.Baseline()
		p.RouterDelay = []int64{1, 2, 4}[i]
		return p
	}); err != nil {
		return err
	}
	// The q sweep reaches down to q=2: with this router's short credit
	// round trip, buffers of 4+ flits only matter at saturation, so the
	// correlation signal lives in the small-buffer half of Table I's
	// {1..32} range.
	qLabels := []string{"q=16", "q=8", "q=4", "q=2"}
	qVals := []int{16, 8, 4, 2}
	if err := write("b", "buffer depth", qLabels, func(i int) core.NetworkParams {
		p := core.Baseline()
		p.BufDepth = qVals[i]
		return p
	}); err != nil {
		return err
	}
	// Buffer depth is a throughput parameter on this router: the
	// latency-domain scatter above inverts because small-q batch runs
	// self-throttle below their saturation (see EXPERIMENTS.md), so also
	// report the throughput-domain correlation: batch achieved throughput
	// vs open-loop capacity across q.
	var batchTheta, olCap []float64
	for _, q := range qVals {
		p := core.Baseline()
		p.BufDepth = q
		res, err := core.Batch(p, core.BatchParams{B: b, M: 16})
		if err != nil {
			return err
		}
		over, err := core.OpenLoop(p, 0.9)
		if err != nil {
			return err
		}
		batchTheta = append(batchTheta, res.Throughput)
		olCap = append(olCap, over.Accepted)
	}
	r, err := stats.Pearson(olCap, batchTheta)
	if err != nil {
		return err
	}
	extra := stats.NewFigure("Fig 5b (supplement): throughput-domain correlation across buffer depths",
		"open-loop capacity (flits/cycle/node)", "batch achieved throughput (m=16)")
	s := extra.AddSeries("q sweep")
	for i := range qVals {
		s.Add(olCap[i], batchTheta[i])
	}
	extra.Note("throughput correlation coefficient = %.4f", r)
	return c.writeFigure("fig05b_throughput", extra)
}

// topologyParams returns the three Fig 6 topologies on 64 nodes.
func topologyParams() ([]string, func(int) core.NetworkParams) {
	names := []string{"mesh", "torus", "ring"}
	topos := []string{"mesh8x8", "torus8x8", "ring64"}
	return names, func(i int) core.NetworkParams {
		p := core.Baseline()
		p.Topology = topos[i]
		return p
	}
}

// fig06 compares topologies in open-loop (a) and batch model (b).
func fig06(c *ctx) error {
	names, vary := topologyParams()

	fa := stats.NewFigure("Fig 6a: impact of topology in open-loop (uniform random)",
		"offered load (flits/cycle/node)", "average latency (cycles)")
	topoSweeps := make([][]*openloop.Result, len(names))
	if err := core.Parallel(len(names), 0, func(i int) error {
		res, err := core.OpenLoopSweep(vary(i), sweepRates(0.7))
		topoSweeps[i] = res
		return err
	}); err != nil {
		return err
	}
	for i, name := range names {
		s := fa.AddSeries(name)
		for _, r := range topoSweeps[i] {
			if !r.Stable {
				break
			}
			s.Add(r.Rate, r.AvgLatency)
		}
	}
	if err := c.writeFigure("fig06a", fa); err != nil {
		return err
	}

	b := c.scale(300, 1000)
	fb := stats.NewFigure("Fig 6b: impact of topology in batch model",
		"max outstanding requests (m)", "normalized runtime / achieved throughput")
	var variants []core.NetworkParams
	for i := range names {
		variants = append(variants, vary(i))
	}
	grid, err := core.BatchGrid(variants, batchMs, core.BatchParams{B: b})
	if err != nil {
		return err
	}
	baseT := float64(grid[0][0].Runtime) // mesh, m=1
	for vi, name := range names {
		st := fb.AddSeries(name + " (T)")
		sth := fb.AddSeries(name + " (theta)")
		for mi, m := range batchMs {
			st.Add(float64(m), float64(grid[vi][mi].Runtime))
			sth.Add(float64(m), grid[vi][mi].Throughput)
		}
	}
	for _, s := range fb.Series {
		if strings.Contains(s.Name, "(T)") && baseT > 0 {
			for i := range s.Ys {
				s.Ys[i] /= baseT
			}
		}
	}
	return c.writeFigure("fig06b", fb)
}

// fig07 renders the per-node runtime maps of mesh vs torus at m=1.
func fig07(c *ctx) error {
	b := c.scale(300, 1000)
	var out strings.Builder
	out.WriteString("# Fig 7: per-node runtime under mesh and torus (batch model, m=1)\n")
	out.WriteString("# Values are node finish times normalized to the slowest node.\n")
	for _, topo := range []string{"mesh8x8", "torus8x8"} {
		p := core.Baseline()
		p.Topology = topo
		res, err := core.Batch(p, core.BatchParams{B: b, M: 1})
		if err != nil {
			return err
		}
		hm := stats.NewHeatmap(8, 8)
		var maxT int64 = 1
		for _, t := range res.NodeFinish {
			if t > maxT {
				maxT = t
			}
		}
		minNorm, maxNorm := 2.0, 0.0
		for i, t := range res.NodeFinish {
			v := float64(t) / float64(maxT)
			hm.Set(i/8, i%8, v)
			if v < minNorm {
				minNorm = v
			}
			if v > maxNorm {
				maxNorm = v
			}
		}
		fmt.Fprintf(&out, "\n## %s (normalized finish time spread: %.3f .. %.3f)\n", topo, minNorm, maxNorm)
		out.WriteString(hm.String())
		out.WriteString("\nCSV:\n")
		out.WriteString(hm.CSV())
	}
	out.WriteString("\n# Expectation: mesh center nodes finish much earlier than edge nodes;\n")
	out.WriteString("# the edge-symmetric torus is nearly uniform (paper Fig 7).\n")
	return c.writeFile("fig07.txt", out.String())
}

// fig08 correlates topologies using worst-case open-loop latency.
func fig08(c *ctx) error {
	b := c.scale(300, 1000)
	names, vary := topologyParams()
	ms := []int{1, 2, 4, 8}
	corr, err := core.CorrelateOpenBatch(ms, names, vary, b, true)
	if err != nil {
		return err
	}
	f := stats.NewFigure("Fig 8: open-loop (worst-case latency) vs batch across topologies",
		"open-loop normalized worst-case latency", "batch model normalized runtime")
	byGroup := map[string]*stats.Series{}
	for _, pt := range corr.Pairs {
		s := byGroup[pt.Group]
		if s == nil {
			s = f.AddSeries(pt.Group)
			byGroup[pt.Group] = s
		}
		s.Add(pt.X, pt.Y)
	}
	f.Note("correlation coefficient = %.4f +/- %.4f, rank %.4f (paper: 0.999 using worst-case latency)", corr.Coefficient, corr.CI95, corr.Rank)
	avg, err := core.CorrelateOpenBatch(ms, names, vary, b, false)
	if err == nil {
		f.Note("with average latency instead: %.4f (mesh/torus inversion at low m)", avg.Coefficient)
	}
	return c.writeFigure("fig08", f)
}

// routingParams returns the four Table I routing algorithms with 4 VCs.
func routingParams(pattern string) ([]string, func(int) core.NetworkParams) {
	algs := []string{"dor", "ma", "romm", "val"}
	return algs, func(i int) core.NetworkParams {
		p := core.Baseline()
		p.Routing = algs[i]
		p.VCs = 4
		p.Pattern = pattern
		return p
	}
}

// fig09 compares routing algorithms in open-loop under uniform and
// transpose traffic.
func fig09(c *ctx) error {
	for suffix, pattern := range map[string]string{"a": "uniform", "b": "transpose"} {
		names, vary := routingParams(pattern)
		f := stats.NewFigure(
			fmt.Sprintf("Fig 9%s: routing algorithms in open-loop (%s)", suffix, pattern),
			"offered load (flits/cycle/node)", "average latency (cycles)")
		algSweeps := make([][]*openloop.Result, len(names))
		if err := core.Parallel(len(names), 0, func(i int) error {
			res, err := core.OpenLoopSweep(vary(i), sweepRates(0.5))
			algSweeps[i] = res
			return err
		}); err != nil {
			return err
		}
		for i, name := range names {
			s := f.AddSeries(strings.ToUpper(name))
			for _, r := range algSweeps[i] {
				if !r.Stable {
					break
				}
				s.Add(r.Rate, r.AvgLatency)
			}
		}
		if err := c.writeFigure("fig09"+suffix, f); err != nil {
			return err
		}
	}
	return nil
}

// fig10 compares routing algorithms in the batch model.
func fig10(c *ctx) error {
	b := c.scale(300, 1000)
	for suffix, pattern := range map[string]string{"a": "uniform", "b": "transpose"} {
		names, vary := routingParams(pattern)
		f := stats.NewFigure(
			fmt.Sprintf("Fig 10%s: routing algorithms in batch model (%s)", suffix, pattern),
			"max outstanding requests (m)", "normalized runtime / achieved throughput")
		var variants []core.NetworkParams
		for i := range names {
			variants = append(variants, vary(i))
		}
		grid, err := core.BatchGrid(variants, batchMs, core.BatchParams{B: b})
		if err != nil {
			return err
		}
		baseT := float64(grid[0][0].Runtime) // dor, m=1
		for vi, name := range names {
			st := f.AddSeries(strings.ToUpper(name) + " (T)")
			sth := f.AddSeries(strings.ToUpper(name) + " (theta)")
			for mi, m := range batchMs {
				st.Add(float64(m), float64(grid[vi][mi].Runtime))
				sth.Add(float64(m), grid[vi][mi].Throughput)
			}
		}
		for _, s := range f.Series {
			if strings.Contains(s.Name, "(T)") && baseT > 0 {
				for i := range s.Ys {
					s.Ys[i] /= baseT
				}
			}
		}
		if err := c.writeFigure("fig10"+suffix, f); err != nil {
			return err
		}
	}
	return nil
}

// fig11 produces the node distributions of open-loop latency and batch
// runtime for DOR vs VAL under transpose.
func fig11(c *ctx) error {
	b := c.scale(300, 1000)
	var out strings.Builder
	out.WriteString("# Fig 11: node distributions under transpose traffic, DOR vs VAL\n")

	for _, alg := range []string{"dor", "val"} {
		p := core.Baseline()
		p.Routing = alg
		p.VCs = 4
		p.Pattern = "transpose"
		ol, err := core.OpenLoop(p, 0.05)
		if err != nil {
			return err
		}
		h := stats.NewHistogram(0, 40, 8)
		h.AddAll(ol.PerNodeAvg)
		fmt.Fprintf(&out, "\n## open-loop per-node average latency, %s (avg %.1f, worst %.1f)\n",
			strings.ToUpper(alg), ol.AvgLatency, ol.WorstLatency)
		out.WriteString(h.String())
	}
	var worst [2]float64
	var avg [2]float64
	for i, alg := range []string{"dor", "val"} {
		p := core.Baseline()
		p.Routing = alg
		p.VCs = 4
		p.Pattern = "transpose"
		res, err := core.Batch(p, core.BatchParams{B: b, M: 1})
		if err != nil {
			return err
		}
		finishes := make([]float64, len(res.NodeFinish))
		var sum float64
		for j, t := range res.NodeFinish {
			finishes[j] = float64(t)
			sum += float64(t)
			if float64(t) > worst[i] {
				worst[i] = float64(t)
			}
		}
		avg[i] = sum / float64(len(finishes))
		h := stats.NewHistogram(0, worst[i]*1.05, 8)
		h.AddAll(finishes)
		fmt.Fprintf(&out, "\n## batch-model per-node runtime, %s (m=1; avg %.0f, worst %.0f)\n",
			strings.ToUpper(alg), avg[i], worst[i])
		out.WriteString(h.String())
	}
	fmt.Fprintf(&out, "\n# DOR avg runtime is %.0f%% below VAL, but worst-case runtimes differ by only %.1f%%\n",
		100*(1-avg[0]/avg[1]), 100*(worst[1]/worst[0]-1))
	out.WriteString("# (paper: 44% average difference, identical worst case - corner transpose pairs\n")
	out.WriteString("# route minimally under both algorithms).\n")
	return c.writeFile("fig11.txt", out.String())
}

// fig12 renders example DOR and VAL routes for a corner transpose pair.
func fig12(c *ctx) error {
	var out strings.Builder
	out.WriteString("# Fig 12: example routing of the corner transpose pair on an 8x8 mesh\n")
	out.WriteString("# S = source (7,0), D = destination (0,7), I = VAL intermediate, * = path\n")

	// DOR path from node 7 (x=7,y=0) to node 56 (x=0,y=7).
	render := func(title string, waypoints [][2]int) {
		grid := [8][8]byte{}
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				grid[y][x] = '.'
			}
		}
		mark := func(x, y int, ch byte) {
			if grid[y][x] == '.' || ch != '*' {
				grid[y][x] = ch
			}
		}
		// Walk DOR (x first, then y) between consecutive waypoints.
		for i := 0; i+1 < len(waypoints); i++ {
			x, y := waypoints[i][0], waypoints[i][1]
			tx, ty := waypoints[i+1][0], waypoints[i+1][1]
			for x != tx {
				mark(x, y, '*')
				if tx > x {
					x++
				} else {
					x--
				}
			}
			for y != ty {
				mark(x, y, '*')
				if ty > y {
					y++
				} else {
					y--
				}
			}
		}
		s, d := waypoints[0], waypoints[len(waypoints)-1]
		grid[s[1]][s[0]] = 'S'
		grid[d[1]][d[0]] = 'D'
		if len(waypoints) == 3 {
			m := waypoints[1]
			grid[m[1]][m[0]] = 'I'
		}
		fmt.Fprintf(&out, "\n## %s\n", title)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				out.WriteByte(grid[y][x])
				out.WriteByte(' ')
			}
			out.WriteByte('\n')
		}
	}
	render("DOR: (7,0) -> (0,7), 14 hops", [][2]int{{7, 0}, {0, 7}})
	render("VAL: (7,0) -> (3,4) -> (0,7), still 14 hops (minimal)", [][2]int{{7, 0}, {3, 4}, {0, 7}})
	out.WriteString("\n# For corner transpose pairs, any VAL intermediate inside the minimal\n")
	out.WriteString("# quadrant keeps the route minimal: worst-case zero-load latency is\n")
	out.WriteString("# identical for DOR and VAL, which is why the batch model sees only a\n")
	out.WriteString("# tiny runtime difference at m=1 (Fig 10b).\n")
	return c.writeFile("fig12.txt", out.String())
}
