package main

// The -report summarizer: renders a run ledger (one JSONL record per
// experiment execution, written with -ledger) into a per-sweep dashboard —
// cache efficiency, pipeline throughput, fast-forward savings, and the
// slowest specs — so a long figure regeneration can be profiled after the
// fact without rerunning anything.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"noceval/internal/obs/ledger"
	"noceval/internal/stats"
)

// kindAgg accumulates the per-run-mode dashboard row.
type kindAgg struct {
	runs, hits, consulted, errs int
	wall                        time.Duration
	computeWall                 time.Duration // wall time of non-hit runs only
	cycles                      int64
	stepped, skipped            int64
	faults                      int64
}

// writeReport reads the ledger at path and writes the dashboard to w.
func writeReport(w io.Writer, path string) error {
	recs, dropped, err := ledger.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "run ledger %s: %d records", path, len(recs))
	if dropped > 0 {
		fmt.Fprintf(w, " (%d undecodable lines dropped)", dropped)
	}
	fmt.Fprintln(w)
	if len(recs) == 0 {
		return nil
	}

	byKind := map[string]*kindAgg{}
	var kinds []string
	for _, r := range recs {
		a := byKind[r.Kind]
		if a == nil {
			a = &kindAgg{}
			byKind[r.Kind] = a
			kinds = append(kinds, r.Kind)
		}
		a.runs++
		if r.Cached {
			a.consulted++
		}
		if r.Hit {
			a.hits++
		} else {
			a.computeWall += time.Duration(r.WallNS)
		}
		if r.Err != "" {
			a.errs++
		}
		a.wall += time.Duration(r.WallNS)
		a.cycles += r.Cycles
		a.stepped += r.Stepped
		a.skipped += r.Skipped
		a.faults += r.FaultInjected
	}
	sort.Strings(kinds)

	t := stats.NewTable("Run ledger summary",
		"kind", "runs", "cache hits", "hit rate", "errors",
		"sim cycles", "Mcyc/s", "ff skipped", "wall")
	for _, k := range kinds {
		a := byKind[k]
		hitRate := "-"
		if a.consulted > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(a.hits)/float64(a.consulted))
		}
		// Pipeline throughput counts only computed runs: a hit simulates
		// nothing, so folding its cycles into the rate would overstate it.
		mcycs := "-"
		if a.computeWall > 0 && a.stepped+a.skipped > 0 {
			mcycs = fmt.Sprintf("%.1f", float64(a.stepped+a.skipped)/a.computeWall.Seconds()/1e6)
		}
		skip := "-"
		if total := a.stepped + a.skipped; total > 0 {
			skip = fmt.Sprintf("%.0f%%", 100*float64(a.skipped)/float64(total))
		}
		t.AddRow(k,
			fmt.Sprint(a.runs),
			fmt.Sprintf("%d/%d", a.hits, a.consulted),
			hitRate,
			fmt.Sprint(a.errs),
			fmt.Sprint(a.cycles),
			mcycs,
			skip,
			a.wall.Round(time.Millisecond).String())
	}
	fmt.Fprintln(w, t.Text())

	// Per-QoS-class rollup of multi-class runs: totals per class name plus
	// the injection-weighted mean latency, so a QoS sweep's priority
	// protection shows up directly in the dashboard.
	type classAgg struct {
		injected, delivered int64
		latSum              float64 // avg latency weighted by measured packets
		latW                int64
	}
	byClass := map[string]*classAgg{}
	var classNames []string
	for _, r := range recs {
		for i, name := range r.ClassNames {
			a := byClass[name]
			if a == nil {
				a = &classAgg{}
				byClass[name] = a
				classNames = append(classNames, name)
			}
			if i < len(r.ClassInjected) {
				a.injected += r.ClassInjected[i]
			}
			if i < len(r.ClassDelivered) {
				a.delivered += r.ClassDelivered[i]
			}
			if i < len(r.ClassAvgLatency) && i < len(r.ClassInjected) && r.ClassInjected[i] > 0 {
				a.latSum += r.ClassAvgLatency[i] * float64(r.ClassInjected[i])
				a.latW += r.ClassInjected[i]
			}
		}
	}
	if len(classNames) > 0 {
		sort.Strings(classNames)
		ct := stats.NewTable("QoS classes", "class", "injected", "delivered", "avg latency")
		for _, name := range classNames {
			a := byClass[name]
			lat := "-"
			if a.latW > 0 {
				lat = fmt.Sprintf("%.2f", a.latSum/float64(a.latW))
			}
			ct.AddRow(name, fmt.Sprint(a.injected), fmt.Sprint(a.delivered), lat)
		}
		fmt.Fprintln(w, ct.Text())
	}

	// Slowest computed specs: where a warm rerun's time would actually go.
	slow := make([]ledger.Record, 0, len(recs))
	for _, r := range recs {
		if !r.Hit {
			slow = append(slow, r)
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].WallNS > slow[j].WallNS })
	if len(slow) > 5 {
		slow = slow[:5]
	}
	if len(slow) > 0 {
		st := stats.NewTable("Slowest computed specs", "kind", "spec", "wall", "sim cycles", "skip")
		for _, r := range slow {
			spec := r.Spec
			if len(spec) > 12 {
				spec = spec[:12]
			}
			if spec == "" {
				spec = "-"
			}
			skip := "-"
			if total := r.Stepped + r.Skipped; total > 0 {
				skip = fmt.Sprintf("%.0f%%", 100*float64(r.Skipped)/float64(total))
			}
			st.AddRow(r.Kind, spec,
				time.Duration(r.WallNS).Round(time.Millisecond).String(),
				fmt.Sprint(r.Cycles), skip)
		}
		fmt.Fprintln(w, st.Text())
	}
	return nil
}
